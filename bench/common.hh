/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * Every binary prints the paper's reported numbers next to the
 * measured ones. Absolute match is not expected (the substrate is a
 * from-scratch simulator, see DESIGN.md); the SHAPE -- who wins, by
 * roughly what factor, where the crossovers fall -- is the
 * reproduction target. EXPERIMENTS.md records the comparison.
 */

#ifndef PCSIM_BENCH_COMMON_HH
#define PCSIM_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/runner/results.hh"
#include "src/runner/runner.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/suite.hh"

namespace pcsim
{
namespace bench
{

/**
 * Benchmark scale factor (PCSIM_BENCH_SCALE, default 1.0).
 * Non-positive or unparseable values are rejected with a warning --
 * silently accepting them would zero every scaled iteration count.
 */
inline double
benchScale()
{
    if (const char *s = std::getenv("PCSIM_BENCH_SCALE")) {
        char *end = nullptr;
        const double v = std::strtod(s, &end);
        if (end != s && *end == '\0' && std::isfinite(v) && v > 0.0)
            return v;
        std::fprintf(stderr,
                     "pcsim-bench: ignoring invalid "
                     "PCSIM_BENCH_SCALE='%s' (using 1.0)\n",
                     s);
    }
    return 1.0;
}

/** Worker threads for runner-based harnesses (PCSIM_BENCH_JOBS;
 *  default 0 = one per hardware core). */
inline unsigned
benchJobs()
{
    if (const char *s = std::getenv("PCSIM_BENCH_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(s, &end, 10);
        if (end != s && *end == '\0')
            return static_cast<unsigned>(v);
        std::fprintf(stderr,
                     "pcsim-bench: ignoring invalid "
                     "PCSIM_BENCH_JOBS='%s'\n",
                     s);
    }
    return 0;
}

/** Run @p workload under @p cfg with the checker off (speed). */
inline RunResult
run(MachineConfig cfg, Workload &wl, const std::string &name)
{
    cfg.proto.checkerEnabled = false;
    return runWorkload(cfg, wl, name);
}

/**
 * Execute a JobSet across the worker pool (PCSIM_BENCH_JOBS threads,
 * default all cores) and return the serialized results document the
 * table printers consume. PCSIM_BENCH_JSON=<path> additionally saves
 * the document for EXPERIMENTS.md-style comparisons.
 */
inline JsonValue
runToJson(const runner::JobSet &jobs)
{
    runner::RunnerOptions opts;
    opts.threads = benchJobs();
    const auto results = runner::runJobs(jobs, opts);
    JsonValue doc = runner::resultsToJson(results);
    if (const char *path = std::getenv("PCSIM_BENCH_JSON"))
        runner::writeTextFile(path, doc.dump(2) + "\n");
    return doc;
}

/** Geometric mean of speedups. */
inline double
geomean(const std::vector<double> &v)
{
    double p = 1.0;
    for (double x : v)
        p *= x;
    return v.empty() ? 0.0 : std::pow(p, 1.0 / v.size());
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return v.empty() ? 0.0 : s / v.size();
}

inline void
header(const char *what, const char *paper_ref)
{
    std::printf("======================================================="
                "=================\n");
    std::printf("pcsim reproduction: %s\n", what);
    std::printf("paper reference:    %s\n", paper_ref);
    std::printf("machine:            16-node cc-NUMA (Table 1 "
                "configuration)\n");
    std::printf("======================================================="
                "=================\n\n");
}

/** Normalized triple for the Figure 7 style reports. */
struct Norm
{
    double speedup;
    double messages;
    double remote;
};

inline Norm
normalize(const RunResult &base, const RunResult &r)
{
    Norm n;
    n.speedup = double(base.cycles) / double(r.cycles);
    n.messages = double(r.netMessages) / double(base.netMessages);
    n.remote =
        double(r.nodes.remoteMisses) / double(base.nodes.remoteMisses);
    return n;
}

} // namespace bench
} // namespace pcsim

#endif // PCSIM_BENCH_COMMON_HH
