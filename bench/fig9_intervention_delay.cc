/** @file Figure 9 reproduction: sensitivity to the delayed
 *  intervention interval, 5 cycles .. 500M cycles and "Infinite",
 *  normalized to the 5-cycle configuration.
 *
 *  Thin formatting layer over the runner's JSON results; equivalent
 *  CLI: `pcsim sweep --figure 9 -j0`. */

#include "bench/common.hh"

#include "src/runner/figures.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Figure 9: sensitivity to intervention delay interval",
           "execution time normalized to a 5-cycle delay; paper "
           "shows a flat region 5..5K and degradation beyond");

    const JsonValue doc = runToJson(figures::figure9Jobs(benchScale()));
    figures::printFigure9(doc);
    return 0;
}
