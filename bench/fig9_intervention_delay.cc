/** @file Figure 9 reproduction: sensitivity to the delayed
 *  intervention interval, 5 cycles .. 500M cycles and "Infinite",
 *  normalized to the 5-cycle configuration. */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Figure 9: sensitivity to intervention delay interval",
           "execution time normalized to a 5-cycle delay; paper "
           "shows a flat region 5..5K and degradation beyond");

    const std::vector<std::pair<const char *, Tick>> delays = {
        {"5", 5},         {"50", 50},       {"500", 500},
        {"5K", 5000},     {"50K", 50000},   {"500K", 500000},
        {"5M", 5000000},  {"Infinite", maxTick},
    };

    std::printf("%-8s", "App");
    for (const auto &[label, d] : delays)
        std::printf(" | %-8s", label);
    std::printf("\n---------");
    for (std::size_t i = 0; i < delays.size(); ++i)
        std::printf("+----------");
    std::printf("\n");

    const double scale = benchScale() * 0.5;
    for (const auto &app : suiteNames()) {
        auto wl = makeWorkload(app, 16, scale);
        std::vector<double> cycles;
        for (const auto &[label, d] : delays) {
            MachineConfig cfg = presets::large(16);
            cfg.proto.interventionDelay = d;
            RunResult r = run(cfg, *wl, label);
            cycles.push_back(double(r.cycles));
        }
        std::printf("%-8s", app.c_str());
        for (double c : cycles)
            std::printf(" | %-8.3f", c / cycles[0]);
        std::printf("\n");
    }
    std::printf("\n(>1.0 = slower than the 5-cycle delay. The paper "
                "reports 50 cycles works well for all benchmarks: "
                "long enough for write bursts, short enough for "
                "updates to arrive before the consumers' reads.)\n");
    return 0;
}
