/** @file Ablation: the producer-consumer detector.
 *
 *  Two knobs the paper discusses but does not sweep:
 *   - the write-repeat saturation threshold (2-bit counter = 3),
 *   - the directory cache size that bounds how many lines carry
 *     detector state (Section 2.2: tracking only directory-cache
 *     residents "detects the majority of the available
 *     producer-consumer sharing patterns").
 */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Ablation: detector threshold and directory cache size",
           "Section 2.2 design choices");

    const double scale = benchScale() * 0.5;

    std::printf("write-repeat saturation threshold (Em3D, LU):\n");
    std::printf("%-10s | %-14s | %-14s\n", "threshold", "Em3D speedup",
                "LU speedup");
    std::printf("-----------+----------------+----------------\n");
    for (unsigned thr : {1u, 2u, 3u, 5u, 8u}) {
        double sp[2];
        int i = 0;
        for (const char *app : {"Em3D", "LU"}) {
            auto wl = makeWorkload(app, 16, scale);
            RunResult b = run(presets::base(16), *wl, "base");
            MachineConfig cfg = presets::large(16);
            cfg.proto.detector.writeRepeatSaturation =
                static_cast<std::uint8_t>(thr);
            RunResult r = run(cfg, *wl, "thr");
            sp[i++] = double(b.cycles) / r.cycles;
        }
        std::printf("%-10u | %-14.3f | %-14.3f\n", thr, sp[0], sp[1]);
    }

    std::printf("\ndirectory cache entries (detector state coverage, "
                "Em3D):\n");
    std::printf("%-10s | %-14s | %s\n", "entries", "speedup",
                "delegations");
    std::printf("-----------+----------------+------------\n");
    {
        auto wl = makeWorkload("Em3D", 16, scale);
        RunResult b = run(presets::base(16), *wl, "base");
        for (std::size_t entries : {64u, 256u, 1024u, 8192u}) {
            MachineConfig cfg = presets::large(16);
            cfg.proto.dirCache.entries = entries;
            RunResult r = run(cfg, *wl, "dc");
            std::printf("%-10zu | %-14.3f | %llu\n", entries,
                        double(b.cycles) / r.cycles,
                        (unsigned long long)
                            r.nodes.delegationsGranted);
        }
    }
    std::printf("\n(A too-eager threshold delegates unstable lines; a "
                "tiny directory cache loses detector state before "
                "patterns saturate.)\n");
    return 0;
}
