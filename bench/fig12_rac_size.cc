/** @file Figure 12 reproduction: sensitivity to the RAC size
 *  (Appbt). Appbt's pushed-update working set at consumers exceeds a
 *  32 KB RAC; growing the RAC removes the bottleneck even with the
 *  32-entry delegate cache. */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Figure 12: sensitivity to RAC size (Appbt)",
           "paper: performance grows with RAC size; 32-entry deledc "
           "+ 1M RAC achieves virtually the large config's benefit");

    auto wl = makeWorkload("Appbt", 16, benchScale() * 0.75);
    RunResult base = run(presets::base(16), *wl, "base");

    std::printf("%-26s | %-8s | %-9s | %-13s | %s\n", "config",
                "speedup", "messages", "remote misses",
                "updates used/sent");
    std::printf("---------------------------+----------+-----------+--"
                "------------+------------------\n");
    std::printf("%-26s | %-8.3f | %-9.3f | %-13.3f |\n",
                "Base (no mechanisms)", 1.0, 1.0, 1.0);

    for (std::size_t kb : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        MachineConfig cfg = presets::delegateUpdate(32, kb * 1024, 16);
        RunResult r = run(cfg, *wl, "rac");
        Norm n = normalize(base, r);
        char label[64];
        std::snprintf(label, sizeof(label),
                      "32-entry deledc & %zuK RAC", kb);
        std::printf("%-26s | %-8.3f | %-9.3f | %-13.3f | %llu/%llu\n",
                    label, n.speedup, n.messages, n.remote,
                    (unsigned long long)r.nodes.updatesConsumed,
                    (unsigned long long)r.nodes.updatesSent);
    }
    {
        MachineConfig cfg =
            presets::delegateUpdate(1024, 1024 * 1024, 16);
        RunResult r = run(cfg, *wl, "large");
        Norm n = normalize(base, r);
        std::printf("%-26s | %-8.3f | %-9.3f | %-13.3f | %llu/%llu\n",
                    "1K-entry deledc & 1M RAC", n.speedup, n.messages,
                    n.remote,
                    (unsigned long long)r.nodes.updatesConsumed,
                    (unsigned long long)r.nodes.updatesSent);
    }
    return 0;
}
