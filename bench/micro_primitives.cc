/** @file google-benchmark micro-benchmarks of the simulator's
 *  primitives: event queue throughput, cache array lookups, the
 *  detector FSM, network message delivery and a full micro system
 *  step. These track the simulator's own performance, not the
 *  paper's results. */

#include <benchmark/benchmark.h>

#include "src/cache/cache_array.hh"
#include "src/core/pc_detector.hh"
#include "src/net/network.hh"
#include "src/sim/event_queue.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/micro.hh"

using namespace pcsim;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    const int batch = static_cast<int>(state.range(0));
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i)
            eq.scheduleIn(i % 97, [&sink]() { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    struct Entry
    {
        int v = 0;
    };
    CacheArray<Entry> c("bench", 4096, 4, 128, ReplPolicy::LRU,
                        Rng(1));
    for (Addr a = 0; a < 4096 * 4 * 128ull; a += 128)
        c.allocate(a);
    Rng rng(2);
    std::uint64_t hits = 0;
    for (auto _ : state) {
        const Addr a = (rng.below(4096 * 4)) * 128;
        hits += c.find(a) != nullptr;
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_PcDetector(benchmark::State &state)
{
    PcDetectorState d;
    Rng rng(3);
    std::uint64_t detected = 0;
    for (auto _ : state) {
        const NodeId n = static_cast<NodeId>(rng.below(16));
        if (rng.chance(0.3))
            detected += d.onWrite(n);
        else
            d.onRead(n);
    }
    benchmark::DoNotOptimize(detected);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcDetector);

struct NullSink : MessageHandler
{
    std::uint64_t count = 0;
    void handleMessage(const Message &) override { ++count; }
};

void
BM_NetworkDelivery(benchmark::State &state)
{
    EventQueue eq;
    Network net(eq, 16);
    NullSink sinks[16];
    for (NodeId n = 0; n < 16; ++n)
        net.registerHandler(n, &sinks[n]);
    Rng rng(4);
    for (auto _ : state) {
        Message m;
        m.type = MsgType::ReqShared;
        m.addr = 0x1000;
        m.src = static_cast<NodeId>(rng.below(16));
        m.dst = static_cast<NodeId>(rng.below(16));
        net.send(m);
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkDelivery);

void
BM_FullSystemMicroRun(benchmark::State &state)
{
    for (auto _ : state) {
        ProducerConsumerMicro::Params p;
        p.iterations = 5;
        ProducerConsumerMicro wl(16, p);
        MachineConfig cfg = presets::small(16);
        cfg.proto.checkerEnabled = false;
        RunResult r = runWorkload(cfg, wl, "bench");
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_FullSystemMicroRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
