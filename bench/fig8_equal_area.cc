/** @file Figure 8 reproduction: equal silicon area comparison.
 *
 *  Is the ~40 KB of SRAM for a 32-entry delegate cache + 32 KB RAC
 *  better spent on a larger L2? Three systems, per the paper:
 *   - Base:  1 MB L2, no extensions,
 *   - Inter: 1 MB L2 + 32-entry delegate cache + 32 KB RAC,
 *   - Equal: 1.04 MB L2 (same silicon area), no extensions.
 */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Figure 8: equal storage area comparison",
           "smarter (delegation+updates) vs larger (1.04 MB L2) "
           "caches");

    MachineConfig base = presets::base(16);
    base.proto.l2SizeBytes = 1024 * 1024;

    MachineConfig inter = presets::small(16);
    inter.proto.l2SizeBytes = 1024 * 1024;

    // 1.04 MB with 4 ways and 128 B lines: 2129 sets (non-power-of-2,
    // supported by the cache array exactly for this experiment).
    MachineConfig equal = presets::base(16);
    equal.proto.l2SizeBytes = 1024 * 1024;
    equal.proto.l2SetsOverride =
        (1024 * 1024 + 40 * 1024) / (4 * 128);

    std::printf("%-8s | %-12s | %-22s | %-12s\n", "App",
                "Base(1M L2)", "Inter(1M+32e+32K RAC)",
                "Equal(1.04M)");
    std::printf("---------+--------------+------------------------+---"
                "-----------\n");

    std::vector<double> sp_inter, sp_equal;
    for (const auto &app : suiteNames()) {
        auto wl = makeWorkload(app, 16, benchScale());
        RunResult b = run(base, *wl, "base");
        RunResult i = run(inter, *wl, "inter");
        RunResult e = run(equal, *wl, "equal");
        const double si = double(b.cycles) / i.cycles;
        const double se = double(b.cycles) / e.cycles;
        sp_inter.push_back(si);
        sp_equal.push_back(se);
        std::printf("%-8s | %-12.3f | %-22.3f | %-12.3f\n", app.c_str(),
                    1.0, si, se);
    }
    std::printf("\ngeomean: smarter %.3f vs larger %.3f\n",
                geomean(sp_inter), geomean(sp_equal));
    std::printf("(Paper: the extensions beat the 1.04 MB L2 for every "
                "application except Appbt, whose small RAC thrashes.)\n");
    return 0;
}
