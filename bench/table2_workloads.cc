/** @file Table 2 reproduction: applications and data sets.
 *  Formatting only -- the workload inventory comes from the runner's
 *  registry; no simulation runs. Equivalent CLI:
 *  `pcsim sweep --table 2`. */

#include "bench/common.hh"

#include "src/runner/figures.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Table 2: Applications and data sets",
           "paper problem sizes vs this repo's scaled sizes");

    figures::printTable2(benchScale());
    return 0;
}
