/** @file Table 2 reproduction: applications and data sets. */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Table 2: Applications and data sets",
           "paper problem sizes vs this repo's scaled sizes");

    std::printf("%-8s | %-42s | %s\n", "App", "Paper problem size",
                "Scaled (this repo)");
    std::printf("---------+-------------------------------------------"
                "-+---------------------------\n");
    for (const auto &name : suiteNames()) {
        auto w = makeWorkload(name, 16, benchScale());
        std::printf("%-8s | %-42s | %s\n", name.c_str(),
                    w->paperProblemSize().c_str(),
                    w->scaledProblemSize().c_str());
    }
    std::printf("\nTrace volumes (parallel phase, all 16 CPUs):\n");
    for (const auto &name : suiteNames()) {
        auto w = makeWorkload(name, 16, benchScale());
        auto *t = static_cast<TraceWorkload *>(w.get());
        std::printf("  %-8s %10zu operations\n", name.c_str(),
                    t->totalOps());
    }
    return 0;
}
