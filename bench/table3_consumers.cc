/** @file Table 3 reproduction: number of consumers in the
 *  producer-consumer sharing patterns (% of PC writes that
 *  invalidated 1/2/3/4/4+ consumer copies). */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

namespace
{

struct Row
{
    const char *app;
    double c1, c2, c3, c4, c4p;
};

/** Table 3 as printed in the paper. */
const Row paperRows[] = {
    {"Barnes", 13.9, 6.8, 9.4, 8.1, 61.7},
    {"Ocean", 97.7, 1.8, 0.5, 0.0, 0.0},
    {"Em3D", 67.8, 32.2, 0.0, 0.0, 0.0},
    {"LU", 99.4, 0.0, 0.0, 0.4, 0.1},
    {"CG", 0.1, 0.2, 0.0, 0.0, 99.7},
    {"MG", 0.0, 0.3, 6.7, 1.4, 91.6},
    {"Appbt", 78.3, 11.4, 2.9, 1.8, 36.7},
};

} // namespace

int
main()
{
    header("Table 3: Number of consumers in the producer-consumer "
           "sharing patterns",
           "percent of detected-PC writes by consumer count");

    std::printf("%-8s | %28s | %28s\n", "App",
                "paper (1 / 2 / 3 / 4 / 4+)",
                "measured (1 / 2 / 3 / 4 / 4+)");
    std::printf("---------+------------------------------+-----------"
                "-------------------\n");

    for (std::size_t i = 0; i < suiteNames().size(); ++i) {
        const std::string name = suiteNames()[i];
        auto wl = makeWorkload(name, 16, benchScale());
        // Measured on the baseline system: the detector sees the
        // application's inherent sharing pattern.
        RunResult r = run(presets::base(16), *wl, "base");

        const Histogram &h = r.consumerHist;
        double c1 = 100 * h.fraction(1);
        double c2 = 100 * h.fraction(2);
        double c3 = 100 * h.fraction(3);
        double c4 = 100 * h.fraction(4);
        double c4p = 0;
        for (std::size_t b = 5; b < h.numBuckets(); ++b)
            c4p += 100 * h.fraction(b);

        const Row &p = paperRows[i];
        std::printf("%-8s | %4.1f %4.1f %4.1f %4.1f %5.1f | "
                    "%4.1f %4.1f %4.1f %4.1f %5.1f\n",
                    name.c_str(), p.c1, p.c2, p.c3, p.c4, p.c4p, c1,
                    c2, c3, c4, c4p);
    }
    std::printf("\n(Each row: percentage of producer-consumer writes "
                "whose invalidation hit that many consumers.)\n");
    return 0;
}
