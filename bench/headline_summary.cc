/** @file Headline reproduction (abstract + Section 3.2 summary):
 *  small config: +13% speedup, -17% traffic, -29% remote misses;
 *  large config: +21% speedup, -15% traffic, -40% remote misses. */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Headline summary (abstract / Section 3.2)",
           "geometric-mean speedup, mean traffic and remote-miss "
           "reduction across the seven benchmarks");

    const double scale = benchScale();
    std::vector<double> sp_s, sp_l, msg_s, msg_l, rm_s, rm_l;
    std::uint64_t upd_sent = 0, upd_used = 0, delegations = 0;

    for (const auto &app : suiteNames()) {
        auto wl = makeWorkload(app, 16, scale);
        RunResult b = run(presets::base(16), *wl, "base");
        RunResult s = run(presets::small(16), *wl, "small");
        RunResult l = run(presets::large(16), *wl, "large");

        Norm ns = normalize(b, s), nl = normalize(b, l);
        sp_s.push_back(ns.speedup);
        sp_l.push_back(nl.speedup);
        msg_s.push_back(ns.messages);
        msg_l.push_back(nl.messages);
        rm_s.push_back(ns.remote);
        rm_l.push_back(nl.remote);
        upd_sent += l.nodes.updatesSent;
        upd_used += l.nodes.updatesConsumed;
        delegations += l.nodes.delegationsGranted;

        std::printf("  %-8s small: speedup %.3f traffic %+5.1f%% "
                    "remote %+5.1f%% | large: speedup %.3f traffic "
                    "%+5.1f%% remote %+5.1f%%\n",
                    app.c_str(), ns.speedup, 100 * (ns.messages - 1),
                    100 * (ns.remote - 1), nl.speedup,
                    100 * (nl.messages - 1), 100 * (nl.remote - 1));
    }

    std::printf("\n%-40s %10s %10s\n", "", "measured", "paper");
    std::printf("%-40s %9.1f%% %10s\n",
                "small: geomean speedup", 100 * (geomean(sp_s) - 1),
                "+13%");
    std::printf("%-40s %9.1f%% %10s\n", "small: network traffic",
                100 * (mean(msg_s) - 1), "-17%");
    std::printf("%-40s %9.1f%% %10s\n", "small: remote misses",
                100 * (mean(rm_s) - 1), "-29%");
    std::printf("%-40s %9.1f%% %10s\n",
                "large: geomean speedup", 100 * (geomean(sp_l) - 1),
                "+21%");
    std::printf("%-40s %9.1f%% %10s\n", "large: network traffic",
                100 * (mean(msg_l) - 1), "-15%");
    std::printf("%-40s %9.1f%% %10s\n", "large: remote misses",
                100 * (mean(rm_l) - 1), "-40%");
    std::printf("\nlarge config: %llu delegations, %llu updates sent, "
                "%.0f%% consumed\n",
                (unsigned long long)delegations,
                (unsigned long long)upd_sent,
                upd_sent ? 100.0 * upd_used / upd_sent : 0.0);
    return 0;
}
