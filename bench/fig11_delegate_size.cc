/** @file Figure 11 reproduction: sensitivity to the delegate cache
 *  size (MG). MG's producer-consumer working set exceeds a 32-entry
 *  producer table, so speedup grows with the table until it fits. */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Figure 11: sensitivity to delegate cache size (MG)",
           "paper: 32 entries capture only part of MG's PC working "
           "set (+9%); 1K entries reach +22%");

    auto wl = makeWorkload("MG", 16, benchScale() * 0.75);
    RunResult base = run(presets::base(16), *wl, "base");

    std::printf("%-26s | %-8s | %-9s | %-13s\n", "config", "speedup",
                "messages", "remote misses");
    std::printf("---------------------------+----------+-----------+--"
                "-----------\n");
    std::printf("%-26s | %-8.3f | %-9.3f | %-13.3f\n",
                "Base (no mechanisms)", 1.0, 1.0, 1.0);

    for (std::size_t entries : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        MachineConfig cfg =
            presets::delegateUpdate(entries, 32 * 1024, 16);
        RunResult r = run(cfg, *wl, "deledc");
        Norm n = normalize(base, r);
        char label[64];
        std::snprintf(label, sizeof(label),
                      "%zu-entry deledc & 32K RAC", entries);
        std::printf("%-26s | %-8.3f | %-9.3f | %-13.3f\n", label,
                    n.speedup, n.messages, n.remote);
    }
    // The paper's figure also includes the 1K + 1M point.
    {
        MachineConfig cfg =
            presets::delegateUpdate(1024, 1024 * 1024, 16);
        RunResult r = run(cfg, *wl, "deledc");
        Norm n = normalize(base, r);
        std::printf("%-26s | %-8.3f | %-9.3f | %-13.3f\n",
                    "1K-entry deledc & 1M RAC", n.speedup, n.messages,
                    n.remote);
    }
    return 0;
}
