/** @file Figure 7 reproduction: application speedup, network
 *  messages and remote misses for the six machine configurations,
 *  all normalized to the baseline system.
 *
 *  The sweep itself (7 apps x 6 configs) runs through the parallel
 *  experiment runner; this binary is a thin formatting layer over the
 *  JSON results (see src/runner/figures.hh). Equivalent CLI:
 *  `pcsim sweep --figure 7 -j0`. */

#include "bench/common.hh"

#include "src/runner/figures.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Figure 7: speedup, network messages and remote misses",
           "six configurations x seven applications, normalized to "
           "Base");

    const JsonValue doc = runToJson(figures::figure7Jobs(benchScale()));
    figures::printFigure7(doc);
    return 0;
}
