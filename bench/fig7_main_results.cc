/** @file Figure 7 reproduction: application speedup, network
 *  messages and remote misses for the six machine configurations,
 *  all normalized to the baseline system. */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

namespace
{

/** Paper speedups read off Figure 7 (approximate bar heights). */
struct PaperRow
{
    const char *app;
    double small;  ///< 32-entry deledc & 32K RAC
    double large;  ///< 1K-entry deledc & 1M RAC
};

const PaperRow paperSpeedups[] = {
    {"Barnes", 1.17, 1.23}, {"Ocean", 1.08, 1.11},
    {"Em3D", 1.33, 1.40},   {"LU", 1.31, 1.40},
    {"CG", 1.04, 1.06},     {"MG", 1.09, 1.22},
    {"Appbt", 1.08, 1.24},
};

} // namespace

int
main()
{
    header("Figure 7: speedup, network messages and remote misses",
           "six configurations x seven applications, normalized to "
           "Base");

    const auto configs = presets::figure7Configs(16);
    const double scale = benchScale();

    std::printf("speedup (paper small/large in brackets):\n");
    std::printf("%-8s", "App");
    for (const auto &c : configs)
        std::printf(" | %-13.13s", c.name.c_str());
    std::printf("\n");

    std::vector<std::vector<Norm>> all;

    for (std::size_t a = 0; a < suiteNames().size(); ++a) {
        const std::string app = suiteNames()[a];
        auto wl = makeWorkload(app, 16, scale);

        RunResult base = run(configs[0].cfg, *wl, configs[0].name);
        std::vector<Norm> norms;
        norms.push_back({1.0, 1.0, 1.0});
        for (std::size_t c = 1; c < configs.size(); ++c) {
            RunResult r = run(configs[c].cfg, *wl, configs[c].name);
            norms.push_back(normalize(base, r));
        }
        all.push_back(norms);

        std::printf("%-8s", app.c_str());
        for (const Norm &n : norms)
            std::printf(" | %-13.3f", n.speedup);
        std::printf("   [paper: %.2f / %.2f]\n",
                    paperSpeedups[a].small, paperSpeedups[a].large);
    }

    std::printf("\nnetwork messages (normalized to Base):\n");
    std::printf("%-8s", "App");
    for (const auto &c : configs)
        std::printf(" | %-13.13s", c.name.c_str());
    std::printf("\n");
    for (std::size_t a = 0; a < all.size(); ++a) {
        std::printf("%-8s", suiteNames()[a].c_str());
        for (const Norm &n : all[a])
            std::printf(" | %-13.3f", n.messages);
        std::printf("\n");
    }

    std::printf("\nremote misses (normalized to Base):\n");
    std::printf("%-8s", "App");
    for (const auto &c : configs)
        std::printf(" | %-13.13s", c.name.c_str());
    std::printf("\n");
    for (std::size_t a = 0; a < all.size(); ++a) {
        std::printf("%-8s", suiteNames()[a].c_str());
        for (const Norm &n : all[a])
            std::printf(" | %-13.3f", n.remote);
        std::printf("\n");
    }

    // Headline aggregates (Section 3.2's summary paragraph).
    std::vector<double> sp_small, sp_large, msg_small, msg_large,
        rm_small, rm_large;
    for (const auto &norms : all) {
        sp_small.push_back(norms[2].speedup);
        sp_large.push_back(norms[3].speedup);
        msg_small.push_back(norms[2].messages);
        msg_large.push_back(norms[3].messages);
        rm_small.push_back(norms[2].remote);
        rm_large.push_back(norms[3].remote);
    }
    std::printf("\nsummary (paper in brackets):\n");
    std::printf("  small config: geomean speedup %.2f [1.13], traffic "
                "%+.0f%% [-17%%], remote misses %+.0f%% [-29%%]\n",
                geomean(sp_small), 100 * (mean(msg_small) - 1),
                100 * (mean(rm_small) - 1));
    std::printf("  large config: geomean speedup %.2f [1.21], traffic "
                "%+.0f%% [-15%%], remote misses %+.0f%% [-40%%]\n",
                geomean(sp_large), 100 * (mean(msg_large) - 1),
                100 * (mean(rm_large) - 1));
    return 0;
}
