/** @file Ablation (Section 3.2, text): delegation WITHOUT
 *  speculative updates. The paper omits these bars because "the
 *  benefit of turning 3-hop misses into 2-hop misses roughly
 *  balanced out the overhead of delegation, which resulted in
 *  performance within 1% of the baseline system for most
 *  applications". */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Ablation: delegation only (updates disabled)",
           "Section 3.2: within ~1% of baseline for most apps");

    std::printf("%-8s | %-12s | %-10s | %-10s | %s\n", "App",
                "speedup", "messages", "remote", "delegations");
    std::printf("---------+--------------+------------+------------+--"
                "----------\n");

    for (const auto &app : suiteNames()) {
        auto wl = makeWorkload(app, 16, benchScale());
        RunResult b = run(presets::base(16), *wl, "base");
        RunResult d =
            run(presets::delegationOnly(32, 32 * 1024, 16), *wl,
                "delegation-only");
        Norm n = normalize(b, d);
        std::printf("%-8s | %-12.3f | %-10.3f | %-10.3f | %llu\n",
                    app.c_str(), n.speedup, n.messages, n.remote,
                    (unsigned long long)d.nodes.delegationsGranted);
    }
    std::printf("\n(Speedup near 1.0 everywhere: delegation alone "
                "saves a hop but pays delegation/undelegation "
                "traffic; the win comes from the updates built on "
                "top of it.)\n");
    return 0;
}
