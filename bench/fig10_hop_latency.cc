/** @file Figure 10 reproduction: sensitivity to network hop latency
 *  (Appbt, representative). Execution time for the baseline and the
 *  enhanced (32K RAC + 32-entry deledc) system as hop latency scales
 *  25 ns .. 200 ns, plus the resulting speedup.
 *
 *  Thin formatting layer over the runner's JSON results; equivalent
 *  CLI: `pcsim sweep --figure 10 -j0`. */

#include "bench/common.hh"

#include "src/runner/figures.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Figure 10: sensitivity to network hop latency (Appbt)",
           "paper: execution time nearly doubles per latency "
           "doubling; speedup grows 24% -> 28% from 25 ns to 200 ns");

    const JsonValue doc =
        runToJson(figures::figure10Jobs(benchScale()));
    figures::printFigure10(doc);
    return 0;
}
