/** @file Figure 10 reproduction: sensitivity to network hop latency
 *  (Appbt, representative). Execution time for the baseline and the
 *  enhanced (32K RAC + 32-entry deledc) system as hop latency scales
 *  25 ns .. 200 ns, plus the resulting speedup. */

#include "bench/common.hh"

using namespace pcsim;
using namespace pcsim::bench;

int
main()
{
    header("Figure 10: sensitivity to network hop latency (Appbt)",
           "paper: execution time nearly doubles per latency "
           "doubling; speedup grows 24% -> 28% from 25 ns to 200 ns");

    // 2 GHz core: 25/50/100/200 ns = 50/100/200/400 cycles.
    const std::vector<std::pair<const char *, Tick>> hops = {
        {"25ns", 50}, {"50ns", 100}, {"100ns", 200}, {"200ns", 400}};

    std::printf("%-6s | %-14s | %-14s | %-8s\n", "hop",
                "base cycles", "enhanced cycles", "speedup");
    std::printf("-------+----------------+----------------+---------\n");

    auto wl = makeWorkload("Appbt", 16, benchScale() * 0.5);
    double prev_base = 0;
    for (const auto &[label, cycles] : hops) {
        MachineConfig base = presets::base(16);
        base.net.hopLatency = cycles;
        MachineConfig enh = presets::small(16);
        enh.net.hopLatency = cycles;

        RunResult rb = run(base, *wl, "base");
        RunResult re = run(enh, *wl, "enh");
        std::printf("%-6s | %-14llu | %-14llu | %-8.3f", label,
                    (unsigned long long)rb.cycles,
                    (unsigned long long)re.cycles,
                    double(rb.cycles) / re.cycles);
        if (prev_base > 0)
            std::printf("   (base grew %.2fx)",
                        rb.cycles / prev_base);
        prev_base = double(rb.cycles);
        std::printf("\n");
    }
    std::printf("\n(The mechanisms' value increases with remote "
                "latency, as the paper observes.)\n");
    return 0;
}
