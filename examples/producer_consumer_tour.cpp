/**
 * @file
 * A guided tour of the paper's mechanisms on the Figure 1 scenario:
 * one producer, two consumers, home on a third node.
 *
 * Walks through detection, delegation, the delayed intervention and
 * the speculative pushes step by step, printing the directory /
 * delegate-cache / RAC state after each phase.
 */

#include <cstdio>

#include "src/system/presets.hh"
#include "src/system/system.hh"

using namespace pcsim;

namespace
{

System *g_sys;
Addr g_line = 0x70000000ull;

Version
access(unsigned cpu, bool is_write)
{
    Version out = 0;
    bool done = false;
    g_sys->hub(cpu).cpuAccess(is_write, g_line, [&](Version v) {
        out = v;
        done = true;
    });
    g_sys->eventQueue().run();
    if (!done)
        fatal("access did not complete");
    return out;
}

void
show(const char *phase)
{
    const NodeId home = g_sys->memMap().homeOf(g_line);
    DirEntry d = g_sys->hub(home).homeDirEntry(g_line);
    std::printf("\n--- %s ---\n", phase);
    std::printf("  home node %u: state=%s sharers=%s owner=%d "
                "memVersion=%u\n",
                home, dirStateName(d.state), d.sharers.toString().c_str(),
                d.owner == invalidNode ? -1 : int(d.owner),
                d.memVersion);
    for (unsigned n = 0; n < g_sys->numNodes(); ++n) {
        Version v;
        LineState s = g_sys->hub(n).l2State(g_line, v);
        bool pinned = false;
        Version rv = 0;
        const bool rac = g_sys->hub(n).racCopy(g_line, rv, pinned);
        const ProducerEntry *pe = g_sys->hub(n).producerEntry(g_line);
        if (s == LineState::Invalid && !rac && !pe)
            continue;
        std::printf("  node %-2u: L2=%s v=%u", n, lineStateName(s),
                    s == LineState::Invalid ? 0 : v);
        if (rac)
            std::printf("  RAC=v%u%s%s", rv, pinned ? " (pinned)" : "",
                        "");
        if (pe)
            std::printf("  [delegated here: %s, sharers=%s, "
                        "epochs=%u]",
                        dirStateName(pe->dir.state),
                        pe->dir.sharers.toString().c_str(),
                        pe->epochs);
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    // Full mechanism, eager detector so the tour is short.
    MachineConfig cfg = presets::small(16);
    System sys(cfg);
    g_sys = &sys;

    std::printf("pcsim mechanism tour: producer=node 5, consumers="
                "nodes 9 and 12, home=node 0\n");

    access(0, false); // first touch: node 0 becomes the home
    show("initial read by node 0 (homes the line there)");

    // Three producer/consumer epochs saturate the 2-bit write-repeat
    // counter (Section 2.2).
    for (int epoch = 1; epoch <= 3; ++epoch) {
        access(5, true);
        access(9, false);
        access(12, false);
        char label[64];
        std::snprintf(label, sizeof(label),
                      "epoch %d: node 5 writes, nodes 9/12 read",
                      epoch);
        show(label);
    }

    std::printf("\nWrite-repeat counter is now saturated: the NEXT "
                "write delegates the line (Section 2.3.1).\n");
    access(5, true);
    show("4th write: home delegates to node 5; delayed intervention "
         "fired and pushed updates to the previous sharing vector");

    const Version v9 = access(9, false);
    const Version v12 = access(12, false);
    std::printf("\nconsumer reads: node 9 got v%u, node 12 got v%u -- "
                "both were LOCAL RAC hits (0-hop, Section 2.4)\n", v9,
                v12);
    std::printf("  node 9 local misses: %llu, remote misses: %llu\n",
                (unsigned long long)sys.hub(9).stats().localMisses,
                (unsigned long long)sys.hub(9).stats().remoteMisses);

    access(5, true);
    show("5th write: producer invalidates consumers locally (2-hop), "
         "pushes again after the delayed intervention");

    access(12, true);
    show("node 12 writes: conflicting writer forces undelegation "
         "(reason 3) and takes ownership through the home");

    std::printf("\nfinal stats: delegations=%llu undelegations="
                "%llu updates sent=%llu consumed=%llu\n",
                (unsigned long long)
                    sys.hub(0).stats().delegationsGranted,
                (unsigned long long)
                    sys.hub(5).stats().undelegationsConflict,
                (unsigned long long)sys.hub(5).stats().updatesSent,
                (unsigned long long)(sys.hub(9).stats().updatesConsumed +
                                     sys.hub(12).stats()
                                         .updatesConsumed));
    return 0;
}
