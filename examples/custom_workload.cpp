/**
 * @file
 * Writing a custom workload against the public API.
 *
 * Models a 16-node work-queue pipeline: a coordinator node publishes
 * task descriptors each round (one producer, many consumers reading
 * their slice), workers compute and publish per-worker results that
 * the coordinator aggregates (many producers, one consumer). Both
 * directions are producer-consumer patterns the adaptive protocol
 * should accelerate -- the example sweeps the Figure 7 configurations
 * and reports what each mechanism buys.
 */

#include <cstdio>

#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/workload.hh"

using namespace pcsim;

namespace
{

/** The custom workload: subclass TraceWorkload, emit MemOps. */
class WorkQueuePipeline : public TraceWorkload
{
  public:
    WorkQueuePipeline(unsigned num_cpus, unsigned rounds,
                      unsigned tasks_per_worker)
        : TraceWorkload("WorkQueue", num_cpus)
    {
        const Addr desc_base = 0x70000000ull;   // task descriptors
        const Addr result_base = 0x74000000ull; // per-worker results
        const std::uint32_t line = 128;

        auto desc_line = [&](unsigned w) {
            return desc_base + static_cast<Addr>(w) * line;
        };
        auto result_line = [&](unsigned w, unsigned t) {
            // Page-aligned per-worker block: first touch homes it at
            // the worker.
            return result_base + w * 0x4000ull + t * line;
        };

        // Init: coordinator (CPU 0) first-touches the descriptors;
        // each worker its result block. Ends with the stats barrier.
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            if (cpu == 0) {
                for (unsigned w = 1; w < num_cpus; ++w)
                    t.push_back(MemOp::write(desc_line(w)));
            } else {
                for (unsigned k = 0; k < tasks_per_worker; ++k)
                    t.push_back(
                        MemOp::write(result_line(cpu, k)));
            }
            t.push_back(MemOp::barrier());
        }

        for (unsigned r = 0; r < rounds; ++r) {
            for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
                auto &t = cpuTrace(cpu);
                if (cpu == 0) {
                    // Publish this round's task descriptors.
                    for (unsigned w = 1; w < num_cpus; ++w) {
                        t.push_back(MemOp::think(40));
                        t.push_back(MemOp::write(desc_line(w)));
                    }
                }
                t.push_back(MemOp::barrier());
                if (cpu != 0) {
                    // Fetch my descriptor, compute, publish results.
                    t.push_back(MemOp::read(desc_line(cpu)));
                    for (unsigned k = 0; k < tasks_per_worker; ++k) {
                        t.push_back(MemOp::think(300));
                        t.push_back(
                            MemOp::write(result_line(cpu, k)));
                    }
                }
                t.push_back(MemOp::barrier());
                if (cpu == 0) {
                    // Aggregate every worker's results.
                    for (unsigned w = 1; w < num_cpus; ++w) {
                        for (unsigned k = 0; k < tasks_per_worker;
                             ++k) {
                            t.push_back(
                                MemOp::read(result_line(w, k)));
                            t.push_back(MemOp::think(20));
                        }
                    }
                }
                t.push_back(MemOp::barrier());
            }
        }
    }
};

} // namespace

int
main()
{
    const unsigned cpus = 16;
    WorkQueuePipeline wl(cpus, /*rounds=*/30, /*tasks_per_worker=*/4);

    std::printf("custom workload: 1 coordinator, %u workers, "
                "bidirectional producer-consumer flow\n\n",
                cpus - 1);
    std::printf("%-28s %-10s %-9s %-9s %-9s %s\n", "config", "cycles",
                "speedup", "remote", "local", "updates used/sent");

    RunResult base;
    for (auto &[name, cfg] : presets::figure7Configs(cpus)) {
        RunResult r = runWorkload(cfg, wl, name);
        if (name == "Base")
            base = r;
        std::printf("%-28s %-10llu %-9.3f %-9llu %-9llu %llu/%llu\n",
                    name.c_str(), (unsigned long long)r.cycles,
                    double(base.cycles) / r.cycles,
                    (unsigned long long)r.nodes.remoteMisses,
                    (unsigned long long)r.nodes.localMisses,
                    (unsigned long long)r.nodes.updatesConsumed,
                    (unsigned long long)r.nodes.updatesSent);
    }

    std::printf("\nBoth flows are adaptive-protocol friendly: the "
                "descriptor lines delegate to the\ncoordinator and "
                "push to each worker; each worker's result block "
                "delegates to the\nworker and pushes to the "
                "coordinator.\n");
    return 0;
}
