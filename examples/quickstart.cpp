/**
 * @file
 * Quickstart: build a 16-node machine, run the producer-consumer
 * microbenchmark on the baseline protocol and on the full
 * delegation + speculative-update configuration, and compare.
 *
 * Usage: quickstart [workload]
 *   workload: PCmicro (default) or one of
 *             Barnes Ocean Em3D LU CG MG Appbt
 */

#include <cstdio>
#include <memory>
#include <string>

#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/micro.hh"
#include "src/workload/suite.hh"

using namespace pcsim;

namespace
{

void
report(const char *label, const RunResult &r)
{
    std::printf("%-34s cycles=%-10llu remote=%-8llu local=%-8llu "
                "msgs=%-8llu updates=%llu/%llu dele=%llu undele=%llu/"
                "%llu/%llu nacks=%llu\n",
                label, (unsigned long long)r.cycles,
                (unsigned long long)r.nodes.remoteMisses,
                (unsigned long long)r.nodes.localMisses,
                (unsigned long long)r.netMessages,
                (unsigned long long)r.nodes.updatesConsumed,
                (unsigned long long)r.nodes.updatesSent,
                (unsigned long long)r.nodes.delegationsGranted,
                (unsigned long long)r.nodes.undelegationsCapacity,
                (unsigned long long)r.nodes.undelegationsFlush,
                (unsigned long long)r.nodes.undelegationsConflict,
                (unsigned long long)r.nodes.nacksReceived);
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned cpus = 16;
    const std::string which = argc > 1 ? argv[1] : "PCmicro";

    std::unique_ptr<Workload> wl;
    if (which == "PCmicro")
        wl = std::make_unique<ProducerConsumerMicro>(cpus);
    else
        wl = makeWorkload(which, cpus, 0.5);

    std::printf("pcsim quickstart: workload %s on %u nodes\n",
                wl->name().c_str(), cpus);

    RunResult base = runWorkload(presets::base(cpus), *wl, "base");
    report("base (write-invalidate)", base);

    RunResult rac = runWorkload(presets::racOnly(32 * 1024, cpus), *wl,
                                "rac");
    report("32K RAC", rac);

    RunResult dele =
        runWorkload(presets::delegationOnly(32, 32 * 1024, cpus), *wl,
                    "delegation");
    report("delegation only", dele);

    RunResult upd = runWorkload(presets::small(cpus), *wl, "small");
    report("delegation + updates (small)", upd);

    RunResult lrg = runWorkload(presets::large(cpus), *wl, "large");
    report("delegation + updates (large)", lrg);

    std::printf("\nspeedup (small) = %.3f   remote-miss reduction = "
                "%.1f%%   traffic reduction = %.1f%%\n",
                double(base.cycles) / double(upd.cycles),
                100.0 * (1.0 - double(upd.nodes.remoteMisses) /
                                   double(base.nodes.remoteMisses)),
                100.0 * (1.0 - double(upd.netMessages) /
                                   double(base.netMessages)));
    return 0;
}
