/**
 * @file
 * Model checking demo (Section 2.5): exhaustive reachability analysis
 * of the abstract protocol model -- base protocol, delegation, and
 * delegation + speculative updates -- followed by systematic
 * interleaving exploration of the real simulator.
 *
 * This reproduces the paper's verification methodology: "we built a
 * formal model of our protocols and performed an exhaustive
 * reachability analysis of the model for a small configuration size".
 */

#include <cstdio>

#include "src/mc/explorer.hh"
#include "src/mc/protocol_model.hh"
#include "src/mc/schedule_explorer.hh"
#include "src/system/presets.hh"

using namespace pcsim;
using namespace pcsim::mc;

namespace
{

void
explore(const char *label, ModelConfig cfg,
        std::uint64_t max_states = 5'000'000)
{
    ProtocolModel model(cfg);
    Explorer<ProtocolModel> ex(model, max_states);
    try {
        McResult r = ex.run();
        std::printf("  %-44s %9llu states %10llu transitions %s\n",
                    label, (unsigned long long)r.statesExplored,
                    (unsigned long long)r.transitionsTaken,
                    r.completed ? "(exhaustive)" : "(bounded)");
    } catch (const McError &e) {
        std::printf("  %-44s VIOLATION:\n%s\n", label, e.what());
    }
}

} // namespace

int
main()
{
    std::printf("pcsim explicit-state model checking (Murphi-style, "
                "Section 2.5)\n");
    std::printf("invariants: single writer, data-value consistency, "
                "directory consistency,\n"
                "            channel bounds; deadlock detection on "
                "every state\n\n");

    {
        ModelConfig cfg;
        cfg.nodes = 3;
        cfg.maxWrites = 2;
        cfg.maxReads = 1;
        explore("base write-invalidate, 3 nodes", cfg);
        cfg.delegation = true;
        explore("+ directory delegation", cfg);
        cfg.updates = true;
        explore("+ speculative updates", cfg);
        cfg.maxReads = 2;
        explore("+ speculative updates, 2 reads/node", cfg, 800'000);
    }

    std::printf("\nsystematic interleaving exploration of the REAL "
                "implementation\n(every schedule runs with the "
                "coherence/SC checker enabled):\n\n");

    const Addr a = 0x70000000ull;
    {
        std::vector<std::vector<SchedOp>> ops = {
            {{true, a}, {true, a}, {true, a}},
            {{false, a}, {false, a}},
            {{true, a}},
        };
        MachineConfig cfg = presets::small(16);
        cfg.proto.detector.writeRepeatSaturation = 1;
        ScheduleExplorer ex(cfg, ops);
        ScheduleResult r = ex.run();
        std::printf("  full mechanisms, 6 ops, 3 CPUs: %llu schedules "
                    "executed, %llu ops -- all clean\n",
                    (unsigned long long)r.schedules,
                    (unsigned long long)r.opsExecuted);
    }
    {
        std::vector<std::vector<SchedOp>> ops = {
            {{true, a}, {false, a}},
            {{true, a}, {false, a}},
            {{false, a}, {true, a}},
        };
        ScheduleExplorer ex(presets::base(16), ops);
        ScheduleResult r = ex.run();
        std::printf("  base protocol, 6 ops, 3 CPUs: %llu schedules "
                    "executed, %llu ops -- all clean\n",
                    (unsigned long long)r.schedules,
                    (unsigned long long)r.opsExecuted);
    }

    std::printf("\nDuring development this machinery caught two real "
                "protocol bugs:\n"
                " 1. a stale speculative update racing a newer "
                "writer's invalidation\n    (fixed with epoch-carrying "
                "invals + a recently-invalidated buffer),\n"
                " 2. a data reply outliving its transaction after an "
                "update satisfied the\n    read (fixed with "
                "transaction ids on request/response pairs).\n");
    return 0;
}
