/** @file SharerSet unit tests: inline word, heap spill, coarse
 *  granularity, deterministic iteration order, and set operations. */

#include <gtest/gtest.h>

#include <vector>

#include "src/mem/sharer_set.hh"

using namespace pcsim;

namespace
{

std::vector<NodeId>
nodesOf(const SharerSet &s, unsigned num_nodes)
{
    std::vector<NodeId> out;
    s.forEachNode(num_nodes, [&](NodeId n) { out.push_back(n); });
    return out;
}

std::vector<unsigned>
slotsOf(const SharerSet &s)
{
    std::vector<unsigned> out;
    s.forEachSlot([&](unsigned b) { out.push_back(b); });
    return out;
}

} // namespace

TEST(SharerSet, StartsEmptyExact)
{
    SharerSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.granularity(), 1u);
    EXPECT_EQ(s.countSlots(), 0u);
    EXPECT_FALSE(s.usesHeap());
    EXPECT_EQ(s.toString(), "0x0");
}

TEST(SharerSet, InlineAddRemoveContains)
{
    SharerSet s;
    s.add(0);
    s.add(2);
    s.add(63);
    EXPECT_TRUE(s.contains(0));
    EXPECT_FALSE(s.contains(1));
    EXPECT_TRUE(s.contains(2));
    EXPECT_TRUE(s.contains(63));
    EXPECT_EQ(s.countSlots(), 3u);
    EXPECT_FALSE(s.usesHeap());
    s.remove(2);
    EXPECT_FALSE(s.contains(2));
    EXPECT_EQ(s.countSlots(), 2u);
    s.remove(5); // removing an absent node is a no-op
    EXPECT_EQ(s.countSlots(), 2u);
}

TEST(SharerSet, HexImageMatchesHistoricalMask)
{
    // The old uint32 prints showed "0x5" for sharers {0, 2}.
    SharerSet s;
    s.add(0);
    s.add(2);
    EXPECT_EQ(s.toString(), "0x5");
}

TEST(SharerSet, HeapSpillBeyond64Nodes)
{
    SharerSet s;
    s.add(3);
    EXPECT_FALSE(s.usesHeap());
    s.add(64);
    s.add(199);
    EXPECT_TRUE(s.usesHeap());
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(64));
    EXPECT_TRUE(s.contains(199));
    EXPECT_FALSE(s.contains(128));
    EXPECT_EQ(s.countSlots(), 3u);
    s.remove(199);
    EXPECT_FALSE(s.contains(199));
    EXPECT_EQ(s.countSlots(), 2u);
    // contains() past the allocated words is false, not UB.
    EXPECT_FALSE(s.contains(4000));
}

TEST(SharerSet, IterationAscendingRegardlessOfInsertionOrder)
{
    SharerSet s;
    for (NodeId n : {150, 3, 64, 0, 89})
        s.add(n);
    const std::vector<NodeId> want = {0, 3, 64, 89, 150};
    EXPECT_EQ(nodesOf(s, 256), want);
    EXPECT_EQ(slotsOf(s), std::vector<unsigned>({0, 3, 64, 89, 150}));
}

TEST(SharerSet, ForEachNodeRespectsNumNodesCap)
{
    SharerSet s;
    s.add(1);
    s.add(14);
    s.add(15);
    EXPECT_EQ(nodesOf(s, 15), std::vector<NodeId>({1, 14}));
}

TEST(SharerSet, CountNodesEqualsCountSlotsAtGranularityOne)
{
    SharerSet s;
    s.add(2);
    s.add(70);
    EXPECT_EQ(s.countNodes(128), s.countSlots());
}

TEST(SharerSet, CoarseGroupsShareOneBit)
{
    SharerSet s(/*granularity_log2=*/2); // 4 nodes per bit
    EXPECT_EQ(s.granularity(), 4u);
    s.add(5);
    // The whole group {4,5,6,7} is conservatively present.
    for (NodeId n : {4, 5, 6, 7})
        EXPECT_TRUE(s.contains(n));
    EXPECT_FALSE(s.contains(3));
    EXPECT_FALSE(s.contains(8));
    EXPECT_EQ(s.countSlots(), 1u);
    EXPECT_EQ(s.countNodes(16), 4u);
    EXPECT_EQ(nodesOf(s, 16), std::vector<NodeId>({4, 5, 6, 7}));
    // The cap truncates a partially covered last group.
    EXPECT_EQ(nodesOf(s, 6), std::vector<NodeId>({4, 5}));
}

TEST(SharerSet, CoarseRemoveClearsWholeGroup)
{
    SharerSet s(1); // 2 nodes per bit
    s.add(2);
    s.add(3);
    EXPECT_EQ(s.countSlots(), 1u);
    s.remove(2);
    EXPECT_FALSE(s.contains(3));
    EXPECT_TRUE(s.empty());
}

TEST(SharerSet, CoarseKeepsSixteenNodesInOneWordAt256)
{
    SharerSet s(4); // 16 nodes per bit: 256 nodes in 16 slots
    s.add(0);
    s.add(255);
    EXPECT_FALSE(s.usesHeap());
    EXPECT_EQ(s.countSlots(), 2u);
    EXPECT_EQ(s.countNodes(256), 32u);
}

TEST(SharerSet, ClearPreservesGranularity)
{
    SharerSet s(3);
    s.add(9);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.granularityLog2(), 3u);
}

TEST(SharerSet, SetGranularityAllowedOnlyWhileEmpty)
{
    SharerSet s;
    s.setGranularityLog2(2);
    EXPECT_EQ(s.granularity(), 4u);
    s.add(1);
    s.setGranularityLog2(2); // same value: fine even when non-empty
    EXPECT_DEATH(s.setGranularityLog2(0), "granularity");
}

TEST(SharerSet, GranularityTransfersByCopy)
{
    SharerSet dir(2);
    dir.add(10);
    SharerSet payload = dir; // message payloads copy the whole set
    EXPECT_EQ(payload.granularityLog2(), 2u);
    EXPECT_TRUE(payload.contains(10));
    EXPECT_EQ(payload, dir);
}

TEST(SharerSet, UnionMergesAndAdoptsGranularity)
{
    SharerSet a;
    a.add(1);
    a.add(100);
    SharerSet b;
    b.add(2);
    b.add(100);
    a |= b;
    EXPECT_EQ(nodesOf(a, 256), std::vector<NodeId>({1, 2, 100}));

    SharerSet empty;
    SharerSet coarse(2);
    coarse.add(8);
    empty |= coarse; // empty set adopts the other granularity
    EXPECT_EQ(empty.granularityLog2(), 2u);
    EXPECT_TRUE(empty.contains(9));

    SharerSet exact;
    exact.add(1);
    EXPECT_DEATH(exact |= coarse, "mismatched granularities");
}

TEST(SharerSet, EqualityIgnoresTrailingZeroWords)
{
    SharerSet a;
    a.add(70);
    a.remove(70); // leaves an all-zero heap word behind
    SharerSet b;
    EXPECT_EQ(a, b);
    b.add(0);
    EXPECT_NE(a, b);
    // Different granularities compare unequal unless both empty.
    SharerSet c(1);
    EXPECT_EQ(SharerSet{}, c);
    c.add(0);
    SharerSet d;
    d.add(0);
    d.add(1);
    EXPECT_NE(c, d);
}

TEST(SharerSet, WideToStringConcatenatesWordsHighFirst)
{
    SharerSet s;
    s.add(0);
    s.add(64);
    EXPECT_EQ(s.toString(), "0x10000000000000001");
}
