/** @file Scale-out tests: topology and memory-map behavior at
 *  non-power-of-two and large node counts, configuration validation,
 *  detector width scaling, and a 64-node machine run end-to-end under
 *  the invariant checker (exact and coarse sharing vectors). */

#include <gtest/gtest.h>

#include "src/core/pc_detector.hh"
#include "src/mem/memory_map.hh"
#include "src/net/topology.hh"
#include "src/protocol/config.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/micro.hh"
#include "src/workload/suite.hh"

using namespace pcsim;

// --- Topology at odd and large node counts -------------------------

class TopologyAtScale : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TopologyAtScale, DepthCoversAllLeaves)
{
    const unsigned n = GetParam();
    FatTreeTopology t(n);
    // radix^depth reaches every leaf; depth-1 would not (unless the
    // machine fits a single router).
    std::uint64_t reach = 1;
    for (unsigned d = 0; d < t.depth(); ++d)
        reach *= t.radix();
    EXPECT_GE(reach, n);
    if (t.depth() > 1) {
        EXPECT_LT(reach / t.radix(), n);
    }
    EXPECT_EQ(t.maxHops(), t.depth());
}

TEST_P(TopologyAtScale, HopsAreSymmetricAndBounded)
{
    const unsigned n = GetParam();
    FatTreeTopology t(n);
    const unsigned step = n > 32 ? 7 : 1; // sample large machines
    for (unsigned a = 0; a < n; a += step) {
        EXPECT_EQ(t.hops(a, a), 0u);
        for (unsigned b = 0; b < n; b += step) {
            EXPECT_EQ(t.hops(a, b), t.hops(b, a));
            if (a != b) {
                EXPECT_GE(t.hops(a, b), 1u);
                EXPECT_LE(t.hops(a, b), t.maxHops());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologyAtScale,
                         ::testing::Values(3u, 24u, 64u, 200u));

TEST(TopologyAtScale, KnownHopCounts)
{
    FatTreeTopology t(200); // depth 3: 8 < 200 <= 512
    EXPECT_EQ(t.depth(), 3u);
    EXPECT_EQ(t.hops(0, 7), 1u);    // same leaf router
    EXPECT_EQ(t.hops(0, 63), 2u);   // same level-2 router
    EXPECT_EQ(t.hops(0, 199), 3u);  // across the root
    FatTreeTopology small(3);
    EXPECT_EQ(small.depth(), 1u);
    EXPECT_EQ(small.hops(0, 2), 1u);
}

// --- Memory map at odd and large node counts -----------------------

class MemoryMapAtScale : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MemoryMapAtScale, RoundRobinCoversEveryNode)
{
    const unsigned n = GetParam();
    MemoryMap m(n, 16 * 1024, Placement::RoundRobin);
    std::vector<unsigned> hits(n, 0);
    for (unsigned p = 0; p < 2 * n; ++p) {
        const NodeId home = m.homeOf(Addr{p} * 16 * 1024, 0);
        ASSERT_LT(home, n);
        ++hits[home];
    }
    for (unsigned node = 0; node < n; ++node)
        EXPECT_EQ(hits[node], 2u) << "node " << node;
}

TEST_P(MemoryMapAtScale, FirstTouchKeepsHighNodeIds)
{
    const unsigned n = GetParam();
    MemoryMap m(n);
    const NodeId last = static_cast<NodeId>(n - 1);
    EXPECT_EQ(m.homeOf(0x100000, last), last);
    EXPECT_EQ(m.homeOf(0x100000, 0), last);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MemoryMapAtScale,
                         ::testing::Values(3u, 24u, 64u, 200u));

// --- Configuration validation --------------------------------------

TEST(ConfigValidate, PresetsAreValidAtEveryScalePoint)
{
    for (unsigned n : presets::scaleNodeCounts()) {
        for (const auto &nc : presets::scaleConfigs(n))
            EXPECT_EQ(nc.cfg.proto.validateError(), "")
                << nc.name << " at " << n;
        const MachineConfig c =
            presets::coarse(presets::base(n), /*nodes_per_bit=*/8);
        EXPECT_EQ(c.proto.validateError(), "") << "coarse at " << n;
    }
}

TEST(ConfigValidate, RejectsDegenerateConfigs)
{
    ProtocolConfig c;
    c.numNodes = 0;
    EXPECT_NE(c.validateError().find("numNodes"), std::string::npos);

    c = ProtocolConfig{};
    c.numNodes = ProtocolConfig::maxNodes + 1;
    EXPECT_NE(c.validateError().find("maximum"), std::string::npos);

    c = ProtocolConfig{};
    c.lineBytes = 96; // not a power of two
    EXPECT_NE(c.validateError().find("lineBytes"), std::string::npos);

    c = ProtocolConfig{};
    c.numNodes = 16;
    c.sharerGranularityLog2 = 5; // 32 nodes per bit > machine size
    EXPECT_NE(c.validateError().find("sharerGranularityLog2"),
              std::string::npos);

    c = ProtocolConfig{};
    c.kind = ProtocolKind::Delegation; // without a RAC
    EXPECT_NE(c.validateError().find("RAC"), std::string::npos);

    c = ProtocolConfig{};
    c.kind = ProtocolKind::WriteUpdate;
    c.racEnabled = true; // update-based kinds reject the RAC
    c.rac.sizeBytes = 32 * 1024;
    EXPECT_NE(c.validateError().find("update-based"), std::string::npos);

    c = ProtocolConfig{};
    c.kind = ProtocolKind::NumProtocolKinds; // out of range
    EXPECT_NE(c.validateError().find("unknown ProtocolKind"),
              std::string::npos);

    c = ProtocolConfig{};
    c.kind = ProtocolKind::AdaptiveHybrid;
    c.adaptiveThreshold = 0;
    EXPECT_NE(c.validateError().find("adaptiveThreshold"),
              std::string::npos);

    EXPECT_EQ(ProtocolConfig{}.validateError(), "");
}

TEST(ConfigValidate, SystemConstructorEnforcesValidation)
{
    MachineConfig m = presets::base(16);
    m.proto.mshrs = 0;
    EXPECT_EXIT(System sys(m), ::testing::ExitedWithCode(1), "mshrs");
}

// --- Detector width scales with the machine ------------------------

TEST(DetectorWidth, EightBitsPerEntryAtSixteenNodes)
{
    // The paper's sizing: 4-bit writer id + RW + WW + stable + valid.
    EXPECT_EQ(pcDetectorWriterBits(16), 4u);
    EXPECT_EQ(pcDetectorBitsPerEntry(16), 8u);
}

TEST(DetectorWidth, GrowsLogarithmically)
{
    EXPECT_EQ(pcDetectorBitsPerEntry(1), 5u);
    EXPECT_EQ(pcDetectorBitsPerEntry(3), 6u);
    EXPECT_EQ(pcDetectorBitsPerEntry(64), 10u);
    EXPECT_EQ(pcDetectorBitsPerEntry(200), 12u);
    EXPECT_EQ(pcDetectorBitsPerEntry(256), 12u);
}

TEST(DetectorWidth, ReportedInNodeStats)
{
    System sys(presets::base(16));
    EXPECT_EQ(sys.hub(0).stats().detectorBitsPerEntry, 8u);
    System big(presets::base(64));
    EXPECT_EQ(big.hub(0).stats().detectorBitsPerEntry, 10u);
}

// --- 64-node machines under the invariant checker ------------------

TEST(ScaleIntegration, SixtyFourNodeConfigsRunClean)
{
    for (const auto &nc : presets::scaleConfigs(64)) {
        MachineConfig cfg = nc.cfg;
        cfg.proto.checkerEnabled = true;
        cfg.proto.conformanceEnabled = true;
        ProducerConsumerMicro::Params p;
        p.iterations = 6;
        ProducerConsumerMicro wl(64, p);
        RunResult r = runWorkload(cfg, wl, nc.name);
        EXPECT_GT(r.cycles, 0u) << nc.name;
        EXPECT_GT(r.totalMisses(), 0u) << nc.name;
    }
}

TEST(ScaleIntegration, SixtyFourNodeCoarseVectorRunsClean)
{
    // 8 nodes per directory bit: spurious invalidations must be
    // tolerated everywhere the sharer vector fans out.
    MachineConfig cfg =
        presets::coarse(presets::small(64), /*nodes_per_bit=*/8);
    cfg.proto.checkerEnabled = true;
    cfg.proto.conformanceEnabled = true;
    RandomMicro::Params p;
    p.opsPerCpu = 150;
    p.lines = 24;
    RandomMicro wl(64, p);
    RunResult r = runWorkload(cfg, wl, "coarse");
    EXPECT_GT(r.totalMisses(), 0u);
}

TEST(ScaleIntegration, UpdatesStillWinAtSixtyFourNodes)
{
    auto wl = makeWorkload("Em3D", 64, 0.1);
    RunResult base = runWorkload(presets::base(64), *wl, "base");
    RunResult full = runWorkload(presets::small(64), *wl, "small");
    EXPECT_LT(full.cycles, base.cycles);
    EXPECT_LT(full.nodes.remoteMisses, base.nodes.remoteMisses);
    EXPECT_GT(full.nodes.updatesConsumed, 0u);
}
