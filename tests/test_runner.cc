/**
 * @file
 * Experiment runner: pool determinism, result ordering, failure
 * isolation and the workload/config registries.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/runner/figures.hh"
#include "src/runner/job.hh"
#include "src/runner/results.hh"
#include "src/runner/runner.hh"
#include "src/workload/micro.hh"

using namespace pcsim;
using namespace pcsim::runner;

namespace
{

/** A small 4-node job mix: two micro patterns x two configurations. */
JobSet
smallJobSet()
{
    JobSet set;
    for (const char *workload : {"PCmicro", "Random"}) {
        for (const char *config : {"base", "small"}) {
            Job j;
            j.workload = workload;
            std::string canonical;
            EXPECT_TRUE(namedMachineConfig(config, 4, j.cfg,
                                           canonical));
            j.configName = canonical;
            j.cfg.proto.checkerEnabled = false;
            j.seed = 7;
            set.add(std::move(j));
        }
    }
    EXPECT_EQ(set.size(), 4u);
    return set;
}

RunnerOptions
quiet(unsigned threads)
{
    RunnerOptions o;
    o.threads = threads;
    o.progress = false;
    return o;
}

} // namespace

TEST(Runner, PoolMatchesSerialByteForByte)
{
    const JobSet set = smallJobSet();

    const auto serial = runJobs(set, quiet(1));
    const auto pooled = runJobs(set, quiet(4));

    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(pooled.size(), 4u);
    for (const auto &r : serial)
        EXPECT_TRUE(r.ok) << r.error;
    for (const auto &r : pooled)
        EXPECT_TRUE(r.ok) << r.error;

    // The serialized documents -- the unit the determinism check and
    // downstream consumers operate on -- must be byte-identical.
    // Serialize without host timing: wall-clock rates legitimately
    // differ between runs (schemaVersion 2 perf telemetry).
    EXPECT_EQ(resultsToJson(serial, /*with_timing=*/false).dump(2),
              resultsToJson(pooled, /*with_timing=*/false).dump(2));
    EXPECT_EQ(resultsToCsv(serial, /*with_timing=*/false),
              resultsToCsv(pooled, /*with_timing=*/false));
}

TEST(Runner, ResultsComeBackInJobOrder)
{
    const JobSet set = smallJobSet();
    const auto results = runJobs(set, quiet(4));
    ASSERT_EQ(results.size(), set.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].job.label, set.jobs()[i].label);
        EXPECT_EQ(results[i].result.workload,
                  i < 2 ? "PCmicro" : "Random");
    }
}

TEST(Runner, SeedChangesRandomWorkloadOutcome)
{
    JobSet a, b;
    Job j;
    j.workload = "Random";
    j.cfg = presets::base(4);
    j.cfg.proto.checkerEnabled = false;
    j.configName = "base";
    j.seed = 1;
    a.add(j);
    j.seed = 2;
    b.add(j);

    const auto ra = runJobs(a, quiet(1));
    const auto rb = runJobs(b, quiet(1));
    ASSERT_TRUE(ra[0].ok && rb[0].ok);
    // Different machine seeds give different NACK/backoff jitter, so
    // the cycle counts should differ; identical seeds must not.
    const auto ra2 = runJobs(a, quiet(1));
    EXPECT_EQ(ra[0].result.cycles, ra2[0].result.cycles);
    EXPECT_NE(ra[0].result.cycles, rb[0].result.cycles);
}

TEST(Runner, ThrowingJobIsReportedFailedWithoutStallingPool)
{
    JobSet set = smallJobSet();

    Job bad;
    bad.workload = "PCmicro";
    bad.cfg = presets::base(4);
    bad.configName = "base";
    bad.label = "boom";
    bad.factory = []() -> std::unique_ptr<Workload> {
        throw std::runtime_error("synthetic workload failure");
    };
    // Insert in the middle so the pool has work before and after.
    set.jobs().insert(set.jobs().begin() + 2, bad);

    const auto results = runJobs(set, quiet(4));
    ASSERT_EQ(results.size(), 5u);
    EXPECT_FALSE(results[2].ok);
    EXPECT_EQ(results[2].error, "synthetic workload failure");
    EXPECT_EQ(results[2].job.label, "boom");
    for (std::size_t i : {0u, 1u, 3u, 4u})
        EXPECT_TRUE(results[i].ok) << i << ": " << results[i].error;

    // Failed jobs serialize as ok=false with zeroed statistics.
    const JsonValue doc = resultsToJson(results);
    const JsonValue &entry = doc.at("results").at(2);
    EXPECT_FALSE(entry.at("ok").asBool());
    EXPECT_EQ(entry.at("error").asString(),
              "synthetic workload failure");
    EXPECT_EQ(entry.at("cycles").asUInt(), 0u);
}

TEST(Runner, UnknownWorkloadFailsTheJobNotTheProcess)
{
    JobSet set;
    Job j;
    j.workload = "no-such-benchmark";
    j.cfg = presets::base(4);
    set.add(std::move(j));

    const auto results = runJobs(set, quiet(2));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("no-such-benchmark"),
              std::string::npos);
}

TEST(Runner, WorkloadRegistryCanonicalizes)
{
    EXPECT_EQ(canonicalWorkload("em3d"), "Em3D");
    EXPECT_EQ(canonicalWorkload("EM3D"), "Em3D");
    EXPECT_EQ(canonicalWorkload("micro"), "PCmicro");
    EXPECT_EQ(canonicalWorkload("lu"), "LU");
    EXPECT_EQ(canonicalWorkload("bogus"), "");
    EXPECT_THROW(makeRunnerWorkload("bogus", 4),
                 std::invalid_argument);

    auto wl = makeRunnerWorkload("random", 4, 0.25);
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->numCpus(), 4u);
}

TEST(Runner, ConfigRegistryLooksUpPresetsAndAliases)
{
    MachineConfig cfg;
    std::string canonical;

    ASSERT_TRUE(namedMachineConfig("pcopt", 16, cfg, canonical));
    EXPECT_EQ(canonical, "small");
    EXPECT_TRUE(cfg.proto.delegationEnabled());
    EXPECT_TRUE(cfg.proto.updatesEnabled());
    EXPECT_TRUE(cfg.proto.racEnabled);

    ASSERT_TRUE(namedMachineConfig("BASE", 8, cfg, canonical));
    EXPECT_EQ(canonical, "base");
    EXPECT_EQ(cfg.proto.numNodes, 8u);
    EXPECT_FALSE(cfg.proto.racEnabled);

    ASSERT_TRUE(namedMachineConfig("delegation", 16, cfg, canonical));
    EXPECT_TRUE(cfg.proto.delegationEnabled());
    EXPECT_FALSE(cfg.proto.updatesEnabled());

    EXPECT_FALSE(namedMachineConfig("warp-drive", 16, cfg, canonical));
}

TEST(Runner, SweepBuildsCartesianProductInOrder)
{
    JobSet set;
    set.sweep({"Em3D", "LU"}, presets::figure7Configs(16), 0.5,
              {1, 2});
    ASSERT_EQ(set.size(), 2u * 6u * 2u);
    // workload-major, then config, then seed.
    EXPECT_EQ(set.jobs()[0].workload, "Em3D");
    EXPECT_EQ(set.jobs()[0].seed, 1u);
    EXPECT_EQ(set.jobs()[1].seed, 2u);
    EXPECT_EQ(set.jobs()[2].configName, "32K RAC");
    EXPECT_EQ(set.jobs()[12].workload, "LU");
    for (const auto &j : set.jobs())
        EXPECT_DOUBLE_EQ(j.scale, 0.5);
}

TEST(Runner, FindResultLocatesEntries)
{
    const auto results = runJobs(smallJobSet(), quiet(2));
    const JsonValue doc = resultsToJson(results);
    const JsonValue *e = findResult(doc, "PCmicro", "small");
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->at("ok").asBool());
    EXPECT_EQ(findResult(doc, "PCmicro", "no-such-config"), nullptr);

    // Round-trip one entry back into a RunResult.
    const RunResult r = runResultFromJson(*e);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.workload, "PCmicro");
}
