/** @file Directed tests of the base directory write-invalidate
 *  protocol (2-hop / 3-hop transactions, invalidation fan-out,
 *  writebacks). */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace pcsim;

namespace
{

MachineConfig
baseCfg()
{
    MachineConfig m = presets::base(16);
    return m;
}

} // namespace

TEST(ProtocolBasic, FirstTouchHomesAtFirstAccessor)
{
    Harness h(baseCfg());
    h.read(5, testLine(0));
    EXPECT_EQ(h.home(testLine(0)), 5);
}

TEST(ProtocolBasic, ReadUnownedGivesSharedCopy)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(3, a); // homes at 3, local
    EXPECT_EQ(h.l2State(3, a), LineState::Shared);
    DirEntry d = h.dir(a);
    EXPECT_EQ(d.state, DirState::Shared);
    EXPECT_TRUE(d.isSharer(3));
    h.checkQuiescent();
}

TEST(ProtocolBasic, LocalMissDoesNotTouchNetwork)
{
    Harness h(baseCfg());
    h.read(3, testLine(0));
    EXPECT_EQ(h.stats(3).localMisses, 1u);
    EXPECT_EQ(h.stats(3).remoteMisses, 0u);
    EXPECT_EQ(h.sys.network().numMessages(), 0u);
}

TEST(ProtocolBasic, RemoteReadIsTwoHop)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a); // home = 0
    h.read(5, a); // remote 2-hop read
    EXPECT_EQ(h.stats(5).remoteMisses, 1u);
    EXPECT_EQ(h.stats(5).twoHopMisses, 1u);
    EXPECT_EQ(h.stats(5).threeHopMisses, 0u);
    EXPECT_EQ(h.l2State(5, a), LineState::Shared);
    EXPECT_TRUE(h.dir(a).isSharer(5));
    h.checkQuiescent();
}

TEST(ProtocolBasic, WriteUnownedGivesExclusive)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    const Version v = h.write(2, a);
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(h.l2State(2, a), LineState::Modified);
    DirEntry d = h.dir(a);
    EXPECT_EQ(d.state, DirState::Excl);
    EXPECT_EQ(d.owner, 2);
    h.checkQuiescent();
}

TEST(ProtocolBasic, VersionsCountStores)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    EXPECT_EQ(h.write(2, a), 1u);
    EXPECT_EQ(h.write(2, a), 2u);
    EXPECT_EQ(h.write(2, a), 3u);
    EXPECT_EQ(h.read(4, a), 3u); // reader sees the newest version
}

TEST(ProtocolBasic, WriteInvalidatesAllSharers)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    for (unsigned c = 1; c <= 4; ++c)
        h.read(c, a);
    h.write(7, a);
    for (unsigned c = 0; c <= 4; ++c)
        EXPECT_EQ(h.l2State(c, a), LineState::Invalid) << "cpu " << c;
    EXPECT_EQ(h.l2State(7, a), LineState::Modified);
    EXPECT_EQ(h.dir(a).owner, 7);
    h.checkQuiescent();
}

TEST(ProtocolBasic, UpgradeKeepsDataLocal)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    h.read(3, a);        // 3 has a SHARED copy
    const auto reads_before = h.stats(3).remoteMisses;
    h.write(3, a);       // upgrade: ownership without data transfer
    EXPECT_EQ(h.l2State(3, a), LineState::Modified);
    EXPECT_EQ(h.stats(3).remoteMisses, reads_before + 1);
    h.checkQuiescent();
}

TEST(ProtocolBasic, ThreeHopRead)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);  // home 0
    h.write(5, a); // owner 5 (dirty)
    h.read(9, a);  // 3-hop: 9 -> 0 -> 5 -> 9
    EXPECT_EQ(h.stats(9).threeHopMisses, 1u);
    EXPECT_EQ(h.l2State(9, a), LineState::Shared);
    EXPECT_EQ(h.l2State(5, a), LineState::Shared); // downgraded
    DirEntry d = h.dir(a);
    EXPECT_EQ(d.state, DirState::Shared);
    EXPECT_TRUE(d.isSharer(5));
    EXPECT_TRUE(d.isSharer(9));
    h.checkQuiescent();
}

TEST(ProtocolBasic, ThreeHopWriteTransfersOwnership)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    h.write(5, a);
    h.write(9, a); // 3-hop transfer 5 -> 9
    EXPECT_EQ(h.l2State(5, a), LineState::Invalid);
    EXPECT_EQ(h.l2State(9, a), LineState::Modified);
    EXPECT_EQ(h.dir(a).owner, 9);
    EXPECT_GE(h.stats(9).threeHopMisses, 1u);
    h.checkQuiescent();
}

TEST(ProtocolBasic, ReadAfterWriteSeesNewData)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    Version v1 = h.write(5, a);
    EXPECT_EQ(h.read(9, a), v1);
    Version v2 = h.write(5, a); // upgrade again
    EXPECT_EQ(h.read(9, a), v2);
    h.checkQuiescent();
}

TEST(ProtocolBasic, EvictionWritesBackModifiedData)
{
    MachineConfig m = baseCfg();
    // Tiny L2 to force evictions: 4 sets * 1 way * 128 B.
    m.proto.l2SizeBytes = 4 * 128;
    m.proto.l2Ways = 1;
    Harness h(m);
    const Addr a = testLine(0);
    h.read(0, a);
    h.write(5, a);
    // Write conflicting lines on node 5 to evict `a` (same set every
    // 4 lines).
    h.write(5, testLine(4));
    EXPECT_EQ(h.l2State(5, a), LineState::Invalid);
    EXPECT_GE(h.stats(5).writebacks, 1u);
    DirEntry d = h.dir(a);
    EXPECT_EQ(d.state, DirState::Unowned);
    // Memory received the current data.
    EXPECT_EQ(h.read(9, a), 1u);
    h.checkQuiescent();
}

TEST(ProtocolBasic, CleanExclusiveEvictionAlsoNotifiesHome)
{
    MachineConfig m = baseCfg();
    m.proto.l2SizeBytes = 4 * 128;
    m.proto.l2Ways = 1;
    Harness h(m);
    const Addr a = testLine(0);
    h.read(0, a);
    h.write(5, a);           // M at 5
    h.read(9, a);            // downgrade: 5 and 9 Shared
    h.write(5, a);           // upgrade: M at 5 again
    h.write(5, testLine(4)); // evict -> writeback
    EXPECT_EQ(h.dir(a).state, DirState::Unowned);
    h.checkQuiescent();
}

TEST(ProtocolBasic, L1HitsAvoidTheL2)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(3, a);
    const auto l2_before = h.stats(3).l2Hits;
    h.read(3, a);
    h.read(3, a);
    EXPECT_EQ(h.stats(3).l1Hits, 2u);
    EXPECT_EQ(h.stats(3).l2Hits, l2_before);
}

TEST(ProtocolBasic, SilentSharedEvictionToleratedByInval)
{
    MachineConfig m = baseCfg();
    m.proto.l2SizeBytes = 4 * 128;
    m.proto.l2Ways = 1;
    Harness h(m);
    const Addr a = testLine(0);
    h.read(0, a);
    h.read(5, a);            // 5 shares
    h.read(5, testLine(4));  // silently evicts the S copy
    EXPECT_EQ(h.l2State(5, a), LineState::Invalid);
    // Home still lists 5; the write's Inval to 5 must be acked even
    // though 5 no longer holds the line.
    EXPECT_TRUE(h.dir(a).isSharer(5));
    h.write(9, a);
    EXPECT_EQ(h.dir(a).owner, 9);
    h.checkQuiescent();
}

TEST(ProtocolBasic, DistinctLinesAreIndependent)
{
    Harness h(baseCfg());
    for (unsigned i = 0; i < 8; ++i)
        h.write(i, testLine(i));
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(h.l2State(i, testLine(i)), LineState::Modified);
        EXPECT_EQ(h.dir(testLine(i)).owner, i);
    }
    h.checkQuiescent();
}

TEST(ProtocolBasic, SixteenReadersAllBecomeSharers)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.write(0, a);
    for (unsigned c = 0; c < 16; ++c)
        h.read(c, a);
    DirEntry d = h.dir(a);
    EXPECT_EQ(d.state, DirState::Shared);
    EXPECT_EQ(d.numSharers(), 16u);
    h.checkQuiescent();
}
