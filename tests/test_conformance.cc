/** @file Runtime conformance-hook tests: the TransitionObserver must
 *  fail the run on each violation class (with line address, node and
 *  message-trace context), accumulate deterministic coverage on legal
 *  sequences, and stay out of the way when disabled. */

#include <gtest/gtest.h>

#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/verify/observer.hh"
#include "src/verify/spec.hh"
#include "src/verify/trace.hh"
#include "src/workload/micro.hh"

#include "harness.hh"

using namespace pcsim;
using namespace pcsim::verify;

namespace
{

constexpr Addr kLine = 0x70000000ull;

/** Two-state toy spec: I --CpuLoad--> {I, S} sending ReqShared only;
 *  (S, Inval) declared impossible; everything else unspecified. */
TransitionSpec
tinySpec()
{
    TransitionSpec s;
    s.declareState(Ctrl::Cache, 0, "I");
    s.declareState(Ctrl::Cache, 1, "S");
    s.setInitial(Ctrl::Cache, 0);
    TransitionRule r;
    r.ctrl = Ctrl::Cache;
    r.state = 0;
    r.event = PEvent::CpuLoad;
    r.next = {0, 1};
    r.sends = {MsgType::ReqShared};
    s.add(r);
    s.declareImpossible(Ctrl::Cache, 1, PEvent::Inval, "test");
    return s;
}

Message
msg(MsgType t)
{
    Message m;
    m.type = t;
    m.addr = kLine;
    m.src = 0;
    m.dst = 1;
    return m;
}

} // namespace

TEST(ConformanceDeathTest, NoRuleForPairFailsRun)
{
    TransitionSpec spec = tinySpec();
    TransitionObserver obs(spec);
    EXPECT_DEATH(obs.begin(Ctrl::Cache, 3, kLine, 0, PEvent::CpuStore),
                 "conformance violation: no rule for this \\(state, "
                 "event\\) pair");
}

TEST(ConformanceDeathTest, ImpossiblePairFailsRun)
{
    TransitionSpec spec = tinySpec();
    TransitionObserver obs(spec);
    EXPECT_DEATH(obs.begin(Ctrl::Cache, 3, kLine, 1, PEvent::Inval),
                 "event declared impossible in this state");
}

TEST(ConformanceDeathTest, DisallowedSendFailsRun)
{
    TransitionSpec spec = tinySpec();
    TransitionObserver obs(spec);
    obs.begin(Ctrl::Cache, 3, kLine, 0, PEvent::CpuLoad);
    obs.noteSend(msg(MsgType::ReqShared)); // allowed: no death
    EXPECT_DEATH(obs.noteSend(msg(MsgType::ReqExcl)),
                 "handler sent a message the spec does not allow");
    obs.end(1);
}

TEST(ConformanceDeathTest, NextStateOutsideAllowedSetFailsRun)
{
    TransitionSpec spec = tinySpec();
    TransitionObserver obs(spec);
    obs.begin(Ctrl::Cache, 3, kLine, 0, PEvent::CpuLoad);
    EXPECT_DEATH(obs.end(3),
                 "next state outside the spec's allowed set");
    obs.end(1);
}

TEST(ConformanceDeathTest, ViolationCarriesNodeLineAndTrace)
{
    TransitionSpec spec = tinySpec();
    MessageTrace trace;
    trace.record(msg(MsgType::ReqShared), 42);
    TransitionObserver obs(spec, &trace);
    // Node and line address in the report, plus the recorded message.
    EXPECT_DEATH(obs.begin(Ctrl::Cache, 7, kLine, 0, PEvent::CpuStore),
                 "node 7, line 0x70000000.*ReqShared");
}

TEST(Conformance, LegalSequencesAccumulateSortedCoverage)
{
    TransitionSpec spec = tinySpec();
    TransitionObserver obs(spec);
    for (int i = 0; i < 3; ++i) {
        obs.begin(Ctrl::Cache, 0, kLine, 0, PEvent::CpuLoad);
        obs.noteSend(msg(MsgType::ReqShared));
        obs.end(1);
    }
    obs.begin(Ctrl::Cache, 0, kLine, 0, PEvent::CpuLoad);
    obs.end(0);

    const std::vector<TransitionCount> cov = obs.coverage();
    ASSERT_EQ(cov.size(), 2u);
    // Sorted by (ctrl, state, event, next): the I->I tuple first.
    EXPECT_EQ(cov[0].next, 0u);
    EXPECT_EQ(cov[0].count, 1u);
    EXPECT_EQ(cov[1].next, 1u);
    EXPECT_EQ(cov[1].count, 3u);
    EXPECT_EQ(cov[1].ctrl,
              static_cast<std::uint8_t>(Ctrl::Cache));
    EXPECT_EQ(cov[1].event,
              static_cast<std::uint8_t>(PEvent::CpuLoad));
}

TEST(Conformance, NestedFramesAttributeSendsToInnermost)
{
    TransitionSpec spec = tinySpec();
    TransitionRule evict;
    evict.ctrl = Ctrl::Cache;
    evict.state = 1;
    evict.event = PEvent::Evict;
    evict.next = {0};
    evict.sends = {MsgType::WritebackM};
    spec.add(evict);

    TransitionObserver obs(spec);
    obs.begin(Ctrl::Cache, 0, kLine, 0, PEvent::CpuLoad);
    // The fill evicts a victim: inner frame allows WritebackM even
    // though the outer CpuLoad frame does not.
    obs.begin(Ctrl::Cache, 0, kLine + 128, 1, PEvent::Evict);
    obs.noteSend(msg(MsgType::WritebackM));
    obs.end(0);
    obs.noteSend(msg(MsgType::ReqShared));
    obs.end(1);
    EXPECT_EQ(obs.coverage().size(), 2u);
}

TEST(Conformance, SendsOutsideAnyFrameAreIgnored)
{
    TransitionSpec spec = tinySpec();
    TransitionObserver obs(spec);
    obs.noteSend(msg(MsgType::Update)); // no open frame: no check
    EXPECT_TRUE(obs.coverage().empty());
}

TEST(Conformance, ScopeWithNullObserverIsInert)
{
    bool sampled = false;
    {
        ConformanceScope scope(nullptr, Ctrl::Cache, 0, kLine,
                               PEvent::CpuLoad, [&] {
                                   sampled = true;
                                   return StateId{0};
                               });
        scope.overridePost(1);
    }
    EXPECT_FALSE(sampled);
}

TEST(Conformance, ScopeSamplesAndOverridesPost)
{
    TransitionSpec spec = tinySpec();
    TransitionObserver obs(spec);
    {
        ConformanceScope scope(&obs, Ctrl::Cache, 0, kLine,
                               PEvent::CpuLoad,
                               [] { return StateId{0}; });
        scope.overridePost(1); // slot recycled: report S, not re-sample
    }
    const auto cov = obs.coverage();
    ASSERT_EQ(cov.size(), 1u);
    EXPECT_EQ(cov[0].next, 1u);
}

TEST(ConformanceDeathTest, WriteUpdateSeededViolationIsCaught)
{
    // Seed a defect into the write-update policy's spec: forget that
    // a SHARED consumer can absorb an Update push. The observer must
    // fail the run the moment a consumer handles one.
    TransitionSpec spec = buildWriteUpdateSpec();
    ASSERT_TRUE(spec.removeRule(
        Ctrl::Cache, static_cast<StateId>(LineState::Shared),
        PEvent::Update));
    TransitionObserver obs(spec);
    EXPECT_DEATH(obs.begin(Ctrl::Cache, 2, kLine,
                           static_cast<StateId>(LineState::Shared),
                           PEvent::Update),
                 "conformance violation: no rule for this \\(state, "
                 "event\\) pair");
}

TEST(ConformanceDeathTest, AdaptiveHybridSeededViolationIsCaught)
{
    // Seed a defect into the adaptive policy's spec: a consumer
    // absorbing an Update may stay SHARED or self-invalidate, but
    // sending anything other than UpdateDrop while doing so is a
    // violation.
    TransitionSpec spec = buildAdaptiveHybridSpec();
    TransitionObserver obs(spec);
    obs.begin(Ctrl::Cache, 2, kLine,
              static_cast<StateId>(LineState::Shared), PEvent::Update);
    obs.noteSend(msg(MsgType::UpdateDrop)); // allowed: no death
    EXPECT_DEATH(obs.noteSend(msg(MsgType::ReqExcl)),
                 "handler sent a message the spec does not allow");
    obs.end(static_cast<StateId>(LineState::Invalid));
}

TEST(Conformance, FullRunAgainstShippedSpecExportsCoverage)
{
    ProducerConsumerMicro wl(16);
    RunResult r =
        runWorkload(withConformance(presets::small(16)), wl, "small");
    ASSERT_FALSE(r.conformance.empty());
    // All three controllers must report transitions.
    bool seen[3] = {false, false, false};
    std::uint64_t total = 0;
    for (const TransitionCount &t : r.conformance) {
        ASSERT_LT(t.ctrl, 3u);
        seen[t.ctrl] = true;
        total += t.count;
    }
    EXPECT_TRUE(seen[0]);
    EXPECT_TRUE(seen[1]);
    EXPECT_TRUE(seen[2]);
    EXPECT_GT(total, 1000u);
}

TEST(Conformance, DisabledByDefaultLeavesResultEmpty)
{
    ProducerConsumerMicro wl(16);
    RunResult r = runWorkload(presets::small(16), wl, "small");
    EXPECT_TRUE(r.conformance.empty());
}
