/** @file Deterministic RNG tests. */

#include <gtest/gtest.h>

#include <set>

#include "src/sim/random.hh"

using namespace pcsim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.between(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        lo |= (v == 3);
        hi |= (v == 6);
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(5);
    Rng child = a.fork();
    // The child stream should not simply mirror the parent.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == child.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkDeterministic)
{
    Rng a(5), b(5);
    Rng ca = a.fork(), cb = b.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}
