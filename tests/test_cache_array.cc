/** @file Set-associative cache array tests. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/cache/cache_array.hh"

using namespace pcsim;

namespace
{

struct Payload
{
    int value = 0;
    bool pinned = false;
};

CacheArray<Payload>
makeArray(std::size_t sets = 4, std::size_t ways = 2,
          ReplPolicy pol = ReplPolicy::LRU)
{
    return CacheArray<Payload>("test", sets, ways, 128, pol, Rng(1));
}

} // namespace

TEST(CacheArray, MissThenHit)
{
    auto c = makeArray();
    EXPECT_EQ(c.find(0x1000), nullptr);
    Payload *p = c.allocate(0x1000);
    ASSERT_NE(p, nullptr);
    p->value = 7;
    EXPECT_EQ(c.find(0x1000)->value, 7);
}

TEST(CacheArray, LineAlignment)
{
    auto c = makeArray();
    c.allocate(0x1000)->value = 7;
    // Any address within the same 128 B line hits.
    EXPECT_NE(c.find(0x1000 + 127), nullptr);
    EXPECT_EQ(c.find(0x1000 + 128), nullptr);
}

TEST(CacheArray, AllocateExistingReturnsSameSlot)
{
    auto c = makeArray();
    Payload *a = c.allocate(0x1000);
    a->value = 3;
    Payload *b = c.allocate(0x1000);
    EXPECT_EQ(b->value, 3);
}

TEST(CacheArray, LruEvictsLeastRecentlyUsed)
{
    auto c = makeArray(/*sets=*/1, /*ways=*/2);
    c.allocate(c.lineAlign(0 * 128));
    c.allocate(c.lineAlign(1 * 128));
    c.find(0); // touch line 0; line 1 becomes LRU
    Addr evicted = invalidAddr;
    c.allocate(2 * 128, nullptr,
               [&](Addr a, Payload &) { evicted = a; });
    EXPECT_EQ(evicted, 128u);
    EXPECT_NE(c.find(0), nullptr);
    EXPECT_EQ(c.find(128), nullptr);
}

TEST(CacheArray, CanEvictPredicateProtectsPinned)
{
    auto c = makeArray(1, 2);
    c.allocate(0)->pinned = true;
    c.allocate(128)->pinned = true;
    Payload *p = c.allocate(
        256, [](Addr, const Payload &v) { return !v.pinned; });
    EXPECT_EQ(p, nullptr); // set wedged: nothing evictable
    c.find(0, false)->pinned = false;
    p = c.allocate(256,
                   [](Addr, const Payload &v) { return !v.pinned; });
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(c.find(0), nullptr); // the unpinned one was displaced
    EXPECT_NE(c.find(128), nullptr);
}

TEST(CacheArray, InvalidateRemoves)
{
    auto c = makeArray();
    c.allocate(0x1000);
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_EQ(c.find(0x1000), nullptr);
    EXPECT_FALSE(c.invalidate(0x1000));
}

TEST(CacheArray, OccupancyAndClear)
{
    auto c = makeArray(4, 2);
    for (int i = 0; i < 5; ++i)
        c.allocate(i * 128);
    EXPECT_EQ(c.occupancy(), 5u);
    c.clear();
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(CacheArray, ForEachVisitsValidLines)
{
    auto c = makeArray(4, 2);
    c.allocate(0)->value = 1;
    c.allocate(128)->value = 2;
    std::set<Addr> seen;
    c.forEach([&](Addr a, Payload &) { seen.insert(a); });
    EXPECT_EQ(seen, (std::set<Addr>{0, 128}));
}

TEST(CacheArray, NonPowerOfTwoSets)
{
    // Figure 8's 1.04 MB L2 uses a non-power-of-two set count.
    auto c = makeArray(13, 2);
    std::set<Addr> inserted;
    for (int i = 0; i < 26; ++i) {
        ASSERT_NE(c.allocate(i * 128), nullptr);
        inserted.insert(i * 128);
    }
    EXPECT_EQ(c.occupancy(), 26u);
    for (Addr a : inserted)
        EXPECT_NE(c.find(a), nullptr);
}

TEST(CacheArray, CapacityBytes)
{
    auto c = makeArray(8, 4);
    EXPECT_EQ(c.capacityBytes(), 8u * 4 * 128);
}

TEST(CacheArray, RandomPolicyEventuallyEvictsEverything)
{
    auto c = makeArray(1, 4, ReplPolicy::Random);
    for (int i = 0; i < 4; ++i)
        c.allocate(i * 128);
    std::set<Addr> victims;
    for (int i = 4; i < 200; ++i) {
        c.allocate(i * 128, nullptr,
                   [&](Addr a, Payload &) { victims.insert(a); });
    }
    // Random replacement should have displaced many distinct lines.
    EXPECT_GT(victims.size(), 50u);
}

// Property sweep: fills never exceed capacity and hits always return
// the last written payload, across geometries.
class CacheArrayGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheArrayGeometry, FillAndProbe)
{
    const auto [sets, ways] = GetParam();
    CacheArray<Payload> c("geom", sets, ways, 128, ReplPolicy::LRU,
                          Rng(3));
    const int lines = sets * ways * 3;
    for (int i = 0; i < lines; ++i) {
        Payload *p = c.allocate(i * 128);
        ASSERT_NE(p, nullptr);
        p->value = i;
        ASSERT_LE(c.occupancy(), static_cast<std::size_t>(sets * ways));
        Payload *hit = c.find(i * 128);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(hit->value, i);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheArrayGeometry,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 4),
                      std::make_tuple(8, 2), std::make_tuple(13, 4),
                      std::make_tuple(64, 4), std::make_tuple(256, 8)));
