/** @file System assembly, presets and configuration tests. */

#include <gtest/gtest.h>

#include "harness.hh"
#include "src/workload/micro.hh"

using namespace pcsim;

TEST(Presets, BaseMatchesTable1)
{
    MachineConfig m = presets::base(16);
    EXPECT_EQ(m.proto.numNodes, 16u);
    EXPECT_EQ(m.proto.lineBytes, 128u);
    EXPECT_EQ(m.proto.l2SizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(m.proto.l2Ways, 4u);
    EXPECT_EQ(m.proto.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(m.proto.l1.lineBytes, 32u);
    EXPECT_EQ(m.proto.mshrs, 16u);
    EXPECT_EQ(m.proto.dram.accessLatency, 200u);
    EXPECT_EQ(m.net.hopLatency, 100u);
    EXPECT_FALSE(m.proto.racEnabled);
    EXPECT_EQ(m.proto.kind, ProtocolKind::MesiDir);
    EXPECT_FALSE(m.proto.delegationEnabled());
    EXPECT_FALSE(m.proto.updatesEnabled());
}

TEST(Presets, SmallAndLargeConfigurations)
{
    MachineConfig s = presets::small(16);
    EXPECT_TRUE(s.proto.racEnabled);
    EXPECT_EQ(s.proto.kind, ProtocolKind::DelegationUpdates);
    EXPECT_TRUE(s.proto.delegationEnabled());
    EXPECT_TRUE(s.proto.updatesEnabled());
    EXPECT_EQ(s.proto.delegate.producerEntries, 32u);
    EXPECT_EQ(s.proto.rac.sizeBytes, 32u * 1024);
    EXPECT_EQ(s.proto.interventionDelay, 50u);

    MachineConfig l = presets::large(16);
    EXPECT_EQ(l.proto.delegate.producerEntries, 1024u);
    EXPECT_EQ(l.proto.rac.sizeBytes, 1024u * 1024);
}

TEST(Presets, Figure7HasSixConfigsInPaperOrder)
{
    auto cfgs = presets::figure7Configs(16);
    ASSERT_EQ(cfgs.size(), 6u);
    EXPECT_EQ(cfgs[0].name, "Base");
    EXPECT_EQ(cfgs[1].name, "32K RAC");
    EXPECT_FALSE(cfgs[1].cfg.proto.delegationEnabled());
    EXPECT_TRUE(cfgs[2].cfg.proto.updatesEnabled());
    EXPECT_EQ(cfgs[3].cfg.proto.delegate.producerEntries, 1024u);
    EXPECT_EQ(cfgs[4].cfg.proto.rac.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfgs[5].cfg.proto.delegate.producerEntries, 32u);
}

TEST(SystemDeath, DelegationWithoutRacIsRejected)
{
    MachineConfig m = presets::base(16);
    m.proto.kind = ProtocolKind::Delegation;
    EXPECT_DEATH({ System sys(m); }, "RAC");
}

TEST(SystemDeath, UpdateBasedWithRacIsRejected)
{
    // The RAC speculatively caches data a consumer lost to an
    // invalidation; update-based kinds never invalidate, so the
    // combination is rejected as inconsistent.
    MachineConfig m = presets::racOnly(32 * 1024, 16);
    m.proto.kind = ProtocolKind::WriteUpdate;
    EXPECT_DEATH({ System sys(m); }, "update-based");
}

TEST(SystemDeath, ZeroAdaptiveThresholdIsRejected)
{
    MachineConfig m = presets::adaptiveHybrid(16, 0);
    EXPECT_DEATH({ System sys(m); }, "adaptiveThreshold");
}

TEST(SystemDeath, WorkloadCpuMismatchIsFatal)
{
    ProducerConsumerMicro wl(8);
    System sys(presets::base(16));
    EXPECT_DEATH(sys.run(wl), "CPUs");
}

TEST(SystemTest, NodeCountIsConfigurable)
{
    for (unsigned n : {1u, 2u, 4u, 8u, 16u}) {
        System sys(presets::base(n));
        EXPECT_EQ(sys.numNodes(), n);
    }
}

TEST(SystemTest, RunResultAggregatesNodes)
{
    ProducerConsumerMicro wl(16);
    System sys(presets::base(16));
    RunResult r = sys.run(wl);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.nodes.reads, 0u);
    EXPECT_GT(r.nodes.writes, 0u);
    EXPECT_GT(r.netMessages, 0u);
    EXPECT_GT(r.netBytes, r.netMessages * 32);
    EXPECT_EQ(r.workload, "PCmicro");
}

TEST(SystemTest, TickLimitDetectsUnfinishedRuns)
{
    ProducerConsumerMicro wl(16);
    System sys(presets::base(16));
    EXPECT_DEATH(sys.run(wl, /*max_ticks=*/10), "unfinished");
}

TEST(SystemTest, SeedChangesNothingForDeterministicWorkloads)
{
    // Randomness only drives replacement tie-breaks and retry jitter;
    // two different seeds must still produce valid (and close) runs.
    ProducerConsumerMicro wl(16);
    MachineConfig a = withConformance(presets::small(16));
    a.seed = 1;
    MachineConfig b = withConformance(presets::small(16));
    b.seed = 99;
    RunResult ra = runWorkload(a, wl, "a");
    RunResult rb = runWorkload(b, wl, "b");
    EXPECT_NEAR(double(ra.cycles), double(rb.cycles),
                0.1 * double(ra.cycles));
}

TEST(SystemTest, HubLineAlignment)
{
    System sys(presets::base(16));
    EXPECT_EQ(sys.hub(0).lineOf(0x12345), 0x12345ull & ~127ull);
}

TEST(MessageNames, AllTypesHaveNames)
{
    for (unsigned t = 0;
         t < static_cast<unsigned>(MsgType::NumMsgTypes); ++t) {
        const char *name = msgTypeName(static_cast<MsgType>(t));
        EXPECT_STRNE(name, "Unknown") << "type " << t;
        // 23..30 are the reserved PEvent-alias gap (no wire type).
        if (t >= 23 && t <= 30)
            EXPECT_STREQ(name, "Reserved") << "type " << t;
        else
            EXPECT_STRNE(name, "Reserved") << "type " << t;
    }
}

TEST(MessageNames, ToStringContainsTypeAndAddr)
{
    Message m;
    m.type = MsgType::Delegate;
    m.addr = 0xabc00;
    m.src = 1;
    m.dst = 2;
    const std::string s = m.toString();
    EXPECT_NE(s.find("Delegate"), std::string::npos);
    EXPECT_NE(s.find("abc00"), std::string::npos);
}
