/**
 * @file
 * JSON writer/parser and RunResult serialization round-trips.
 */

#include <gtest/gtest.h>

#include "src/runner/results.hh"
#include "src/sim/json.hh"
#include "src/system/system.hh"

using namespace pcsim;

TEST(Json, ScalarDump)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(std::uint64_t(0)).dump(), "0");
    EXPECT_EQ(JsonValue(std::uint64_t(18446744073709551615ull)).dump(),
              "18446744073709551615");
    EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
    EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue v = JsonValue::object();
    v["zebra"] = JsonValue(std::uint64_t(1));
    v["apple"] = JsonValue(std::uint64_t(2));
    v["mango"] = JsonValue(std::uint64_t(3));
    EXPECT_EQ(v.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
    // Re-assignment updates in place, does not reorder.
    v["zebra"] = JsonValue(std::uint64_t(9));
    EXPECT_EQ(v.dump(), "{\"zebra\":9,\"apple\":2,\"mango\":3}");
}

TEST(Json, EscapesSpecialCharacters)
{
    const std::string nasty =
        "quote:\" backslash:\\ newline:\n tab:\t bell:\x07 cr:\r";
    const std::string dumped = JsonValue(nasty).dump();
    // No raw control characters or unescaped quotes inside the
    // literal.
    for (std::size_t i = 1; i + 1 < dumped.size(); ++i) {
        EXPECT_GE(static_cast<unsigned char>(dumped[i]), 0x20u)
            << "raw control character at " << i;
    }
    EXPECT_NE(dumped.find("\\\""), std::string::npos);
    EXPECT_NE(dumped.find("\\\\"), std::string::npos);
    EXPECT_NE(dumped.find("\\n"), std::string::npos);
    EXPECT_NE(dumped.find("\\t"), std::string::npos);
    EXPECT_NE(dumped.find("\\u0007"), std::string::npos);

    // And it parses back to the exact original bytes.
    EXPECT_EQ(JsonValue::parse(dumped).asString(), nasty);
}

TEST(Json, ParseRoundTripsNestedDocument)
{
    JsonValue doc = JsonValue::object();
    doc["name"] = JsonValue("pcsim \"quoted\"\n");
    doc["count"] = JsonValue(std::uint64_t(1234567890123ull));
    doc["ratio"] = JsonValue(0.125);
    doc["flag"] = JsonValue(true);
    doc["nothing"] = JsonValue();
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(std::uint64_t(1)));
    arr.push(JsonValue("two"));
    JsonValue inner = JsonValue::object();
    inner["k"] = JsonValue(3.5);
    arr.push(std::move(inner));
    doc["items"] = std::move(arr);

    for (int indent : {-1, 0, 2, 4}) {
        const std::string text = doc.dump(indent);
        JsonValue parsed = JsonValue::parse(text);
        // Parsing then re-dumping compact must be stable.
        EXPECT_EQ(parsed.dump(), doc.dump()) << "indent " << indent;
    }
}

TEST(Json, ParseAcceptsWhitespaceAndUnicodeEscapes)
{
    JsonValue v = JsonValue::parse(
        "  { \"a\" : [ 1 , 2.5 , \"\\u0041\\u00e9\" ] }  ");
    EXPECT_EQ(v.at("a").at(std::size_t(0)).asUInt(), 1u);
    EXPECT_DOUBLE_EQ(v.at("a").at(1).asDouble(), 2.5);
    EXPECT_EQ(v.at("a").at(2).asString(), "A\xc3\xa9");
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse(""), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("[1,]"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"),
                 JsonParseError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("nul"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("01x"), JsonParseError);
}

namespace
{

/** A RunResult with every field set to a distinctive value. */
RunResult
sampleResult()
{
    RunResult r;
    r.workload = "Em3D \"scaled\"";
    r.config = "small,with comma";
    r.cycles = 123456789012ull;
    r.netMessages = 1001;
    r.netBytes = 128128;
    r.nackMessages = 17;
    r.updateMessages = 42;

    r.nodes.reads = 1;
    r.nodes.writes = 2;
    r.nodes.l1Hits = 3;
    r.nodes.l2Hits = 4;
    r.nodes.localMisses = 5;
    r.nodes.remoteMisses = 6;
    r.nodes.racHits = 7;
    r.nodes.twoHopMisses = 8;
    r.nodes.threeHopMisses = 9;
    r.nodes.nacksReceived = 10;
    r.nodes.retries = 11;
    r.nodes.homeRequests = 12;
    r.nodes.nacksSent = 13;
    r.nodes.interventionsSent = 14;
    r.nodes.dirCacheHits = 15;
    r.nodes.dirCacheMisses = 16;
    r.nodes.delegationsGranted = 17;
    r.nodes.delegationsReceived = 18;
    r.nodes.undelegationsCapacity = 19;
    r.nodes.undelegationsFlush = 20;
    r.nodes.undelegationsConflict = 21;
    r.nodes.forwardedRequests = 22;
    r.nodes.delegatedLocalOps = 23;
    r.nodes.delayedInterventions = 24;
    r.nodes.updatesSent = 25;
    r.nodes.updatesReceived = 26;
    r.nodes.updatesConsumed = 27;
    r.nodes.updatesDropped = 28;
    r.nodes.extraWriteMisses = 29;
    r.nodes.writebacks = 30;

    for (std::size_t i = 0; i < 17; ++i)
        for (std::size_t n = 0; n < i * 3 + 1; ++n)
            r.consumerHist.sample(i);
    return r;
}

} // namespace

TEST(Json, RunResultRoundTrips)
{
    const RunResult r = sampleResult();
    const std::string text = runner::toJson(r).dump(2);
    const RunResult back =
        runner::runResultFromJson(JsonValue::parse(text));

    EXPECT_EQ(back.workload, r.workload);
    EXPECT_EQ(back.config, r.config);
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.netMessages, r.netMessages);
    EXPECT_EQ(back.netBytes, r.netBytes);
    EXPECT_EQ(back.nackMessages, r.nackMessages);
    EXPECT_EQ(back.updateMessages, r.updateMessages);

    EXPECT_EQ(back.nodes.reads, r.nodes.reads);
    EXPECT_EQ(back.nodes.writebacks, r.nodes.writebacks);
    EXPECT_EQ(back.nodes.extraWriteMisses, r.nodes.extraWriteMisses);
    EXPECT_EQ(back.totalMisses(), r.totalMisses());

    ASSERT_EQ(back.consumerHist.numBuckets(),
              r.consumerHist.numBuckets());
    EXPECT_EQ(back.consumerHist.total(), r.consumerHist.total());
    for (std::size_t i = 0; i < r.consumerHist.numBuckets(); ++i)
        EXPECT_EQ(back.consumerHist.bucket(i),
                  r.consumerHist.bucket(i))
            << "bucket " << i;

    // Serialization of the reconstruction is byte-identical.
    EXPECT_EQ(runner::toJson(back).dump(2), text);
}

TEST(Json, CsvEscapesAndRoundTripStructure)
{
    runner::JobResult jr;
    jr.job.workload = "Em3D";
    jr.job.configName = "has,comma";
    jr.job.label = "with \"quotes\"";
    jr.job.seed = 7;
    jr.ok = true;
    jr.result = sampleResult();

    const std::string csv = runner::resultsToCsv({jr});
    // Header + one row.
    const std::size_t newline = csv.find('\n');
    ASSERT_NE(newline, std::string::npos);
    EXPECT_EQ(csv.find('\n', newline + 1), csv.size() - 1);
    // Quoted fields survive.
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with \"\"quotes\"\"\""), std::string::npos);
    // Header and row have the same column count (commas outside
    // quotes).
    const auto cols = [](const std::string &line) {
        std::size_t n = 1;
        bool quoted = false;
        for (char c : line) {
            if (c == '"')
                quoted = !quoted;
            else if (c == ',' && !quoted)
                ++n;
        }
        return n;
    };
    const std::string head = csv.substr(0, newline);
    const std::string row =
        csv.substr(newline + 1, csv.size() - newline - 2);
    EXPECT_EQ(cols(head), cols(row));
}
