/** @file Workload generator tests: structure, determinism and
 *  barrier consistency of the Table 2 suite and the micros. */

#include <gtest/gtest.h>

#include <map>

#include "src/workload/micro.hh"
#include "src/workload/suite.hh"

using namespace pcsim;

namespace
{

struct Counts
{
    std::size_t reads = 0;
    std::size_t writes = 0;
    std::size_t thinks = 0;
    std::size_t barriers = 0;
};

Counts
drain(Workload &w, unsigned cpu)
{
    Counts c;
    MemOp op;
    while (w.next(cpu, op)) {
        switch (op.kind) {
          case MemOp::Kind::Read: ++c.reads; break;
          case MemOp::Kind::Write: ++c.writes; break;
          case MemOp::Kind::Think: ++c.thinks; break;
          case MemOp::Kind::Barrier: ++c.barriers; break;
        }
    }
    return c;
}

} // namespace

TEST(Suite, NamesMatchThePaper)
{
    const auto names = suiteNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names[0], "Barnes");
    EXPECT_EQ(names[6], "Appbt");
}

TEST(Suite, FactoryBuildsEveryWorkload)
{
    for (const auto &name : suiteNames()) {
        auto w = makeWorkload(name, 16, 0.2);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), name);
        EXPECT_EQ(w->numCpus(), 16u);
        EXPECT_FALSE(w->paperProblemSize().empty());
        EXPECT_FALSE(w->scaledProblemSize().empty());
    }
}

class SuiteWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteWorkload, EveryCpuHasWork)
{
    auto w = makeWorkload(GetParam(), 16, 0.2);
    for (unsigned cpu = 0; cpu < 16; ++cpu) {
        Counts c = drain(*w, cpu);
        EXPECT_GT(c.reads + c.writes, 0u) << "cpu " << cpu;
        EXPECT_GE(c.barriers, 1u) << "cpu " << cpu;
    }
}

TEST_P(SuiteWorkload, BarrierCountsAgreeAcrossCpus)
{
    // Mismatched barrier counts would deadlock the run.
    auto w = makeWorkload(GetParam(), 16, 0.2);
    std::size_t expect = drain(*w, 0).barriers;
    for (unsigned cpu = 1; cpu < 16; ++cpu)
        EXPECT_EQ(drain(*w, cpu).barriers, expect) << "cpu " << cpu;
}

TEST_P(SuiteWorkload, DeterministicAcrossInstances)
{
    auto a = makeWorkload(GetParam(), 16, 0.2);
    auto b = makeWorkload(GetParam(), 16, 0.2);
    for (unsigned cpu = 0; cpu < 16; ++cpu) {
        MemOp oa, ob;
        while (true) {
            const bool ra = a->next(cpu, oa);
            const bool rb = b->next(cpu, ob);
            ASSERT_EQ(ra, rb);
            if (!ra)
                break;
            ASSERT_EQ(oa.kind, ob.kind);
            ASSERT_EQ(oa.addr, ob.addr);
            ASSERT_EQ(oa.cycles, ob.cycles);
        }
    }
}

TEST_P(SuiteWorkload, ResetRewindsAllStreams)
{
    auto w = makeWorkload(GetParam(), 16, 0.2);
    MemOp first;
    ASSERT_TRUE(w->next(0, first));
    drain(*w, 0);
    w->reset();
    MemOp again;
    ASSERT_TRUE(w->next(0, again));
    EXPECT_EQ(first.kind, again.kind);
    EXPECT_EQ(first.addr, again.addr);
}

TEST_P(SuiteWorkload, FirstPhaseIsInitThenBarrier)
{
    // The parallel-phase convention: barrier generation 1 ends init,
    // so every CPU's first barrier must come before any read of
    // remote data (init is pure first-touch writes).
    auto w = makeWorkload(GetParam(), 16, 0.2);
    for (unsigned cpu = 0; cpu < 16; ++cpu) {
        MemOp op;
        while (w->next(cpu, op)) {
            if (op.kind == MemOp::Kind::Barrier)
                break;
            EXPECT_NE(op.kind, MemOp::Kind::Read)
                << "cpu " << cpu << " reads before init barrier";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllApps, SuiteWorkload,
                         ::testing::ValuesIn(suiteNames()));

TEST(Suite, ScaleShrinksIterations)
{
    auto big = makeWorkload("Ocean", 16, 1.0);
    auto small = makeWorkload("Ocean", 16, 0.25);
    const auto big_ops =
        static_cast<TraceWorkload *>(big.get())->totalOps();
    const auto small_ops =
        static_cast<TraceWorkload *>(small.get())->totalOps();
    EXPECT_LT(small_ops, big_ops);
}

TEST(Micro, ProducerConsumerShape)
{
    ProducerConsumerMicro::Params p;
    p.producer = 2;
    p.numConsumers = 3;
    p.lines = 4;
    p.iterations = 5;
    ProducerConsumerMicro w(16, p);
    // The producer writes lines * iterations times (plus no reads of
    // the shared lines).
    Counts prod = drain(w, 2);
    EXPECT_EQ(prod.writes, 4u * 5);
    EXPECT_EQ(prod.reads, 0u);
    // Consumers (3,4,5) read every line every iteration.
    w.reset();
    Counts cons = drain(w, 3);
    EXPECT_EQ(cons.reads, 4u * 5);
    EXPECT_EQ(cons.writes, 0u);
    // A bystander neither reads nor writes the shared lines.
    w.reset();
    Counts other = drain(w, 9);
    EXPECT_EQ(other.reads + other.writes, 0u);
}

TEST(Micro, MigratoryEveryoneTakesTurns)
{
    MigratoryMicro::Params p;
    p.lines = 2;
    p.iterations = 32;
    MigratoryMicro w(16, p);
    for (unsigned cpu = 0; cpu < 16; ++cpu) {
        Counts c = drain(w, cpu);
        EXPECT_EQ(c.writes, 2u * 2 + (cpu == 0 ? 2u : 0)); // 32/16 turns
    }
}

TEST(Micro, RandomSameBarrierCounts)
{
    RandomMicro w(16);
    const auto b0 = drain(w, 0).barriers;
    for (unsigned cpu = 1; cpu < 16; ++cpu)
        EXPECT_EQ(drain(w, cpu).barriers, b0);
}

TEST(Micro, RandomDeterministicPerSeed)
{
    RandomMicro::Params p;
    p.seed = 5;
    RandomMicro a(16, p), b(16, p);
    MemOp oa, ob;
    while (a.next(0, oa)) {
        ASSERT_TRUE(b.next(0, ob));
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.kind, ob.kind);
    }
}
