/** @file Slab-backed object pool tests. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/net/message.hh"
#include "src/sim/pool.hh"

using namespace pcsim;

TEST(Pool, FirstAcquiresComeFromSlabs)
{
    Pool<int> pool(4);
    EXPECT_EQ(pool.capacity(), 0u);
    std::vector<int *> got;
    for (int i = 0; i < 4; ++i)
        got.push_back(pool.acquire());
    EXPECT_EQ(pool.stats().acquires, 4u);
    EXPECT_EQ(pool.stats().reuses, 0u);
    EXPECT_EQ(pool.stats().slabs, 1u);
    EXPECT_EQ(pool.capacity(), 4u);
    // Distinct pointers, all distinct addresses.
    std::set<int *> unique(got.begin(), got.end());
    EXPECT_EQ(unique.size(), 4u);
}

TEST(Pool, ReleaseThenAcquireRecyclesLifo)
{
    Pool<int> pool(8);
    int *a = pool.acquire();
    int *b = pool.acquire();
    pool.release(a);
    pool.release(b);
    // LIFO: the most recently released (cache-warm) object first.
    EXPECT_EQ(pool.acquire(), b);
    EXPECT_EQ(pool.acquire(), a);
    EXPECT_EQ(pool.stats().reuses, 2u);
    EXPECT_DOUBLE_EQ(pool.stats().hitRate(), 0.5);
}

TEST(Pool, GrowsNewSlabsOnlyWhenExhausted)
{
    Pool<int> pool(2);
    int *a = pool.acquire();
    int *b = pool.acquire();
    EXPECT_EQ(pool.stats().slabs, 1u);
    int *c = pool.acquire(); // second slab
    EXPECT_EQ(pool.stats().slabs, 2u);
    EXPECT_EQ(pool.capacity(), 4u);
    pool.release(b);
    EXPECT_EQ(pool.acquire(), b); // no third slab needed
    EXPECT_EQ(pool.stats().slabs, 2u);
    EXPECT_EQ(pool.outstanding(), 3u);
    (void)a;
    (void)c;
}

TEST(Pool, SteadyStateNeverGrows)
{
    Pool<Message> pool(16);
    // A ping-pong pattern like the network's in-flight messages:
    // once the high-water mark is slabbed, churn is allocation-free.
    std::vector<Message *> inflight;
    for (int i = 0; i < 16; ++i)
        inflight.push_back(pool.acquire());
    for (Message *m : inflight)
        pool.release(m);
    const std::size_t cap = pool.capacity();
    for (int round = 0; round < 1000; ++round) {
        Message *m = pool.acquire();
        m->type = MsgType::ReqShared;
        pool.release(m);
    }
    EXPECT_EQ(pool.capacity(), cap);
    EXPECT_EQ(pool.stats().slabs, 1u);
    EXPECT_GT(pool.stats().hitRate(), 0.98);
    EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(Pool, ZeroSlabSizeClampedToOne)
{
    Pool<int> pool(0);
    int *p = pool.acquire();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(pool.capacity(), 1u);
    int *q = pool.acquire();
    EXPECT_NE(p, q);
    EXPECT_EQ(pool.stats().slabs, 2u);
}
