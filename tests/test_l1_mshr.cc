/** @file L1 cache and MSHR table tests. */

#include <gtest/gtest.h>

#include "src/cache/l1_cache.hh"
#include "src/cache/mshr.hh"

using namespace pcsim;

TEST(L1Cache, FillAndLookup)
{
    L1Cache l1(L1Config{}, Rng(1));
    EXPECT_FALSE(l1.lookup(0x1000));
    l1.fill(0x1000);
    EXPECT_TRUE(l1.lookup(0x1000));
    // Same 32 B line hits; the next line does not.
    EXPECT_TRUE(l1.lookup(0x101f));
    EXPECT_FALSE(l1.lookup(0x1020));
}

TEST(L1Cache, BackInvalidateCoversL2Line)
{
    L1Cache l1(L1Config{}, Rng(1));
    // Fill all four 32 B L1 lines under one 128 B L2 line.
    for (Addr a = 0x2000; a < 0x2080; a += 32)
        l1.fill(a);
    l1.fill(0x2080); // belongs to the next L2 line
    l1.invalidateRange(0x2000, 128);
    for (Addr a = 0x2000; a < 0x2080; a += 32)
        EXPECT_FALSE(l1.lookup(a));
    EXPECT_TRUE(l1.lookup(0x2080));
}

TEST(L1Cache, ConfigGeometry)
{
    L1Config cfg;
    cfg.sizeBytes = 1024;
    cfg.ways = 2;
    cfg.lineBytes = 32;
    cfg.hitLatency = 3;
    L1Cache l1(cfg, Rng(2));
    EXPECT_EQ(l1.hitLatency(), 3u);
    EXPECT_EQ(l1.lineBytes(), 32u);
}

TEST(MshrTable, AllocateAndFind)
{
    MshrTable t(2);
    EXPECT_EQ(t.find(0x100), nullptr);
    Mshr *m = t.allocate(0x100);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->addr, 0x100u);
    EXPECT_EQ(t.find(0x100), m);
}

TEST(MshrTable, RejectsDuplicatesAndOverflow)
{
    MshrTable t(2);
    EXPECT_NE(t.allocate(0x100), nullptr);
    EXPECT_EQ(t.allocate(0x100), nullptr); // duplicate
    EXPECT_NE(t.allocate(0x200), nullptr);
    EXPECT_TRUE(t.full());
    EXPECT_EQ(t.allocate(0x300), nullptr); // full
    t.free(0x100);
    EXPECT_NE(t.allocate(0x300), nullptr);
}

TEST(Mshr, ReadReadyNeedsData)
{
    Mshr m;
    m.isWrite = false;
    EXPECT_FALSE(m.ready());
    m.haveData = true;
    EXPECT_TRUE(m.ready());
}

TEST(Mshr, WriteReadyNeedsAckCountAndAcks)
{
    Mshr m;
    m.isWrite = true;
    m.haveData = true;
    EXPECT_FALSE(m.ready()); // ack count unknown
    m.acksExpected = 2;
    EXPECT_FALSE(m.ready());
    m.acksReceived = 1;
    EXPECT_FALSE(m.ready());
    m.acksReceived = 2;
    EXPECT_TRUE(m.ready());
}

TEST(Mshr, AcksMayArriveBeforeCountKnown)
{
    Mshr m;
    m.isWrite = true;
    m.haveData = true;
    m.acksReceived = 3; // early acks
    EXPECT_FALSE(m.ready());
    m.acksExpected = 3;
    EXPECT_TRUE(m.ready());
}

TEST(Mshr, LostCopyUpgradeNeedsData)
{
    Mshr m;
    m.isWrite = true;
    m.acksExpected = 0;
    m.lostCopy = true;
    EXPECT_FALSE(m.ready()); // dataless grant no longer sufficient
    m.haveData = true;
    EXPECT_TRUE(m.ready());
}

TEST(MshrTable, ForEachVisitsAll)
{
    MshrTable t(4);
    t.allocate(0x100);
    t.allocate(0x200);
    int n = 0;
    t.forEach([&](Mshr &) { ++n; });
    EXPECT_EQ(n, 2);
}
