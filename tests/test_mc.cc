/** @file Model checking tests (Section 2.5): exhaustive reachability
 *  of the abstract protocol model and systematic interleaving
 *  exploration of the real implementation. */

#include <gtest/gtest.h>

#include "src/mc/explorer.hh"
#include "src/mc/protocol_model.hh"
#include "src/mc/schedule_explorer.hh"
#include "src/system/presets.hh"

using namespace pcsim;
using namespace pcsim::mc;

namespace
{

McResult
explore(ModelConfig cfg, std::uint64_t max_states = 5'000'000)
{
    ProtocolModel model(cfg);
    Explorer<ProtocolModel> ex(model, max_states);
    return ex.run();
}

} // namespace

TEST(ExplorerEngine, TrivialModelTerminates)
{
    // A counter model: states 0..4, +1 transitions, quiescent at 4.
    struct Counter
    {
        using State = int;
        State initial() const { return 0; }
        void
        transitions(const State &s, std::vector<State> &out) const
        {
            if (s < 4)
                out.push_back(s + 1);
        }
        void checkInvariants(const State &s) const
        {
            if (s > 4)
                throw McError("overflow");
        }
        bool isQuiescent(const State &s) const { return s == 4; }
        std::string describe(const State &s) const
        {
            return std::to_string(s);
        }
        std::uint64_t hash(const State &s) const { return s; }
        bool equal(const State &a, const State &b) const
        {
            return a == b;
        }
    };
    Counter m;
    Explorer<Counter> ex(m);
    McResult r = ex.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.statesExplored, 5u);
}

TEST(ExplorerEngine, DetectsDeadlock)
{
    // State 1 is a non-quiescent sink.
    struct Dead
    {
        using State = int;
        State initial() const { return 0; }
        void
        transitions(const State &s, std::vector<State> &out) const
        {
            if (s == 0)
                out.push_back(1);
        }
        void checkInvariants(const State &) const {}
        bool isQuiescent(const State &) const { return false; }
        std::string describe(const State &s) const
        {
            return std::to_string(s);
        }
        std::uint64_t hash(const State &s) const { return s; }
        bool equal(const State &a, const State &b) const
        {
            return a == b;
        }
    };
    Dead m;
    Explorer<Dead> ex(m);
    EXPECT_THROW(ex.run(), McError);
}

TEST(ExplorerEngine, DetectsInvariantViolation)
{
    struct Bad
    {
        using State = int;
        State initial() const { return 0; }
        void
        transitions(const State &s, std::vector<State> &out) const
        {
            if (s < 3)
                out.push_back(s + 1);
        }
        void checkInvariants(const State &s) const
        {
            if (s == 2)
                throw McError("boom");
        }
        bool isQuiescent(const State &s) const { return s == 3; }
        std::string describe(const State &s) const
        {
            return std::to_string(s);
        }
        std::uint64_t hash(const State &s) const { return s; }
        bool equal(const State &a, const State &b) const
        {
            return a == b;
        }
    };
    Bad m;
    Explorer<Bad> ex(m);
    EXPECT_THROW(ex.run(), McError);
}

// --- Abstract protocol model (the Murphi analogue) ------------------

TEST(ProtocolMc, BaseProtocolTwoNodes)
{
    ModelConfig cfg;
    cfg.nodes = 2;
    cfg.maxWrites = 2;
    cfg.maxReads = 2;
    McResult r = explore(cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.statesExplored, 100u);
}

TEST(ProtocolMc, BaseProtocolThreeNodes)
{
    ModelConfig cfg;
    cfg.nodes = 3;
    cfg.maxWrites = 2;
    cfg.maxReads = 1;
    McResult r = explore(cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.statesExplored, 1000u);
}

TEST(ProtocolMc, DelegationThreeNodes)
{
    ModelConfig cfg;
    cfg.nodes = 3;
    cfg.maxWrites = 2;
    cfg.maxReads = 1;
    cfg.delegation = true;
    McResult r = explore(cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.statesExplored, 1000u);
}

TEST(ProtocolMc, DelegationWithUpdatesTwoNodes)
{
    ModelConfig cfg;
    cfg.nodes = 2;
    cfg.maxWrites = 2;
    cfg.maxReads = 2;
    cfg.delegation = true;
    cfg.updates = true;
    McResult r = explore(cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.statesExplored, 1000u);
}

TEST(ProtocolMc, DelegationWithUpdatesThreeNodes)
{
    ModelConfig cfg;
    cfg.nodes = 3;
    cfg.maxWrites = 2;
    cfg.maxReads = 1;
    cfg.delegation = true;
    cfg.updates = true;
    McResult r = explore(cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.statesExplored, 10'000u);
}

TEST(ProtocolMc, UpdatesWithMoreReadsBounded)
{
    // The widest configuration: exhaustive up to a state budget
    // (bounded model checking; any violation inside the bound
    // throws).
    ModelConfig cfg;
    cfg.nodes = 3;
    cfg.maxWrites = 2;
    cfg.maxReads = 2;
    cfg.delegation = true;
    cfg.updates = true;
    McResult r = explore(cfg, 800'000);
    EXPECT_GT(r.statesExplored, 100'000u);
}

// --- Systematic interleaving over the real implementation -----------

TEST(ScheduleMc, BaseProtocolInterleavings)
{
    const Addr a = 0x70000000ull;
    std::vector<std::vector<SchedOp>> ops = {
        {{true, a}, {false, a}},
        {{true, a}},
        {{false, a}},
    };
    ScheduleExplorer ex(presets::base(16), ops);
    ScheduleResult r = ex.run();
    // 4!/(2!1!1!) = 12 interleavings x 3 staggers.
    EXPECT_EQ(r.schedules, 36u);
}

TEST(ScheduleMc, TwoLinesCrossTraffic)
{
    const Addr a = 0x70000000ull, b = 0x70000080ull;
    std::vector<std::vector<SchedOp>> ops = {
        {{true, a}, {true, b}},
        {{false, b}, {false, a}},
        {{true, b}},
    };
    ScheduleExplorer ex(presets::base(16), ops);
    ScheduleResult r = ex.run();
    EXPECT_EQ(r.schedules, 90u); // 5!/(2!2!1!) x 3
}

TEST(ScheduleMc, FullMechanismInterleavings)
{
    const Addr a = 0x70000000ull;
    // Producer writes (will saturate the detector mid-exploration in
    // some schedules), consumers read, a conflict writer intrudes.
    std::vector<std::vector<SchedOp>> ops = {
        {{true, a}, {true, a}, {true, a}},
        {{false, a}, {false, a}},
        {{true, a}},
    };
    MachineConfig cfg = presets::small(16);
    cfg.proto.detector.writeRepeatSaturation = 1; // delegate eagerly
    ScheduleExplorer ex(cfg, ops);
    ScheduleResult r = ex.run();
    EXPECT_EQ(r.schedules, 180u); // 6!/(3!2!1!) x 3
}

TEST(ScheduleMc, ShortInterventionDelayInterleavings)
{
    const Addr a = 0x70000000ull;
    std::vector<std::vector<SchedOp>> ops = {
        {{true, a}, {true, a}},
        {{false, a}},
        {{true, a}},
    };
    MachineConfig cfg = presets::small(16);
    cfg.proto.detector.writeRepeatSaturation = 1;
    cfg.proto.interventionDelay = 1;
    ScheduleExplorer ex(cfg, ops, {0, 10, 60, 300});
    ScheduleResult r = ex.run();
    EXPECT_EQ(r.schedules, 48u); // 4!/(2!1!1!) x 4
}
