/**
 * @file
 * Fault injection and retry robustness: the shared backoff curve, the
 * deterministic FaultPlan, configuration validation, a seeded NACK
 * storm under directory-cache pressure, and byte-identical faulted
 * results across worker-thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/net/faults.hh"
#include "src/protocol/backoff.hh"
#include "src/protocol/config.hh"
#include "src/runner/faults.hh"
#include "src/runner/results.hh"
#include "src/runner/runner.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/workload.hh"

using namespace pcsim;

// --- backoff curve ------------------------------------------------

TEST(Backoff, FlatDefaultMatchesPaperFormula)
{
    ProtocolConfig cfg; // retryBase=64, retryJitter=64, retryExpCap=0
    Rng rng(42);
    for (std::uint64_t attempt = 0; attempt < 200; ++attempt) {
        std::size_t exp = 99;
        const Tick d = retryBackoff(cfg, attempt, rng, &exp);
        EXPECT_EQ(exp, 0u);
        EXPECT_GE(d, cfg.retryBase);
        EXPECT_LE(d, cfg.retryBase + cfg.retryJitter);
    }
}

TEST(Backoff, ExponentialGrowsThenCaps)
{
    ProtocolConfig cfg;
    cfg.retryBase = 64;
    cfg.retryJitter = 0; // isolate the deterministic part
    cfg.retryExpCap = 3;
    Rng rng(1);
    const Tick expect[] = {64, 128, 256, 512, 512, 512, 512};
    for (std::uint64_t attempt = 0; attempt < 7; ++attempt) {
        std::size_t exp = 99;
        EXPECT_EQ(retryBackoff(cfg, attempt, rng, &exp),
                  expect[attempt]);
        EXPECT_EQ(exp, std::min<std::uint64_t>(attempt, 3));
    }
}

TEST(Backoff, JitterBoundsHoldUnderExponent)
{
    ProtocolConfig cfg;
    cfg.retryBase = 10;
    cfg.retryJitter = 7;
    cfg.retryExpCap = 5;
    Rng rng(7);
    for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
        const Tick lo = cfg.retryBase
                        << std::min<std::uint64_t>(attempt, 5);
        const Tick d = retryBackoff(cfg, attempt, rng);
        EXPECT_GE(d, lo);
        EXPECT_LE(d, lo + cfg.retryJitter);
    }
}

TEST(Backoff, DeterministicFromForkedRng)
{
    ProtocolConfig cfg;
    cfg.retryExpCap = 4;
    Rng a(123), b(123);
    Rng fa = a.fork(), fb = b.fork();
    for (std::uint64_t attempt = 0; attempt < 100; ++attempt)
        EXPECT_EQ(retryBackoff(cfg, attempt, fa),
                  retryBackoff(cfg, attempt, fb));
}

// --- FaultPlan ----------------------------------------------------

namespace
{

FaultConfig
stormConfig()
{
    FaultConfig f;
    f.enabled = true;
    f.grayLinkFraction = 0.5;
    f.grayExtraLatency = 200;
    f.stallNodeFraction = 0.5;
    f.hotspotExtraLatency = 100;
    f.dirPressureWays = 1;
    return f;
}

} // namespace

TEST(FaultPlan, DeterministicFromSeed)
{
    const FaultConfig f = stormConfig();
    FaultPlan a(f, 16, Rng(99));
    FaultPlan b(f, 16, Rng(99));
    EXPECT_EQ(a.hotspotNode(), b.hotspotNode());
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            EXPECT_EQ(a.linkIsGray(s, d), b.linkIsGray(s, d));
            for (Tick t : {Tick(0), Tick(12345), Tick(999999)}) {
                EXPECT_EQ(a.extraLatency(s, d, t),
                          b.extraLatency(s, d, t));
                EXPECT_EQ(a.stallClearTick(s, t),
                          b.stallClearTick(s, t));
                EXPECT_EQ(a.dirWaysLimit(s, t), b.dirWaysLimit(s, t));
            }
        }
    }
}

TEST(FaultPlan, WindowsAndBoundsAreSane)
{
    const FaultConfig f = stormConfig();
    FaultPlan p(f, 16, Rng(7));

    bool any_gray = false, any_stalled = false;
    std::uint64_t in_pressure = 0, probes = 0;
    for (NodeId n = 0; n < 16; ++n) {
        for (Tick t = 0; t < 4 * f.stallPeriod; t += 97) {
            // A stall can only push forward, and never past the end
            // of the current window.
            const Tick clear = p.stallClearTick(n, t);
            EXPECT_GE(clear, t);
            EXPECT_LE(clear, t + f.stallDuration);
            any_stalled = any_stalled || clear != t;

            // Pressure is all-or-nothing at the configured way count.
            const unsigned limit = p.dirWaysLimit(n, t);
            EXPECT_TRUE(limit == 0 || limit == f.dirPressureWays);
            in_pressure += limit != 0;
            ++probes;
        }
        for (NodeId d = 0; d < 16; ++d)
            any_gray = any_gray || p.linkIsGray(n, d);
    }
    EXPECT_TRUE(any_gray);
    EXPECT_TRUE(any_stalled);
    // Windowing means pressure is on part of the time, not always.
    EXPECT_GT(in_pressure, 0u);
    EXPECT_LT(in_pressure, probes);

    // Extra latency fires only on gray links / the hot spot, and a
    // non-gray, non-hotspot link pays nothing.
    EXPECT_LT(p.hotspotNode(), NodeId(16));
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (p.linkIsGray(s, d) || d == p.hotspotNode())
                continue;
            for (Tick t = 0; t < 2 * f.grayPeriod; t += 1009)
                EXPECT_EQ(p.extraLatency(s, d, t), 0u);
        }
    }
}

// --- validation ---------------------------------------------------

TEST(FaultConfigValidation, RejectsBadKnobs)
{
    ProtocolConfig cfg;
    cfg.faults = stormConfig();
    EXPECT_EQ(cfg.validateError(), "");

    ProtocolConfig bad_frac = cfg;
    bad_frac.faults.grayLinkFraction = 1.5;
    EXPECT_NE(bad_frac.validateError(), "");

    ProtocolConfig bad_ways = cfg;
    bad_ways.faults.dirPressureWays =
        unsigned(cfg.dirCache.ways) + 1;
    EXPECT_NE(bad_ways.validateError(), "");

    ProtocolConfig bad_window = cfg;
    bad_window.faults.grayDuration = bad_window.faults.grayPeriod + 1;
    EXPECT_NE(bad_window.validateError(), "");

    ProtocolConfig no_mechanism;
    no_mechanism.faults.enabled = true;
    EXPECT_NE(no_mechanism.validateError(), "");

    ProtocolConfig bad_hotspot = cfg;
    bad_hotspot.faults.hotspotNode = 16; // 16-node machine: 0..15
    EXPECT_NE(bad_hotspot.validateError(), "");
}

TEST(RetryConfigValidation, GuardsJitterAndExpCap)
{
    ProtocolConfig cfg;
    cfg.retryJitter = 0;
    cfg.numNodes = 16;
    EXPECT_EQ(cfg.validateError(), ""); // small machine: permitted

    cfg.numNodes = 64;
    EXPECT_NE(cfg.validateError(), ""); // convoy hazard: rejected

    ProtocolConfig cap;
    cap.retryExpCap = 21;
    EXPECT_NE(cap.validateError(), "");

    ProtocolConfig zero_base;
    zero_base.retryBase = 0;
    EXPECT_NE(zero_base.validateError(), "");
}

// --- seeded NACK storm under directory pressure -------------------

namespace
{

/**
 * Every CPU hammers the same small set of lines with writes while the
 * directory cache is tiny and periodically pressured: ownership
 * bounces, the home's entries thrash, and pressure windows refuse
 * fills -- a sustained NACK storm that must still converge.
 */
class StormWorkload : public TraceWorkload
{
  public:
    StormWorkload(unsigned num_cpus, unsigned lines, unsigned iters)
        : TraceWorkload("NackStorm", num_cpus)
    {
        const Addr line_bytes = 128;
        // Init: CPU 0 first-touches everything (single home), then
        // everyone meets at the barrier that ends the init phase.
        for (unsigned c = 0; c < num_cpus; ++c) {
            auto &t = cpuTrace(c);
            if (c == 0) {
                for (unsigned l = 0; l < lines; ++l)
                    t.push_back(MemOp::write(l * line_bytes));
            }
            t.push_back(MemOp::barrier());
            for (unsigned i = 0; i < iters; ++i) {
                t.push_back(
                    MemOp::write((i % lines) * line_bytes));
                t.push_back(MemOp::read(0));
            }
            t.push_back(MemOp::barrier());
        }
    }
};

} // namespace

TEST(FaultInjection, NackStormConvergesBelowMaxRetries)
{
    MachineConfig cfg = presets::base(8);
    cfg.proto.conformanceEnabled = true; // checker is on by default
    cfg.proto.dirCache.entries = 8; // tiny: constant thrash
    cfg.proto.dirCache.ways = 2;
    cfg.proto.retryExpCap = 6;
    cfg.proto.faults.enabled = true;
    cfg.proto.faults.dirPressureWays = 1;
    cfg.proto.faults.dirPressurePeriod = 4000;
    cfg.proto.faults.dirPressureDuration = 2000;
    cfg.seed = 11;

    System sys(cfg);
    StormWorkload wl(8, /*lines=*/32, /*iters=*/60);
    const RunResult r = sys.run(wl);

    // The storm actually happened...
    EXPECT_GT(r.nodes.nacksReceived, 0u);
    EXPECT_GT(r.nodes.retries, 0u);
    EXPECT_GT(r.nodes.nackStormPeak, 0u);
    EXPECT_GT(r.nodes.backoffHist.total(), 0u);
    // ...and converged far below the livelock guard.
    EXPECT_GT(r.nodes.maxRetriesPerLine, 0u);
    EXPECT_LT(r.nodes.maxRetriesPerLine, cfg.proto.maxRetries);
    EXPECT_TRUE(r.faultsActive);
}

// --- faulted sweep: byte identity across thread counts ------------

TEST(FaultInjection, FaultedResultsByteIdenticalAcrossThreads)
{
    runner::FaultsOptions opt;
    opt.nodes = 8;
    opt.scale = 0.2;
    opt.seed = 3;
    const runner::JobSet set = runner::faultJobs(opt);
    // scenarios x (base, delegation, delegate-update)
    ASSERT_EQ(set.size(), presets::faultScenarios().size() * 3);

    runner::RunnerOptions serial, pooled;
    serial.threads = 1;
    serial.progress = false;
    pooled.threads = 8;
    pooled.progress = false;

    const std::string a =
        runner::resultsToJson(runner::runJobs(set, serial), false)
            .dump(2);
    const std::string b =
        runner::resultsToJson(runner::runJobs(set, pooled), false)
            .dump(2);
    EXPECT_EQ(a, b);
}

TEST(FaultInjection, UnknownScenarioYieldsEmptyJobSet)
{
    runner::FaultsOptions opt;
    opt.scenarios = {"no-such-scenario"};
    EXPECT_TRUE(runner::faultJobs(opt).empty());
}

// --- results schema -----------------------------------------------

TEST(FaultResults, RetryBlockRoundTripsAndIsGated)
{
    RunResult r;
    r.workload = "w";
    r.config = "c";
    r.faultsActive = true;
    r.faultDelayedMessages = 17;
    r.faultExtraTicks = 4242;
    r.nodes.mshrConflictRetries = 3;
    r.nodes.dirRehandleRetries = 5;
    r.nodes.maxRetriesPerLine = 9;
    r.nodes.nackStormPeak = 21;
    r.nodes.backoffHist.sample(0);
    r.nodes.backoffHist.sample(2);

    const JsonValue v = runner::toJson(r, false);
    ASSERT_NE(v.find("retry"), nullptr);
    const RunResult back = runner::runResultFromJson(v);
    EXPECT_TRUE(back.faultsActive);
    EXPECT_EQ(back.faultDelayedMessages, 17u);
    EXPECT_EQ(back.faultExtraTicks, 4242u);
    EXPECT_EQ(back.nodes.mshrConflictRetries, 3u);
    EXPECT_EQ(back.nodes.dirRehandleRetries, 5u);
    EXPECT_EQ(back.nodes.maxRetriesPerLine, 9u);
    EXPECT_EQ(back.nodes.nackStormPeak, 21u);
    EXPECT_EQ(back.nodes.backoffHist.total(), 2u);
    EXPECT_EQ(back.nodes.backoffHist.bucket(0), 1u);
    EXPECT_EQ(back.nodes.backoffHist.bucket(2), 1u);

    // Fault-free results must not gain the block: default documents
    // stay byte-identical to the goldens.
    RunResult clean;
    clean.workload = "w";
    clean.config = "c";
    EXPECT_EQ(runner::toJson(clean, false).find("retry"), nullptr);
}

TEST(Histogram, MergeWidensAndAccumulates)
{
    Histogram a(4), b(8);
    a.sample(1);
    a.sample(3);
    b.sample(6);
    a.merge(b);
    EXPECT_EQ(a.numBuckets(), 8u);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.bucket(1), 1u);
    EXPECT_EQ(a.bucket(3), 1u);
    EXPECT_EQ(a.bucket(6), 1u);
}
