/** @file Directory delegation tests (Section 2.3): delegation grant,
 *  request forwarding, consumer-table hints, all three undelegation
 *  reasons, and the NACK/retry races around them. */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace pcsim;

namespace
{

MachineConfig
deleCfg(std::size_t entries = 32, std::size_t rac = 32 * 1024)
{
    return presets::delegationOnly(entries, rac, 16);
}

/** Run producer/consumer epochs until the detector saturates:
 *  the Nth write (N = saturation + 1 = 4) triggers delegation. */
void
saturate(Harness &h, Addr a, unsigned producer, unsigned consumer,
         unsigned epochs = 4)
{
    for (unsigned i = 0; i < epochs; ++i) {
        h.write(producer, a);
        h.read(consumer, a);
    }
}

} // namespace

TEST(Delegation, StablePatternDelegatesToProducer)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a); // home = 0
    saturate(h, a, /*producer=*/5, /*consumer=*/9);
    h.write(5, a); // the saturated pattern delegates on this write
    EXPECT_TRUE(h.delegated(5, a));
    EXPECT_EQ(h.dir(a).state, DirState::Dele);
    EXPECT_EQ(h.dir(a).owner, 5);
    EXPECT_EQ(h.stats(0).delegationsGranted, 1u);
    EXPECT_EQ(h.stats(5).delegationsReceived, 1u);
    h.checkQuiescent();
}

TEST(Delegation, PinsSurrogateMemoryInRac)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    ASSERT_TRUE(h.delegated(5, a));
    Version v;
    bool pinned = false;
    ASSERT_TRUE(h.sys.hub(5).racCopy(a, v, pinned));
    EXPECT_TRUE(pinned);
}

TEST(Delegation, SelfDelegationSkipsRacPin)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    // Producer 5 is also the home (first touch by its own write).
    saturate(h, a, 5, 9);
    h.write(5, a);
    ASSERT_TRUE(h.delegated(5, a));
    Version v;
    bool pinned;
    EXPECT_FALSE(h.sys.hub(5).racCopy(a, v, pinned));
    h.checkQuiescent();
}

TEST(Delegation, ConsumerReadsBecomeTwoHop)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    ASSERT_TRUE(h.delegated(5, a));

    // First read after delegation is forwarded (and plants the hint);
    // subsequent misses go straight to the delegated home.
    h.read(9, a);
    const auto fwd = h.stats(0).forwardedRequests;
    EXPECT_GE(fwd, 1u);
    h.write(5, a);
    h.read(9, a);
    EXPECT_EQ(h.stats(0).forwardedRequests, fwd); // no new forward
    EXPECT_EQ(h.read(9, a), h.l2Version(5, a));
    h.checkQuiescent();
}

TEST(Delegation, DelegatedWritesAreServedLocally)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    ASSERT_TRUE(h.delegated(5, a));
    const auto before = h.stats(5).delegatedLocalOps;
    h.read(9, a);  // consumer takes a copy
    h.write(5, a); // producer writes again: local directory op
    EXPECT_GT(h.stats(5).delegatedLocalOps, before);
    EXPECT_EQ(h.l2State(9, a), LineState::Invalid); // invalidated
    h.checkQuiescent();
}

TEST(Delegation, ConflictWriteUndelegates)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    ASSERT_TRUE(h.delegated(5, a));

    h.write(9, a); // reason 3: another node wants exclusive access
    EXPECT_FALSE(h.delegated(5, a));
    EXPECT_EQ(h.stats(5).undelegationsConflict, 1u);
    DirEntry d = h.dir(a);
    EXPECT_EQ(d.state, DirState::Excl);
    EXPECT_EQ(d.owner, 9);
    EXPECT_EQ(h.l2State(5, a), LineState::Invalid);
    h.checkQuiescent();
}

TEST(Delegation, CapacityEvictionUndelegates)
{
    // A 4-entry producer table cannot hold 8 delegated lines.
    Harness h(deleCfg(/*entries=*/4));
    h.read(0, testLine(100)); // make node 0 the home of the region
    for (unsigned l = 0; l < 8; ++l) {
        const Addr a = testLine(l);
        h.read(0, a);
        saturate(h, a, 5, 9);
        h.write(5, a);
    }
    EXPECT_GT(h.stats(5).undelegationsCapacity, 0u);
    unsigned delegated = 0;
    for (unsigned l = 0; l < 8; ++l)
        delegated += h.delegated(5, testLine(l));
    EXPECT_LE(delegated, 4u);
    h.checkQuiescent();
}

TEST(Delegation, StaleHintBouncesToHome)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    h.read(9, a); // 9 now holds a consumer-table hint for 5

    h.write(9, a); // undelegates (reason 3)
    ASSERT_FALSE(h.delegated(5, a));

    // 9's own hint still points at 5; its next miss must bounce off 5
    // (NackNotHome), drop the hint and succeed at the home.
    h.write(5, a); // invalidate 9's copy so it misses again...
    h.read(9, a);
    EXPECT_EQ(h.read(9, a), h.dir(a).memVersion);
    h.checkQuiescent();
}

TEST(Delegation, DetectorMustResaturateAfterUndelegation)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    ASSERT_TRUE(h.delegated(5, a));
    h.write(9, a); // undelegate
    ASSERT_FALSE(h.delegated(5, a));

    // One producer epoch is not enough to re-delegate...
    h.write(5, a);
    h.read(9, a);
    h.write(5, a);
    EXPECT_FALSE(h.delegated(5, a));
    // ...but a fresh saturation is.
    h.read(9, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    EXPECT_TRUE(h.delegated(5, a));
    h.checkQuiescent();
}

TEST(Delegation, MigratorySharingNeverDelegates)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    for (unsigned it = 0; it < 12; ++it) {
        const unsigned cpu = 1 + (it % 3);
        h.read(cpu, a);
        h.write(cpu, a);
    }
    for (unsigned c = 0; c < 16; ++c)
        EXPECT_FALSE(h.delegated(c, a));
    EXPECT_EQ(h.stats(0).delegationsGranted, 0u);
    h.checkQuiescent();
}

TEST(Delegation, ProducerFlushAbsorbedByPinnedRac)
{
    MachineConfig m = deleCfg();
    m.proto.l2SizeBytes = 4 * 128; // 4 sets x 1 way
    m.proto.l2Ways = 1;
    Harness h(m);
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    ASSERT_TRUE(h.delegated(5, a));

    // Evict the delegated line from 5's L2: the data lands in the
    // pinned RAC entry and the delegation survives (see DESIGN.md).
    h.write(5, testLine(4));
    EXPECT_EQ(h.l2State(5, a), LineState::Invalid);
    EXPECT_TRUE(h.delegated(5, a));
    EXPECT_EQ(h.read(9, a), h.sys.checker().authority().current(a));
    h.checkQuiescent();
}

TEST(Delegation, DelegationOnlyNeverSendsUpdates)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    h.read(9, a);
    h.write(5, a);
    h.sys.eventQueue().run();
    std::uint64_t updates = 0;
    for (unsigned c = 0; c < 16; ++c)
        updates += h.stats(c).updatesSent;
    EXPECT_EQ(updates, 0u);
}

TEST(Delegation, RacingConflictDuringDelegationResolves)
{
    Harness h(deleCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    // The delegating write and a competing write race each other.
    h.race({{5, true, a}, {11, true, a}});
    h.checkQuiescent();
    const DirEntry d = h.dir(a);
    EXPECT_TRUE(d.state == DirState::Excl || d.state == DirState::Dele);
}
