/** @file DRAM, memory map and directory structure tests. */

#include <gtest/gtest.h>

#include "src/mem/directory.hh"
#include "src/mem/dram.hh"
#include "src/mem/memory_map.hh"

using namespace pcsim;

TEST(Dram, FixedLatency)
{
    DramModel d;
    EXPECT_EQ(d.access(1000), 1200u);
    EXPECT_EQ(d.numAccesses(), 1u);
}

TEST(Dram, ChannelsAbsorbParallelAccesses)
{
    DramModel d; // 4 channels
    // Four accesses at the same tick all start immediately.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(d.access(0), 200u);
    // The fifth queues behind a busy channel.
    EXPECT_EQ(d.access(0), 232u);
}

TEST(Dram, ChannelFreesOverTime)
{
    DramConfig cfg;
    cfg.channels = 1;
    DramModel d(cfg);
    EXPECT_EQ(d.access(0), 200u);
    EXPECT_EQ(d.access(0), 232u);  // queued 32 cycles
    EXPECT_EQ(d.access(100), 300u); // channel free by then
}

TEST(MemoryMap, FirstTouchAssignsToucher)
{
    MemoryMap m(16);
    EXPECT_EQ(m.homeOf(0x1000, /*toucher=*/5), 5);
    // Later touches do not re-place the page.
    EXPECT_EQ(m.homeOf(0x1000, 9), 5);
    EXPECT_EQ(m.homeOf(0x2000, 9), 5); // same 16 KB page
    EXPECT_EQ(m.homeOf(0x4000, 9), 9); // next page
}

TEST(MemoryMap, ConstLookupRequiresPlacement)
{
    MemoryMap m(16);
    m.homeOf(0x1000, 3);
    const MemoryMap &cm = m;
    EXPECT_EQ(cm.homeOf(0x1000), 3);
}

TEST(MemoryMap, ExplicitPlacement)
{
    MemoryMap m(16);
    m.place(0x8000, 12);
    EXPECT_EQ(m.homeOf(0x8000, 0), 12);
    EXPECT_EQ(m.numPlacedPages(), 1u);
}

TEST(MemoryMap, RoundRobinIgnoresToucher)
{
    MemoryMap m(4, 16 * 1024, Placement::RoundRobin);
    EXPECT_EQ(m.homeOf(0 * 16384, 3), 0);
    EXPECT_EQ(m.homeOf(1 * 16384, 3), 1);
    EXPECT_EQ(m.homeOf(5 * 16384, 3), 1);
}

TEST(DirEntry, SharerBitVector)
{
    DirEntry d;
    d.addSharer(3);
    d.addSharer(7);
    EXPECT_TRUE(d.isSharer(3));
    EXPECT_FALSE(d.isSharer(4));
    EXPECT_EQ(d.numSharers(), 2u);
    d.removeSharer(3);
    EXPECT_FALSE(d.isSharer(3));
    EXPECT_EQ(d.numSharers(), 1u);
}

TEST(DirectoryStore, CreatesUnownedOnFirstTouch)
{
    DirectoryStore s;
    DirEntry &e = s.lookup(0x1000);
    EXPECT_EQ(e.state, DirState::Unowned);
    e.state = DirState::Excl;
    e.owner = 4;
    EXPECT_EQ(s.lookup(0x1000).owner, 4);
    EXPECT_EQ(s.find(0x2000), nullptr);
}

namespace
{

DirectoryCacheConfig
smallDirCache()
{
    DirectoryCacheConfig cfg;
    cfg.entries = 8;
    cfg.ways = 2;
    return cfg;
}

} // namespace

TEST(DirectoryCache, MissFillsFromStore)
{
    DirectoryStore store;
    store.lookup(0x1000).state = DirState::Shared;
    store.lookup(0x1000).addSharer(0);
    store.lookup(0x1000).addSharer(2);

    DirectoryCache dc(smallDirCache(), store, Rng(1));
    bool miss;
    DirCacheEntry *e = dc.access(0x1000, miss);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(miss);
    EXPECT_EQ(e->dir.state, DirState::Shared);
    EXPECT_EQ(e->dir.sharers.toString(), "0x5");

    dc.access(0x1000, miss);
    EXPECT_FALSE(miss);
}

TEST(DirectoryCache, EvictionPersistsProtocolStateDropsDetector)
{
    DirectoryStore store;
    DirectoryCache dc(smallDirCache(), store, Rng(1));

    bool miss;
    DirCacheEntry *e = dc.access(0x1000, miss);
    e->dir.state = DirState::Excl;
    e->dir.owner = 6;
    e->detector.onWrite(6);

    // Force the entry out of its 2-way set (8 entries / 2 ways = 4
    // sets; lines 4 sets apart collide).
    const Addr stride = 4 * 128;
    dc.access(0x1000 + stride, miss);
    dc.access(0x1000 + 2 * stride, miss);
    ASSERT_EQ(dc.peek(0x1000), nullptr);

    // Protocol state survived in the store...
    EXPECT_EQ(store.lookup(0x1000).state, DirState::Excl);
    EXPECT_EQ(store.lookup(0x1000).owner, 6);

    // ...but the detector bits were dropped (Section 2.2).
    DirCacheEntry *back = dc.access(0x1000, miss);
    EXPECT_EQ(back->dir.owner, 6);
    EXPECT_EQ(back->detector.lastWriter, invalidNode);
}

TEST(DirectoryCache, BusyEntriesAreNotEvictable)
{
    DirectoryStore store;
    DirectoryCache dc(smallDirCache(), store, Rng(1));
    bool miss;
    const Addr stride = 4 * 128;
    dc.access(0x1000, miss)->dir.state = DirState::BusyRead;
    dc.access(0x1000 + stride, miss)->dir.state = DirState::BusyExcl;
    // Both ways of the set busy: a third line cannot be cached.
    EXPECT_EQ(dc.access(0x1000 + 2 * stride, miss), nullptr);
}

TEST(DirectoryCache, FlushWritesEverythingBack)
{
    DirectoryStore store;
    DirectoryCache dc(smallDirCache(), store, Rng(1));
    bool miss;
    dc.access(0x1000, miss)->dir.memVersion = 42;
    dc.flush();
    EXPECT_EQ(store.lookup(0x1000).memVersion, 42u);
    EXPECT_EQ(dc.occupancy(), 0u);
}
