/** @file Producer-consumer sharing detector tests (Section 2.2). */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/pc_detector.hh"

using namespace pcsim;

namespace
{

/**
 * Drive a detector from a compact trace string: "W3" = write by node
 * 3, "R5" = read by node 5. Returns whether the final op reported
 * detection.
 */
bool
drive(PcDetectorState &d, const std::string &trace,
      const PcDetectorConfig &cfg = {})
{
    bool detected = false;
    for (std::size_t i = 0; i < trace.size(); i += 2) {
        const NodeId node = trace[i + 1] - '0';
        if (trace[i] == 'W')
            detected = d.onWrite(node, cfg);
        else
            d.onRead(node, cfg);
    }
    return detected;
}

} // namespace

TEST(PcDetector, CanonicalPatternSaturates)
{
    PcDetectorState d;
    // (W1 R2)+ : three write-repeat increments saturate the counter.
    EXPECT_FALSE(drive(d, "W1R2W1R2W1"));
    EXPECT_FALSE(d.isProducerConsumer());
    EXPECT_TRUE(drive(d, "R2W1"));
    EXPECT_TRUE(d.isProducerConsumer());
    EXPECT_EQ(d.producer(), 1);
}

TEST(PcDetector, MultipleConsumersAlsoDetected)
{
    PcDetectorState d;
    EXPECT_TRUE(drive(d, "W1R2R3R4W1R5R6W1R2W1"));
    EXPECT_EQ(d.producer(), 1);
}

TEST(PcDetector, WriteBurstNeitherProgressesNorResets)
{
    PcDetectorState d;
    // Consecutive writes by the producer with no intervening read are
    // one burst: the counter holds its value.
    drive(d, "W1R2W1R2W1"); // writeRepeat = 2
    drive(d, "W1W1W1");     // burst: unchanged
    EXPECT_FALSE(d.isProducerConsumer());
    EXPECT_TRUE(drive(d, "R2W1")); // one more epoch saturates
}

TEST(PcDetector, DifferentWriterResetsPattern)
{
    PcDetectorState d;
    drive(d, "W1R2W1R2W1"); // nearly saturated
    drive(d, "W5");         // another writer: false sharing/migratory
    EXPECT_FALSE(d.isProducerConsumer());
    EXPECT_EQ(d.producer(), 5);
    // Needs three full epochs from the new writer again.
    EXPECT_FALSE(drive(d, "R2W5R2W5"));
    EXPECT_TRUE(drive(d, "R2W5"));
}

TEST(PcDetector, MigratorySharingNeverDetected)
{
    PcDetectorState d;
    for (int it = 0; it < 20; ++it) {
        for (NodeId n = 0; n < 4; ++n) {
            d.onRead(n);
            EXPECT_FALSE(d.onWrite(n));
        }
    }
}

TEST(PcDetector, ReadsByProducerDoNotCount)
{
    PcDetectorState d;
    // The producer re-reading its own data provides no evidence of
    // consumers.
    EXPECT_FALSE(drive(d, "W1R1W1R1W1R1W1R1W1"));
}

TEST(PcDetector, DuplicateReaderCountedOnce)
{
    PcDetectorState d;
    d.onWrite(1);
    d.onRead(2);
    d.onRead(2);
    d.onRead(2);
    EXPECT_EQ(d.readerCount, 1);
    d.onRead(3);
    EXPECT_EQ(d.readerCount, 2);
}

TEST(PcDetector, ReaderCountSaturatesAtTwoBits)
{
    PcDetectorState d;
    d.onWrite(1);
    for (NodeId n = 2; n < 10; ++n)
        d.onRead(n);
    EXPECT_EQ(d.readerCount, 3); // 2-bit saturating
}

TEST(PcDetector, WriteResetsReaderTracking)
{
    PcDetectorState d;
    drive(d, "W1R2R3");
    EXPECT_EQ(d.readerCount, 2);
    d.onWrite(1);
    EXPECT_EQ(d.readerCount, 0);
}

TEST(PcDetector, ResetClearsEverything)
{
    PcDetectorState d;
    drive(d, "W1R2W1R2W1R2W1");
    ASSERT_TRUE(d.isProducerConsumer());
    d.reset();
    EXPECT_FALSE(d.isProducerConsumer());
    EXPECT_EQ(d.lastWriter, invalidNode);
    EXPECT_EQ(d.writeRepeat, 0);
}

TEST(PcDetector, ConfigurableSaturationThreshold)
{
    PcDetectorConfig cfg;
    cfg.writeRepeatSaturation = 1;
    PcDetectorState d;
    EXPECT_FALSE(drive(d, "W1", cfg));
    EXPECT_TRUE(drive(d, "R2W1", cfg)); // one epoch suffices
}

// Property sweep: the regular expression ...(Wi)(R!=i)+(Wi)(R!=i)+...
// must be detected for every producer/consumer-count combination, and
// never for alternating writers.
class PcDetectorPattern
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PcDetectorPattern, DetectsExactlyStablePatterns)
{
    const auto [producer, consumers] = GetParam();
    PcDetectorState d;
    bool detected = false;
    for (int epoch = 0; epoch < 4; ++epoch) {
        detected = d.onWrite(producer);
        for (int c = 1; c <= consumers; ++c)
            d.onRead((producer + c) % 16);
    }
    EXPECT_TRUE(detected);
    EXPECT_EQ(d.producer(), producer);

    // The same trace with the writer alternating must never detect.
    PcDetectorState d2;
    bool bad = false;
    for (int epoch = 0; epoch < 16; ++epoch) {
        bad |= d2.onWrite(epoch % 2 == 0 ? producer
                                         : (producer + 1) % 16);
        for (int c = 1; c <= consumers; ++c)
            d2.onRead((producer + 4 + c) % 16);
    }
    EXPECT_FALSE(bad);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, PcDetectorPattern,
    ::testing::Combine(::testing::Values(0, 1, 7, 15),
                       ::testing::Values(1, 2, 3, 8, 15)));
