/** @file Remote Access Cache unit tests (Section 2.1 roles). */

#include <gtest/gtest.h>

#include <vector>

#include "src/core/rac.hh"

using namespace pcsim;

namespace
{

Rac
makeRac(std::size_t bytes = 4 * 128, std::size_t ways = 2)
{
    RacConfig cfg;
    cfg.sizeBytes = bytes;
    cfg.ways = ways;
    return Rac(cfg, Rng(1));
}

} // namespace

TEST(Rac, InsertAndFind)
{
    Rac r = makeRac();
    EXPECT_EQ(r.find(0x1000), nullptr);
    EXPECT_TRUE(r.insert(0x1000, 7));
    RacEntry *e = r.find(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->version, 7u);
    EXPECT_FALSE(e->pinned);
}

TEST(Rac, InsertEvictsUnpinned)
{
    Rac r = makeRac(2 * 128, 2); // one set, two ways
    EXPECT_TRUE(r.insert(0 * 128, 1));
    EXPECT_TRUE(r.insert(1 * 128, 2));
    EXPECT_TRUE(r.insert(2 * 128, 3)); // displaces one
    EXPECT_EQ(r.occupancy(), 2u);
}

TEST(Rac, InsertNeverDisplacesPinned)
{
    Rac r = makeRac(2 * 128, 2);
    ASSERT_NE(r.insertPinned(0 * 128, 1, nullptr), nullptr);
    ASSERT_NE(r.insertPinned(1 * 128, 2, nullptr), nullptr);
    EXPECT_FALSE(r.insert(2 * 128, 3)); // set wholly pinned: dropped
    EXPECT_NE(r.find(0), nullptr);
    EXPECT_NE(r.find(128), nullptr);
}

TEST(Rac, PinnedInsertEvictsUnpinnedFirst)
{
    Rac r = makeRac(2 * 128, 2);
    r.insert(0 * 128, 1);
    r.insert(1 * 128, 2);
    RacEntry *e = r.insertPinned(2 * 128, 3, nullptr);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->pinned);
    EXPECT_TRUE(e->dirtyHome);
}

TEST(Rac, PinnedPressureInvokesUndelegationCallback)
{
    Rac r = makeRac(2 * 128, 2);
    r.insertPinned(0 * 128, 1, nullptr);
    r.insertPinned(1 * 128, 2, nullptr);
    std::vector<Addr> evicted;
    RacEntry *e = r.insertPinned(2 * 128, 3, [&](Addr victim) {
        evicted.push_back(victim);
        r.unpin(victim, /*keep_data=*/false); // what undelegate does
    });
    ASSERT_NE(e, nullptr);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(r.find(2 * 128)->version, 3u);
}

TEST(Rac, UpdatePinnedRefreshesData)
{
    Rac r = makeRac();
    r.insertPinned(0x1000, 5, nullptr);
    r.updatePinned(0x1000, 9);
    EXPECT_EQ(r.find(0x1000)->version, 9u);
    // updatePinned on an unpinned entry is a no-op.
    r.insert(0x2000, 1);
    r.updatePinned(0x2000, 9);
    EXPECT_EQ(r.find(0x2000)->version, 1u);
}

TEST(Rac, UnpinKeepData)
{
    Rac r = makeRac();
    r.insertPinned(0x1000, 5, nullptr);
    r.unpin(0x1000, /*keep_data=*/true);
    RacEntry *e = r.find(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->pinned);
    EXPECT_FALSE(e->dirtyHome);
}

TEST(Rac, UnpinDropData)
{
    Rac r = makeRac();
    r.insertPinned(0x1000, 5, nullptr);
    r.unpin(0x1000, /*keep_data=*/false);
    EXPECT_EQ(r.find(0x1000), nullptr);
}

TEST(Rac, InvalidateRemovesEntry)
{
    Rac r = makeRac();
    r.insert(0x1000, 5);
    EXPECT_TRUE(r.invalidate(0x1000));
    EXPECT_EQ(r.find(0x1000), nullptr);
    EXPECT_FALSE(r.invalidate(0x1000));
}

TEST(Rac, CapacityBytesMatchesConfig)
{
    Rac r = makeRac(32 * 1024, 4);
    EXPECT_EQ(r.capacityBytes(), 32u * 1024);
}

TEST(Rac, FromUpdateFlagRoundTrip)
{
    Rac r = makeRac();
    r.insert(0x1000, 5);
    r.find(0x1000)->fromUpdate = true;
    EXPECT_TRUE(r.find(0x1000)->fromUpdate);
}
