/** @file Event queue kernel tests. */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/event_queue.hh"

using namespace pcsim;

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, TiesBreakInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleIn(50, [&]() { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 10)
            eq.scheduleIn(1, chain);
    };
    eq.scheduleIn(1, chain);
    EXPECT_EQ(eq.run(), 10u);
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.schedule(30, [&]() { ++fired; });
    EXPECT_EQ(eq.run(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StopRequestHaltsExecution)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() {
        ++fired;
        eq.requestStop();
    });
    eq.schedule(20, [&]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.numPending(), 1u);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() { ++fired; });
    eq.schedule(2, [&]() { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.schedule(5, []() {});
    eq.run(7);
    eq.reset();
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, []() {}), "past");
}

TEST(EventQueue, SameTickSchedulingAllowed)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(10, [&]() {
        eq.schedule(10, [&]() { ran = true; }); // now is legal
    });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, StepConsumesPendingStopWithoutExecuting)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() { ++fired; });
    eq.requestStop();
    EXPECT_TRUE(eq.stopRequested());
    // The pending request is consumed: step() returns false once and
    // leaves the event in place.
    EXPECT_FALSE(eq.step());
    EXPECT_FALSE(eq.stopRequested());
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.numPending(), 1u);
    // With the request consumed, stepping resumes normally.
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunClearsStaleStopRequest)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() { ++fired; });
    // A request left over from before run() must not suppress it.
    eq.requestStop();
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.stopRequested());
}

TEST(EventQueue, FarFutureEventsCrossWindows)
{
    // Deltas far beyond the 4096-tick near window exercise the
    // overflow heap and window migration.
    EventQueue eq;
    std::vector<Tick> seen;
    for (Tick t : {Tick(1), Tick(5000), Tick(70000), Tick(4096),
                   Tick(1000000), Tick(4095)})
        eq.schedule(t, [&seen, &eq]() { seen.push_back(eq.curTick()); });
    eq.run();
    EXPECT_EQ(seen, (std::vector<Tick>{1, 4095, 4096, 5000, 70000,
                                       1000000}));
    EXPECT_GT(eq.stats().overflowEvents, 0u);
    EXPECT_GT(eq.stats().windowAdvances, 0u);
}

TEST(EventQueue, SameTickFifoSurvivesWindowMigration)
{
    // Two events on one far-future tick, interleaved with a nearer
    // event whose callback appends a third to the same far tick. All
    // three must still fire in schedule order after migrating from
    // the overflow heap into the calendar ring.
    EventQueue eq;
    const Tick far = 123456;
    std::vector<int> order;
    eq.schedule(far, [&]() { order.push_back(0); });
    eq.schedule(10, [&]() {
        eq.schedule(far, [&]() { order.push_back(2); });
    });
    eq.schedule(far, [&]() { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ResetAllowsFullReuse)
{
    EventQueue eq;
    for (int round = 0; round < 3; ++round) {
        int fired = 0;
        eq.schedule(10, [&]() { ++fired; });
        eq.schedule(99999, [&]() { ++fired; }); // parked in overflow
        eq.run(50);                             // leaves one pending
        EXPECT_EQ(fired, 1);
        EXPECT_EQ(eq.numPending(), 1u);
        eq.reset();
        EXPECT_EQ(eq.curTick(), 0u);
        EXPECT_TRUE(eq.empty());
        EXPECT_EQ(eq.stats().scheduled, 0u);
    }
}

TEST(EventQueue, ResetDestroysPendingCallables)
{
    // Undelivered closures own resources; reset() must release them.
    auto token = std::make_shared<int>(42);
    EventQueue eq;
    eq.schedule(10, [token]() {});
    eq.schedule(999999, [token]() {}); // overflow copy
    EXPECT_EQ(token.use_count(), 3);
    eq.reset();
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, OversizedCallablesFallBackToHeap)
{
    EventQueue eq;
    std::array<std::uint64_t, 32> big{}; // 256 B > inlineCallbackBytes
    big[0] = 7;
    big[31] = 9;
    std::uint64_t sum = 0;
    auto token = std::make_shared<int>(0);
    eq.schedule(1, [big, token, &sum]() { sum = big[0] + big[31]; });
    EXPECT_EQ(eq.stats().heapCallbacks, 1u);
    eq.run();
    EXPECT_EQ(sum, 16u);
    EXPECT_EQ(token.use_count(), 1); // heap copy destroyed after run
}

TEST(EventQueue, StatsCountersTrackActivity)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(Tick(10 + i), []() {});
    EXPECT_EQ(eq.stats().scheduled, 5u);
    EXPECT_EQ(eq.stats().inlineCallbacks, 5u);
    EXPECT_EQ(eq.stats().peakPending, 5u);
    eq.run();
    EXPECT_EQ(eq.stats().executed, 5u);
}

namespace
{

/** Reference model: (tick, seq)-ordered std::priority_queue. */
struct RefEvent
{
    Tick when;
    std::uint64_t seq;
    int id;
};

struct RefLater
{
    bool
    operator()(const RefEvent &a, const RefEvent &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

/** Deterministic xorshift so the stress test needs no <random>. */
struct XorShift
{
    std::uint64_t s;
    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
};

} // namespace

TEST(EventQueue, RandomizedStressMatchesReferenceModel)
{
    // Drive the calendar queue and a textbook priority queue with the
    // same randomized schedule (mixed near/far deltas, same-tick
    // bursts, events scheduling events) and demand identical
    // execution order.
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        EventQueue eq;
        std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater>
            ref;
        std::uint64_t refSeq = 0;
        XorShift rng{seed};
        std::vector<int> gotOrder, refOrder;
        int nextId = 0;

        std::function<void(int, int)> spawn = [&](int id, int depth) {
            gotOrder.push_back(id);
            if (depth > 0 && (rng.next() & 3) == 0) {
                // Occasionally reschedule a child relative to now,
                // mirrored into the reference model with the same
                // delta and a fresh id.
                const std::uint64_t r = rng.next();
                Tick delta = (r & 1) ? Tick(r % 4096)
                                     : Tick(4096 + r % 100000);
                const int child = nextId++;
                ref.push(RefEvent{eq.curTick() + delta, refSeq++,
                                  child});
                eq.scheduleIn(delta,
                              [&, child, depth]() {
                                  spawn(child, depth - 1);
                              });
            }
        };

        for (int i = 0; i < 500; ++i) {
            const std::uint64_t r = rng.next();
            Tick when;
            switch (r & 3) {
            case 0: when = r % 64; break;            // same-tick bursts
            case 1: when = r % 4096; break;          // in-window
            case 2: when = 4096 + r % 262144; break; // few windows out
            default: when = r % 10000000; break;     // far future
            }
            const int id = nextId++;
            ref.push(RefEvent{when, refSeq++, id});
            eq.schedule(when, [&, id]() { spawn(id, 3); });
        }

        eq.run();

        while (!ref.empty()) {
            refOrder.push_back(ref.top().id);
            ref.pop();
        }
        // Children pushed into `ref` during execution drain here too:
        // the reference pop order is (when, seq), matching run().
        ASSERT_EQ(gotOrder.size(), refOrder.size()) << "seed " << seed;
        EXPECT_EQ(gotOrder, refOrder) << "seed " << seed;
        EXPECT_TRUE(eq.empty());
    }
}

TEST(EventQueue, Phase0RunsBeforeNormalEventsAtTheSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(10, [&]() { order.push_back(2); });
    // Scheduled last, still drains first: phase 0 models "the tick
    // begins" work like the network's arrival drains.
    eq.schedulePhase0(10, [&]() { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, Phase0KeepsFifoOrderWithinThePhase)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedulePhase0(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, Phase0InterleavesAcrossTicks)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() { order.push_back(11); });
    eq.schedulePhase0(20, [&]() { order.push_back(20); });
    eq.schedulePhase0(10, [&]() { order.push_back(10); });
    eq.schedule(20, [&]() { order.push_back(21); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21}));
}

TEST(EventQueue, Phase0SchedulesFromEventsAndFarFuture)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    // A normal event books a far-future phase-0 event (overflow path)
    // plus same-window ones; each drains at the head of its tick.
    eq.schedule(1, [&]() {
        eq.schedulePhase0(1000000, [&]() {
            ticks.push_back(eq.curTick());
        });
        eq.schedulePhase0(50, [&]() { ticks.push_back(eq.curTick()); });
    });
    eq.schedule(50, [&]() { ticks.push_back(0); });
    eq.run();
    ASSERT_EQ(ticks.size(), 3u);
    EXPECT_EQ(ticks[0], 50u);
    EXPECT_EQ(ticks[1], 0u);
    EXPECT_EQ(ticks[2], 1000000u);
}

TEST(EventQueue, PeekNextTickSeesBothPhases)
{
    EventQueue eq;
    Tick when = 0;
    EXPECT_FALSE(eq.peekNextTick(when));
    eq.schedule(30, []() {});
    ASSERT_TRUE(eq.peekNextTick(when));
    EXPECT_EQ(when, 30u);
    eq.schedulePhase0(10, []() {});
    ASSERT_TRUE(eq.peekNextTick(when));
    EXPECT_EQ(when, 10u);
    eq.run();
    EXPECT_FALSE(eq.peekNextTick(when));
}
