/** @file Event queue kernel tests. */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.hh"

using namespace pcsim;

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, TiesBreakInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleIn(50, [&]() { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 10)
            eq.scheduleIn(1, chain);
    };
    eq.scheduleIn(1, chain);
    EXPECT_EQ(eq.run(), 10u);
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.schedule(30, [&]() { ++fired; });
    EXPECT_EQ(eq.run(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StopRequestHaltsExecution)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() {
        ++fired;
        eq.requestStop();
    });
    eq.schedule(20, [&]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.numPending(), 1u);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() { ++fired; });
    eq.schedule(2, [&]() { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.schedule(5, []() {});
    eq.run(7);
    eq.reset();
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, []() {}), "past");
}

TEST(EventQueue, SameTickSchedulingAllowed)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(10, [&]() {
        eq.schedule(10, [&]() { ran = true; }); // now is legal
    });
    eq.run();
    EXPECT_TRUE(ran);
}
