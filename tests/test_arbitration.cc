/**
 * @file
 * Directory arbitration under NACK storms: the sliding NACK-rate
 * window, the 0-based retry-attempt accounting, overflow-safe retry
 * knob validation, fairness-telemetry serialization, and the
 * starvation acceptance test -- parked-queue arbitration must bound
 * the worst per-line wait that pure NACK-and-retry lets grow.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/protocol/config.hh"
#include "src/protocol/hub.hh"
#include "src/protocol/node_stats.hh"
#include "src/runner/faults.hh"
#include "src/runner/results.hh"
#include "src/runner/runner.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/workload.hh"

using namespace pcsim;

// --- sliding NACK-storm window ------------------------------------

TEST(NackStormWindow, BurstStraddlingBoxcarBoundaryCountsInFull)
{
    // Regression: the old boxcar counter reset whenever
    // tick / window changed, so a burst of 10 split 5 + 5 across the
    // aligned boundary at tick `window` reported a peak of 5 -- half
    // its true rate. The sliding ring must report all 10.
    NackStormWindow w;
    std::uint64_t peak = 0;
    for (int i = 0; i < 5; ++i)
        peak = std::max(peak, w.note(NackStormWindow::window - 10));
    for (int i = 0; i < 5; ++i)
        peak = std::max(peak, w.note(NackStormWindow::window + 10));
    EXPECT_EQ(peak, 10u);
}

TEST(NackStormWindow, OldNacksExpireAfterOneWindow)
{
    NackStormWindow w;
    for (int i = 0; i < 7; ++i)
        w.note(100);
    // A full window later the old burst has aged out entirely.
    EXPECT_EQ(w.note(100 + NackStormWindow::window), 1u);
}

TEST(NackStormWindow, TrailingWindowSlidesBucketByBucket)
{
    constexpr Tick sub = NackStormWindow::window /
                         NackStormWindow::numBuckets;
    NackStormWindow w;
    w.note(0);                                   // bucket 0
    EXPECT_EQ(w.note(NackStormWindow::window - sub), 2u);
    // One sub-bucket further: the tick-0 note falls off the ring but
    // the second one is still inside the trailing window.
    EXPECT_EQ(w.note(NackStormWindow::window), 2u);
    EXPECT_EQ(w.note(NackStormWindow::window + sub), 3u);
}

// --- 0-based retry-attempt accounting -----------------------------

TEST(RetryTelemetry, MaxRetriesPerLineIsZeroBasedAttemptIndex)
{
    // Regression: sites used to mix 0-based attempt indices with
    // 1-based retry counts, inflating maxRetriesPerLine by one
    // depending on which path observed the line. noteRetryAttempt is
    // the single funnel: attempt 0 (a line NACKed once, then
    // satisfied) must report max 0.
    NodeStats ns;
    EXPECT_EQ(ns.maxRetriesPerLine, 0u);
    ns.noteRetryAttempt(0);
    EXPECT_EQ(ns.maxRetriesPerLine, 0u);
    ns.noteRetryAttempt(3);
    ns.noteRetryAttempt(1);
    EXPECT_EQ(ns.maxRetriesPerLine, 3u);

    NodeStats other;
    other.noteRetryAttempt(5);
    ns += other;
    EXPECT_EQ(ns.maxRetriesPerLine, 5u); // merged by max
}

// --- retry knob validation ----------------------------------------

TEST(RetryConfigValidation, RejectsTickOverflowCombinations)
{
    constexpr std::uint64_t max_tick = ~std::uint64_t(0);

    // retryBase << retryExpCap overflowing the Tick range used to
    // validate cleanly and wrap to a tiny backoff at runtime.
    ProtocolConfig shift;
    shift.retryExpCap = 6;
    shift.retryBase = (max_tick >> 6) + 1;
    EXPECT_NE(shift.validateError().find("overflows the Tick range"),
              std::string::npos);
    shift.retryBase = max_tick >> 6; // largest safe value: accepted
    EXPECT_EQ(shift.validateError(), "");

    // retryJitter == UINT64_MAX: the uniform draw is over
    // [0, retryJitter], so the bound + 1 wraps to a zero-width range.
    ProtocolConfig jitter;
    jitter.retryJitter = max_tick;
    EXPECT_NE(jitter.validateError().find("retryJitter + 1 overflows"),
              std::string::npos);
}

TEST(ArbitrationConfig, NamesRoundTripAndDepthIsValidated)
{
    for (Arbitration a : {Arbitration::NackRetry, Arbitration::Queue,
                          Arbitration::AgedPriority}) {
        Arbitration back;
        ASSERT_TRUE(arbitrationFromName(arbitrationName(a), back));
        EXPECT_EQ(back, a);
    }
    Arbitration out;
    EXPECT_FALSE(arbitrationFromName("no-such-mode", out));

    ProtocolConfig cfg;
    cfg.arbitration = Arbitration::Queue;
    EXPECT_EQ(cfg.validateError(), "");
    cfg.arbQueueDepth = 0;
    EXPECT_NE(cfg.validateError().find("arbQueueDepth"),
              std::string::npos);
    // Depth 0 is only meaningless when a queue mode is selected.
    cfg.arbitration = Arbitration::NackRetry;
    EXPECT_EQ(cfg.validateError(), "");
}

// --- fairness telemetry schema ------------------------------------

TEST(FairnessResults, BlockRoundTripsAndIsGated)
{
    RunResult r;
    r.workload = "w";
    r.config = "c";
    r.arbitrationActive = true;
    r.missLatencyP50 = 40;
    r.missLatencyP95 = 600;
    r.missLatencyP99 = 1500;
    r.nodes.maxLineWaitTicks = 9001;
    r.nodes.queueDepthPeak = 12;
    r.nodes.missLatencyHist.sample(latencyBucketOf(40));
    r.nodes.missLatencyHist.sample(latencyBucketOf(1500));

    const JsonValue v = runner::toJson(r, false);
    ASSERT_NE(v.find("fairness"), nullptr);
    const RunResult back = runner::runResultFromJson(v);
    EXPECT_TRUE(back.arbitrationActive);
    EXPECT_EQ(back.missLatencyP50, 40u);
    EXPECT_EQ(back.missLatencyP95, 600u);
    EXPECT_EQ(back.missLatencyP99, 1500u);
    EXPECT_EQ(back.nodes.maxLineWaitTicks, 9001u);
    EXPECT_EQ(back.nodes.queueDepthPeak, 12u);
    EXPECT_EQ(back.nodes.missLatencyHist.total(), 2u);

    // Default-mode, fault-free results must not gain the block, so
    // every pre-existing golden stays byte-identical.
    RunResult clean;
    clean.workload = "w";
    clean.config = "c";
    EXPECT_EQ(runner::toJson(clean, false).find("fairness"), nullptr);
}

TEST(FairnessResults, LatencyPercentilesReadBucketFloors)
{
    Histogram h(256);
    for (int i = 0; i < 99; ++i)
        h.sample(latencyBucketOf(10));
    h.sample(latencyBucketOf(5000));
    EXPECT_EQ(latencyPercentile(h, 0.50),
              latencyBucketFloor(latencyBucketOf(10)));
    EXPECT_EQ(latencyPercentile(h, 0.99),
              latencyBucketFloor(latencyBucketOf(10)));
    EXPECT_EQ(latencyPercentile(h, 1.0),
              latencyBucketFloor(latencyBucketOf(5000)));
    EXPECT_EQ(latencyPercentile(Histogram(256), 0.99), 0u);
}

// --- starvation acceptance ----------------------------------------

namespace
{

runner::JobSet
stormJobs(const std::string &arbitration)
{
    runner::FaultsOptions opt; // BENCH_qos defaults: 16 nodes, seed 1
    opt.scenarios = {"storm"};
    opt.arbitrations = {arbitration};
    return runner::faultJobs(opt);
}

/** Worst maxLineWaitTicks / p99 over the delegation and
 *  delegate-update rows of one arbitration mode's storm sweep. */
void
stormWorstCase(const std::string &arbitration,
               std::uint64_t &max_wait, std::uint64_t &p99,
               std::uint64_t &queue_peak)
{
    runner::RunnerOptions ropts;
    ropts.threads = 4;
    ropts.progress = false;
    max_wait = p99 = queue_peak = 0;
    const auto results = runner::runJobs(stormJobs(arbitration), ropts);
    EXPECT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        ASSERT_TRUE(r.ok) << r.error;
        if (r.job.configName == "base")
            continue; // head-of-line effects: see BENCH_qos.json
        max_wait =
            std::max(max_wait, r.result.nodes.maxLineWaitTicks);
        p99 = std::max(p99, r.result.missLatencyP99);
        queue_peak =
            std::max(queue_peak, r.result.nodes.queueDepthPeak);
    }
}

} // namespace

TEST(Starvation, ParkedArbitrationBoundsWaitThatNackRetryGrows)
{
    // The acceptance criterion, scaled down: the same seeded NACK
    // storm, measured under all three arbitration modes. Pure
    // NACK-and-retry lets a line's worst wait grow with each lost
    // arbitration round; the parked-queue modes bound it, and the
    // per-node p99 miss latency drops with it.
    std::uint64_t nack_wait, nack_p99, nack_peak;
    stormWorstCase("nack-retry", nack_wait, nack_p99, nack_peak);
    EXPECT_GT(nack_wait, 0u);
    EXPECT_EQ(nack_peak, 0u); // no queue exists in this mode

    for (const char *mode : {"queue", "aged-priority"}) {
        std::uint64_t wait, p99, peak;
        stormWorstCase(mode, wait, p99, peak);
        EXPECT_LT(wait, nack_wait) << mode;
        EXPECT_LT(p99, nack_p99) << mode;
        EXPECT_GT(peak, 0u) << mode; // requests actually parked
    }
}

// --- byte identity for the new modes ------------------------------

TEST(ArbitrationIdentity, QueuedModesByteIdenticalAcrossThreads)
{
    runner::FaultsOptions opt;
    opt.nodes = 8;
    opt.scale = 0.2;
    opt.seed = 3;
    opt.scenarios = {"hotspot"};
    opt.arbitrations = {"queue", "aged-priority"};
    const runner::JobSet set = runner::faultJobs(opt);
    ASSERT_EQ(set.size(), 6u); // 2 modes x 3 mechanism configs

    runner::RunnerOptions serial, pooled;
    serial.threads = 1;
    serial.progress = false;
    pooled.threads = 8;
    pooled.progress = false;

    const std::string a =
        runner::resultsToJson(runner::runJobs(set, serial), false)
            .dump(2);
    const std::string b =
        runner::resultsToJson(runner::runJobs(set, pooled), false)
            .dump(2);
    EXPECT_EQ(a, b);
}

TEST(ArbitrationIdentity, QueuedModesMatchSequentialShardOracle)
{
    // Parked-queue drains are scheduled on the home shard's own event
    // queue, so the conservative parallel kernel must serialize the
    // new modes byte-identically too.
    MachineConfig cfg;
    std::string cname;
    ASSERT_TRUE(runner::namedMachineConfig("delegation", 32, cfg,
                                           cname));
    cfg.proto.checkerEnabled = true;
    cfg.proto.conformanceEnabled = true;
    for (Arbitration a : {Arbitration::Queue,
                          Arbitration::AgedPriority}) {
        cfg.proto.arbitration = a;
        std::string oracle, sharded;
        {
            MachineConfig c1 = cfg;
            c1.shards = 1;
            System sys(c1);
            auto wl = runner::makeRunnerWorkload("PCmicro",
                                                 sys.numNodes(), 0.5);
            oracle = runner::toJson(sys.run(*wl), false).dump(2);
        }
        {
            MachineConfig c2 = cfg;
            c2.shards = 4;
            System sys(c2);
            auto wl = runner::makeRunnerWorkload("PCmicro",
                                                 sys.numNodes(), 0.5);
            sharded = runner::toJson(sys.run(*wl), false).dump(2);
        }
        EXPECT_EQ(sharded, oracle) << arbitrationName(a);
    }
}
