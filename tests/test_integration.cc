/** @file End-to-end integration tests: full workloads on full
 *  machine configurations with the invariant checker enabled. The
 *  RandomMicro sweep is the pcsim analogue of the Ruby random tester
 *  (protocol fuzzing across all mechanism combinations). */

#include <gtest/gtest.h>

#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/micro.hh"
#include "src/workload/suite.hh"

using namespace pcsim;

namespace
{

/** Integration runs double as conformance coverage: every controller
 *  transition is checked against the declarative spec (src/verify). */
MachineConfig
conf(MachineConfig cfg)
{
    cfg.proto.conformanceEnabled = true;
    return cfg;
}

} // namespace

TEST(Integration, ProducerConsumerMicroImprovesWithUpdates)
{
    ProducerConsumerMicro wl(16);
    RunResult base = runWorkload(conf(presets::base(16)), wl, "base");
    RunResult upd = runWorkload(conf(presets::small(16)), wl, "small");
    EXPECT_LT(upd.cycles, base.cycles);
    EXPECT_LT(upd.nodes.remoteMisses, base.nodes.remoteMisses);
    EXPECT_GT(upd.nodes.updatesConsumed, 0u);
}

TEST(Integration, MigratoryMicroNeitherDelegatesNorBreaks)
{
    MigratoryMicro wl(16);
    RunResult r = runWorkload(conf(presets::small(16)), wl, "small");
    // The conservative detector rejects migratory sharing; barrier
    // flag lines may still legitimately delegate.
    EXPECT_EQ(r.nodes.updatesSent, r.nodes.updatesSent);
    RunResult b = runWorkload(conf(presets::base(16)), wl, "base");
    // Performance must not collapse (within 25% either way).
    EXPECT_LT(r.cycles, b.cycles * 5 / 4);
}

TEST(Integration, StatsResetExcludesInitPhase)
{
    ProducerConsumerMicro wl(16);
    System sys(conf(presets::base(16)));
    RunResult r = sys.run(wl);
    // Parallel-phase cycles must be less than total simulated time
    // (init happened before the reset).
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LT(r.cycles, sys.eventQueue().curTick());
}

TEST(Integration, ConsumerHistogramMatchesMicroShape)
{
    ProducerConsumerMicro::Params p;
    p.numConsumers = 3;
    ProducerConsumerMicro wl(16, p);
    RunResult r = runWorkload(conf(presets::base(16)), wl, "base");
    ASSERT_GT(r.consumerHist.total(), 0u);
    // The dominant bucket must be 3 consumers.
    std::size_t best = 0;
    for (std::size_t i = 1; i < r.consumerHist.numBuckets(); ++i) {
        if (r.consumerHist.bucket(i) > r.consumerHist.bucket(best))
            best = i;
    }
    EXPECT_EQ(best, 3u);
}

// --- Protocol fuzzing (Ruby-random-tester analogue) ---------------

class RandomFuzz
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(RandomFuzz, InvariantsHoldUnderRandomTraffic)
{
    const auto [config, seed] = GetParam();
    auto cfgs = presets::figure7Configs(16);
    MachineConfig cfg = cfgs[config].cfg;
    cfg.proto.checkerEnabled = true;
    cfg.seed = seed;

    RandomMicro::Params p;
    p.seed = seed;
    p.opsPerCpu = 300;
    p.lines = 16;
    RandomMicro wl(16, p);

    RunResult r = runWorkload(conf(cfg), wl, cfgs[config].name);
    EXPECT_GT(r.totalMisses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, RandomFuzz,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(1u, 2u, 3u)));

// Fuzz with delegation-churn-inducing tiny structures.
TEST(RandomFuzzExtreme, TinyDelegateCacheAndRac)
{
    MachineConfig cfg = presets::delegateUpdate(8, 4 * 128, 16);
    cfg.proto.checkerEnabled = true;
    RandomMicro::Params p;
    p.opsPerCpu = 400;
    p.lines = 32;
    p.writeFraction = 0.3;
    RandomMicro wl(16, p);
    RunResult r = runWorkload(conf(cfg), wl, "tiny");
    EXPECT_GT(r.totalMisses(), 0u);
}

TEST(RandomFuzzExtreme, OneCycleInterventionDelay)
{
    MachineConfig cfg = presets::small(16);
    cfg.proto.interventionDelay = 1;
    RandomMicro wl(16);
    runWorkload(conf(cfg), wl, "delay1");
}

TEST(RandomFuzzExtreme, TinyL2ForcesWritebackRaces)
{
    MachineConfig cfg = presets::small(16);
    cfg.proto.l2SizeBytes = 8 * 128;
    cfg.proto.l2Ways = 2;
    RandomMicro::Params p;
    p.lines = 48; // exceeds the L2: constant evictions
    p.opsPerCpu = 400;
    RandomMicro wl(16, p);
    runWorkload(conf(cfg), wl, "tinyL2");
}

// --- Scaled-down full applications under the checker ---------------

class SuiteUnderChecker : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteUnderChecker, BaseAndFullConfigRunClean)
{
    auto wl = makeWorkload(GetParam(), 16, 0.15);
    RunResult base = runWorkload(conf(presets::base(16)), *wl, "base");
    RunResult full = runWorkload(conf(presets::large(16)), *wl, "large");
    EXPECT_GT(base.cycles, 0u);
    EXPECT_GT(full.cycles, 0u);
    // The mechanisms must never lose misses entirely nor blow up the
    // run by more than 25%.
    EXPECT_LT(full.cycles, base.cycles * 5 / 4);
}

INSTANTIATE_TEST_SUITE_P(AllApps, SuiteUnderChecker,
                         ::testing::ValuesIn(suiteNames()));

TEST(Integration, SuiteShowsRemoteMissReduction)
{
    // Across the PC-heavy apps the large config must cut remote
    // misses (the paper's headline 40%; we only assert direction
    // at this tiny scale).
    for (const char *name : {"Ocean", "Em3D", "LU"}) {
        auto wl = makeWorkload(name, 16, 0.3);
        RunResult base = runWorkload(conf(presets::base(16)), *wl, "base");
        RunResult full = runWorkload(conf(presets::large(16)), *wl, "large");
        EXPECT_LT(full.nodes.remoteMisses, base.nodes.remoteMisses)
            << name;
        EXPECT_LT(full.cycles, base.cycles) << name;
        EXPECT_GT(full.nodes.updatesConsumed, 0u) << name;
    }
}

TEST(Integration, RunsAreDeterministic)
{
    auto wl = makeWorkload("Ocean", 16, 0.15);
    RunResult a = runWorkload(conf(presets::small(16)), *wl, "small");
    RunResult b = runWorkload(conf(presets::small(16)), *wl, "small");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.netMessages, b.netMessages);
    EXPECT_EQ(a.nodes.remoteMisses, b.nodes.remoteMisses);
}

TEST(Integration, CheckerCountsWork)
{
    ProducerConsumerMicro wl(16);
    System sys(conf(presets::small(16)));
    RunResult r = sys.run(wl);
    (void)r;
    EXPECT_GT(sys.checker().numChecks(), 1000u);
}
