/**
 * @file
 * Test harness: drives a System with scripted accesses and exposes
 * state-inspection helpers for directed protocol tests.
 */

#ifndef PCSIM_TESTS_HARNESS_HH
#define PCSIM_TESTS_HARNESS_HH

#include <gtest/gtest.h>

#include "src/system/presets.hh"
#include "src/system/system.hh"

namespace pcsim
{

/** Tests run with the spec-conformance hook enabled: any controller
 *  transition outside src/verify's declarative spec fails the test. */
inline MachineConfig
withConformance(MachineConfig cfg)
{
    cfg.proto.conformanceEnabled = true;
    return cfg;
}

/** Synchronous access driver over an asynchronous System. */
class Harness
{
  public:
    explicit Harness(const MachineConfig &cfg)
        : sys(withConformance(cfg))
    {
    }

    /** Issue one access from @p cpu and drain the event queue.
     *  @return the version the access observed/produced. */
    Version
    access(unsigned cpu, bool is_write, Addr addr)
    {
        bool done = false;
        Version out = 0;
        sys.hub(cpu).cpuAccess(is_write, addr, [&](Version v) {
            done = true;
            out = v;
        });
        sys.eventQueue().run();
        EXPECT_TRUE(done) << "access did not complete";
        return out;
    }

    Version read(unsigned cpu, Addr a) { return access(cpu, false, a); }
    Version write(unsigned cpu, Addr a) { return access(cpu, true, a); }

    /**
     * Issue accesses from several CPUs in the same cycle (racing) and
     * drain. Each element is {cpu, is_write, addr}.
     */
    struct Op
    {
        unsigned cpu;
        bool isWrite;
        Addr addr;
    };

    void
    race(std::initializer_list<Op> ops)
    {
        unsigned pending = 0;
        for (const Op &op : ops) {
            ++pending;
            sys.hub(op.cpu).cpuAccess(op.isWrite, op.addr,
                                      [&pending](Version) {
                                          --pending;
                                      });
        }
        sys.eventQueue().run();
        EXPECT_EQ(pending, 0u) << "racing accesses did not drain";
    }

    LineState
    l2State(unsigned cpu, Addr line)
    {
        Version v;
        return sys.hub(cpu).l2State(line, v);
    }

    Version
    l2Version(unsigned cpu, Addr line)
    {
        Version v = 0;
        sys.hub(cpu).l2State(line, v);
        return v;
    }

    DirEntry dir(Addr line)
    {
        const NodeId home = sys.memMap().homeOf(line);
        return sys.hub(home).homeDirEntry(line);
    }

    NodeId home(Addr line) { return sys.memMap().homeOf(line); }

    bool
    racHas(unsigned cpu, Addr line)
    {
        Version v;
        bool pinned;
        return sys.hub(cpu).racCopy(line, v, pinned);
    }

    bool
    delegated(unsigned cpu, Addr line)
    {
        return sys.hub(cpu).producerEntry(line) != nullptr;
    }

    NodeStats &stats(unsigned cpu) { return sys.hub(cpu).stats(); }

    void
    checkQuiescent()
    {
        sys.checker().checkQuiescent([this](Addr line) {
            return sys.memMap().homeOf(line);
        });
    }

    System sys;
};

/** A line-aligned scratch address in an unclaimed region. */
inline Addr
testLine(unsigned i)
{
    return 0x70000000ull + static_cast<Addr>(i) * 128;
}

} // namespace pcsim

#endif // PCSIM_TESTS_HARNESS_HH
