/** @file Speculative update tests (Section 2.4): delayed
 *  interventions, selective pushes to the previous sharing vector,
 *  RAC landing, update-as-response and the delay knob. */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace pcsim;

namespace
{

MachineConfig
updCfg(Tick delay = 50)
{
    MachineConfig m = presets::small(16);
    m.proto.interventionDelay = delay;
    return m;
}

void
saturate(Harness &h, Addr a, unsigned producer, unsigned consumer,
         unsigned epochs = 4)
{
    for (unsigned i = 0; i < epochs; ++i) {
        h.write(producer, a);
        h.read(consumer, a);
    }
}

} // namespace

TEST(Updates, DelayedInterventionDowngradesProducer)
{
    Harness h(updCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a); // delegates; epoch opens
    // The harness drains the queue, so the delayed intervention has
    // fired by now: the producer holds SHARED, not MODIFIED.
    EXPECT_EQ(h.l2State(5, a), LineState::Shared);
    EXPECT_GE(h.stats(5).delayedInterventions, 1u);
    h.checkQuiescent();
}

TEST(Updates, PushLandsInConsumerRac)
{
    Harness h(updCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a); // delegate
    h.read(9, a);  // 9 is a sharer now
    h.write(5, a); // invalidates 9, then pushes the new data
    EXPECT_EQ(h.l2State(9, a), LineState::Invalid);
    EXPECT_TRUE(h.racHas(9, a)); // pushed copy waiting
    EXPECT_GE(h.stats(5).updatesSent, 1u);
    EXPECT_GE(h.stats(9).updatesReceived, 1u);
    h.checkQuiescent();
}

TEST(Updates, ConsumerReadBecomesLocalMiss)
{
    Harness h(updCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    h.read(9, a);
    h.write(5, a); // push in flight to 9
    const auto remote_before = h.stats(9).remoteMisses;
    const auto local_before = h.stats(9).localMisses;
    EXPECT_EQ(h.read(9, a), h.sys.checker().authority().current(a));
    EXPECT_EQ(h.stats(9).remoteMisses, remote_before);
    EXPECT_EQ(h.stats(9).localMisses, local_before + 1);
    EXPECT_GE(h.stats(9).updatesConsumed, 1u);
    h.checkQuiescent();
}

TEST(Updates, PushTargetsPreviousSharingVector)
{
    Harness h(updCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    // Three consumers read this epoch.
    h.read(9, a);
    h.read(10, a);
    h.read(11, a);
    const auto sent_before = h.stats(5).updatesSent;
    h.write(5, a); // push to {9, 10, 11}
    EXPECT_EQ(h.stats(5).updatesSent, sent_before + 3);
    EXPECT_TRUE(h.racHas(9, a));
    EXPECT_TRUE(h.racHas(10, a));
    EXPECT_TRUE(h.racHas(11, a));
    // A node that never consumed gets nothing.
    EXPECT_FALSE(h.racHas(12, a));
    h.checkQuiescent();
}

TEST(Updates, SteadyStatePushesWithoutReads)
{
    // Once consumers hit in their RACs, their reads no longer reach
    // the producer -- but the old sharing vector keeps them in the
    // update set (Section 2.4.2), so pushes continue.
    Harness h(updCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    h.read(9, a);
    for (int epoch = 0; epoch < 5; ++epoch) {
        h.write(5, a);
        EXPECT_EQ(h.read(9, a),
                  h.sys.checker().authority().current(a));
    }
    EXPECT_GE(h.stats(9).updatesConsumed, 4u);
    h.checkQuiescent();
}

TEST(Updates, InfiniteDelayDegradesToDelegationOnly)
{
    Harness h(updCfg(/*delay=*/maxTick));
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    ASSERT_TRUE(h.delegated(5, a));
    h.read(9, a); // on-demand downgrade, 2-hop
    h.write(5, a);
    h.sys.eventQueue().run();
    EXPECT_EQ(h.stats(5).updatesSent, 0u);
    EXPECT_FALSE(h.racHas(9, a));
    h.checkQuiescent();
}

TEST(Updates, UpdatesKeepSequentialConsistency)
{
    // The reader must never see versions go backwards even when data
    // arrives via pushes (checker enforces monotonic reads).
    Harness h(updCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    Version last = 0;
    for (int epoch = 0; epoch < 8; ++epoch) {
        h.write(5, a);
        const Version v = h.read(9, a);
        EXPECT_GE(v, last);
        last = v;
    }
    h.checkQuiescent();
}

TEST(Updates, WriteAfterPushInvalidatesRacCopy)
{
    Harness h(updCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    h.read(9, a);
    h.write(5, a); // push lands in 9's RAC
    ASSERT_TRUE(h.racHas(9, a));
    h.write(5, a); // next epoch invalidates the RAC copy first...
    // ...and then pushes the fresh version again.
    Version v;
    bool pinned;
    ASSERT_TRUE(h.sys.hub(9).racCopy(a, v, pinned));
    EXPECT_EQ(v, h.sys.checker().authority().current(a));
    h.checkQuiescent();
}

TEST(Updates, ConflictWriterStillWins)
{
    // A third node writing the line undelegates and takes ownership
    // even while pushes are flowing.
    Harness h(updCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    h.read(9, a);
    h.write(5, a);
    h.write(12, a);
    EXPECT_FALSE(h.delegated(5, a));
    EXPECT_EQ(h.dir(a).owner, 12);
    EXPECT_EQ(h.read(9, a), h.sys.checker().authority().current(a));
    h.checkQuiescent();
}

TEST(Updates, ExtraWriteMissWhenDelayTooShort)
{
    // A 1-cycle delay cuts write bursts: the second store of a burst
    // misses again (Section 3.3.2's "5-cycle" effect).
    Harness h(updCfg(/*delay=*/1));
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    // A write burst issued back-to-back (each store fired from the
    // previous one's completion, like a real CPU): the 1-cycle
    // intervention cuts it, forcing re-upgrades.
    int remaining = 6;
    std::function<void(Version)> burst = [&](Version) {
        if (--remaining > 0)
            h.sys.hub(5).cpuAccess(true, a, burst);
    };
    h.sys.hub(5).cpuAccess(true, a, burst);
    h.sys.eventQueue().run();
    EXPECT_EQ(remaining, 0);
    EXPECT_GT(h.stats(5).extraWriteMisses, 0u);
}

TEST(Updates, RacingReadDuringEpochIsServed)
{
    Harness h(updCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    h.write(5, a);
    h.read(9, a);
    // Read races the producer's write: either NACK-retry-then-RAC-hit
    // or a direct reply; both must return fresh data.
    h.race({{5, true, a}, {9, false, a}});
    EXPECT_EQ(h.read(9, a), h.sys.checker().authority().current(a));
    h.checkQuiescent();
}

class UpdateDelaySweep : public ::testing::TestWithParam<Tick>
{
};

TEST_P(UpdateDelaySweep, CorrectAtAnyDelay)
{
    Harness h(updCfg(GetParam()));
    const Addr a = testLine(0);
    h.read(0, a);
    saturate(h, a, 5, 9);
    for (int epoch = 0; epoch < 4; ++epoch) {
        h.write(5, a);
        EXPECT_EQ(h.read(9, a),
                  h.sys.checker().authority().current(a));
        EXPECT_EQ(h.read(11, a),
                  h.sys.checker().authority().current(a));
    }
    h.checkQuiescent();
}

INSTANTIATE_TEST_SUITE_P(Delays, UpdateDelaySweep,
                         ::testing::Values(1, 5, 50, 500, 5000, 50000,
                                           maxTick));
