/** @file Protocol-spec lint tests: the shipped spec must be clean
 *  (golden-file check on the JSON report), and a seeded defect of
 *  each class must be caught by the matching pass. */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/cache/line_state.hh"
#include "src/mem/directory.hh"
#include "src/protocol/policy.hh"
#include "src/verify/lint.hh"
#include "src/verify/liveness.hh"
#include "src/verify/mdg.hh"
#include "src/verify/spec.hh"

using namespace pcsim;
using namespace pcsim::verify;

namespace
{

bool
hasFinding(const LintReport &r, const std::string &kind,
           const std::string &state, const std::string &event)
{
    return std::any_of(r.findings.begin(), r.findings.end(),
                       [&](const LintFinding &f) {
                           return f.kind == kind && f.state == state &&
                                  f.event == event;
                       });
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(Lint, ShippedSpecIsClean)
{
    const LintReport r = lintSpec(protocolSpec());
    for (const auto &f : r.findings) {
        ADD_FAILURE() << f.kind << ": " << f.ctrl << " " << f.state
                      << " x " << f.event << ": " << f.detail;
    }
    EXPECT_TRUE(r.clean());
}

TEST(Lint, ShippedSpecMatchesModel)
{
    const LintReport r = lintSpecWithModel(protocolSpec());
    for (const auto &f : r.findings) {
        ADD_FAILURE() << f.kind << ": " << f.ctrl << " " << f.state
                      << " x " << f.event << ": " << f.detail;
    }
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.mcConfigs, 5u);
    EXPECT_GT(r.mcStates, 100'000u);
    EXPECT_GT(r.mcObserved, 50u);
}

TEST(Lint, GoldenJsonReport)
{
    // The serialized static-lint report is a committed artifact:
    // regenerate tests/golden/lint_clean.json when the spec grows
    // (build/apps/pcsim lint --no-mc --json tests/golden/...).
    const TransitionSpec &spec = protocolSpec();
    const std::string got =
        lintToJson(spec, lintSpec(spec)).dump(2) + "\n";
    const std::string want =
        readFile(std::string(PCSIM_SOURCE_DIR) +
                 "/tests/golden/lint_clean.json");
    ASSERT_FALSE(want.empty()) << "golden file missing";
    EXPECT_EQ(got, want);
}

TEST(Lint, DetectsUnhandledPair)
{
    TransitionSpec spec = buildProtocolSpec();
    ASSERT_TRUE(spec.removeRule(Ctrl::Producer, prodExcl,
                                PEvent::LocalFlush));
    const LintReport r = lintSpec(spec);
    EXPECT_EQ(r.findings.size(), 1u);
    EXPECT_TRUE(hasFinding(r, "unhandled", "Excl", "LocalFlush"));
}

TEST(Lint, DetectsDuplicateRules)
{
    TransitionSpec spec = buildProtocolSpec();
    TransitionRule dup;
    dup.ctrl = Ctrl::Cache;
    dup.state = static_cast<StateId>(LineState::Invalid);
    dup.event = PEvent::CpuLoad;
    dup.next = {static_cast<StateId>(LineState::Invalid)};
    spec.add(dup);
    const LintReport r = lintSpec(spec);
    EXPECT_EQ(r.findings.size(), 1u);
    EXPECT_TRUE(hasFinding(r, "ambiguous", "I", "CpuLoad"));
}

TEST(Lint, DetectsRuleImpossibleConflict)
{
    TransitionSpec spec = buildProtocolSpec();
    spec.declareImpossible(Ctrl::Cache,
                           static_cast<StateId>(LineState::Invalid),
                           PEvent::CpuLoad, "seeded conflict");
    const LintReport r = lintSpec(spec);
    EXPECT_EQ(r.findings.size(), 1u);
    EXPECT_TRUE(hasFinding(r, "ambiguous", "I", "CpuLoad"));
}

TEST(Lint, DetectsUnreachableState)
{
    TransitionSpec spec = buildProtocolSpec();
    // LineState::Exclusive exists in the enum but the protocol never
    // grants it; declaring it without any inbound rule must flag it.
    spec.declareState(Ctrl::Cache,
                      static_cast<StateId>(LineState::Exclusive),
                      "E");
    const LintReport r = lintSpec(spec);
    EXPECT_TRUE(hasFinding(r, "unreachable", "E", ""));
    // The freshly declared state also lacks rules for every relevant
    // event; each of those is an unhandled finding.
    EXPECT_TRUE(hasFinding(r, "unhandled", "E", "CpuLoad"));
}

TEST(Lint, DetectsModelMismatch)
{
    TransitionSpec spec = buildProtocolSpec();
    // Break the directory's ReqShared rule: pretend Unowned can only
    // stay Unowned. The model takes Unowned -> Shared on the first
    // read, which the cross-check must flag.
    TransitionRule *rule =
        spec.findMutable(Ctrl::Dir,
                         static_cast<StateId>(DirState::Unowned),
                         PEvent::ReqShared);
    ASSERT_NE(rule, nullptr);
    rule->next = {static_cast<StateId>(DirState::Unowned)};
    ASSERT_TRUE(lintSpec(spec).clean()) << "defect must be mc-only";
    const LintReport r = lintSpecWithModel(spec);
    EXPECT_TRUE(hasFinding(r, "mc-mismatch", "Unowned", "ReqShared"));
}

TEST(Lint, CoverageFoldsObservedCounts)
{
    const TransitionSpec &spec = protocolSpec();
    std::vector<TransitionCount> observed;
    TransitionCount t;
    t.ctrl = static_cast<std::uint8_t>(Ctrl::Cache);
    t.state = static_cast<std::uint8_t>(LineState::Invalid);
    t.event = static_cast<std::uint8_t>(PEvent::CpuLoad);
    t.next = static_cast<std::uint8_t>(LineState::Shared);
    t.count = 7;
    observed.push_back(t);
    observed.push_back(t); // second run of the same tuple merges

    const CoverageReport r = computeCoverage(spec, observed);
    EXPECT_GT(r.legal, 100u);
    EXPECT_EQ(r.exercised, 1u);
    bool found = false;
    for (const auto &row : r.rows) {
        if (row.ctrl == Ctrl::Cache &&
            row.state == static_cast<StateId>(LineState::Invalid) &&
            row.event == PEvent::CpuLoad &&
            row.next == static_cast<StateId>(LineState::Shared)) {
            found = true;
            EXPECT_EQ(row.count, 14u);
        } else {
            EXPECT_EQ(row.count, 0u);
        }
    }
    EXPECT_TRUE(found);

    const std::string csv = coverageToCsv(spec, r);
    EXPECT_NE(csv.find("cache,I,CpuLoad,S,14"), std::string::npos);
}

TEST(Lint, CsvEscapesAndLists)
{
    TransitionSpec spec = buildProtocolSpec();
    ASSERT_TRUE(spec.removeRule(Ctrl::Producer, prodExcl,
                                PEvent::LocalFlush));
    const std::string csv = lintToCsv(lintSpec(spec));
    EXPECT_NE(csv.find("kind,controller,state,event,detail"),
              std::string::npos);
    EXPECT_NE(csv.find("unhandled,producer,Excl,LocalFlush"),
              std::string::npos);
}

// --- Message-dependency-graph pass ----------------------------------

namespace
{

bool
hasMdgFinding(const MdgReport &r, const std::string &kind)
{
    return std::any_of(r.findings.begin(), r.findings.end(),
                       [&](const LintFinding &f) {
                           return f.kind == kind;
                       });
}

/** Point a rule's allowed-sends set at exactly @p sends (tests seed
 *  defects through findMutable, which bypasses TransitionSpec::add's
 *  sendMask maintenance). */
void
setSends(TransitionRule *rule, std::vector<MsgType> sends)
{
    rule->sends = std::move(sends);
    rule->sendMask = 0;
    for (MsgType t : rule->sends)
        rule->sendMask |= 1ull << static_cast<unsigned>(t);
}

} // namespace

TEST(Mdg, ShippedSpecsAreClean)
{
    for (ProtocolKind kind : registeredPolicyKinds()) {
        const CoherencePolicy &p = policyFor(kind);
        const MdgReport r = analyzeMdg(p.spec());
        for (const auto &f : r.findings) {
            ADD_FAILURE() << p.name() << ": " << f.kind << ": "
                          << f.detail;
        }
        EXPECT_TRUE(r.clean());
        EXPECT_FALSE(r.sinks.empty());
        EXPECT_FALSE(r.edges.empty());
    }

    // The full protocol spec's residual non-sinks are exactly the
    // request vocabulary plus the upgrade-retry ack.
    const MdgReport full = analyzeMdg(protocolSpec());
    EXPECT_EQ(full.messages.size(), 23u);
    EXPECT_EQ(full.sinks.size(), 19u);
    EXPECT_GT(full.nackProtectedEdges, 0u);
}

TEST(Mdg, DetectsChannelCycle)
{
    TransitionSpec spec = buildProtocolSpec();
    // Seed a classic channel-class inversion: the home answers the
    // SHWB response by emitting a fresh intervention, whose handler
    // may emit another SHWB -- consumption of either type now needs
    // channel space for the other.
    TransitionRule *rule = spec.findMutable(
        Ctrl::Dir, static_cast<StateId>(DirState::BusyRead),
        PEvent::SharedWriteback);
    ASSERT_NE(rule, nullptr);
    setSends(rule, {MsgType::IntervDowngrade});

    const MdgReport r = analyzeMdg(spec);
    ASSERT_TRUE(hasMdgFinding(r, "channel-cycle"));
    for (const auto &f : r.findings) {
        if (f.kind != "channel-cycle")
            continue;
        EXPECT_NE(f.detail.find("SharedWriteback"), std::string::npos);
        EXPECT_NE(f.detail.find("IntervDowngrade"), std::string::npos);
    }
}

TEST(Mdg, DetectsUnprotectedForward)
{
    TransitionSpec spec = buildProtocolSpec();
    // Drop the NACK escape from the delegated home's read forward:
    // under pressure the forward has no shed path.
    TransitionRule *rule = spec.findMutable(
        Ctrl::Dir, static_cast<StateId>(DirState::Dele),
        PEvent::ReqShared);
    ASSERT_NE(rule, nullptr);
    setSends(rule, {MsgType::ReqShared, MsgType::HomeHint});

    const MdgReport r = analyzeMdg(spec);
    EXPECT_TRUE(hasMdgFinding(r, "unprotected-forward"));
    // The unprotected self-forward is also a dependency cycle.
    EXPECT_TRUE(hasMdgFinding(r, "channel-cycle"));
}

TEST(Mdg, DetectsChannelCapacity)
{
    TransitionSpec spec = buildProtocolSpec();
    TransitionRule *rule = spec.findMutable(
        Ctrl::Cache, static_cast<StateId>(LineState::Modified),
        PEvent::IntervDowngrade);
    ASSERT_NE(rule, nullptr);
    // Five response-class sends from one handler exceed the reference
    // network's channel depth (mc::chanDepth = 4).
    setSends(rule,
             {MsgType::SharedResp, MsgType::SharedWriteback,
              MsgType::IntervNack, MsgType::RespSharedData,
              MsgType::InvalAck});

    const MdgReport r = analyzeMdg(spec);
    EXPECT_TRUE(hasMdgFinding(r, "channel-capacity"));
}

TEST(Mdg, DetectsUndeliverableSend)
{
    TransitionSpec spec = buildWriteUpdateSpec();
    // Delegate has no delivery rule anywhere in the write-update
    // vocabulary: sending it wedges the channel forever.
    TransitionRule *rule = spec.findMutable(
        Ctrl::Dir, static_cast<StateId>(DirState::BusyUpd),
        PEvent::UpdateWB);
    ASSERT_NE(rule, nullptr);
    setSends(rule, {MsgType::Update, MsgType::Delegate});

    const MdgReport r = analyzeMdg(spec);
    EXPECT_TRUE(hasMdgFinding(r, "undeliverable-send"));
}

// --- Liveness pass --------------------------------------------------

TEST(Liveness, ShippedModelsAreLive)
{
    for (McCheckSet set :
         {McCheckSet::MesiDele, McCheckSet::WriteUpdate,
          McCheckSet::AdaptiveHybrid}) {
        const LivenessReport r = analyzeLiveness(set);
        for (const auto &f : r.findings) {
            ADD_FAILURE() << f.kind << " (" << f.config
                          << "): " << f.detail;
        }
        EXPECT_TRUE(r.clean());
        ASSERT_FALSE(r.configs.empty());
        for (const auto &c : r.configs) {
            EXPECT_TRUE(c.completed) << c.name;
            EXPECT_GT(c.states, 0u) << c.name;
            EXPECT_GT(c.progressEdges, 0u) << c.name;
            EXPECT_GT(c.quiescentStates, 0u) << c.name;
        }
    }
}

TEST(Liveness, DetectsStalledUpdateEpisode)
{
    // Seeded defect (ModelConfig::defectStallUpdateWB): the home
    // consumes the writer's UpdateWB without closing the BUSY_UPD
    // episode, so every later request NACKs forever -- a non-progress
    // retry loop, not a hard deadlock. Checked for both update
    // policies.
    for (bool adaptive : {false, true}) {
        NamedModelConfig c;
        c.name = adaptive ? "adaptive-hybrid" : "write-update";
        c.cfg.nodes = 3;
        c.cfg.maxWrites = 2;
        c.cfg.maxReads = 1;
        c.cfg.writeUpdate = true;
        c.cfg.adaptive = adaptive;
        c.cfg.defectStallUpdateWB = true;

        const LivenessReport r = analyzeLiveness({c});
        ASSERT_EQ(r.findings.size(), 1u) << c.name;
        const LivenessFinding &f = r.findings[0];
        EXPECT_EQ(f.kind, "livelock") << c.name;
        EXPECT_EQ(f.config, c.name);
        EXPECT_NE(f.detail.find("non-progress cycle"),
                  std::string::npos);
        // The lasso witness: a concrete prefix into the bad region, a
        // cycle around it, and the CPU ops that replay the schedule.
        EXPECT_FALSE(f.witness.prefix.empty()) << c.name;
        ASSERT_FALSE(f.witness.cycle.empty()) << c.name;
        EXPECT_FALSE(f.witness.ops.empty()) << c.name;
        // The prefix must drive the defect: the home consuming the
        // writer's UpdateWB is what opens the eternal-NACK episode.
        bool delivers_updatewb = false;
        for (const std::string &hop : f.witness.prefix)
            delivers_updatewb |=
                hop.find("UpdateWB") != std::string::npos;
        EXPECT_TRUE(delivers_updatewb) << c.name;
    }
}

TEST(Liveness, GoldenJsonReport)
{
    // Byte-compare the combined all-policies liveness document
    // against the committed golden -- the same bytes `pcsim lint
    // --liveness --policy=all --json FILE` writes and CI diffs.
    // Regenerate with: build/apps/pcsim lint --liveness
    //   --policy=all --json tests/golden/lint_liveness.json
    JsonValue policies = JsonValue::array();
    for (ProtocolKind kind : registeredPolicyKinds()) {
        const CoherencePolicy &p = policyFor(kind);
        policies.push(livenessPolicyJson(
            p.name(), analyzeLiveness(modelCheckSetFor(kind))));
    }
    const std::string got =
        lintFindingsDocument("liveness", std::move(policies)).dump(2) +
        "\n";
    const std::string want =
        readFile(std::string(PCSIM_SOURCE_DIR) +
                 "/tests/golden/lint_liveness.json");
    ASSERT_FALSE(want.empty()) << "golden file missing";
    EXPECT_EQ(got, want);
}
