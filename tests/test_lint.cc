/** @file Protocol-spec lint tests: the shipped spec must be clean
 *  (golden-file check on the JSON report), and a seeded defect of
 *  each class must be caught by the matching pass. */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/cache/line_state.hh"
#include "src/mem/directory.hh"
#include "src/verify/lint.hh"
#include "src/verify/spec.hh"

using namespace pcsim;
using namespace pcsim::verify;

namespace
{

bool
hasFinding(const LintReport &r, const std::string &kind,
           const std::string &state, const std::string &event)
{
    return std::any_of(r.findings.begin(), r.findings.end(),
                       [&](const LintFinding &f) {
                           return f.kind == kind && f.state == state &&
                                  f.event == event;
                       });
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(Lint, ShippedSpecIsClean)
{
    const LintReport r = lintSpec(protocolSpec());
    for (const auto &f : r.findings) {
        ADD_FAILURE() << f.kind << ": " << f.ctrl << " " << f.state
                      << " x " << f.event << ": " << f.detail;
    }
    EXPECT_TRUE(r.clean());
}

TEST(Lint, ShippedSpecMatchesModel)
{
    const LintReport r = lintSpecWithModel(protocolSpec());
    for (const auto &f : r.findings) {
        ADD_FAILURE() << f.kind << ": " << f.ctrl << " " << f.state
                      << " x " << f.event << ": " << f.detail;
    }
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.mcConfigs, 3u);
    EXPECT_GT(r.mcStates, 100'000u);
    EXPECT_GT(r.mcObserved, 50u);
}

TEST(Lint, GoldenJsonReport)
{
    // The serialized static-lint report is a committed artifact:
    // regenerate tests/golden/lint_clean.json when the spec grows
    // (build/apps/pcsim lint --no-mc --json tests/golden/...).
    const TransitionSpec &spec = protocolSpec();
    const std::string got =
        lintToJson(spec, lintSpec(spec)).dump(2) + "\n";
    const std::string want =
        readFile(std::string(PCSIM_SOURCE_DIR) +
                 "/tests/golden/lint_clean.json");
    ASSERT_FALSE(want.empty()) << "golden file missing";
    EXPECT_EQ(got, want);
}

TEST(Lint, DetectsUnhandledPair)
{
    TransitionSpec spec = buildProtocolSpec();
    ASSERT_TRUE(spec.removeRule(Ctrl::Producer, prodExcl,
                                PEvent::LocalFlush));
    const LintReport r = lintSpec(spec);
    EXPECT_EQ(r.findings.size(), 1u);
    EXPECT_TRUE(hasFinding(r, "unhandled", "Excl", "LocalFlush"));
}

TEST(Lint, DetectsDuplicateRules)
{
    TransitionSpec spec = buildProtocolSpec();
    TransitionRule dup;
    dup.ctrl = Ctrl::Cache;
    dup.state = static_cast<StateId>(LineState::Invalid);
    dup.event = PEvent::CpuLoad;
    dup.next = {static_cast<StateId>(LineState::Invalid)};
    spec.add(dup);
    const LintReport r = lintSpec(spec);
    EXPECT_EQ(r.findings.size(), 1u);
    EXPECT_TRUE(hasFinding(r, "ambiguous", "I", "CpuLoad"));
}

TEST(Lint, DetectsRuleImpossibleConflict)
{
    TransitionSpec spec = buildProtocolSpec();
    spec.declareImpossible(Ctrl::Cache,
                           static_cast<StateId>(LineState::Invalid),
                           PEvent::CpuLoad, "seeded conflict");
    const LintReport r = lintSpec(spec);
    EXPECT_EQ(r.findings.size(), 1u);
    EXPECT_TRUE(hasFinding(r, "ambiguous", "I", "CpuLoad"));
}

TEST(Lint, DetectsUnreachableState)
{
    TransitionSpec spec = buildProtocolSpec();
    // LineState::Exclusive exists in the enum but the protocol never
    // grants it; declaring it without any inbound rule must flag it.
    spec.declareState(Ctrl::Cache,
                      static_cast<StateId>(LineState::Exclusive),
                      "E");
    const LintReport r = lintSpec(spec);
    EXPECT_TRUE(hasFinding(r, "unreachable", "E", ""));
    // The freshly declared state also lacks rules for every relevant
    // event; each of those is an unhandled finding.
    EXPECT_TRUE(hasFinding(r, "unhandled", "E", "CpuLoad"));
}

TEST(Lint, DetectsModelMismatch)
{
    TransitionSpec spec = buildProtocolSpec();
    // Break the directory's ReqShared rule: pretend Unowned can only
    // stay Unowned. The model takes Unowned -> Shared on the first
    // read, which the cross-check must flag.
    TransitionRule *rule =
        spec.findMutable(Ctrl::Dir,
                         static_cast<StateId>(DirState::Unowned),
                         PEvent::ReqShared);
    ASSERT_NE(rule, nullptr);
    rule->next = {static_cast<StateId>(DirState::Unowned)};
    ASSERT_TRUE(lintSpec(spec).clean()) << "defect must be mc-only";
    const LintReport r = lintSpecWithModel(spec);
    EXPECT_TRUE(hasFinding(r, "mc-mismatch", "Unowned", "ReqShared"));
}

TEST(Lint, CoverageFoldsObservedCounts)
{
    const TransitionSpec &spec = protocolSpec();
    std::vector<TransitionCount> observed;
    TransitionCount t;
    t.ctrl = static_cast<std::uint8_t>(Ctrl::Cache);
    t.state = static_cast<std::uint8_t>(LineState::Invalid);
    t.event = static_cast<std::uint8_t>(PEvent::CpuLoad);
    t.next = static_cast<std::uint8_t>(LineState::Shared);
    t.count = 7;
    observed.push_back(t);
    observed.push_back(t); // second run of the same tuple merges

    const CoverageReport r = computeCoverage(spec, observed);
    EXPECT_GT(r.legal, 100u);
    EXPECT_EQ(r.exercised, 1u);
    bool found = false;
    for (const auto &row : r.rows) {
        if (row.ctrl == Ctrl::Cache &&
            row.state == static_cast<StateId>(LineState::Invalid) &&
            row.event == PEvent::CpuLoad &&
            row.next == static_cast<StateId>(LineState::Shared)) {
            found = true;
            EXPECT_EQ(row.count, 14u);
        } else {
            EXPECT_EQ(row.count, 0u);
        }
    }
    EXPECT_TRUE(found);

    const std::string csv = coverageToCsv(spec, r);
    EXPECT_NE(csv.find("cache,I,CpuLoad,S,14"), std::string::npos);
}

TEST(Lint, CsvEscapesAndLists)
{
    TransitionSpec spec = buildProtocolSpec();
    ASSERT_TRUE(spec.removeRule(Ctrl::Producer, prodExcl,
                                PEvent::LocalFlush));
    const std::string csv = lintToCsv(lintSpec(spec));
    EXPECT_NE(csv.find("kind,controller,state,event,detail"),
              std::string::npos);
    EXPECT_NE(csv.find("unhandled,producer,Excl,LocalFlush"),
              std::string::npos);
}
