/** @file Statistics primitives tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/stats.hh"

using namespace pcsim;

TEST(Counter, IncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2);
    a.sample(4);
    a.sample(9);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Histogram, BucketsAndFractions)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(2);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
}

TEST(Histogram, OverflowLandsInLastBucket)
{
    Histogram h(4);
    h.sample(100);
    h.sample(3);
    EXPECT_EQ(h.bucket(3), 2u);
}

TEST(Histogram, Reset)
{
    Histogram h(4);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(StatGroup, CreatesOnFirstUse)
{
    StatGroup g;
    g.counter("a").inc(3);
    EXPECT_EQ(g.counterValue("a"), 3u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
    EXPECT_EQ(g.findCounter("missing"), nullptr);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g;
    g.counter("x").inc(1);
    g.counter("y").inc(2);
    std::ostringstream os;
    g.dump(os, "node0");
    EXPECT_EQ(os.str(), "node0.x 1\nnode0.y 2\n");
}

TEST(StatGroup, Reset)
{
    StatGroup g;
    g.counter("x").inc(5);
    g.reset();
    EXPECT_EQ(g.counterValue("x"), 0u);
}
