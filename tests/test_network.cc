/** @file Topology and interconnect tests. */

#include <gtest/gtest.h>

#include <vector>

#include "src/net/network.hh"
#include "src/net/topology.hh"
#include "src/sim/event_queue.hh"

using namespace pcsim;

TEST(Topology, SixteenNodesRadix8)
{
    FatTreeTopology t(16, 8);
    EXPECT_EQ(t.depth(), 2u);
    EXPECT_EQ(t.hops(3, 3), 0u);
    EXPECT_EQ(t.hops(0, 7), 1u);  // same leaf router
    EXPECT_EQ(t.hops(0, 8), 2u);  // across the root
    EXPECT_EQ(t.hops(15, 9), 1u);
    EXPECT_EQ(t.hops(7, 8), 2u);
}

TEST(Topology, SymmetricHops)
{
    FatTreeTopology t(16, 8);
    for (NodeId a = 0; a < 16; ++a)
        for (NodeId b = 0; b < 16; ++b)
            EXPECT_EQ(t.hops(a, b), t.hops(b, a));
}

TEST(Topology, LargerSystems)
{
    FatTreeTopology t64(64, 8);
    EXPECT_EQ(t64.depth(), 2u);
    EXPECT_EQ(t64.hops(0, 63), 2u);
    FatTreeTopology t512(512, 8);
    EXPECT_EQ(t512.depth(), 3u);
    EXPECT_EQ(t512.hops(0, 511), 3u);
    EXPECT_EQ(t512.hops(0, 63), 2u);
    EXPECT_EQ(t512.hops(0, 7), 1u);
}

TEST(Message, SizesFollowPayload)
{
    Message m;
    m.type = MsgType::ReqShared;
    EXPECT_EQ(m.sizeBytes(), 32u); // header only
    m.type = MsgType::RespSharedData;
    EXPECT_EQ(m.sizeBytes(), 32u + 128u);
    m.type = MsgType::Update;
    EXPECT_EQ(m.sizeBytes(), 160u);
    m.type = MsgType::InvalAck;
    EXPECT_EQ(m.sizeBytes(), 32u);
}

namespace
{

/** Records deliveries with their ticks. */
struct Sink : MessageHandler
{
    struct Delivery
    {
        Message msg;
        Tick when;
    };
    EventQueue *eq = nullptr;
    std::vector<Delivery> got;

    void
    handleMessage(const Message &msg) override
    {
        got.push_back({msg, eq->curTick()});
    }
};

struct NetFixture : ::testing::Test
{
    EventQueue eq;
    NetworkConfig cfg;
    Network net{eq, 16, cfg};
    Sink sinks[16];

    void
    SetUp() override
    {
        for (int i = 0; i < 16; ++i) {
            sinks[i].eq = &eq;
            net.registerHandler(i, &sinks[i]);
        }
    }

    Message
    msg(NodeId src, NodeId dst, MsgType t = MsgType::ReqShared)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.addr = 0x1000;
        return m;
    }
};

} // namespace

TEST_F(NetFixture, DeliveryLatencyMatchesHops)
{
    // 1 hop (same leaf): occupancy(8B/cycle? cfg: 32B/4Bpc = 8) +
    // 100 + occupancy.
    net.send(msg(0, 1));
    eq.run();
    ASSERT_EQ(sinks[1].got.size(), 1u);
    EXPECT_EQ(sinks[1].got[0].when, 8u + 100 + 8);

    // 2 hops (across leaves), issued at tick 116 after the drain.
    net.send(msg(0, 8));
    eq.run();
    ASSERT_EQ(sinks[8].got.size(), 1u);
    EXPECT_EQ(sinks[8].got[0].when,
              sinks[1].got[0].when + 8 + 2 * 100 + 8);
}

TEST_F(NetFixture, DataMessagesTakeLongerToSerialize)
{
    net.send(msg(0, 1, MsgType::RespSharedData)); // 160 B -> 40 cycles
    eq.run();
    EXPECT_EQ(sinks[1].got[0].when, 40u + 100 + 40);
}

TEST_F(NetFixture, LocalMessagesBypassTheWires)
{
    net.send(msg(3, 3));
    eq.run();
    ASSERT_EQ(sinks[3].got.size(), 1u);
    EXPECT_EQ(sinks[3].got[0].when, cfg.localLatency);
    EXPECT_EQ(net.numMessages(), 0u);
    EXPECT_EQ(net.numLocalMessages(), 1u);
}

TEST_F(NetFixture, EgressPortSerializesInjection)
{
    // Two back-to-back sends from node 0 to different destinations:
    // the second is delayed by the first's occupancy.
    net.send(msg(0, 1));
    net.send(msg(0, 2));
    eq.run();
    EXPECT_EQ(sinks[1].got[0].when, 116u);
    EXPECT_EQ(sinks[2].got[0].when, 124u);
}

TEST_F(NetFixture, IngressPortSerializesEjection)
{
    net.send(msg(1, 0));
    net.send(msg(2, 0));
    eq.run();
    ASSERT_EQ(sinks[0].got.size(), 2u);
    EXPECT_EQ(sinks[0].got[1].when - sinks[0].got[0].when, 8u);
}

TEST_F(NetFixture, PointToPointOrderingHolds)
{
    // The protocol's writeback-race resolution depends on per-pair
    // FIFO delivery; hammer one pair with mixed sizes and check.
    for (int i = 0; i < 50; ++i) {
        Message m = msg(4, 9, (i % 3 == 0) ? MsgType::RespSharedData
                                           : MsgType::ReqShared);
        m.version = i;
        net.send(m);
    }
    eq.run();
    ASSERT_EQ(sinks[9].got.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(sinks[9].got[i].msg.version,
                  static_cast<Version>(i));
}

TEST_F(NetFixture, StatsTrackMessagesAndBytes)
{
    net.send(msg(0, 1));
    net.send(msg(0, 2, MsgType::Update));
    eq.run();
    EXPECT_EQ(net.numMessages(), 2u);
    EXPECT_EQ(net.numBytes(), 32u + 160u);
    EXPECT_EQ(net.numByType(MsgType::Update), 1u);
    EXPECT_EQ(net.numByType(MsgType::ReqShared), 1u);
    net.resetStats();
    EXPECT_EQ(net.numMessages(), 0u);
    EXPECT_EQ(net.numBytes(), 0u);
}

TEST_F(NetFixture, HopHistogram)
{
    net.send(msg(0, 1));  // 1 hop
    net.send(msg(0, 8));  // 2 hops
    net.send(msg(0, 9));  // 2 hops
    eq.run();
    EXPECT_EQ(net.hopHistogram().bucket(1), 1u);
    EXPECT_EQ(net.hopHistogram().bucket(2), 2u);
}

TEST(NetworkConfigTest, HopLatencyScalesDelivery)
{
    for (Tick hop : {50u, 100u, 200u, 400u}) {
        EventQueue eq;
        NetworkConfig cfg;
        cfg.hopLatency = hop;
        Network net(eq, 16, cfg);
        Sink s;
        s.eq = &eq;
        Sink dummy;
        dummy.eq = &eq;
        net.registerHandler(0, &dummy);
        net.registerHandler(8, &s);
        Message m;
        m.type = MsgType::ReqShared;
        m.src = 0;
        m.dst = 8;
        net.send(m);
        eq.run();
        ASSERT_EQ(s.got.size(), 1u);
        EXPECT_EQ(s.got[0].when, 8 + 2 * hop + 8);
    }
}
