/** @file Serving workload family tests: deterministic generation,
 *  balanced barrier arrivals at any machine size, the sharing
 *  structure each scenario promises, and end-to-end runs (with the
 *  coherence checker) showing the adaptive protocol engaging on the
 *  producer-consumer shaped members. */

#include <gtest/gtest.h>

#include "src/runner/serve.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/serving.hh"

using namespace pcsim;

namespace
{

unsigned
barrierCount(const std::vector<MemOp> &stream)
{
    unsigned n = 0;
    for (const auto &op : stream)
        n += op.kind == MemOp::Kind::Barrier ? 1 : 0;
    return n;
}

/** Drain a TraceWorkload into per-cpu vectors via the public API. */
std::vector<std::vector<MemOp>>
drain(Workload &wl)
{
    std::vector<std::vector<MemOp>> out(wl.numCpus());
    for (unsigned cpu = 0; cpu < wl.numCpus(); ++cpu) {
        MemOp op;
        while (wl.next(cpu, op))
            out[cpu].push_back(op);
    }
    wl.reset();
    return out;
}

void
expectBalancedBarriers(Workload &wl)
{
    const auto streams = drain(wl);
    const unsigned expected = barrierCount(streams[0]);
    EXPECT_GT(expected, 0u);
    for (unsigned cpu = 1; cpu < streams.size(); ++cpu)
        EXPECT_EQ(barrierCount(streams[cpu]), expected)
            << wl.name() << " cpu " << cpu;
}

} // namespace

TEST(Serving, GenerationIsDeterministic)
{
    for (const auto &name : servingNames()) {
        auto make = [&](unsigned n) -> std::unique_ptr<Workload> {
            if (name == "KVServe")
                return std::make_unique<KvServingWorkload>(n);
            if (name == "WorkQueue")
                return std::make_unique<WorkQueueWorkload>(n);
            if (name == "RCU")
                return std::make_unique<RcuWorkload>(n);
            return std::make_unique<PubSubWorkload>(n);
        };
        auto a = make(16);
        auto b = make(16);
        const auto sa = drain(*a);
        const auto sb = drain(*b);
        ASSERT_EQ(sa.size(), sb.size()) << name;
        for (unsigned cpu = 0; cpu < sa.size(); ++cpu) {
            ASSERT_EQ(sa[cpu].size(), sb[cpu].size())
                << name << " cpu " << cpu;
            for (std::size_t i = 0; i < sa[cpu].size(); ++i) {
                EXPECT_EQ(sa[cpu][i].kind, sb[cpu][i].kind);
                EXPECT_EQ(sa[cpu][i].addr, sb[cpu][i].addr);
            }
        }
    }
}

TEST(Serving, BarriersBalancedAtOddAndLargeSizes)
{
    // Deadlock-freedom precondition: every node must arrive at every
    // barrier, whatever the machine size.
    for (unsigned n : {2u, 5u, 16u, 33u, 1024u}) {
        KvServingWorkload kv(n);
        WorkQueueWorkload wq(n);
        RcuWorkload rcu(n);
        PubSubWorkload ps(n);
        expectBalancedBarriers(kv);
        expectBalancedBarriers(wq);
        expectBalancedBarriers(rcu);
        expectBalancedBarriers(ps);
    }
}

TEST(Serving, KvZipfSkewsTowardHotKeys)
{
    KvServingWorkload::Params p;
    p.keyLines = 64;
    p.requestsPerNode = 2000;
    KvServingWorkload wl(4, p);
    const auto streams = drain(wl);

    // Count accesses to the hottest key line vs an arbitrary tail key.
    const Addr hot = wl.keyLine(0);
    const Addr cold = wl.keyLine(p.keyLines - 1);
    std::size_t hotN = 0, coldN = 0, init = 0;
    for (const auto &s : streams) {
        bool parallel = false;
        for (const auto &op : s) {
            if (op.kind == MemOp::Kind::Barrier) {
                parallel = true;
                continue;
            }
            if (!parallel) {
                ++init;
                continue;
            }
            hotN += op.addr == hot ? 1 : 0;
            coldN += op.addr == cold ? 1 : 0;
        }
    }
    EXPECT_EQ(init, p.keyLines); // striped first-touch, each key once
    // Zipf(0.99) over 64 ranks: rank 0 draws >10x rank 63.
    EXPECT_GT(hotN, coldN * 10);
}

TEST(Serving, WorkQueueProducerSplit)
{
    EXPECT_EQ(WorkQueueWorkload(16).numProducers(), 4u);
    EXPECT_EQ(WorkQueueWorkload(2).numProducers(), 1u);
    // Degenerate single-node machine still constructs and balances.
    WorkQueueWorkload solo(1);
    EXPECT_EQ(solo.numProducers(), 1u);
    expectBalancedBarriers(solo);
}

TEST(Serving, AdaptiveProtocolEngagesOnProducerConsumerMembers)
{
    // WorkQueue, RCU and PubSub have stable producer->consumer line
    // ownership, so delegation + speculative updates must both beat
    // base and actually deliver consumed updates. (KVServe's Zipf
    // readers touch keys from random nodes, so the conservative
    // detector rightly stays out -- not asserted here.)
    for (const auto &name :
         {std::string("WorkQueue"), std::string("RCU"),
          std::string("PubSub")}) {
        auto make = [&](unsigned n) -> std::unique_ptr<Workload> {
            if (name == "WorkQueue")
                return std::make_unique<WorkQueueWorkload>(n);
            if (name == "RCU")
                return std::make_unique<RcuWorkload>(n);
            return std::make_unique<PubSubWorkload>(n);
        };
        MachineConfig baseCfg = presets::base(16);
        MachineConfig optCfg = presets::small(16);
        baseCfg.proto.checkerEnabled = true;
        optCfg.proto.checkerEnabled = true;
        auto wb = make(16);
        auto wo = make(16);
        RunResult b = runWorkload(baseCfg, *wb, "base");
        RunResult o = runWorkload(optCfg, *wo, "small");
        EXPECT_LT(o.cycles, b.cycles) << name;
        EXPECT_GT(o.nodes.updatesConsumed, 0u) << name;
    }
}

TEST(Serving, ServeJobsBuildsFullMatrix)
{
    runner::ServeOptions opt;
    const runner::JobSet set = runner::serveJobs(opt);
    // 4 scenarios x 2 node counts x 3 mechanisms.
    EXPECT_EQ(set.size(), 24u);
    EXPECT_EQ(set.jobs()[0].label, "KVServe/n16/base");

    runner::ServeOptions bad;
    bad.scenarios = {"NotAScenario"};
    EXPECT_TRUE(runner::serveJobs(bad).empty());

    runner::ServeOptions big;
    big.scenarios = {"kvserve"}; // case-insensitive
    big.nodes = {1024};
    const runner::JobSet bigSet = runner::serveJobs(big);
    EXPECT_EQ(bigSet.size(), 3u);
    EXPECT_EQ(bigSet.jobs()[0].workload, "KVServe");
}
