/** @file Tests of the coherence/SC checker itself: it must detect
 *  each class of violation (death tests) and accept legal histories. */

#include <gtest/gtest.h>

#include "src/protocol/checker.hh"

using namespace pcsim;

namespace
{

/** A hand-controlled node view for feeding the checker lies. */
struct FakeNode : CheckerNodeView
{
    LineState state = LineState::Invalid;
    Version version = 0;
    bool hasRac = false;
    Version racVersion = 0;
    bool racPinned = false;
    DirEntry dir;

    LineState
    l2State(Addr, Version &v) const override
    {
        v = version;
        return state;
    }
    bool
    racCopy(Addr, Version &v, bool &pinned) const override
    {
        v = racVersion;
        pinned = racPinned;
        return hasRac;
    }
    const ProducerEntry *producerEntry(Addr) const override
    {
        return nullptr;
    }
    DirEntry homeDirEntry(Addr) const override { return dir; }
};

} // namespace

TEST(VersionAuthority, BumpAndCurrent)
{
    VersionAuthority a;
    EXPECT_EQ(a.current(0x100), 0u);
    EXPECT_EQ(a.bump(0x100), 1u);
    EXPECT_EQ(a.bump(0x100), 2u);
    EXPECT_EQ(a.current(0x100), 2u);
    EXPECT_EQ(a.current(0x200), 0u);
    EXPECT_EQ(a.numLines(), 1u);
}

TEST(Checker, LegalHistoryAccepted)
{
    CoherenceChecker c(true);
    FakeNode n0, n1;
    c.addNode(&n0);
    c.addNode(&n1);

    EXPECT_EQ(c.storePerformed(0, 0x100, 0), 1u);
    c.loadPerformed(0, 0x100, 1);
    c.loadPerformed(1, 0x100, 1);
    EXPECT_EQ(c.storePerformed(1, 0x100, 1), 2u);
    EXPECT_GT(c.numChecks(), 0u);
}

TEST(CheckerDeath, LostUpdateDetected)
{
    CoherenceChecker c(true);
    FakeNode n0;
    c.addNode(&n0);
    c.storePerformed(0, 0x100, 0);
    // Writing again from the stale version 0 loses version 1.
    EXPECT_DEATH(c.storePerformed(0, 0x100, 0), "lost update");
}

TEST(CheckerDeath, SingleWriterViolationDetected)
{
    CoherenceChecker c(true);
    FakeNode n0, n1;
    c.addNode(&n0);
    c.addNode(&n1);
    n1.state = LineState::Shared; // node 1 still holds a copy
    n1.version = 0;
    EXPECT_DEATH(c.storePerformed(0, 0x100, 0), "single-writer");
}

TEST(CheckerDeath, RacCopyAlsoViolatesSingleWriter)
{
    CoherenceChecker c(true);
    FakeNode n0, n1;
    c.addNode(&n0);
    c.addNode(&n1);
    n1.hasRac = true;
    EXPECT_DEATH(c.storePerformed(0, 0x100, 0), "RAC");
}

TEST(CheckerDeath, FutureReadDetected)
{
    CoherenceChecker c(true);
    FakeNode n0;
    c.addNode(&n0);
    EXPECT_DEATH(c.loadPerformed(0, 0x100, 5), "future");
}

TEST(CheckerDeath, NonMonotonicReadDetected)
{
    CoherenceChecker c(true);
    FakeNode n0;
    c.addNode(&n0);
    c.storePerformed(0, 0x100, 0);
    c.storePerformed(0, 0x100, 1);
    c.loadPerformed(0, 0x100, 2);
    EXPECT_DEATH(c.loadPerformed(0, 0x100, 1), "non-monotonic");
}

TEST(CheckerDeath, QuiescentStaleSharerDetected)
{
    CoherenceChecker c(true);
    FakeNode n0;
    c.addNode(&n0);
    c.storePerformed(0, 0x100, 0); // current = 1
    n0.state = LineState::Shared;
    n0.version = 0; // stale copy
    n0.dir.state = DirState::Shared;
    n0.dir.addSharer(0);
    n0.dir.memVersion = 1;
    EXPECT_DEATH(
        c.checkQuiescent([](Addr) { return NodeId(0); }),
        "version");
}

TEST(CheckerDeath, QuiescentDirectoryMismatchDetected)
{
    CoherenceChecker c(true);
    FakeNode n0, n1;
    c.addNode(&n0);
    c.addNode(&n1);
    c.storePerformed(1, 0x100, 0);
    n1.state = LineState::Modified;
    n1.version = 1;
    // Home claims Unowned while node 1 owns the line.
    n0.dir.state = DirState::Unowned;
    n0.dir.memVersion = 1;
    EXPECT_DEATH(
        c.checkQuiescent([](Addr) { return NodeId(0); }),
        "Unowned");
}

TEST(Checker, DisabledCheckerIsPassive)
{
    CoherenceChecker c(false);
    FakeNode n0, n1;
    c.addNode(&n0);
    c.addNode(&n1);
    n1.state = LineState::Modified; // would violate if enabled
    EXPECT_EQ(c.storePerformed(0, 0x100, 0), 1u); // bumps only
    c.loadPerformed(0, 0x100, 99);                // ignored
    EXPECT_EQ(c.numChecks(), 0u);
}

TEST(Checker, QuiescentAcceptsShadowedPinnedRac)
{
    // A producer's pinned RAC copy one epoch behind its own M copy is
    // legal (it is refreshed at the next downgrade).
    CoherenceChecker c(true);
    FakeNode n0;
    c.addNode(&n0);
    c.storePerformed(0, 0x100, 0);
    c.storePerformed(0, 0x100, 1); // current = 2
    n0.state = LineState::Modified;
    n0.version = 2;
    n0.hasRac = true;
    n0.racPinned = true;
    n0.racVersion = 1; // shadowed, stale: allowed
    n0.dir.state = DirState::Excl;
    n0.dir.owner = 0;
    c.checkQuiescent([](Addr) { return NodeId(0); });
}
