/** @file Trace subsystem tests: PCTR binary round-trips, malformed
 *  input rejection with precise errors, recorder transparency,
 *  record-then-replay byte-identical statistics, and the external
 *  text-trace ingester against committed golden files. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/runner/results.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/trace/format.hh"
#include "src/trace/recorder.hh"
#include "src/trace/replay.hh"
#include "src/trace/text_ingest.hh"
#include "src/workload/micro.hh"
#include "src/workload/serving.hh"

using namespace pcsim;

namespace
{

trace::TraceMeta
sampleMeta()
{
    trace::TraceMeta meta;
    meta.nodeCount = 3;
    meta.lineBytes = 128;
    meta.coarse = 2;
    meta.seed = 42;
    meta.scale = 0.5;
    meta.workload = "PCmicro";
    meta.config = "small";
    return meta;
}

std::vector<std::vector<MemOp>>
sampleStreams()
{
    std::vector<std::vector<MemOp>> per(3);
    per[0] = {MemOp::write(0x1000), MemOp::barrier(),
              MemOp::read(0x1080)};
    per[1] = {MemOp::barrier(), MemOp::think(7)};
    per[2] = {MemOp::barrier()};
    return per;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    char buf[4096];
    std::size_t n;
    while (f && (n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    if (f)
        std::fclose(f);
    return out;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

/** Expect decodeTrace to throw a TraceError whose message contains
 *  @p needle. */
void
expectDecodeError(const std::string &bytes, const std::string &needle)
{
    try {
        trace::decodeTrace(bytes, "<memory>");
        FAIL() << "decode accepted malformed input (wanted error "
                  "containing '"
               << needle << "')";
    } catch (const trace::TraceError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "error was: " << e.what();
    }
}

} // namespace

TEST(TraceFormat, RoundTripPreservesEverything)
{
    const trace::TraceMeta meta = sampleMeta();
    const auto streams = sampleStreams();
    const std::string bytes = trace::encodeTrace(meta, streams);
    const trace::TraceData back = trace::decodeTrace(bytes, "<memory>");

    EXPECT_EQ(back.meta.nodeCount, meta.nodeCount);
    EXPECT_EQ(back.meta.lineBytes, meta.lineBytes);
    EXPECT_EQ(back.meta.coarse, meta.coarse);
    EXPECT_EQ(back.meta.seed, meta.seed);
    EXPECT_EQ(back.meta.scale, meta.scale);
    EXPECT_EQ(back.meta.workload, meta.workload);
    EXPECT_EQ(back.meta.config, meta.config);
    EXPECT_EQ(back.meta.opCount, 6u);
    ASSERT_EQ(back.perNode.size(), streams.size());
    for (std::size_t n = 0; n < streams.size(); ++n) {
        ASSERT_EQ(back.perNode[n].size(), streams[n].size()) << n;
        for (std::size_t i = 0; i < streams[n].size(); ++i) {
            EXPECT_EQ(back.perNode[n][i].kind, streams[n][i].kind);
            EXPECT_EQ(back.perNode[n][i].addr, streams[n][i].addr);
            EXPECT_EQ(back.perNode[n][i].cycles, streams[n][i].cycles);
        }
    }
}

TEST(TraceFormat, EncodingIsDeterministic)
{
    const std::string a =
        trace::encodeTrace(sampleMeta(), sampleStreams());
    const std::string b =
        trace::encodeTrace(sampleMeta(), sampleStreams());
    EXPECT_EQ(a, b);
}

TEST(TraceFormat, RejectsBadMagic)
{
    std::string bytes = trace::encodeTrace(sampleMeta(), sampleStreams());
    bytes[0] = 'X';
    expectDecodeError(bytes, "bad magic");
}

TEST(TraceFormat, RejectsUnsupportedVersion)
{
    std::string bytes = trace::encodeTrace(sampleMeta(), sampleStreams());
    bytes[4] = 99; // u32 version little-endian low byte
    expectDecodeError(bytes, "version");
}

TEST(TraceFormat, RejectsTruncatedHeaderAndRecords)
{
    const std::string bytes =
        trace::encodeTrace(sampleMeta(), sampleStreams());
    // Mid-header cut.
    expectDecodeError(bytes.substr(0, 10), "truncated");
    // Mid-record cut: the byte count no longer matches the promised
    // record count.
    expectDecodeError(bytes.substr(0, bytes.size() - 5), "promises");
}

TEST(TraceFormat, RejectsOutOfRangeNodeAndBrokenSeq)
{
    const trace::TraceMeta meta = sampleMeta();
    const auto streams = sampleStreams();
    const std::string good = trace::encodeTrace(meta, streams);
    const std::size_t firstRecord =
        good.size() - 6 * trace::traceRecordBytes;

    // Node id beyond nodeCount (record u16 at offset 0).
    std::string bad = good;
    bad[firstRecord] = 17;
    expectDecodeError(bad, "node");

    // Per-node seq gap (record u32 seq at offset 4).
    bad = good;
    bad[firstRecord + 4] = 5;
    expectDecodeError(bad, "seq");

    // Nonzero reserved byte.
    bad = good;
    bad[firstRecord + 3] = 1;
    expectDecodeError(bad, "reserved");
}

TEST(TraceFormat, FileRoundTripAndHeaderOnlyRead)
{
    const std::string path =
        testing::TempDir() + "pcsim_trace_roundtrip.pctr";
    trace::writeTraceFile(path, sampleMeta(), sampleStreams());
    const trace::TraceData back = trace::readTraceFile(path);
    EXPECT_EQ(back.meta.opCount, 6u);

    const trace::TraceMeta meta = trace::readTraceMeta(path);
    EXPECT_EQ(meta.workload, "PCmicro");
    EXPECT_EQ(meta.opCount, 6u);
    std::remove(path.c_str());
}

TEST(TraceRecorder, CaptureMatchesGeneratorStreams)
{
    ProducerConsumerMicro source(16);
    ProducerConsumerMicro reference(16);
    trace::TraceRecorder recorder(16);
    trace::RecordingWorkload recording(source, recorder);

    RunResult plain =
        runWorkload(presets::small(16), reference, "small");
    RunResult recorded =
        runWorkload(presets::small(16), recording, "small");

    // Transparency: recorded run's stats are byte-identical.
    EXPECT_EQ(runner::toJson(plain).dump(),
              runner::toJson(recorded).dump());

    // Completeness: the capture is exactly the generator's streams.
    reference.reset();
    for (unsigned cpu = 0; cpu < 16; ++cpu) {
        const auto &got = recorder.perNode()[cpu];
        std::size_t i = 0;
        MemOp op;
        while (reference.next(cpu, op)) {
            ASSERT_LT(i, got.size()) << "cpu " << cpu;
            EXPECT_EQ(got[i].kind, op.kind);
            EXPECT_EQ(got[i].addr, op.addr);
            EXPECT_EQ(got[i].cycles, op.cycles);
            ++i;
        }
        EXPECT_EQ(i, got.size()) << "cpu " << cpu;
    }
}

TEST(TraceReplay, ReproducesRecordedStatsByteForByte)
{
    // Record a KVServe run (Zipf + per-node RNG: a stream the replay
    // could never regenerate by accident).
    KvServingWorkload source(16);
    trace::TraceRecorder recorder(16);
    trace::RecordingWorkload recording(source, recorder);
    RunResult recorded =
        runWorkload(presets::small(16), recording, "small");

    trace::TraceMeta meta;
    meta.nodeCount = 16;
    meta.seed = 1;
    meta.workload = "KVServe";
    meta.config = "small";
    const std::string path =
        testing::TempDir() + "pcsim_trace_replay.pctr";
    recorder.writeFile(path, meta);

    auto replay = trace::loadReplayWorkload(path);
    EXPECT_EQ(replay->name(), "KVServe");
    RunResult replayed = runWorkload(presets::small(16), *replay, "small");
    EXPECT_EQ(runner::toJson(recorded).dump(),
              runner::toJson(replayed).dump());

    // A second replay from the same workload object (reset path).
    RunResult again = runWorkload(presets::small(16), *replay, "small");
    EXPECT_EQ(runner::toJson(recorded).dump(),
              runner::toJson(again).dump());
    std::remove(path.c_str());
}

TEST(TextIngest, ParsesLabelsAndSkipsCommentsBlanks)
{
    const std::string text = "# per-core trace\n"
                             "0 0x1000\n"
                             "\n"
                             "1 20AB\n"
                             "2 64\n";
    const auto ops = trace::parseTextTrace(text, "<memory>");
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].kind, MemOp::Kind::Read);
    EXPECT_EQ(ops[0].addr, 0x1000u);
    EXPECT_EQ(ops[1].kind, MemOp::Kind::Write);
    EXPECT_EQ(ops[1].addr, 0x20ABu);
    EXPECT_EQ(ops[2].kind, MemOp::Kind::Think);
    EXPECT_EQ(ops[2].cycles, 0x64u);
}

TEST(TextIngest, ErrorsNameFileAndLine)
{
    const auto expectError = [](const std::string &text,
                                const std::string &needle) {
        try {
            trace::parseTextTrace(text, "core0.data");
            FAIL() << "accepted '" << text << "'";
        } catch (const trace::TraceError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "error was: " << e.what();
        }
    };
    expectError("0 1000\n3 2000\n", "core0.data:2: unknown label '3'");
    expectError("0\n", "core0.data:1: expected '<label> <value>'");
    expectError("0 xyz\n", "core0.data:1: bad hex value");
    expectError("2 1ffffffff\n", "exceed 32 bits");
    expectError("1 10000000000000000\n", "overflows 64 bits");
}

TEST(TextIngest, GoldenFilesIngestAndRun)
{
    const std::string dir =
        std::string(PCSIM_SOURCE_DIR) + "/tests/golden/";
    // A 16-node machine: two real per-core files, the rest empty
    // streams via /dev/null-equivalent is not portable, so the
    // committed pair drives a 2-node ingest instead.
    const trace::TraceData data = trace::ingestTextTraces(
        {dir + "ingest_core0.data", dir + "ingest_core1.data"},
        "ingest", 128);
    EXPECT_EQ(data.meta.nodeCount, 2u);
    EXPECT_EQ(data.meta.workload, "ingest");
    ASSERT_EQ(data.perNode.size(), 2u);
    // Every stream leads with the init-ending barrier.
    for (const auto &stream : data.perNode) {
        ASSERT_FALSE(stream.empty());
        EXPECT_EQ(stream[0].kind, MemOp::Kind::Barrier);
    }

    // The ingested trace drives a full simulation.
    trace::TraceReplayWorkload wl{trace::TraceData(data)};
    MachineConfig cfg = presets::base(2);
    cfg.proto.checkerEnabled = true;
    RunResult r = runWorkload(cfg, wl, "base");
    EXPECT_GT(r.nodes.reads + r.nodes.writes, 0u);
}

TEST(TraceGolden, CommittedBinaryTraceDecodesAndReencodesIdentically)
{
    const std::string path = std::string(PCSIM_SOURCE_DIR) +
                             "/tests/golden/pcmicro_small.pctr";
    const std::string bytes = readFile(path);
    ASSERT_FALSE(bytes.empty()) << path;
    const trace::TraceData data = trace::decodeTrace(bytes, path);
    EXPECT_EQ(data.meta.workload, "PCmicro");
    EXPECT_EQ(data.meta.config, "small");
    EXPECT_EQ(data.meta.nodeCount, 16u);

    // Writer stability: re-encoding the decoded trace reproduces the
    // committed bytes exactly.
    EXPECT_EQ(trace::encodeTrace(data.meta, data.perNode), bytes);

    // Freshly recording the same run reproduces the file too: the
    // committed trace pins generator + recorder + writer behavior.
    ProducerConsumerMicro source(16, ProducerConsumerMicro::Params{});
    trace::TraceRecorder recorder(16);
    trace::RecordingWorkload recording(source, recorder);
    runWorkload(presets::small(16), recording, "small");
    EXPECT_EQ(trace::encodeTrace(data.meta, recorder.perNode()), bytes);
}

TEST(TraceGolden, TruncatedFileIsRejectedWithPath)
{
    const std::string src = std::string(PCSIM_SOURCE_DIR) +
                            "/tests/golden/pcmicro_small.pctr";
    const std::string bytes = readFile(src);
    ASSERT_FALSE(bytes.empty());
    const std::string path =
        testing::TempDir() + "pcsim_truncated.pctr";
    writeFile(path, bytes.substr(0, bytes.size() / 2));
    try {
        trace::readTraceFile(path);
        FAIL() << "accepted truncated file";
    } catch (const trace::TraceError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    }
    std::remove(path.c_str());
}
