/** @file Barrier driver tests: completion, generations, and the
 *  coherence traffic it generates (reload flurry). */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace pcsim;

namespace
{

/** All CPUs arrive; returns when every one has passed. */
void
runBarrier(Harness &h, unsigned cpus)
{
    unsigned passed = 0;
    for (unsigned c = 0; c < cpus; ++c)
        h.sys.barrier().arrive(c, [&passed]() { ++passed; });
    h.sys.eventQueue().run();
    ASSERT_EQ(passed, cpus);
}

} // namespace

TEST(Barrier, AllCpusPass)
{
    Harness h(presets::base(16));
    runBarrier(h, 16);
    EXPECT_EQ(h.sys.barrier().generationsCompleted(), 1u);
}

TEST(Barrier, MultipleGenerations)
{
    Harness h(presets::base(16));
    for (int g = 0; g < 5; ++g)
        runBarrier(h, 16);
    EXPECT_EQ(h.sys.barrier().generationsCompleted(), 5u);
}

TEST(Barrier, GenerationCallbackFires)
{
    Harness h(presets::base(16));
    std::vector<std::uint64_t> gens;
    h.sys.barrier().setOnGeneration(
        [&](std::uint64_t g, Tick) { gens.push_back(g); });
    runBarrier(h, 16);
    runBarrier(h, 16);
    EXPECT_EQ(gens, (std::vector<std::uint64_t>{1, 2}));
}

TEST(Barrier, StaggeredArrivalsStillComplete)
{
    Harness h(presets::base(16));
    unsigned passed = 0;
    // The master arrives first and must wait for every slave. Spin
    // loops re-poll forever, so run with a bounded horizon until the
    // last slave shows up.
    h.sys.barrier().arrive(0, [&passed]() { ++passed; });
    h.sys.eventQueue().run(h.sys.eventQueue().curTick() + 20000);
    EXPECT_EQ(passed, 0u);
    for (unsigned c = 1; c < 16; ++c) {
        h.sys.barrier().arrive(c, [&passed]() { ++passed; });
        h.sys.eventQueue().run(h.sys.eventQueue().curTick() + 20000);
    }
    EXPECT_EQ(passed, 16u);
}

TEST(Barrier, LastArriverReleasesPromptly)
{
    Harness h(presets::base(16));
    unsigned passed = 0;
    for (unsigned c = 1; c < 16; ++c)
        h.sys.barrier().arrive(c, [&passed]() { ++passed; });
    h.sys.eventQueue().run(h.sys.eventQueue().curTick() + 20000);
    EXPECT_EQ(passed, 0u); // master missing
    h.sys.barrier().arrive(0, [&passed]() { ++passed; });
    h.sys.eventQueue().run(h.sys.eventQueue().curTick() + 50000);
    EXPECT_EQ(passed, 16u);
}

TEST(Barrier, GeneratesCoherenceTraffic)
{
    Harness h(presets::base(16));
    runBarrier(h, 16);
    // Arrival flags and the release flag are real coherent lines.
    EXPECT_GT(h.sys.network().numMessages(), 0u);
}

TEST(Barrier, SingleCpuDegenerate)
{
    Harness h(presets::base(1));
    unsigned passed = 0;
    h.sys.barrier().arrive(0, [&passed]() { ++passed; });
    h.sys.eventQueue().run();
    EXPECT_EQ(passed, 1u);
}

TEST(Barrier, WorksUnderFullMechanismConfig)
{
    Harness h(presets::large(16));
    for (int g = 0; g < 8; ++g)
        runBarrier(h, 16);
    EXPECT_EQ(h.sys.barrier().generationsCompleted(), 8u);
    h.checkQuiescent();
}
