/** @file Pluggable coherence-policy layer tests: the registry must
 *  cover every ProtocolKind, each registered policy must survive a
 *  checker+conformance end-to-end run at small and large machine
 *  sizes (plus coarse sharer vectors for the update-based policies),
 *  every registered FSM spec must lint clean against its abstract
 *  model family, and the `pcsim compare` job grid must enumerate the
 *  full roster. */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/protocol/policy.hh"
#include "src/runner/compare.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/verify/lint.hh"
#include "src/workload/micro.hh"

#include "harness.hh"

using namespace pcsim;

TEST(PolicyRegistry, CoversEveryKindInEnumOrder)
{
    const auto &kinds = registeredPolicyKinds();
    ASSERT_EQ(kinds.size(),
              static_cast<std::size_t>(ProtocolKind::NumProtocolKinds));
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        EXPECT_EQ(kinds[i], static_cast<ProtocolKind>(i));
        const CoherencePolicy &p = policyFor(kinds[i]);
        EXPECT_EQ(p.kind(), kinds[i]);
        // Names round-trip through the parser.
        ProtocolKind parsed;
        ASSERT_TRUE(protocolKindFromName(p.name(), parsed))
            << p.name();
        EXPECT_EQ(parsed, kinds[i]);
    }
    ProtocolKind k;
    EXPECT_FALSE(protocolKindFromName("mosi-token", k));
    EXPECT_FALSE(protocolKindFromName("Write-Update", k)); // case
}

TEST(PolicyRegistry, CompareRosterMatchesRegistry)
{
    const auto cfgs = presets::compareConfigs(16);
    const auto &kinds = registeredPolicyKinds();
    ASSERT_EQ(cfgs.size(), kinds.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_EQ(cfgs[i].name, protocolKindName(kinds[i]));
        EXPECT_EQ(cfgs[i].cfg.proto.kind, kinds[i]);
        EXPECT_EQ(cfgs[i].cfg.proto.validateError(), "");
    }
}

TEST(PolicyRuns, EveryPolicyPassesCheckerAtSmallAndLargeNodes)
{
    // End-to-end with the invariant checker (on by default) AND the
    // spec-conformance observer: every registered policy must finish
    // the paper's directed pattern at both machine sizes. Iterations
    // are scaled down: the point is protocol-path coverage, and 64
    // nodes at full length would dominate suite runtime.
    for (unsigned n : {16u, 64u}) {
        for (const auto &named : presets::compareConfigs(n)) {
            ProducerConsumerMicro::Params p;
            p.iterations = 40;
            ProducerConsumerMicro wl(n, p);
            RunResult r = runWorkload(withConformance(named.cfg), wl,
                                      named.name);
            EXPECT_GT(r.cycles, 0u) << named.name << " n=" << n;
            EXPECT_GT(r.nodes.writes, 0u) << named.name << " n=" << n;
            EXPECT_FALSE(r.conformance.empty())
                << named.name << " n=" << n;
            EXPECT_EQ(r.updateBased,
                      named.cfg.proto.updateBased())
                << named.name << " n=" << n;
            if (named.cfg.proto.updateBased()) {
                EXPECT_GT(r.nodes.updateEpisodes, 0u)
                    << named.name << " n=" << n;
                EXPECT_GT(r.nodes.updatesApplied, 0u)
                    << named.name << " n=" << n;
            }
        }
    }
}

TEST(PolicyRuns, UpdatePoliciesSurviveCoarseSharerVectors)
{
    // Coarse vectors make Update fan-out conservative (a sharer bit
    // covers several nodes) and suppress UpdateDrop sharer-clearing;
    // both update-based policies must still run checker-clean.
    for (ProtocolKind kind :
         {ProtocolKind::WriteUpdate, ProtocolKind::AdaptiveHybrid}) {
        MachineConfig m = kind == ProtocolKind::WriteUpdate
                              ? presets::writeUpdate(64)
                              : presets::adaptiveHybrid(64);
        m = presets::coarse(m, 4);
        ProducerConsumerMicro::Params p;
        p.iterations = 40;
        ProducerConsumerMicro wl(64, p);
        RunResult r = runWorkload(withConformance(m),
                                  wl, protocolKindName(kind));
        EXPECT_GT(r.cycles, 0u) << protocolKindName(kind);
        EXPECT_GT(r.nodes.updateEpisodes, 0u) << protocolKindName(kind);
    }
}

TEST(PolicyRuns, AdaptiveConsumerDropsOutOfUpdateStream)
{
    // Directed: a consumer that joins the sharer set and then stops
    // reading must self-invalidate after absorbing adaptiveThreshold
    // unread pushes (and must not before).
    MachineConfig m = presets::adaptiveHybrid(4, /*threshold=*/3);
    Harness h(m);
    const Addr line = testLine(0);
    // First touch places the page: node 0 becomes the home, keeping
    // both actors below on the remote push path.
    h.read(0, line);
    ASSERT_EQ(h.home(line), 0u);
    const unsigned consumer = 1;
    const unsigned producer = 2;

    h.read(consumer, line);
    ASSERT_EQ(h.l2State(consumer, line), LineState::Shared);

    h.write(producer, line);
    h.write(producer, line);
    EXPECT_EQ(h.l2State(consumer, line), LineState::Shared)
        << "dropped before the threshold";
    h.write(producer, line);
    EXPECT_EQ(h.l2State(consumer, line), LineState::Invalid)
        << "failed to drop at the threshold";
    EXPECT_EQ(h.stats(consumer).adaptiveDrops, 1u);

    // A fresh read re-joins the stream and resets the counter.
    h.read(consumer, line);
    h.write(producer, line);
    EXPECT_EQ(h.l2State(consumer, line), LineState::Shared);
    h.checkQuiescent();
}

TEST(PolicyLint, EveryRegisteredSpecIsCleanAgainstItsModel)
{
    for (ProtocolKind kind : registeredPolicyKinds()) {
        const CoherencePolicy &p = policyFor(kind);
        const verify::LintReport r = verify::lintSpecWithModel(
            p.spec(), modelCheckSetFor(kind));
        for (const auto &f : r.findings) {
            ADD_FAILURE() << p.name() << ": " << f.kind << ": "
                          << f.ctrl << " " << f.state << " x "
                          << f.event << ": " << f.detail;
        }
        EXPECT_TRUE(r.clean()) << p.name();
        EXPECT_GT(r.mcConfigs, 0u) << p.name();
        EXPECT_GT(r.mcObserved, 0u) << p.name();
    }
}

TEST(CompareRunner, JobGridCoversScenariosNodesAndPolicies)
{
    runner::CompareOptions opt; // defaults: PCmicro+PubSub x {16,64}
    const runner::JobSet set = runner::compareJobs(opt);
    ASSERT_EQ(set.size(),
              2 * 2 * registeredPolicyKinds().size());
    for (ProtocolKind kind : registeredPolicyKinds()) {
        const std::string name = protocolKindName(kind);
        const auto count = std::count_if(
            set.jobs().begin(), set.jobs().end(),
            [&](const runner::Job &j) {
                return j.configName == name;
            });
        EXPECT_EQ(count, 4) << name;
    }
}

TEST(CompareRunner, RejectsUnknownScenarioAndZeroNodes)
{
    runner::CompareOptions opt;
    opt.scenarios = {"NoSuchWorkload"};
    EXPECT_TRUE(runner::compareJobs(opt).empty());

    runner::CompareOptions zero;
    zero.nodes = {16, 0};
    EXPECT_TRUE(runner::compareJobs(zero).empty());
}
