/** @file Race-condition tests: concurrent conflicting accesses,
 *  writeback races, NACK/retry paths (Section 2.3.4's discipline). */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace pcsim;

namespace
{

MachineConfig
baseCfg()
{
    return presets::base(16);
}

} // namespace

TEST(ProtocolRaces, TwoConcurrentWritersSerialize)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    h.race({{3, true, a}, {7, true, a}});
    // Exactly one final owner; both stores performed (version 2).
    const DirEntry d = h.dir(a);
    EXPECT_EQ(d.state, DirState::Excl);
    const unsigned owner = d.owner;
    EXPECT_TRUE(owner == 3 || owner == 7);
    EXPECT_EQ(h.l2Version(owner, a), 2u);
    h.checkQuiescent();
}

TEST(ProtocolRaces, ManyConcurrentWritersSerialize)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    h.race({{1, true, a},
            {2, true, a},
            {3, true, a},
            {4, true, a},
            {5, true, a},
            {6, true, a}});
    EXPECT_EQ(h.dir(a).state, DirState::Excl);
    EXPECT_EQ(h.l2Version(h.dir(a).owner, a), 6u);
    h.checkQuiescent();
}

TEST(ProtocolRaces, ConcurrentUpgradesOneLosesCopy)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    h.read(3, a);
    h.read(7, a);
    // Both sharers upgrade simultaneously: one must be invalidated
    // and fall back to a full fetch.
    h.race({{3, true, a}, {7, true, a}});
    EXPECT_EQ(h.dir(a).state, DirState::Excl);
    EXPECT_EQ(h.l2Version(h.dir(a).owner, a), 2u);
    h.checkQuiescent();
}

TEST(ProtocolRaces, ReadersRaceWriter)
{
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    h.write(5, a);
    h.race({{1, false, a},
            {2, false, a},
            {9, true, a},
            {3, false, a},
            {4, false, a}});
    h.checkQuiescent();
    // Everyone who holds a copy holds the current version.
    for (unsigned c : {1u, 2u, 3u, 4u, 9u}) {
        Version v;
        if (h.sys.hub(c).l2State(a, v) != LineState::Invalid) {
            EXPECT_EQ(v, 2u) << "cpu " << c;
        }
    }
}

TEST(ProtocolRaces, ReloadFlurryNacksAndResolves)
{
    // All 15 spinners re-read an exclusively-held line at once: the
    // home NACKs while BusyRead (the em3d reload-flurry phenomenon).
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    h.write(0, a);
    std::initializer_list<Harness::Op> readers = {
        {1, false, a},  {2, false, a},  {3, false, a},  {4, false, a},
        {5, false, a},  {6, false, a},  {7, false, a},  {8, false, a},
        {9, false, a},  {10, false, a}, {11, false, a}, {12, false, a},
        {13, false, a}, {14, false, a}, {15, false, a}};
    h.race(readers);
    std::uint64_t nacks = 0;
    for (unsigned c = 0; c < 16; ++c)
        nacks += h.stats(c).nacksReceived;
    EXPECT_GT(nacks, 0u);
    for (unsigned c = 1; c < 16; ++c)
        EXPECT_EQ(h.l2Version(c, a), 1u);
    h.checkQuiescent();
}

TEST(ProtocolRaces, WritebackRacesIntervention)
{
    // Owner evicts (writeback in flight) while a reader triggers an
    // intervention: point-to-point ordering resolves it at the home.
    MachineConfig m = baseCfg();
    m.proto.l2SizeBytes = 4 * 128;
    m.proto.l2Ways = 1;
    Harness h(m);
    const Addr a = testLine(0);
    h.read(0, a);
    h.write(5, a);
    // The eviction (write to a conflicting line) and the remote read
    // race each other.
    h.race({{5, true, testLine(4)}, {9, false, a}});
    EXPECT_EQ(h.read(9, a), 1u);
    h.checkQuiescent();
}

TEST(ProtocolRaces, WritebackRacesTransfer)
{
    MachineConfig m = baseCfg();
    m.proto.l2SizeBytes = 4 * 128;
    m.proto.l2Ways = 1;
    Harness h(m);
    const Addr a = testLine(0);
    h.read(0, a);
    h.write(5, a);
    h.race({{5, true, testLine(4)}, {9, true, a}});
    EXPECT_EQ(h.dir(a).owner, 9);
    EXPECT_EQ(h.l2Version(9, a), 2u);
    h.checkQuiescent();
}

TEST(ProtocolRaces, InterventionDuringGrantIsRetried)
{
    // A writes (gaining exclusivity) while B writes right behind it:
    // B's intervention can reach A before A's own grant completes;
    // the home must NACK-and-retry, never deadlock.
    Harness h(baseCfg());
    const Addr a = testLine(0);
    h.read(0, a);
    for (unsigned c = 1; c <= 6; ++c)
        h.read(c, a); // seed sharers so grants take a while (acks)
    h.race({{3, true, a}, {9, true, a}, {12, false, a}});
    h.checkQuiescent();
}

TEST(ProtocolRaces, StressManyLinesManyCpus)
{
    Harness h(baseCfg());
    // Interleave conflicting traffic over several lines at once.
    std::vector<Harness::Op> ops;
    for (unsigned round = 0; round < 6; ++round) {
        for (unsigned c = 0; c < 16; ++c) {
            ops.push_back({c, (c + round) % 3 == 0,
                           testLine((c + round) % 4)});
        }
    }
    unsigned pending = 0;
    for (const auto &op : ops) {
        ++pending;
        h.sys.hub(op.cpu).cpuAccess(op.isWrite, op.addr,
                                    [&pending](Version) { --pending; });
    }
    h.sys.eventQueue().run();
    EXPECT_EQ(pending, 0u);
    h.checkQuiescent();
}

TEST(ProtocolRaces, RoamingInterventionCannotHitReacquiredLine)
{
    // Regression for a bug the random fuzzer caught: the home used to
    // resolve a writeback-raced BUSY episode immediately, letting the
    // still-in-flight intervention reach the old owner AFTER it
    // re-acquired the line (yielding a spurious TransferAck and data
    // loss). The home now stays BUSY until the IntervNack returns.
    MachineConfig m = presets::base(16);
    m.proto.l2SizeBytes = 4 * 128;
    m.proto.l2Ways = 1;
    Harness h(m);
    const Addr a = testLine(0);
    h.read(0, a);
    h.write(5, a); // owner 5
    // 5 evicts (writeback) while 9 writes (intervention) and 5
    // immediately re-writes the line (re-acquisition attempt).
    h.race({{5, true, testLine(4)}, {9, true, a}, {5, true, a}});
    h.checkQuiescent();
    // All three stores performed exactly once.
    EXPECT_EQ(h.sys.checker().authority().current(a), 3u);
}

TEST(ProtocolRaces, WritebackRaceStillAnswersTheReader)
{
    MachineConfig m = presets::base(16);
    m.proto.l2SizeBytes = 4 * 128;
    m.proto.l2Ways = 1;
    Harness h(m);
    const Addr a = testLine(0);
    h.read(0, a);
    h.write(5, a);
    h.race({{5, true, testLine(4)}, {9, false, a}, {5, false, a}});
    EXPECT_EQ(h.read(9, a), 1u);
    h.checkQuiescent();
}
