/**
 * @file
 * Parallel event kernel (PDES) tests: the conservative sharded kernel
 * must be byte-identical to the sequential oracle for every workload,
 * shard count and fault scenario, and the shard scheduler itself must
 * be deterministic under randomized cross-shard traffic.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/net/topology.hh"
#include "src/runner/job.hh"
#include "src/runner/results.hh"
#include "src/sim/kernel.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"

using namespace pcsim;

namespace
{

/** Serialized deterministic statistics of one fresh run. */
std::string
runSerialized(MachineConfig cfg, const std::string &workload,
              double scale, unsigned shards)
{
    cfg.shards = shards;
    System sys(cfg);
    auto wl = runner::makeRunnerWorkload(workload, sys.numNodes(),
                                         scale);
    RunResult r = sys.run(*wl);
    return runner::toJson(r, /*with_timing=*/false).dump(2);
}

} // namespace

// --- shard map ----------------------------------------------------

TEST(ShardMap, LeafAlignedNeverSplitsALeaf)
{
    // 32 nodes at radix 8 = 4 leaves.
    const ShardMap m = ShardMap::leafAligned(32, 8, 4);
    EXPECT_EQ(m.numShards, 4u);
    ASSERT_EQ(m.shardOf.size(), 32u);
    for (unsigned n = 0; n < 32; ++n)
        EXPECT_EQ(m.shardOf[n], n / 8) << "node " << n;
}

TEST(ShardMap, ClampsToLeafCount)
{
    // 16 nodes = 2 leaves: any larger request clamps to 2.
    const ShardMap m = ShardMap::leafAligned(16, 8, 64);
    EXPECT_EQ(m.numShards, 2u);
    for (unsigned n = 0; n < 16; ++n)
        EXPECT_EQ(m.shardOf[n], n < 8 ? 0u : 1u);
}

TEST(ShardMap, UnevenLeafCountsStayContiguousAndBalanced)
{
    // 40 nodes = 5 leaves over 2 shards: split 3 + 2 (or 2 + 3), but
    // always contiguous whole leaves.
    const ShardMap m = ShardMap::leafAligned(40, 8, 2);
    EXPECT_EQ(m.numShards, 2u);
    unsigned flips = 0;
    for (unsigned n = 1; n < 40; ++n) {
        EXPECT_GE(m.shardOf[n], m.shardOf[n - 1]);
        flips += m.shardOf[n] != m.shardOf[n - 1];
        EXPECT_EQ(m.shardOf[n], m.shardOf[(n / 8) * 8])
            << "leaf of node " << n << " split across shards";
    }
    EXPECT_EQ(flips, 1u);
}

TEST(Topology, MinCrossLeafLatency)
{
    // Multi-leaf systems: up to the parent and down = 2 hops.
    EXPECT_EQ(FatTreeTopology(64).minCrossLeafHops(), 2u);
    EXPECT_EQ(FatTreeTopology(9).minCrossLeafHops(), 2u);
    EXPECT_EQ(FatTreeTopology(256).minCrossLeafHops(), 2u);
    // One leaf: no cross-leaf pair; the floor degenerates to the
    // single-router hop (or zero for a single node).
    EXPECT_EQ(FatTreeTopology(8).minCrossLeafHops(), 1u);
    EXPECT_EQ(FatTreeTopology(1).minCrossLeafHops(), 0u);
    EXPECT_EQ(FatTreeTopology(64).minCrossLeafLatencyTicks(10), 20u);
    EXPECT_EQ(FatTreeTopology(8).minCrossLeafLatencyTicks(10), 10u);
}

// --- byte identity vs the sequential oracle -----------------------

TEST(ParallelIdentity, WorkloadMatrixMatchesSequentialOracle)
{
    // 32 nodes = 4 leaves, so 2 and 4 shards are both effective.
    struct Case
    {
        const char *workload;
        double scale;
    };
    const Case cases[] = {
        {"PCmicro", 1.0},
        {"WorkQueue", 0.5},
        {"RCU", 0.5},
    };
    for (const Case &c : cases) {
        MachineConfig cfg;
        std::string cname;
        ASSERT_TRUE(runner::namedMachineConfig("base", 32, cfg, cname));
        const std::string oracle =
            runSerialized(cfg, c.workload, c.scale, 1);
        for (unsigned shards : {2u, 4u}) {
            EXPECT_EQ(runSerialized(cfg, c.workload, c.scale, shards),
                      oracle)
                << c.workload << " diverged at " << shards
                << " shards";
        }
    }
}

TEST(ParallelIdentity, CheckerAndConformanceStayIdentical)
{
    MachineConfig cfg;
    std::string cname;
    ASSERT_TRUE(runner::namedMachineConfig("large", 32, cfg, cname));
    cfg.proto.checkerEnabled = true;
    cfg.proto.conformanceEnabled = true;
    const std::string oracle = runSerialized(cfg, "PCmicro", 1.0, 1);
    EXPECT_EQ(runSerialized(cfg, "PCmicro", 1.0, 4), oracle);
}

TEST(ParallelIdentity, FaultStormMatchesSequentialOracle)
{
    // The acceptance scenario: gray links + NI stalls + directory
    // pressure, with the checker and conformance observer enabled --
    // retry storms and fault-delayed messages must serialize
    // identically from the sharded kernel.
    MachineConfig cfg;
    std::string cname;
    ASSERT_TRUE(runner::namedMachineConfig("base", 32, cfg, cname));
    for (const auto &scen : presets::faultScenarios()) {
        if (scen.name != "storm")
            continue;
        cfg.proto.faults = scen.faults;
        cfg.proto.checkerEnabled = true;
        cfg.proto.conformanceEnabled = true;
        cfg.proto.retryExpCap = 6;
        const std::string oracle =
            runSerialized(cfg, "PCmicro", 0.5, 1);
        for (unsigned shards : {2u, 4u})
            EXPECT_EQ(runSerialized(cfg, "PCmicro", 0.5, shards),
                      oracle)
                << "storm diverged at " << shards << " shards";
    }
}

TEST(ParallelIdentity, OverRequestedShardsClampAndStayIdentical)
{
    MachineConfig cfg;
    std::string cname;
    ASSERT_TRUE(runner::namedMachineConfig("base", 16, cfg, cname));
    cfg.shards = 64; // 16 nodes = 2 leaves: clamps to 2
    System sys(cfg);
    EXPECT_EQ(sys.kernel().numShards(), 2u);
    auto wl = runner::makeRunnerWorkload("PCmicro", 16, 1.0);
    RunResult r = sys.run(*wl);
    EXPECT_EQ(runner::toJson(r, false).dump(2),
              runSerialized(cfg, "PCmicro", 1.0, 1));
}

// --- randomized shard-scheduler stress ----------------------------

namespace
{

/**
 * A miniature network over the raw kernel, mirroring the real one's
 * unified delivery semantics: every message lands in a per-destination
 * min-heap keyed (arrive, src, seq) and is drained by a phase-0 event,
 * whether it crossed a shard boundary (via the barrier-flushed
 * channels) or not (inserted directly by the source's own worker).
 * Nodes fire randomly, message each other at latencies >= the
 * lookahead, and fold everything they observe into per-node hashes;
 * the hashes must be independent of the shard count.
 */
struct StressNet
{
    struct Msg
    {
        NodeId dst;
        Tick arrive;
        NodeId src;
        std::uint64_t seq;
        bool operator>(const Msg &o) const
        {
            if (arrive != o.arrive)
                return arrive > o.arrive;
            if (src != o.src)
                return src > o.src;
            return seq > o.seq;
        }
    };

    struct Rng
    {
        std::uint64_t s;
        std::uint32_t next()
        {
            s = s * 6364136223846793005ull + 1442695040888963407ull;
            return static_cast<std::uint32_t>(s >> 33);
        }
    };

    static constexpr unsigned kNodes = 32;
    static constexpr unsigned kRadix = 8;
    static constexpr Tick kHop = 10;

    SimKernel kernel;
    std::vector<
        std::priority_queue<Msg, std::vector<Msg>, std::greater<Msg>>>
        heaps{kNodes};
    std::vector<std::unordered_set<Tick>> armed{kNodes};
    std::vector<std::vector<Msg>> channels;
    std::vector<std::uint64_t> srcSeq =
        std::vector<std::uint64_t>(kNodes, 0);
    std::vector<Rng> rng;
    std::vector<std::uint64_t> hash =
        std::vector<std::uint64_t>(kNodes, 0);
    std::vector<unsigned> budget;

    explicit StressNet(unsigned shards)
        : kernel(ShardMap::leafAligned(kNodes, kRadix, shards),
                 1 + kHop,
                 1 + FatTreeTopology(kNodes, kRadix)
                         .minCrossLeafLatencyTicks(kHop))
    {
        channels.resize(std::size_t(kernel.numShards()) *
                        kernel.numShards());
        for (unsigned n = 0; n < kNodes; ++n) {
            rng.push_back(Rng{0x9E3779B97F4A7C15ull ^ (n * 2654435761u)});
            budget.push_back(200);
        }
        kernel.setFlushHook([this](unsigned shard) { flush(shard); });
    }

    void
    mix(NodeId n, std::uint64_t v)
    {
        hash[n] = (hash[n] ^ v) * 1099511628211ull;
    }

    void
    deliver(Msg m)
    {
        EventQueue &q = kernel.queueForNode(m.dst);
        heaps[m.dst].push(m);
        if (armed[m.dst].insert(m.arrive).second) {
            q.schedulePhase0(m.arrive, [this, dst = m.dst]() {
                const Tick now = kernel.queueForNode(dst).curTick();
                armed[dst].erase(now);
                auto &h = heaps[dst];
                while (!h.empty() && h.top().arrive == now) {
                    const Msg m = h.top();
                    h.pop();
                    mix(dst, (std::uint64_t(m.src) << 32) ^ now);
                }
            });
        }
    }

    void
    send(NodeId src, NodeId dst, Tick now)
    {
        // Latency floor mirrors the real network: >= 1 tick of
        // egress occupancy plus the cross-leaf hop latency.
        const Tick arrive = now + kernel.lookahead() +
                            (rng[src].next() & 31);
        const Msg m{dst, arrive, src, ++srcSeq[src]};
        const unsigned ss = kernel.shardOf(src);
        const unsigned ds = kernel.shardOf(dst);
        if (ss == ds)
            deliver(m);
        else
            channels[std::size_t(ss) * kernel.numShards() + ds]
                .push_back(m);
    }

    void
    flush(unsigned shard)
    {
        for (unsigned ss = 0; ss < kernel.numShards(); ++ss) {
            auto &ch =
                channels[std::size_t(ss) * kernel.numShards() + shard];
            for (const Msg &m : ch)
                deliver(m);
            ch.clear();
        }
    }

    void
    fire(NodeId n)
    {
        EventQueue &q = kernel.queueForNode(n);
        mix(n, q.curTick() * kNodes + n);
        if (budget[n] == 0)
            return;
        --budget[n];
        const std::uint32_t r = rng[n].next();
        if ((r & 3) == 0)
            send(n, static_cast<NodeId>(rng[n].next() % kNodes),
                 q.curTick());
        q.scheduleIn(1 + (rng[n].next() & 63),
                     [this, n]() { fire(n); });
    }

    std::vector<std::uint64_t>
    run()
    {
        for (unsigned n = 0; n < kNodes; ++n) {
            kernel.queueForNode(static_cast<NodeId>(n))
                .schedule(1 + (n & 7),
                          [this, n]() {
                              fire(static_cast<NodeId>(n));
                          });
        }
        kernel.run();
        return hash;
    }
};

} // namespace

TEST(ParallelKernel, RandomizedShardSchedulerStress)
{
    const std::vector<std::uint64_t> oracle = StressNet(1).run();
    for (unsigned shards : {2u, 4u}) {
        StressNet net(shards);
        ASSERT_EQ(net.kernel.numShards(), shards);
        EXPECT_EQ(net.run(), oracle)
            << "per-node observation hashes diverged at " << shards
            << " shards";
        for (unsigned n = 0; n < StressNet::kNodes; ++n)
            EXPECT_TRUE(net.heaps[n].empty());
    }
}

TEST(ParallelKernel, TelemetryCountsWindowsOnlyWhenParallel)
{
    {
        StressNet seq(1);
        seq.run();
        EXPECT_EQ(seq.kernel.stats().windows, 0u);
        EXPECT_EQ(seq.kernel.stats().barriers, 0u);
    }
    {
        StressNet par(4);
        par.run();
        EXPECT_GT(par.kernel.stats().windows, 0u);
        EXPECT_EQ(par.kernel.stats().barriers,
                  3 * par.kernel.stats().windows);
    }
}
