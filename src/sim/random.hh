/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic decision in the simulator draws from a seeded Rng so
 * that runs are exactly reproducible; components derive their own
 * streams with fork() so adding a component does not perturb others.
 */

#ifndef PCSIM_SIM_RANDOM_HH
#define PCSIM_SIM_RANDOM_HH

#include <cstdint>

namespace pcsim
{

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : _s) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        const std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation (biased by at
        // most 2^-64, irrelevant for simulation purposes).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Derive an independent child stream. */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _s[4];
};

} // namespace pcsim

#endif // PCSIM_SIM_RANDOM_HH
