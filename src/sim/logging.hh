/**
 * @file
 * Error / status reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - internal simulator bug; aborts.
 * fatal()  - user/configuration error; exits cleanly with an error code.
 * warn()   - suspicious but non-fatal condition.
 * inform() - status message.
 *
 * Debug tracing is controlled per-category via DebugFlags and is cheap
 * when disabled.
 */

#ifndef PCSIM_SIM_LOGGING_HH
#define PCSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace pcsim
{

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Bitmask of debug trace categories. */
enum DebugFlag : std::uint32_t
{
    DebugNone = 0,
    DebugEvent = 1u << 0,
    DebugNet = 1u << 1,
    DebugCache = 1u << 2,
    DebugDir = 1u << 3,
    DebugDelegate = 1u << 4,
    DebugUpdate = 1u << 5,
    DebugCpu = 1u << 6,
    DebugWorkload = 1u << 7,
    DebugMc = 1u << 8,
    DebugAll = ~0u,
};

/** Currently enabled debug categories (global; default: none). */
extern std::uint32_t debugFlags;

/** Emit a trace line if the category is enabled. */
void debugPrintf(std::uint32_t flag, std::uint64_t when, const char *fmt,
                 ...) __attribute__((format(printf, 3, 4)));

/**
 * Trace macro: cheap test before evaluating arguments.
 * Usage: PCSIM_DPRINTF(DebugDir, curTick, "req %d", id);
 */
#define PCSIM_DPRINTF(flag, when, ...)                                    \
    do {                                                                  \
        if (::pcsim::debugFlags & (flag))                                 \
            ::pcsim::debugPrintf((flag), (when), __VA_ARGS__);            \
    } while (0)

} // namespace pcsim

#endif // PCSIM_SIM_LOGGING_HH
