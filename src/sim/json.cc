#include "src/sim/json.hh"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pcsim
{

JsonValue::JsonValue(int i)
{
    if (i >= 0) {
        _type = Type::UInt;
        _uint = static_cast<std::uint64_t>(i);
    } else {
        _type = Type::Double;
        _double = i;
    }
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v._type = Type::Object;
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v._type = Type::Array;
    return v;
}

bool
JsonValue::asBool() const
{
    if (_type != Type::Bool)
        throw std::logic_error("JsonValue: not a bool");
    return _bool;
}

std::uint64_t
JsonValue::asUInt() const
{
    if (_type == Type::UInt)
        return _uint;
    if (_type == Type::Double && _double >= 0 &&
        _double == std::floor(_double))
        return static_cast<std::uint64_t>(_double);
    throw std::logic_error("JsonValue: not an unsigned integer");
}

double
JsonValue::asDouble() const
{
    if (_type == Type::Double)
        return _double;
    if (_type == Type::UInt)
        return static_cast<double>(_uint);
    throw std::logic_error("JsonValue: not a number");
}

const std::string &
JsonValue::asString() const
{
    if (_type != Type::String)
        throw std::logic_error("JsonValue: not a string");
    return _string;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (_type == Type::Null)
        _type = Type::Array;
    if (_type != Type::Array)
        throw std::logic_error("JsonValue: push on non-array");
    _elements.push_back(std::move(v));
    return _elements.back();
}

std::size_t
JsonValue::size() const
{
    if (_type == Type::Array)
        return _elements.size();
    if (_type == Type::Object)
        return _members.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (_type != Type::Array)
        throw std::logic_error("JsonValue: index into non-array");
    return _elements.at(i);
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (_type == Type::Null)
        _type = Type::Object;
    if (_type != Type::Object)
        throw std::logic_error("JsonValue: member on non-object");
    for (auto &[k, v] : _members)
        if (k == key)
            return v;
    _members.emplace_back(key, JsonValue{});
    return _members.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (_type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : _members)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (const JsonValue *v = find(key))
        return *v;
    throw std::out_of_range("JsonValue: missing member '" + key + "'");
}

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace
{

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no Inf/NaN; emit null like most writers do.
        out += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    // Canonicalize: prefer the shortest representation that
    // round-trips, so dumps are stable across produce paths.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[40];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
        if (std::strtod(probe, nullptr) == d) {
            out += probe;
            return;
        }
    }
    out += buf;
}

void
appendIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    switch (_type) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += _bool ? "true" : "false";
        break;
      case Type::UInt: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, _uint);
        out += buf;
        break;
      }
      case Type::Double:
        appendNumber(out, _double);
        break;
      case Type::String:
        out += '"';
        out += escape(_string);
        out += '"';
        break;
      case Type::Array: {
        out += '[';
        for (std::size_t i = 0; i < _elements.size(); ++i) {
            if (i)
                out += ',';
            if (pretty)
                appendIndent(out, indent, depth + 1);
            _elements[i].dumpTo(out, indent, depth + 1);
        }
        if (pretty && !_elements.empty())
            appendIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Type::Object: {
        out += '{';
        for (std::size_t i = 0; i < _members.size(); ++i) {
            if (i)
                out += ',';
            if (pretty)
                appendIndent(out, indent, depth + 1);
            out += '"';
            out += escape(_members[i].first);
            out += pretty ? "\": " : "\":";
            _members[i].second.dumpTo(out, indent, depth + 1);
        }
        if (pretty && !_members.empty())
            appendIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// --- parser ------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (_pos != _text.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonParseError(what, _pos);
    }

    char
    peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    char get() { return _text[_pos++]; }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n])
            ++n;
        if (_text.compare(_pos, n, lit) != 0)
            return false;
        _pos += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue(true);
            fail("invalid literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue(false);
            fail("invalid literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue();
            fail("invalid literal");
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v = JsonValue::object();
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v[key] = parseValue();
            skipWs();
            char c = get();
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v = JsonValue::array();
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        while (true) {
            v.push(parseValue());
            skipWs();
            char c = get();
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        if (peek() != '"')
            fail("expected string");
        ++_pos;
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                fail("unterminated string");
            char c = get();
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            char e = get();
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = get();
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        fail("invalid \\u escape");
                }
                // UTF-8 encode the code point (surrogate pairs are
                // passed through as-is; the writer never emits them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = _pos;
        bool negative = false;
        bool integral = true;
        if (peek() == '-') {
            negative = true;
            ++_pos;
        }
        if (_pos >= _text.size() || !std::isdigit((unsigned char)_text[_pos]))
            fail("invalid number");
        while (_pos < _text.size() &&
               std::isdigit((unsigned char)_text[_pos]))
            ++_pos;
        if (_pos < _text.size() && _text[_pos] == '.') {
            integral = false;
            ++_pos;
            while (_pos < _text.size() &&
                   std::isdigit((unsigned char)_text[_pos]))
                ++_pos;
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            integral = false;
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-'))
                ++_pos;
            while (_pos < _text.size() &&
                   std::isdigit((unsigned char)_text[_pos]))
                ++_pos;
        }
        const std::string tok = _text.substr(start, _pos - start);
        if (integral && !negative) {
            errno = 0;
            char *end = nullptr;
            const std::uint64_t u = std::strtoull(tok.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return JsonValue(u);
        }
        return JsonValue(std::strtod(tok.c_str(), nullptr));
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace pcsim
