#include "src/sim/kernel.hh"

#include <algorithm>
#include <thread>

#include "src/sim/logging.hh"

namespace pcsim
{

namespace
{

thread_local unsigned tlsShardId = 0;

} // namespace

unsigned
currentShardId()
{
    return tlsShardId;
}

ShardMap
ShardMap::leafAligned(unsigned num_nodes, unsigned radix,
                      unsigned requested)
{
    if (num_nodes == 0)
        fatal("shard map needs at least one node");
    if (radix == 0)
        fatal("shard map needs a nonzero leaf radix");
    const unsigned leaves = (num_nodes + radix - 1) / radix;
    unsigned shards = std::max(1u, requested);
    shards = std::min(shards, leaves);

    ShardMap map;
    map.numShards = shards;
    map.shardOf.resize(num_nodes);
    // Balanced contiguous partition of whole leaves: leaf l belongs
    // to shard l * shards / leaves, so every shard gets floor or
    // ceil of leaves / shards consecutive leaf routers.
    for (unsigned n = 0; n < num_nodes; ++n) {
        const unsigned leaf = n / radix;
        map.shardOf[n] = static_cast<unsigned>(
            std::uint64_t(leaf) * shards / leaves);
    }
    return map;
}

SimKernel::SimKernel(ShardMap map, Tick action_grid, Tick lookahead)
    : _map(std::move(map)), _grid(action_grid), _lookahead(lookahead)
{
    if (_grid == 0 || _lookahead == 0)
        fatal("kernel needs nonzero action grid and lookahead");
    _queues.reserve(_map.numShards);
    for (unsigned s = 0; s < _map.numShards; ++s)
        _queues.emplace_back(std::make_unique<EventQueue>());
}

void
SimKernel::setFlushHook(std::function<void(unsigned)> flush)
{
    _flush = std::move(flush);
}

Tick
SimKernel::boundaryAfter(Tick at) const
{
    return (at / _grid + 1) * _grid;
}

void
SimKernel::requestGlobalAction(Tick at, std::function<void(Tick)> fn)
{
    std::lock_guard<std::mutex> lk(_actionMutex);
    if (_actionPending)
        panic("a global action is already pending");
    if (!_actionsPossible)
        panic("global action requested after the action phase ended");
    _actionPending = true;
    _actionBoundary = boundaryAfter(at);
    _actionFn = std::move(fn);
    // The sequential path reacts immediately; parallel shards notice
    // at the next window barrier (the grid guarantees the boundary
    // lies at or beyond every shard's current window end).
    if (_map.numShards == 1)
        _queues[0]->requestStop();
}

std::uint64_t
SimKernel::run(Tick limit)
{
    if (_map.numShards == 1)
        return runSequential(limit);
    return runParallel(limit);
}

std::uint64_t
SimKernel::runSequential(Tick limit)
{
    EventQueue &q = *_queues[0];
    std::uint64_t executed = 0;
    while (true) {
        Tick cap = limit;
        {
            std::lock_guard<std::mutex> lk(_actionMutex);
            if (_actionPending)
                cap = std::min(limit, _actionBoundary - 1);
        }
        executed += q.run(cap);

        std::function<void(Tick)> fn;
        Tick boundary = 0;
        {
            std::lock_guard<std::mutex> lk(_actionMutex);
            if (_actionPending) {
                Tick t;
                const bool any = q.peekNextTick(t);
                if (any && t < _actionBoundary) {
                    if (t > limit)
                        return executed; // limit hit before boundary
                    continue; // stop consumed mid-drain; keep going
                }
                fn = std::move(_actionFn);
                boundary = _actionBoundary;
                _actionPending = false;
                _actionsPossible = false;
            }
        }
        if (fn) {
            fn(boundary);
            ++_stats.actionsApplied;
            continue;
        }
        break; // queue empty or next event beyond the limit
    }
    return executed;
}

std::uint64_t
SimKernel::runParallel(Tick limit)
{
    _done = false;
    _executed.store(0, std::memory_order_relaxed);
    const unsigned shards = _map.numShards;
    std::vector<std::thread> workers;
    workers.reserve(shards - 1);
    for (unsigned s = 1; s < shards; ++s)
        workers.emplace_back(
            [this, s, limit]() { workerLoop(s, limit); });
    workerLoop(0, limit);
    for (std::thread &t : workers)
        t.join();
    return _executed.load(std::memory_order_relaxed);
}

void
SimKernel::workerLoop(unsigned shard, Tick limit)
{
    tlsShardId = shard;
    EventQueue &q = *_queues[shard];
    while (true) {
        // (1) every shard finished the previous window (or is just
        // entering); cross-shard channels are now stable.
        barrierWait();
        if (_flush)
            _flush(shard);
        // (2) all inbound traffic is in the calendars; shard 0 can
        // now see the true global minimum next tick.
        barrierWait();
        if (shard == 0)
            planWindow(limit);
        // (3) the window plan (or the done flag) is visible to all.
        barrierWait();
        if (_done)
            break;
        const std::uint64_t n = q.run(std::min(_windowEnd - 1, limit));
        _executed.fetch_add(n, std::memory_order_relaxed);
    }
    tlsShardId = 0;
}

void
SimKernel::planWindow(Tick limit)
{
    Tick next = maxTick;
    bool any = false;
    for (const auto &q : _queues) {
        Tick t;
        if (q->peekNextTick(t)) {
            any = true;
            next = std::min(next, t);
        }
    }

    {
        std::lock_guard<std::mutex> lk(_actionMutex);
        if (_actionPending && (!any || _actionBoundary <= next)) {
            // Every event below the boundary has executed and none at
            // or beyond it has: same partition the sequential kernel
            // applies the action at. The other workers are parked at
            // barrier (3), so the action may touch any shard's state.
            std::function<void(Tick)> fn = std::move(_actionFn);
            const Tick boundary = _actionBoundary;
            _actionPending = false;
            _actionsPossible = false;
            fn(boundary);
            ++_stats.actionsApplied;
        }
    }

    if (!any || next > limit) {
        _done = true;
        return;
    }

    Tick end;
    if (_actionsPossible) {
        // Grid-aligned windows: a global action requested inside this
        // window lands on the next grid boundary, which is exactly
        // the window end -- it can never fall mid-window.
        end = (next / _grid + 1) * _grid;
    } else {
        // Free-running lookahead windows, skipping ahead to the
        // earliest pending event.
        end = next > maxTick - _lookahead ? maxTick : next + _lookahead;
    }
    _windowEnd = end;
    ++_stats.windows;
    _stats.barriers += 3;
}

void
SimKernel::barrierWait()
{
    const std::uint64_t gen =
        _barGeneration.load(std::memory_order_acquire);
    const unsigned n = _map.numShards;
    if (_barArrived.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        _barArrived.store(0, std::memory_order_relaxed);
        _barGeneration.fetch_add(1, std::memory_order_release);
        return;
    }
    unsigned spins = 0;
    while (_barGeneration.load(std::memory_order_acquire) == gen) {
        if (++spins >= 4096) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

Tick
SimKernel::maxCurTick() const
{
    Tick t = 0;
    for (const auto &q : _queues)
        t = std::max(t, q->curTick());
    return t;
}

EventQueueStats
SimKernel::aggregateStats() const
{
    EventQueueStats sum;
    for (const auto &q : _queues) {
        const EventQueueStats &s = q->stats();
        sum.executed += s.executed;
        sum.scheduled += s.scheduled;
        sum.peakPending = std::max(sum.peakPending, s.peakPending);
        sum.inlineCallbacks += s.inlineCallbacks;
        sum.heapCallbacks += s.heapCallbacks;
        sum.overflowEvents += s.overflowEvents;
        sum.windowAdvances += s.windowAdvances;
    }
    return sum;
}

} // namespace pcsim
