/**
 * @file
 * Slab-backed free-list object pool.
 *
 * Pool<T> hands out pointers to default-constructed T objects carved
 * from fixed-size slabs and recycles released objects through a LIFO
 * free list, so steady-state acquire/release performs no heap
 * allocation and reuses cache-warm storage. Objects are NOT reset on
 * release: the next acquirer is expected to overwrite the full state
 * (coherence Messages are copy-assigned wholesale).
 *
 * Single-threaded by design -- one pool lives inside one simulated
 * machine, and a simulation runs on one thread (the experiment runner
 * parallelizes across independent System instances).
 */

#ifndef PCSIM_SIM_POOL_HH
#define PCSIM_SIM_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace pcsim
{

template <typename T>
class Pool
{
  public:
    /** Recycling statistics (see RunPerf::poolHitRate). */
    struct Stats
    {
        std::uint64_t acquires = 0; ///< total acquire() calls
        std::uint64_t reuses = 0;   ///< served from the free list
        std::uint64_t releases = 0;
        std::size_t slabs = 0;      ///< slabs allocated

        double
        hitRate() const
        {
            return acquires ? double(reuses) / double(acquires) : 0.0;
        }
    };

    explicit Pool(std::size_t slab_objects = 256)
        : _slabObjects(slab_objects ? slab_objects : 1)
    {
    }

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /**
     * Fetch an object: recycled from the free list when possible,
     * otherwise carved from the current slab (allocating a new slab
     * only when the current one is exhausted).
     */
    T *
    acquire()
    {
        ++_stats.acquires;
        if (!_free.empty()) {
            ++_stats.reuses;
            T *p = _free.back();
            _free.pop_back();
            return p;
        }
        if (_slabs.empty() || _nextInSlab == _slabObjects) {
            _slabs.push_back(std::make_unique<T[]>(_slabObjects));
            ++_stats.slabs;
            _nextInSlab = 0;
        }
        return &_slabs.back()[_nextInSlab++];
    }

    /** Return an object to the free list. Must come from acquire(). */
    void
    release(T *p)
    {
        ++_stats.releases;
        _free.push_back(p);
    }

    const Stats &stats() const { return _stats; }

    /** Objects handed out and not yet released. */
    std::size_t
    outstanding() const
    {
        return static_cast<std::size_t>(_stats.acquires -
                                        _stats.releases);
    }

    /** Total objects backed by allocated slabs. */
    std::size_t capacity() const { return _stats.slabs * _slabObjects; }

  private:
    std::size_t _slabObjects;
    std::size_t _nextInSlab = 0;
    std::vector<std::unique_ptr<T[]>> _slabs;
    std::vector<T *> _free;
    Stats _stats;
};

} // namespace pcsim

#endif // PCSIM_SIM_POOL_HH
