/**
 * @file
 * Lightweight statistics: scalar counters, averages and histograms
 * collected in a registry so a run can be dumped as a table.
 */

#ifndef PCSIM_SIM_STATS_HH
#define PCSIM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pcsim
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean / min / max of a sampled quantity. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    std::uint64_t count() const { return _count; }

    void
    reset()
    {
        _sum = 0;
        _count = 0;
        _min = 1e300;
        _max = -1e300;
    }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
    double _min = 1e300;
    double _max = -1e300;
};

/** Fixed-bucket histogram over a small integer domain. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 16) : _buckets(buckets, 0) {}

    /** Sample @p v; values beyond the last bucket land in it. */
    void
    sample(std::size_t v)
    {
        if (v >= _buckets.size())
            v = _buckets.size() - 1;
        ++_buckets[v];
        ++_total;
    }

    std::uint64_t bucket(std::size_t i) const { return _buckets.at(i); }
    std::size_t numBuckets() const { return _buckets.size(); }
    std::uint64_t total() const { return _total; }

    /** Fraction of samples in bucket @p i (0 if no samples). */
    double
    fraction(std::size_t i) const
    {
        return _total ? double(_buckets.at(i)) / double(_total) : 0.0;
    }

    void
    reset()
    {
        for (auto &b : _buckets)
            b = 0;
        _total = 0;
    }

    /** Bucket-wise accumulate @p o into this histogram, widening to
     *  the larger bucket count if they differ. */
    void
    merge(const Histogram &o)
    {
        if (o._buckets.size() > _buckets.size())
            _buckets.resize(o._buckets.size(), 0);
        for (std::size_t i = 0; i < o._buckets.size(); ++i)
            _buckets[i] += o._buckets[i];
        _total += o._total;
    }

    /** Replace the bucket contents wholesale (deserialization); the
     *  total is recomputed as every sample lands in exactly one
     *  bucket. */
    void
    assign(std::vector<std::uint64_t> buckets)
    {
        _buckets = std::move(buckets);
        if (_buckets.empty())
            _buckets.resize(1, 0);
        _total = 0;
        for (std::uint64_t b : _buckets)
            _total += b;
    }

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _total = 0;
};

/**
 * Named bag of counters, used by components to expose statistics
 * without a fixed schema. Keys are created on first use.
 */
class StatGroup
{
  public:
    Counter &counter(const std::string &key) { return _counters[key]; }

    const Counter *
    findCounter(const std::string &key) const
    {
        auto it = _counters.find(key);
        return it == _counters.end() ? nullptr : &it->second;
    }

    std::uint64_t
    counterValue(const std::string &key) const
    {
        const Counter *c = findCounter(key);
        return c ? c->value() : 0;
    }

    void
    dump(std::ostream &os, const std::string &prefix) const
    {
        for (const auto &[key, c] : _counters)
            os << prefix << '.' << key << ' ' << c.value() << '\n';
    }

    void
    reset()
    {
        for (auto &[key, c] : _counters)
            c.reset();
    }

    const std::map<std::string, Counter> &all() const { return _counters; }

  private:
    std::map<std::string, Counter> _counters;
};

} // namespace pcsim

#endif // PCSIM_SIM_STATS_HH
