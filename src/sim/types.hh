/**
 * @file
 * Fundamental scalar types used throughout pcsim.
 */

#ifndef PCSIM_SIM_TYPES_HH
#define PCSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace pcsim
{

/** Simulated time, measured in processor clock cycles (2 GHz core). */
using Tick = std::uint64_t;

/** A physical byte address in the simulated global address space. */
using Addr = std::uint64_t;

/** Identifier of a node (processor + hub pair). 16 nodes by default. */
using NodeId = std::uint16_t;

/** Per-line write-epoch version number used in place of byte data. */
using Version = std::uint32_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel for "never" / unscheduled. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel for "no address". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Smallest b with 2^b >= v (log2Ceil(16) == 4, log2Ceil(1) == 0). */
constexpr unsigned
log2Ceil(std::uint64_t v)
{
    unsigned b = 0;
    while ((std::uint64_t{1} << b) < v)
        ++b;
    return b;
}

/** Is @p v a power of two (0 is not)? */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace pcsim

#endif // PCSIM_SIM_TYPES_HH
