#include "src/sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace pcsim
{

std::uint32_t debugFlags = DebugNone;

namespace
{

void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
debugPrintf(std::uint32_t flag, std::uint64_t when, const char *fmt, ...)
{
    if (!(debugFlags & flag))
        return;
    std::fprintf(stderr, "%10llu: ", (unsigned long long)when);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

} // namespace pcsim
