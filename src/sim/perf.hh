/**
 * @file
 * Performance telemetry for the simulation kernel.
 *
 * RunPerf aggregates, per simulation run, the kernel's hot-path
 * counters (events executed/scheduled, queue depth, callback storage
 * classes, calendar-queue overflow traffic), the message-pool
 * recycling counters, and host wall-clock time. The event totals,
 * pool acquires and simTicks are pure functions of the simulated
 * machine + workload and are therefore byte-identical across hosts,
 * thread counts and kernel shard counts; queue-shape counters
 * (peakQueueDepth, overflowEvents, windowAdvances, poolReuses) and
 * the per-shard telemetry depend on how the run was sharded, so
 * serialization keeps them with the volatile timing fields, out of
 * determinism-checked documents (see src/runner/results.hh).
 */

#ifndef PCSIM_SIM_PERF_HH
#define PCSIM_SIM_PERF_HH

#include <cstdint>
#include <vector>

#include "src/sim/types.hh"

namespace pcsim
{

/** Per-run kernel + pool telemetry. */
struct RunPerf
{
    // Event kernel (EventQueue) counters, whole run.
    std::uint64_t eventsExecuted = 0;
    std::uint64_t eventsScheduled = 0;
    std::uint64_t peakQueueDepth = 0;
    /** Callbacks stored in the event's inline buffer (zero-alloc). */
    std::uint64_t inlineCallbacks = 0;
    /** Callbacks that fell back to a heap allocation. */
    std::uint64_t heapCallbacks = 0;
    /** Events scheduled beyond the near-future bucket horizon. */
    std::uint64_t overflowEvents = 0;
    /** Calendar-window advances (overflow migrations). */
    std::uint64_t windowAdvances = 0;

    // Message pool counters.
    std::uint64_t poolAcquires = 0;
    std::uint64_t poolReuses = 0;

    /** Final simulated time of the run. */
    Tick simTicks = 0;

    // Parallel-kernel (PDES) telemetry. The totals above are pure
    // functions of the simulated content and stay byte-identical
    // across shard counts; the per-shard split below depends on the
    // shard map, so serialization keeps it with the host-timing
    // fields (opt-in only).
    /** Shard count the run executed with (1 = sequential kernel). */
    std::uint32_t shards = 1;
    /** Events executed per shard (size == shards when parallel). */
    std::vector<std::uint64_t> shardEvents;
    /** Conservative windows the kernel planned. */
    std::uint64_t kernelWindows = 0;
    /** Barrier passes across all windows. */
    std::uint64_t kernelBarriers = 0;
    /** Messages that crossed a shard boundary in the network. */
    std::uint64_t crossShardMessages = 0;

    /** Host wall-clock seconds (volatile across hosts/runs). */
    double wallSeconds = 0.0;

    double
    eventsPerSec() const
    {
        return wallSeconds > 0 ? double(eventsExecuted) / wallSeconds
                               : 0.0;
    }

    double
    ticksPerSec() const
    {
        return wallSeconds > 0 ? double(simTicks) / wallSeconds : 0.0;
    }

    /** Fraction of pool acquisitions served by recycling. */
    double
    poolHitRate() const
    {
        return poolAcquires ? double(poolReuses) / double(poolAcquires)
                            : 0.0;
    }

    /** Fraction of scheduled callbacks that needed no heap storage. */
    double
    inlineRate() const
    {
        const std::uint64_t total = inlineCallbacks + heapCallbacks;
        return total ? double(inlineCallbacks) / double(total) : 0.0;
    }
};

} // namespace pcsim

#endif // PCSIM_SIM_PERF_HH
