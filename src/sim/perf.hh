/**
 * @file
 * Performance telemetry for the simulation kernel.
 *
 * RunPerf aggregates, per simulation run, the kernel's hot-path
 * counters (events executed/scheduled, queue depth, callback storage
 * classes, calendar-queue overflow traffic), the message-pool
 * recycling counters, and host wall-clock time. Everything except
 * wallSeconds (and the rates derived from it) is a pure function of
 * the simulated machine + workload and is therefore byte-identical
 * across hosts and thread counts; serialization keeps the volatile
 * timing fields out of determinism-checked documents (see
 * src/runner/results.hh).
 */

#ifndef PCSIM_SIM_PERF_HH
#define PCSIM_SIM_PERF_HH

#include <cstdint>

#include "src/sim/types.hh"

namespace pcsim
{

/** Per-run kernel + pool telemetry. */
struct RunPerf
{
    // Event kernel (EventQueue) counters, whole run.
    std::uint64_t eventsExecuted = 0;
    std::uint64_t eventsScheduled = 0;
    std::uint64_t peakQueueDepth = 0;
    /** Callbacks stored in the event's inline buffer (zero-alloc). */
    std::uint64_t inlineCallbacks = 0;
    /** Callbacks that fell back to a heap allocation. */
    std::uint64_t heapCallbacks = 0;
    /** Events scheduled beyond the near-future bucket horizon. */
    std::uint64_t overflowEvents = 0;
    /** Calendar-window advances (overflow migrations). */
    std::uint64_t windowAdvances = 0;

    // Message pool counters.
    std::uint64_t poolAcquires = 0;
    std::uint64_t poolReuses = 0;

    /** Final simulated time of the run. */
    Tick simTicks = 0;

    /** Host wall-clock seconds (volatile across hosts/runs). */
    double wallSeconds = 0.0;

    double
    eventsPerSec() const
    {
        return wallSeconds > 0 ? double(eventsExecuted) / wallSeconds
                               : 0.0;
    }

    double
    ticksPerSec() const
    {
        return wallSeconds > 0 ? double(simTicks) / wallSeconds : 0.0;
    }

    /** Fraction of pool acquisitions served by recycling. */
    double
    poolHitRate() const
    {
        return poolAcquires ? double(poolReuses) / double(poolAcquires)
                            : 0.0;
    }

    /** Fraction of scheduled callbacks that needed no heap storage. */
    double
    inlineRate() const
    {
        const std::uint64_t total = inlineCallbacks + heapCallbacks;
        return total ? double(inlineCallbacks) / double(total) : 0.0;
    }
};

} // namespace pcsim

#endif // PCSIM_SIM_PERF_HH
