/**
 * @file
 * Conservative parallel discrete-event kernel (PDES).
 *
 * SimKernel owns S calendar EventQueues, one per node shard, and
 * executes them either sequentially (S == 1, the default and the
 * oracle) or on S worker threads synchronized conservatively: all
 * shards repeatedly agree on a window [W, E) such that no cross-shard
 * message produced inside the window can arrive before E, execute
 * their queues up to E - 1 independently, then exchange cross-shard
 * traffic at a barrier. The lookahead that sizes the window comes
 * from the fat-tree topology's cross-leaf latency floor
 * (FatTreeTopology::minCrossLeafLatencyTicks): shards are leaf-router
 * aligned, so every cross-shard message is a cross-leaf message.
 *
 * Byte identity with the sequential kernel (see DESIGN.md, "Parallel
 * event kernel") rests on every serialized quantity being a function
 * of simulation *content* only, never of S or thread interleaving;
 * the kernel's job here is to keep the window/barrier machinery and
 * the one global action (the barrier-generation stats reset) on an
 * S-invariant grid.
 */

#ifndef PCSIM_SIM_KERNEL_HH
#define PCSIM_SIM_KERNEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/sim/event_queue.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Shard id of the calling thread (0 outside worker execution);
 *  selects per-shard pools and stat banks in the network. */
unsigned currentShardId();

/** Leaf-router-aligned node -> shard assignment. */
struct ShardMap
{
    /** Effective shard count after clamping to the leaf count. */
    unsigned numShards = 1;
    /** Shard of each node, contiguous whole-leaf ranges. */
    std::vector<unsigned> shardOf;

    /**
     * Assign ceil(leaves / shards) whole leaf routers to each shard.
     * @p requested is clamped to the number of leaf routers
     * (ceil(num_nodes / radix)) so a shard never splits a leaf --
     * the invariant that makes "cross-shard implies cross-leaf" hold.
     */
    static ShardMap leafAligned(unsigned num_nodes, unsigned radix,
                                unsigned requested);
};

/** Parallel-kernel telemetry (host-dependent; serialized only under
 *  the timing opt-in, never in default documents). */
struct KernelStats
{
    /** Conservative windows executed (parallel mode only). */
    std::uint64_t windows = 0;
    /** Barrier episodes crossed (3 per window). */
    std::uint64_t barriers = 0;
    /** Global actions applied at a grid boundary. */
    std::uint64_t actionsApplied = 0;
};

/**
 * The sharded event kernel. With one shard it is a thin wrapper
 * around a single EventQueue and executes bit-for-bit the classic
 * sequential simulation; with more it runs the conservative window
 * protocol described in the file header.
 */
class SimKernel
{
  public:
    /**
     * @param map         node -> shard assignment (leaf aligned).
     * @param action_grid global-action alignment grid G; must lower-
     *                    bound every cross-shard latency (1 + hop
     *                    latency) and be independent of the shard
     *                    count so action boundaries are S-invariant.
     * @param lookahead   window length once no global action can be
     *                    pending (1 + min cross-leaf latency).
     */
    SimKernel(ShardMap map, Tick action_grid, Tick lookahead);

    unsigned numShards() const { return _map.numShards; }
    const ShardMap &shardMap() const { return _map; }
    unsigned shardOf(NodeId n) const { return _map.shardOf[n]; }
    Tick actionGrid() const { return _grid; }
    Tick lookahead() const { return _lookahead; }

    EventQueue &queue(unsigned shard) { return *_queues[shard]; }
    const EventQueue &queue(unsigned shard) const
    {
        return *_queues[shard];
    }
    EventQueue &queueForNode(NodeId n)
    {
        return *_queues[_map.shardOf[n]];
    }

    /**
     * Request that @p fn run exactly once, after every event strictly
     * before boundary B = (floor(at / G) + 1) * G has executed and
     * before any event at or after B does. @p at must be the current
     * tick of the requesting shard (so B lands beyond the current
     * window). At most one action may be pending at a time; the
     * System uses this for the barrier-generation-1 stats reset.
     */
    void requestGlobalAction(Tick at,
                             std::function<void(Tick)> fn);

    /** Hook the Network registers so the kernel can have each worker
     *  flush its shard's inbound cross-shard channels at window
     *  barriers. Channels drain fully at every barrier, so shard
     *  queues alone decide termination. */
    void setFlushHook(std::function<void(unsigned)> flush);

    /**
     * Drain all shards in global (tick, phase, seq) order per shard.
     * Returns the number of events executed. Stops when every queue
     * is empty and no channel traffic is in flight, or when the next
     * event everywhere lies beyond @p limit.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Largest current tick across shards (== the sequential queue's
     *  curTick after a drain; content-determined, so S-invariant). */
    Tick maxCurTick() const;

    /** Sum of per-shard queue stats (the S-invariant rollup fields
     *  are sums of content-determined per-event counts). */
    EventQueueStats aggregateStats() const;

    const KernelStats &stats() const { return _stats; }

  private:
    std::uint64_t runSequential(Tick limit);
    std::uint64_t runParallel(Tick limit);
    void workerLoop(unsigned shard, Tick limit);
    void planWindow(Tick limit);
    void barrierWait();
    Tick boundaryAfter(Tick at) const;

    ShardMap _map;
    Tick _grid;
    Tick _lookahead;
    std::vector<std::unique_ptr<EventQueue>> _queues;
    std::function<void(unsigned)> _flush;

    // Pending global action (mutex: requested from a shard thread,
    // consumed by shard 0 at a window barrier).
    std::mutex _actionMutex;
    bool _actionPending = false;
    Tick _actionBoundary = 0;
    std::function<void(Tick)> _actionFn;
    /** True until the first action applies; while set, windows stay
     *  grid-aligned so a request can never land mid-window. */
    bool _actionsPossible = true;

    // Window-protocol shared state (written by shard 0 between
    // barriers, read by all workers after the next barrier).
    Tick _windowEnd = 0;
    bool _done = false;
    std::atomic<std::uint64_t> _executed{0};

    // Sense-reversing spin barrier.
    std::atomic<unsigned> _barArrived{0};
    std::atomic<std::uint64_t> _barGeneration{0};

    KernelStats _stats;
};

} // namespace pcsim

#endif // PCSIM_SIM_KERNEL_HH
