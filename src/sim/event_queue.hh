/**
 * @file
 * Discrete event simulation kernel.
 *
 * The EventQueue is a priority queue of (tick, sequence) ordered
 * callbacks. Sequence numbers break ties deterministically in schedule
 * order, so a simulation run is fully reproducible for a given seed.
 */

#ifndef PCSIM_SIM_EVENT_QUEUE_HH
#define PCSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/logging.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Callback type executed when an event fires. */
using EventCallback = std::function<void()>;

/**
 * The central simulation event queue.
 *
 * Components schedule closures at absolute or relative ticks; run()
 * drains the queue in (tick, sequence) order until it is empty, a
 * stop condition triggers, or a tick limit is reached.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Schedule @p cb at absolute tick @p when (must be >= curTick). */
    void
    schedule(Tick when, EventCallback cb)
    {
        if (when < _curTick)
            panic("scheduling event in the past (%llu < %llu)",
                  (unsigned long long)when, (unsigned long long)_curTick);
        _events.push(PendingEvent{when, _nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb @p delta ticks from now. */
    void
    scheduleIn(Tick delta, EventCallback cb)
    {
        schedule(_curTick + delta, std::move(cb));
    }

    /** Number of events not yet executed. */
    std::size_t numPending() const { return _events.size(); }

    /** True if nothing remains to execute. */
    bool empty() const { return _events.empty(); }

    /** Request that run() stop before executing the next event. */
    void requestStop() { _stopRequested = true; }

    /**
     * Drain the queue.
     *
     * @param limit stop (without executing further events) once the
     *              next event's tick exceeds this value.
     * @return number of events executed.
     */
    std::uint64_t
    run(Tick limit = maxTick)
    {
        std::uint64_t executed = 0;
        _stopRequested = false;
        while (!_events.empty() && !_stopRequested) {
            const PendingEvent &top = _events.top();
            if (top.when > limit)
                break;
            _curTick = top.when;
            EventCallback cb = std::move(top.cb);
            _events.pop();
            cb();
            ++executed;
        }
        return executed;
    }

    /** Execute at most one event; returns false if queue was empty. */
    bool
    step()
    {
        if (_events.empty())
            return false;
        const PendingEvent &top = _events.top();
        _curTick = top.when;
        EventCallback cb = std::move(top.cb);
        _events.pop();
        cb();
        return true;
    }

    /** Reset time and drop all pending events (for reuse in tests). */
    void
    reset()
    {
        _curTick = 0;
        _nextSeq = 0;
        _stopRequested = false;
        while (!_events.empty())
            _events.pop();
    }

  private:
    struct PendingEvent
    {
        Tick when;
        std::uint64_t seq;
        mutable EventCallback cb;

        bool
        operator>(const PendingEvent &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<PendingEvent, std::vector<PendingEvent>,
                        std::greater<>>
        _events;
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    bool _stopRequested = false;
};

/**
 * Base class for simulation components. Provides access to the owning
 * event queue and a component name used in trace output.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : _eq(eq), _name(std::move(name))
    {}
    virtual ~SimObject() = default;

    EventQueue &eventQueue() const { return _eq; }
    Tick curTick() const { return _eq.curTick(); }
    const std::string &name() const { return _name; }

  protected:
    EventQueue &_eq;
    std::string _name;
};

} // namespace pcsim

#endif // PCSIM_SIM_EVENT_QUEUE_HH
