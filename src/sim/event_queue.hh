/**
 * @file
 * Discrete event simulation kernel.
 *
 * The EventQueue executes callbacks in (tick, sequence) order:
 * sequence numbers break same-tick ties in schedule order, so a
 * simulation run is fully reproducible for a given seed.
 *
 * Internals (see DESIGN.md, "Simulation kernel internals"): the queue
 * is a two-level calendar. Events within a 4096-tick window of the
 * current one land in per-tick FIFO lists of pooled event nodes
 * (append = schedule order, so same-tick FIFO is structural); rarer
 * far-future events wait in a (tick, seq)-ordered binary heap and
 * migrate into the lists when their window becomes current. A
 * callback is constructed in place inside a recycled node and never
 * moves afterwards, so the common scheduleIn(delta, lambda) path
 * performs zero heap allocations and reuses cache-warm storage.
 */

#ifndef PCSIM_SIM_EVENT_QUEUE_HH
#define PCSIM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/logging.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Kernel hot-path counters (see RunPerf for the per-run rollup). */
struct EventQueueStats
{
    std::uint64_t executed = 0;
    std::uint64_t scheduled = 0;
    std::uint64_t peakPending = 0;
    /** Callbacks constructed in the node's inline buffer. */
    std::uint64_t inlineCallbacks = 0;
    /** Callbacks that fell back to a heap allocation. */
    std::uint64_t heapCallbacks = 0;
    /** Events scheduled beyond the near-future window. */
    std::uint64_t overflowEvents = 0;
    /** Calendar-window advances (overflow migrations). */
    std::uint64_t windowAdvances = 0;
};

/**
 * The central simulation event queue.
 *
 * Components schedule closures at absolute or relative ticks; run()
 * drains the queue in (tick, sequence) order until it is empty, a
 * stop condition triggers, or a tick limit is reached.
 */
class EventQueue
{
  public:
    /** Inline callback capacity per event node: sized for the largest
     *  hot protocol closure (a controller pointer plus one 64-byte
     *  Message). Larger callables fall back to one heap allocation. */
    static constexpr std::size_t inlineCallbackBytes = 80;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue() { destroyPending(); }

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Schedule callable @p f at absolute tick @p when (must be
     *  >= curTick). */
    template <typename F>
    void
    schedule(Tick when, F &&f)
    {
        scheduleImpl(when, std::forward<F>(f), false);
    }

    /**
     * Schedule @p f at tick @p when, ahead of every normal event at
     * that tick. Phase-0 events model "the tick begins" work (the
     * network's arrival drains) whose results must be visible to all
     * same-tick protocol events regardless of schedule order; within
     * the phase they keep FIFO schedule order like normal events.
     */
    template <typename F>
    void
    schedulePhase0(Tick when, F &&f)
    {
        scheduleImpl(when, std::forward<F>(f), true);
    }

    /** Schedule callable @p f @p delta ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delta, F &&f)
    {
        schedule(_curTick + delta, std::forward<F>(f));
    }

    /** Number of events not yet executed. */
    std::size_t
    numPending() const
    {
        return static_cast<std::size_t>(_ringCount) + _overflow.size();
    }

    /** True if nothing remains to execute. */
    bool empty() const { return numPending() == 0; }

    /** Request that run() / step() stop before executing the next
     *  event. run() clears any stale request on entry; step() consumes
     *  a pending request by returning false once without executing. */
    void requestStop() { _stopRequested = true; }

    /** True while a stop request is pending (not yet consumed). */
    bool stopRequested() const { return _stopRequested; }

    /** Tick of the next pending event without executing it; false
     *  when the queue is empty. */
    bool
    peekNextTick(Tick &when) const
    {
        return findNextTick(when);
    }

    /**
     * Drain the queue.
     *
     * @param limit stop (without executing further events) once the
     *              next event's tick exceeds this value.
     * @return number of events executed.
     */
    std::uint64_t
    run(Tick limit = maxTick)
    {
        std::uint64_t executed = 0;
        _stopRequested = false;
        Tick when;
        while (!_stopRequested && findNextTick(when)) {
            if (when > limit)
                break;
            executeOne(when);
            ++executed;
        }
        return executed;
    }

    /**
     * Execute at most one event.
     *
     * @return false when the queue is empty or a stop request was
     *         pending (the request is consumed without executing).
     */
    bool
    step()
    {
        if (_stopRequested) {
            _stopRequested = false;
            return false;
        }
        Tick when;
        if (!findNextTick(when))
            return false;
        executeOne(when);
        return true;
    }

    /** Reset time and drop all pending events (for reuse in tests). */
    void
    reset()
    {
        destroyPending();
        _ringCount = 0;
        _curWindow = 0;
        _curTick = 0;
        _nextFarSeq = 0;
        _stopRequested = false;
        _stats = EventQueueStats{};
    }

    /** Kernel telemetry accumulated since construction / reset(). */
    const EventQueueStats &stats() const { return _stats; }

  private:
    /** log2 of the near-future horizon, in ticks. 4096 covers every
     *  latency in Table 1 (hops, DRAM, NI occupancy, retry backoff)
     *  so virtually all protocol events take the in-window path. */
    static constexpr unsigned kLogBuckets = 12;
    static constexpr std::size_t kNumBuckets = std::size_t(1)
                                               << kLogBuckets;
    static constexpr Tick kSlotMask = kNumBuckets - 1;
    static constexpr std::size_t kWords = kNumBuckets / 64;
    static constexpr std::size_t kNodesPerSlab = 256;

    /**
     * One pending event. Nodes are recycled through an intrusive
     * free list and never move while armed, so the callable is
     * constructed directly in @c buf and needs no move support.
     */
    struct EventNode
    {
        /** FIFO link within a tick slot / free-list link. */
        EventNode *next;
        void (*invoke)(void *);
        /** Null for trivially-destructible inline callables; frees
         *  the heap copy for oversized ones. */
        void (*dtor)(void *);
        alignas(std::max_align_t)
            unsigned char buf[inlineCallbackBytes];
    };
    static_assert(sizeof(EventNode) % alignof(std::max_align_t) == 0,
                  "node stride must preserve buffer alignment");

    /** One tick's worth of events: a phase-0 FIFO (drained first)
     *  and the normal FIFO, each in schedule order. */
    struct Slot
    {
        EventNode *head0 = nullptr;
        EventNode *tail0 = nullptr;
        EventNode *head = nullptr;
        EventNode *tail = nullptr;
        bool empty() const { return !head0 && !head; }
    };

    /** An event beyond the near horizon, heap-ordered by (when, seq). */
    struct FarEvent
    {
        Tick when;
        std::uint64_t seq;
        EventNode *node;
        bool phase0;
    };

    /** Comparator making std::push_heap/pop_heap a min-heap. */
    struct FarLater
    {
        bool
        operator()(const FarEvent &a, const FarEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    EventNode *
    allocNode()
    {
        if (_freeNodes) {
            EventNode *n = _freeNodes;
            _freeNodes = n->next;
            return n;
        }
        if (_slabUsed == kNodesPerSlab) {
            _slabs.emplace_back(new EventNode[kNodesPerSlab]);
            _slabUsed = 0;
        }
        return &_slabs.back()[_slabUsed++];
    }

    void
    freeNode(EventNode *n)
    {
        n->next = _freeNodes;
        _freeNodes = n;
    }

    /** Construct the callable inside @p n (inline when it fits). */
    template <typename F>
    void
    emplace(EventNode *n, F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_v<Fn &>,
                      "scheduled callable must be invocable");
        if constexpr (sizeof(Fn) <= inlineCallbackBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            new (n->buf) Fn(std::forward<F>(f));
            n->invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
            if constexpr (std::is_trivially_destructible_v<Fn>)
                n->dtor = nullptr;
            else
                n->dtor = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
            ++_stats.inlineCallbacks;
        } else {
            ::new (n->buf) (Fn *)(new Fn(std::forward<F>(f)));
            n->invoke = [](void *p) { (**static_cast<Fn **>(p))(); };
            n->dtor = [](void *p) { delete *static_cast<Fn **>(p); };
            ++_stats.heapCallbacks;
        }
    }

    template <typename F>
    void
    scheduleImpl(Tick when, F &&f, bool phase0)
    {
        if (when < _curTick)
            panic("scheduling event in the past (%llu < %llu)",
                  (unsigned long long)when, (unsigned long long)_curTick);
        EventNode *n = allocNode();
        emplace(n, std::forward<F>(f));
        ++_stats.scheduled;

        const std::uint64_t w = when >> kLogBuckets;
        if (w == _curWindow) {
            appendSlot(static_cast<std::size_t>(when & kSlotMask), n,
                       phase0);
            ++_ringCount;
        } else {
            ++_stats.overflowEvents;
            _overflow.push_back(FarEvent{when, _nextFarSeq++, n,
                                         phase0});
            std::push_heap(_overflow.begin(), _overflow.end(),
                           FarLater{});
        }
        const std::uint64_t pending = _ringCount + _overflow.size();
        if (pending > _stats.peakPending)
            _stats.peakPending = pending;
    }

    void
    appendSlot(std::size_t slot, EventNode *n, bool phase0)
    {
        n->next = nullptr;
        Slot &s = _slots[slot];
        if (s.empty())
            _occupied[slot >> 6] |= std::uint64_t(1) << (slot & 63);
        EventNode *&head = phase0 ? s.head0 : s.head;
        EventNode *&tail = phase0 ? s.tail0 : s.tail;
        if (head)
            tail->next = n;
        else
            head = n;
        tail = n;
    }

    /** First occupied slot >= from, or -1. */
    int
    nextOccupied(std::size_t from) const
    {
        std::size_t word = from >> 6;
        if (word >= kWords)
            return -1;
        std::uint64_t bits = _occupied[word] &
                             (~std::uint64_t(0) << (from & 63));
        while (true) {
            if (bits)
                return static_cast<int>((word << 6) +
                                        __builtin_ctzll(bits));
            if (++word >= kWords)
                return -1;
            bits = _occupied[word];
        }
    }

    /** Slot scanning starts at curTick when it lies in the current
     *  window (earlier slots are already drained), else at 0 (the
     *  window was advanced ahead of curTick by a migration). */
    std::size_t
    scanStart() const
    {
        return (_curTick >> kLogBuckets) == _curWindow
                   ? static_cast<std::size_t>(_curTick & kSlotMask)
                   : 0;
    }

    /** Tick of the next event, without executing. In-window events
     *  always precede overflow events (the overflow holds later
     *  windows only), so the ring is authoritative while non-empty. */
    bool
    findNextTick(Tick &when) const
    {
        if (_ringCount) {
            const int slot = nextOccupied(scanStart());
            if (slot < 0)
                panic("event ring count %llu but no occupied slot",
                      (unsigned long long)_ringCount);
            when = (_curWindow << kLogBuckets) |
                   static_cast<Tick>(slot);
            return true;
        }
        if (!_overflow.empty()) {
            when = _overflow.front().when;
            return true;
        }
        return false;
    }

    /** Make the overflow's earliest window current, migrating its
     *  events into the slots. Heap order is (when, seq), and any
     *  future append to those slots carries a later sequence, so
     *  same-tick FIFO order is preserved across the migration. */
    void
    advanceWindow()
    {
        const std::uint64_t w = _overflow.front().when >> kLogBuckets;
        _curWindow = w;
        ++_stats.windowAdvances;
        while (!_overflow.empty() &&
               (_overflow.front().when >> kLogBuckets) == w) {
            std::pop_heap(_overflow.begin(), _overflow.end(),
                          FarLater{});
            const FarEvent fe = _overflow.back();
            _overflow.pop_back();
            appendSlot(static_cast<std::size_t>(fe.when & kSlotMask),
                       fe.node, fe.phase0);
            ++_ringCount;
        }
    }

    /** Execute the next event; @p when must come from findNextTick. */
    void
    executeOne(Tick when)
    {
        if (!_ringCount)
            advanceWindow();
        const std::size_t slot =
            static_cast<std::size_t>(when & kSlotMask);
        Slot &s = _slots[slot];
        // Detach before invoking: the callback may append same-tick
        // events to this very slot. Phase-0 events drain first.
        const bool phase0 = s.head0 != nullptr;
        EventNode *&head = phase0 ? s.head0 : s.head;
        EventNode *&tail = phase0 ? s.tail0 : s.tail;
        EventNode *n = head;
        head = n->next;
        if (!head)
            tail = nullptr;
        if (s.empty())
            _occupied[slot >> 6] &=
                ~(std::uint64_t(1) << (slot & 63));
        --_ringCount;
        _curTick = when;
        n->invoke(n->buf);
        if (n->dtor)
            n->dtor(n->buf);
        freeNode(n);
        ++_stats.executed;
    }

    /** Destroy every pending callable and recycle its node (reset()
     *  and destruction; pending state may own resources). */
    void
    destroyPending()
    {
        for (Slot &s : _slots) {
            for (EventNode *list : {s.head0, s.head}) {
                for (EventNode *n = list; n;) {
                    EventNode *next = n->next;
                    if (n->dtor)
                        n->dtor(n->buf);
                    freeNode(n);
                    n = next;
                }
            }
            s = Slot{};
        }
        std::fill(std::begin(_occupied), std::end(_occupied), 0);
        for (const FarEvent &fe : _overflow) {
            if (fe.node->dtor)
                fe.node->dtor(fe.node->buf);
            freeNode(fe.node);
        }
        _overflow.clear();
    }

    Slot _slots[kNumBuckets];
    std::uint64_t _occupied[kWords] = {};
    std::uint64_t _ringCount = 0;
    std::uint64_t _curWindow = 0;

    std::vector<FarEvent> _overflow;
    std::uint64_t _nextFarSeq = 0;

    EventNode *_freeNodes = nullptr;
    std::vector<std::unique_ptr<EventNode[]>> _slabs;
    std::size_t _slabUsed = kNodesPerSlab;

    Tick _curTick = 0;
    bool _stopRequested = false;
    EventQueueStats _stats;
};

/**
 * Base class for simulation components. Provides access to the owning
 * event queue and a component name used in trace output.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : _eq(eq), _name(std::move(name))
    {}
    virtual ~SimObject() = default;

    EventQueue &eventQueue() const { return _eq; }
    Tick curTick() const { return _eq.curTick(); }
    const std::string &name() const { return _name; }

  protected:
    EventQueue &_eq;
    std::string _name;
};

} // namespace pcsim

#endif // PCSIM_SIM_EVENT_QUEUE_HH
