/**
 * @file
 * Minimal dependency-free JSON value tree with a serializer and a
 * strict parser.
 *
 * Used by the experiment runner (src/runner) to emit machine-readable
 * results and to round-trip them in tests. Objects preserve insertion
 * order so a document serializes byte-identically regardless of how it
 * was produced -- a property the runner's determinism checks rely on.
 *
 * Numbers are stored either as an unsigned 64-bit integer (emitted
 * without a decimal point, exact for every simulator counter) or as a
 * double; the parser keeps integer-looking literals integral.
 */

#ifndef PCSIM_SIM_JSON_HH
#define PCSIM_SIM_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pcsim
{

/** Error thrown by JsonValue::parse on malformed input. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &what, std::size_t offset)
        : std::runtime_error(what + " at offset " +
                             std::to_string(offset)),
          _offset(offset)
    {
    }

    std::size_t offset() const { return _offset; }

  private:
    std::size_t _offset;
};

/** A JSON document node: null, bool, number, string, array or object. */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        UInt,   ///< non-negative integer, exact up to 2^64-1
        Double, ///< any other number
        String,
        Array,
        Object,
    };

    JsonValue() : _type(Type::Null) {}
    JsonValue(bool b) : _type(Type::Bool), _bool(b) {}
    JsonValue(double d) : _type(Type::Double), _double(d) {}
    JsonValue(std::uint64_t u) : _type(Type::UInt), _uint(u) {}
    JsonValue(std::uint32_t u) : JsonValue(std::uint64_t(u)) {}
    JsonValue(int i);
    JsonValue(std::string s) : _type(Type::String), _string(std::move(s))
    {
    }
    JsonValue(const char *s) : JsonValue(std::string(s)) {}

    static JsonValue object();
    static JsonValue array();

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const
    {
        return _type == Type::UInt || _type == Type::Double;
    }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    bool asBool() const;
    std::uint64_t asUInt() const;
    double asDouble() const;
    const std::string &asString() const;

    // --- array ---------------------------------------------------
    /** Append to an array (null values become arrays on first push). */
    JsonValue &push(JsonValue v);
    std::size_t size() const;
    const JsonValue &at(std::size_t i) const;

    // --- object --------------------------------------------------
    /** Get-or-insert a member (null values become objects). */
    JsonValue &operator[](const std::string &key);
    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
    /** Member lookup; throws std::out_of_range when absent. */
    const JsonValue &at(const std::string &key) const;
    bool contains(const std::string &key) const
    {
        return find(key) != nullptr;
    }
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return _members;
    }

    // --- serialization -------------------------------------------
    /**
     * Serialize. @p indent < 0 gives the compact single-line form;
     * >= 0 pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /** Escape @p s for embedding in a JSON string literal (no
     *  surrounding quotes). */
    static std::string escape(const std::string &s);

    /** Strict parse of a complete document; throws JsonParseError. */
    static JsonValue parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type _type = Type::Null;
    bool _bool = false;
    std::uint64_t _uint = 0;
    double _double = 0.0;
    std::string _string;
    std::vector<JsonValue> _elements;
    std::vector<std::pair<std::string, JsonValue>> _members;
};

} // namespace pcsim

#endif // PCSIM_SIM_JSON_HH
