/**
 * @file
 * Per-line bounded message history for diagnostics.
 *
 * Every message a hub dispatches is recorded into a small ring per
 * line address. When the coherence checker or the conformance
 * observer reports a violation, the ring supplies the "last few
 * messages for this line" context that makes the failure actionable.
 */

#ifndef PCSIM_VERIFY_TRACE_HH
#define PCSIM_VERIFY_TRACE_HH

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/net/message.hh"
#include "src/sim/types.hh"

namespace pcsim::verify
{

/** Bounded per-line history of delivered messages. */
class MessageTrace
{
  public:
    /** One remembered delivery. */
    struct Record
    {
        Tick when = 0;
        MsgType type = MsgType::Nack;
        NodeId src = invalidNode;
        NodeId dst = invalidNode;
        NodeId requester = invalidNode;
        Version version = 0;
        std::uint64_t txnId = 0;
    };

    static constexpr std::size_t depth = 8;

    /** Remember @p msg as delivered at @p when. */
    void record(const Message &msg, Tick when);

    /** Multi-line human-readable dump of the ring for @p line
     *  (oldest first), or a placeholder when nothing was seen. */
    std::string format(Addr line) const;

    /** Parallel-kernel mode: guard the ring map with a mutex
     *  (deliveries record on shard worker threads). */
    void setParallel(bool on) { _parallel = on; }

  private:
    struct Ring
    {
        std::array<Record, depth> recs;
        std::size_t head = 0;  ///< next write position
        std::size_t count = 0; ///< valid records (<= depth)
    };

    bool _parallel = false;
    mutable std::mutex _mutex;
    std::unordered_map<Addr, Ring> _byLine;
};

} // namespace pcsim::verify

#endif // PCSIM_VERIFY_TRACE_HH
