#include "src/verify/liveness.hh"

#include <algorithm>
#include <deque>

#include "src/mc/explorer.hh"

namespace pcsim::verify
{
namespace
{

using MState = mc::ProtocolModel::State;
using Graph = GraphExplorer<mc::ProtocolModel>::Graph;

/** Progress measure (see file header of liveness.hh): remaining op
 *  budgets plus occupied MSHRs; strictly decreases exactly when an
 *  operation completes. */
unsigned
weightOf(const MState &s, unsigned nodes)
{
    unsigned w = s.writesLeft;
    for (unsigned n = 0; n < nodes; ++n)
        w += s.readsLeft[n] + (s.mshr[n] ? 1u : 0u);
    return w;
}

/** CPU operations injected on the hop a -> b (empty for pure message
 *  steps). Hits complete within the hop; misses occupy the MSHR. */
void
hopOps(const MState &a, const MState &b, unsigned nodes,
       std::vector<WitnessOp> &ops)
{
    for (unsigned n = 0; n < nodes; ++n) {
        if (!a.mshr[n] && b.mshr[n]) {
            ops.push_back({static_cast<std::uint8_t>(n),
                           b.mshr[n] == 2});
            return;
        }
        if (a.readsLeft[n] > b.readsLeft[n] && !a.mshr[n] &&
            !b.mshr[n]) {
            ops.push_back({static_cast<std::uint8_t>(n), false});
            return;
        }
    }
    if (a.writesLeft > b.writesLeft) {
        // Store hit on an M copy: performed in place, MSHR untouched.
        for (unsigned n = 0; n < nodes; ++n) {
            if (b.cache[n] == mc::CState::M &&
                b.cacheV[n] != a.cacheV[n]) {
                ops.push_back({static_cast<std::uint8_t>(n), true});
                return;
            }
        }
    }
}

/** Human-readable label for the hop a -> b, derived by diffing the
 *  two states: channel deliveries/sends and CPU op activity. */
std::string
hopLabel(const MState &a, const MState &b, unsigned nodes)
{
    std::string out;
    auto add = [&out](const std::string &part) {
        if (!out.empty())
            out += ", ";
        out += part;
    };

    for (unsigned s = 0; s < nodes; ++s) {
        for (unsigned d = 0; d < nodes; ++d) {
            const unsigned la = a.chanLen[s][d], lb = b.chanLen[s][d];
            if (lb < la)
                add(std::string("deliver ") +
                    mc::mtypeName(a.chan[s][d][0].type) + " " +
                    std::to_string(s) + "->" + std::to_string(d));
            for (unsigned i = la; i < lb; ++i)
                add(std::string("send ") +
                    mc::mtypeName(b.chan[s][d][i].type) + " " +
                    std::to_string(s) + "->" + std::to_string(d));
        }
    }
    for (unsigned n = 0; n < nodes; ++n) {
        if (!a.mshr[n] && b.mshr[n])
            add("node " + std::to_string(n) + " issues " +
                (b.mshr[n] == 2 ? "write" : "read"));
        else if (a.mshr[n] && !b.mshr[n])
            add("node " + std::to_string(n) + " completes " +
                (a.mshr[n] == 2 ? "write" : "read"));
        if (a.readsLeft[n] > b.readsLeft[n] && !a.mshr[n] &&
            !b.mshr[n])
            add("node " + std::to_string(n) + " read hit");
    }
    if (a.writesLeft > b.writesLeft) {
        bool issued = false;
        for (unsigned n = 0; n < nodes; ++n)
            issued |= !a.mshr[n] && b.mshr[n] == 2;
        if (!issued)
            add("write hit");
    }
    if (out.empty())
        out = "internal step";
    return out;
}

/** BFS-tree path of state ids from the initial state to @p target. */
std::vector<std::uint32_t>
pathTo(const Graph &g, std::uint32_t target)
{
    std::vector<std::uint32_t> path{target};
    while (path.back() != 0)
        path.push_back(g.parent[path.back()]);
    std::reverse(path.begin(), path.end());
    return path;
}

/** Render consecutive hops of @p ids into labels and collect ops. */
void
renderHops(const Graph &g, const std::vector<std::uint32_t> &ids,
           unsigned nodes, std::vector<std::string> &labels,
           std::vector<WitnessOp> &ops)
{
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
        const MState &a = g.states[ids[i]];
        const MState &b = g.states[ids[i + 1]];
        labels.push_back(hopLabel(a, b, nodes));
        hopOps(a, b, nodes, ops);
    }
}

void
analyzeConfig(const NamedModelConfig &ncfg, std::uint64_t max_states,
              LivenessReport &report)
{
    mc::ProtocolModel model(ncfg.cfg);
    GraphExplorer<mc::ProtocolModel> explorer(model, max_states);
    Graph g = explorer.run();
    const unsigned nodes = ncfg.cfg.nodes;
    const std::uint32_t n = static_cast<std::uint32_t>(g.states.size());

    std::vector<unsigned> w(n);
    for (std::uint32_t i = 0; i < n; ++i)
        w[i] = weightOf(g.states[i], nodes);

    LivenessConfigStats stats;
    stats.name = ncfg.name;
    stats.states = n;
    stats.completed = g.completed;

    // Good states: quiescent, or source of a progress edge, or able
    // to reach either -- computed by reverse BFS.
    std::vector<std::vector<std::uint32_t>> rev(n);
    std::vector<bool> good(n, false);
    std::deque<std::uint32_t> work;
    for (std::uint32_t u = 0; u < n; ++u) {
        if (g.quiescent[u]) {
            ++stats.quiescentStates;
            if (!good[u]) {
                good[u] = true;
                work.push_back(u);
            }
        }
        for (std::uint32_t v : g.succ[u]) {
            ++stats.edges;
            rev[v].push_back(u);
            if (w[v] < w[u]) {
                ++stats.progressEdges;
                if (!good[u]) {
                    good[u] = true;
                    work.push_back(u);
                }
            }
        }
    }
    while (!work.empty()) {
        const std::uint32_t v = work.front();
        work.pop_front();
        for (std::uint32_t u : rev[v]) {
            if (!good[u]) {
                good[u] = true;
                work.push_back(u);
            }
        }
    }
    report.configs.push_back(stats);

    // Hard deadlocks first: one finding, the earliest-discovered one.
    if (!g.deadlocks.empty()) {
        const std::uint32_t id =
            *std::min_element(g.deadlocks.begin(), g.deadlocks.end());
        LivenessFinding f;
        f.kind = "deadlock";
        f.config = ncfg.name;
        renderHops(g, pathTo(g, id), nodes, f.witness.prefix,
                   f.witness.ops);
        f.detail = "hard deadlock after " +
                   std::to_string(f.witness.prefix.size()) +
                   " steps: no enabled transition in a non-quiescent "
                   "state\n" +
                   model.blockedSummary(g.states[id]);
        report.findings.push_back(std::move(f));
    }

    // Livelock: a cycle within the bad (non-good) region. Trim bad
    // states with no bad successor (Kahn over the bad subgraph);
    // whatever remains is the union of its cycles.
    std::vector<std::uint32_t> bad_outdeg(n, 0);
    std::uint64_t bad_states = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
        if (good[u])
            continue;
        ++bad_states;
        for (std::uint32_t v : g.succ[u])
            if (!good[v])
                ++bad_outdeg[u];
    }
    std::deque<std::uint32_t> trim;
    for (std::uint32_t u = 0; u < n; ++u)
        if (!good[u] && bad_outdeg[u] == 0)
            trim.push_back(u);
    std::vector<bool> trimmed(n, false);
    while (!trim.empty()) {
        const std::uint32_t v = trim.front();
        trim.pop_front();
        trimmed[v] = true;
        for (std::uint32_t u : rev[v]) {
            if (good[u] || trimmed[u])
                continue;
            if (--bad_outdeg[u] == 0)
                trim.push_back(u);
        }
    }

    std::uint32_t entry = n;
    for (std::uint32_t u = 0; u < n; ++u) {
        if (!good[u] && !trimmed[u]) {
            entry = u;
            break;
        }
    }
    if (entry == n)
        return; // no non-progress cycle: live (or deadlock-only)

    // Walk first kept-bad successors from the entry until a state
    // repeats; the tail from the first repeat is the cycle.
    std::vector<std::uint32_t> walk{entry};
    std::vector<std::uint32_t> pos(n, n);
    pos[entry] = 0;
    for (;;) {
        std::uint32_t next = entry;
        for (std::uint32_t v : g.succ[walk.back()]) {
            if (!good[v] && !trimmed[v]) {
                next = v;
                break;
            }
        }
        if (pos[next] != n) {
            walk.erase(walk.begin(), walk.begin() + pos[next]);
            walk.push_back(next);
            break;
        }
        pos[next] = static_cast<std::uint32_t>(walk.size());
        walk.push_back(next);
    }

    LivenessFinding f;
    f.kind = "livelock";
    f.config = ncfg.name;
    renderHops(g, pathTo(g, walk.front()), nodes, f.witness.prefix,
               f.witness.ops);
    std::vector<WitnessOp> cycle_ops;
    renderHops(g, walk, nodes, f.witness.cycle, cycle_ops);
    f.witness.ops.insert(f.witness.ops.end(), cycle_ops.begin(),
                         cycle_ops.end());
    f.detail = "livelock: " + std::to_string(bad_states) + " of " +
               std::to_string(n) +
               " states can neither complete another operation nor "
               "reach quiescence; non-progress cycle of length " +
               std::to_string(f.witness.cycle.size()) +
               " reachable after " +
               std::to_string(f.witness.prefix.size()) + " steps";
    report.findings.push_back(std::move(f));
}

} // namespace

std::vector<NamedModelConfig>
modelConfigsFor(McCheckSet set)
{
    // 3-node abstraction, one mechanism at a time (matching how the
    // model is verified in tests); read budget 1 keeps each
    // exploration exhaustive and fast.
    auto make = [](std::string name, bool delegation, bool updates,
                   bool write_update, bool adaptive,
                   bool home_queue = false) {
        NamedModelConfig c;
        c.name = std::move(name);
        c.cfg.nodes = 3;
        c.cfg.maxWrites = 2;
        c.cfg.maxReads = 1;
        c.cfg.delegation = delegation;
        c.cfg.updates = updates;
        c.cfg.writeUpdate = write_update;
        c.cfg.adaptive = adaptive;
        c.cfg.homeQueue = home_queue;
        return c;
    };

    // The "+queue" variants re-verify the protocol with the parked-slot
    // arbitration abstraction enabled (ProtocolConfig::Arbitration
    // queue / aged-priority share the same queuing discipline; only the
    // overflow service order differs, which the depth-1 slot cannot
    // distinguish).
    switch (set) {
      case McCheckSet::WriteUpdate:
        return {make("write-update", false, false, true, false),
                make("write-update+queue", false, false, true, false,
                     true)};
      case McCheckSet::AdaptiveHybrid:
        return {make("write-update", false, false, true, false),
                make("adaptive-hybrid", false, false, true, true)};
      case McCheckSet::MesiDele:
        break;
    }
    return {make("base", false, false, false, false),
            make("delegation", true, false, false, false),
            make("delegation+updates", true, true, false, false),
            make("base+queue", false, false, false, false, true),
            make("delegation+updates+queue", true, true, false, false,
                 true)};
}

LivenessReport
analyzeLiveness(const std::vector<NamedModelConfig> &configs,
                std::uint64_t maxStates)
{
    LivenessReport report;
    for (const NamedModelConfig &c : configs)
        analyzeConfig(c, maxStates, report);
    return report;
}

LivenessReport
analyzeLiveness(McCheckSet set)
{
    return analyzeLiveness(modelConfigsFor(set));
}

JsonValue
livenessPolicyJson(const std::string &policy, const LivenessReport &r)
{
    JsonValue doc = JsonValue::object();
    doc["policy"] = JsonValue(policy);
    JsonValue configs = JsonValue::array();
    for (const LivenessConfigStats &c : r.configs) {
        JsonValue e = JsonValue::object();
        e["name"] = JsonValue(c.name);
        e["states"] = JsonValue(c.states);
        e["edges"] = JsonValue(c.edges);
        e["progressEdges"] = JsonValue(c.progressEdges);
        e["quiescentStates"] = JsonValue(c.quiescentStates);
        e["completed"] = JsonValue(c.completed);
        configs.push(std::move(e));
    }
    doc["configs"] = std::move(configs);
    JsonValue findings = JsonValue::array();
    for (const LivenessFinding &f : r.findings) {
        JsonValue e = JsonValue::object();
        e["kind"] = JsonValue(f.kind);
        e["config"] = JsonValue(f.config);
        e["detail"] = JsonValue(f.detail);
        JsonValue w = JsonValue::object();
        JsonValue prefix = JsonValue::array();
        for (const std::string &h : f.witness.prefix)
            prefix.push(JsonValue(h));
        w["prefix"] = std::move(prefix);
        JsonValue cycle = JsonValue::array();
        for (const std::string &h : f.witness.cycle)
            cycle.push(JsonValue(h));
        w["cycle"] = std::move(cycle);
        JsonValue ops = JsonValue::array();
        for (const WitnessOp &op : f.witness.ops) {
            JsonValue o = JsonValue::object();
            o["node"] = JsonValue(std::uint64_t(op.node));
            o["op"] = JsonValue(op.isWrite ? "write" : "read");
            ops.push(std::move(o));
        }
        w["ops"] = std::move(ops);
        e["witness"] = std::move(w);
        findings.push(std::move(e));
    }
    doc["findings"] = std::move(findings);
    return doc;
}

} // namespace pcsim::verify
