#include "src/verify/mdg.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "src/mc/mtype.hh"
#include "src/mc/protocol_model.hh"

namespace pcsim::verify
{
namespace
{

/** True when @p e is delivery of a message (not a synthetic local
 *  event): PEvent values alias MsgType except the 23..30 block. */
bool
isMessageEvent(PEvent e)
{
    const auto v = static_cast<unsigned>(e);
    if (v >= static_cast<unsigned>(PEvent::NumPEvents))
        return false;
    return v < static_cast<unsigned>(PEvent::CpuLoad) ||
           v > static_cast<unsigned>(PEvent::RacPressure);
}

MsgType
msgOfEvent(PEvent e)
{
    return static_cast<MsgType>(e);
}

std::string
listNames(const std::vector<MsgType> &ts)
{
    std::string out;
    for (MsgType t : ts) {
        if (!out.empty())
            out += ", ";
        out += msgTypeName(t);
    }
    return out;
}

} // namespace

const char *
msgClassName(MsgClass c)
{
    switch (c) {
      case MsgClass::Request: return "request";
      case MsgClass::Intervention: return "intervention";
      case MsgClass::Response: return "response";
    }
    return "?";
}

MsgClass
msgClassOf(MsgType t)
{
    switch (t) {
      // Transaction-opening (or -reopening) messages a home may hold
      // off, forward, or NACK.
      case MsgType::ReqShared:
      case MsgType::ReqExcl:
      case MsgType::ReqUpgrade:
      case MsgType::WritebackM:
      case MsgType::UpdateWB:
      case MsgType::Undele:
        return MsgClass::Request;

      // Home/producer-generated fan-outs bounded by the transaction
      // they serve.
      case MsgType::Inval:
      case MsgType::IntervDowngrade:
      case MsgType::IntervTransfer:
      case MsgType::Delegate:
      case MsgType::Update:
        return MsgClass::Intervention;

      // Terminators and bounces: must always be consumable.
      case MsgType::RespSharedData:
      case MsgType::RespExclData:
      case MsgType::RespUpgradeAck:
      case MsgType::WritebackAck:
      case MsgType::Nack:
      case MsgType::NackNotHome:
      case MsgType::HomeHint:
      case MsgType::InvalAck:
      case MsgType::SharedResp:
      case MsgType::SharedWriteback:
      case MsgType::ExclResp:
      case MsgType::TransferAck:
      case MsgType::IntervNack:
      case MsgType::UpdGrant:
      case MsgType::UpdateDrop:
        return MsgClass::Response;

      case MsgType::NumMsgTypes:
        break;
    }
    return MsgClass::Response;
}

MdgReport
analyzeMdg(const TransitionSpec &spec)
{
    MdgReport r;

    // --- Node set and delivery index --------------------------------
    std::set<MsgType> used;
    // type -> rules that consume it (delivery rules).
    std::map<MsgType, std::vector<const TransitionRule *>> consumers;
    for (const TransitionRule &rule : spec.rules()) {
        if (isMessageEvent(rule.event)) {
            const MsgType t = msgOfEvent(rule.event);
            used.insert(t);
            consumers[t].push_back(&rule);
        }
        for (MsgType t : rule.sends)
            used.insert(t);
    }
    r.messages.assign(used.begin(), used.end());

    // --- Findings: undeliverable sends ------------------------------
    for (MsgType t : r.messages) {
        if (consumers.count(t))
            continue;
        // Sent somewhere (it is in `used`) but nothing consumes it:
        // point at the first offending rule.
        for (const TransitionRule &rule : spec.rules()) {
            if (!rule.allowsSend(t))
                continue;
            r.findings.push_back(
                {"undeliverable-send", ctrlName(rule.ctrl),
                 spec.stateName(rule.ctrl, rule.state),
                 msgTypeName(t),
                 std::string(msgTypeName(t)) +
                     " may be sent while handling " +
                     eventName(rule.event) +
                     " but no controller has a delivery rule for it; "
                     "the message wedges its channel forever"});
            break;
        }
    }

    // --- Sink fixpoint ----------------------------------------------
    // sink(t): t has at least one consumer and every consumer's sends
    // are all sinks. Responses fall out in the first round; a type
    // whose consumption can cascade into a non-sink never joins.
    std::set<MsgType> sinks;
    for (bool changed = true; changed;) {
        changed = false;
        for (MsgType t : r.messages) {
            if (sinks.count(t) || !consumers.count(t))
                continue;
            bool all_sinks = true;
            for (const TransitionRule *rule : consumers[t])
                for (MsgType s : rule->sends)
                    if (!sinks.count(s))
                        all_sinks = false;
            if (all_sinks) {
                sinks.insert(t);
                changed = true;
            }
        }
    }
    r.sinks.assign(sinks.begin(), sinks.end());

    // --- Edges with exemptions --------------------------------------
    for (const TransitionRule &rule : spec.rules()) {
        if (!isMessageEvent(rule.event))
            continue;
        const MsgType recv = msgOfEvent(rule.event);
        const bool nack_escape =
            rule.allowsSend(MsgType::Nack) ||
            rule.allowsSend(MsgType::NackNotHome);
        for (MsgType snd : rule.sends) {
            MdgEdge e{recv, snd, rule.ctrl, rule.state, nullptr};
            if (rule.ctrl == Ctrl::Cache &&
                msgClassOf(snd) == MsgClass::Request) {
                // A cache reissuing/issuing a request: bounded by the
                // requester's MSHR, never amplifies.
                e.exempt = "requester-bound";
                ++r.reissueEdges;
            } else if (rule.ctrl != Ctrl::Cache &&
                       msgClassOf(recv) == MsgClass::Request &&
                       msgClassOf(snd) == MsgClass::Request) {
                if (nack_escape) {
                    e.exempt = "nack-protected";
                    ++r.nackProtectedEdges;
                } else {
                    r.findings.push_back(
                        {"unprotected-forward", ctrlName(rule.ctrl),
                         spec.stateName(rule.ctrl, rule.state),
                         eventName(rule.event),
                         std::string("forwards the request as ") +
                             msgTypeName(snd) +
                             " with no Nack/NackNotHome escape in its "
                             "sends set; under channel pressure the "
                             "forward has no shed path"});
                }
            }
            r.edges.push_back(e);
        }
    }

    // --- Cycle detection (Tarjan over non-sink, non-exempt graph) ---
    std::vector<MsgType> nodes;
    for (MsgType t : r.messages)
        if (!sinks.count(t))
            nodes.push_back(t);
    std::map<MsgType, unsigned> index_of;
    for (unsigned i = 0; i < nodes.size(); ++i)
        index_of[nodes[i]] = i;

    std::vector<std::vector<unsigned>> adj(nodes.size());
    for (const MdgEdge &e : r.edges) {
        if (e.exempt || sinks.count(e.from) || sinks.count(e.to))
            continue;
        auto &out = adj[index_of[e.from]];
        const unsigned to = index_of[e.to];
        if (std::find(out.begin(), out.end(), to) == out.end())
            out.push_back(to);
    }

    const unsigned n = nodes.size();
    std::vector<unsigned> idx(n, 0), low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<unsigned> stack;
    unsigned counter = 1;
    std::vector<std::vector<unsigned>> sccs;

    std::function<void(unsigned)> strongconnect = [&](unsigned v) {
        idx[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack[v] = true;
        for (unsigned w : adj[v]) {
            if (idx[w] == 0) {
                strongconnect(w);
                low[v] = std::min(low[v], low[w]);
            } else if (on_stack[w]) {
                low[v] = std::min(low[v], idx[w]);
            }
        }
        if (low[v] == idx[v]) {
            std::vector<unsigned> scc;
            unsigned w;
            do {
                w = stack.back();
                stack.pop_back();
                on_stack[w] = false;
                scc.push_back(w);
            } while (w != v);
            sccs.push_back(std::move(scc));
        }
    };
    for (unsigned v = 0; v < n; ++v)
        if (idx[v] == 0)
            strongconnect(v);

    for (const auto &scc : sccs) {
        const bool self_loop =
            scc.size() == 1 &&
            std::find(adj[scc[0]].begin(), adj[scc[0]].end(), scc[0]) !=
                adj[scc[0]].end();
        if (scc.size() < 2 && !self_loop)
            continue;
        // Witness: walk first in-SCC successors from the smallest
        // member until a node repeats.
        std::set<unsigned> members(scc.begin(), scc.end());
        const unsigned start = *std::min_element(scc.begin(), scc.end());
        std::vector<unsigned> path{start};
        std::set<unsigned> seen{start};
        unsigned cur = start;
        for (;;) {
            unsigned next = cur;
            for (unsigned w : adj[cur]) {
                if (members.count(w)) {
                    next = w;
                    break;
                }
            }
            path.push_back(next);
            if (seen.count(next))
                break;
            seen.insert(next);
            cur = next;
        }
        std::string cycle, classes;
        std::vector<MsgType> member_types;
        for (unsigned v : path) {
            if (!cycle.empty())
                cycle += " -> ";
            cycle += msgTypeName(nodes[v]);
        }
        for (unsigned v : scc)
            member_types.push_back(nodes[v]);
        std::sort(member_types.begin(), member_types.end());
        for (MsgType t : member_types) {
            if (!classes.empty())
                classes += ", ";
            classes += std::string(msgTypeName(t)) + ":" +
                       msgClassName(msgClassOf(t));
        }
        r.findings.push_back(
            {"channel-cycle", "", "", msgTypeName(nodes[start]),
             "message-dependence cycle among non-sink types: " + cycle +
                 " (" + classes +
                 "); consuming any member may require channel space "
                 "for the next, so bounded channels can wedge"});
    }

    // --- Channel-capacity audit -------------------------------------
    // A single handler activation may emit each allowed send once; if
    // one rule can emit more same-class messages than a bounded
    // channel holds, a burst into one destination can overflow. The
    // src/mc model's per-pair FIFOs are the reference bound.
    for (const TransitionRule &rule : spec.rules()) {
        unsigned per_class[3] = {0, 0, 0};
        for (MsgType t : rule.sends)
            ++per_class[static_cast<unsigned>(msgClassOf(t))];
        for (unsigned c = 0; c < 3; ++c) {
            if (per_class[c] <= mc::chanDepth)
                continue;
            r.findings.push_back(
                {"channel-capacity", ctrlName(rule.ctrl),
                 spec.stateName(rule.ctrl, rule.state),
                 eventName(rule.event),
                 "rule may emit " + std::to_string(per_class[c]) +
                     " " +
                     msgClassName(static_cast<MsgClass>(c)) +
                     "-class messages, exceeding the bounded channel "
                     "depth " +
                     std::to_string(mc::chanDepth) +
                     " of the src/mc reference network"});
        }
    }

    // --- Types the abstract model does not carry --------------------
    std::set<MsgType> modeled;
    for (unsigned v = 0;
         v < static_cast<unsigned>(mc::MType::NumMTypes); ++v)
        modeled.insert(static_cast<MsgType>(static_cast<unsigned>(
            eventOfMc(static_cast<mc::MType>(v)))));
    // ReqUpgrade rides the model's collapsed ReqX (see kMcEventOf).
    modeled.insert(MsgType::ReqUpgrade);
    for (MsgType t : r.messages)
        if (!modeled.count(t))
            r.unmodeled.push_back(t);

    return r;
}

JsonValue
mdgPolicyJson(const std::string &policy, const TransitionSpec &spec,
              const MdgReport &r)
{
    JsonValue doc = JsonValue::object();
    doc["policy"] = JsonValue(policy);
    doc["rules"] = JsonValue(std::uint64_t(spec.rules().size()));
    doc["messages"] = JsonValue(std::uint64_t(r.messages.size()));
    doc["edges"] = JsonValue(std::uint64_t(r.edges.size()));
    JsonValue sinks = JsonValue::array();
    for (MsgType t : r.sinks)
        sinks.push(JsonValue(msgTypeName(t)));
    doc["sinks"] = std::move(sinks);
    JsonValue non_sinks = JsonValue::array();
    for (MsgType t : r.messages)
        if (std::find(r.sinks.begin(), r.sinks.end(), t) ==
            r.sinks.end())
            non_sinks.push(JsonValue(msgTypeName(t)));
    doc["nonSinks"] = std::move(non_sinks);
    doc["reissueEdges"] = JsonValue(r.reissueEdges);
    doc["nackProtectedEdges"] = JsonValue(r.nackProtectedEdges);
    doc["unmodeled"] = JsonValue(listNames(r.unmodeled));
    doc["findings"] = lintFindingsJson(r.findings);
    return doc;
}

} // namespace pcsim::verify
