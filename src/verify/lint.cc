#include "src/verify/lint.hh"

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <map>
#include <set>

#include "src/mc/explorer.hh"
#include "src/mc/protocol_model.hh"
#include "src/verify/liveness.hh"

namespace pcsim::verify
{

namespace
{

std::uint32_t
encodeKey(unsigned ctrl, unsigned state, unsigned event)
{
    return (ctrl << 16) | (state << 8) | event;
}

std::uint32_t
encodeTuple(unsigned ctrl, unsigned state, unsigned event,
            unsigned next)
{
    return (ctrl << 24) | (state << 16) | (event << 8) | next;
}

void
finding(LintReport &r, const char *kind, Ctrl c, const std::string &state,
        const std::string &event, std::string detail)
{
    r.findings.push_back(
        {kind, ctrlName(c), state, event, std::move(detail)});
}

// --- Pass 1: unhandled (state, event) pairs -------------------------

void
lintUnhandled(const TransitionSpec &spec, LintReport &r)
{
    for (unsigned ci = 0;
         ci < static_cast<unsigned>(Ctrl::NumCtrls); ++ci) {
        const Ctrl c = static_cast<Ctrl>(ci);
        for (const auto &[s, name] : spec.states(c)) {
            for (PEvent e : spec.relevant(c)) {
                if (spec.find(c, s, e) || spec.isImpossible(c, s, e))
                    continue;
                finding(r, "unhandled", c, name, eventName(e),
                        "no rule and no impossible declaration for "
                        "this (state, event) pair");
            }
        }
    }
}

// --- Pass 2: ambiguous / conflicting entries ------------------------

void
lintAmbiguous(const TransitionSpec &spec, LintReport &r)
{
    std::map<std::uint32_t, unsigned> seen;
    for (const TransitionRule &rule : spec.rules()) {
        const auto key =
            encodeKey(static_cast<unsigned>(rule.ctrl), rule.state,
                      static_cast<unsigned>(rule.event));
        if (++seen[key] == 2) {
            finding(r, "ambiguous", rule.ctrl,
                    spec.stateName(rule.ctrl, rule.state),
                    eventName(rule.event),
                    "duplicate rules for this (state, event) pair; "
                    "lookups use the first");
        }
    }
    for (const TransitionRule &rule : spec.rules()) {
        if (spec.isImpossible(rule.ctrl, rule.state, rule.event)) {
            finding(r, "ambiguous", rule.ctrl,
                    spec.stateName(rule.ctrl, rule.state),
                    eventName(rule.event),
                    "pair has both a rule and an impossible "
                    "declaration");
        }
    }
}

// --- Pass 3: unreachable states -------------------------------------

void
lintUnreachable(const TransitionSpec &spec, LintReport &r)
{
    for (unsigned ci = 0;
         ci < static_cast<unsigned>(Ctrl::NumCtrls); ++ci) {
        const Ctrl c = static_cast<Ctrl>(ci);
        std::set<StateId> reach = {spec.initialState(c)};
        bool grew = true;
        while (grew) {
            grew = false;
            for (const TransitionRule &rule : spec.rules()) {
                if (rule.ctrl != c || !reach.count(rule.state))
                    continue;
                for (StateId n : rule.next)
                    grew |= reach.insert(n).second;
            }
        }
        for (const auto &[s, name] : spec.states(c)) {
            if (!reach.count(s)) {
                finding(r, "unreachable", c, name, "",
                        "no chain of rules reaches this state from "
                        "the initial state '" +
                            spec.stateName(c, spec.initialState(c)) +
                            "'");
            }
        }
    }
}

// --- Pass 4: model cross-check --------------------------------------

/** Collects the distinct transitions the abstract model takes. */
class TupleCollector : public mc::TransitionListener
{
  public:
    void
    onTransition(int ctrl, int pre, int event, int post) override
    {
        _seen.insert(encodeTuple(ctrl, pre, event, post));
    }

    const std::set<std::uint32_t> &seen() const { return _seen; }

  private:
    std::set<std::uint32_t> _seen;
};

void
lintModelCrossCheck(const TransitionSpec &spec, McCheckSet set,
                    LintReport &r)
{
    // The configuration family is shared with the liveness pass (see
    // src/verify/liveness.hh) so both verify the same models.
    std::map<std::uint32_t, std::string> observed; // tuple -> config
    for (const NamedModelConfig &mcfg : modelConfigsFor(set)) {
        mc::ProtocolModel model(mcfg.cfg);
        TupleCollector collector;
        model.setListener(&collector);
        Explorer<mc::ProtocolModel> explorer(model);
        try {
            McResult res = explorer.run();
            r.mcStates += res.statesExplored;
        } catch (const McError &e) {
            finding(r, "mc-mismatch", Ctrl::Cache, "", "",
                    std::string("model exploration failed (") +
                        mcfg.name + "): " + e.what());
            continue;
        }
        ++r.mcConfigs;
        for (std::uint32_t t : collector.seen()) {
            if (!observed.count(t))
                observed[t] = mcfg.name;
        }
    }
    r.mcObserved = observed.size();

    for (const auto &[tuple, config] : observed) {
        const unsigned ctrl = (tuple >> 24) & 0xff;
        const unsigned pre = (tuple >> 16) & 0xff;
        const unsigned ev = (tuple >> 8) & 0xff;
        const unsigned post = tuple & 0xff;

        const Ctrl c = static_cast<Ctrl>(ctrl);
        StateId specPre, specPost;
        PEvent specEv;
        if (!mapMcState(ctrl, pre, specPre) ||
            !mapMcState(ctrl, post, specPost) ||
            !mapMcEvent(ev, specEv)) {
            finding(r, "mc-mismatch", c, "", "",
                    "unmappable model transition (ctrl " +
                        std::to_string(ctrl) + ", pre " +
                        std::to_string(pre) + ", event " +
                        std::to_string(ev) + ", post " +
                        std::to_string(post) + ")");
            continue;
        }

        if (spec.isImpossible(c, specPre, specEv)) {
            finding(r, "mc-mismatch", c,
                    spec.stateName(c, specPre), eventName(specEv),
                    std::string("model (") + config +
                        ") exercises a pair the spec declares "
                        "impossible");
            continue;
        }
        const TransitionRule *rule = spec.find(c, specPre, specEv);
        if (!rule) {
            finding(r, "mc-mismatch", c,
                    spec.stateName(c, specPre), eventName(specEv),
                    std::string("model (") + config +
                        ") exercises a pair the spec has no rule "
                        "for");
            continue;
        }
        if (!rule->allowsNext(specPost)) {
            finding(r, "mc-mismatch", c,
                    spec.stateName(c, specPre), eventName(specEv),
                    std::string("model (") + config + ") reaches '" +
                        spec.stateName(c, specPost) +
                        "', outside the rule's allowed set");
        }
    }
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

LintReport
lintSpec(const TransitionSpec &spec)
{
    LintReport r;
    lintUnhandled(spec, r);
    lintAmbiguous(spec, r);
    lintUnreachable(spec, r);
    return r;
}

LintReport
lintSpecWithModel(const TransitionSpec &spec, McCheckSet set)
{
    LintReport r = lintSpec(spec);
    lintModelCrossCheck(spec, set, r);
    return r;
}

JsonValue
lintToJson(const TransitionSpec &spec, const LintReport &r)
{
    JsonValue doc = JsonValue::object();
    doc["schemaVersion"] = JsonValue(std::uint64_t(1));
    doc["generator"] = JsonValue("pcsim-lint");

    JsonValue sp = JsonValue::object();
    sp["rules"] = JsonValue(std::uint64_t(spec.rules().size()));
    sp["impossible"] =
        JsonValue(std::uint64_t(spec.impossible().size()));
    JsonValue states = JsonValue::object();
    for (unsigned ci = 0;
         ci < static_cast<unsigned>(Ctrl::NumCtrls); ++ci) {
        const Ctrl c = static_cast<Ctrl>(ci);
        states[ctrlName(c)] =
            JsonValue(std::uint64_t(spec.states(c).size()));
    }
    sp["states"] = std::move(states);
    doc["spec"] = std::move(sp);

    if (r.mcConfigs) {
        JsonValue model = JsonValue::object();
        model["configs"] = JsonValue(r.mcConfigs);
        model["statesExplored"] = JsonValue(r.mcStates);
        model["observedTransitions"] = JsonValue(r.mcObserved);
        doc["model"] = std::move(model);
    }

    doc["findings"] = lintFindingsJson(r.findings);
    return doc;
}

JsonValue
lintFindingsJson(const std::vector<LintFinding> &findings)
{
    JsonValue arr = JsonValue::array();
    for (const LintFinding &f : findings) {
        JsonValue e = JsonValue::object();
        e["kind"] = JsonValue(f.kind);
        e["controller"] = JsonValue(f.ctrl);
        e["state"] = JsonValue(f.state);
        e["event"] = JsonValue(f.event);
        e["detail"] = JsonValue(f.detail);
        arr.push(std::move(e));
    }
    return arr;
}

JsonValue
lintPolicyJson(const std::string &policy, const TransitionSpec &spec,
               const LintReport &r)
{
    // Reuse lintToJson so the fragment cannot drift from the classic
    // single-policy document; only the envelope keys differ.
    const JsonValue full = lintToJson(spec, r);
    JsonValue doc = JsonValue::object();
    doc["policy"] = JsonValue(policy);
    for (const auto &[key, value] : full.members()) {
        if (key != "schemaVersion" && key != "generator")
            doc[key] = value;
    }
    return doc;
}

JsonValue
lintFindingsDocument(const std::string &mode, JsonValue policies)
{
    JsonValue doc = JsonValue::object();
    doc["schemaVersion"] = JsonValue(std::uint64_t(1));
    doc["generator"] = JsonValue("pcsim-lint");
    doc["mode"] = JsonValue(mode);
    doc["policies"] = std::move(policies);
    return doc;
}

std::string
lintToCsv(const LintReport &r)
{
    std::string out = "kind,controller,state,event,detail\n";
    for (const LintFinding &f : r.findings) {
        out += csvField(f.kind) + ',' + csvField(f.ctrl) + ',' +
               csvField(f.state) + ',' + csvField(f.event) + ',' +
               csvField(f.detail) + '\n';
    }
    return out;
}

CoverageReport
computeCoverage(const TransitionSpec &spec,
                const std::vector<TransitionCount> &observed)
{
    std::map<std::uint32_t, std::uint64_t> counts;
    for (const TransitionCount &t : observed)
        counts[encodeTuple(t.ctrl, t.state, t.event, t.next)] +=
            t.count;

    CoverageReport r;
    std::set<std::uint32_t> emitted;
    for (const TransitionRule &rule : spec.rules()) {
        for (StateId n : rule.next) {
            const std::uint32_t key = encodeTuple(
                static_cast<unsigned>(rule.ctrl), rule.state,
                static_cast<unsigned>(rule.event), n);
            if (!emitted.insert(key).second)
                continue;
            CoverageRow row;
            row.ctrl = rule.ctrl;
            row.state = rule.state;
            row.event = rule.event;
            row.next = n;
            auto it = counts.find(key);
            row.count = it == counts.end() ? 0 : it->second;
            if (row.count)
                ++r.exercised;
            r.rows.push_back(row);
        }
    }
    r.legal = r.rows.size();
    return r;
}

JsonValue
coverageToJson(const TransitionSpec &spec, const CoverageReport &r)
{
    JsonValue doc = JsonValue::object();
    doc["schemaVersion"] = JsonValue(std::uint64_t(1));
    doc["generator"] = JsonValue("pcsim-lint");

    JsonValue summary = JsonValue::object();
    summary["legalTransitions"] = JsonValue(r.legal);
    summary["exercised"] = JsonValue(r.exercised);
    summary["missing"] = JsonValue(r.legal - r.exercised);
    doc["summary"] = std::move(summary);

    auto rowJson = [&](const CoverageRow &row) {
        JsonValue e = JsonValue::object();
        e["controller"] = JsonValue(ctrlName(row.ctrl));
        e["state"] = JsonValue(spec.stateName(row.ctrl, row.state));
        e["event"] = JsonValue(eventName(row.event));
        e["next"] = JsonValue(spec.stateName(row.ctrl, row.next));
        e["count"] = JsonValue(row.count);
        return e;
    };

    JsonValue missing = JsonValue::array();
    for (const CoverageRow &row : r.rows) {
        if (!row.count)
            missing.push(rowJson(row));
    }
    doc["missing"] = std::move(missing);

    JsonValue all = JsonValue::array();
    for (const CoverageRow &row : r.rows)
        all.push(rowJson(row));
    doc["transitions"] = std::move(all);
    return doc;
}

std::string
coverageToCsv(const TransitionSpec &spec, const CoverageReport &r)
{
    std::string out = "controller,state,event,next,count\n";
    for (const CoverageRow &row : r.rows) {
        out += csvField(ctrlName(row.ctrl)) + ',' +
               csvField(spec.stateName(row.ctrl, row.state)) + ',' +
               csvField(eventName(row.event)) + ',' +
               csvField(spec.stateName(row.ctrl, row.next)) + ',' +
               std::to_string(row.count) + '\n';
    }
    return out;
}

} // namespace pcsim::verify
