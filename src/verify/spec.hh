/**
 * @file
 * Declarative protocol transition specification (the conformance
 * subsystem's single source of truth).
 *
 * The spec is a table of
 *   (controller, state, event) -> {allowed next states, allowed sends}
 * covering the three protocol engines of a node:
 *  - Ctrl::Cache     over LineState (the processor-side agent),
 *  - Ctrl::Dir       over DirState incl. DELE (the home directory),
 *  - Ctrl::Producer  over the delegated-home producer-table entry.
 *
 * Three consumers share it (see DESIGN.md "Protocol conformance &
 * lint"): the static lint (`pcsim lint`, src/verify/lint.*), the
 * runtime conformance hook (src/verify/observer.*) and the
 * spec-vs-model cross-check against the src/mc 3-node abstraction.
 *
 * Semantics:
 *  - `next` is the exact set of states a handler may leave the line
 *    in; observing any other next state is a conformance violation.
 *  - `sends` is the *allowed* set of message types a handler may emit
 *    while servicing the event (a superset is a spec bug the mc
 *    cross-check cannot see; a send outside the set is a runtime
 *    violation). Handlers need not send anything.
 *  - pairs declared "impossible" are unreachable by construction
 *    (typically guarded by a panic() in the controller); observing
 *    one at runtime is a violation.
 */

#ifndef PCSIM_VERIFY_SPEC_HH
#define PCSIM_VERIFY_SPEC_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/mc/mtype.hh"
#include "src/net/message.hh"

namespace pcsim::verify
{

/** Which protocol engine a transition belongs to. */
enum class Ctrl : std::uint8_t
{
    Cache,
    Dir,
    Producer,
    NumCtrls
};

const char *ctrlName(Ctrl c);

/**
 * Protocol events. The first NumMsgTypes values alias MsgType one to
 * one (a delivered message *is* the event); the tail adds synthetic
 * local events with no message on the wire.
 */
enum class PEvent : std::uint8_t
{
    // Message-delivery events (values alias MsgType).
    ReqShared,
    ReqExcl,
    ReqUpgrade,
    WritebackM,
    RespSharedData,
    RespExclData,
    RespUpgradeAck,
    WritebackAck,
    Nack,
    NackNotHome,
    HomeHint,
    Inval,
    IntervDowngrade,
    IntervTransfer,
    InvalAck,
    SharedResp,
    SharedWriteback,
    ExclResp,
    TransferAck,
    IntervNack,
    Delegate,
    Undele,
    Update,

    // Synthetic local events. Pinned at 23..30: committed conformance
    // documents embed the numeric codes, and the write-update message
    // types continue the MsgType aliasing right after this block.
    CpuLoad = 23,      ///< processor load presented to the L2
    CpuStore,          ///< processor store presented to the L2
    Evict,             ///< replacement victim leaves the array
    LocalDowngrade,    ///< producer downgrades its own M copy
    DelayedInterv,     ///< delayed self-intervention timer fires
    LocalFlush,        ///< delegated line's M copy evicted locally
    LocalWriteComplete,///< local write to a delegated line completed
    RacPressure,       ///< pinned RAC entry wants its slot back

    // Message-delivery events again (values alias MsgType).
    UpdGrant = 31,     ///< write permission + data from the home
    UpdateWB,          ///< writer returns new data to the home
    UpdateDrop,        ///< consumer leaves the update stream

    NumPEvents
};

static_assert(static_cast<unsigned>(PEvent::Update) == 22 &&
                  static_cast<unsigned>(PEvent::CpuLoad) == 23,
              "the synthetic local-event block follows the original "
              "message vocabulary");
static_assert(static_cast<unsigned>(PEvent::UpdGrant) ==
                      static_cast<unsigned>(MsgType::UpdGrant) &&
                  static_cast<unsigned>(PEvent::UpdateDrop) ==
                      static_cast<unsigned>(MsgType::UpdateDrop) &&
                  static_cast<unsigned>(PEvent::NumPEvents) ==
                      static_cast<unsigned>(MsgType::NumMsgTypes),
              "PEvent must alias MsgType exactly");

/** The event corresponding to delivery of a message of type @p t. */
constexpr PEvent
eventOf(MsgType t)
{
    return static_cast<PEvent>(t);
}

/**
 * The single authoritative mc::MType -> PEvent correspondence, shared
 * by the lint cross-check, the liveness pass and anything else that
 * maps abstract-model transitions onto the spec vocabulary. Indexed
 * by MType value; the static_asserts below keep it exhaustive and
 * message-only, so a new abstract message type cannot silently
 * diverge from the spec's event aliasing.
 *
 * MType::ReqX deliberately collapses onto PEvent::ReqExcl: the model
 * does not distinguish upgrades from full exclusive requests.
 */
constexpr PEvent kMcEventOf[] = {
    /* ReqS        */ PEvent::ReqShared,
    /* ReqX        */ PEvent::ReqExcl,
    /* RespS       */ PEvent::RespSharedData,
    /* RespX       */ PEvent::RespExclData,
    /* Inval       */ PEvent::Inval,
    /* InvalAck    */ PEvent::InvalAck,
    /* IntervDown  */ PEvent::IntervDowngrade,
    /* IntervXfer  */ PEvent::IntervTransfer,
    /* SharedResp  */ PEvent::SharedResp,
    /* Shwb        */ PEvent::SharedWriteback,
    /* XferResp    */ PEvent::ExclResp,
    /* XferAck     */ PEvent::TransferAck,
    /* IntervNack  */ PEvent::IntervNack,
    /* Nack        */ PEvent::Nack,
    /* NackNotHome */ PEvent::NackNotHome,
    /* Delegate    */ PEvent::Delegate,
    /* Undele      */ PEvent::Undele,
    /* Update      */ PEvent::Update,
    /* UpdGrant    */ PEvent::UpdGrant,
    /* UpdateWB    */ PEvent::UpdateWB,
    /* UpdDrop     */ PEvent::UpdateDrop,
};

static_assert(sizeof(kMcEventOf) / sizeof(kMcEventOf[0]) ==
                  static_cast<unsigned>(mc::MType::NumMTypes),
              "every abstract-model message type must map to a spec "
              "event (extend kMcEventOf alongside mc::MType)");

constexpr bool
mcEventTableAliasesMessages()
{
    for (PEvent e : kMcEventOf) {
        const auto v = static_cast<unsigned>(e);
        if (v >= static_cast<unsigned>(PEvent::NumPEvents))
            return false;
        if (v >= static_cast<unsigned>(PEvent::CpuLoad) &&
            v <= static_cast<unsigned>(PEvent::RacPressure))
            return false; // synthetic local events carry no message
    }
    return true;
}

static_assert(mcEventTableAliasesMessages(),
              "kMcEventOf entries must be message-delivery events");

/** The spec event a delivered abstract-model message maps onto. */
constexpr PEvent
eventOfMc(mc::MType t)
{
    return kMcEventOf[static_cast<unsigned>(t)];
}

const char *eventName(PEvent e);

/** A controller state, in that controller's own encoding: raw
 *  LineState / DirState values, or 0 (None) / 1 (Shared) / 2 (Excl)
 *  for the producer table. */
using StateId = std::uint8_t;

// Producer-table states (Ctrl::Producer).
constexpr StateId prodNone = 0;   ///< no producer-table entry
constexpr StateId prodShared = 1; ///< delegated, directory not owned
constexpr StateId prodExcl = 2;   ///< delegated, producer owns the line

/** Map a TransitionListener event code -- a raw mc::MType value or
 *  one of the synthetic ev* codes -- onto the spec vocabulary;
 *  false when the code is neither. */
bool mapMcEvent(unsigned ev, PEvent &out);

/** Map an abstract-model controller state (raw CState / DState /
 *  producer-table encoding) onto the spec StateId for controller
 *  index @p ctrl (0 cache, 1 dir, 2 producer). CState::M is value 2
 *  but LineState::Modified is 3; everything else is value-identical. */
bool mapMcState(unsigned ctrl, unsigned st, StateId &out);

/** One row of the transition table. */
struct TransitionRule
{
    Ctrl ctrl = Ctrl::Cache;
    StateId state = 0;
    PEvent event = PEvent::NumPEvents;
    std::vector<StateId> next;  ///< allowed next states (non-empty)
    std::vector<MsgType> sends; ///< allowed sends while handling

    bool
    allowsNext(StateId s) const
    {
        for (StateId n : next)
            if (n == s)
                return true;
        return false;
    }

    bool
    allowsSend(MsgType t) const
    {
        return (sendMask & (1ull << static_cast<unsigned>(t))) != 0;
    }

    /** Bit per MsgType; maintained by TransitionSpec::add. */
    std::uint64_t sendMask = 0;
};

/**
 * The transition table plus per-controller state declarations,
 * initial states, and the "impossible" pair list. Lookup is O(1)
 * (dense index) so the runtime hook can afford it per handler call.
 */
class TransitionSpec
{
  public:
    struct ImpossibleEntry
    {
        Ctrl ctrl;
        StateId state;
        PEvent event;
        std::string why;
    };

    TransitionSpec();

    /** Declare a state (with display name) for @p c. */
    void declareState(Ctrl c, StateId s, std::string name);
    /** Set the state a line starts in (before any event). */
    void setInitial(Ctrl c, StateId s);

    /** Append a rule. Duplicate (ctrl, state, event) keys are kept --
     *  the lint reports them as ambiguous; lookups see the first. */
    void add(TransitionRule rule);

    /** Declare a (state, event) pair unreachable by construction. */
    void declareImpossible(Ctrl c, StateId s, PEvent e, std::string why);

    /** First rule for the key, or nullptr. */
    const TransitionRule *find(Ctrl c, StateId s, PEvent e) const;
    /** Mutable lookup; lets tests seed defects into a spec copy. */
    TransitionRule *findMutable(Ctrl c, StateId s, PEvent e);
    /** Remove every rule for the key (test seeding); true if any. */
    bool removeRule(Ctrl c, StateId s, PEvent e);

    bool isImpossible(Ctrl c, StateId s, PEvent e) const;

    const std::vector<TransitionRule> &rules() const { return _rules; }
    const std::vector<ImpossibleEntry> &
    impossible() const
    {
        return _impossible;
    }

    /** Declared (state, name) pairs for @p c, in declaration order. */
    const std::vector<std::pair<StateId, std::string>> &
    states(Ctrl c) const
    {
        return _states[static_cast<unsigned>(c)];
    }

    std::string stateName(Ctrl c, StateId s) const;
    StateId
    initialState(Ctrl c) const
    {
        return _initial[static_cast<unsigned>(c)];
    }

    /** The events a controller can observe at all (drives the
     *  unhandled-pair lint pass). The static lists describe the
     *  original MESI-dir+DELE stack. */
    static const std::vector<PEvent> &relevantEvents(Ctrl c);

    /** Per-spec override of relevantEvents (policy specs observe a
     *  different event vocabulary; see src/protocol/policy.hh). */
    void setRelevantEvents(Ctrl c, std::vector<PEvent> events);

    /** The relevant-event list lint uses for this spec: the override
     *  when set, else the static default. */
    const std::vector<PEvent> &relevant(Ctrl c) const;

  private:
    static constexpr unsigned kMaxStates = 16;
    static constexpr unsigned kNumEvents =
        static_cast<unsigned>(PEvent::NumPEvents);
    static constexpr unsigned kIndexSize =
        static_cast<unsigned>(Ctrl::NumCtrls) * kMaxStates * kNumEvents;

    static unsigned
    keyOf(Ctrl c, StateId s, PEvent e)
    {
        return (static_cast<unsigned>(c) * kMaxStates + s) * kNumEvents +
               static_cast<unsigned>(e);
    }

    void rebuildIndex();

    std::vector<TransitionRule> _rules;
    std::vector<ImpossibleEntry> _impossible;
    /** Per-controller relevantEvents overrides (empty = default). */
    std::vector<PEvent> _relevant[static_cast<unsigned>(Ctrl::NumCtrls)];
    std::vector<std::pair<StateId, std::string>>
        _states[static_cast<unsigned>(Ctrl::NumCtrls)];
    StateId _initial[static_cast<unsigned>(Ctrl::NumCtrls)] = {0, 0, 0};
    /** Index of the first rule per key, or -1. */
    std::vector<std::int16_t> _ruleIndex;
    std::vector<bool> _impossibleIndex;
};

/** Build the shipped spec for the full HPCA'07 protocol (base +
 *  delegation + speculative updates). */
TransitionSpec buildProtocolSpec();

/** Shared immutable instance of buildProtocolSpec(). */
const TransitionSpec &protocolSpec();

/** Build the spec for the Dragon-style write-update policy: the dir
 *  serializes write episodes through BUSY_UPD (UpdGrant/UpdateWB) and
 *  caches only ever hold INVALID or SHARED lines. */
TransitionSpec buildWriteUpdateSpec();

/** Shared immutable instance of buildWriteUpdateSpec(). */
const TransitionSpec &writeUpdateSpec();

/** Build the spec for the per-line adaptive hybrid: the write-update
 *  spec plus consumer self-invalidation (Update -> I + UpdateDrop). */
TransitionSpec buildAdaptiveHybridSpec();

/** Shared immutable instance of buildAdaptiveHybridSpec(). */
const TransitionSpec &adaptiveHybridSpec();

} // namespace pcsim::verify

#endif // PCSIM_VERIFY_SPEC_HH
