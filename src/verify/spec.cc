#include "src/verify/spec.hh"

#include "src/cache/line_state.hh"
#include "src/mc/protocol_model.hh"
#include "src/mem/directory.hh"
#include "src/sim/logging.hh"

namespace pcsim::verify
{

bool
mapMcEvent(unsigned ev, PEvent &out)
{
    using mc::TransitionListener;
    switch (ev) {
      case TransitionListener::evLocalDowngrade:
        out = PEvent::LocalDowngrade;
        return true;
      case TransitionListener::evDelayedInterv:
        out = PEvent::DelayedInterv;
        return true;
      case TransitionListener::evCpuLoad:
        out = PEvent::CpuLoad;
        return true;
      case TransitionListener::evCpuStore:
        out = PEvent::CpuStore;
        return true;
      default:
        break;
    }
    if (ev >= static_cast<unsigned>(mc::MType::NumMTypes))
        return false;
    out = eventOfMc(static_cast<mc::MType>(ev));
    return true;
}

bool
mapMcState(unsigned ctrl, unsigned st, StateId &out)
{
    if (ctrl == 0) {
        switch (st) {
          case 0: out = 0; return true; // I  -> Invalid
          case 1: out = 1; return true; // S  -> Shared
          case 2: out = 3; return true; // M  -> Modified
          default: return false;
        }
    }
    out = static_cast<StateId>(st);
    return true;
}

const char *
ctrlName(Ctrl c)
{
    switch (c) {
      case Ctrl::Cache:
        return "cache";
      case Ctrl::Dir:
        return "dir";
      case Ctrl::Producer:
        return "producer";
      default:
        return "?";
    }
}

const char *
eventName(PEvent e)
{
    // The synthetic local events occupy the 23..30 gap in MsgType, so
    // name them first; everything else is a message-delivery event.
    switch (e) {
      case PEvent::CpuLoad:
        return "CpuLoad";
      case PEvent::CpuStore:
        return "CpuStore";
      case PEvent::Evict:
        return "Evict";
      case PEvent::LocalDowngrade:
        return "LocalDowngrade";
      case PEvent::DelayedInterv:
        return "DelayedInterv";
      case PEvent::LocalFlush:
        return "LocalFlush";
      case PEvent::LocalWriteComplete:
        return "LocalWriteComplete";
      case PEvent::RacPressure:
        return "RacPressure";
      default:
        if (static_cast<unsigned>(e) <
            static_cast<unsigned>(MsgType::NumMsgTypes))
            return msgTypeName(static_cast<MsgType>(e));
        return "?";
    }
}

TransitionSpec::TransitionSpec()
    : _ruleIndex(kIndexSize, -1), _impossibleIndex(kIndexSize, false)
{
}

void
TransitionSpec::declareState(Ctrl c, StateId s, std::string name)
{
    if (s >= kMaxStates)
        panic("spec: state id %u out of range", unsigned(s));
    _states[static_cast<unsigned>(c)].emplace_back(s, std::move(name));
}

void
TransitionSpec::setInitial(Ctrl c, StateId s)
{
    _initial[static_cast<unsigned>(c)] = s;
}

void
TransitionSpec::add(TransitionRule rule)
{
    rule.sendMask = 0;
    for (MsgType t : rule.sends)
        rule.sendMask |= 1ull << static_cast<unsigned>(t);
    const unsigned key = keyOf(rule.ctrl, rule.state, rule.event);
    if (_ruleIndex[key] < 0)
        _ruleIndex[key] = static_cast<std::int16_t>(_rules.size());
    _rules.push_back(std::move(rule));
}

void
TransitionSpec::declareImpossible(Ctrl c, StateId s, PEvent e,
                                  std::string why)
{
    _impossible.push_back({c, s, e, std::move(why)});
    _impossibleIndex[keyOf(c, s, e)] = true;
}

const TransitionRule *
TransitionSpec::find(Ctrl c, StateId s, PEvent e) const
{
    if (s >= kMaxStates)
        return nullptr;
    const std::int16_t i = _ruleIndex[keyOf(c, s, e)];
    return i < 0 ? nullptr : &_rules[i];
}

TransitionRule *
TransitionSpec::findMutable(Ctrl c, StateId s, PEvent e)
{
    return const_cast<TransitionRule *>(
        static_cast<const TransitionSpec *>(this)->find(c, s, e));
}

bool
TransitionSpec::removeRule(Ctrl c, StateId s, PEvent e)
{
    const std::size_t before = _rules.size();
    std::vector<TransitionRule> kept;
    kept.reserve(before);
    for (auto &r : _rules) {
        if (r.ctrl == c && r.state == s && r.event == e)
            continue;
        kept.push_back(std::move(r));
    }
    _rules = std::move(kept);
    rebuildIndex();
    return _rules.size() != before;
}

void
TransitionSpec::rebuildIndex()
{
    _ruleIndex.assign(kIndexSize, -1);
    for (std::size_t i = 0; i < _rules.size(); ++i) {
        const unsigned key =
            keyOf(_rules[i].ctrl, _rules[i].state, _rules[i].event);
        if (_ruleIndex[key] < 0)
            _ruleIndex[key] = static_cast<std::int16_t>(i);
    }
}

bool
TransitionSpec::isImpossible(Ctrl c, StateId s, PEvent e) const
{
    return s < kMaxStates && _impossibleIndex[keyOf(c, s, e)];
}

std::string
TransitionSpec::stateName(Ctrl c, StateId s) const
{
    for (const auto &[id, name] : states(c))
        if (id == s)
            return name;
    return "state" + std::to_string(s);
}

const std::vector<PEvent> &
TransitionSpec::relevantEvents(Ctrl c)
{
    using E = PEvent;
    static const std::vector<PEvent> cache = {
        E::CpuLoad,        E::CpuStore,       E::Evict,
        E::LocalDowngrade, E::Inval,          E::IntervDowngrade,
        E::IntervTransfer, E::RespSharedData, E::SharedResp,
        E::RespExclData,   E::ExclResp,       E::RespUpgradeAck,
        E::InvalAck,       E::WritebackAck,   E::Nack,
        E::NackNotHome,    E::HomeHint,       E::Update,
    };
    static const std::vector<PEvent> dir = {
        E::ReqShared,  E::ReqExcl,         E::ReqUpgrade,
        E::WritebackM, E::SharedWriteback, E::TransferAck,
        E::IntervNack, E::Undele,
    };
    static const std::vector<PEvent> producer = {
        E::Delegate,      E::ReqShared,          E::ReqExcl,
        E::ReqUpgrade,    E::LocalWriteComplete, E::DelayedInterv,
        E::LocalFlush,    E::RacPressure,        E::Evict,
    };
    switch (c) {
      case Ctrl::Dir:
        return dir;
      case Ctrl::Producer:
        return producer;
      case Ctrl::Cache:
      default:
        return cache;
    }
}

void
TransitionSpec::setRelevantEvents(Ctrl c, std::vector<PEvent> events)
{
    _relevant[static_cast<unsigned>(c)] = std::move(events);
}

const std::vector<PEvent> &
TransitionSpec::relevant(Ctrl c) const
{
    const auto &override_ = _relevant[static_cast<unsigned>(c)];
    return override_.empty() ? relevantEvents(c) : override_;
}

namespace
{

using NextStates = std::vector<StateId>;
using Sends = std::vector<MsgType>;

void
rule(TransitionSpec &sp, Ctrl c, StateId s, PEvent e, NextStates next,
     Sends sends = {})
{
    TransitionRule r;
    r.ctrl = c;
    r.state = s;
    r.event = e;
    r.next = std::move(next);
    r.sends = std::move(sends);
    sp.add(std::move(r));
}

void
buildCacheRules(TransitionSpec &sp)
{
    constexpr Ctrl C = Ctrl::Cache;
    constexpr StateId I = static_cast<StateId>(LineState::Invalid);
    constexpr StateId S = static_cast<StateId>(LineState::Shared);
    constexpr StateId M = static_cast<StateId>(LineState::Modified);
    using E = PEvent;
    using T = MsgType;

    sp.declareState(C, I, lineStateName(LineState::Invalid));
    sp.declareState(C, S, lineStateName(LineState::Shared));
    sp.declareState(C, M, lineStateName(LineState::Modified));
    // LineState::Exclusive is deliberately undeclared: complete()
    // installs EXCLUSIVE and performs the store to MODIFIED within
    // one handler, so E is never observable at an event boundary.
    sp.setInitial(C, I);

    // Processor accesses. A load miss may fill from the RAC in the
    // same handler (I -> S); the request itself leaves the state
    // untouched until a response arrives. Filling can evict a victim
    // (the nested Evict event covers the victim line's sends).
    rule(sp, C, I, E::CpuLoad, {I, S}, {T::ReqShared});
    rule(sp, C, S, E::CpuLoad, {S});
    rule(sp, C, M, E::CpuLoad, {M});
    rule(sp, C, I, E::CpuStore, {I}, {T::ReqExcl});
    rule(sp, C, S, E::CpuStore, {S}, {T::ReqUpgrade});
    rule(sp, C, M, E::CpuStore, {M});

    // Replacement. A SHARED victim may be parked in the RAC; a
    // delegated victim is flushed through the producer table (nested
    // LocalFlush event) instead of written back.
    sp.declareImpossible(C, I, E::Evict,
                         "the L2 array stores no invalid entries");
    rule(sp, C, S, E::Evict, {I});
    rule(sp, C, M, E::Evict, {I}, {T::WritebackM});

    // Producer-side self-downgrade (serving a read / delayed
    // intervention against the local M copy).
    rule(sp, C, I, E::LocalDowngrade, {I});
    rule(sp, C, S, E::LocalDowngrade, {S});
    rule(sp, C, M, E::LocalDowngrade, {S});

    // Interventions from the home (or delegated home).
    rule(sp, C, I, E::Inval, {I}, {T::InvalAck});
    rule(sp, C, S, E::Inval, {I}, {T::InvalAck});
    rule(sp, C, M, E::Inval, {I}, {T::InvalAck});
    rule(sp, C, I, E::IntervDowngrade, {I}, {T::IntervNack});
    rule(sp, C, S, E::IntervDowngrade, {S},
         {T::SharedResp, T::SharedWriteback, T::IntervNack});
    rule(sp, C, M, E::IntervDowngrade, {S},
         {T::SharedResp, T::SharedWriteback});
    rule(sp, C, I, E::IntervTransfer, {I}, {T::IntervNack});
    rule(sp, C, S, E::IntervTransfer, {S, I},
         {T::ExclResp, T::TransferAck, T::IntervNack});
    rule(sp, C, M, E::IntervTransfer, {I},
         {T::ExclResp, T::TransferAck});

    // Data replies. Stale replies (txn id mismatch) self-loop.
    for (E e : {E::RespSharedData, E::SharedResp}) {
        rule(sp, C, I, e, {I, S});
        rule(sp, C, S, e, {S});
        rule(sp, C, M, e, {M});
    }
    for (E e : {E::RespExclData, E::ExclResp}) {
        rule(sp, C, I, e, {I, M});
        rule(sp, C, S, e, {S, M});
        rule(sp, C, M, e, {M});
    }
    // An upgrade ack that raced an invalidation re-requests the full
    // line (I -> ReqExcl resend).
    rule(sp, C, I, E::RespUpgradeAck, {I}, {T::ReqExcl});
    rule(sp, C, S, E::RespUpgradeAck, {S, M});
    rule(sp, C, M, E::RespUpgradeAck, {M});
    rule(sp, C, I, E::InvalAck, {I, M});
    rule(sp, C, S, E::InvalAck, {S, M});
    rule(sp, C, M, E::InvalAck, {M});

    // Control replies: acks, NACK retries, hints. A NACK retry may
    // complete a read from a RAC copy that arrived meanwhile (the mc
    // model fuses the NACK and the RAC refill into one transition, so
    // the spec admits I -> S here).
    for (E e : {E::WritebackAck, E::NackNotHome, E::HomeHint}) {
        rule(sp, C, I, e, {I});
        rule(sp, C, S, e, {S});
        rule(sp, C, M, e, {M});
    }
    rule(sp, C, I, E::Nack, {I, S});
    rule(sp, C, S, E::Nack, {S});
    rule(sp, C, M, E::Nack, {M});

    // Speculative updates: may satisfy an outstanding read miss, else
    // land in the RAC (no L2 state change).
    rule(sp, C, I, E::Update, {I, S});
    rule(sp, C, S, E::Update, {S});
    rule(sp, C, M, E::Update, {M});
}

void
buildDirRules(TransitionSpec &sp)
{
    constexpr Ctrl C = Ctrl::Dir;
    constexpr StateId U = static_cast<StateId>(DirState::Unowned);
    constexpr StateId S = static_cast<StateId>(DirState::Shared);
    constexpr StateId X = static_cast<StateId>(DirState::Excl);
    constexpr StateId BR = static_cast<StateId>(DirState::BusyRead);
    constexpr StateId BX = static_cast<StateId>(DirState::BusyExcl);
    constexpr StateId D = static_cast<StateId>(DirState::Dele);
    using E = PEvent;
    using T = MsgType;

    for (DirState ds : {DirState::Unowned, DirState::Shared,
                        DirState::Excl, DirState::BusyRead,
                        DirState::BusyExcl, DirState::Dele})
        sp.declareState(C, static_cast<StateId>(ds), dirStateName(ds));
    sp.setInitial(C, U);

    // Every request self-loops with a NACK when the directory cache
    // set is wedged (all ways busy), independent of the line's state.
    rule(sp, C, U, E::ReqShared, {S, U}, {T::RespSharedData, T::Nack});
    rule(sp, C, S, E::ReqShared, {S}, {T::RespSharedData, T::Nack});
    rule(sp, C, X, E::ReqShared, {BR, X},
         {T::IntervDowngrade, T::Nack});
    rule(sp, C, BR, E::ReqShared, {BR}, {T::Nack});
    rule(sp, C, BX, E::ReqShared, {BX}, {T::Nack});
    rule(sp, C, D, E::ReqShared, {D},
         {T::ReqShared, T::HomeHint, T::Nack});

    // Writes: UNOWNED/SHARED may grant, or delegate to a detected
    // producer (DELE + DELEGATE message) instead.
    rule(sp, C, U, E::ReqExcl, {X, D, U},
         {T::RespExclData, T::Delegate, T::Nack});
    rule(sp, C, S, E::ReqExcl, {X, D, S},
         {T::Inval, T::RespExclData, T::Delegate, T::Nack});
    rule(sp, C, X, E::ReqExcl, {BX, X}, {T::IntervTransfer, T::Nack});
    rule(sp, C, BR, E::ReqExcl, {BR}, {T::Nack});
    rule(sp, C, BX, E::ReqExcl, {BX}, {T::Nack});
    rule(sp, C, D, E::ReqExcl, {D}, {T::ReqExcl, T::HomeHint, T::Nack});

    // Upgrades additionally answer RespUpgradeAck when the requester
    // still holds its SHARED copy.
    rule(sp, C, U, E::ReqUpgrade, {X, D, U},
         {T::RespExclData, T::Delegate, T::Nack});
    rule(sp, C, S, E::ReqUpgrade, {X, D, S},
         {T::Inval, T::RespUpgradeAck, T::RespExclData, T::Delegate,
          T::Nack});
    rule(sp, C, X, E::ReqUpgrade, {BX, X},
         {T::IntervTransfer, T::Nack});
    rule(sp, C, BR, E::ReqUpgrade, {BR}, {T::Nack});
    rule(sp, C, BX, E::ReqUpgrade, {BX}, {T::Nack});
    rule(sp, C, D, E::ReqUpgrade, {D},
         {T::ReqUpgrade, T::HomeHint, T::Nack});

    // Writebacks. A wedged set defers (self-loop, no ack yet); a busy
    // entry absorbs the race (pendingWb) and stays busy.
    rule(sp, C, X, E::WritebackM, {U, X}, {T::WritebackAck});
    rule(sp, C, BR, E::WritebackM, {BR}, {T::WritebackAck});
    rule(sp, C, BX, E::WritebackM, {BX}, {T::WritebackAck});
    sp.declareImpossible(C, U, E::WritebackM,
                         "nothing owns an UNOWNED line");
    sp.declareImpossible(C, S, E::WritebackM,
                         "nothing owns a SHARED line");
    sp.declareImpossible(C, D, E::WritebackM,
                         "owned delegated lines flush via the producer "
                         "table, not WRITEBACK_M to the home");

    rule(sp, C, BR, E::SharedWriteback, {S});
    for (StateId s : {U, S, X, BX, D})
        sp.declareImpossible(C, s, E::SharedWriteback,
                             "SHWB only answers a BUSY_READ "
                             "intervention");

    rule(sp, C, BX, E::TransferAck, {X});
    for (StateId s : {U, S, X, BR, D})
        sp.declareImpossible(C, s, E::TransferAck,
                             "TRANSFER_ACK only answers a BUSY_EXCL "
                             "intervention");

    // Intervention NACKs: the target no longer held the line. With a
    // writeback absorbed meanwhile the home answers from memory; else
    // it NACKs the requester and restores EXCL. Stale ones (wrong
    // pending owner, or the transaction already resolved) self-loop.
    rule(sp, C, BR, E::IntervNack, {S, X, BR},
         {T::RespSharedData, T::Nack});
    rule(sp, C, BX, E::IntervNack, {X, BX}, {T::RespExclData, T::Nack});
    for (StateId s : {U, S, X, D})
        rule(sp, C, s, E::IntervNack, {s});

    // Undelegation hands the directory image back; a wedged set
    // defers (self-loop). Any pending request is re-injected later.
    rule(sp, C, D, E::Undele, {U, S, X, D});
    for (StateId s : {U, S, X, BR, BX})
        sp.declareImpossible(C, s, E::Undele,
                             "only the delegated producer sends "
                             "UNDELE, and only while DELE");
}

void
buildProducerRules(TransitionSpec &sp)
{
    constexpr Ctrl C = Ctrl::Producer;
    using E = PEvent;
    using T = MsgType;

    sp.declareState(C, prodNone, "None");
    sp.declareState(C, prodShared, "Shared");
    sp.declareState(C, prodExcl, "Excl");
    sp.setInitial(C, prodNone);

    // Accepting a delegation. Allocation may fail (immediate UNDELE
    // handback) or the pinned RAC insert may be refused (undelegate);
    // a pending local write is served in the same handler (-> Excl,
    // INVAL fan-out + self grant). Accepting can also capacity-evict
    // a victim entry (nested Evict event).
    rule(sp, C, prodNone, E::Delegate, {prodNone, prodShared, prodExcl},
         {T::Undele, T::Inval, T::RespExclData});
    sp.declareImpossible(C, prodShared, E::Delegate,
                         "the home is DELE while delegated and cannot "
                         "delegate again");
    sp.declareImpossible(C, prodExcl, E::Delegate,
                         "the home is DELE while delegated and cannot "
                         "delegate again");

    // Requests forwarded to the delegated home. Reads are served in
    // place (an owned line is first self-downgraded, possibly pushing
    // UPDATEs); remote writes force undelegation.
    sp.declareImpossible(C, prodNone, E::ReqShared,
                         "the hub routes requests here only while the "
                         "producer table holds the line");
    rule(sp, C, prodShared, E::ReqShared, {prodShared},
         {T::RespSharedData, T::Nack});
    rule(sp, C, prodExcl, E::ReqShared, {prodShared, prodExcl},
         {T::Nack, T::RespSharedData, T::Update});
    for (E e : {E::ReqExcl, E::ReqUpgrade}) {
        sp.declareImpossible(C, prodNone, e,
                             "the hub routes requests here only while "
                             "the producer table holds the line");
        rule(sp, C, prodShared, e, {prodExcl, prodNone, prodShared},
             {T::Inval, T::RespExclData, T::Undele, T::Nack});
        rule(sp, C, prodExcl, e, {prodNone, prodExcl},
             {T::Undele, T::Nack});
    }

    // Local epoch bookkeeping: completing a write only arms the
    // delayed-intervention timer.
    for (StateId s : {prodNone, prodShared, prodExcl})
        rule(sp, C, s, E::LocalWriteComplete, {s});

    // The delayed self-intervention downgrades an owned line and
    // pushes speculative updates; stale timers self-loop.
    rule(sp, C, prodNone, E::DelayedInterv, {prodNone});
    rule(sp, C, prodShared, E::DelayedInterv, {prodShared});
    rule(sp, C, prodExcl, E::DelayedInterv, {prodShared, prodExcl},
         {T::Update});

    // Local eviction of the delegated line's data copy.
    sp.declareImpossible(C, prodNone, E::LocalFlush,
                         "only delegated lines flush through the "
                         "producer table");
    rule(sp, C, prodShared, E::LocalFlush, {prodShared});
    rule(sp, C, prodExcl, E::LocalFlush, {prodShared}, {T::Update});

    // RAC pressure against the pinned surrogate-memory entry: give
    // the line back unless a local miss is in flight.
    rule(sp, C, prodNone, E::RacPressure, {prodNone});
    rule(sp, C, prodShared, E::RacPressure, {prodNone, prodShared},
         {T::Undele});
    rule(sp, C, prodExcl, E::RacPressure, {prodNone, prodExcl},
         {T::Undele});

    // Producer-table capacity eviction undelegates the victim.
    sp.declareImpossible(C, prodNone, E::Evict,
                         "the producer table stores no empty entries");
    rule(sp, C, prodShared, E::Evict, {prodNone}, {T::Undele});
    rule(sp, C, prodExcl, E::Evict, {prodNone}, {T::Undele});
}

// --- Write-update / adaptive-hybrid policies ------------------------
//
// The update-based policies (src/protocol/policy.hh) speak a much
// smaller vocabulary: caches only ever hold INVALID or SHARED lines
// (stores self-downgrade within the UpdGrant handler), the directory
// serializes write episodes through BUSY_UPD, and the producer table
// is never engaged. Each spec carries its own relevantEvents override
// so the unhandled-pair lint pass matches that vocabulary.

void
buildUpdateCacheRules(TransitionSpec &sp, bool adaptive)
{
    constexpr Ctrl C = Ctrl::Cache;
    constexpr StateId I = static_cast<StateId>(LineState::Invalid);
    constexpr StateId S = static_cast<StateId>(LineState::Shared);
    using E = PEvent;
    using T = MsgType;

    sp.declareState(C, I, lineStateName(LineState::Invalid));
    sp.declareState(C, S, lineStateName(LineState::Shared));
    // MODIFIED/EXCLUSIVE are deliberately undeclared: the UpdGrant
    // handler performs the store and self-downgrades to SHARED before
    // returning, so no owned state is observable at an event boundary.
    sp.setInitial(C, I);

    // Processor accesses (no RAC under update-based policies, so a
    // load miss cannot fill within its own handler).
    rule(sp, C, I, E::CpuLoad, {I}, {T::ReqShared});
    rule(sp, C, S, E::CpuLoad, {S});
    rule(sp, C, I, E::CpuStore, {I}, {T::ReqExcl});
    rule(sp, C, S, E::CpuStore, {S}, {T::ReqUpgrade});

    // Replacement: SHARED copies are silently dropped (the home keeps
    // the node listed and keeps updating; pushes land at INVALID).
    sp.declareImpossible(C, I, E::Evict,
                         "the L2 array stores no invalid entries");
    rule(sp, C, S, E::Evict, {I});

    // Read data replies; stale ones (txn id mismatch) self-loop.
    rule(sp, C, I, E::RespSharedData, {I, S});
    rule(sp, C, S, E::RespSharedData, {S});

    // The write grant: perform the store, self-downgrade to SHARED
    // and return the new data to the home in the same handler.
    rule(sp, C, I, E::UpdGrant, {I, S}, {T::UpdateWB});
    rule(sp, C, S, E::UpdGrant, {S}, {T::UpdateWB});

    // Pushed updates refresh the SHARED copy in place (the adaptive
    // hybrid may instead self-invalidate and leave the stream), or
    // satisfy an outstanding read miss.
    rule(sp, C, I, E::Update, {I, S});
    if (adaptive)
        rule(sp, C, S, E::Update, {S, I}, {T::UpdateDrop});
    else
        rule(sp, C, S, E::Update, {S});

    // NACK retries reschedule outside the handler.
    rule(sp, C, I, E::Nack, {I});
    rule(sp, C, S, E::Nack, {S});

    std::vector<PEvent> ev = {E::CpuLoad, E::CpuStore,  E::Evict,
                              E::RespSharedData, E::UpdGrant,
                              E::Update,  E::Nack};
    sp.setRelevantEvents(C, std::move(ev));
}

void
buildUpdateDirRules(TransitionSpec &sp, bool adaptive)
{
    constexpr Ctrl C = Ctrl::Dir;
    constexpr StateId U = static_cast<StateId>(DirState::Unowned);
    constexpr StateId S = static_cast<StateId>(DirState::Shared);
    constexpr StateId BU = static_cast<StateId>(DirState::BusyUpd);
    using E = PEvent;
    using T = MsgType;

    for (DirState ds :
         {DirState::Unowned, DirState::Shared, DirState::BusyUpd})
        sp.declareState(C, static_cast<StateId>(ds), dirStateName(ds));
    sp.setInitial(C, U);

    // Reads are served from memory in every stable state; a wedged
    // directory-cache set NACKs with the state untouched.
    rule(sp, C, U, E::ReqShared, {S, U}, {T::RespSharedData, T::Nack});
    rule(sp, C, S, E::ReqShared, {S}, {T::RespSharedData, T::Nack});
    rule(sp, C, BU, E::ReqShared, {BU}, {T::Nack});

    // Writes open an update episode: BUSY_UPD + UpdGrant; a second
    // writer is NACKed until the UpdateWB closes the episode.
    for (E e : {E::ReqExcl, E::ReqUpgrade}) {
        rule(sp, C, U, e, {BU, U}, {T::UpdGrant, T::Nack});
        rule(sp, C, S, e, {BU, S}, {T::UpdGrant, T::Nack});
        rule(sp, C, BU, e, {BU}, {T::Nack});
    }

    // The writer's data return: commit to memory, fan updates out to
    // the other sharers, and list the writer as a sharer.
    rule(sp, C, BU, E::UpdateWB, {S}, {T::Update});
    sp.declareImpossible(C, U, E::UpdateWB,
                         "UpdateWB only closes a BUSY_UPD episode");
    sp.declareImpossible(C, S, E::UpdateWB,
                         "UpdateWB only closes a BUSY_UPD episode");

    if (adaptive) {
        // A consumer leaving the update stream. Exact sharer vectors
        // drop the node; coarse vectors keep the group listed (the
        // consumer keeps dropping pushes at INVALID).
        rule(sp, C, U, E::UpdateDrop, {U});
        rule(sp, C, S, E::UpdateDrop, {S});
        rule(sp, C, BU, E::UpdateDrop, {BU});
    }

    std::vector<PEvent> ev = {E::ReqShared, E::ReqExcl, E::ReqUpgrade,
                              E::UpdateWB};
    if (adaptive)
        ev.push_back(E::UpdateDrop);
    sp.setRelevantEvents(C, std::move(ev));
}

} // namespace

TransitionSpec
buildProtocolSpec()
{
    TransitionSpec sp;
    buildCacheRules(sp);
    buildDirRules(sp);
    buildProducerRules(sp);
    return sp;
}

const TransitionSpec &
protocolSpec()
{
    static const TransitionSpec spec = buildProtocolSpec();
    return spec;
}

TransitionSpec
buildWriteUpdateSpec()
{
    TransitionSpec sp;
    buildUpdateCacheRules(sp, /*adaptive=*/false);
    buildUpdateDirRules(sp, /*adaptive=*/false);
    // The producer table is never engaged: no states declared, so the
    // lint passes have nothing to check there and the runtime observer
    // never sees a producer frame.
    return sp;
}

const TransitionSpec &
writeUpdateSpec()
{
    static const TransitionSpec spec = buildWriteUpdateSpec();
    return spec;
}

TransitionSpec
buildAdaptiveHybridSpec()
{
    TransitionSpec sp;
    buildUpdateCacheRules(sp, /*adaptive=*/true);
    buildUpdateDirRules(sp, /*adaptive=*/true);
    return sp;
}

const TransitionSpec &
adaptiveHybridSpec()
{
    static const TransitionSpec spec = buildAdaptiveHybridSpec();
    return spec;
}

} // namespace pcsim::verify
