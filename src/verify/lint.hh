/**
 * @file
 * Static conformance lint over the declarative transition spec
 * (`pcsim lint`), plus the transition-coverage report
 * (`pcsim lint --coverage <results.json>`).
 *
 * Finding classes:
 *  - "unhandled":   a declared state has neither a rule nor an
 *                   impossible declaration for a relevant event,
 *  - "ambiguous":   duplicate rules for one (state, event) key, or a
 *                   key both ruled and declared impossible,
 *  - "unreachable": a declared state no chain of rules can reach from
 *                   the controller's initial state,
 *  - "mc-mismatch": the src/mc 3-node abstraction, explored
 *                   exhaustively, takes a transition the spec does not
 *                   admit (missing rule, impossible pair, or a next
 *                   state outside the allowed set).
 *
 * The coverage report inverts the runtime feed: it lists every legal
 * (state, event, next) tuple the spec admits and how often recorded
 * runs exercised it, flagging the never-exercised ones.
 */

#ifndef PCSIM_VERIFY_LINT_HH
#define PCSIM_VERIFY_LINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/json.hh"
#include "src/verify/observer.hh"
#include "src/verify/spec.hh"

namespace pcsim::verify
{

/** One lint finding (all fields display-ready). */
struct LintFinding
{
    std::string kind;   ///< finding class (see file header)
    std::string ctrl;   ///< controller name
    std::string state;  ///< state name ("" when not state-specific)
    std::string event;  ///< event name ("" when not event-specific)
    std::string detail; ///< human-readable explanation
};

/** Outcome of the lint passes. */
struct LintReport
{
    std::vector<LintFinding> findings;

    // Model cross-check statistics (zero when the pass was skipped).
    std::uint64_t mcConfigs = 0;
    std::uint64_t mcStates = 0;
    std::uint64_t mcObserved = 0; ///< distinct model transitions

    bool clean() const { return findings.empty(); }
};

/** Run the static passes (unhandled / ambiguous / unreachable). */
LintReport lintSpec(const TransitionSpec &spec);

/** Which family of abstract-model configurations the cross-check
 *  explores (each spec is checked against the models of the policy it
 *  describes; see src/protocol/policy.hh). */
enum class McCheckSet
{
    MesiDele,      ///< base, delegation, delegation+updates
    WriteUpdate,   ///< Dragon-style write-update
    AdaptiveHybrid ///< write-update plus nondeterministic drops
};

/** Static passes plus the model cross-check: explore the 3-node
 *  abstraction under every configuration in @p set and check each
 *  transition taken against @p spec. The default set covers the
 *  MESI-dir + delegation stack (base, delegation, delegation+updates)
 *  and keeps the historical single-argument behaviour. */
LintReport lintSpecWithModel(const TransitionSpec &spec,
                             McCheckSet set = McCheckSet::MesiDele);

JsonValue lintToJson(const TransitionSpec &spec, const LintReport &r);
std::string lintToCsv(const LintReport &r);

/** Findings serialized as the JSON array every lint mode shares
 *  ({"kind", "controller", "state", "event", "detail"} objects). */
JsonValue lintFindingsJson(const std::vector<LintFinding> &findings);

/** lintToJson's body as a per-policy fragment ({"policy": name,
 *  "spec", "model"?, "findings"}) for the combined --policy=all
 *  document. */
JsonValue lintPolicyJson(const std::string &policy,
                         const TransitionSpec &spec,
                         const LintReport &r);

/** Wrap per-policy fragments into the combined multi-policy document:
 *  {"schemaVersion": 1, "generator": "pcsim-lint", "mode": mode,
 *   "policies": [...]}. Used by `pcsim lint --json` for --policy=all
 *  and for the liveness / mdg modes (the classic single-policy
 *  document keeps its historical lintToJson shape). */
JsonValue lintFindingsDocument(const std::string &mode,
                               JsonValue policies);

/** One legal spec transition with its observed exercise count. */
struct CoverageRow
{
    Ctrl ctrl;
    StateId state;
    PEvent event;
    StateId next;
    std::uint64_t count = 0;
};

/** Spec-transition coverage accumulated over recorded runs. */
struct CoverageReport
{
    std::vector<CoverageRow> rows; ///< every legal tuple, spec order
    std::uint64_t legal = 0;       ///< rows.size()
    std::uint64_t exercised = 0;   ///< rows with count > 0
};

/** Fold @p observed (merged across runs) onto the legal tuples of
 *  @p spec. Observed tuples outside the spec are ignored here -- the
 *  runtime hook already fails such runs. */
CoverageReport computeCoverage(const TransitionSpec &spec,
                               const std::vector<TransitionCount> &observed);

JsonValue coverageToJson(const TransitionSpec &spec,
                         const CoverageReport &r);
std::string coverageToCsv(const TransitionSpec &spec,
                          const CoverageReport &r);

} // namespace pcsim::verify

#endif // PCSIM_VERIFY_LINT_HH
