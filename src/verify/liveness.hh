/**
 * @file
 * Liveness lint over the src/mc abstract protocol model
 * (`pcsim lint --liveness`): fairness-constrained SCC analysis of the
 * full explored state graph, finding livelock lassos -- reachable
 * regions from which no run can ever complete another operation or
 * drain to quiescence -- and hard deadlocks, each with a replayable
 * witness.
 *
 * Progress measure: W(s) = sum of remaining read/write budgets plus
 * the number of occupied MSHRs. The model only decrements budgets
 * (stamping the MSHR in the same step) and an MSHR release completes
 * an operation, so W is monotone non-increasing along every edge and
 * an edge that strictly decreases it is exactly a completed read,
 * write, or (for the update policies) write episode.
 *
 * A state is *good* when some path from it reaches a progress edge or
 * a quiescent state; *bad* states are reachable non-good states. The
 * bad region is closed under successors and every edge inside it
 * preserves W, so any cycle through it is a non-progress cycle that
 * survives strong fairness: scheduling every enabled transition
 * infinitely often still completes nothing. This is what separates a
 * livelock from the protocol's benign NACK/retry loops -- a NACKed
 * requester that *can* eventually be serviced has a path to a
 * progress edge and never enters the bad region.
 *
 * Each finding carries a lasso witness: the BFS shortest prefix from
 * the initial state into the bad region plus a cycle within it, with
 * per-hop labels (message deliveries src->dst, sends, CPU op
 * injections and completions) derived by diffing adjacent states.
 * Where the lasso's hops include concrete CPU operations the witness
 * also lists them as per-node op streams, which `pcsim lint
 * --liveness --repro FILE` converts into a replayable PCTR trace.
 */

#ifndef PCSIM_VERIFY_LIVENESS_HH
#define PCSIM_VERIFY_LIVENESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/mc/protocol_model.hh"
#include "src/sim/json.hh"
#include "src/verify/lint.hh"

namespace pcsim::verify
{

/** One named abstract-model configuration of a check-set family. */
struct NamedModelConfig
{
    std::string name;
    mc::ModelConfig cfg;
};

/** The model configurations a check set explores -- shared between
 *  the lint cross-check and the liveness pass so both verify the same
 *  family (3 nodes, write budget 2, read budget 1, one mechanism at a
 *  time). */
std::vector<NamedModelConfig> modelConfigsFor(McCheckSet set);

/** A concrete CPU operation appearing on a witness hop. */
struct WitnessOp
{
    std::uint8_t node = 0;
    bool isWrite = false;
};

/** A livelock lasso (or deadlock path: empty cycle). */
struct LivenessWitness
{
    /** Hop labels along the BFS shortest path from the initial state
     *  to the first bad (resp. deadlocked) state. */
    std::vector<std::string> prefix;
    /** Hop labels around the non-progress cycle (empty: deadlock). */
    std::vector<std::string> cycle;
    /** CPU operations injected along prefix + one cycle lap, in hop
     *  order -- the schedule a repro trace replays. */
    std::vector<WitnessOp> ops;
};

/** One liveness finding: "livelock" or "deadlock". */
struct LivenessFinding
{
    std::string kind;   ///< "livelock" | "deadlock"
    std::string config; ///< model configuration name
    std::string detail; ///< human-readable summary
    LivenessWitness witness;
};

/** Per-configuration exploration statistics. */
struct LivenessConfigStats
{
    std::string name;
    std::uint64_t states = 0;
    std::uint64_t edges = 0;
    std::uint64_t progressEdges = 0;
    std::uint64_t quiescentStates = 0;
    bool completed = false;
};

/** Outcome of the liveness pass over one configuration family. */
struct LivenessReport
{
    std::vector<LivenessConfigStats> configs;
    std::vector<LivenessFinding> findings;

    bool clean() const { return findings.empty(); }
};

/** Explore every configuration in @p configs and analyze its state
 *  graph for livelocks and deadlocks. At most one finding (the one
 *  with the shortest prefix) is reported per configuration -- a bad
 *  region yields one witness, not one per state. */
LivenessReport analyzeLiveness(const std::vector<NamedModelConfig> &configs,
                               std::uint64_t maxStates = 5'000'000);

/** Convenience: analyzeLiveness over modelConfigsFor(set). */
LivenessReport analyzeLiveness(McCheckSet set);

/** Per-policy JSON fragment ({"policy": name, configs, findings}). */
JsonValue livenessPolicyJson(const std::string &policy,
                             const LivenessReport &r);

} // namespace pcsim::verify

#endif // PCSIM_VERIFY_LIVENESS_HH
