/**
 * @file
 * Message-dependency-graph (MDG) analysis over a declarative
 * transition spec (`pcsim lint --mdg`).
 *
 * The pass derives, purely from the spec's allowed-sends sets, a
 * type-level dependency graph: an edge t -> u means some rule that
 * consumes a delivered message of type t is allowed to emit a message
 * of type u while handling it. Consuming t therefore may require
 * channel space for u, so a cycle among types that are not guaranteed
 * consumable is a potential message-dependence deadlock in a bounded-
 * channel network (the classic request/response channel-class
 * argument, checked here mechanically instead of by convention).
 *
 * Sink-ability: a type is a *sink* when every rule that can consume it
 * emits only sinks -- by fixpoint, delivery of a sink never needs
 * unbounded channel space downstream, so responses and pure acks fall
 * out as consumable without being special-cased. Two edge families
 * are exempt from cycle detection because a different mechanism bounds
 * them (both are still reported in the stats):
 *  - requester-bound: a cache-controller rule emitting a request; the
 *    requester's MSHR caps how many such requests are ever in flight,
 *  - NACK-protected: a home/producer rule forwarding a request while
 *    also allowed to NACK it; under pressure the NACK path sheds the
 *    dependency. A request->request forward with *no* NACK in its
 *    allowed-sends set has no shed path and is flagged.
 *
 * Finding classes:
 *  - "channel-cycle":       a dependency cycle among non-sink types
 *                           (after exemptions),
 *  - "unprotected-forward": a home/producer rule forwards a request
 *                           without a NACK escape in its sends set,
 *  - "undeliverable-send":  a type some rule may emit but no rule of
 *                           any controller can consume,
 *  - "channel-capacity":    one rule may emit more same-class messages
 *                           than a bounded channel (src/mc chanDepth)
 *                           can absorb in the worst case.
 *
 * The pass is spec-driven, so every policy registered in
 * src/protocol/policy.* gets it with no per-policy code.
 */

#ifndef PCSIM_VERIFY_MDG_HH
#define PCSIM_VERIFY_MDG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/json.hh"
#include "src/verify/lint.hh"
#include "src/verify/spec.hh"

namespace pcsim::verify
{

/** Coarse channel class of a message type (consumption discipline,
 *  not direction): requests open transactions and may be forwarded or
 *  NACKed; interventions are home/producer-generated fan-outs bounded
 *  by the transaction they serve; responses terminate or bounce a
 *  transaction and must always be consumable. */
enum class MsgClass : std::uint8_t { Request, Intervention, Response };

const char *msgClassName(MsgClass c);
MsgClass msgClassOf(MsgType t);

/** One dependency edge with its provenance rule. */
struct MdgEdge
{
    MsgType from;       ///< consumed (delivered) type
    MsgType to;         ///< type the handling rule may emit
    Ctrl ctrl;          ///< controller of the provenance rule
    StateId state;      ///< state of the provenance rule
    /** Why the edge is exempt from cycle detection (nullptr when it
     *  participates): "requester-bound" or "nack-protected". */
    const char *exempt = nullptr;
};

/** Outcome of the MDG pass for one spec. */
struct MdgReport
{
    std::vector<MsgType> messages; ///< types used by the spec, sorted
    std::vector<MdgEdge> edges;    ///< full graph, rule order
    std::vector<MsgType> sinks;    ///< guaranteed-consumable types
    /** Types the src/mc bounded-channel model does not carry (its
     *  channel-capacity audit is advisory for these). */
    std::vector<MsgType> unmodeled;
    std::uint64_t reissueEdges = 0;       ///< requester-bound exempts
    std::uint64_t nackProtectedEdges = 0; ///< NACK-protected exempts
    std::vector<LintFinding> findings;

    bool clean() const { return findings.empty(); }
};

/** Run the MDG pass over @p spec. */
MdgReport analyzeMdg(const TransitionSpec &spec);

/** Per-policy JSON fragment ({"policy": name, stats..., findings}). */
JsonValue mdgPolicyJson(const std::string &policy,
                        const TransitionSpec &spec, const MdgReport &r);

} // namespace pcsim::verify

#endif // PCSIM_VERIFY_MDG_HH
