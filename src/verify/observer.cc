#include "src/verify/observer.hh"

#include <algorithm>
#include <cstdio>

#include "src/sim/logging.hh"

namespace pcsim::verify
{

std::vector<TransitionObserver::Frame> &
TransitionObserver::stack()
{
    static thread_local std::vector<Frame> frames;
    return frames;
}

void
TransitionObserver::begin(Ctrl c, NodeId node, Addr line, StateId pre,
                          PEvent ev)
{
    Frame f{_spec.find(c, pre, ev), c, node, line, pre, ev};
    if (!f.rule) {
        violation(f,
                  _spec.isImpossible(c, pre, ev)
                      ? "event declared impossible in this state"
                      : "no rule for this (state, event) pair",
                  "");
    }
    stack().push_back(f);
}

void
TransitionObserver::noteSend(const Message &msg)
{
    if (stack().empty())
        return;
    const Frame &f = stack().back();
    if (!f.rule->allowsSend(msg.type)) {
        violation(f, "handler sent a message the spec does not allow",
                  std::string("sent ") + msgTypeName(msg.type));
    }
}

void
TransitionObserver::end(StateId post)
{
    const Frame f = stack().back();
    stack().pop_back();
    if (!f.rule->allowsNext(post)) {
        violation(f, "next state outside the spec's allowed set",
                  "went to " + _spec.stateName(f.ctrl, post));
    }
    const std::uint32_t key =
        (static_cast<std::uint32_t>(f.ctrl) << 24) |
        (static_cast<std::uint32_t>(f.pre) << 16) |
        (static_cast<std::uint32_t>(f.event) << 8) |
        static_cast<std::uint32_t>(post);
    std::unique_lock<std::mutex> lk(_mutex, std::defer_lock);
    if (_parallel)
        lk.lock();
    ++_counts[key];
}

std::vector<TransitionCount>
TransitionObserver::coverage() const
{
    std::vector<std::pair<std::uint32_t, std::uint64_t>> flat(
        _counts.begin(), _counts.end());
    std::sort(flat.begin(), flat.end());
    std::vector<TransitionCount> out;
    out.reserve(flat.size());
    for (const auto &[key, count] : flat) {
        TransitionCount t;
        t.ctrl = static_cast<std::uint8_t>(key >> 24);
        t.state = static_cast<std::uint8_t>(key >> 16);
        t.event = static_cast<std::uint8_t>(key >> 8);
        t.next = static_cast<std::uint8_t>(key);
        t.count = count;
        out.push_back(t);
    }
    return out;
}

void
TransitionObserver::violation(const Frame &f, const char *what,
                              const std::string &detail) const
{
    std::string trace = _trace
                            ? _trace->format(f.line)
                            : std::string("  (message trace disabled)\n");
    panic("conformance violation: %s\n"
          "  controller %s, node %u, line %#llx\n"
          "  state %s, event %s%s%s\n"
          "recent messages for this line:\n%s",
          what, ctrlName(f.ctrl), unsigned(f.node),
          static_cast<unsigned long long>(f.line),
          _spec.stateName(f.ctrl, f.pre).c_str(), eventName(f.event),
          detail.empty() ? "" : ", ", detail.c_str(), trace.c_str());
}

} // namespace pcsim::verify
