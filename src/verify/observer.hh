/**
 * @file
 * Runtime conformance hook: cross-checks every transition the
 * protocol controllers take against the declarative spec.
 *
 * Each controller handler opens a ConformanceScope around its body.
 * The scope samples the line's state on entry, registers an event
 * frame with the per-run TransitionObserver, and on exit samples the
 * state again and reports (state, event, next). The observer fails
 * the run (panic with node, line address and recent message trace)
 * when
 *  - the (state, event) pair has no rule or is declared impossible,
 *  - the handler sent a message type the rule does not allow, or
 *  - the next state is outside the rule's allowed set.
 *
 * Frames nest (LIFO): a handler that synchronously triggers another
 * protocol action -- e.g. a fill evicting a victim, or an eviction
 * flushing a delegated line -- opens an inner scope, and sends
 * attribute to the innermost frame. Sends with no frame open (NACK
 * bounces, scheduled retries) are ignored.
 *
 * The observer also accumulates per-transition counts, exported into
 * RunResult as the coverage feed for `pcsim lint --coverage`.
 */

#ifndef PCSIM_VERIFY_OBSERVER_HH
#define PCSIM_VERIFY_OBSERVER_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/types.hh"
#include "src/verify/spec.hh"
#include "src/verify/trace.hh"

namespace pcsim::verify
{

/** One observed (controller, state, event, next) with its count. */
struct TransitionCount
{
    std::uint8_t ctrl = 0;
    std::uint8_t state = 0;
    std::uint8_t event = 0;
    std::uint8_t next = 0;
    std::uint64_t count = 0;
};

/** Per-run spec cross-checker and transition-coverage counter. */
class TransitionObserver
{
  public:
    explicit TransitionObserver(const TransitionSpec &spec,
                                const MessageTrace *trace = nullptr)
        : _spec(spec), _trace(trace)
    {
    }

    /** Open an event frame (called by ConformanceScope). */
    void begin(Ctrl c, NodeId node, Addr line, StateId pre, PEvent ev);
    /** Check a send against the innermost open frame (no-op when no
     *  frame is open). */
    void noteSend(const Message &msg);
    /** Close the innermost frame with the observed next state. */
    void end(StateId post);

    /** Observed transitions, sorted (deterministic). */
    std::vector<TransitionCount> coverage() const;

    const TransitionSpec &spec() const { return _spec; }

    /** Parallel-kernel mode: guard the coverage counts with a mutex
     *  (handlers run on shard worker threads). Frames themselves live
     *  in thread-local storage -- they nest strictly within one event
     *  execution -- so begin/noteSend stay lock-free. */
    void setParallel(bool on) { _parallel = on; }

  private:
    struct Frame
    {
        const TransitionRule *rule;
        Ctrl ctrl;
        NodeId node;
        Addr line;
        StateId pre;
        PEvent event;
    };

    /** The calling thread's frame stack (empty between events, so
     *  sharing one per thread across observers is safe). */
    static std::vector<Frame> &stack();

    [[noreturn]] void violation(const Frame &f, const char *what,
                                const std::string &detail) const;

    const TransitionSpec &_spec;
    const MessageTrace *_trace;
    bool _parallel = false;
    mutable std::mutex _mutex;
    std::unordered_map<std::uint32_t, std::uint64_t> _counts;
};

/**
 * RAII frame for one controller handler. @p GetState is a callable
 * sampling the line's current state (it must be side-effect free --
 * in particular it must not touch LRU bookkeeping). Pass a null
 * observer to compile the hook out of the path at runtime.
 */
template <typename GetState>
class ConformanceScope
{
  public:
    ConformanceScope(TransitionObserver *obs, Ctrl c, NodeId node,
                     Addr line, PEvent ev, GetState get)
        : _obs(obs), _get(std::move(get))
    {
        if (_obs)
            _obs->begin(c, node, line, static_cast<StateId>(_get()),
                        ev);
    }

    ConformanceScope(const ConformanceScope &) = delete;
    ConformanceScope &operator=(const ConformanceScope &) = delete;

    ~ConformanceScope()
    {
        if (_obs)
            _obs->end(_post >= 0 ? static_cast<StateId>(_post)
                                 : static_cast<StateId>(_get()));
    }

    /** Report this state on exit instead of re-sampling (needed when
     *  the sampled slot is recycled before the scope closes, e.g. a
     *  cache victim whose way is reallocated to the filling line). */
    void overridePost(StateId s) { _post = static_cast<int>(s); }

  private:
    TransitionObserver *_obs;
    GetState _get;
    int _post = -1;
};

template <typename GetState>
ConformanceScope(TransitionObserver *, Ctrl, NodeId, Addr, PEvent,
                 GetState) -> ConformanceScope<GetState>;

} // namespace pcsim::verify

#endif // PCSIM_VERIFY_OBSERVER_HH
