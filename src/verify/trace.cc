#include "src/verify/trace.hh"

#include <cstdio>

namespace pcsim::verify
{

void
MessageTrace::record(const Message &msg, Tick when)
{
    std::unique_lock<std::mutex> lk(_mutex, std::defer_lock);
    if (_parallel)
        lk.lock();
    Ring &ring = _byLine[msg.addr];
    Record &r = ring.recs[ring.head];
    r.when = when;
    r.type = msg.type;
    r.src = msg.src;
    r.dst = msg.dst;
    r.requester = msg.requester;
    r.version = msg.version;
    r.txnId = msg.txnId;
    ring.head = (ring.head + 1) % depth;
    if (ring.count < depth)
        ++ring.count;
}

std::string
MessageTrace::format(Addr line) const
{
    std::unique_lock<std::mutex> lk(_mutex, std::defer_lock);
    if (_parallel)
        lk.lock();
    auto it = _byLine.find(line);
    if (it == _byLine.end() || it->second.count == 0)
        return "  (no messages recorded for this line)\n";

    const Ring &ring = it->second;
    std::string out;
    const std::size_t first =
        (ring.head + depth - ring.count) % depth;
    for (std::size_t i = 0; i < ring.count; ++i) {
        const Record &r = ring.recs[(first + i) % depth];
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "  [%12llu] %-15s %3u -> %-3u req=%u ver=%u "
                      "txn=%llu\n",
                      static_cast<unsigned long long>(r.when),
                      msgTypeName(r.type), unsigned(r.src),
                      unsigned(r.dst), unsigned(r.requester),
                      unsigned(r.version),
                      static_cast<unsigned long long>(r.txnId));
        out += buf;
    }
    return out;
}

} // namespace pcsim::verify
