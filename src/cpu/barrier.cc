#include "src/cpu/barrier.hh"

#include <algorithm>

#include "src/protocol/hub.hh"
#include "src/sim/logging.hh"

namespace pcsim
{

BarrierDriver::BarrierDriver(EventQueue &eq, std::vector<Hub *> hubs,
                             Addr base, std::uint32_t line_bytes,
                             Tick spin_delay)
    : _eq(eq),
      _hubs(std::move(hubs)),
      _base(base),
      _lineBytes(line_bytes),
      _spinDelay(spin_delay),
      _genOfCpu(_hubs.size(), 0)
{
    if (_hubs.empty())
        fatal("barrier driver needs at least one CPU");
}

Addr
BarrierDriver::regionBytes() const
{
    return (_hubs.size() + 1) * static_cast<Addr>(_lineBytes);
}

void
BarrierDriver::arrive(unsigned cpu, std::function<void()> done)
{
    const std::uint64_t gen = ++_genOfCpu.at(cpu);

    if (_hubs.size() == 1) {
        // Degenerate single-CPU system.
        cpuPassed(cpu, gen, std::move(done));
        return;
    }

    if (cpu == 0) {
        // Master: first post its own arrival implicitly by starting to
        // collect the slaves' arrival flags.
        masterCollect(1, gen, std::move(done));
    } else {
        // Slave: publish arrival (one write), then spin on release.
        _hubs[cpu]->cpuAccess(
            /*is_write=*/true, arrivalLine(cpu),
            [this, cpu, gen, done = std::move(done)](Version) mutable {
                slaveSpin(cpu, gen, std::move(done));
            });
    }
}

void
BarrierDriver::masterCollect(unsigned next_slave, std::uint64_t gen,
                             std::function<void()> done)
{
    if (next_slave >= _hubs.size()) {
        // Everyone arrived: publish the release (one write), then the
        // master itself may pass.
        _hubs[0]->cpuAccess(
            /*is_write=*/true, releaseLine(),
            [this, gen, done = std::move(done)](Version) mutable {
                cpuPassed(0, gen, std::move(done));
            });
        return;
    }

    _hubs[0]->cpuAccess(
        /*is_write=*/false, arrivalLine(next_slave),
        [this, next_slave, gen,
         done = std::move(done)](Version v) mutable {
            if (v >= gen) {
                masterCollect(next_slave + 1, gen, std::move(done));
            } else {
                // Respin on the master hub's shard queue (== _eq under
                // the sequential kernel).
                _hubs[0]->eventQueue().scheduleIn(
                    _spinDelay, [this, next_slave, gen,
                                 done = std::move(done)]() mutable {
                        masterCollect(next_slave, gen, std::move(done));
                    });
            }
        });
}

void
BarrierDriver::slaveSpin(unsigned cpu, std::uint64_t gen,
                         std::function<void()> done)
{
    _hubs[cpu]->cpuAccess(
        /*is_write=*/false, releaseLine(),
        [this, cpu, gen, done = std::move(done)](Version v) mutable {
            if (v >= gen) {
                cpuPassed(cpu, gen, std::move(done));
            } else {
                _hubs[cpu]->eventQueue().scheduleIn(
                    _spinDelay, [this, cpu, gen,
                                 done = std::move(done)]() mutable {
                        slaveSpin(cpu, gen, std::move(done));
                    });
            }
        });
}

void
BarrierDriver::cpuPassed(unsigned cpu, std::uint64_t gen,
                         std::function<void()> done)
{
    (void)gen;
    const Tick pass_tick = _hubs[cpu]->eventQueue().curTick();
    std::uint64_t completed = 0;
    Tick max_pass = 0;
    {
        std::lock_guard<std::mutex> lk(_passMutex);
        _maxPassTick = std::max(_maxPassTick, pass_tick);
        if (++_passedCount == _hubs.size()) {
            _passedCount = 0;
            ++_gensDone;
            completed = _gensDone;
            max_pass = _maxPassTick;
            _maxPassTick = 0;
        }
    }
    if (completed && _onGeneration)
        _onGeneration(completed, max_pass);
    done();
}

} // namespace pcsim
