/**
 * @file
 * Simple in-order processor model.
 *
 * Executes its workload stream one operation at a time: think time
 * models the non-memory instructions between references; loads and
 * stores block until the coherence protocol completes them (the
 * mechanisms under study attack exposed remote-miss latency, so an
 * in-order core preserves the relative effects; see DESIGN.md).
 */

#ifndef PCSIM_CPU_CPU_HH
#define PCSIM_CPU_CPU_HH

#include <functional>

#include "src/cpu/barrier.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/types.hh"
#include "src/workload/workload.hh"

namespace pcsim
{

class Hub;

/** One processor. */
class Cpu : public SimObject
{
  public:
    Cpu(EventQueue &eq, Hub &hub, Workload &workload,
        BarrierDriver &barrier, unsigned cpu_id);

    /** Begin executing the workload stream. */
    void start();

    bool done() const { return _done; }
    Tick finishedAt() const { return _finishedAt; }
    std::uint64_t opsExecuted() const { return _ops; }

    /** Invoked once when the stream ends. */
    void setOnDone(std::function<void()> fn) { _onDone = std::move(fn); }

  private:
    void nextOp();

    Hub &_hub;
    Workload &_workload;
    BarrierDriver &_barrier;
    unsigned _cpuId;
    bool _done = false;
    Tick _finishedAt = 0;
    std::uint64_t _ops = 0;
    std::function<void()> _onDone;
};

} // namespace pcsim

#endif // PCSIM_CPU_CPU_HH
