#include "src/cpu/cpu.hh"

#include "src/protocol/hub.hh"
#include "src/sim/logging.hh"

namespace pcsim
{

Cpu::Cpu(EventQueue &eq, Hub &hub, Workload &workload,
         BarrierDriver &barrier, unsigned cpu_id)
    : SimObject(eq, "cpu" + std::to_string(cpu_id)),
      _hub(hub),
      _workload(workload),
      _barrier(barrier),
      _cpuId(cpu_id)
{
}

void
Cpu::start()
{
    _eq.scheduleIn(0, [this]() { nextOp(); });
}

void
Cpu::nextOp()
{
    MemOp op;
    if (!_workload.next(_cpuId, op)) {
        _done = true;
        _finishedAt = curTick();
        PCSIM_DPRINTF(DebugCpu, curTick(), "cpu%u: done after %llu ops",
                      _cpuId, (unsigned long long)_ops);
        if (_onDone)
            _onDone();
        return;
    }
    ++_ops;

    switch (op.kind) {
      case MemOp::Kind::Think:
        _eq.scheduleIn(std::max<std::uint32_t>(1, op.cycles),
                       [this]() { nextOp(); });
        break;
      case MemOp::Kind::Read:
        _hub.cpuAccess(false, op.addr, [this](Version) { nextOp(); });
        break;
      case MemOp::Kind::Write:
        _hub.cpuAccess(true, op.addr, [this](Version) { nextOp(); });
        break;
      case MemOp::Kind::Barrier:
        _barrier.arrive(_cpuId, [this]() { nextOp(); });
        break;
    }
}

} // namespace pcsim
