/**
 * @file
 * Master/slave flag barrier executed as real coherence traffic.
 *
 * Layout (one line per flag; first-touch places each at its writer):
 *  - arrival line of CPU s: written by s once per barrier; read
 *    (spun on) by the master -> single-producer / single-consumer,
 *  - release line: written by the master once per barrier; spun on by
 *    all slaves -> single-producer / many-consumer.
 *
 * This is the OpenMP-style barrier structure that produces the
 * "reload flurry" of Section 3.2: the release write invalidates all
 * spinners, they re-read simultaneously, and the home NACKs requests
 * while the line is BUSY. With delegation + speculative updates the
 * release data is instead pushed into the spinners' RACs.
 *
 * Data values are line Versions: CPU s's arrival for generation g is
 * observed once its arrival line's version reaches g (each barrier
 * performs exactly one write per flag line).
 */

#ifndef PCSIM_CPU_BARRIER_HH
#define PCSIM_CPU_BARRIER_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/sim/event_queue.hh"
#include "src/sim/types.hh"

namespace pcsim
{

class Hub;

/** Coordinates barrier episodes across all CPUs. */
class BarrierDriver
{
  public:
    /**
     * @param hubs       one hub per CPU (CPU i issues through hubs[i]).
     * @param base       address of the barrier flag region.
     * @param line_bytes coherence line size (flag spacing).
     * @param spin_delay cycles between spin polls.
     */
    BarrierDriver(EventQueue &eq, std::vector<Hub *> hubs, Addr base,
                  std::uint32_t line_bytes, Tick spin_delay = 30);

    /** CPU @p cpu reached a barrier; @p done fires when it may pass. */
    void arrive(unsigned cpu, std::function<void()> done);

    /**
     * Invoked each time every CPU has passed generation @p gen.
     * @p max_pass_tick is the largest shard-local tick at which any
     * CPU passed -- a commutative max, so it is the same value no
     * matter which order the per-shard pass events were observed in
     * (the System derives the S-invariant stats-reset boundary from
     * it).
     */
    void
    setOnGeneration(
        std::function<void(std::uint64_t gen, Tick max_pass_tick)> fn)
    {
        _onGeneration = std::move(fn);
    }

    std::uint64_t generationsCompleted() const { return _gensDone; }

    /** Bytes of address space the flag region occupies. */
    Addr regionBytes() const;

  private:
    Addr arrivalLine(unsigned cpu) const
    {
        return _base + (1 + static_cast<Addr>(cpu)) * _lineBytes;
    }
    Addr releaseLine() const { return _base; }

    void masterCollect(unsigned next_slave, std::uint64_t gen,
                       std::function<void()> done);
    void slaveSpin(unsigned cpu, std::uint64_t gen,
                   std::function<void()> done);
    void cpuPassed(unsigned cpu, std::uint64_t gen,
                   std::function<void()> done);

    EventQueue &_eq;
    std::vector<Hub *> _hubs;
    Addr _base;
    std::uint32_t _lineBytes;
    Tick _spinDelay;

    std::vector<std::uint64_t> _genOfCpu;
    /** Guards the pass bookkeeping below: under the parallel kernel
     *  CPUs pass on their shard's worker thread. */
    std::mutex _passMutex;
    std::uint64_t _gensDone = 0;
    unsigned _passedCount = 0;
    Tick _maxPassTick = 0;
    std::function<void(std::uint64_t, Tick)> _onGeneration;
};

} // namespace pcsim

#endif // PCSIM_CPU_BARRIER_HH
