#include "src/protocol/hub.hh"

#include "src/protocol/policy.hh"
#include "src/sim/logging.hh"
#include "src/verify/observer.hh"
#include "src/verify/trace.hh"

namespace pcsim
{

Hub::Hub(EventQueue &eq, Network &net, MemoryMap &mem_map,
         CoherenceChecker &checker, const ProtocolConfig &cfg, NodeId id,
         Rng rng)
    : SimObject(eq, "hub" + std::to_string(id)),
      _id(id),
      _cfg(cfg),
      _net(net),
      _memMap(mem_map),
      _checker(checker),
      _policy(&policyFor(cfg.kind))
{
    if (cfg.delegationEnabled() && !cfg.racEnabled)
        fatal("delegation requires a RAC (pinned surrogate memory)");
    if (cfg.updatesEnabled() && !cfg.delegationEnabled())
        fatal("speculative updates require delegation");

    if (cfg.racEnabled)
        _rac = std::make_unique<Rac>(cfg.rac, rng.fork());
    if (cfg.delegationEnabled())
        _delegate = std::make_unique<DelegateCache>(cfg.delegate,
                                                    rng.fork());

    _cacheCtrl = std::make_unique<CacheController>(*this, rng.fork());
    _dirCtrl = std::make_unique<DirController>(*this, rng.fork());
    _prodCtrl = std::make_unique<ProducerController>(*this);

    _stats.detectorBitsPerEntry = pcDetectorBitsPerEntry(cfg.numNodes);

    net.registerHandler(id, this);
    checker.addNode(this);
}

Hub::~Hub() = default;

void
Hub::cpuAccess(bool is_write, Addr addr, AccessCallback done)
{
    _cacheCtrl->access(is_write, addr, std::move(done));
}

void
Hub::send(const Message &msg)
{
    if (_observer)
        _observer->noteSend(msg);
    Message *pm = _net.acquireMessage();
    *pm = msg;
    pm->src = _id;
    _net.sendAcquired(pm);
}

void
Hub::sendAt(Tick when, const Message &msg)
{
    if (_observer)
        _observer->noteSend(msg);
    Message *pm = _net.acquireMessage();
    *pm = msg;
    pm->src = _id;
    _eq.schedule(when, [this, pm]() { _net.sendAcquired(pm); });
}

std::string
Hub::lineTrace(Addr line) const
{
    return _trace ? _trace->format(line) : std::string();
}

void
Hub::handleMessage(const Message &msg)
{
    PCSIM_DPRINTF(DebugCache, curTick(), "hub%u: rx %s", _id,
                  msg.toString().c_str());

    if (_trace)
        _trace->record(msg, curTick());

    switch (msg.type) {
      case MsgType::ReqShared:
      case MsgType::ReqExcl:
      case MsgType::ReqUpgrade:
        if (_cfg.delegationEnabled() && _prodCtrl->isDelegated(msg.addr)) {
            _prodCtrl->handleRequest(msg);
        } else if (homeOf(msg.addr) == _id) {
            _dirCtrl->handleRequest(msg);
        } else {
            // A stale consumer-table hint pointed here after we
            // undelegated: bounce the requester back to the home.
            Message nack;
            nack.type = MsgType::NackNotHome;
            nack.addr = msg.addr;
            nack.dst = msg.requester;
            nack.txnId = msg.txnId;
            send(nack);
        }
        break;

      case MsgType::WritebackM:
        if (homeOf(msg.addr) != _id)
            panic("hub%u: writeback for line not homed here", _id);
        _dirCtrl->handleWriteback(msg);
        break;

      case MsgType::SharedWriteback:
        _dirCtrl->handleSharedWriteback(msg);
        break;
      case MsgType::TransferAck:
        _dirCtrl->handleTransferAck(msg);
        break;
      case MsgType::IntervNack:
        _dirCtrl->handleIntervNack(msg);
        break;
      case MsgType::Undele:
        _dirCtrl->handleUndele(msg);
        break;

      case MsgType::Delegate:
        _prodCtrl->handleDelegate(msg);
        break;

      case MsgType::Inval:
      case MsgType::IntervDowngrade:
      case MsgType::IntervTransfer:
        _cacheCtrl->handleIntervention(msg);
        break;

      case MsgType::Update:
        _cacheCtrl->handleUpdate(msg);
        break;

      case MsgType::UpdateWB:
        if (homeOf(msg.addr) != _id)
            panic("hub%u: UpdateWB for line not homed here", _id);
        _dirCtrl->handleUpdateWB(msg);
        break;
      case MsgType::UpdateDrop:
        _dirCtrl->handleUpdateDrop(msg);
        break;

      case MsgType::HomeHint:
        _cacheCtrl->handleHomeHint(msg);
        break;

      default:
        // Everything else is a response to one of our requests.
        _cacheCtrl->handleResponse(msg);
        break;
    }
}

LineState
Hub::l2State(Addr line, Version &version) const
{
    return _cacheCtrl->l2State(line, version);
}

bool
Hub::racCopy(Addr line, Version &version, bool &pinned) const
{
    if (!_rac)
        return false;
    const RacEntry *e = _rac->find(line);
    if (!e)
        return false;
    version = e->version;
    pinned = e->pinned;
    return true;
}

const ProducerEntry *
Hub::producerEntry(Addr line) const
{
    return _prodCtrl->entryFor(line);
}

DirEntry
Hub::homeDirEntry(Addr line) const
{
    return _dirCtrl->dirEntry(line);
}

} // namespace pcsim
