#include "src/protocol/checker.hh"

#include "src/sim/logging.hh"

namespace pcsim
{

Version
CoherenceChecker::storePerformed(NodeId node, Addr line,
                                 Version copy_version)
{
    if (!_enabled)
        return _authority.bump(line);

    ++_numChecks;
    const Version cur = _authority.current(line);
    if (copy_version != cur) {
        panic("lost update: node %u stores to 0x%llx from version %u "
              "but current is %u",
              node, (unsigned long long)line, copy_version, cur);
    }

    // Single-writer: no other node may hold any readable copy at the
    // instant a store performs (all invalidation acks collected).
    for (std::size_t n = 0; n < _nodes.size(); ++n) {
        if (n == node)
            continue;
        Version v;
        LineState s = _nodes[n]->l2State(line, v);
        if (s != LineState::Invalid) {
            panic("single-writer violated: node %u stores to 0x%llx "
                  "while node %zu holds %s",
                  node, (unsigned long long)line, n, lineStateName(s));
        }
        bool pinned;
        if (_nodes[n]->racCopy(line, v, pinned)) {
            panic("single-writer violated: node %u stores to 0x%llx "
                  "while node %zu holds a RAC copy (pinned=%d)",
                  node, (unsigned long long)line, n, pinned);
        }
    }

    const Version nv = _authority.bump(line);
    _lastSeen[key(node, line)] = nv;
    return nv;
}

void
CoherenceChecker::loadPerformed(NodeId node, Addr line, Version version)
{
    if (!_enabled)
        return;

    ++_numChecks;
    const Version cur = _authority.current(line);
    if (version > cur) {
        panic("load from the future: node %u read 0x%llx version %u, "
              "current %u",
              node, (unsigned long long)line, version, cur);
    }
    auto &seen = _lastSeen[key(node, line)];
    if (version < seen) {
        panic("non-monotonic read: node %u read 0x%llx version %u "
              "after having seen %u",
              node, (unsigned long long)line, version, seen);
    }
    seen = version;
}

void
CoherenceChecker::checkLineQuiescent(Addr line, Version cur,
                                     NodeId home) const
{
    ++_numChecks;

    unsigned owners = 0;
    NodeId ownerNode = invalidNode;
    SharerSet holders; // exact (granularity 1) regardless of config

    for (std::size_t n = 0; n < _nodes.size(); ++n) {
        Version v;
        LineState s = _nodes[n]->l2State(line, v);
        bool holds = false;
        if (s == LineState::Modified || s == LineState::Exclusive) {
            ++owners;
            ownerNode = static_cast<NodeId>(n);
            holds = true;
            if (v != cur) {
                panic("quiescent: owner node %zu of 0x%llx has version "
                      "%u, current %u",
                      n, (unsigned long long)line, v, cur);
            }
        } else if (s == LineState::Shared) {
            holds = true;
            if (v != cur) {
                panic("quiescent: sharer node %zu of 0x%llx has "
                      "version %u, current %u",
                      n, (unsigned long long)line, v, cur);
            }
        }

        bool pinned;
        if (_nodes[n]->racCopy(line, v, pinned)) {
            holds = true;
            // A pinned copy shadowed by the local M/E processor copy
            // may be one epoch behind; any other RAC copy must be
            // current.
            const bool shadowed =
                pinned && (s == LineState::Modified ||
                           s == LineState::Exclusive);
            if (!shadowed && v != cur) {
                panic("quiescent: RAC copy at node %zu of 0x%llx has "
                      "version %u, current %u",
                      n, (unsigned long long)line, v, cur);
            }
        }
        if (holds)
            holders.add(static_cast<NodeId>(n));
    }

    if (owners > 1)
        panic("quiescent: %u owners of 0x%llx", owners,
              (unsigned long long)line);
    if (owners == 1) {
        SharerSet others = holders;
        others.remove(ownerNode);
        if (!others.empty()) {
            panic("quiescent: owner %u of 0x%llx coexists with "
                  "holders %s",
                  ownerNode, (unsigned long long)line,
                  others.toString().c_str());
        }
    }

    // Directory consistency at the home (or its delegate).
    DirEntry dir = _nodes[home]->homeDirEntry(line);
    if (dir.busy())
        panic("quiescent: home of 0x%llx is busy",
              (unsigned long long)line);

    if (dir.state == DirState::Dele) {
        const ProducerEntry *pe =
            _nodes[dir.owner]->producerEntry(line);
        if (!pe) {
            panic("quiescent: 0x%llx delegated to %u but no producer "
                  "entry",
                  (unsigned long long)line, dir.owner);
        }
        dir = pe->dir; // check the delegated directory below
    } else if (dir.state == DirState::Shared ||
               dir.state == DirState::Unowned) {
        if (dir.memVersion != cur) {
            panic("quiescent: memory copy of 0x%llx is version %u, "
                  "current %u (state %s)",
                  (unsigned long long)line, dir.memVersion, cur,
                  dirStateName(dir.state));
        }
    }

    switch (dir.state) {
      case DirState::Unowned:
        if (!holders.empty())
            panic("quiescent: 0x%llx Unowned but held by %s",
                  (unsigned long long)line,
                  holders.toString().c_str());
        break;
      case DirState::Shared:
        // The directory must cover every holder; a coarse sharing
        // vector covers conservatively (whole node groups), which
        // contains() honors.
        holders.forEachNode(static_cast<unsigned>(_nodes.size()),
                            [&](NodeId n) {
                                if (!dir.sharers.contains(n)) {
                                    panic("quiescent: 0x%llx holder %u "
                                          "not covered by sharers %s",
                                          (unsigned long long)line, n,
                                          dir.sharers.toString()
                                              .c_str());
                                }
                            });
        if (owners)
            panic("quiescent: 0x%llx Shared but node %u owns it",
                  (unsigned long long)line, ownerNode);
        break;
      case DirState::Excl:
        if (owners != 1 || ownerNode != dir.owner) {
            panic("quiescent: 0x%llx Excl at %u but owner is %s%u",
                  (unsigned long long)line, dir.owner,
                  owners ? "" : "nobody ", ownerNode);
        }
        break;
      default:
        panic("quiescent: 0x%llx in unexpected dir state %s",
              (unsigned long long)line, dirStateName(dir.state));
    }
}

} // namespace pcsim
