#include "src/protocol/checker.hh"

#include <cstdarg>
#include <cstdio>

#include "src/sim/logging.hh"
#include "src/verify/trace.hh"

namespace pcsim
{

void
CoherenceChecker::violation(NodeId node, Addr line, const char *fmt,
                            ...) const
{
    char what[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(what, sizeof(what), fmt, ap);
    va_end(ap);

    const std::string trace =
        _trace ? _trace->format(line)
               : std::string("  (message trace disabled)\n");
    panic("coherence violation: %s\n"
          "  node %u, line %#llx\n"
          "recent messages for this line:\n%s",
          what, unsigned(node), static_cast<unsigned long long>(line),
          trace.c_str());
}

Version
CoherenceChecker::storePerformed(NodeId node, Addr line,
                                 Version copy_version)
{
    std::unique_lock<std::mutex> lk(_mutex, std::defer_lock);
    if (_parallel)
        lk.lock();

    if (!_enabled)
        return _authority.bump(line);

    ++_numChecks;
    const Version cur = _authority.current(line);
    if (copy_version != cur) {
        violation(node, line,
                  "lost update: store from version %u but current is "
                  "%u",
                  copy_version, cur);
    }

    // Single-writer: no other node may hold any readable copy at the
    // instant a store performs (all invalidation acks collected).
    // Under the parallel kernel other shards sit at different local
    // ticks mid-window, so their caches may legitimately still show
    // copies this store's invalidations will erase "later"; skip the
    // instantaneous scan there (quiescent checks still cover it).
    // Update-based policies skip it by design: sharers keep readable
    // copies while the writer's episode is open (setUpdateBased).
    for (std::size_t n = 0;
         !_parallel && !_updateBased && n < _nodes.size(); ++n) {
        if (n == node)
            continue;
        Version v;
        LineState s = _nodes[n]->l2State(line, v);
        if (s != LineState::Invalid) {
            violation(node, line,
                      "single-writer violated: store while node %zu "
                      "holds %s",
                      n, lineStateName(s));
        }
        bool pinned;
        if (_nodes[n]->racCopy(line, v, pinned)) {
            violation(node, line,
                      "single-writer violated: store while node %zu "
                      "holds a RAC copy (pinned=%d)",
                      n, pinned);
        }
    }

    const Version nv = _authority.bump(line);
    _lastSeen[key(node, line)] = nv;
    return nv;
}

void
CoherenceChecker::loadPerformed(NodeId node, Addr line, Version version)
{
    if (!_enabled)
        return;

    std::unique_lock<std::mutex> lk(_mutex, std::defer_lock);
    if (_parallel)
        lk.lock();

    ++_numChecks;
    const Version cur = _authority.current(line);
    if (version > cur) {
        violation(node, line,
                  "load from the future: read version %u, current %u",
                  version, cur);
    }
    auto &seen = _lastSeen[key(node, line)];
    if (version < seen) {
        violation(node, line,
                  "non-monotonic read: read version %u after having "
                  "seen %u",
                  version, seen);
    }
    seen = version;
}

void
CoherenceChecker::checkLineQuiescent(Addr line, Version cur,
                                     NodeId home) const
{
    ++_numChecks;

    unsigned owners = 0;
    NodeId ownerNode = invalidNode;
    SharerSet holders; // exact (granularity 1) regardless of config

    for (std::size_t n = 0; n < _nodes.size(); ++n) {
        Version v;
        LineState s = _nodes[n]->l2State(line, v);
        bool holds = false;
        if (s == LineState::Modified || s == LineState::Exclusive) {
            ++owners;
            ownerNode = static_cast<NodeId>(n);
            holds = true;
            if (v != cur) {
                violation(static_cast<NodeId>(n), line,
                          "quiescent: owner has version %u, current %u",
                          v, cur);
            }
        } else if (s == LineState::Shared) {
            holds = true;
            if (v != cur) {
                violation(static_cast<NodeId>(n), line,
                          "quiescent: sharer has version %u, current "
                          "%u",
                          v, cur);
            }
        }

        bool pinned;
        if (_nodes[n]->racCopy(line, v, pinned)) {
            holds = true;
            // A pinned copy shadowed by the local M/E processor copy
            // may be one epoch behind; any other RAC copy must be
            // current.
            const bool shadowed =
                pinned && (s == LineState::Modified ||
                           s == LineState::Exclusive);
            if (!shadowed && v != cur) {
                violation(static_cast<NodeId>(n), line,
                          "quiescent: RAC copy has version %u, current "
                          "%u",
                          v, cur);
            }
        }
        if (holds)
            holders.add(static_cast<NodeId>(n));
    }

    if (owners > 1)
        violation(ownerNode, line, "quiescent: %u owners", owners);
    if (owners == 1) {
        SharerSet others = holders;
        others.remove(ownerNode);
        if (!others.empty()) {
            violation(ownerNode, line,
                      "quiescent: owner coexists with holders %s",
                      others.toString().c_str());
        }
    }

    // Directory consistency at the home (or its delegate).
    DirEntry dir = _nodes[home]->homeDirEntry(line);
    if (dir.busy())
        violation(home, line, "quiescent: home is busy");

    if (dir.state == DirState::Dele) {
        const ProducerEntry *pe =
            _nodes[dir.owner]->producerEntry(line);
        if (!pe) {
            violation(dir.owner, line,
                      "quiescent: delegated but no producer entry");
        }
        dir = pe->dir; // check the delegated directory below
    } else if (dir.state == DirState::Shared ||
               dir.state == DirState::Unowned) {
        if (dir.memVersion != cur) {
            violation(home, line,
                      "quiescent: memory copy is version %u, current "
                      "%u (state %s)",
                      dir.memVersion, cur, dirStateName(dir.state));
        }
    }

    switch (dir.state) {
      case DirState::Unowned:
        if (!holders.empty()) {
            violation(home, line, "quiescent: Unowned but held by %s",
                      holders.toString().c_str());
        }
        break;
      case DirState::Shared:
        // The directory must cover every holder; a coarse sharing
        // vector covers conservatively (whole node groups), which
        // contains() honors.
        holders.forEachNode(static_cast<unsigned>(_nodes.size()),
                            [&](NodeId n) {
                                if (!dir.sharers.contains(n)) {
                                    violation(
                                        n, line,
                                        "quiescent: holder not covered "
                                        "by sharers %s",
                                        dir.sharers.toString().c_str());
                                }
                            });
        if (owners) {
            violation(ownerNode, line,
                      "quiescent: Shared but node %u owns it",
                      ownerNode);
        }
        break;
      case DirState::Excl:
        if (owners != 1 || ownerNode != dir.owner) {
            violation(home, line,
                      "quiescent: Excl at %u but owner is %s%u",
                      dir.owner, owners ? "" : "nobody ", ownerNode);
        }
        break;
      default:
        violation(home, line, "quiescent: unexpected dir state %s",
                  dirStateName(dir.state));
    }
}

} // namespace pcsim
