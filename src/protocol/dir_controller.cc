#include "src/protocol/dir_controller.hh"

#include <algorithm>

#include "src/net/faults.hh"
#include "src/protocol/backoff.hh"
#include "src/protocol/hub.hh"
#include "src/protocol/policy.hh"
#include "src/sim/logging.hh"
#include "src/verify/observer.hh"

namespace pcsim
{

// Conformance frame over the merged directory view (peek + backing
// store; side-effect free).
#define DIR_CONFORMANCE_SCOPE(msg, event)                               \
    verify::ConformanceScope pcsimConformanceScope(                     \
        _hub.observer(), verify::Ctrl::Dir, _hub.id(), (msg).addr,      \
        (event), [this, line = (msg).addr]() {                          \
            return static_cast<verify::StateId>(dirEntry(line).state);  \
        })

DirController::DirController(Hub &hub, Rng rng)
    : _hub(hub),
      _cfg(hub.cfg()),
      _store(_cfg.dirReserveLines, _cfg.sharerGranularityLog2),
      _dirCache(_cfg.dirCache, _store, rng.fork()),
      _dram(_cfg.dram),
      _rng(rng.fork()),
      _arb(_cfg)
{
}

DirEntry
DirController::dirEntry(Addr line) const
{
    // Merged view: directory cache wins over the backing store.
    if (DirCacheEntry *e =
            const_cast<DirectoryCache &>(_dirCache).peek(line))
        return e->dir;
    if (const DirEntry *s = _store.find(line))
        return *s;
    return DirEntry{};
}

DirCacheEntry *
DirController::access(Addr line, Tick &ready)
{
    const Tick now = _hub.curTick();
    ready = now + _cfg.hubLatency;
    // Fault injection: a directory-cache pressure window caps the
    // associativity misses may allocate into (hits are unaffected).
    unsigned ways_limit = 0;
    if (const FaultPlan *fp = _hub.network().faultPlan())
        ways_limit = fp->dirWaysLimit(_hub.id(), now);
    bool was_miss = false;
    DirCacheEntry *e = _dirCache.access(line, was_miss, ways_limit);
    if (was_miss) {
        ++_hub.stats().dirCacheMisses;
        ++_dirCache.misses;
        // Fetch the entry from the in-memory directory.
        ready = std::max(ready, _dram.access(now));
    } else {
        ++_hub.stats().dirCacheHits;
        ++_dirCache.hits;
    }
    return e;
}

Tick
DirController::withMemData(Tick ready)
{
    // Data fetch proceeds in parallel with the directory lookup.
    return std::max(ready, _dram.access(_hub.curTick()));
}

Tick
DirController::rehandleBackoff(const Message &msg, const char *what)
{
    const std::uint32_t attempt = _rehandleRetries[msg.addr]++;
    NodeStats &st = _hub.stats();
    ++st.retries;
    ++st.dirRehandleRetries;
    st.noteRetryAttempt(attempt);
    if (attempt >= _cfg.maxRetries)
        panic("node %u: %s re-handle for 0x%llx exceeded %u retries "
              "(directory-cache set wedged?)\n%s",
              _hub.id(), what, (unsigned long long)msg.addr,
              _cfg.maxRetries, _hub.lineTrace(msg.addr).c_str());
    std::size_t exp = 0;
    const Tick backoff = retryBackoff(_cfg, attempt, _rng, &exp);
    st.backoffHist.sample(exp);
    return backoff;
}

void
DirController::rehandleDone(Addr line)
{
    if (!_rehandleRetries.empty())
        _rehandleRetries.erase(line);
}

void
DirController::sendNack(const Message &msg, Tick ready)
{
    _hub.noteNackSent();
    Message nack;
    nack.type = MsgType::Nack;
    nack.addr = msg.addr;
    nack.dst = msg.requester;
    nack.txnId = msg.txnId;
    _hub.sendAt(ready, nack);
}

void
DirController::handleRequest(const Message &msg)
{
    if (_arb.enabled()) {
        if (_arb.shouldPark(msg.addr)) {
            // Requests are already waiting (or a drain is in flight):
            // overtaking them would break the queue discipline. Park
            // behind them; a full queue falls back to NACK so the
            // engine never backpressures the network.
            if (!_arb.park(msg, _hub.curTick(), _hub.stats()))
                sendNack(msg, _hub.curTick() + _cfg.hubLatency);
            return;
        }
        handleRequestCore(msg);
        maybeDrain(msg.addr);
        return;
    }
    handleRequestCore(msg);
}

void
DirController::nackOrQueue(const Message &msg, Tick ready)
{
    if (_arb.enabled() && _arb.park(msg, _hub.curTick(), _hub.stats()))
        return;
    sendNack(msg, ready);
}

void
DirController::maybeDrain(Addr line)
{
    if (!_arb.enabled() || _arb.drainPending(line) || _arb.empty(line))
        return;
    if (dirEntry(line).busy())
        return; // the completing event will re-trigger the drain
    const Message req = _arb.pop(line, _hub.curTick(), _hub.stats());
    _arb.markDrainPending(line);
    // Re-enter like a fresh arrival after the hub's processing
    // latency; on the home's own event queue, so parallel-kernel runs
    // stay shard-local and byte-identical to sequential.
    _hub.eventQueue().scheduleIn(_cfg.hubLatency, [this, req]() {
        _arb.clearDrainPending(req.addr);
        handleRequestCore(req);
        maybeDrain(req.addr);
    });
}

void
DirController::handleRequestCore(const Message &msg)
{
    DIR_CONFORMANCE_SCOPE(msg, verify::eventOf(msg.type));

    ++_hub.stats().homeRequests;

    Tick ready;
    DirCacheEntry *e = access(msg.addr, ready);
    if (!e) {
        // Directory cache set wedged with busy entries.
        sendNack(msg, ready);
        return;
    }

    const CoherencePolicy &policy = _hub.policy();
    if (msg.type == MsgType::ReqShared)
        policy.handleRead(*this, msg, *e, ready);
    else
        policy.handleWrite(*this, msg, *e, ready);
}

void
DirController::handleUpdateWB(const Message &msg)
{
    DIR_CONFORMANCE_SCOPE(msg, verify::PEvent::UpdateWB);

    Tick ready;
    DirCacheEntry *e = access(msg.addr, ready);
    if (!e) {
        // The entry is BUSY_UPD and busy entries are unevictable, so
        // it is resident by construction; a wedged set here means the
        // episode state was lost.
        panic("node %u: UpdateWB with wedged directory set: %s",
              _hub.id(), msg.toString().c_str());
    }
    _hub.policy().handleUpdateWB(*this, msg, *e, ready);
    maybeDrain(msg.addr);
}

void
DirController::handleUpdateDrop(const Message &msg)
{
    DIR_CONFORMANCE_SCOPE(msg, verify::PEvent::UpdateDrop);

    Tick ready;
    DirCacheEntry *e = access(msg.addr, ready);
    if (!e) {
        // A drop is pure unsubscription: losing it costs a few extra
        // pushes the consumer will drop at INVALID, never correctness.
        return;
    }
    _hub.policy().handleUpdateDrop(*this, msg, *e, ready);
}

void
DirController::delegate(Addr line, NodeId producer, DirCacheEntry &e,
                        Tick ready, std::uint64_t txn_id)
{
    DirEntry &d = e.dir;
    ++_hub.stats().delegationsGranted;

    Message del;
    del.type = MsgType::Delegate;
    del.addr = line;
    del.dst = producer;
    del.requester = producer;
    del.txnId = txn_id;
    del.version = d.memVersion; // Shared/Unowned: memory is current
    del.sharers = d.sharers;
    del.owner = producer;

    d.state = DirState::Dele;
    d.owner = producer;
    d.sharers.clear();
    // The detector bits are repurposed while the entry is delegated;
    // after an undelegation the pattern must re-saturate before the
    // line is delegated again, which throttles conflict churn when
    // the producer-consumer working set exceeds the producer table.
    e.detector.reset();

    _hub.sendAt(withMemData(ready), del);
}

void
DirController::forwardToDelegate(const Message &msg, DirCacheEntry &e,
                                 Tick ready)
{
    DirEntry &d = e.dir;
    const NodeId producer = d.owner;

    if (msg.requester == producer) {
        // The producer raced its own delegation handoff (Section
        // 2.3.4): NACK; on retry it will find itself the acting home.
        sendNack(msg, ready);
        return;
    }

    ++_hub.stats().forwardedRequests;

    Message fwd = msg;
    fwd.dst = producer;

    Message hint;
    hint.type = MsgType::HomeHint;
    hint.addr = msg.addr;
    hint.dst = msg.requester;
    hint.hintHome = producer;

    // Two back-to-back pooled sends: scheduled consecutively, they
    // execute in order at `ready` with no same-tick event between
    // them, exactly like the former single two-send closure.
    _hub.sendAt(ready, fwd);
    _hub.sendAt(ready, hint);
}

void
DirController::handleWriteback(const Message &msg)
{
    DIR_CONFORMANCE_SCOPE(msg, verify::PEvent::WritebackM);

    Tick ready;
    DirCacheEntry *e = access(msg.addr, ready);
    if (!e) {
        // Cannot NACK a writeback (it carries the only copy); retry
        // the handling locally, with the shared bounded backoff, until
        // a directory-cache way frees up.
        Message again = msg;
        _hub.eventQueue().scheduleIn(
            rehandleBackoff(msg, "WritebackM"),
            [this, again]() { handleWriteback(again); });
        return;
    }
    rehandleDone(msg.addr);
    DirEntry &d = e->dir;
    const NodeId src = msg.requester;

    Message ack;
    ack.type = MsgType::WritebackAck;
    ack.addr = msg.addr;
    ack.dst = src;

    switch (d.state) {
      case DirState::Excl:
        if (d.owner != src)
            panic("writeback from %u but owner is %u", src, d.owner);
        d.memVersion = msg.version;
        d.state = DirState::Unowned;
        d.owner = invalidNode;
        d.sharers.clear();
        break;

      case DirState::BusyRead:
      case DirState::BusyExcl: {
        if (d.pendingOwner != src)
            panic("writeback race from non-owner %u", src);
        // The owner wrote back before our intervention reached it.
        // Absorb the data but STAY BUSY until the intervention's
        // NACK returns: the line stays unreachable meanwhile, so the
        // roaming intervention can never find a re-acquired copy.
        d.memVersion = msg.version;
        d.pendingWb = true;
        break;
      }

      default:
        panic("writeback in dir state %s", dirStateName(d.state));
    }

    _hub.sendAt(ready, ack);
    maybeDrain(msg.addr);
}

void
DirController::handleSharedWriteback(const Message &msg)
{
    DIR_CONFORMANCE_SCOPE(msg, verify::PEvent::SharedWriteback);

    Tick ready;
    DirCacheEntry *e = access(msg.addr, ready);
    if (!e)
        panic("SHWB with wedged directory set");
    DirEntry &d = e->dir;
    if (d.state != DirState::BusyRead)
        panic("SHWB in dir state %s", dirStateName(d.state));

    d.memVersion = msg.version;
    d.state = DirState::Shared;
    d.sharers.clear();
    d.sharers.add(d.pendingOwner);
    d.sharers.add(d.pendingReq);
    d.owner = invalidNode;
    d.pendingReq = invalidNode;
    d.pendingOwner = invalidNode;
    maybeDrain(msg.addr);
}

void
DirController::handleTransferAck(const Message &msg)
{
    DIR_CONFORMANCE_SCOPE(msg, verify::PEvent::TransferAck);

    Tick ready;
    DirCacheEntry *e = access(msg.addr, ready);
    if (!e)
        panic("TransferAck with wedged directory set");
    DirEntry &d = e->dir;
    if (d.state != DirState::BusyExcl)
        panic("TransferAck in dir state %s", dirStateName(d.state));

    d.state = DirState::Excl;
    d.owner = d.pendingReq;
    d.sharers.clear();
    // Memory stays stale: the data moved owner-to-owner.
    d.pendingReq = invalidNode;
    d.pendingOwner = invalidNode;
    maybeDrain(msg.addr);
}

void
DirController::handleIntervNack(const Message &msg)
{
    DIR_CONFORMANCE_SCOPE(msg, verify::PEvent::IntervNack);

    Tick ready;
    DirCacheEntry *e = access(msg.addr, ready);
    if (!e || !e->dir.busy())
        return; // stale (episode already resolved)
    DirEntry &d = e->dir;
    if (d.pendingOwner != msg.src)
        return;

    if (d.pendingWb) {
        // Writeback race: the data arrived while we waited for this
        // NACK; satisfy the pending requester straight from memory.
        Message resp;
        resp.addr = msg.addr;
        resp.dst = d.pendingReq;
        resp.version = d.memVersion;
        resp.txnId = d.pendingTxnId;
        if (d.state == DirState::BusyRead) {
            resp.type = MsgType::RespSharedData;
            d.state = DirState::Shared;
            d.sharers.clear();
            d.sharers.add(d.pendingReq);
            d.owner = invalidNode;
        } else {
            resp.type = MsgType::RespExclData;
            resp.ackCount = 0;
            d.state = DirState::Excl;
            d.owner = d.pendingReq;
            d.sharers.clear();
        }
        d.pendingWb = false;
        d.pendingReq = invalidNode;
        d.pendingOwner = invalidNode;
        _hub.sendAt(ready, resp);
        maybeDrain(msg.addr);
        return;
    }

    // The intervention target's own exclusive grant had not completed
    // yet (its fill or invalidation acks were still in flight). The
    // owner recorded at the home is still correct; NACK the waiting
    // requester so it retries once the owner's transaction settles
    // (Section 2.3.4's NACK-and-retry discipline).
    Message nack;
    nack.type = MsgType::Nack;
    nack.addr = msg.addr;
    nack.dst = d.pendingReq;
    nack.txnId = d.pendingTxnId;
    _hub.noteNackSent();

    d.state = DirState::Excl;
    d.owner = d.pendingOwner;
    d.sharers.clear();
    d.pendingReq = invalidNode;
    d.pendingOwner = invalidNode;

    _hub.sendAt(ready, nack);
    maybeDrain(msg.addr);
}

void
DirController::handleUndele(const Message &msg)
{
    DIR_CONFORMANCE_SCOPE(msg, verify::PEvent::Undele);

    Tick ready;
    DirCacheEntry *e = access(msg.addr, ready);
    if (!e) {
        // Like a writeback, an UNDELE carries protocol state that
        // cannot be dropped or NACKed: bounded local re-handle.
        Message again = msg;
        _hub.eventQueue().scheduleIn(
            rehandleBackoff(msg, "Undele"),
            [this, again]() { handleUndele(again); });
        return;
    }
    rehandleDone(msg.addr);
    DirEntry &d = e->dir;
    if (d.state != DirState::Dele)
        panic("Undele in dir state %s", dirStateName(d.state));

    // Restore the directory from the delegate's snapshot.
    d.memVersion = msg.version;
    if (msg.owner != invalidNode) {
        d.state = DirState::Excl;
        d.owner = msg.owner;
        d.sharers.clear();
    } else if (!msg.sharers.empty()) {
        d.state = DirState::Shared;
        d.sharers = msg.sharers;
        d.owner = invalidNode;
    } else {
        d.state = DirState::Unowned;
        d.sharers.clear();
        d.owner = invalidNode;
    }

    // Service the exclusive request that forced the undelegation.
    if (msg.pendingReq != invalidNode) {
        Message req;
        req.type = msg.pendingType;
        req.addr = msg.addr;
        req.dst = _hub.id();
        req.requester = msg.pendingReq;
        req.txnId = msg.txnId;
        _hub.eventQueue().schedule(ready, [this, req]() {
            handleRequest(req);
        });
    }
    maybeDrain(msg.addr);
}

} // namespace pcsim
