#include "src/protocol/cache_controller.hh"

#include "src/protocol/backoff.hh"
#include "src/protocol/hub.hh"
#include "src/protocol/policy.hh"
#include "src/protocol/producer_controller.hh"
#include "src/sim/logging.hh"
#include "src/verify/observer.hh"

namespace pcsim
{

namespace
{

/** Side-effect-free state sample for the conformance hook (const
 *  lookup: must not touch LRU bookkeeping). */
verify::StateId
cacheStateGetter(const CacheController &ctrl, Addr line)
{
    Version v;
    return static_cast<verify::StateId>(ctrl.l2State(line, v));
}

} // namespace

CacheController::CacheController(Hub &hub, Rng rng)
    : _hub(hub),
      _cfg(hub.cfg()),
      _l1(_cfg.l1, rng.fork()),
      _l2("l2",
          _cfg.l2SetsOverride
              ? _cfg.l2SetsOverride
              : _cfg.l2SizeBytes / (_cfg.l2Ways * _cfg.lineBytes),
          _cfg.l2Ways, _cfg.lineBytes, ReplPolicy::LRU, rng.fork()),
      _mshrs(_cfg.mshrs),
      _rng(rng.fork())
{
}

LineState
CacheController::l2State(Addr line, Version &version) const
{
    const L2Entry *e = _l2.find(line);
    if (!e)
        return LineState::Invalid;
    version = e->version;
    return e->state;
}

void
CacheController::performStore(Addr line, L2Entry &entry)
{
    const Version nv =
        _hub.checker().storePerformed(_hub.id(), line, entry.version);
    entry.version = nv;
    // The policy sets the post-store state and emits any protocol
    // traffic (MESI: Modified; update-based: Shared + UpdateWB).
    _hub.policy().finishStore(*this, line, entry);
    // Our own unpinned RAC copy would now be stale; drop it. A pinned
    // copy (we are the delegated home) is refreshed at downgrade time.
    if (Rac *rac = _hub.rac()) {
        const RacEntry *re = rac->find(line);
        if (re && !re->pinned)
            rac->invalidate(line);
    }
}

void
CacheController::access(bool is_write, Addr addr, AccessCallback done,
                        unsigned conflict_retries)
{
    const Addr line = _hub.lineOf(addr);
    NodeStats &st = _hub.stats();
    EventQueue &eq = _hub.eventQueue();

    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Cache, _hub.id(), line,
        is_write ? verify::PEvent::CpuStore : verify::PEvent::CpuLoad,
        [this, line]() { return cacheStateGetter(*this, line); });

    if (is_write)
        ++st.writes;
    else
        ++st.reads;

    L2Entry *e = _l2.find(line);

    if (!is_write) {
        if (_l1.lookup(addr)) {
            // L1 hit. Inclusion guarantees an L2 copy with the
            // current version.
            if (!e || !canRead(e->state))
                panic("node %u: L1 hit without L2 inclusion for 0x%llx",
                      _hub.id(), (unsigned long long)line);
            ++st.l1Hits;
            e->staleUpdates = 0; // the update stream is being read
            const Version v = e->version;
            _hub.checker().loadPerformed(_hub.id(), line, v);
            eq.scheduleIn(_l1.hitLatency(),
                          [done = std::move(done), v]() { done(v); });
            return;
        }
        if (e && canRead(e->state)) {
            ++st.l2Hits;
            _l1.fill(addr);
            e->staleUpdates = 0;
            const Version v = e->version;
            _hub.checker().loadPerformed(_hub.id(), line, v);
            eq.scheduleIn(_cfg.l2HitLatency,
                          [done = std::move(done), v]() { done(v); });
            return;
        }
    } else {
        if (e && canWrite(e->state)) {
            ++st.l2Hits;
            performStore(line, *e);
            _l1.fill(addr);
            const Version v = e->version;
            eq.scheduleIn(_cfg.l2HitLatency,
                          [done = std::move(done), v]() { done(v); });
            return;
        }
    }

    missPath(is_write, addr, line, std::move(done), conflict_retries);
}

void
CacheController::missPath(bool is_write, Addr addr, Addr line,
                          AccessCallback done, unsigned conflict_retries)
{
    NodeStats &st = _hub.stats();
    EventQueue &eq = _hub.eventQueue();

    if (_mshrs.find(line) || _mshrs.full()) {
        // With one blocking CPU per node this can only be a same-line
        // conflict with in-flight protocol work; retry the FULL
        // access path with the shared jittered backoff -- the
        // conflicting transaction may turn this access into a plain
        // cache hit, and the jitter keeps repeated conflicts from
        // convoying with the protocol work they collide with. Undo
        // the access count (the retry will recount).
        if (is_write)
            --st.writes;
        else
            --st.reads;
        if (conflict_retries >= _cfg.maxRetries)
            panic("node %u: access to 0x%llx exceeded %u MSHR-conflict "
                  "retries (livelock?)",
                  _hub.id(), (unsigned long long)line, _cfg.maxRetries);
        ++st.retries;
        ++st.mshrConflictRetries;
        st.noteRetryAttempt(conflict_retries);
        std::size_t exp = 0;
        const Tick backoff =
            retryBackoff(_cfg, conflict_retries, _rng, &exp);
        st.backoffHist.sample(exp);
        eq.scheduleIn(backoff,
                      [this, is_write, addr, conflict_retries,
                       done = std::move(done)]() mutable {
                          access(is_write, addr, std::move(done),
                                 conflict_retries + 1);
                      });
        return;
    }

    // Read misses may be satisfied by the local RAC (victim copies,
    // pinned delegated lines, pushed updates) -- a LOCAL miss.
    if (!is_write) {
        if (Rac *rac = _hub.rac()) {
            RacEntry *re = rac->find(line);
            if (re) {
                ++st.racHits;
                ++st.localMisses;
                if (re->fromUpdate) {
                    ++st.updatesConsumed;
                    re->fromUpdate = false;
                }
                const Version v = re->version;
                l2Fill(line, LineState::Shared, v);
                _l1.fill(addr);
                if (!re->pinned)
                    rac->invalidate(line); // victim-cache promote
                _hub.checker().loadPerformed(_hub.id(), line, v);
                eq.scheduleIn(rac->accessLatency() + _cfg.busLatency,
                              [done = std::move(done), v]() { done(v); });
                return;
            }
        }
    }

    Mshr *m = _mshrs.allocate(line);
    m->reqAddr = addr;
    m->isWrite = is_write;
    m->issued = _hub.curTick();
    m->onComplete = std::move(done);

    if (is_write) {
        L2Entry *e = _l2.find(line);
        m->reqType = (e && e->state == LineState::Shared)
                         ? MsgType::ReqUpgrade
                         : MsgType::ReqExcl;
    } else {
        m->reqType = MsgType::ReqShared;
    }

    sendRequest(*m);
}

void
CacheController::sendRequest(Mshr &m)
{
    // Routing: producer table (delegated to me -> handled by my own
    // ProducerController), then consumer-table hint, then the home.
    NodeId target;
    if (_cfg.delegationEnabled() && _hub.prodCtrl().isDelegated(m.addr)) {
        target = _hub.id();
    } else {
        target = invalidNode;
        if (DelegateCache *dc = _hub.delegateCache())
            target = dc->consumerLookup(m.addr);
        if (target == invalidNode)
            target = _hub.homeOf(m.addr);
    }

    m.sentTo = target;
    if (target != _hub.id())
        m.usedNetwork = true;
    m.txnId = ++_nextTxnId;

    Message msg;
    msg.type = m.reqType;
    msg.addr = m.addr;
    msg.dst = target;
    msg.requester = _hub.id();
    msg.txnId = m.txnId;
    // Carried age: the aged-priority arbiter services the
    // longest-suffering requester first (src/protocol/arbiter.hh).
    msg.retries = static_cast<std::uint32_t>(m.retries);
    _hub.send(msg);
}

void
CacheController::retry(Addr line)
{
    Mshr *m = _mshrs.find(line);
    if (!m)
        return;
    ++m->retries;
    NodeStats &st = _hub.stats();
    ++st.retries;
    st.noteRetryAttempt(m->retries - 1);
    if (m->retries > _cfg.maxRetries)
        panic("node %u: transaction for 0x%llx exceeded %u retries "
              "(livelock?)",
              _hub.id(), (unsigned long long)line, _cfg.maxRetries);

    // Re-check the RAC: a speculative update may have landed since
    // the NACK ("the update message is treated as the response").
    if (!m->isWrite) {
        if (Rac *rac = _hub.rac()) {
            RacEntry *re = rac->find(line);
            if (re) {
                m->haveData = true;
                m->version = re->version;
                m->fillInvalidated = false;
                if (re->fromUpdate) {
                    _hub.stats().updatesConsumed++;
                    re->fromUpdate = false;
                }
                if (!re->pinned)
                    rac->invalidate(line);
                maybeComplete(*m);
                return;
            }
        }
    }

    // An upgrade whose SHARED copy was invalidated needs fresh data.
    if (m->reqType == MsgType::ReqUpgrade) {
        L2Entry *e = _l2.find(line);
        if (!e || e->state != LineState::Shared || m->lostCopy)
            m->reqType = MsgType::ReqExcl;
    }
    m->lostCopy = false;
    sendRequest(*m);
}

void
CacheController::handleResponse(const Message &msg)
{
    const Addr line = msg.addr;
    NodeStats &st = _hub.stats();
    Mshr *m = _mshrs.find(line);

    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Cache, _hub.id(), line,
        verify::eventOf(msg.type),
        [this, line]() { return cacheStateGetter(*this, line); });

    if (msg.type == MsgType::WritebackAck)
        return;

    if (!m) {
        // Stale response (e.g. a data reply racing an update that
        // already completed the transaction): drop.
        return;
    }
    if (msg.txnId != m->txnId) {
        // Response to an earlier transaction on this line that a
        // speculative update or retry already satisfied: stale.
        return;
    }

    if (msg.src != _hub.id())
        m->usedNetwork = true;

    switch (msg.type) {
      case MsgType::RespSharedData:
      case MsgType::SharedResp:
        m->haveData = true;
        m->version = msg.version;
        if (msg.type == MsgType::SharedResp)
            m->thirdParty = true;
        break;

      case MsgType::RespExclData:
        m->haveData = true;
        m->version = msg.version;
        m->exclusiveGrant = true;
        m->acksExpected = msg.ackCount;
        break;

      case MsgType::ExclResp:
        m->haveData = true;
        m->version = msg.version;
        m->exclusiveGrant = true;
        m->acksExpected = 0;
        m->thirdParty = true;
        break;

      case MsgType::RespUpgradeAck: {
        if (m->lostCopy) {
            // Our copy vanished while the upgrade was in flight and
            // the grant carries no data: fall back to a full fetch.
            m->reqType = MsgType::ReqExcl;
            m->acksExpected = -1;
            m->acksReceived = 0;
            m->lostCopy = false;
            sendRequest(*m);
            return;
        }
        L2Entry *e = _l2.find(line);
        if (!e || e->state != LineState::Shared)
            panic("node %u: upgrade ack for 0x%llx without S copy",
                  _hub.id(), (unsigned long long)line);
        m->haveData = true;
        m->version = e->version;
        m->exclusiveGrant = true;
        m->acksExpected = msg.ackCount;
        break;
      }

      case MsgType::InvalAck:
        ++m->acksReceived;
        break;

      case MsgType::UpdGrant:
        // Write-update: permission + data; no invalidations, so no
        // acks to collect. complete() performs the store and the
        // policy self-downgrades + returns the data (UpdateWB).
        m->haveData = true;
        m->version = msg.version;
        m->exclusiveGrant = true;
        m->acksExpected = msg.ackCount;
        break;

      case MsgType::Nack: {
        ++st.nacksReceived;
        std::size_t exp = 0;
        const Tick backoff = retryBackoff(_cfg, m->retries, _rng, &exp);
        st.backoffHist.sample(exp);
        _hub.eventQueue().scheduleIn(backoff,
                                     [this, line]() { retry(line); });
        return;
      }

      case MsgType::NackNotHome:
        ++st.nacksReceived;
        if (DelegateCache *dc = _hub.delegateCache())
            dc->consumerErase(line);
        _hub.eventQueue().scheduleIn(_cfg.hubLatency,
                                     [this, line]() { retry(line); });
        return;

      default:
        panic("node %u: unexpected response %s", _hub.id(),
              msg.toString().c_str());
    }

    maybeComplete(*m);
}

void
CacheController::maybeComplete(Mshr &m)
{
    if (m.ready())
        complete(m);
}

void
CacheController::complete(Mshr &m)
{
    const Addr line = m.addr;
    NodeStats &st = _hub.stats();

    if (m.isWrite) {
        L2Entry *e = _l2.find(line);
        if (e && e->state == LineState::Shared && !m.exclusiveGrant)
            panic("write completion without exclusivity");
        if (!e || e->state == LineState::Invalid)
            e = l2Fill(line, LineState::Exclusive, m.version);
        else
            e->state = LineState::Exclusive;
        e->version = m.version;
        performStore(line, *e);
        _l1.fill(m.reqAddr);
    } else {
        if (!m.fillInvalidated) {
            l2Fill(line, LineState::Shared, m.version);
            _l1.fill(m.reqAddr);
        }
        _hub.checker().loadPerformed(_hub.id(), line, m.version);
    }

    // Fairness telemetry: time from first issue to fill. Pure
    // accounting (no control flow or RNG draws), so default-mode
    // results stay byte-identical.
    const Tick waited = _hub.curTick() - m.issued;
    st.missLatencyHist.sample(latencyBucketOf(waited));
    if (waited > st.maxLineWaitTicks)
        st.maxLineWaitTicks = waited;

    // Miss classification (Figure 7 metrics).
    if (m.usedNetwork) {
        ++st.remoteMisses;
        if (m.thirdParty || m.acksExpected > 0)
            ++st.threeHopMisses;
        else
            ++st.twoHopMisses;
    } else {
        ++st.localMisses;
    }

    auto done = std::move(m.onComplete);
    const bool was_write = m.isWrite;
    Version final_version = m.version;
    if (was_write) {
        if (L2Entry *fe = _l2.find(line))
            final_version = fe->version;
    }
    _mshrs.free(line);

    // Delegated lines: tell the producer engine the write epoch
    // completed so it can arm the delayed intervention.
    if (was_write && _cfg.delegationEnabled() &&
        _hub.prodCtrl().isDelegated(line)) {
        _hub.prodCtrl().onLocalWriteComplete(line);
    } else if (_cfg.delegationEnabled() && _cfg.arbitrationActive() &&
               _hub.prodCtrl().isDelegated(line)) {
        // A read completion freed the MSHR that was blocking parked
        // remote requests at our producer engine.
        _hub.prodCtrl().maybeDrain(line);
    }

    if (done) {
        _hub.eventQueue().scheduleIn(
            _cfg.busLatency,
            [done = std::move(done), final_version]() {
                done(final_version);
            });
    }
}

L2Entry *
CacheController::l2Fill(Addr line, LineState state, Version version)
{
    L2Entry *e = _l2.allocate(
        line,
        [this](Addr victim, const L2Entry &) {
            // Never displace a line with an in-flight transaction: a
            // silent eviction would break upgrade bookkeeping.
            return _mshrs.find(victim) == nullptr;
        },
        [this](Addr victim, L2Entry &v) { evictVictim(victim, v); });
    if (!e) {
        // Pathological: every way busy. Fall back to direct overwrite
        // of the requested line's set is impossible; treat as fatal.
        panic("node %u: L2 set wedged for 0x%llx", _hub.id(),
              (unsigned long long)line);
    }
    e->state = state;
    e->version = version;
    e->staleUpdates = 0;
    return e;
}

void
CacheController::dropLine(Addr line)
{
    _l1.invalidateRange(line, _cfg.lineBytes);
    _l2.invalidate(line);
}

void
CacheController::evictVictim(Addr victim, L2Entry &v)
{
    NodeStats &st = _hub.stats();

    // The array recycles the victim's way as soon as this callback
    // returns, so sample the pre state from the payload and pin the
    // post state rather than re-probing the array.
    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Cache, _hub.id(), victim,
        verify::PEvent::Evict, [s = v.state]() {
            return static_cast<verify::StateId>(s);
        });
    scope.overridePost(
        static_cast<verify::StateId>(LineState::Invalid));

    _l1.invalidateRange(victim, _cfg.lineBytes);

    const bool owned = v.state == LineState::Modified ||
                       v.state == LineState::Exclusive;

    if (_cfg.delegationEnabled() && _hub.prodCtrl().isDelegated(victim)) {
        // Flush of a delegated line: the pinned RAC entry is the
        // surrogate memory; absorb the data there and keep the
        // delegation (see DESIGN.md, undelegation reason 2).
        _hub.prodCtrl().onLocalFlush(victim, v.version);
        return;
    }

    if (owned) {
        ++st.writebacks;
        Message wb;
        wb.type = MsgType::WritebackM;
        wb.addr = victim;
        wb.dst = _hub.homeOf(victim);
        wb.requester = _hub.id();
        wb.version = v.version;
        wb.dirty = v.state == LineState::Modified;
        _hub.send(wb);
    } else if (v.state == LineState::Shared) {
        // Victim-cache remote SHARED lines into the RAC.
        if (Rac *rac = _hub.rac()) {
            if (_hub.homeOf(victim) != _hub.id())
                rac->insert(victim, v.version);
        }
    }
}

void
CacheController::handleIntervention(const Message &msg)
{
    const Addr line = msg.addr;

    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Cache, _hub.id(), line,
        verify::eventOf(msg.type),
        [this, line]() { return cacheStateGetter(*this, line); });

    L2Entry *e = _l2.find(line);
    const Tick lat = _cfg.busLatency; // processor bus round trip

    switch (msg.type) {
      case MsgType::Inval: {
        recordTombstone(line, msg.version);
        if (e) {
            _l1.invalidateRange(line, _cfg.lineBytes);
            _l2.invalidate(line);
        }
        if (Rac *rac = _hub.rac()) {
            const RacEntry *re = rac->find(line);
            if (re) {
                if (re->pinned)
                    panic("node %u: Inval hit pinned RAC line 0x%llx",
                          _hub.id(), (unsigned long long)line);
                rac->invalidate(line);
            }
        }
        if (Mshr *m = _mshrs.find(line)) {
            if (m->reqType == MsgType::ReqUpgrade)
                m->lostCopy = true;
            if (!m->isWrite)
                m->fillInvalidated = true;
        }
        Message ack;
        ack.type = MsgType::InvalAck;
        ack.addr = line;
        ack.dst = msg.requester;
        ack.txnId = msg.txnId;
        _hub.sendIn(_cfg.hubLatency, ack);
        break;
      }

      case MsgType::IntervDowngrade: {
        Mshr *m = _mshrs.find(line);
        if (m && m->isWrite) {
            // Our exclusive grant is still completing: the home
            // serialized us first, so defer the intervention.
            Message nack;
            nack.type = MsgType::IntervNack;
            nack.addr = line;
            nack.dst = msg.src;
            _hub.send(nack);
            break;
        }
        if (e && e->state != LineState::Invalid) {
            const bool dirty = e->state == LineState::Modified;
            e->state = LineState::Shared;
            Message data;
            data.addr = line;
            data.version = e->version;
            data.dirty = dirty;

            Message to_req = data;
            to_req.type = MsgType::SharedResp;
            to_req.dst = msg.requester;
            to_req.txnId = msg.txnId;
            Message to_home = data;
            to_home.type = MsgType::SharedWriteback;
            to_home.dst = msg.src;
            _hub.sendIn(lat, to_req);
            _hub.sendIn(lat, to_home);
        } else {
            // Writeback race: the line already left (WritebackM is in
            // flight and, by point-to-point ordering, will reach the
            // home before this NACK does).
            Message nack;
            nack.type = MsgType::IntervNack;
            nack.addr = line;
            nack.dst = msg.src;
            _hub.send(nack);
        }
        break;
      }

      case MsgType::IntervTransfer: {
        Mshr *m = _mshrs.find(line);
        if (m && m->isWrite) {
            Message nack;
            nack.type = MsgType::IntervNack;
            nack.addr = line;
            nack.dst = msg.src;
            _hub.send(nack);
            break;
        }
        if (e && e->state != LineState::Invalid) {
            const Version v = e->version;
            _l1.invalidateRange(line, _cfg.lineBytes);
            _l2.invalidate(line);
            if (Rac *rac = _hub.rac())
                rac->invalidate(line);
            Message to_req;
            to_req.type = MsgType::ExclResp;
            to_req.addr = line;
            to_req.dst = msg.requester;
            to_req.version = v;
            to_req.txnId = msg.txnId;
            Message to_home;
            to_home.type = MsgType::TransferAck;
            to_home.addr = line;
            to_home.dst = msg.src;
            _hub.sendIn(lat, to_req);
            _hub.sendIn(lat, to_home);
        } else {
            Message nack;
            nack.type = MsgType::IntervNack;
            nack.addr = line;
            nack.dst = msg.src;
            _hub.send(nack);
        }
        break;
      }

      default:
        panic("bad intervention %s", msg.toString().c_str());
    }
}

void
CacheController::recordTombstone(Addr line, Version version)
{
    auto [it, inserted] = _tombstones.try_emplace(line, version);
    if (!inserted) {
        if (version > it->second)
            it->second = version;
        return;
    }
    _tombstoneFifo.push_back(line);
    if (_tombstoneFifo.size() > tombstoneCapacity) {
        _tombstones.erase(_tombstoneFifo.front());
        _tombstoneFifo.pop_front();
    }
}

bool
CacheController::staleByTombstone(Addr line, Version version) const
{
    auto it = _tombstones.find(line);
    return it != _tombstones.end() && version <= it->second;
}

void
CacheController::handleUpdate(const Message &msg)
{
    const Addr line = msg.addr;
    NodeStats &st = _hub.stats();

    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Cache, _hub.id(), line,
        verify::PEvent::Update,
        [this, line]() { return cacheStateGetter(*this, line); });

    ++st.updatesReceived;

    if (staleByTombstone(line, msg.version)) {
        // The push raced an invalidation for a newer epoch: stale.
        ++st.updatesDropped;
        return;
    }

    if (Mshr *m = _mshrs.find(line)) {
        if (!m->isWrite) {
            // "If the consumer processor has already requested the
            // data, the update message is treated as the response."
            m->haveData = true;
            m->version = msg.version;
            m->fillInvalidated = false;
            m->usedNetwork = true;
            ++st.updatesConsumed;
            maybeComplete(*m);
        }
        // A racing write transaction ignores the push; the producer
        // will undelegate when the exclusive request reaches it.
        return;
    }

    L2Entry *e = _l2.find(line);
    if (e && e->state != LineState::Invalid) {
        // Update-based policies refresh the copy in place (possibly
        // leaving the update stream); invalidate-based ones already
        // hold the current epoch.
        if (_cfg.updateBased())
            _hub.policy().updateSharedCopy(*this, msg, *e);
        return;
    }

    Rac *rac = _hub.rac();
    if (!rac) {
        ++st.updatesDropped;
        return;
    }
    if (rac->insert(line, msg.version)) {
        rac->find(line)->fromUpdate = true;
    } else {
        ++st.updatesDropped;
    }
}

void
CacheController::handleHomeHint(const Message &msg)
{
    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Cache, _hub.id(), msg.addr,
        verify::PEvent::HomeHint, [this, line = msg.addr]() {
            return cacheStateGetter(*this, line);
        });

    if (DelegateCache *dc = _hub.delegateCache())
        dc->consumerInsert(msg.addr, msg.hintHome);
}

Version
CacheController::localDowngrade(Addr line, Version fallback)
{
    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Cache, _hub.id(), line,
        verify::PEvent::LocalDowngrade,
        [this, line]() { return cacheStateGetter(*this, line); });

    L2Entry *e = _l2.find(line);
    if (!e || e->state == LineState::Invalid)
        return fallback;
    e->state = LineState::Shared;
    return e->version;
}

} // namespace pcsim
