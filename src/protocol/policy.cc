#include "src/protocol/policy.hh"

#include "src/cache/line_state.hh"
#include "src/protocol/cache_controller.hh"
#include "src/protocol/dir_controller.hh"
#include "src/protocol/hub.hh"
#include "src/sim/logging.hh"
#include "src/verify/lint.hh"
#include "src/verify/spec.hh"

namespace pcsim
{

void
CoherencePolicy::handleUpdateWB(DirController &dir, const Message &msg,
                                DirCacheEntry &, Tick) const
{
    panic("node %u: UpdateWB under %s (invalidate-based policies "
          "never grant update episodes): %s",
          dir.hub().id(), name(), msg.toString().c_str());
}

void
CoherencePolicy::handleUpdateDrop(DirController &dir, const Message &msg,
                                  DirCacheEntry &, Tick) const
{
    panic("node %u: UpdateDrop under %s (only the adaptive hybrid "
          "leaves the update stream): %s",
          dir.hub().id(), name(), msg.toString().c_str());
}

namespace
{

// --- MESI-dir + delegation + speculative updates --------------------
//
// The original protocol stack, hosting the home-side FSM that used to
// live inside DirController. One class serves the three invalidate
// kinds: the delegation trigger below is the only point that differs,
// and it keys off the config.

class MesiDelePolicy : public CoherencePolicy
{
  public:
    explicit MesiDelePolicy(ProtocolKind kind) : _kind(kind) {}

    ProtocolKind kind() const override { return _kind; }

    const verify::TransitionSpec &
    spec() const override
    {
        return verify::protocolSpec();
    }

    void
    handleRead(DirController &dir, const Message &msg, DirCacheEntry &e,
               Tick ready) const override
    {
        Hub &hub = dir.hub();
        const NodeId req = msg.requester;
        DirEntry &d = e.dir;

        if (d.state != DirState::Dele)
            e.detector.onRead(req, hub.cfg().detector);

        switch (d.state) {
          case DirState::Unowned:
          case DirState::Shared: {
            d.state = DirState::Shared;
            d.addSharer(req);
            Message resp;
            resp.type = MsgType::RespSharedData;
            resp.addr = msg.addr;
            resp.dst = req;
            resp.version = d.memVersion;
            resp.txnId = msg.txnId;
            hub.sendAt(dir.withMemData(ready), resp);
            break;
          }

          case DirState::Excl: {
            if (d.owner == req) {
                // Transient: our view and the owner's disagree (should
                // be prevented by point-to-point ordering); retry.
                dir.sendNack(msg, ready);
                break;
            }
            d.pendingReq = req;
            d.pendingType = MsgType::ReqShared;
            d.pendingOwner = d.owner;
            d.pendingTxnId = msg.txnId;
            d.state = DirState::BusyRead;
            ++hub.stats().interventionsSent;
            Message iv;
            iv.type = MsgType::IntervDowngrade;
            iv.addr = msg.addr;
            iv.dst = d.pendingOwner;
            iv.requester = req;
            iv.txnId = msg.txnId;
            hub.sendAt(ready, iv);
            break;
          }

          case DirState::BusyRead:
          case DirState::BusyExcl:
            dir.nackOrQueue(msg, ready);
            break;

          case DirState::Dele:
            dir.forwardToDelegate(msg, e, ready);
            break;

          default:
            panic("node %u: read in dir state %s under %s", hub.id(),
                  dirStateName(d.state), name());
        }
    }

    void
    handleWrite(DirController &dir, const Message &msg, DirCacheEntry &e,
                Tick ready) const override
    {
        Hub &hub = dir.hub();
        const ProtocolConfig &cfg = hub.cfg();
        const NodeId req = msg.requester;
        DirEntry &d = e.dir;

        bool detected = false;
        if (d.state != DirState::Dele)
            detected = e.detector.onWrite(req, cfg.detector);

        // Delegation trigger (Section 2.3.1): a stable producer
        // writing a line whose data is at the home. When the producer
        // IS the home (common under first-touch placement) the entry
        // is self-delegated: requests were already 2-hop, but the
        // delayed intervention + speculative update machinery still
        // converts the consumers' 2-hop misses into local misses.
        if (cfg.delegationEnabled() && detected &&
            e.detector.producer() == req &&
            (d.state == DirState::Shared ||
             d.state == DirState::Unowned)) {
            dir.delegate(msg.addr, req, e, ready, msg.txnId);
            return;
        }

        switch (d.state) {
          case DirState::Unowned: {
            d.state = DirState::Excl;
            d.owner = req;
            d.sharers.clear();
            Message resp;
            resp.type = MsgType::RespExclData;
            resp.addr = msg.addr;
            resp.dst = req;
            resp.version = d.memVersion;
            resp.ackCount = 0;
            resp.txnId = msg.txnId;
            hub.sendAt(dir.withMemData(ready), resp);
            break;
          }

          case DirState::Shared: {
            const bool is_upgrade =
                msg.type == MsgType::ReqUpgrade && d.isSharer(req);
            // Table 3 instrumentation: consumers per producer-consumer
            // write = sharers being invalidated (excluding the writer).
            if (e.detector.isProducerConsumer(cfg.detector)) {
                unsigned others = 0;
                d.sharers.forEachNode(cfg.numNodes, [&](NodeId n) {
                    others += n != req;
                });
                hub.sampleConsumers(msg.addr, others);
            }
            // Invalidate every other sharer; acks go to the requester.
            // Coarse vectors expand to whole node groups here: members
            // without a copy simply ack (the ack count matches the
            // invals sent, so the requester's bookkeeping balances).
            std::uint16_t acks = 0;
            d.sharers.forEachNode(cfg.numNodes, [&](NodeId n) {
                if (n == req)
                    return;
                ++acks;
                ++hub.stats().interventionsSent;
                Message iv;
                iv.type = MsgType::Inval;
                iv.addr = msg.addr;
                iv.dst = n;
                iv.requester = req;
                iv.txnId = msg.txnId;
                // Carry the superseded epoch so late speculative
                // updates for older epochs can be recognized/dropped.
                iv.version = d.memVersion;
                hub.sendAt(ready, iv);
            });
            d.state = DirState::Excl;
            d.owner = req;
            d.sharers.clear();

            Message resp;
            resp.addr = msg.addr;
            resp.dst = req;
            resp.ackCount = acks;
            resp.txnId = msg.txnId;
            Tick when = ready;
            if (is_upgrade) {
                resp.type = MsgType::RespUpgradeAck;
            } else {
                resp.type = MsgType::RespExclData;
                resp.version = d.memVersion;
                when = dir.withMemData(ready);
            }
            hub.sendAt(when, resp);
            break;
          }

          case DirState::Excl: {
            if (d.owner == req) {
                dir.sendNack(msg, ready);
                break;
            }
            d.pendingReq = req;
            d.pendingType = msg.type;
            d.pendingOwner = d.owner;
            d.pendingTxnId = msg.txnId;
            d.state = DirState::BusyExcl;
            ++hub.stats().interventionsSent;
            Message iv;
            iv.type = MsgType::IntervTransfer;
            iv.addr = msg.addr;
            iv.dst = d.pendingOwner;
            iv.requester = req;
            iv.txnId = msg.txnId;
            hub.sendAt(ready, iv);
            break;
          }

          case DirState::BusyRead:
          case DirState::BusyExcl:
            dir.nackOrQueue(msg, ready);
            break;

          case DirState::Dele:
            dir.forwardToDelegate(msg, e, ready);
            break;

          default:
            panic("node %u: write in dir state %s under %s", hub.id(),
                  dirStateName(d.state), name());
        }
    }

    void
    finishStore(CacheController &, Addr, L2Entry &entry) const override
    {
        entry.state = LineState::Modified;
    }

    void
    updateSharedCopy(CacheController &, const Message &,
                     L2Entry &) const override
    {
        // Invalidate-based protocols: a valid copy is already the
        // current epoch (pushes target consumers that lost theirs).
    }

  private:
    ProtocolKind _kind;
};

// --- Dragon-style write-update --------------------------------------

class WriteUpdatePolicy : public CoherencePolicy
{
  public:
    ProtocolKind kind() const override
    {
        return ProtocolKind::WriteUpdate;
    }

    const verify::TransitionSpec &
    spec() const override
    {
        return verify::writeUpdateSpec();
    }

    void
    handleRead(DirController &dir, const Message &msg, DirCacheEntry &e,
               Tick ready) const override
    {
        Hub &hub = dir.hub();
        const NodeId req = msg.requester;
        DirEntry &d = e.dir;

        switch (d.state) {
          case DirState::Unowned:
          case DirState::Shared: {
            d.state = DirState::Shared;
            d.addSharer(req);
            Message resp;
            resp.type = MsgType::RespSharedData;
            resp.addr = msg.addr;
            resp.dst = req;
            resp.version = d.memVersion;
            resp.txnId = msg.txnId;
            hub.sendAt(dir.withMemData(ready), resp);
            break;
          }

          case DirState::BusyUpd:
            // A write episode is open; the requester retries (or
            // parks) until the UpdateWB lands and reads the fresh
            // epoch.
            dir.nackOrQueue(msg, ready);
            break;

          default:
            panic("node %u: read in dir state %s under %s", hub.id(),
                  dirStateName(d.state), name());
        }
    }

    void
    handleWrite(DirController &dir, const Message &msg, DirCacheEntry &e,
                Tick ready) const override
    {
        Hub &hub = dir.hub();
        const NodeId req = msg.requester;
        DirEntry &d = e.dir;

        switch (d.state) {
          case DirState::Unowned:
          case DirState::Shared: {
            // Open the episode: the line is unreachable (NACK) until
            // the writer's UpdateWB closes it, which serializes
            // writers and keeps the lost-update check sound.
            d.state = DirState::BusyUpd;
            d.pendingReq = req;
            d.pendingType = msg.type;
            d.pendingTxnId = msg.txnId;
            ++hub.stats().updateEpisodes;
            Message grant;
            grant.type = MsgType::UpdGrant;
            grant.addr = msg.addr;
            grant.dst = req;
            grant.version = d.memVersion;
            grant.ackCount = 0;
            grant.txnId = msg.txnId;
            hub.sendAt(dir.withMemData(ready), grant);
            break;
          }

          case DirState::BusyUpd:
            dir.nackOrQueue(msg, ready);
            break;

          default:
            panic("node %u: write in dir state %s under %s", hub.id(),
                  dirStateName(d.state), name());
        }
    }

    void
    handleUpdateWB(DirController &dir, const Message &msg,
                   DirCacheEntry &e, Tick ready) const override
    {
        Hub &hub = dir.hub();
        DirEntry &d = e.dir;
        if (d.state != DirState::BusyUpd || d.pendingReq != msg.requester)
            panic("node %u: UpdateWB from %u in dir state %s "
                  "(pending %u)",
                  hub.id(), msg.requester, dirStateName(d.state),
                  d.pendingReq);

        // Commit the epoch and push it to every other sharer. Coarse
        // vectors expand to whole groups; members without a copy drop
        // the push at INVALID.
        d.memVersion = msg.version;
        d.sharers.forEachNode(hub.cfg().numNodes, [&](NodeId n) {
            if (n == msg.requester)
                return;
            ++hub.stats().updatesSent;
            Message up;
            up.type = MsgType::Update;
            up.addr = msg.addr;
            up.dst = n;
            up.requester = msg.requester;
            up.version = msg.version;
            hub.sendAt(ready, up);
        });
        d.addSharer(msg.requester);
        d.state = DirState::Shared;
        d.pendingReq = invalidNode;
    }

    void
    finishStore(CacheController &cc, Addr line,
                L2Entry &entry) const override
    {
        // Self-downgrade: the writer keeps a SHARED copy and returns
        // the new data to the home, which fans out the updates.
        entry.state = LineState::Shared;
        entry.staleUpdates = 0;
        Hub &hub = cc.hub();
        Message wb;
        wb.type = MsgType::UpdateWB;
        wb.addr = line;
        wb.dst = hub.homeOf(line);
        wb.requester = hub.id();
        wb.version = entry.version;
        hub.send(wb);
    }

    void
    updateSharedCopy(CacheController &cc, const Message &msg,
                     L2Entry &entry) const override
    {
        if (msg.version > entry.version)
            entry.version = msg.version;
        ++entry.staleUpdates;
        ++cc.hub().stats().updatesApplied;
    }
};

// --- Per-line adaptive hybrid ---------------------------------------

class AdaptiveHybridPolicy : public WriteUpdatePolicy
{
  public:
    ProtocolKind kind() const override
    {
        return ProtocolKind::AdaptiveHybrid;
    }

    const verify::TransitionSpec &
    spec() const override
    {
        return verify::adaptiveHybridSpec();
    }

    void
    handleUpdateDrop(DirController &dir, const Message &msg,
                     DirCacheEntry &e, Tick) const override
    {
        // Exact sharer vectors stop updating the node; coarse vectors
        // cannot single one node out of its group, so the group stays
        // listed and the consumer keeps dropping pushes at INVALID.
        if (dir.hub().cfg().sharerGranularityLog2 == 0)
            e.dir.removeSharer(msg.requester);
    }

    void
    updateSharedCopy(CacheController &cc, const Message &msg,
                     L2Entry &entry) const override
    {
        Hub &hub = cc.hub();
        if (entry.staleUpdates + 1 >= hub.cfg().adaptiveThreshold) {
            // This copy keeps absorbing pushes nobody reads: leave
            // the update stream and fall back toward invalidate
            // behavior for this line.
            ++hub.stats().adaptiveDrops;
            cc.dropLine(msg.addr);
            Message drop;
            drop.type = MsgType::UpdateDrop;
            drop.addr = msg.addr;
            drop.dst = hub.homeOf(msg.addr);
            drop.requester = hub.id();
            hub.send(drop);
            return;
        }
        WriteUpdatePolicy::updateSharedCopy(cc, msg, entry);
    }
};

} // namespace

const CoherencePolicy &
policyFor(ProtocolKind kind)
{
    static const MesiDelePolicy mesiDir(ProtocolKind::MesiDir);
    static const MesiDelePolicy delegation(ProtocolKind::Delegation);
    static const MesiDelePolicy delegationUpdates(
        ProtocolKind::DelegationUpdates);
    static const WriteUpdatePolicy writeUpdate;
    static const AdaptiveHybridPolicy adaptiveHybrid;

    switch (kind) {
      case ProtocolKind::MesiDir: return mesiDir;
      case ProtocolKind::Delegation: return delegation;
      case ProtocolKind::DelegationUpdates: return delegationUpdates;
      case ProtocolKind::WriteUpdate: return writeUpdate;
      case ProtocolKind::AdaptiveHybrid: return adaptiveHybrid;
      case ProtocolKind::NumProtocolKinds: break;
    }
    panic("policyFor: unknown ProtocolKind %u",
          static_cast<unsigned>(kind));
}

const std::vector<ProtocolKind> &
registeredPolicyKinds()
{
    static const std::vector<ProtocolKind> kinds = {
        ProtocolKind::MesiDir,
        ProtocolKind::Delegation,
        ProtocolKind::DelegationUpdates,
        ProtocolKind::WriteUpdate,
        ProtocolKind::AdaptiveHybrid,
    };
    return kinds;
}

verify::McCheckSet
modelCheckSetFor(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::WriteUpdate:
        return verify::McCheckSet::WriteUpdate;
      case ProtocolKind::AdaptiveHybrid:
        return verify::McCheckSet::AdaptiveHybrid;
      default:
        return verify::McCheckSet::MesiDele;
    }
}

} // namespace pcsim
