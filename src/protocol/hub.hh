/**
 * @file
 * The node "hub" (Figure 2): crossbar between the processor, local
 * DRAM/directory, RAC, delegate cache and the network interface.
 *
 * The Hub owns the three protocol engines of a node:
 *  - CacheController: the processor-side coherence agent (L1/L2,
 *    MSHRs, NACK retries, RAC lookups, intervention handling),
 *  - DirController: the home-side directory engine (base
 *    write-invalidate protocol, delegation grant and forwarding),
 *  - ProducerController: the delegated-home engine (producer table,
 *    delayed interventions, speculative updates, undelegation).
 *
 * It dispatches incoming network messages to the right engine and
 * implements the checker's view of the node.
 */

#ifndef PCSIM_PROTOCOL_HUB_HH
#define PCSIM_PROTOCOL_HUB_HH

#include <algorithm>
#include <array>
#include <memory>

#include "src/core/delegate_cache.hh"
#include "src/core/rac.hh"
#include "src/mem/memory_map.hh"
#include "src/net/network.hh"
#include "src/protocol/cache_controller.hh"
#include "src/protocol/checker.hh"
#include "src/protocol/config.hh"
#include "src/protocol/dir_controller.hh"
#include "src/protocol/node_stats.hh"
#include "src/protocol/producer_controller.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/stats.hh"

namespace pcsim
{

namespace verify
{
class MessageTrace;
class TransitionObserver;
} // namespace verify

class CoherencePolicy;

/**
 * Sliding-window NACK-rate tracker. The naive boxcar counter (reset
 * whenever `tick / window` changes) undercounts a storm that straddles
 * an aligned window boundary by up to 2x: the two halves land in
 * different boxcars. Instead keep a ring of `numBuckets` sub-window
 * buckets; `note()` expires every bucket older than `window` ticks and
 * returns the count over the trailing window, so a burst is measured
 * at full strength regardless of its alignment.
 */
class NackStormWindow
{
  public:
    static constexpr Tick window = 8192;
    static constexpr Tick numBuckets = 8; ///< sub-bucket width 1024

    /** Record one NACK at @p now; returns the trailing-window count.
     *  @p now must be monotone non-decreasing across calls. */
    std::uint64_t
    note(Tick now)
    {
        const Tick bucket = now / (window / numBuckets);
        if (bucket != _curBucket) {
            const Tick advance =
                std::min<Tick>(bucket - _curBucket, numBuckets);
            for (Tick i = 1; i <= advance; ++i) {
                auto &slot = _ring[(_curBucket + i) % numBuckets];
                _count -= slot;
                slot = 0;
            }
            _curBucket = bucket;
        }
        ++_ring[bucket % numBuckets];
        ++_count;
        return _count;
    }

  private:
    std::array<std::uint64_t, numBuckets> _ring{};
    std::uint64_t _count = 0;
    Tick _curBucket = 0;
};

/** One node's hub. */
class Hub : public SimObject,
            public MessageHandler,
            public CheckerNodeView
{
  public:
    Hub(EventQueue &eq, Network &net, MemoryMap &mem_map,
        CoherenceChecker &checker, const ProtocolConfig &cfg, NodeId id,
        Rng rng);
    ~Hub() override;

    NodeId id() const { return _id; }
    const ProtocolConfig &cfg() const { return _cfg; }
    Network &network() { return _net; }
    MemoryMap &memMap() { return _memMap; }
    CoherenceChecker &checker() { return _checker; }
    NodeStats &stats() { return _stats; }
    const NodeStats &stats() const { return _stats; }

    CacheController &cacheCtrl() { return *_cacheCtrl; }
    DirController &dirCtrl() { return *_dirCtrl; }
    ProducerController &prodCtrl() { return *_prodCtrl; }

    /** The coherence policy this node runs (resolved once from
     *  ProtocolConfig::kind; src/protocol/policy.hh). */
    const CoherencePolicy &policy() const { return *_policy; }

    /** Optional structures (null when the config disables them). */
    Rac *rac() { return _rac.get(); }
    DelegateCache *delegateCache() { return _delegate.get(); }

    /** Table-3 instrumentation: consumers invalidated per write to a
     *  producer-consumer line. Owned by the System; the barrier flag
     *  region is excluded so the histogram reflects application data
     *  like the paper's Table 3. */
    void
    setConsumerHist(Histogram *h, Addr exclude_base, Addr exclude_size)
    {
        _consumerHist = h;
        _histExcludeBase = exclude_base;
        _histExcludeSize = exclude_size;
    }
    void
    sampleConsumers(Addr line, unsigned n)
    {
        if (!_consumerHist || n == 0)
            return;
        if (line >= _histExcludeBase &&
            line < _histExcludeBase + _histExcludeSize)
            return;
        _consumerHist->sample(n);
    }

    /** CPU entry point: perform one load or store. The callback
     *  receives the resulting line version. */
    void cpuAccess(bool is_write, Addr addr, AccessCallback done);

    /** Convenience sender: stamps src with this node's id. */
    void send(const Message &msg);

    /** Deferred sender: inject a copy of @p msg (src stamped with this
     *  node's id) at absolute tick @p when. The copy lives in the
     *  network's message pool, so the timer closure captures just two
     *  pointers and schedules without heap allocation. */
    void sendAt(Tick when, const Message &msg);

    /** Deferred sender, @p delta ticks from now. */
    void
    sendIn(Tick delta, const Message &msg)
    {
        sendAt(curTick() + delta, msg);
    }

    /** NACK-storm telemetry: every NACK sent by this node's home-side
     *  engines funnels through here so NodeStats::nackStormPeak tracks
     *  the worst burst within any sliding nackStormWindow-tick span
     *  (see NackStormWindow below). */
    static constexpr Tick nackStormWindow = NackStormWindow::window;
    void
    noteNackSent()
    {
        ++_stats.nacksSent;
        const std::uint64_t cur = _nackStorm.note(curTick());
        if (cur > _stats.nackStormPeak)
            _stats.nackStormPeak = cur;
    }

    /** Message history for @p line, or "" when tracing is off. Used by
     *  retry-exhaustion panics so the report carries the line's recent
     *  protocol activity. */
    std::string lineTrace(Addr line) const;

    /** Per-run conformance observer (null = hook disabled) and
     *  message trace (null = no history kept). Owned by the System. */
    void
    setConformance(verify::TransitionObserver *obs,
                   verify::MessageTrace *trace)
    {
        _observer = obs;
        _trace = trace;
    }
    verify::TransitionObserver *observer() { return _observer; }

    /** Line-align an address at coherence granularity. */
    Addr lineOf(Addr a) const { return a - (a % _cfg.lineBytes); }

    /** Home node of @p line (first-touch assigns to this node). */
    NodeId homeOf(Addr line) { return _memMap.homeOf(line, _id); }

    // MessageHandler
    void handleMessage(const Message &msg) override;

    // CheckerNodeView
    LineState l2State(Addr line, Version &version) const override;
    bool racCopy(Addr line, Version &version,
                 bool &pinned) const override;
    const ProducerEntry *producerEntry(Addr line) const override;
    DirEntry homeDirEntry(Addr line) const override;

  private:
    NodeId _id;
    const ProtocolConfig &_cfg;
    Network &_net;
    MemoryMap &_memMap;
    CoherenceChecker &_checker;
    NodeStats _stats;

    const CoherencePolicy *_policy;

    verify::TransitionObserver *_observer = nullptr;
    verify::MessageTrace *_trace = nullptr;

    NackStormWindow _nackStorm;

    Histogram *_consumerHist = nullptr;
    Addr _histExcludeBase = 0;
    Addr _histExcludeSize = 0;
    std::unique_ptr<Rac> _rac;
    std::unique_ptr<DelegateCache> _delegate;
    std::unique_ptr<CacheController> _cacheCtrl;
    std::unique_ptr<DirController> _dirCtrl;
    std::unique_ptr<ProducerController> _prodCtrl;
};

} // namespace pcsim

#endif // PCSIM_PROTOCOL_HUB_HH
