/**
 * @file
 * The one retry-backoff policy every retry path shares.
 *
 * Attempt k waits `retryBase << min(k, retryExpCap)` plus a uniform
 * jitter draw in [0, retryJitter]. The default `retryExpCap = 0`
 * reproduces the paper's flat randomized backoff exactly (one RNG
 * draw, delay in [retryBase, retryBase + retryJitter]); fault-stress
 * configurations raise the cap so colliding retries spread out
 * exponentially instead of hammering a degraded home in near-lockstep.
 */

#ifndef PCSIM_PROTOCOL_BACKOFF_HH
#define PCSIM_PROTOCOL_BACKOFF_HH

#include <cstdint>

#include "src/protocol/config.hh"
#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/**
 * Backoff delay before retry attempt @p attempt (0-based).
 * @param exponent_out when non-null, receives the capped exponent
 *        actually used (feeds NodeStats::backoffHist).
 */
inline Tick
retryBackoff(const ProtocolConfig &cfg, std::uint64_t attempt, Rng &rng,
             std::size_t *exponent_out = nullptr)
{
    const std::uint64_t exp =
        attempt < cfg.retryExpCap ? attempt : cfg.retryExpCap;
    if (exponent_out)
        *exponent_out = static_cast<std::size_t>(exp);
    return (cfg.retryBase << exp) + rng.below(cfg.retryJitter + 1);
}

} // namespace pcsim

#endif // PCSIM_PROTOCOL_BACKOFF_HH
