/**
 * @file
 * Home-side directory controller.
 *
 * Implements the base SGI-Origin-style write-invalidate protocol:
 *  - 2-hop reads/writes when the home has the data,
 *  - 3-hop interventions when a third node owns the line,
 *  - invalidation fan-out with ack collection at the requester,
 *  - BUSY transient states resolved by NACK-and-retry (Section 2.3.4),
 *  - writeback races resolved via point-to-point message ordering.
 *
 * Plus the HPCA'07 home-side delegation duties:
 *  - the producer-consumer detector lives in the directory cache,
 *  - on detection, ownership of the directory entry is delegated to
 *    the producer (DELE state, DELEGATE message),
 *  - while DELE, requests are forwarded to the delegate and the
 *    requester is told the acting home (HomeHint),
 *  - UNDELE restores normal operation and services any pending
 *    exclusive request that triggered the undelegation.
 */

#ifndef PCSIM_PROTOCOL_DIR_CONTROLLER_HH
#define PCSIM_PROTOCOL_DIR_CONTROLLER_HH

#include <unordered_map>

#include "src/mem/directory.hh"
#include "src/mem/dram.hh"
#include "src/net/message.hh"
#include "src/protocol/arbiter.hh"
#include "src/protocol/config.hh"
#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace pcsim
{

class Hub;

/** The home-node directory engine. */
class DirController
{
  public:
    DirController(Hub &hub, Rng rng);

    /** ReqShared / ReqExcl / ReqUpgrade for a line homed here. Under
     *  a parked-request arbitration mode the arrival may be parked
     *  (or NACKed on queue overflow) instead of handled; otherwise it
     *  goes straight into handleRequestCore. */
    void handleRequest(const Message &msg);
    void handleWriteback(const Message &msg);
    void handleSharedWriteback(const Message &msg);
    void handleTransferAck(const Message &msg);
    void handleIntervNack(const Message &msg);
    void handleUndele(const Message &msg);
    /** Update-based policies: writer closes an episode / consumer
     *  leaves the update stream. */
    void handleUpdateWB(const Message &msg);
    void handleUpdateDrop(const Message &msg);

    /** Merged directory view (cache over store) for the checker. */
    DirEntry dirEntry(Addr line) const;

    DirectoryStore &store() { return _store; }
    DirectoryCache &dirCache() { return _dirCache; }
    DramModel &dram() { return _dram; }

    /** @name Policy support surface.
     *  Shared machinery CoherencePolicy implementations call back
     *  into while servicing a dispatched request. */
    /// @{
    Hub &hub() { return _hub; }

    /** Detected pattern: delegate the line to @p producer.
     *  @param txn_id the triggering write's transaction id. */
    void delegate(Addr line, NodeId producer, DirCacheEntry &e,
                  Tick ready, std::uint64_t txn_id);
    /** Forward a request to the delegate and hint the requester. */
    void forwardToDelegate(const Message &msg, DirCacheEntry &e,
                           Tick ready);

    void sendNack(const Message &msg, Tick ready);
    /** Busy-line resolution: park @p msg in the per-line arbiter
     *  queue when a non-default arbitration mode is active (and the
     *  queue has room), else NACK at @p ready. */
    void nackOrQueue(const Message &msg, Tick ready);
    /** Charge a DRAM data access and combine with @p ready. */
    Tick withMemData(Tick ready);
    /// @}

    /** Episode-completion hook: if @p line has parked requests and is
     *  no longer busy, schedule the next one to re-enter the engine
     *  hubLatency ticks out. No-op under nack-retry arbitration. */
    void maybeDrain(Addr line);

  private:
    /** The pre-arbitration handleRequest body: common bookkeeping,
     *  then dispatch into the coherence policy's handleRead /
     *  handleWrite (src/protocol/policy.hh). Drained parked requests
     *  re-enter here. */
    void handleRequestCore(const Message &msg);

    /** Directory-cache access charging DRAM latency on miss.
     *  @param[out] ready earliest tick a reply may leave. */
    DirCacheEntry *access(Addr line, Tick &ready);

    /** @name Bounded local re-handle retries.
     *
     * Writebacks and undelegations cannot be NACKed (they carry the
     * only copy of the line), so a wedged directory-cache set forces a
     * local re-handle. These helpers give that loop the shared
     * jittered backoff, count it in NodeStats, and enforce the
     * maxRetries livelock guard that the remote retry paths already
     * have.
     */
    /// @{
    /** Account one re-handle attempt for @p msg and return the delay
     *  before it; panics (with the line's message trace) past
     *  maxRetries. @p what names the message type for the report. */
    Tick rehandleBackoff(const Message &msg, const char *what);
    /** Forget the attempt counter once the re-handle succeeds. */
    void rehandleDone(Addr line);
    /// @}

    Hub &_hub;
    const ProtocolConfig &_cfg;
    DirectoryStore _store;
    DirectoryCache _dirCache;
    DramModel _dram;
    Rng _rng;
    LineArbiter _arb;

    /** Outstanding re-handle attempts per line (normally empty). */
    std::unordered_map<Addr, std::uint32_t> _rehandleRetries;
};

} // namespace pcsim

#endif // PCSIM_PROTOCOL_DIR_CONTROLLER_HH
