/**
 * @file
 * Runtime coherence / sequential-consistency invariant checker.
 *
 * Section 2.5: "we applied invariant checking to our simulator to
 * bridge the gap between the abstract model and the simulated
 * implementation ... we tested both Murphi's 'single writer exists'
 * and 'consistency within the directory' invariants at the completion
 * of each transaction that incurs a L2 miss."
 *
 * Data values are abstracted to per-line write-epoch Versions. The
 * VersionAuthority is the oracle: each performed store increments the
 * line's version. The checker validates:
 *  - no lost updates: a store must start from the current version,
 *  - single writer: when a store performs, no other node holds any
 *    readable copy,
 *  - monotonic reads per node,
 *  - at quiescence: every readable copy equals the current version
 *    and every directory entry is consistent with the caches.
 */

#ifndef PCSIM_PROTOCOL_CHECKER_HH
#define PCSIM_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/cache/line_state.hh"
#include "src/core/delegate_cache.hh"
#include "src/mem/directory.hh"
#include "src/sim/types.hh"

namespace pcsim
{

namespace verify
{
class MessageTrace;
} // namespace verify

/** Oracle of current line versions ("what memory should contain"). */
class VersionAuthority
{
  public:
    Version current(Addr line) const
    {
        auto it = _versions.find(line);
        return it == _versions.end() ? 0 : it->second;
    }

    /** A store performed: advance the line's epoch. */
    Version bump(Addr line) { return ++_versions[line]; }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[line, v] : _versions)
            fn(line, v);
    }

    std::size_t numLines() const { return _versions.size(); }

  private:
    std::unordered_map<Addr, Version> _versions;
};

/** What the checker can see of one node (implemented by Hub). */
class CheckerNodeView
{
  public:
    virtual ~CheckerNodeView() = default;

    /** L2 state of @p line; fills @p version when valid. */
    virtual LineState l2State(Addr line, Version &version) const = 0;
    /** RAC copy of @p line, if any. */
    virtual bool racCopy(Addr line, Version &version,
                         bool &pinned) const = 0;
    /** Producer-table entry if the line is delegated to this node. */
    virtual const ProducerEntry *producerEntry(Addr line) const = 0;
    /** Merged home-side directory view (cache over store). */
    virtual DirEntry homeDirEntry(Addr line) const = 0;
};

/** The invariant checker. */
class CoherenceChecker
{
  public:
    explicit CoherenceChecker(bool enabled) : _enabled(enabled) {}

    void addNode(CheckerNodeView *view) { _nodes.push_back(view); }

    bool enabled() const { return _enabled; }
    void setEnabled(bool on) { _enabled = on; }

    /**
     * Parallel-kernel mode: guard the version authority and the
     * monotonic-read map with a mutex (stores/loads perform on shard
     * worker threads), and skip the instantaneous cross-node
     * single-writer scan -- other shards' caches are at different
     * local ticks mid-window, so reading them would false-positive.
     * Every skipped invariant is still verified at quiescence.
     */
    void setParallel(bool on) { _parallel = on; }

    /**
     * Update-based policy mode (write-update / adaptive hybrid): the
     * single-writer invariant does not hold -- sharers legitimately
     * keep readable copies while a store performs, and the writer's
     * UpdateWB refreshes them. Skip the instantaneous cross-node scan;
     * the lost-update check (stores must start from the current
     * version, serialized by the home's BUSY_UPD episode) and the
     * quiescence sweep still run.
     */
    void setUpdateBased(bool on) { _updateBased = on; }

    /** Attach the per-run message trace: violations then report the
     *  last few messages seen for the offending line. */
    void setTrace(const verify::MessageTrace *trace) { _trace = trace; }

    VersionAuthority &authority() { return _authority; }
    const VersionAuthority &authority() const { return _authority; }

    /**
     * A store by @p node to @p line performed from a copy stamped
     * @p copy_version. Validates and returns the new version.
     */
    Version storePerformed(NodeId node, Addr line, Version copy_version);

    /** A load by @p node of @p line returned @p version. */
    void loadPerformed(NodeId node, Addr line, Version version);

    /**
     * Full-system check, valid only when no transactions are in
     * flight (end of run / directed tests).
     * @param home_of maps a line to its home node.
     */
    template <typename HomeOf>
    void
    checkQuiescent(const HomeOf &home_of) const
    {
        if (!_enabled)
            return;
        _authority.forEach([&](Addr line, Version cur) {
            checkLineQuiescent(line, cur, home_of(line));
        });
    }

    std::uint64_t numChecks() const { return _numChecks; }

  private:
    void checkLineQuiescent(Addr line, Version cur, NodeId home) const;

    /** Fail with structured context: the formatted complaint plus the
     *  offending node, line address and recent message trace. */
    [[noreturn]] void violation(NodeId node, Addr line, const char *fmt,
                                ...) const
        __attribute__((format(printf, 4, 5)));

    bool _enabled;
    bool _parallel = false;
    bool _updateBased = false;
    /** Guards _authority, _lastSeen and _numChecks in parallel mode
     *  (the version authority runs even with checking disabled: it
     *  is the data-value oracle for every store). */
    mutable std::mutex _mutex;
    const verify::MessageTrace *_trace = nullptr;
    std::vector<CheckerNodeView *> _nodes;
    VersionAuthority _authority;
    /** Monotonic-read tracking: (node, line) -> last observed. */
    mutable std::unordered_map<std::uint64_t, Version> _lastSeen;
    mutable std::uint64_t _numChecks = 0;

    static std::uint64_t
    key(NodeId node, Addr line)
    {
        return (static_cast<std::uint64_t>(node) << 48) ^ line;
    }
};

} // namespace pcsim

#endif // PCSIM_PROTOCOL_CHECKER_HH
