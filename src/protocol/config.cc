#include "src/protocol/config.hh"

#include <cstdio>

#include "src/sim/logging.hh"

namespace pcsim
{

namespace
{

std::string
format(const char *fmt, unsigned long long a, unsigned long long b = 0)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), fmt, a, b);
    return buf;
}

} // namespace

const char *
protocolKindName(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::MesiDir:
        return "mesi-dir";
      case ProtocolKind::Delegation:
        return "delegation";
      case ProtocolKind::DelegationUpdates:
        return "delegation-updates";
      case ProtocolKind::WriteUpdate:
        return "write-update";
      case ProtocolKind::AdaptiveHybrid:
        return "adaptive-hybrid";
      default:
        return "?";
    }
}

bool
protocolKindFromName(const std::string &name, ProtocolKind &out)
{
    for (unsigned k = 0;
         k < static_cast<unsigned>(ProtocolKind::NumProtocolKinds); ++k) {
        const auto kind = static_cast<ProtocolKind>(k);
        if (name == protocolKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

const char *
arbitrationName(Arbitration a)
{
    switch (a) {
      case Arbitration::NackRetry:
        return "nack-retry";
      case Arbitration::Queue:
        return "queue";
      case Arbitration::AgedPriority:
        return "aged-priority";
      default:
        return "?";
    }
}

bool
arbitrationFromName(const std::string &name, Arbitration &out)
{
    for (unsigned a = 0;
         a < static_cast<unsigned>(Arbitration::NumArbitrations); ++a) {
        const auto arb = static_cast<Arbitration>(a);
        if (name == arbitrationName(arb)) {
            out = arb;
            return true;
        }
    }
    return false;
}

std::string
ProtocolConfig::validateError() const
{
    if (kind >= ProtocolKind::NumProtocolKinds)
        return format("unknown ProtocolKind %llu (valid kinds are "
                      "0..%llu; see protocolKindName)",
                      static_cast<unsigned long long>(kind),
                      static_cast<unsigned long long>(
                          ProtocolKind::NumProtocolKinds) -
                          1);
    if (numNodes == 0)
        return "numNodes must be at least 1";
    if (numNodes > maxNodes)
        return format("numNodes %llu exceeds the supported maximum %llu",
                      numNodes, maxNodes);
    if (numNodes >= invalidNode)
        return format("numNodes %llu does not fit the NodeId "
                      "representation (max %llu)",
                      numNodes, invalidNode - 1ull);
    if (!isPowerOfTwo(lineBytes) || lineBytes < 8)
        return format("lineBytes %llu must be a power of two >= 8",
                      lineBytes);
    if (sharerGranularityLog2 > log2Ceil(numNodes))
        return format("sharerGranularityLog2 %llu groups more than "
                      "numNodes=%llu nodes per sharer bit",
                      sharerGranularityLog2, numNodes);
    if (mshrs == 0)
        return "mshrs must be at least 1";
    if (maxRetries == 0)
        return "maxRetries must be at least 1";
    if (retryBase == 0)
        return "retryBase must be nonzero";
    if (retryExpCap > 20)
        return format("retryExpCap %llu would shift retryBase past "
                      "any plausible horizon (max 20)",
                      retryExpCap);
    if (retryJitter == 0 && numNodes >= 64)
        return format("retryJitter 0 at %llu nodes: colliding "
                      "requesters retry in lockstep and can convoy "
                      "into a livelock (see config.hh); set "
                      "retryJitter > 0",
                      numNodes);
    if (retryBase > (maxTick >> retryExpCap))
        return format("retryBase %llu << retryExpCap %llu overflows "
                      "the Tick range",
                      retryBase, retryExpCap);
    if (retryJitter == maxTick)
        return "retryJitter + 1 overflows (the jitter draw is uniform "
               "in [0, retryJitter]; use a smaller bound)";
    if (arbitration >= Arbitration::NumArbitrations)
        return format("unknown Arbitration %llu (valid modes are "
                      "0..%llu; see arbitrationName)",
                      static_cast<unsigned long long>(arbitration),
                      static_cast<unsigned long long>(
                          Arbitration::NumArbitrations) -
                          1);
    if (arbitrationActive() && arbQueueDepth == 0)
        return "arbQueueDepth must be at least 1 when a parked-request "
               "arbitration mode is selected";

    if (l1.sizeBytes == 0 || l1.ways == 0 ||
        l1.sizeBytes < l1.ways * l1.lineBytes)
        return "L1 geometry is degenerate (size/ways/lineBytes)";
    if (l2SizeBytes == 0 || l2Ways == 0 ||
        (l2SetsOverride == 0 && l2SizeBytes < l2Ways * lineBytes))
        return "L2 geometry is degenerate (size/ways/lineBytes)";

    if (dirCache.entries == 0 || dirCache.ways == 0 ||
        dirCache.entries < dirCache.ways)
        return format("directory cache needs entries (%llu) >= ways "
                      "(%llu), both nonzero",
                      dirCache.entries, dirCache.ways);

    if (racEnabled) {
        if (rac.sizeBytes == 0 || rac.ways == 0 ||
            rac.sizeBytes < rac.ways * rac.lineBytes)
            return "RAC geometry is degenerate (size/ways/lineBytes)";
    }
    if (delegationEnabled()) {
        if (!racEnabled)
            return std::string("protocol kind '") +
                   protocolKindName(kind) +
                   "' requires a RAC (pinned surrogate memory): "
                   "enable racEnabled";
        if (delegate.producerEntries == 0 ||
            delegate.consumerEntries == 0 || delegate.ways == 0)
            return "delegate cache needs nonzero producer/consumer "
                   "entries and ways";
        if (delegate.producerEntries < delegate.ways)
            return format("delegate cache needs producerEntries "
                          "(%llu) >= ways (%llu)",
                          delegate.producerEntries, delegate.ways);
    }
    if (updateBased()) {
        if (racEnabled)
            return std::string("protocol kind '") +
                   protocolKindName(kind) +
                   "' is update-based and keeps sharer copies fresh "
                   "in place: the RAC does not apply (disable "
                   "racEnabled)";
        if (adaptive() && adaptiveThreshold == 0)
            return "adaptiveThreshold must be at least 1 (a consumer "
                   "must absorb at least one unread update before it "
                   "may self-invalidate)";
    }

    if (faults.enabled) {
        const std::string ferr =
            faults.validateError(numNodes, dirCache.ways);
        if (!ferr.empty())
            return "fault injection: " + ferr;
    }
    return "";
}

void
ProtocolConfig::validate() const
{
    const std::string err = validateError();
    if (!err.empty())
        fatal("invalid protocol configuration: %s", err.c_str());
}

} // namespace pcsim
