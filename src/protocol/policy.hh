/**
 * @file
 * Pluggable coherence-policy layer.
 *
 * A CoherencePolicy packages everything that differs between the
 * protocols pcsim can run: the home-side directory FSM, the cache
 * side's store-completion and update-consumption behavior, and the
 * declarative transition spec the verify layer checks the policy
 * against. The Hub resolves ProtocolConfig::kind to a stateless
 * shared policy instance once at construction; controllers dispatch
 * through it and keep only the machinery every protocol shares
 * (request routing, MSHRs, NACK retries, directory-cache management).
 *
 * Registered policies:
 *  - MesiDelePolicy (kinds mesi-dir / delegation / delegation-updates):
 *    the SGI-Origin-style write-invalidate directory protocol, plus
 *    the HPCA'07 delegation and speculative-update extensions when the
 *    kind enables them.
 *  - WriteUpdatePolicy (write-update): Dragon-style write-update over
 *    the directory. The home serializes write episodes through
 *    BUSY_UPD: a write is granted with UpdGrant, the writer performs
 *    the store, self-downgrades to SHARED and returns the data with
 *    UpdateWB, and the home fans Update pushes to the other sharers.
 *    Caches only ever hold INVALID or SHARED lines.
 *  - AdaptiveHybridPolicy (adaptive-hybrid): write-update plus
 *    per-line consumer self-invalidation -- a sharer that absorbs
 *    adaptiveThreshold pushes without an intervening local read drops
 *    its copy and tells the home to stop updating it (UpdateDrop),
 *    degrading that line toward invalidate behavior.
 */

#ifndef PCSIM_PROTOCOL_POLICY_HH
#define PCSIM_PROTOCOL_POLICY_HH

#include <vector>

#include "src/mem/directory.hh"
#include "src/net/message.hh"
#include "src/protocol/config.hh"
#include "src/sim/types.hh"

namespace pcsim
{

namespace verify
{
class TransitionSpec;
enum class McCheckSet;
} // namespace verify

class CacheController;
class DirController;
struct L2Entry;

/** One coherence protocol's variable parts (stateless; shared). */
class CoherencePolicy
{
  public:
    virtual ~CoherencePolicy() = default;

    virtual ProtocolKind kind() const = 0;
    const char *name() const { return protocolKindName(kind()); }

    /** The transition spec `pcsim lint` and the runtime conformance
     *  observer hold this policy to. */
    virtual const verify::TransitionSpec &spec() const = 0;

    /** @name Home-side directory FSM.
     *  Called by DirController inside its conformance frame, after
     *  the directory-cache access resolved (@p ready = earliest reply
     *  tick). Wedged-set NACKs happen before dispatch. */
    /// @{
    virtual void handleRead(DirController &dir, const Message &msg,
                            DirCacheEntry &e, Tick ready) const = 0;
    virtual void handleWrite(DirController &dir, const Message &msg,
                             DirCacheEntry &e, Tick ready) const = 0;
    /** Writer returns the episode's data (update-based only). */
    virtual void handleUpdateWB(DirController &dir, const Message &msg,
                                DirCacheEntry &e, Tick ready) const;
    /** Consumer leaves the update stream (adaptive only). */
    virtual void handleUpdateDrop(DirController &dir, const Message &msg,
                                  DirCacheEntry &e, Tick ready) const;
    /// @}

    /** @name Cache-side hooks. */
    /// @{
    /** Finalize a performed store on @p entry: the version is already
     *  bumped; the policy sets the post-store line state and emits any
     *  protocol messages (update-based: SHARED + UpdateWB). */
    virtual void finishStore(CacheController &cc, Addr line,
                             L2Entry &entry) const = 0;
    /** An Update push arrived for a line with a valid L2 copy. */
    virtual void updateSharedCopy(CacheController &cc,
                                  const Message &msg,
                                  L2Entry &entry) const = 0;
    /// @}
};

/** The shared policy instance for @p kind (panics on NumProtocolKinds). */
const CoherencePolicy &policyFor(ProtocolKind kind);

/** Every registered kind, in ProtocolKind order (drives the compare
 *  bake-off and the per-policy lint sweep). */
const std::vector<ProtocolKind> &registeredPolicyKinds();

/** The abstract-model configuration family `pcsim lint` cross-checks
 *  @p kind's spec against (verify::lintSpecWithModel). */
verify::McCheckSet modelCheckSetFor(ProtocolKind kind);

} // namespace pcsim

#endif // PCSIM_PROTOCOL_POLICY_HH
