/**
 * @file
 * Processor-side coherence agent.
 *
 * Owns the node's L1D and L2 arrays and the MSHRs. Responsibilities:
 *  - service CPU loads/stores (hits locally, misses via the protocol),
 *  - route requests: producer table (line delegated to this node) ->
 *    consumer table hint (delegated elsewhere) -> default home,
 *  - collect data replies and invalidation acks (Origin-style ack
 *    collection at the requester),
 *  - retry on NACKs with randomized backoff; drop stale consumer-table
 *    hints on NackNotHome,
 *  - respond to interventions (Inval / downgrade / transfer),
 *  - victim-cache remote lines into the RAC and service read misses
 *    from it; absorb speculative UPDATE pushes (Section 2.4.3).
 */

#ifndef PCSIM_PROTOCOL_CACHE_CONTROLLER_HH
#define PCSIM_PROTOCOL_CACHE_CONTROLLER_HH

#include <deque>
#include <functional>
#include <unordered_map>

#include "src/cache/cache_array.hh"
#include "src/cache/l1_cache.hh"
#include "src/cache/line_state.hh"
#include "src/cache/mshr.hh"
#include "src/net/message.hh"
#include "src/protocol/config.hh"
#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace pcsim
{

class Hub;

/** An L2 line: MESI state plus the data-version abstraction. */
struct L2Entry
{
    LineState state = LineState::Invalid;
    Version version = 0;
    /** Update-based policies: pushes absorbed since the last local
     *  read (the adaptive hybrid's self-invalidation counter). */
    std::uint32_t staleUpdates = 0;
};

/** Completion callback: delivers the line version that was read or
 *  produced (the data abstraction; see DESIGN.md). */
using AccessCallback = std::function<void(Version)>;

/** The processor-side controller. */
class CacheController
{
  public:
    CacheController(Hub &hub, Rng rng);

    /** CPU access entry point (called via Hub::cpuAccess).
     *  @p conflict_retries counts MSHR-conflict reschedules of this
     *  same access (internal; feeds the maxRetries guard). */
    void access(bool is_write, Addr addr, AccessCallback done,
                unsigned conflict_retries = 0);

    /** @name Network-message entry points (dispatched by the Hub). */
    /// @{
    void handleResponse(const Message &msg);
    void handleIntervention(const Message &msg);
    void handleUpdate(const Message &msg);
    void handleHomeHint(const Message &msg);
    /// @}

    /**
     * Locally downgrade an M/E line to S (delayed or on-demand
     * intervention issued by the ProducerController).
     * @return the line's current version; if the line is no longer
     *         present, returns @p fallback.
     */
    Version localDowngrade(Addr line, Version fallback);

    /** Is a transaction outstanding for @p line? */
    bool hasMshr(Addr line) { return _mshrs.find(line) != nullptr; }

    /** Transaction id of the outstanding MSHR (0 if none). */
    std::uint64_t
    mshrTxnId(Addr line)
    {
        Mshr *m = _mshrs.find(line);
        return m ? m->txnId : 0;
    }

    /** L2 state probe (checker / ProducerController). */
    LineState l2State(Addr line, Version &version) const;

    /** Number of outstanding transactions (drain detection). */
    std::size_t outstanding() { return _mshrs.size(); }

    /** @name Policy support surface (src/protocol/policy.hh). */
    /// @{
    Hub &hub() { return _hub; }

    /** Drop a valid local copy (L1 range + L2), as the adaptive
     *  hybrid's consumer self-invalidation does. */
    void dropLine(Addr line);
    /// @}

  private:
    void missPath(bool is_write, Addr addr, Addr line,
                  AccessCallback done, unsigned conflict_retries);
    /** Pick the target (producer table / consumer hint / home) and
     *  send the MSHR's request. */
    void sendRequest(Mshr &m);
    void retry(Addr line);
    void maybeComplete(Mshr &m);
    void complete(Mshr &m);

    /** Fill @p line into the L2, evicting (writeback / victim-cache)
     *  as needed. Returns the entry. */
    L2Entry *l2Fill(Addr line, LineState state, Version version);
    void evictVictim(Addr victim_line, L2Entry &victim);

    /** Perform a store on a writable resident line. */
    void performStore(Addr line, L2Entry &entry);

    /** Record that @p line was invalidated at epoch @p version. */
    void recordTombstone(Addr line, Version version);
    /** Is a message carrying @p version for @p line stale? */
    bool staleByTombstone(Addr line, Version version) const;

    Hub &_hub;
    const ProtocolConfig &_cfg;
    L1Cache _l1;
    CacheArray<L2Entry> _l2;
    MshrTable _mshrs;
    Rng _rng;

    /**
     * Recently-invalidated-lines buffer: a speculative UPDATE that was
     * already in flight when its line was undelegated can arrive
     * AFTER the next writer's invalidation (no point-to-point
     * ordering between the two sources). Each Inval records the
     * superseded epoch here; updates at or below it are dropped.
     * Modeled as a small FIFO, as the hardware would build it.
     */
    std::unordered_map<Addr, Version> _tombstones;
    std::deque<Addr> _tombstoneFifo;
    static constexpr std::size_t tombstoneCapacity = 128;

    std::uint64_t _nextTxnId = 0;
};

} // namespace pcsim

#endif // PCSIM_PROTOCOL_CACHE_CONTROLLER_HH
