/**
 * @file
 * Delegated-home engine (Sections 2.3 and 2.4).
 *
 * Runs at the producer node for every line delegated to it:
 *  - accepts DELEGATE messages, pins the surrogate-memory RAC entry
 *    and services the pending local write,
 *  - acts as the home for remote read requests (2-hop misses),
 *  - undelegates on producer-table conflict (reason 1), pinned-RAC
 *    pressure (reason 2) and remote exclusive requests (reason 3),
 *  - implements the delayed intervention (Section 2.4.1): a fixed,
 *    configurable interval after each write epoch completes, the
 *    producer's processor copy is downgraded, the data lands in the
 *    local RAC, and speculative UPDATEs are pushed to the previous
 *    sharing vector (Section 2.4.2) -- the nodes most likely to
 *    consume the new data.
 */

#ifndef PCSIM_PROTOCOL_PRODUCER_CONTROLLER_HH
#define PCSIM_PROTOCOL_PRODUCER_CONTROLLER_HH

#include <cstdint>
#include <unordered_map>

#include "src/core/delegate_cache.hh"
#include "src/net/message.hh"
#include "src/protocol/arbiter.hh"
#include "src/protocol/config.hh"
#include "src/sim/types.hh"

namespace pcsim
{

class Hub;

/** Reasons a delegation ends (Section 2.3.3). */
enum class UndeleReason
{
    Capacity, ///< producer table conflict
    Flush,    ///< pinned RAC entry displaced
    Conflict, ///< another node requested an exclusive copy
    Refused,  ///< delegation could not be accepted at all
};

/** The producer-side delegated-home engine. */
class ProducerController
{
  public:
    ProducerController(Hub &hub);

    /** Is @p line currently delegated to this node? */
    bool isDelegated(Addr line);
    const ProducerEntry *entryFor(Addr line) const;

    /** DELEGATE from the home node. */
    void handleDelegate(const Message &msg);

    /** Request (local or remote) for a line in the producer table.
     *  Under a parked-request arbitration mode a remote arrival may
     *  park (or NACK on queue overflow) instead of being handled. */
    void handleRequest(const Message &msg);

    /** Episode-completion hook: if @p line has parked remote requests
     *  and can service one now, schedule it to re-enter the engine
     *  hubLatency ticks out. No-op under nack-retry arbitration. */
    void maybeDrain(Addr line);

    /** The local CPU's write transaction on a delegated line finished
     *  (all acks collected): start the delayed-intervention timer. */
    void onLocalWriteComplete(Addr line);

    /** The local L2 evicted a delegated line: absorb the data into
     *  the pinned RAC entry and close the write epoch. */
    void onLocalFlush(Addr line, Version version);

    /** RAC set pressure forces a pinned entry out (reason 2). */
    void undelegateForRacPressure(Addr line);

    std::size_t numDelegated();

  private:
    /** The pre-arbitration handleRequest body; drained parked
     *  requests re-enter here. */
    void handleRequestCore(const Message &msg);
    void serveLocalWrite(const Message &msg, ProducerEntry &e);
    void serveRemoteRead(const Message &msg, ProducerEntry &e);
    void fireDelayedIntervention(Addr line, std::uint64_t token);
    /** Downgrade/absorb the epoch's data and push updates. */
    void completeEpoch(Addr line, ProducerEntry &e, Version version);
    void undelegate(Addr line, ProducerEntry &e, UndeleReason reason,
                    NodeId pending_req = invalidNode,
                    MsgType pending_type = MsgType::ReqExcl,
                    std::uint64_t pending_txn = 0);

    Hub &_hub;
    const ProtocolConfig &_cfg;
    LineArbiter _arb;
    /** Timer-validity tokens (re-delegation invalidates old timers). */
    std::unordered_map<Addr, std::uint64_t> _timerTokens;
    std::uint64_t _nextToken = 1;
    /** Last downgrade tick per line, for the extra-write-miss stat. */
    std::unordered_map<Addr, Tick> _lastDowngrade;
};

} // namespace pcsim

#endif // PCSIM_PROTOCOL_PRODUCER_CONTROLLER_HH
