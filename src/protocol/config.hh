/**
 * @file
 * Protocol / node configuration knobs (Table 1 defaults).
 */

#ifndef PCSIM_PROTOCOL_CONFIG_HH
#define PCSIM_PROTOCOL_CONFIG_HH

#include <cstdint>
#include <string>

#include "src/cache/l1_cache.hh"
#include "src/core/delegate_cache.hh"
#include "src/core/pc_detector.hh"
#include "src/core/rac.hh"
#include "src/mem/dram.hh"
#include "src/mem/directory.hh"
#include "src/net/faults.hh"
#include "src/net/network.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/**
 * Which coherence policy the protocol stack runs (the key into the
 * CoherencePolicy registry, src/protocol/policy.hh).
 *
 * The first three kinds are the original hard-wired stack: the base
 * SGI-Origin-style MESI directory, plus the HPCA'07 delegation and
 * delegation+speculative-update mechanisms. WriteUpdate is a
 * Dragon-style write-update protocol (stores broadcast new data to
 * sharers instead of invalidating them); AdaptiveHybrid is the
 * per-line competitive hybrid that starts update-based and lets each
 * consumer self-invalidate out of the update stream after
 * `adaptiveThreshold` unread updates.
 */
enum class ProtocolKind : std::uint8_t
{
    MesiDir,           ///< base directory write-invalidate
    Delegation,        ///< + HPCA'07 directory delegation
    DelegationUpdates, ///< + speculative update pushes
    WriteUpdate,       ///< Dragon-style write-update
    AdaptiveHybrid,    ///< per-line adaptive update/invalidate
    NumProtocolKinds
};

/** Display name of @p k ("mesi-dir", "delegation", ...). */
const char *protocolKindName(ProtocolKind k);

/** Parse a kind name (the protocolKindName spellings, case-sensitive);
 *  returns false for unknown names. */
bool protocolKindFromName(const std::string &name, ProtocolKind &out);

/**
 * How the home-side engines arbitrate requests that arrive while a
 * line is busy (see DESIGN.md "Arbitration & fairness").
 *
 * NackRetry is the paper's behaviour: the home NACKs and the
 * requester retries after randomized backoff — simple, but with no
 * fairness guarantee under contention. Queue parks busy-line requests
 * in a bounded per-line FIFO at the home and drains them oldest-first
 * when the episode completes; a full queue falls back to NACK so the
 * lossless-channel contract is preserved. AgedPriority is Queue with
 * the drain order keyed on the request's carried retry count
 * (Message::retries), so the longest-suffering requester is serviced
 * first when the queue has been overflowing back into NACK mode.
 */
enum class Arbitration : std::uint8_t
{
    NackRetry,    ///< NACK + randomized-backoff retry (default)
    Queue,        ///< bounded per-line FIFO at the home
    AgedPriority, ///< FIFO drained by retry-count age
    NumArbitrations
};

/** Display name of @p a ("nack-retry", "queue", "aged-priority"). */
const char *arbitrationName(Arbitration a);

/** Parse an arbitration name (the arbitrationName spellings,
 *  case-sensitive); returns false for unknown names. */
bool arbitrationFromName(const std::string &name, Arbitration &out);

/** Everything a node and its controllers need to know. */
struct ProtocolConfig
{
    /** Largest machine the protocol stack is validated for. The
     *  SharerSet representation itself scales further, but NodeId and
     *  the workload suite are only exercised to this size. */
    static constexpr unsigned maxNodes = 4096;

    unsigned numNodes = 16;
    /** Coarse sharing-vector granularity: log2 of the nodes covered
     *  by one directory sharer bit (0 = exact, one bit per node).
     *  Nonzero values trade directory width for spurious
     *  invalidations, SGI-Origin style. */
    unsigned sharerGranularityLog2 = 0;
    std::uint32_t lineBytes = 128; ///< coherence granularity (L2 line)

    // Processor-side hierarchy (Table 1).
    L1Config l1;
    std::size_t l2SizeBytes = 2 * 1024 * 1024;
    std::size_t l2Ways = 4;
    /** Exact L2 set count override (0 = derive from size); lets
     *  Figure 8 model a 1.04 MB L2 with a non-power-of-two set
     *  count. */
    std::size_t l2SetsOverride = 0;
    Tick l2HitLatency = 10;

    // Hub timing.
    Tick hubLatency = 8;  ///< directory/hub processing per message
    Tick busLatency = 20; ///< processor <-> hub transfer

    // Memory.
    DramConfig dram;
    DirectoryCacheConfig dirCache;
    /** Expected lines homed per node: pre-reserves the backing
     *  DirectoryStore hash table so it never rehashes mid-run. */
    std::size_t dirReserveLines = 1 << 15;

    /**
     * @name NACK retry behaviour (src/protocol/backoff.hh).
     *
     * Attempt k backs off `retryBase << min(k, retryExpCap)` plus a
     * uniform jitter in [0, retryJitter]. The jitter is what breaks
     * retry convoys: after a NACK storm (e.g. many writers colliding
     * on one home line, or a fault window shrinking the directory
     * cache), requesters with identical timing would otherwise retry
     * in lockstep and collide forever. retryJitter = 0 is therefore
     * rejected by validate() at 64+ nodes, where enough requesters
     * can align for the convoy to become a livelock in practice; at
     * smaller machines it is permitted for controlled experiments but
     * is a known hazard.
     */
    /// @{
    Tick retryBase = 64;
    Tick retryJitter = 64;
    /** Exponential-backoff cap: 0 (default) keeps the paper's flat
     *  randomized backoff; fault-stress configs raise it so repeated
     *  retries spread out (capped at `retryBase << retryExpCap`). */
    std::uint32_t retryExpCap = 0;
    std::uint32_t maxRetries = 100000; ///< forward-progress guard
    /// @}

    /**
     * @name Busy-line arbitration (src/protocol/arbiter.hh).
     *
     * Default NackRetry keeps every existing result byte-identical.
     * Queue / AgedPriority park up to arbQueueDepth requests per busy
     * line at the home instead of NACKing; overflow falls back to
     * NACK (AgedPriority then services the highest Message::retries
     * first on drain).
     */
    /// @{
    Arbitration arbitration = Arbitration::NackRetry;
    std::uint32_t arbQueueDepth = 32;
    /** True when a parked-request arbiter is in play (anything other
     *  than the default NACK-and-retry discipline). */
    bool arbitrationActive() const
    {
        return arbitration != Arbitration::NackRetry;
    }
    /// @}

    /** Deterministic fault injection (off by default; see
     *  src/net/faults.hh and `pcsim faults`). */
    FaultConfig faults;

    // MSHRs (Table 1: max 16 outstanding L2 misses).
    std::size_t mshrs = 16;

    // --- coherence policy ---------------------------------------

    /** The coherence policy (replaces the old delegationEnabled /
     *  updatesEnabled bool pair; those remain as accessors below so
     *  call sites read the same). */
    ProtocolKind kind = ProtocolKind::MesiDir;

    /** HPCA'07 directory delegation is active (Section 2.3). */
    bool delegationEnabled() const
    {
        return kind == ProtocolKind::Delegation ||
               kind == ProtocolKind::DelegationUpdates;
    }
    /** Speculative update pushes are active (Section 2.4). */
    bool updatesEnabled() const
    {
        return kind == ProtocolKind::DelegationUpdates;
    }
    /** Stores propagate by updating sharers instead of invalidating
     *  them (WriteUpdate and AdaptiveHybrid). */
    bool updateBased() const
    {
        return kind == ProtocolKind::WriteUpdate ||
               kind == ProtocolKind::AdaptiveHybrid;
    }
    /** Per-line competitive update/invalidate adaptation is active. */
    bool adaptive() const
    {
        return kind == ProtocolKind::AdaptiveHybrid;
    }

    /** AdaptiveHybrid: consecutive updates a consumer absorbs without
     *  reading the line before it self-invalidates out of the update
     *  stream (the classic competitive-snooping threshold). */
    std::uint32_t adaptiveThreshold = 4;

    // --- HPCA'07 mechanisms -------------------------------------
    bool racEnabled = false;
    RacConfig rac;

    DelegateCacheConfig delegate;

    /** Delayed intervention interval (Section 2.4.1; Figure 9 sweeps
     *  5 .. 500M; maxTick = "infinite" = never intervene). */
    Tick interventionDelay = 50;

    PcDetectorConfig detector;

    /** Run the coherence/SC invariant checker (Section 2.5). */
    bool checkerEnabled = true;

    /** Cross-check every controller transition against the
     *  declarative spec (src/verify). On by default in tests; opt-in
     *  for experiments (`pcsim run --conformance`). Off keeps the
     *  hook compiled in but fully disabled, preserving byte-identical
     *  results. */
    bool conformanceEnabled = false;

    /**
     * Sanity-check the configuration (node count fits the
     * representation, power-of-two line size, nonzero structure
     * sizes, mechanism dependencies).
     * @return "" when valid, else a human-readable description of the
     *         first problem found.
     */
    std::string validateError() const;

    /** validateError(), but fatal() with the message on failure.
     *  System construction calls this; CLIs should prefer
     *  validateError() for friendlier reporting. */
    void validate() const;
};

} // namespace pcsim

#endif // PCSIM_PROTOCOL_CONFIG_HH
