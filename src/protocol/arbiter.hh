/**
 * @file
 * Per-line parked-request arbiter for the home-side engines
 * (DESIGN.md "Arbitration & fairness").
 *
 * Under the default nack-retry arbitration the home resolves
 * contention by NACKing requests that hit a busy line; fairness then
 * rests entirely on randomized backoff, which bounds nothing — a
 * requester can lose every race indefinitely. The LineArbiter gives
 * DirController and ProducerController an alternative: park up to
 * `arbQueueDepth` requests per line and drain them one at a time when
 * the blocking episode completes. The queue is bounded, and overflow
 * falls back to a plain NACK, so the engines never exert backpressure
 * on the network — the lossless FIFO channel contract is untouched.
 *
 * Two drain disciplines (ProtocolConfig::arbitration):
 *  - Queue: strict FIFO by arrival (park order).
 *  - AgedPriority: highest Message::retries first — the carried retry
 *    count is the requester's age, so when the queue has been
 *    overflowing back into NACK mode the longest-suffering requester
 *    wins the next free slot; ties break by arrival order.
 *
 * Selection is a linear scan over a <= arbQueueDepth vector, which
 * beats a heap at these depths and keeps the drain order trivially
 * deterministic.
 */

#ifndef PCSIM_PROTOCOL_ARBITER_HH
#define PCSIM_PROTOCOL_ARBITER_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/message.hh"
#include "src/protocol/config.hh"
#include "src/protocol/node_stats.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Bounded per-line request queues for one home-side engine. */
class LineArbiter
{
  public:
    explicit LineArbiter(const ProtocolConfig &cfg) : _cfg(cfg) {}

    /** A non-default arbitration mode is selected. Every hook in the
     *  controllers checks this first, so nack-retry runs take exactly
     *  the pre-arbiter code path. */
    bool enabled() const { return _cfg.arbitrationActive(); }

    /** True when an arriving request for @p line must park (or NACK
     *  on overflow) rather than be handled: either requests are
     *  already waiting — overtaking them would break the queue
     *  discipline — or a drain for this line is in flight. */
    bool
    shouldPark(Addr line) const
    {
        return drainPending(line) || !empty(line);
    }

    /** Park @p msg; returns false when the line's queue is at
     *  arbQueueDepth (caller falls back to NACK). Records the queue
     *  depth high-water mark in @p stats. */
    bool
    park(const Message &msg, Tick now, NodeStats &stats)
    {
        auto &q = _parked[msg.addr];
        if (q.size() >= _cfg.arbQueueDepth)
            return false;
        q.push_back(ParkedReq{msg, now, _seq++});
        if (q.size() > stats.queueDepthPeak)
            stats.queueDepthPeak = q.size();
        return true;
    }

    bool empty(Addr line) const { return _parked.find(line) == _parked.end(); }

    /** Oldest parked request's type for @p line without removing it;
     *  empty(line) must be false. */
    const Message &
    peek(Addr line) const
    {
        const auto &q = _parked.at(line);
        return q[selectIndex(q)].msg;
    }

    /** Remove and return the next request for @p line per the drain
     *  discipline; empty(line) must be false. Records the request's
     *  total park time in @p stats (maxLineWaitTicks). */
    Message
    pop(Addr line, Tick now, NodeStats &stats)
    {
        auto it = _parked.find(line);
        auto &q = it->second;
        const std::size_t i = selectIndex(q);
        ParkedReq p = q[i];
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        if (q.empty())
            _parked.erase(it);
        const Tick waited = now - p.enq;
        if (waited > stats.maxLineWaitTicks)
            stats.maxLineWaitTicks = waited;
        return p.msg;
    }

    /** Remove every parked request for @p line, invoking
     *  @p fn(const Message &) on each in drain order. Used by
     *  undelegation: the producer bounces its parked queue back to
     *  the real home with NackNotHome. */
    template <typename Fn>
    void
    flush(Addr line, Fn &&fn)
    {
        auto it = _parked.find(line);
        if (it == _parked.end())
            return;
        std::vector<ParkedReq> q = std::move(it->second);
        _parked.erase(it);
        while (!q.empty()) {
            const std::size_t i = selectIndex(q);
            fn(q[i].msg);
            q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        }
    }

    /** @name Drain-in-flight latch.
     *
     * A drain is scheduled hubLatency ticks out (the popped request
     * re-enters the engine like a fresh arrival); between schedule
     * and fire the line must keep parking new arrivals and must not
     * double-drain.
     */
    /// @{
    bool
    drainPending(Addr line) const
    {
        return _drainPending.count(line) != 0;
    }
    void markDrainPending(Addr line) { _drainPending.insert(line); }
    void clearDrainPending(Addr line) { _drainPending.erase(line); }
    /// @}

  private:
    struct ParkedReq
    {
        Message msg;
        Tick enq;          ///< tick the request parked
        std::uint64_t seq; ///< arrival order (FIFO key / tiebreak)
    };

    /** Index of the next request to drain from @p q. */
    std::size_t
    selectIndex(const std::vector<ParkedReq> &q) const
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < q.size(); ++i) {
            const ParkedReq &a = q[i];
            const ParkedReq &b = q[best];
            if (_cfg.arbitration == Arbitration::AgedPriority) {
                if (a.msg.retries > b.msg.retries ||
                    (a.msg.retries == b.msg.retries && a.seq < b.seq))
                    best = i;
            } else if (a.seq < b.seq) {
                best = i;
            }
        }
        return best;
    }

    const ProtocolConfig &_cfg;
    std::unordered_map<Addr, std::vector<ParkedReq>> _parked;
    std::unordered_set<Addr> _drainPending;
    std::uint64_t _seq = 0;
};

} // namespace pcsim

#endif // PCSIM_PROTOCOL_ARBITER_HH
