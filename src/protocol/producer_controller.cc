#include "src/protocol/producer_controller.hh"

#include "src/protocol/hub.hh"
#include "src/sim/logging.hh"
#include "src/verify/observer.hh"

namespace pcsim
{

namespace
{

/** Spec-state of the producer-table entry for @p line. Uses the
 *  non-touching array lookup so the conformance hook cannot perturb
 *  LRU replacement. */
verify::StateId
producerStateGetter(Hub &hub, Addr line)
{
    DelegateCache *dc = hub.delegateCache();
    const ProducerEntry *e = dc ? dc->producer().find(line, false)
                                : nullptr;
    if (!e)
        return verify::prodNone;
    return e->dir.state == DirState::Excl ? verify::prodExcl
                                          : verify::prodShared;
}

} // namespace

ProducerController::ProducerController(Hub &hub)
    : _hub(hub), _cfg(hub.cfg()), _arb(_cfg)
{
}

bool
ProducerController::isDelegated(Addr line)
{
    DelegateCache *dc = _hub.delegateCache();
    return dc && dc->producerFind(line) != nullptr;
}

const ProducerEntry *
ProducerController::entryFor(Addr line) const
{
    DelegateCache *dc = const_cast<Hub &>(_hub).delegateCache();
    return dc ? dc->producerFind(line) : nullptr;
}

std::size_t
ProducerController::numDelegated()
{
    DelegateCache *dc = _hub.delegateCache();
    return dc ? dc->producer().occupancy() : 0;
}

void
ProducerController::handleDelegate(const Message &msg)
{
    const Addr line = msg.addr;
    DelegateCache *dc = _hub.delegateCache();
    Rac *rac = _hub.rac();

    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Producer, _hub.id(), line,
        verify::PEvent::Delegate,
        [this, line]() { return producerStateGetter(_hub, line); });

    // Allocate the producer-table entry; a conflict undelegates the
    // victim first (undelegation reason 1).
    ProducerEntry *e = dc->producer().allocate(
        line,
        [this](Addr victim, const ProducerEntry &) {
            // Never displace a line with local work in flight.
            return !_hub.cacheCtrl().hasMshr(victim);
        },
        [this](Addr victim, ProducerEntry &v) {
            // The way is recycled right after this callback: sample
            // the pre state from the payload and pin the post state.
            verify::ConformanceScope evict_scope(
                _hub.observer(), verify::Ctrl::Producer, _hub.id(),
                victim, verify::PEvent::Evict,
                [s = v.dir.state]() {
                    return s == DirState::Excl ? verify::prodExcl
                                               : verify::prodShared;
                });
            evict_scope.overridePost(verify::prodNone);
            ++_hub.stats().undelegationsCapacity;
            undelegate(victim, v, UndeleReason::Capacity);
        });

    // If we must hand the delegation back, the home can satisfy our
    // pending write as a full exclusive fetch.
    const MsgType pending_type = MsgType::ReqExcl;

    if (!e) {
        // Cannot host the delegation: hand it straight back and let
        // the home service our pending write normally.
        Message und;
        und.type = MsgType::Undele;
        und.addr = line;
        und.dst = _hub.homeOf(line);
        und.version = msg.version;
        und.sharers = msg.sharers;
        und.owner = invalidNode;
        und.pendingReq = _hub.id();
        und.pendingType = pending_type;
        und.txnId = _hub.cacheCtrl().mshrTxnId(line);
        _hub.send(und);
        return;
    }

    e->dir.state = DirState::Shared;
    e->dir.sharers = msg.sharers;
    e->dir.owner = invalidNode;
    e->dir.memVersion = msg.version;

    // Pin the surrogate-memory copy in the RAC. When the producer is
    // the home itself (self-delegation under first-touch placement)
    // the local DRAM already holds the data and no pin is needed.
    const bool self_home = _hub.homeOf(line) == _hub.id();
    if (!self_home) {
        RacEntry *re = rac->insertPinned(line, msg.version,
                                         [this](Addr victim) {
                                             undelegateForRacPressure(
                                                 victim);
                                         });
        if (!re) {
            ++_hub.stats().undelegationsFlush;
            undelegate(line, *e, UndeleReason::Refused, _hub.id(),
                       pending_type);
            return;
        }
    }

    ++_hub.stats().delegationsReceived;
    PCSIM_DPRINTF(DebugDelegate, _hub.curTick(),
                  "node %u: delegated 0x%llx (sharers=%s)", _hub.id(),
                  (unsigned long long)line,
                  msg.sharers.toString().c_str());

    // The delegation was triggered by our own pending write: serve it
    // now as the acting home (Figure 4a step 8: "convert delegate msg
    // into an exclusive reply").
    if (_hub.cacheCtrl().hasMshr(line)) {
        Message local;
        local.type = MsgType::ReqExcl;
        local.addr = line;
        local.requester = _hub.id();
        local.txnId = _hub.cacheCtrl().mshrTxnId(line);
        serveLocalWrite(local, *e);
    }
}

void
ProducerController::handleRequest(const Message &msg)
{
    // Only remote arrivals park: the producer's own requests on its
    // delegated lines are the write episodes the queue waits on.
    if (_arb.enabled() && msg.requester != _hub.id()) {
        if (_arb.shouldPark(msg.addr)) {
            if (!_arb.park(msg, _hub.curTick(), _hub.stats())) {
                // Queue full: lossless fallback to NACK.
                _hub.noteNackSent();
                Message nack;
                nack.type = MsgType::Nack;
                nack.addr = msg.addr;
                nack.dst = msg.requester;
                nack.txnId = msg.txnId;
                _hub.send(nack);
            }
            return;
        }
        handleRequestCore(msg);
        maybeDrain(msg.addr);
        return;
    }
    handleRequestCore(msg);
}

void
ProducerController::maybeDrain(Addr line)
{
    if (!_arb.enabled() || _arb.drainPending(line) || _arb.empty(line))
        return;
    DelegateCache *dc = _hub.delegateCache();
    ProducerEntry *e = dc ? dc->producerFind(line) : nullptr;
    if (!e)
        return; // undelegated; undelegate() flushed the queue
    if (_hub.cacheCtrl().hasMshr(line))
        return; // local transaction in flight; completion re-triggers
    const Message &next = _arb.peek(line);
    if (next.type == MsgType::ReqShared &&
        e->dir.state == DirState::Excl && _cfg.updatesEnabled() &&
        e->intervPending) {
        // The speculative push is imminent and will carry the data;
        // completeEpoch re-triggers the drain.
        return;
    }
    const Message req = _arb.pop(line, _hub.curTick(), _hub.stats());
    _arb.markDrainPending(line);
    _hub.eventQueue().scheduleIn(_cfg.hubLatency, [this, req]() {
        _arb.clearDrainPending(req.addr);
        if (isDelegated(req.addr)) {
            handleRequestCore(req);
            maybeDrain(req.addr);
            return;
        }
        // Undelegated while the drain was in flight: route the
        // request like any arrival for a line we no longer manage.
        if (_hub.homeOf(req.addr) == _hub.id()) {
            _hub.dirCtrl().handleRequest(req);
            return;
        }
        Message nack;
        nack.type = MsgType::NackNotHome;
        nack.addr = req.addr;
        nack.dst = req.requester;
        nack.txnId = req.txnId;
        _hub.send(nack);
    });
}

void
ProducerController::handleRequestCore(const Message &msg)
{
    const Addr line = msg.addr;

    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Producer, _hub.id(), line,
        verify::eventOf(msg.type),
        [this, line]() { return producerStateGetter(_hub, line); });

    DelegateCache *dc = _hub.delegateCache();
    ProducerEntry *e = dc->producerFind(line);
    if (!e)
        panic("producer request without entry");

    const bool local = msg.requester == _hub.id();

    if (!local && _hub.cacheCtrl().hasMshr(line)) {
        // Our own transaction on this line is mid-flight; anything
        // remote must wait (park, or NACK + retry) until it settles.
        if (_arb.enabled() &&
            _arb.park(msg, _hub.curTick(), _hub.stats()))
            return;
        _hub.noteNackSent();
        Message nack;
        nack.type = MsgType::Nack;
        nack.addr = line;
        nack.dst = msg.requester;
        nack.txnId = msg.txnId;
        _hub.send(nack);
        return;
    }

    switch (msg.type) {
      case MsgType::ReqShared:
        // Local reads reach here only for self-delegated lines (no
        // pinned RAC copy exists); the reply path is identical.
        serveRemoteRead(msg, *e);
        break;

      case MsgType::ReqExcl:
      case MsgType::ReqUpgrade:
        if (local) {
            serveLocalWrite(msg, *e);
        } else {
            // Undelegation reason 3: another node wants to write.
            ++_hub.stats().undelegationsConflict;
            undelegate(line, *e, UndeleReason::Conflict, msg.requester,
                       msg.type, msg.txnId);
        }
        break;

      default:
        panic("producer got %s", msg.toString().c_str());
    }
}

void
ProducerController::serveLocalWrite(const Message &msg, ProducerEntry &e)
{
    const Addr line = msg.addr;
    if (e.dir.state != DirState::Shared)
        panic("local write to delegated 0x%llx in state %s",
              (unsigned long long)line, dirStateName(e.dir.state));

    ++_hub.stats().delegatedLocalOps;

    // Extra write miss: the previous delayed intervention cut a write
    // burst short (Section 3.3.1's "5-cycle" effect). A re-upgrade
    // shortly after the downgrade means the burst was still going.
    constexpr Tick burstWindow = 200;
    auto ld = _lastDowngrade.find(line);
    if (ld != _lastDowngrade.end() &&
        _hub.curTick() - ld->second < burstWindow) {
        ++_hub.stats().extraWriteMisses;
    }

    // Invalidate every consumer copy; acks flow to our own MSHR. Only
    // ourselves (the producer) is skipped: under a coarse vector our
    // group-mates may genuinely hold copies behind our own group bit,
    // so they must see the invalidation too.
    const NodeId self = _hub.id();
    unsigned consumers = 0;
    e.dir.sharers.forEachNode(_cfg.numNodes, [&](NodeId n) {
        consumers += n != self;
    });
    _hub.sampleConsumers(line, consumers);
    std::uint16_t acks = 0;
    e.dir.sharers.forEachNode(_cfg.numNodes, [&](NodeId n) {
        if (n == self)
            return;
        ++acks;
        ++_hub.stats().interventionsSent;
        Message iv;
        iv.type = MsgType::Inval;
        iv.addr = line;
        iv.dst = n;
        iv.requester = self;
        iv.txnId = msg.txnId;
        iv.version = e.dir.memVersion; // superseded epoch (see below)
        _hub.send(iv);
    });

    // EXCL with the old sharing vector retained (Section 2.4.2): the
    // vector is the speculative-update target set; owner is the
    // added ownerID field.
    e.dir.state = DirState::Excl;
    e.dir.owner = _hub.id();

    Message grant;
    grant.type = MsgType::RespExclData;
    grant.addr = line;
    grant.dst = _hub.id();
    grant.version = e.dir.memVersion;
    grant.ackCount = acks;
    grant.txnId = msg.txnId;
    _hub.send(grant); // hub-internal, localLatency
}

void
ProducerController::serveRemoteRead(const Message &msg, ProducerEntry &e)
{
    const Addr line = msg.addr;
    const NodeId req = msg.requester;

    if (e.dir.state == DirState::Excl) {
        if (_cfg.updatesEnabled() && e.intervPending &&
            e.pendingNacks == 0) {
            // The push is imminent; by the time the requester retries
            // it will normally find the update in its RAC ("the
            // update message is treated as the response"). A retry
            // that still finds the epoch open (long delay intervals)
            // falls through to an on-demand downgrade instead of
            // stalling for the whole interval.
            if (_arb.enabled() &&
                _arb.park(msg, _hub.curTick(), _hub.stats()))
                return;
            ++e.pendingNacks;
            _hub.noteNackSent();
            Message nack;
            nack.type = MsgType::Nack;
            nack.addr = line;
            nack.dst = req;
            nack.txnId = msg.txnId;
            _hub.send(nack);
            return;
        }
        // Delegation-only (or infinite delay): downgrade on demand.
        // This is the 2-hop miss that delegation buys.
        const Version v =
            _hub.cacheCtrl().localDowngrade(line, e.dir.memVersion);
        completeEpoch(line, e, v);
    }

    e.dir.sharers.add(req);
    Message resp;
    resp.type = MsgType::RespSharedData;
    resp.addr = line;
    resp.dst = req;
    resp.version = e.dir.memVersion;
    resp.txnId = msg.txnId;
    _hub.sendIn(_cfg.hubLatency, resp);
}

void
ProducerController::onLocalWriteComplete(Addr line)
{
    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Producer, _hub.id(), line,
        verify::PEvent::LocalWriteComplete,
        [this, line]() { return producerStateGetter(_hub, line); });

    DelegateCache *dc = _hub.delegateCache();
    ProducerEntry *e = dc ? dc->producerFind(line) : nullptr;
    if (!e)
        return;
    ++e->epochs;
    e->pendingNacks = 0;

    const bool arm = _cfg.updatesEnabled() && !e->intervPending &&
                     _cfg.interventionDelay != maxTick;
    // ("infinite" interventionDelay never intervenes; Figure 9.)
    if (arm) {
        e->intervPending = true;
        const std::uint64_t token = _nextToken++;
        _timerTokens[line] = token;
        ++_hub.stats().delayedInterventions;
        _hub.eventQueue().scheduleIn(
            _cfg.interventionDelay, [this, line, token]() {
                fireDelayedIntervention(line, token);
            });
    }
    // Drain after (not before) arming, so a parked read defers to the
    // imminent speculative push instead of forcing an on-demand
    // downgrade.
    maybeDrain(line);
}

void
ProducerController::fireDelayedIntervention(Addr line,
                                            std::uint64_t token)
{
    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Producer, _hub.id(), line,
        verify::PEvent::DelayedInterv,
        [this, line]() { return producerStateGetter(_hub, line); });

    auto it = _timerTokens.find(line);
    if (it == _timerTokens.end() || it->second != token)
        return; // undelegated or re-armed since

    DelegateCache *dc = _hub.delegateCache();
    ProducerEntry *e = dc->producerFind(line);
    if (!e || !e->intervPending)
        return;
    e->intervPending = false;

    if (e->dir.state != DirState::Excl)
        return; // a flush already closed the epoch

    // Downgrade the processor copy (bus intervention) and capture the
    // freshly written data.
    const Version v =
        _hub.cacheCtrl().localDowngrade(line, e->dir.memVersion);
    completeEpoch(line, *e, v);
}

void
ProducerController::completeEpoch(Addr line, ProducerEntry &e,
                                  Version version)
{
    Rac *rac = _hub.rac();
    rac->updatePinned(line, version);
    e.dir.memVersion = version;
    e.intervPending = false;
    e.pendingNacks = 0;
    _timerTokens.erase(line);
    _lastDowngrade[line] = _hub.curTick();

    const NodeId self = _hub.id();
    e.dir.state = DirState::Shared;
    e.dir.sharers.add(self);
    e.dir.owner = invalidNode;

    if (_cfg.updatesEnabled() && _cfg.interventionDelay != maxTick) {
        // Push the new data to the predicted consumers (Section
        // 2.4.2: the nodes that consumed the last version). With an
        // "infinite" delay (Figure 9) there are no speculative
        // pushes. Skipping only ourselves, a coarse vector also
        // pushes to our group-mates; spurious pushes land in their
        // RACs or are dropped.
        e.dir.sharers.forEachNode(_cfg.numNodes, [&](NodeId n) {
            if (n == self)
                return;
            ++_hub.stats().updatesSent;
            Message up;
            up.type = MsgType::Update;
            up.addr = line;
            up.dst = n;
            up.version = version;
            _hub.sendIn(_cfg.busLatency, up);
        });
    }
    maybeDrain(line);
}

void
ProducerController::onLocalFlush(Addr line, Version version)
{
    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Producer, _hub.id(), line,
        verify::PEvent::LocalFlush,
        [this, line]() { return producerStateGetter(_hub, line); });

    DelegateCache *dc = _hub.delegateCache();
    ProducerEntry *e = dc ? dc->producerFind(line) : nullptr;
    if (!e)
        panic("flush hook without producer entry");

    if (e->dir.state == DirState::Excl) {
        // The eviction acts as an early intervention: the write burst
        // is over, absorb the data and push.
        completeEpoch(line, *e, version);
    } else {
        _hub.rac()->updatePinned(line, version);
        e->dir.memVersion = version;
    }
}

void
ProducerController::undelegateForRacPressure(Addr line)
{
    verify::ConformanceScope scope(
        _hub.observer(), verify::Ctrl::Producer, _hub.id(), line,
        verify::PEvent::RacPressure,
        [this, line]() { return producerStateGetter(_hub, line); });

    DelegateCache *dc = _hub.delegateCache();
    ProducerEntry *e = dc ? dc->producerFind(line) : nullptr;
    if (!e)
        return;
    if (_hub.cacheCtrl().hasMshr(line))
        return; // unsafe now; the insertPinned caller copes
    ++_hub.stats().undelegationsFlush;
    undelegate(line, *e, UndeleReason::Flush);
}

void
ProducerController::undelegate(Addr line, ProducerEntry &e,
                               UndeleReason reason, NodeId pending_req,
                               MsgType pending_type,
                               std::uint64_t pending_txn)
{
    DelegateCache *dc = _hub.delegateCache();
    Rac *rac = _hub.rac();

    // Cancel any pending delayed intervention.
    e.intervPending = false;
    _timerTokens.erase(line);

    Message und;
    und.type = MsgType::Undele;
    und.addr = line;
    und.dst = _hub.homeOf(line);
    und.dirty = true;
    und.pendingReq = pending_req;
    und.pendingType = pending_type;
    und.txnId = pending_txn;
    und.version = e.dir.memVersion;

    if (e.dir.state == DirState::Excl) {
        // Our processor still holds the only (modified) copy; the RAC
        // surrogate is stale and must go.
        und.owner = _hub.id();
        rac->unpin(line, /*keep_data=*/false);
    } else {
        und.owner = invalidNode;
        // We keep a plain S copy in the RAC; make sure the restored
        // directory covers us.
        und.sharers = e.dir.sharers;
        und.sharers.add(_hub.id());
        rac->unpin(line, /*keep_data=*/true);
    }

    PCSIM_DPRINTF(DebugDelegate, _hub.curTick(),
                  "node %u: undelegate 0x%llx reason=%d", _hub.id(),
                  (unsigned long long)line, static_cast<int>(reason));

    // Bounce any parked requests back toward the real home: we are no
    // longer the acting home, and the restored directory will service
    // their retries.
    _arb.flush(line, [this](const Message &pm) {
        Message nack;
        nack.type = MsgType::NackNotHome;
        nack.addr = pm.addr;
        nack.dst = pm.requester;
        nack.txnId = pm.txnId;
        _hub.send(nack);
    });

    dc->producer().invalidate(line);
    _lastDowngrade.erase(line);
    _hub.send(und);
}

} // namespace pcsim
