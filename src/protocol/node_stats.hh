/**
 * @file
 * Per-node statistics collected by the controllers.
 */

#ifndef PCSIM_PROTOCOL_NODE_STATS_HH
#define PCSIM_PROTOCOL_NODE_STATS_HH

#include <algorithm>
#include <cstdint>

#include "src/sim/stats.hh"

namespace pcsim
{

/** Counters one node accumulates during a run. */
struct NodeStats
{
    // CPU-visible accesses.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;

    // Misses classified by where they were served.
    std::uint64_t localMisses = 0;  ///< local home / local RAC
    std::uint64_t remoteMisses = 0; ///< needed the network
    std::uint64_t racHits = 0;      ///< subset of localMisses

    // Transaction shapes.
    std::uint64_t twoHopMisses = 0;
    std::uint64_t threeHopMisses = 0;

    // Retry behaviour.
    std::uint64_t nacksReceived = 0;
    std::uint64_t retries = 0;

    /** @name Retry-storm telemetry.
     *
     * Finer-grained robustness counters introduced with the
     * fault-injection layer. Deliberately NOT in the serialized
     * per-node results schema (PCSIM_NODE_STATS_FIELDS): they are
     * aggregated into an optional "retry" block in the results JSON
     * only when faults are active, keeping fault-free output
     * byte-identical to the goldens.
     */
    /// @{
    /** Retries caused by MSHR-conflict rescheduling (a subset of
     *  `retries`). */
    std::uint64_t mshrConflictRetries = 0;
    /** Directory-side writeback/undelegation re-handle retries under
     *  directory-cache pressure (a subset of `retries`). */
    std::uint64_t dirRehandleRetries = 0;
    /** Worst retry count any single line reached (merged by max). */
    std::uint64_t maxRetriesPerLine = 0;
    /** Peak NACKs sent within one Hub::nackStormWindow-tick window
     *  (merged by max). */
    std::uint64_t nackStormPeak = 0;
    /** Capped backoff exponent per retry (bucket k = attempts that
     *  waited retryBase << k, see src/protocol/backoff.hh). */
    Histogram backoffHist{16};
    /// @}

    // Home-side activity.
    std::uint64_t homeRequests = 0;
    std::uint64_t nacksSent = 0;
    std::uint64_t interventionsSent = 0;
    std::uint64_t dirCacheHits = 0;
    std::uint64_t dirCacheMisses = 0;

    // Delegation (Section 2.3).
    std::uint64_t delegationsGranted = 0;  ///< as home
    std::uint64_t delegationsReceived = 0; ///< as producer
    std::uint64_t undelegationsCapacity = 0;
    std::uint64_t undelegationsFlush = 0;
    std::uint64_t undelegationsConflict = 0;
    std::uint64_t forwardedRequests = 0;
    std::uint64_t delegatedLocalOps = 0;

    // Speculative updates (Section 2.4).
    std::uint64_t delayedInterventions = 0;
    std::uint64_t updatesSent = 0;
    std::uint64_t updatesReceived = 0;
    std::uint64_t updatesConsumed = 0; ///< led to a local hit
    std::uint64_t updatesDropped = 0;  ///< RAC set pinned-full
    std::uint64_t extraWriteMisses = 0; ///< re-upgrade after early
                                        ///< delayed intervention

    // Writebacks.
    std::uint64_t writebacks = 0;

    /** @name Update-based policies (write-update / adaptive hybrid).
     *
     * Like the retry-storm block, deliberately NOT in the serialized
     * per-node schema (PCSIM_NODE_STATS_FIELDS): they aggregate into
     * an optional "policy" block in the results JSON only under an
     * update-based kind, keeping existing goldens byte-identical.
     */
    /// @{
    /** Write episodes opened at this home (UpdGrant issued). */
    std::uint64_t updateEpisodes = 0;
    /** Update pushes applied in place to a valid local copy. */
    std::uint64_t updatesApplied = 0;
    /** Adaptive hybrid: copies self-invalidated out of the update
     *  stream (UpdateDrop sent). */
    std::uint64_t adaptiveDrops = 0;
    /// @}

    /** Hardware cost accounting, not a counter: detector bits per
     *  directory-cache entry for this machine size (8 at the paper's
     *  N=16, see pcDetectorBitsPerEntry). Set once at construction,
     *  preserved across reset(), merged by max. Deliberately NOT in
     *  the serialized results schema. */
    std::uint32_t detectorBitsPerEntry = 0;

    void
    reset()
    {
        const std::uint32_t bits = detectorBitsPerEntry;
        *this = NodeStats{};
        detectorBitsPerEntry = bits;
    }

    NodeStats &
    operator+=(const NodeStats &o)
    {
        reads += o.reads;
        writes += o.writes;
        l1Hits += o.l1Hits;
        l2Hits += o.l2Hits;
        localMisses += o.localMisses;
        remoteMisses += o.remoteMisses;
        racHits += o.racHits;
        twoHopMisses += o.twoHopMisses;
        threeHopMisses += o.threeHopMisses;
        nacksReceived += o.nacksReceived;
        retries += o.retries;
        mshrConflictRetries += o.mshrConflictRetries;
        dirRehandleRetries += o.dirRehandleRetries;
        maxRetriesPerLine = std::max(maxRetriesPerLine, o.maxRetriesPerLine);
        nackStormPeak = std::max(nackStormPeak, o.nackStormPeak);
        backoffHist.merge(o.backoffHist);
        homeRequests += o.homeRequests;
        nacksSent += o.nacksSent;
        interventionsSent += o.interventionsSent;
        dirCacheHits += o.dirCacheHits;
        dirCacheMisses += o.dirCacheMisses;
        delegationsGranted += o.delegationsGranted;
        delegationsReceived += o.delegationsReceived;
        undelegationsCapacity += o.undelegationsCapacity;
        undelegationsFlush += o.undelegationsFlush;
        undelegationsConflict += o.undelegationsConflict;
        forwardedRequests += o.forwardedRequests;
        delegatedLocalOps += o.delegatedLocalOps;
        delayedInterventions += o.delayedInterventions;
        updatesSent += o.updatesSent;
        updatesReceived += o.updatesReceived;
        updatesConsumed += o.updatesConsumed;
        updatesDropped += o.updatesDropped;
        extraWriteMisses += o.extraWriteMisses;
        writebacks += o.writebacks;
        updateEpisodes += o.updateEpisodes;
        updatesApplied += o.updatesApplied;
        adaptiveDrops += o.adaptiveDrops;
        detectorBitsPerEntry =
            std::max(detectorBitsPerEntry, o.detectorBitsPerEntry);
        return *this;
    }
};

} // namespace pcsim

#endif // PCSIM_PROTOCOL_NODE_STATS_HH
