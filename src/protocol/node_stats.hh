/**
 * @file
 * Per-node statistics collected by the controllers.
 */

#ifndef PCSIM_PROTOCOL_NODE_STATS_HH
#define PCSIM_PROTOCOL_NODE_STATS_HH

#include <algorithm>
#include <bit>
#include <cstdint>

#include "src/sim/stats.hh"

namespace pcsim
{

/** @name Miss-latency histogram encoding.
 *
 * HDR-style log-linear buckets: four linear sub-buckets per power of
 * two, so every bucket's floor is within 25% of any value it holds —
 * percentile readouts stay accurate across the full tick range
 * without per-sample storage. Bucket 0..3 hold the exact values 0..3;
 * bucket 4*(o-1)+s (o >= 2) holds [2^o + s*2^(o-2), 2^o + (s+1)*2^(o-2)).
 */
/// @{
/** Bucket index for latency value @p v. */
inline std::size_t
latencyBucketOf(std::uint64_t v)
{
    if (v < 4)
        return static_cast<std::size_t>(v);
    const unsigned o = std::bit_width(v) - 1; // floor(log2 v), >= 2
    const std::uint64_t s = (v - (std::uint64_t(1) << o)) >> (o - 2);
    return 4u * (o - 1u) + static_cast<std::size_t>(s);
}

/** Smallest latency value that lands in bucket @p b (the readout
 *  value percentiles report). */
inline std::uint64_t
latencyBucketFloor(std::size_t b)
{
    if (b < 4)
        return b;
    const unsigned o = static_cast<unsigned>(b / 4 + 1);
    const std::uint64_t s = b % 4;
    return (std::uint64_t(1) << o) + (s << (o - 2));
}

/** The @p p percentile (0 < p <= 1) of a latencyBucketOf-encoded
 *  histogram, reported as the containing bucket's floor; 0 when the
 *  histogram is empty. */
inline std::uint64_t
latencyPercentile(const Histogram &h, double p)
{
    const std::uint64_t total = h.total();
    if (total == 0)
        return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(p * double(total));
    if (rank < 1)
        rank = 1;
    if (rank > total)
        rank = total;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i) {
        cum += h.bucket(i);
        if (cum >= rank)
            return latencyBucketFloor(i);
    }
    return latencyBucketFloor(h.numBuckets() - 1);
}
/// @}

/** Counters one node accumulates during a run. */
struct NodeStats
{
    // CPU-visible accesses.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;

    // Misses classified by where they were served.
    std::uint64_t localMisses = 0;  ///< local home / local RAC
    std::uint64_t remoteMisses = 0; ///< needed the network
    std::uint64_t racHits = 0;      ///< subset of localMisses

    // Transaction shapes.
    std::uint64_t twoHopMisses = 0;
    std::uint64_t threeHopMisses = 0;

    // Retry behaviour.
    std::uint64_t nacksReceived = 0;
    std::uint64_t retries = 0;

    /** @name Retry-storm telemetry.
     *
     * Finer-grained robustness counters introduced with the
     * fault-injection layer. Deliberately NOT in the serialized
     * per-node results schema (PCSIM_NODE_STATS_FIELDS): they are
     * aggregated into an optional "retry" block in the results JSON
     * only when faults are active, keeping fault-free output
     * byte-identical to the goldens.
     */
    /// @{
    /** Retries caused by MSHR-conflict rescheduling (a subset of
     *  `retries`). */
    std::uint64_t mshrConflictRetries = 0;
    /** Directory-side writeback/undelegation re-handle retries under
     *  directory-cache pressure (a subset of `retries`). */
    std::uint64_t dirRehandleRetries = 0;
    /** Worst retry count any single line reached (merged by max). */
    std::uint64_t maxRetriesPerLine = 0;
    /** Peak NACKs sent within one Hub::nackStormWindow-tick window
     *  (merged by max). */
    std::uint64_t nackStormPeak = 0;
    /** Capped backoff exponent per retry (bucket k = attempts that
     *  waited retryBase << k, see src/protocol/backoff.hh). */
    Histogram backoffHist{16};

    /** Record one observation of a line's 0-based retry-attempt index
     *  for `maxRetriesPerLine`. Every site that touches the counter
     *  funnels through here so the semantics cannot drift: attempt 0
     *  is the first retry, so a line NACKed once and then satisfied
     *  reports max 0. */
    void
    noteRetryAttempt(std::uint64_t attempt)
    {
        maxRetriesPerLine = std::max(maxRetriesPerLine, attempt);
    }
    /// @}

    /** @name Fairness telemetry (src/protocol/arbiter.hh).
     *
     * Like the retry-storm block, deliberately NOT in the serialized
     * per-node schema (PCSIM_NODE_STATS_FIELDS): these aggregate into
     * an optional "fairness" block in the results JSON only when
     * faults or a non-default arbitration mode are active, keeping
     * default-mode goldens byte-identical. The histogram itself is
     * sampled unconditionally — pure accounting, no control-flow or
     * RNG impact.
     */
    /// @{
    /** Miss-completion latency (issue -> fill), latencyBucketOf
     *  encoding. Merged bucket-wise; p50/p95/p99 are derived per node
     *  and reported as the worst node's value. */
    Histogram missLatencyHist{256};
    /** Longest any single request waited for one line, from first
     *  issue (or arbiter park) to service (merged by max). */
    std::uint64_t maxLineWaitTicks = 0;
    /** Deepest any per-line parked-request queue grew (merged by
     *  max; 0 under nack-retry arbitration). */
    std::uint64_t queueDepthPeak = 0;
    /// @}

    // Home-side activity.
    std::uint64_t homeRequests = 0;
    std::uint64_t nacksSent = 0;
    std::uint64_t interventionsSent = 0;
    std::uint64_t dirCacheHits = 0;
    std::uint64_t dirCacheMisses = 0;

    // Delegation (Section 2.3).
    std::uint64_t delegationsGranted = 0;  ///< as home
    std::uint64_t delegationsReceived = 0; ///< as producer
    std::uint64_t undelegationsCapacity = 0;
    std::uint64_t undelegationsFlush = 0;
    std::uint64_t undelegationsConflict = 0;
    std::uint64_t forwardedRequests = 0;
    std::uint64_t delegatedLocalOps = 0;

    // Speculative updates (Section 2.4).
    std::uint64_t delayedInterventions = 0;
    std::uint64_t updatesSent = 0;
    std::uint64_t updatesReceived = 0;
    std::uint64_t updatesConsumed = 0; ///< led to a local hit
    std::uint64_t updatesDropped = 0;  ///< RAC set pinned-full
    std::uint64_t extraWriteMisses = 0; ///< re-upgrade after early
                                        ///< delayed intervention

    // Writebacks.
    std::uint64_t writebacks = 0;

    /** @name Update-based policies (write-update / adaptive hybrid).
     *
     * Like the retry-storm block, deliberately NOT in the serialized
     * per-node schema (PCSIM_NODE_STATS_FIELDS): they aggregate into
     * an optional "policy" block in the results JSON only under an
     * update-based kind, keeping existing goldens byte-identical.
     */
    /// @{
    /** Write episodes opened at this home (UpdGrant issued). */
    std::uint64_t updateEpisodes = 0;
    /** Update pushes applied in place to a valid local copy. */
    std::uint64_t updatesApplied = 0;
    /** Adaptive hybrid: copies self-invalidated out of the update
     *  stream (UpdateDrop sent). */
    std::uint64_t adaptiveDrops = 0;
    /// @}

    /** Hardware cost accounting, not a counter: detector bits per
     *  directory-cache entry for this machine size (8 at the paper's
     *  N=16, see pcDetectorBitsPerEntry). Set once at construction,
     *  preserved across reset(), merged by max. Deliberately NOT in
     *  the serialized results schema. */
    std::uint32_t detectorBitsPerEntry = 0;

    void
    reset()
    {
        const std::uint32_t bits = detectorBitsPerEntry;
        *this = NodeStats{};
        detectorBitsPerEntry = bits;
    }

    NodeStats &
    operator+=(const NodeStats &o)
    {
        reads += o.reads;
        writes += o.writes;
        l1Hits += o.l1Hits;
        l2Hits += o.l2Hits;
        localMisses += o.localMisses;
        remoteMisses += o.remoteMisses;
        racHits += o.racHits;
        twoHopMisses += o.twoHopMisses;
        threeHopMisses += o.threeHopMisses;
        nacksReceived += o.nacksReceived;
        retries += o.retries;
        mshrConflictRetries += o.mshrConflictRetries;
        dirRehandleRetries += o.dirRehandleRetries;
        maxRetriesPerLine = std::max(maxRetriesPerLine, o.maxRetriesPerLine);
        nackStormPeak = std::max(nackStormPeak, o.nackStormPeak);
        backoffHist.merge(o.backoffHist);
        missLatencyHist.merge(o.missLatencyHist);
        maxLineWaitTicks = std::max(maxLineWaitTicks, o.maxLineWaitTicks);
        queueDepthPeak = std::max(queueDepthPeak, o.queueDepthPeak);
        homeRequests += o.homeRequests;
        nacksSent += o.nacksSent;
        interventionsSent += o.interventionsSent;
        dirCacheHits += o.dirCacheHits;
        dirCacheMisses += o.dirCacheMisses;
        delegationsGranted += o.delegationsGranted;
        delegationsReceived += o.delegationsReceived;
        undelegationsCapacity += o.undelegationsCapacity;
        undelegationsFlush += o.undelegationsFlush;
        undelegationsConflict += o.undelegationsConflict;
        forwardedRequests += o.forwardedRequests;
        delegatedLocalOps += o.delegatedLocalOps;
        delayedInterventions += o.delayedInterventions;
        updatesSent += o.updatesSent;
        updatesReceived += o.updatesReceived;
        updatesConsumed += o.updatesConsumed;
        updatesDropped += o.updatesDropped;
        extraWriteMisses += o.extraWriteMisses;
        writebacks += o.writebacks;
        updateEpisodes += o.updateEpisodes;
        updatesApplied += o.updatesApplied;
        adaptiveDrops += o.adaptiveDrops;
        detectorBitsPerEntry =
            std::max(detectorBitsPerEntry, o.detectorBitsPerEntry);
        return *this;
    }
};

} // namespace pcsim

#endif // PCSIM_PROTOCOL_NODE_STATS_HH
