/**
 * @file
 * Abstract (untimed) model of the pcsim coherence protocol for
 * explicit-state checking -- the analogue of the paper's extended
 * DASH Murphi model (Section 2.5).
 *
 * Configuration-size class: N nodes (default 3), one cache line, a
 * bounded number of reads and writes per node, per-pair FIFO channels
 * of bounded depth. Mechanisms (delegation, speculative updates) can
 * be switched on and off so the base protocol and each extension are
 * verified separately.
 *
 * Invariants checked at every reachable state:
 *  - single writer: at most one M copy, and no other readable copy
 *    coexists with it once its write has performed,
 *  - data value ("consistency within the directory"): every readable
 *    copy carries the current version, except a producer's pinned
 *    surrogate shadowed by its own M copy,
 *  - directory consistency: owner/sharers cover the actual holders,
 *  - bounded channels never overflow.
 * Deadlock (a non-quiescent state with no enabled transition) is
 * detected by the Explorer.
 */

#ifndef PCSIM_MC_PROTOCOL_MODEL_HH
#define PCSIM_MC_PROTOCOL_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/mc/explorer.hh"
#include "src/mc/mtype.hh"

namespace pcsim
{
namespace mc
{

constexpr unsigned maxNodes = 4;
constexpr unsigned chanDepth = 4;

/** Abstract cache state. */
enum class CState : std::uint8_t { I, S, M };

/** Abstract directory state. */
enum class DState : std::uint8_t
{
    U,
    S,
    E,
    BusyR,
    BusyE,
    Dele,
    BusyUpd, ///< write-update episode open (value matches DirState)
};

/** An abstract in-flight message. */
struct MMsg
{
    MType type{};
    std::uint8_t requester = 0;
    std::uint8_t version = 0;
    std::uint8_t acks = 0;
    std::uint8_t sharers = 0;
    std::uint8_t owner = 0xf;
    /** Transaction sequence tag (mirrors Message::txnId, mod 8). */
    std::uint8_t seq = 0;

    bool
    operator==(const MMsg &o) const
    {
        return type == o.type && requester == o.requester &&
               version == o.version && acks == o.acks &&
               sharers == o.sharers && owner == o.owner &&
               seq == o.seq;
    }
};

/** Model parameters. */
struct ModelConfig
{
    unsigned nodes = 3;
    unsigned home = 0;
    unsigned maxWrites = 2; ///< total writes across all nodes
    unsigned maxReads = 2;  ///< reads per node
    bool delegation = false;
    bool updates = false;
    /** Detector threshold abstracted away: any writer with the line
     *  SHARED at the home may be delegated (nondeterministically),
     *  which over-approximates the detector's choices. */

    /** Dragon-style write-update policy: the home serializes write
     *  episodes through BusyUpd (UpdGrant / UpdateWB) and sharers are
     *  refreshed in place; mutually exclusive with delegation. */
    bool writeUpdate = false;
    /** Adaptive hybrid on top of writeUpdate: a sharer receiving a
     *  push may nondeterministically self-invalidate and UpdDrop,
     *  which over-approximates the stale-update counter. */
    bool adaptive = false;
    /** Seeded defect for the liveness lint's golden tests: the home
     *  consumes UpdateWB without closing the BusyUpd episode, so every
     *  later request NACKs forever -- a non-progress retry loop the
     *  fairness-constrained SCC analysis must flag. Never set by any
     *  registered policy's check set. */
    bool defectStallUpdateWB = false;
    /** Parked-request arbitration (ProtocolConfig::Arbitration queue /
     *  aged-priority): busy home and producer controllers absorb one
     *  request into a parked slot instead of NACKing, and drain it as
     *  a spontaneous transition once the episode closes (a depth-1
     *  abstraction of the bounded per-line queue; a second concurrent
     *  request falls back to NACK exactly like queue overflow). */
    bool homeQueue = false;
};

/**
 * Observer of abstract-model FSM transitions, used by the lint pass
 * to cross-check the declarative transition spec against the model's
 * reachable transition relation. Controllers are numbered 0 cache,
 * 1 directory, 2 producer; events are raw MType values or the
 * synthetic codes below; states are raw CState / DState values, and
 * 0 none / 1 shared / 2 exclusive for the producer table.
 */
class TransitionListener
{
  public:
    virtual ~TransitionListener() = default;
    virtual void onTransition(int ctrl, int pre, int event,
                              int post) = 0;

    // Synthetic events with no MType (values clear of any MType).
    static constexpr int evLocalDowngrade = 64;
    static constexpr int evDelayedInterv = 65;
    static constexpr int evCpuLoad = 66;
    static constexpr int evCpuStore = 67;
};

/** The abstract protocol model (see file header). */
class ProtocolModel
{
  public:
    struct State
    {
        // Per node.
        std::array<CState, maxNodes> cache{};
        std::array<std::uint8_t, maxNodes> cacheV{};
        // MSHR: 0 none, 1 read pending, 2 write pending.
        std::array<std::uint8_t, maxNodes> mshr{};
        std::array<std::uint8_t, maxNodes> mshrHaveData{};
        std::array<std::uint8_t, maxNodes> mshrV{};
        std::array<std::int8_t, maxNodes> mshrAcksNeed{};
        std::array<std::uint8_t, maxNodes> mshrAcksGot{};
        std::array<std::uint8_t, maxNodes> readsLeft{};
        std::array<std::uint8_t, maxNodes> lastSeen{};
        /** Read fill invalidated mid-flight: complete uncached. */
        std::array<std::uint8_t, maxNodes> fillInval{};
        /** Tombstone epoch: pushes at or below it are stale. */
        std::array<std::uint8_t, maxNodes> tombV{};
        /** Outstanding transaction sequence tag per node (mod 8). */
        std::array<std::uint8_t, maxNodes> mshrSeq{};

        // Home directory.
        DState dir = DState::U;
        std::uint8_t sharers = 0;
        std::uint8_t owner = 0xf;
        std::uint8_t pendReq = 0xf;
        std::uint8_t pendOwner = 0xf;
        std::uint8_t pendIsWrite = 0;
        std::uint8_t pendSeq = 0; ///< pending requester's seq tag
        std::uint8_t memV = 0;

        // Producer table (at most one delegate for the single line).
        std::uint8_t prodValid = 0;
        std::uint8_t prodNode = 0xf;
        std::uint8_t prodIsExcl = 0;
        std::uint8_t prodSharers = 0;
        std::uint8_t prodV = 0;
        std::uint8_t intervPending = 0;

        // Parked-request slots (homeQueue only): 0 none, 1 ReqS,
        // 2 ReqX, for the home directory and the producer table.
        std::uint8_t parkedType = 0;
        std::uint8_t parkedReq = 0xf;
        std::uint8_t parkedSeq = 0;
        std::uint8_t prodParkedType = 0;
        std::uint8_t prodParkedReq = 0xf;
        std::uint8_t prodParkedSeq = 0;

        // Consumer RAC copies (bitmask) + their versions.
        std::uint8_t racMask = 0;
        std::array<std::uint8_t, maxNodes> racV{};

        // Global bounds / oracle.
        std::uint8_t writesLeft = 0;
        std::uint8_t curV = 0;

        // Channels: per (src,dst) FIFO.
        std::array<std::array<std::array<MMsg, chanDepth>, maxNodes>,
                   maxNodes>
            chan{};
        std::array<std::array<std::uint8_t, maxNodes>, maxNodes>
            chanLen{};

        bool operator==(const State &o) const;
    };

    explicit ProtocolModel(ModelConfig cfg = {}) : _cfg(cfg) {}

    State initial() const;
    void transitions(const State &s, std::vector<State> &out) const;
    void checkInvariants(const State &s) const;
    bool isQuiescent(const State &s) const;
    std::string describe(const State &s) const;
    /** Focused deadlock diagnostics: the blocked state's pending-op
     *  set and per-channel occupancy (src->dst fill/depth plus the
     *  queued message types), appended to Explorer deadlock errors. */
    std::string blockedSummary(const State &s) const;
    std::uint64_t hash(const State &s) const;
    bool equal(const State &a, const State &b) const { return a == b; }

    const ModelConfig &config() const { return _cfg; }

    /** Attach a transition observer (null to detach). Every FSM step
     *  taken while generating successors is reported to it. */
    void setListener(TransitionListener *l) { _listener = l; }

  private:
    bool send(State &s, unsigned src, unsigned dst,
              const MMsg &m) const;
    void deliver(State &s, unsigned src, unsigned dst,
                 std::vector<State> &out) const;
    void applyAtHome(State s, unsigned src, const MMsg &m,
                     std::vector<State> &out) const;
    void applyAtNode(State s, unsigned dst, unsigned src,
                     const MMsg &m, std::vector<State> &out) const;
    void completeWrite(State &s, unsigned n) const;
    void maybeComplete(State &s, unsigned n) const;
    bool undelegate(State &s, unsigned p, std::uint8_t pend_req,
                    std::uint8_t pend_is_write,
                    std::uint8_t pend_seq) const;

    ModelConfig _cfg;
    TransitionListener *_listener = nullptr;
};

} // namespace mc
} // namespace pcsim

#endif // PCSIM_MC_PROTOCOL_MODEL_HH
