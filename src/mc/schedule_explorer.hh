/**
 * @file
 * Systematic interleaving exploration over the REAL simulator.
 *
 * The abstract model (protocol_model.hh) verifies the protocol's
 * design; this harness closes the abstraction gap the paper mentions
 * in Section 2.5 ("we applied invariant checking to our simulator to
 * bridge the gap between the abstract model and the simulated
 * implementation"): it enumerates every interleaving of a small set
 * of per-CPU operation sequences, runs each schedule on a freshly
 * built System with the coherence checker enabled, and reports
 * deadlocks (operations that never complete).
 *
 * A schedule is an order in which the next pending operation of some
 * CPU is injected; successive injections are spaced by a configurable
 * stagger so transactions overlap in flight and races are exercised.
 */

#ifndef PCSIM_MC_SCHEDULE_EXPLORER_HH
#define PCSIM_MC_SCHEDULE_EXPLORER_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/system/system.hh"

namespace pcsim
{
namespace mc
{

/** One CPU operation to be scheduled. */
struct SchedOp
{
    bool isWrite = false;
    Addr addr = 0;
};

/** Exploration statistics. */
struct ScheduleResult
{
    std::uint64_t schedules = 0;
    std::uint64_t opsExecuted = 0;
};

/** Exhaustive interleaving runner. */
class ScheduleExplorer
{
  public:
    /**
     * @param cfg       machine configuration (checker recommended on).
     * @param ops       ops[c] = operation sequence of CPU c.
     * @param staggers  ticks between successive injections; each
     *                  value multiplies the schedule count.
     */
    ScheduleExplorer(MachineConfig cfg,
                     std::vector<std::vector<SchedOp>> ops,
                     std::vector<Tick> staggers = {0, 40, 150})
        : _cfg(std::move(cfg)),
          _ops(std::move(ops)),
          _staggers(std::move(staggers))
    {
    }

    /**
     * Enumerate all interleavings x staggers and run each.
     * Panics (via the checker) on any invariant violation; throws
     * std::runtime_error on a deadlocked schedule.
     */
    ScheduleResult
    run()
    {
        ScheduleResult res;
        std::vector<unsigned> schedule;
        std::vector<std::size_t> taken(_ops.size(), 0);
        enumerate(schedule, taken, res);
        return res;
    }

  private:
    void
    enumerate(std::vector<unsigned> &schedule,
              std::vector<std::size_t> &taken, ScheduleResult &res)
    {
        bool complete = true;
        for (unsigned c = 0; c < _ops.size(); ++c) {
            if (taken[c] < _ops[c].size()) {
                complete = false;
                schedule.push_back(c);
                ++taken[c];
                enumerate(schedule, taken, res);
                --taken[c];
                schedule.pop_back();
            }
        }
        if (!complete)
            return;
        for (Tick stagger : _staggers) {
            execute(schedule, stagger);
            ++res.schedules;
            res.opsExecuted += schedule.size();
        }
    }

    void
    execute(const std::vector<unsigned> &schedule, Tick stagger)
    {
        System sys(_cfg);
        EventQueue &eq = sys.eventQueue();

        // First-touch homes: CPU 0 claims all lines so the homes are
        // stable across schedules.
        for (const auto &seq : _ops) {
            for (const SchedOp &op : seq)
                sys.memMap().homeOf(op.addr, 0);
        }

        // Track each injected op individually so a deadlocked
        // schedule names exactly which operations hung.
        struct Pending
        {
            unsigned cpu;
            std::size_t index; ///< position within the CPU's stream
            SchedOp op;
            bool done;
        };
        std::vector<Pending> pending;
        pending.reserve(schedule.size());

        std::vector<std::size_t> next(_ops.size(), 0);
        unsigned outstanding = 0;
        Tick when = 0;
        for (unsigned cpu : schedule) {
            const std::size_t index = next[cpu]++;
            const SchedOp &op = _ops[cpu][index];
            pending.push_back({cpu, index, op, false});
            const std::size_t slot = pending.size() - 1;
            ++outstanding;
            eq.schedule(when, [&sys, &outstanding, &pending, slot,
                               cpu, op]() {
                sys.hub(cpu).cpuAccess(
                    op.isWrite, op.addr,
                    [&outstanding, &pending, slot](Version) {
                        --outstanding;
                        pending[slot].done = true;
                    });
            });
            when += stagger;
        }
        eq.run();
        if (outstanding != 0) {
            std::string msg =
                "deadlock: " + std::to_string(outstanding) +
                " operation(s) never completed (stagger " +
                std::to_string(stagger) + "):";
            for (const Pending &p : pending) {
                if (p.done)
                    continue;
                char addr[32];
                std::snprintf(addr, sizeof(addr), "0x%llx",
                              (unsigned long long)p.op.addr);
                msg += "\n  cpu " + std::to_string(p.cpu) + " op#" +
                       std::to_string(p.index) +
                       (p.op.isWrite ? " write " : " read ") + addr;
            }
            throw std::runtime_error(msg);
        }
        sys.checker().checkQuiescent([&sys](Addr line) {
            return sys.memMap().homeOf(line);
        });
    }

    MachineConfig _cfg;
    std::vector<std::vector<SchedOp>> _ops;
    std::vector<Tick> _staggers;
};

} // namespace mc
} // namespace pcsim

#endif // PCSIM_MC_SCHEDULE_EXPLORER_HH
