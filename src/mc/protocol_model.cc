#include "src/mc/protocol_model.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace pcsim
{
namespace mc
{

namespace
{

constexpr std::uint8_t none = 0xf;

std::uint8_t
popcount(std::uint8_t m)
{
    return static_cast<std::uint8_t>(__builtin_popcount(m));
}

/** Producer-table FSM state of node @p n as reported to a
 *  TransitionListener: 0 none, 1 shared, 2 exclusive. */
int
prodStateOf(const ProtocolModel::State &s, unsigned n)
{
    if (!s.prodValid || s.prodNode != n)
        return 0;
    return s.prodIsExcl ? 2 : 1;
}

} // namespace

const char *
mtypeName(MType t)
{
    switch (t) {
      case MType::ReqS: return "ReqS";
      case MType::ReqX: return "ReqX";
      case MType::RespS: return "RespS";
      case MType::RespX: return "RespX";
      case MType::Inval: return "Inval";
      case MType::InvalAck: return "InvalAck";
      case MType::IntervDown: return "IntervDown";
      case MType::IntervXfer: return "IntervXfer";
      case MType::SharedResp: return "SharedResp";
      case MType::Shwb: return "Shwb";
      case MType::XferResp: return "XferResp";
      case MType::XferAck: return "XferAck";
      case MType::IntervNack: return "IntervNack";
      case MType::Nack: return "Nack";
      case MType::NackNotHome: return "NackNotHome";
      case MType::Delegate: return "Delegate";
      case MType::Undele: return "Undele";
      case MType::Update: return "Update";
      case MType::UpdGrant: return "UpdGrant";
      case MType::UpdateWB: return "UpdateWB";
      case MType::UpdDrop: return "UpdDrop";
      case MType::NumMTypes: break;
    }
    return "?";
}

bool
ProtocolModel::State::operator==(const State &o) const
{
    if (cache != o.cache || cacheV != o.cacheV || mshr != o.mshr ||
        mshrHaveData != o.mshrHaveData || mshrV != o.mshrV ||
        mshrAcksNeed != o.mshrAcksNeed ||
        mshrAcksGot != o.mshrAcksGot || readsLeft != o.readsLeft ||
        lastSeen != o.lastSeen)
        return false;
    if (dir != o.dir || sharers != o.sharers || owner != o.owner ||
        pendReq != o.pendReq || pendOwner != o.pendOwner ||
        pendIsWrite != o.pendIsWrite || pendSeq != o.pendSeq ||
        memV != o.memV)
        return false;
    if (prodValid != o.prodValid || prodNode != o.prodNode ||
        prodIsExcl != o.prodIsExcl || prodSharers != o.prodSharers ||
        prodV != o.prodV || intervPending != o.intervPending)
        return false;
    if (parkedType != o.parkedType || parkedReq != o.parkedReq ||
        parkedSeq != o.parkedSeq ||
        prodParkedType != o.prodParkedType ||
        prodParkedReq != o.prodParkedReq ||
        prodParkedSeq != o.prodParkedSeq)
        return false;
    if (racMask != o.racMask || racV != o.racV ||
        writesLeft != o.writesLeft || curV != o.curV ||
        tombV != o.tombV || fillInval != o.fillInval ||
        mshrSeq != o.mshrSeq)
        return false;
    if (chanLen != o.chanLen)
        return false;
    for (unsigned s = 0; s < maxNodes; ++s) {
        for (unsigned d = 0; d < maxNodes; ++d) {
            for (unsigned i = 0; i < chanLen[s][d]; ++i) {
                if (!(chan[s][d][i] == o.chan[s][d][i]))
                    return false;
            }
        }
    }
    return true;
}

std::uint64_t
ProtocolModel::hash(const State &s) const
{
    // FNV-1a over the canonical fields.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (unsigned n = 0; n < _cfg.nodes; ++n) {
        mix(static_cast<std::uint64_t>(s.cache[n]) | (s.cacheV[n] << 4) |
            (static_cast<std::uint64_t>(s.mshr[n]) << 12) |
            (static_cast<std::uint64_t>(s.mshrV[n]) << 16) |
            (static_cast<std::uint64_t>(s.readsLeft[n]) << 24) |
            (static_cast<std::uint64_t>(s.lastSeen[n]) << 32) |
            (static_cast<std::uint64_t>(s.mshrAcksGot[n]) << 40) |
            (static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(s.mshrAcksNeed[n]))
             << 48) |
            (static_cast<std::uint64_t>(s.tombV[n]) << 56));
        mix(s.racV[n] | (std::uint64_t(s.fillInval[n]) << 8) |
            (std::uint64_t(s.mshrHaveData[n]) << 9) |
            (std::uint64_t(s.mshrSeq[n]) << 12));
    }
    mix(static_cast<std::uint64_t>(s.dir) | (s.sharers << 4) |
        (std::uint64_t(s.owner) << 12) |
        (std::uint64_t(s.pendReq) << 16) |
        (std::uint64_t(s.pendOwner) << 20) |
        (std::uint64_t(s.pendIsWrite) << 24) |
        (std::uint64_t(s.pendSeq) << 28) |
        (std::uint64_t(s.memV) << 32));
    mix(s.prodValid | (std::uint64_t(s.prodNode) << 4) |
        (std::uint64_t(s.prodIsExcl) << 8) |
        (std::uint64_t(s.prodSharers) << 12) |
        (std::uint64_t(s.prodV) << 20) |
        (std::uint64_t(s.intervPending) << 28) |
        (std::uint64_t(s.racMask) << 32) |
        (std::uint64_t(s.writesLeft) << 40) |
        (std::uint64_t(s.curV) << 48));
    mix(s.parkedType | (std::uint64_t(s.parkedReq) << 4) |
        (std::uint64_t(s.parkedSeq) << 8) |
        (std::uint64_t(s.prodParkedType) << 12) |
        (std::uint64_t(s.prodParkedReq) << 16) |
        (std::uint64_t(s.prodParkedSeq) << 20));
    for (unsigned a = 0; a < _cfg.nodes; ++a) {
        for (unsigned b = 0; b < _cfg.nodes; ++b) {
            mix(s.chanLen[a][b]);
            for (unsigned i = 0; i < s.chanLen[a][b]; ++i) {
                const MMsg &m = s.chan[a][b][i];
                mix(static_cast<std::uint64_t>(m.type) |
                    (std::uint64_t(m.requester) << 8) |
                    (std::uint64_t(m.version) << 16) |
                    (std::uint64_t(m.acks) << 24) |
                    (std::uint64_t(m.sharers) << 32) |
                    (std::uint64_t(m.owner) << 40) |
                    (std::uint64_t(m.seq) << 48));
            }
        }
    }
    return h;
}

ProtocolModel::State
ProtocolModel::initial() const
{
    State s{};
    s.cache.fill(CState::I);
    s.owner = none;
    s.pendReq = none;
    s.pendOwner = none;
    s.prodNode = none;
    s.writesLeft = static_cast<std::uint8_t>(_cfg.maxWrites);
    for (unsigned n = 0; n < _cfg.nodes; ++n)
        s.readsLeft[n] = static_cast<std::uint8_t>(_cfg.maxReads);
    return s;
}

bool
ProtocolModel::send(State &s, unsigned src, unsigned dst,
                    const MMsg &m) const
{
    auto &len = s.chanLen[src][dst];
    if (len >= chanDepth)
        return false; // channel full: transition disabled
    s.chan[src][dst][len++] = m;
    return true;
}

bool
ProtocolModel::isQuiescent(const State &s) const
{
    // Quiescent = all work budgets consumed, no MSHRs, no messages,
    // no pending intervention.
    for (unsigned n = 0; n < _cfg.nodes; ++n) {
        if (s.mshr[n] || s.readsLeft[n])
            return false;
        for (unsigned d = 0; d < _cfg.nodes; ++d) {
            if (s.chanLen[n][d])
                return false;
        }
    }
    return s.writesLeft == 0 && !s.intervPending;
}

void
ProtocolModel::completeWrite(State &s, unsigned n) const
{
    if (s.mshrV[n] != s.curV) {
        throw McError("lost update: node writes from stale version " +
                      std::to_string(s.mshrV[n]) + " cur " +
                      std::to_string(s.curV));
    }
    for (unsigned m = 0; m < _cfg.nodes; ++m) {
        if (m != n && s.cache[m] != CState::I)
            throw McError("single-writer violated by cache copy");
        if (m != n && (s.racMask & (1u << m)))
            throw McError("single-writer violated by RAC copy");
    }
    // Our own RAC copy (a superseded push) is now stale: drop it,
    // exactly as the implementation's performStore() does.
    s.racMask &= ~(1u << n);
    ++s.curV;
    s.cache[n] = CState::M;
    s.cacheV[n] = s.curV;
    s.lastSeen[n] = s.curV;
    s.mshr[n] = 0;
    s.mshrHaveData[n] = 0;
    s.mshrAcksNeed[n] = -1;
    s.mshrAcksGot[n] = 0;
    s.fillInval[n] = 0;

    // Delegated producer: arm the delayed intervention (its firing is
    // a separate, nondeterministically-timed transition).
    if (s.prodValid && s.prodNode == n && _cfg.updates)
        s.intervPending = 1;
}

void
ProtocolModel::maybeComplete(State &s, unsigned n) const
{
    if (s.mshr[n] == 1) {
        if (!s.mshrHaveData[n])
            return;
        // Read completion.
        if (s.mshrV[n] < s.lastSeen[n])
            throw McError("non-monotonic read");
        if (s.mshrV[n] > s.curV)
            throw McError("read from the future");
        s.lastSeen[n] = s.mshrV[n];
        if (!s.fillInval[n]) {
            s.cache[n] = CState::S;
            s.cacheV[n] = s.mshrV[n];
        }
        s.mshr[n] = 0;
        s.mshrHaveData[n] = 0;
        s.fillInval[n] = 0;
        return;
    }
    if (s.mshr[n] == 2) {
        if (!s.mshrHaveData[n] || s.mshrAcksNeed[n] < 0)
            return;
        if (s.mshrAcksGot[n] <
            static_cast<std::uint8_t>(s.mshrAcksNeed[n]))
            return;
        completeWrite(s, n);
    }
}

bool
ProtocolModel::undelegate(State &s, unsigned p, std::uint8_t pend_req,
                          std::uint8_t pend_is_write,
                          std::uint8_t pend_seq) const
{
    MMsg und;
    und.type = MType::Undele;
    und.version = s.prodV;
    und.requester = pend_req;
    und.acks = pend_is_write;
    und.seq = pend_seq;
    if (s.prodIsExcl) {
        und.owner = static_cast<std::uint8_t>(p);
        und.sharers = 0;
    } else {
        und.owner = none;
        und.sharers =
            static_cast<std::uint8_t>(s.prodSharers | (1u << p));
    }
    if (s.chanLen[p][_cfg.home] >= chanDepth)
        return false; // cannot hand off now: transition disabled
    // A parked request cannot survive the handoff: bounce it with
    // NackNotHome (the implementation's undelegate() queue flush) so
    // the requester re-targets the true home. Both sends must have
    // room before anything mutates.
    if (s.prodParkedType &&
        s.chanLen[p][s.prodParkedReq] >= chanDepth)
        return false;
    s.prodValid = 0;
    s.prodNode = none;
    s.intervPending = 0;
    send(s, p, _cfg.home, und);
    if (s.prodParkedType) {
        MMsg nk;
        nk.type = MType::NackNotHome;
        nk.seq = s.prodParkedSeq;
        send(s, p, s.prodParkedReq, nk);
        s.prodParkedType = 0;
        s.prodParkedReq = none;
        s.prodParkedSeq = 0;
    }
    return true;
}

void
ProtocolModel::transitions(const State &s,
                           std::vector<State> &out) const
{
    const unsigned home = _cfg.home;

    // --- CPU ops ----------------------------------------------------
    for (unsigned n = 0; n < _cfg.nodes; ++n) {
        // Read.
        if (s.readsLeft[n] && !s.mshr[n]) {
            const std::size_t rbase = out.size();
            if (s.cache[n] != CState::I) {
                // Hit.
                State t = s;
                if (t.cacheV[n] < t.lastSeen[n])
                    throw McError("hit read went backwards");
                t.lastSeen[n] = t.cacheV[n];
                --t.readsLeft[n];
                out.push_back(std::move(t));
            } else if (s.racMask & (1u << n)) {
                // Local RAC hit (pushed update copy).
                State t = s;
                if (t.racV[n] < t.lastSeen[n])
                    throw McError("RAC read went backwards");
                t.lastSeen[n] = t.racV[n];
                t.cache[n] = CState::S;
                t.cacheV[n] = t.racV[n];
                t.racMask &= ~(1u << n);
                --t.readsLeft[n];
                out.push_back(std::move(t));
            } else {
                // Miss: issue to the home, or to the delegate if one
                // exists (consumer-table hint, modeled as a choice).
                MMsg req;
                req.type = MType::ReqS;
                req.requester = static_cast<std::uint8_t>(n);
                State t = s;
                t.mshr[n] = 1;
                t.mshrSeq[n] = (t.mshrSeq[n] + 1) & 7;
                req.seq = t.mshrSeq[n];
                --t.readsLeft[n];
                if (s.prodValid && s.prodNode == n) {
                    if (send(t, n, n, req))
                        out.push_back(std::move(t));
                } else {
                    State t2 = t; // copy before send mutates channels
                    if (send(t, n, home, req))
                        out.push_back(std::move(t));
                    if (s.prodValid && s.prodNode != n &&
                        s.prodNode != home) {
                        if (send(t2, n, s.prodNode, req))
                            out.push_back(std::move(t2));
                    }
                }
            }
            if (_listener) {
                for (std::size_t i = rbase; i < out.size(); ++i) {
                    _listener->onTransition(
                        0, static_cast<int>(s.cache[n]),
                        TransitionListener::evCpuLoad,
                        static_cast<int>(out[i].cache[n]));
                }
            }
        }
        // Write.
        if (s.writesLeft && !s.mshr[n]) {
            const std::size_t wbase = out.size();
            if (s.cache[n] == CState::M) {
                State t = s;
                t.mshrV[n] = t.cacheV[n];
                --t.writesLeft;
                // Store hit: perform directly.
                t.mshrHaveData[n] = 1;
                t.mshr[n] = 2;
                t.mshrAcksNeed[n] = 0;
                completeWrite(t, n);
                out.push_back(std::move(t));
            } else {
                MMsg req;
                req.type = MType::ReqX;
                req.requester = static_cast<std::uint8_t>(n);
                State t = s;
                t.mshr[n] = 2;
                t.mshrSeq[n] = (t.mshrSeq[n] + 1) & 7;
                req.seq = t.mshrSeq[n];
                t.mshrAcksNeed[n] = -1;
                t.mshrAcksGot[n] = 0;
                t.mshrHaveData[n] = 0;
                --t.writesLeft;
                if (s.prodValid && s.prodNode == n) {
                    // Delegated to us: the producer table serves it.
                    if (send(t, n, n, req))
                        out.push_back(std::move(t));
                } else {
                    State t2 = t;
                    if (send(t, n, home, req))
                        out.push_back(std::move(t));
                    if (s.prodValid && s.prodNode != n &&
                        s.prodNode != home) {
                        if (send(t2, n, s.prodNode, req))
                            out.push_back(std::move(t2));
                    }
                }
            }
            if (_listener) {
                for (std::size_t i = wbase; i < out.size(); ++i) {
                    _listener->onTransition(
                        0, static_cast<int>(s.cache[n]),
                        TransitionListener::evCpuStore,
                        static_cast<int>(out[i].cache[n]));
                }
            }
        }
    }

    // --- Delayed intervention firing ---------------------------------
    if (s.intervPending && s.prodValid) {
        const std::size_t ibase = out.size();
        State t = s;
        t.intervPending = 0;
        const unsigned p = t.prodNode;
        if (t.prodIsExcl && t.cache[p] == CState::M) {
            t.cache[p] = CState::S;
            t.prodV = t.cacheV[p];
            const std::uint8_t update_set =
                t.prodSharers & ~(1u << p);
            t.prodIsExcl = 0;
            t.prodSharers = update_set | (1u << p);
            bool ok = true;
            if (_cfg.updates) {
                for (unsigned c = 0; c < _cfg.nodes && ok; ++c) {
                    if (!(update_set & (1u << c)))
                        continue;
                    MMsg up;
                    up.type = MType::Update;
                    up.version = t.prodV;
                    ok = send(t, p, c, up);
                }
            }
            if (ok)
                out.push_back(std::move(t));
        } else {
            out.push_back(std::move(t));
        }
        if (_listener) {
            const unsigned p = s.prodNode;
            for (std::size_t i = ibase; i < out.size(); ++i) {
                _listener->onTransition(
                    2, prodStateOf(s, p),
                    TransitionListener::evDelayedInterv,
                    prodStateOf(out[i], p));
                if (out[i].cache[p] != s.cache[p]) {
                    _listener->onTransition(
                        0, static_cast<int>(s.cache[p]),
                        TransitionListener::evLocalDowngrade,
                        static_cast<int>(out[i].cache[p]));
                }
            }
        }
    }

    // --- Parked-request drains (homeQueue) ---------------------------
    // Spontaneous re-injection of a parked request once the blocking
    // episode has closed (the implementation drains on episode
    // completion; here the enabling condition stands in for that
    // event). Not reported to the listener: a drain replays a request
    // the spec already covers at its original delivery.
    if (_cfg.homeQueue && s.parkedType && s.dir != DState::BusyR &&
        s.dir != DState::BusyE && s.dir != DState::BusyUpd) {
        State t = s;
        MMsg req;
        req.type = t.parkedType == 1 ? MType::ReqS : MType::ReqX;
        req.requester = t.parkedReq;
        req.seq = t.parkedSeq;
        t.parkedType = 0;
        t.parkedReq = 0xf;
        t.parkedSeq = 0;
        applyAtHome(std::move(t), req.requester, req, out);
    }
    if (_cfg.homeQueue && s.prodValid && s.prodParkedType &&
        !s.mshr[s.prodNode] &&
        !(s.prodParkedType == 1 && s.prodIsExcl && _cfg.updates &&
          s.intervPending)) {
        State t = s;
        MMsg req;
        req.type = t.prodParkedType == 1 ? MType::ReqS : MType::ReqX;
        req.requester = t.prodParkedReq;
        req.seq = t.prodParkedSeq;
        t.prodParkedType = 0;
        t.prodParkedReq = 0xf;
        t.prodParkedSeq = 0;
        applyAtNode(std::move(t), s.prodNode, req.requester, req,
                    out);
    }

    // --- Message deliveries ------------------------------------------
    for (unsigned src = 0; src < _cfg.nodes; ++src) {
        for (unsigned dst = 0; dst < _cfg.nodes; ++dst) {
            if (s.chanLen[src][dst]) {
                State copy = s;
                deliver(copy, src, dst, out);
            }
        }
    }
}

void
ProtocolModel::deliver(State &t, unsigned src, unsigned dst,
                       std::vector<State> &out) const
{
    // Pop the head (FIFO per pair).
    MMsg m = t.chan[src][dst][0];
    for (unsigned i = 1; i < t.chanLen[src][dst]; ++i)
        t.chan[src][dst][i - 1] = t.chan[src][dst][i];
    --t.chanLen[src][dst];
    t.chan[src][dst][t.chanLen[src][dst]] = MMsg{};

    const bool for_home_side =
        m.type == MType::ReqS || m.type == MType::ReqX ||
        m.type == MType::Shwb || m.type == MType::XferAck ||
        m.type == MType::IntervNack || m.type == MType::Undele ||
        m.type == MType::UpdateWB || m.type == MType::UpdDrop;

    // Which controller handles this delivery: the home directory, a
    // producer table acting as the home, a plain cache, or a
    // stale-hint bounce that touches no FSM at all.
    enum class Side { Home, Producer, Cache, Bounce };
    Side side;
    if (for_home_side) {
        if ((m.type == MType::ReqS || m.type == MType::ReqX) &&
            t.prodValid && t.prodNode == dst) {
            side = Side::Producer;
        } else if (dst == _cfg.home) {
            side = Side::Home;
        } else {
            side = Side::Bounce;
        }
    } else {
        side = m.type == MType::Delegate ? Side::Producer
                                         : Side::Cache;
    }

    // Snapshot pre-states before dispatch (t is moved below).
    const std::size_t base = out.size();
    const int preCache = static_cast<int>(t.cache[dst]);
    const int preDir = static_cast<int>(t.dir);
    const int preProd = prodStateOf(t, dst);
    const int event = static_cast<int>(m.type);

    switch (side) {
      case Side::Producer:
      case Side::Cache:
        applyAtNode(std::move(t), dst, src, m, out);
        break;
      case Side::Home:
        applyAtHome(std::move(t), src, m, out);
        break;
      case Side::Bounce: {
        // Stale hint: not the home, no producer entry.
        MMsg nack;
        nack.type = MType::NackNotHome;
        nack.seq = m.seq;
        if (send(t, dst, m.requester, nack))
            out.push_back(std::move(t));
        break;
      }
    }

    if (!_listener)
        return;
    for (std::size_t i = base; i < out.size(); ++i) {
        const State &u = out[i];
        switch (side) {
          case Side::Home:
            _listener->onTransition(1, preDir, event,
                                    static_cast<int>(u.dir));
            break;
          case Side::Producer:
            _listener->onTransition(2, preProd, event,
                                    prodStateOf(u, dst));
            // On-demand downgrade of the producer's own copy.
            if (static_cast<int>(u.cache[dst]) != preCache) {
                _listener->onTransition(
                    0, preCache,
                    TransitionListener::evLocalDowngrade,
                    static_cast<int>(u.cache[dst]));
            }
            break;
          case Side::Cache:
            _listener->onTransition(0, preCache, event,
                                    static_cast<int>(u.cache[dst]));
            break;
          case Side::Bounce:
            break;
        }
    }
}

void
ProtocolModel::applyAtHome(State t, unsigned src, const MMsg &m,
                           std::vector<State> &out) const
{
    const unsigned home = _cfg.home;
    const unsigned r = m.requester;

    auto nack = [&](State &st, unsigned to) {
        MMsg n;
        n.type = MType::Nack;
        n.seq = m.seq;
        return send(st, home, to, n);
    };
    // Busy-state arbitration: under homeQueue a request parks in the
    // free slot instead of NACKing; an occupied slot (queue overflow)
    // falls back to the NACK, like the implementation's depth cap.
    auto nackOrPark = [&](State &st, unsigned to, bool is_write) {
        if (_cfg.homeQueue && st.parkedType == 0) {
            st.parkedType = is_write ? 2 : 1;
            st.parkedReq = static_cast<std::uint8_t>(to);
            st.parkedSeq = m.seq;
            return true;
        }
        return nack(st, to);
    };

    switch (m.type) {
      case MType::ReqS: {
        switch (t.dir) {
          case DState::U:
          case DState::S: {
            t.dir = DState::S;
            t.sharers |= (1u << r);
            MMsg resp;
            resp.type = MType::RespS;
            resp.version = t.memV;
            resp.seq = m.seq;
            if (send(t, home, r, resp))
                out.push_back(std::move(t));
            break;
          }
          case DState::E: {
            if (t.owner == r) {
                if (nack(t, r))
                    out.push_back(std::move(t));
                break;
            }
            t.pendReq = static_cast<std::uint8_t>(r);
            t.pendOwner = t.owner;
            t.pendIsWrite = 0;
            t.pendSeq = m.seq;
            t.dir = DState::BusyR;
            MMsg iv;
            iv.type = MType::IntervDown;
            iv.requester = static_cast<std::uint8_t>(r);
            iv.seq = m.seq;
            if (send(t, home, t.pendOwner, iv))
                out.push_back(std::move(t));
            break;
          }
          case DState::BusyR:
          case DState::BusyE:
          case DState::BusyUpd:
            if (nackOrPark(t, r, /*is_write=*/false))
                out.push_back(std::move(t));
            break;
          case DState::Dele: {
            if (r == t.owner) {
                if (nack(t, r))
                    out.push_back(std::move(t));
                break;
            }
            MMsg fwd = m;
            if (send(t, home, t.owner, fwd))
                out.push_back(std::move(t));
            break;
          }
        }
        break;
      }

      case MType::ReqX: {
        // Write-update: the home opens an update episode instead of
        // granting ownership -- the directory only ever visits U, S
        // and BusyUpd under this policy.
        if (_cfg.writeUpdate) {
            switch (t.dir) {
              case DState::U:
              case DState::S: {
                t.dir = DState::BusyUpd;
                t.pendReq = static_cast<std::uint8_t>(r);
                t.pendSeq = m.seq;
                MMsg grant;
                grant.type = MType::UpdGrant;
                grant.version = t.memV;
                grant.seq = m.seq;
                if (send(t, home, r, grant))
                    out.push_back(std::move(t));
                break;
              }
              case DState::BusyUpd:
                if (nackOrPark(t, r, /*is_write=*/true))
                    out.push_back(std::move(t));
                break;
              default:
                throw McError(
                    "write-update directory outside U/S/BusyUpd");
            }
            break;
        }
        // Nondeterministic delegation decision (over-approximates the
        // detector): branch both ways when permitted.
        if (_cfg.delegation &&
            (t.dir == DState::U || t.dir == DState::S)) {
            State d = t;
            d.dir = DState::Dele;
            d.owner = static_cast<std::uint8_t>(r);
            MMsg del;
            del.type = MType::Delegate;
            del.version = d.memV;
            del.sharers = d.sharers;
            del.seq = m.seq;
            const std::uint8_t shr = d.sharers;
            d.sharers = 0;
            (void)shr;
            if (send(d, home, r, del))
                out.push_back(std::move(d));
        }
        switch (t.dir) {
          case DState::U: {
            t.dir = DState::E;
            t.owner = static_cast<std::uint8_t>(r);
            t.sharers = 0;
            MMsg resp;
            resp.type = MType::RespX;
            resp.version = t.memV;
            resp.acks = 0;
            resp.seq = m.seq;
            if (send(t, home, r, resp))
                out.push_back(std::move(t));
            break;
          }
          case DState::S: {
            const std::uint8_t targets = t.sharers & ~(1u << r);
            bool ok = true;
            for (unsigned c = 0; c < _cfg.nodes && ok; ++c) {
                if (!(targets & (1u << c)))
                    continue;
                MMsg iv;
                iv.type = MType::Inval;
                iv.requester = static_cast<std::uint8_t>(r);
                iv.version = t.memV;
                iv.seq = m.seq;
                ok = send(t, home, c, iv);
            }
            if (!ok)
                break;
            t.dir = DState::E;
            t.owner = static_cast<std::uint8_t>(r);
            t.sharers = 0;
            MMsg resp;
            resp.type = MType::RespX;
            resp.version = t.memV;
            resp.acks = popcount(targets);
            resp.seq = m.seq;
            if (send(t, home, r, resp))
                out.push_back(std::move(t));
            break;
          }
          case DState::E: {
            if (t.owner == r) {
                if (nack(t, r))
                    out.push_back(std::move(t));
                break;
            }
            t.pendReq = static_cast<std::uint8_t>(r);
            t.pendOwner = t.owner;
            t.pendIsWrite = 1;
            t.pendSeq = m.seq;
            t.dir = DState::BusyE;
            MMsg iv;
            iv.type = MType::IntervXfer;
            iv.requester = static_cast<std::uint8_t>(r);
            iv.seq = m.seq;
            if (send(t, home, t.pendOwner, iv))
                out.push_back(std::move(t));
            break;
          }
          case DState::BusyR:
          case DState::BusyE:
          case DState::BusyUpd:
            if (nackOrPark(t, r, /*is_write=*/true))
                out.push_back(std::move(t));
            break;
          case DState::Dele: {
            if (r == t.owner) {
                if (nack(t, r))
                    out.push_back(std::move(t));
                break;
            }
            MMsg fwd = m;
            if (send(t, home, t.owner, fwd))
                out.push_back(std::move(t));
            break;
          }
        }
        break;
      }

      case MType::UpdateWB: {
        if (t.dir != DState::BusyUpd || t.pendReq != m.requester)
            throw McError("UpdateWB outside an open BusyUpd episode");
        if (_cfg.defectStallUpdateWB) {
            // Seeded liveness defect: swallow the writeback without
            // closing the episode; the directory stays BusyUpd and
            // NACKs every later request forever.
            out.push_back(std::move(t));
            break;
        }
        t.memV = m.version;
        // Refresh every other sharer in place, then list the writer.
        const std::uint8_t targets = t.sharers & ~(1u << m.requester);
        bool ok = true;
        for (unsigned c = 0; c < _cfg.nodes && ok; ++c) {
            if (!(targets & (1u << c)))
                continue;
            MMsg up;
            up.type = MType::Update;
            up.version = t.memV;
            ok = send(t, home, c, up);
        }
        if (!ok)
            break;
        t.sharers |= (1u << m.requester);
        t.dir = DState::S;
        t.pendReq = none;
        out.push_back(std::move(t));
        break;
      }

      case MType::UpdDrop: {
        // A consumer left the update stream; pure unsubscription (the
        // model's sharer vector is exact, so always drop the bit).
        t.sharers &= ~(1u << m.requester);
        out.push_back(std::move(t));
        break;
      }

      case MType::Shwb: {
        if (t.dir != DState::BusyR)
            throw McError("SHWB outside BusyR");
        t.memV = m.version;
        t.dir = DState::S;
        t.sharers = static_cast<std::uint8_t>((1u << t.pendOwner) |
                                              (1u << t.pendReq));
        t.owner = none;
        t.pendReq = none;
        t.pendOwner = none;
        out.push_back(std::move(t));
        break;
      }

      case MType::XferAck: {
        if (t.dir != DState::BusyE)
            throw McError("XferAck outside BusyE");
        t.dir = DState::E;
        t.owner = t.pendReq;
        t.sharers = 0;
        t.pendReq = none;
        t.pendOwner = none;
        out.push_back(std::move(t));
        break;
      }

      case MType::IntervNack: {
        if ((t.dir == DState::BusyR || t.dir == DState::BusyE) &&
            t.pendOwner == src) {
            const std::uint8_t req = t.pendReq;
            MMsg nk;
            nk.type = MType::Nack;
            nk.seq = t.pendSeq;
            t.dir = DState::E;
            t.owner = t.pendOwner;
            t.sharers = 0;
            t.pendReq = none;
            t.pendOwner = none;
            if (send(t, home, req, nk))
                out.push_back(std::move(t));
        } else {
            out.push_back(std::move(t)); // stale: drop
        }
        break;
      }

      case MType::Undele: {
        if (t.dir != DState::Dele || t.owner != src)
            throw McError("Undele in wrong state");
        t.memV = m.version;
        if (m.owner != none) {
            t.dir = DState::E;
            t.owner = m.owner;
            t.sharers = 0;
        } else if (m.sharers) {
            t.dir = DState::S;
            t.sharers = m.sharers;
            t.owner = none;
        } else {
            t.dir = DState::U;
            t.owner = none;
            t.sharers = 0;
        }
        if (m.requester != none) {
            // Re-handle the pending request that forced this.
            MMsg req;
            req.type = m.acks ? MType::ReqX : MType::ReqS;
            req.requester = m.requester;
            req.seq = m.seq;
            if (!send(t, home, home, req))
                break;
        }
        out.push_back(std::move(t));
        break;
      }

      default:
        throw McError("unexpected message at home");
    }
}

void
ProtocolModel::applyAtNode(State t, unsigned dst,
                           unsigned /* src: senders identify
                                      themselves via m.requester */,
                           const MMsg &m,
                           std::vector<State> &out) const
{
    const unsigned home = _cfg.home;
    const unsigned n = dst;

    switch (m.type) {
      case MType::ReqS:
      case MType::ReqX: {
        // Producer-table service (delegated home).
        if (!t.prodValid || t.prodNode != n)
            throw McError("request at node without producer entry");
        const unsigned r = m.requester;
        // Busy-producer arbitration mirrors the home's: one remote
        // request parks in the producer's slot, a second NACKs.
        auto prodNackOrPark = [&](State &st) {
            if (_cfg.homeQueue && st.prodParkedType == 0) {
                st.prodParkedType = m.type == MType::ReqS ? 1 : 2;
                st.prodParkedReq = static_cast<std::uint8_t>(r);
                st.prodParkedSeq = m.seq;
                return true;
            }
            MMsg nk;
            nk.type = MType::Nack;
            nk.seq = m.seq;
            return send(st, n, r, nk);
        };
        if (r != n && t.mshr[n]) {
            if (prodNackOrPark(t))
                out.push_back(std::move(t));
            break;
        }
        if (m.type == MType::ReqS) {
            if (t.prodIsExcl) {
                if (_cfg.updates && t.intervPending) {
                    if (prodNackOrPark(t))
                        out.push_back(std::move(t));
                    break;
                }
                // On-demand downgrade.
                if (t.cache[n] == CState::M) {
                    t.cache[n] = CState::S;
                    t.prodV = t.cacheV[n];
                }
                t.prodIsExcl = 0;
                t.prodSharers |= (1u << n);
            }
            t.prodSharers |= (1u << r);
            MMsg resp;
            resp.type = MType::RespS;
            resp.version = t.prodV;
            resp.seq = m.seq;
            if (send(t, n, r, resp))
                out.push_back(std::move(t));
            break;
        }
        // ReqX.
        if (r == n) {
            // Local write through the producer entry.
            if (t.prodIsExcl)
                throw McError("local write while producer EXCL");
            const std::uint8_t targets = t.prodSharers & ~(1u << n);
            bool ok = true;
            for (unsigned c = 0; c < _cfg.nodes && ok; ++c) {
                if (!(targets & (1u << c)))
                    continue;
                MMsg iv;
                iv.type = MType::Inval;
                iv.requester = static_cast<std::uint8_t>(n);
                iv.version = t.prodV;
                iv.seq = m.seq;
                ok = send(t, n, c, iv);
            }
            if (!ok)
                break;
            t.prodIsExcl = 1;
            MMsg grant;
            grant.type = MType::RespX;
            grant.version = t.prodV;
            grant.acks = popcount(targets);
            grant.seq = m.seq;
            if (send(t, n, n, grant))
                out.push_back(std::move(t));
        } else {
            // Undelegation reason 3.
            if (undelegate(t, n, static_cast<std::uint8_t>(r),
                           /*pend_is_write=*/1, m.seq)) {
                out.push_back(std::move(t));
            }
        }
        break;
      }

      case MType::Inval: {
        t.tombV[n] = std::max(t.tombV[n], m.version);
        t.cache[n] = CState::I;
        t.racMask &= ~(1u << n);
        if (t.mshr[n] == 1)
            t.fillInval[n] = 1;
        MMsg ack;
        ack.type = MType::InvalAck;
        ack.seq = m.seq;
        if (send(t, n, m.requester, ack))
            out.push_back(std::move(t));
        break;
      }

      case MType::IntervDown: {
        if (t.mshr[n] == 2 || t.cache[n] == CState::I) {
            MMsg nk;
            nk.type = MType::IntervNack;
            if (send(t, n, home, nk))
                out.push_back(std::move(t));
            break;
        }
        t.cache[n] = CState::S;
        MMsg data;
        data.type = MType::SharedResp;
        data.version = t.cacheV[n];
        data.seq = m.seq;
        MMsg wb;
        wb.type = MType::Shwb;
        wb.version = t.cacheV[n];
        if (send(t, n, m.requester, data) && send(t, n, home, wb))
            out.push_back(std::move(t));
        break;
      }

      case MType::IntervXfer: {
        if (t.mshr[n] == 2 || t.cache[n] == CState::I) {
            MMsg nk;
            nk.type = MType::IntervNack;
            if (send(t, n, home, nk))
                out.push_back(std::move(t));
            break;
        }
        const std::uint8_t v = t.cacheV[n];
        t.cache[n] = CState::I;
        t.racMask &= ~(1u << n);
        MMsg data;
        data.type = MType::XferResp;
        data.version = v;
        data.seq = m.seq;
        MMsg ack;
        ack.type = MType::XferAck;
        if (send(t, n, m.requester, data) && send(t, n, home, ack))
            out.push_back(std::move(t));
        break;
      }

      case MType::RespS:
      case MType::SharedResp: {
        if (t.mshr[n] != 1 || m.seq != t.mshrSeq[n]) {
            out.push_back(std::move(t)); // stale: drop
            break;
        }
        t.mshrHaveData[n] = 1;
        t.mshrV[n] = m.version;
        maybeComplete(t, n);
        out.push_back(std::move(t));
        break;
      }

      case MType::RespX:
      case MType::XferResp: {
        if (t.mshr[n] != 2 || m.seq != t.mshrSeq[n]) {
            out.push_back(std::move(t));
            break;
        }
        t.mshrHaveData[n] = 1;
        t.mshrV[n] = m.version;
        t.mshrAcksNeed[n] =
            m.type == MType::RespX ? static_cast<std::int8_t>(m.acks)
                                   : 0;
        maybeComplete(t, n);
        out.push_back(std::move(t));
        break;
      }

      case MType::InvalAck: {
        if (t.mshr[n] == 2 && m.seq == t.mshrSeq[n]) {
            ++t.mshrAcksGot[n];
            maybeComplete(t, n);
        }
        out.push_back(std::move(t));
        break;
      }

      case MType::Nack: {
        if (!t.mshr[n] || m.seq != t.mshrSeq[n]) {
            out.push_back(std::move(t));
            break;
        }
        // Retry: the RAC may have been filled by a push meanwhile.
        if (t.mshr[n] == 1 && (t.racMask & (1u << n))) {
            t.mshrHaveData[n] = 1;
            t.mshrV[n] = t.racV[n];
            t.fillInval[n] = 0;
            t.racMask &= ~(1u << n);
            maybeComplete(t, n);
            out.push_back(std::move(t));
            break;
        }
        MMsg req;
        req.type = t.mshr[n] == 1 ? MType::ReqS : MType::ReqX;
        req.requester = static_cast<std::uint8_t>(n);
        req.seq = t.mshrSeq[n]; // same transaction, same tag
        if (t.prodValid && t.prodNode == n) {
            if (send(t, n, n, req))
                out.push_back(std::move(t));
            break;
        }
        State t2 = t;
        if (send(t, n, home, req))
            out.push_back(std::move(t));
        if (t2.prodValid && t2.prodNode != n && t2.prodNode != home) {
            const unsigned p = t2.prodNode;
            if (send(t2, n, p, req))
                out.push_back(std::move(t2));
        }
        break;
      }

      case MType::NackNotHome: {
        if (!t.mshr[n] || m.seq != t.mshrSeq[n]) {
            out.push_back(std::move(t));
            break;
        }
        MMsg req;
        req.type = t.mshr[n] == 1 ? MType::ReqS : MType::ReqX;
        req.requester = static_cast<std::uint8_t>(n);
        req.seq = t.mshrSeq[n];
        if (send(t, n, home, req))
            out.push_back(std::move(t));
        break;
      }

      case MType::Delegate: {
        t.prodValid = 1;
        t.prodNode = static_cast<std::uint8_t>(n);
        t.prodIsExcl = 0;
        t.prodSharers = m.sharers;
        t.prodV = m.version;
        if (t.mshr[n] == 2) {
            // Serve the pending local write as the acting home.
            const std::uint8_t targets = t.prodSharers & ~(1u << n);
            bool ok = true;
            for (unsigned c = 0; c < _cfg.nodes && ok; ++c) {
                if (!(targets & (1u << c)))
                    continue;
                MMsg iv;
                iv.type = MType::Inval;
                iv.requester = static_cast<std::uint8_t>(n);
                iv.version = t.prodV;
                iv.seq = m.seq;
                ok = send(t, n, c, iv);
            }
            if (!ok)
                break;
            t.prodIsExcl = 1;
            MMsg grant;
            grant.type = MType::RespX;
            grant.version = t.prodV;
            grant.acks = popcount(targets);
            grant.seq = m.seq;
            if (send(t, n, n, grant))
                out.push_back(std::move(t));
        } else {
            out.push_back(std::move(t));
        }
        break;
      }

      case MType::UpdGrant: {
        if (t.mshr[n] != 2 || m.seq != t.mshrSeq[n]) {
            out.push_back(std::move(t)); // stale: drop
            break;
        }
        // Perform the store inline and self-downgrade to SHARED; the
        // new data returns to the home within the same handler. The
        // grant carries the committed memory version, which BusyUpd
        // serialization keeps equal to the oracle's current version.
        if (m.version != t.curV) {
            throw McError(
                "lost update: grant carries stale version " +
                std::to_string(m.version) + " cur " +
                std::to_string(t.curV));
        }
        ++t.curV;
        t.cache[n] = CState::S;
        t.cacheV[n] = t.curV;
        t.lastSeen[n] = t.curV;
        t.mshr[n] = 0;
        t.mshrHaveData[n] = 0;
        t.mshrAcksNeed[n] = -1;
        t.mshrAcksGot[n] = 0;
        MMsg wb;
        wb.type = MType::UpdateWB;
        wb.requester = static_cast<std::uint8_t>(n);
        wb.version = t.curV;
        if (send(t, n, home, wb))
            out.push_back(std::move(t));
        break;
      }

      case MType::Update: {
        if (_cfg.writeUpdate) {
            if (t.cache[n] != CState::I) {
                if (_cfg.adaptive) {
                    // Nondeterministic self-invalidation: leave the
                    // update stream (over-approximates the stale-
                    // update counter reaching its threshold).
                    State d = t;
                    d.cache[n] = CState::I;
                    MMsg drop;
                    drop.type = MType::UpdDrop;
                    drop.requester = static_cast<std::uint8_t>(n);
                    if (send(d, n, home, drop))
                        out.push_back(std::move(d));
                }
                // Refresh the SHARED copy in place.
                if (m.version > t.cacheV[n])
                    t.cacheV[n] = m.version;
                out.push_back(std::move(t));
                break;
            }
            if (t.mshr[n] == 1) {
                // A push doubles as the read-miss response.
                t.mshrHaveData[n] = 1;
                t.mshrV[n] = m.version;
                maybeComplete(t, n);
                out.push_back(std::move(t));
                break;
            }
            // Dropped / never-held copy: ignore the push.
            out.push_back(std::move(t));
            break;
        }
        if (m.version <= t.tombV[n]) {
            out.push_back(std::move(t)); // stale push: drop
            break;
        }
        if (t.mshr[n] == 1) {
            t.mshrHaveData[n] = 1;
            t.mshrV[n] = m.version;
            t.fillInval[n] = 0;
            maybeComplete(t, n);
            out.push_back(std::move(t));
            break;
        }
        if (t.mshr[n] == 2 || t.cache[n] != CState::I) {
            out.push_back(std::move(t));
            break;
        }
        t.racMask |= (1u << n);
        t.racV[n] = m.version;
        out.push_back(std::move(t));
        break;
      }

      default:
        throw McError("unexpected message at node");
    }
}

void
ProtocolModel::checkInvariants(const State &s) const
{
    unsigned owners = 0;
    for (unsigned n = 0; n < _cfg.nodes; ++n) {
        if (s.cache[n] == CState::M) {
            ++owners;
            if (s.cacheV[n] != s.curV)
                throw McError("M copy is not the current version");
            for (unsigned m = 0; m < _cfg.nodes; ++m) {
                if (m != n && s.cache[m] != CState::I)
                    throw McError("M coexists with another copy");
            }
            if (s.racMask)
                throw McError("M coexists with a RAC copy");
        }
        if (s.cache[n] == CState::S && s.cacheV[n] != s.curV) {
            // Write-update sharers are refreshed asynchronously: a
            // stale copy is legal while the episode is still open
            // (BusyUpd) or while its refresh is still in flight.
            bool excused = false;
            if (_cfg.writeUpdate) {
                if (s.dir == DState::BusyUpd)
                    excused = true;
                for (unsigned i = 0;
                     !excused && i < s.chanLen[_cfg.home][n]; ++i) {
                    const MMsg &m = s.chan[_cfg.home][n][i];
                    if (m.type == MType::Update &&
                        m.version > s.cacheV[n])
                        excused = true;
                }
            }
            if (!excused)
                throw McError("stale SHARED copy");
        }
        if ((s.racMask & (1u << n)) && s.racV[n] != s.curV)
            throw McError("stale RAC copy");
    }
    if (owners > 1)
        throw McError("multiple writers");

    // Directory consistency (outside transients, which are covered by
    // the Busy/Dele states).
    if (s.dir == DState::U && !s.prodValid) {
        for (unsigned n = 0; n < _cfg.nodes; ++n) {
            if (s.cache[n] != CState::I)
                throw McError("holder under Unowned directory");
        }
    }
    if (s.dir == DState::Dele) {
        if (!s.prodValid) {
            // Legal transiently (Delegate or Undele in flight);
            // illegal when no such message exists.
            bool in_flight = false;
            for (unsigned a = 0; a < _cfg.nodes; ++a) {
                for (unsigned b = 0; b < _cfg.nodes; ++b) {
                    for (unsigned i = 0; i < s.chanLen[a][b]; ++i) {
                        const MType ty = s.chan[a][b][i].type;
                        if (ty == MType::Delegate ||
                            ty == MType::Undele)
                            in_flight = true;
                    }
                }
            }
            if (!in_flight)
                throw McError("DELE with no delegate and no handoff "
                              "in flight");
        }
    }

    // Channel sanity.
    for (unsigned a = 0; a < _cfg.nodes; ++a) {
        for (unsigned b = 0; b < _cfg.nodes; ++b) {
            if (s.chanLen[a][b] > chanDepth)
                throw McError("channel overflow");
        }
    }
}

std::string
ProtocolModel::describe(const State &s) const
{
    std::ostringstream os;
    os << "dir=" << static_cast<int>(s.dir)
       << " sharers=" << int(s.sharers) << " owner=" << int(s.owner)
       << " memV=" << int(s.memV) << " curV=" << int(s.curV)
       << " writesLeft=" << int(s.writesLeft) << "\n";
    for (unsigned n = 0; n < _cfg.nodes; ++n) {
        os << "  node" << n << ": cache="
           << (s.cache[n] == CState::I
                   ? "I"
                   : s.cache[n] == CState::S ? "S" : "M")
           << " v=" << int(s.cacheV[n]) << " mshr=" << int(s.mshr[n])
           << " readsLeft=" << int(s.readsLeft[n]) << "\n";
    }
    os << "  prod: valid=" << int(s.prodValid) << " node="
       << int(s.prodNode) << " excl=" << int(s.prodIsExcl)
       << " sharers=" << int(s.prodSharers) << "\n";
    if (_cfg.homeQueue) {
        os << "  parked: home=" << int(s.parkedType) << "/req"
           << int(s.parkedReq) << "/seq" << int(s.parkedSeq)
           << " prod=" << int(s.prodParkedType) << "/req"
           << int(s.prodParkedReq) << "/seq" << int(s.prodParkedSeq)
           << "\n";
    }
    os << "  racMask=" << int(s.racMask) << " racV=[";
    for (unsigned n = 0; n < _cfg.nodes; ++n)
        os << int(s.racV[n]) << (n + 1 < _cfg.nodes ? "," : "");
    os << "] tombV=[";
    for (unsigned n = 0; n < _cfg.nodes; ++n)
        os << int(s.tombV[n]) << (n + 1 < _cfg.nodes ? "," : "");
    os << "]\n";
    for (unsigned a = 0; a < _cfg.nodes; ++a) {
        for (unsigned b = 0; b < _cfg.nodes; ++b) {
            for (unsigned i = 0; i < s.chanLen[a][b]; ++i) {
                const MMsg &m = s.chan[a][b][i];
                os << "  msg " << a << "->" << b << " type="
                   << mtypeName(m.type)
                   << " req=" << int(m.requester) << " v="
                   << int(m.version) << " acks=" << int(m.acks)
                   << " seq=" << int(m.seq) << "\n";
            }
        }
    }
    os << "  lastSeen=[";
    for (unsigned n = 0; n < _cfg.nodes; ++n)
        os << int(s.lastSeen[n]) << (n + 1 < _cfg.nodes ? "," : "");
    os << "] fillInval=[";
    for (unsigned n = 0; n < _cfg.nodes; ++n)
        os << int(s.fillInval[n]) << (n + 1 < _cfg.nodes ? "," : "");
    os << "] mshrSeq=[";
    for (unsigned n = 0; n < _cfg.nodes; ++n)
        os << int(s.mshrSeq[n]) << (n + 1 < _cfg.nodes ? "," : "");
    os << "] intervPending=" << int(s.intervPending);
    return os.str();
}

std::string
ProtocolModel::blockedSummary(const State &s) const
{
    std::ostringstream os;
    os << "pending ops:";
    bool any = false;
    for (unsigned n = 0; n < _cfg.nodes; ++n) {
        if (!s.mshr[n])
            continue;
        any = true;
        os << " node" << n
           << (s.mshr[n] == 1 ? " read" : " write") << "(seq "
           << int(s.mshrSeq[n]);
        if (s.mshr[n] == 2 && s.mshrAcksNeed[n] >= 0) {
            os << ", acks " << int(s.mshrAcksGot[n]) << "/"
               << int(s.mshrAcksNeed[n]);
        }
        os << ")";
    }
    if (!any)
        os << " none";
    if (s.parkedType) {
        os << "; parked@home: "
           << (s.parkedType == 1 ? "read" : "write") << " req"
           << int(s.parkedReq) << " seq" << int(s.parkedSeq);
    }
    if (s.prodParkedType) {
        os << "; parked@prod: "
           << (s.prodParkedType == 1 ? "read" : "write") << " req"
           << int(s.prodParkedReq) << " seq"
           << int(s.prodParkedSeq);
    }
    os << "; budgets: writesLeft=" << int(s.writesLeft)
       << " readsLeft=[";
    for (unsigned n = 0; n < _cfg.nodes; ++n)
        os << int(s.readsLeft[n]) << (n + 1 < _cfg.nodes ? "," : "");
    os << "]\nchannel occupancy:";
    any = false;
    for (unsigned a = 0; a < _cfg.nodes; ++a) {
        for (unsigned b = 0; b < _cfg.nodes; ++b) {
            if (!s.chanLen[a][b])
                continue;
            any = true;
            os << "\n  " << a << "->" << b << ": "
               << int(s.chanLen[a][b]) << "/" << chanDepth << " [";
            for (unsigned i = 0; i < s.chanLen[a][b]; ++i) {
                os << mtypeName(s.chan[a][b][i].type)
                   << (i + 1 < s.chanLen[a][b] ? ", " : "");
            }
            os << "]";
        }
    }
    if (!any)
        os << " all channels empty";
    return os.str();
}

} // namespace mc
} // namespace pcsim
