/**
 * @file
 * Generic explicit-state model checking engine (Section 2.5).
 *
 * The paper verified its mechanisms with Murphi: "we built a formal
 * model of our protocols and performed an exhaustive reachability
 * analysis of the model for a small configuration size". This engine
 * provides the same method: breadth-first exploration of a model's
 * state space with invariant checking at every state and deadlock
 * detection (a non-quiescent state with no enabled transition).
 *
 * A Model must provide:
 *   using State = ...;                    // copyable, hashable
 *   State initial() const;
 *   void transitions(const State &,       // enumerate successors
 *                    std::vector<State> &out) const;
 *   void checkInvariants(const State &) const; // throw McError
 *   bool isQuiescent(const State &) const;     // done states may
 *                                              // have no successors
 *   std::string describe(const State &) const;
 *   std::uint64_t hash(const State &) const;
 *   bool equal(const State &, const State &) const;
 */

#ifndef PCSIM_MC_EXPLORER_HH
#define PCSIM_MC_EXPLORER_HH

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace pcsim
{

/** Raised by a model when an invariant fails. */
class McError : public std::runtime_error
{
  public:
    explicit McError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Result of an exploration. */
struct McResult
{
    std::uint64_t statesExplored = 0;
    std::uint64_t transitionsTaken = 0;
    bool completed = false; ///< false if the state limit was hit
};

/** Breadth-first explicit-state explorer. */
template <typename Model>
class Explorer
{
  public:
    explicit Explorer(const Model &model, std::uint64_t max_states =
                                              5'000'000)
        : _model(model), _maxStates(max_states)
    {
    }

    /**
     * Explore the reachable state space.
     * @throws McError on an invariant violation or deadlock.
     */
    McResult
    run()
    {
        using State = typename Model::State;

        McResult res;
        std::unordered_map<std::uint64_t, std::vector<State>> visited;
        std::deque<State> frontier;

        auto seen = [&](const State &s) {
            auto &bucket = visited[_model.hash(s)];
            for (const State &t : bucket) {
                if (_model.equal(s, t))
                    return true;
            }
            bucket.push_back(s);
            return false;
        };

        auto check = [this](const State &st) {
            try {
                _model.checkInvariants(st);
            } catch (const McError &e) {
                throw McError(std::string(e.what()) + "\nin state:\n" +
                              _model.describe(st));
            }
        };

        State init = _model.initial();
        check(init);
        seen(init);
        frontier.push_back(std::move(init));
        res.statesExplored = 1;

        std::vector<State> succ;
        while (!frontier.empty()) {
            if (res.statesExplored > _maxStates)
                return res; // bounded run: completed stays false

            State s = std::move(frontier.front());
            frontier.pop_front();

            succ.clear();
            try {
                _model.transitions(s, succ);
            } catch (const McError &e) {
                throw McError(std::string(e.what()) +
                              "\nwhile expanding state:\n" +
                              _model.describe(s));
            }
            if (succ.empty() && !_model.isQuiescent(s)) {
                throw McError("deadlock: no enabled transition in "
                              "non-quiescent state\n" +
                              _model.describe(s));
            }
            for (State &n : succ) {
                ++res.transitionsTaken;
                check(n);
                if (!seen(n)) {
                    ++res.statesExplored;
                    frontier.push_back(std::move(n));
                }
            }
        }
        res.completed = true;
        return res;
    }

  private:
    const Model &_model;
    std::uint64_t _maxStates;
};

} // namespace pcsim

#endif // PCSIM_MC_EXPLORER_HH
