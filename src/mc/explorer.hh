/**
 * @file
 * Generic explicit-state model checking engine (Section 2.5).
 *
 * The paper verified its mechanisms with Murphi: "we built a formal
 * model of our protocols and performed an exhaustive reachability
 * analysis of the model for a small configuration size". This engine
 * provides the same method: breadth-first exploration of a model's
 * state space with invariant checking at every state and deadlock
 * detection (a non-quiescent state with no enabled transition).
 *
 * A Model must provide:
 *   using State = ...;                    // copyable, hashable
 *   State initial() const;
 *   void transitions(const State &,       // enumerate successors
 *                    std::vector<State> &out) const;
 *   void checkInvariants(const State &) const; // throw McError
 *   bool isQuiescent(const State &) const;     // done states may
 *                                              // have no successors
 *   std::string describe(const State &) const;
 *   std::uint64_t hash(const State &) const;
 *   bool equal(const State &, const State &) const;
 */

#ifndef PCSIM_MC_EXPLORER_HH
#define PCSIM_MC_EXPLORER_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace pcsim
{

/** Raised by a model when an invariant fails. */
class McError : public std::runtime_error
{
  public:
    explicit McError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Result of an exploration. */
struct McResult
{
    std::uint64_t statesExplored = 0;
    std::uint64_t transitionsTaken = 0;
    bool completed = false; ///< false if the state limit was hit
};

/** Breadth-first explicit-state explorer. */
template <typename Model>
class Explorer
{
  public:
    explicit Explorer(const Model &model, std::uint64_t max_states =
                                              5'000'000)
        : _model(model), _maxStates(max_states)
    {
    }

    /**
     * Explore the reachable state space.
     * @throws McError on an invariant violation or deadlock.
     */
    McResult
    run()
    {
        using State = typename Model::State;

        McResult res;
        std::unordered_map<std::uint64_t, std::vector<State>> visited;
        std::deque<State> frontier;

        auto seen = [&](const State &s) {
            auto &bucket = visited[_model.hash(s)];
            for (const State &t : bucket) {
                if (_model.equal(s, t))
                    return true;
            }
            bucket.push_back(s);
            return false;
        };

        auto check = [this](const State &st) {
            try {
                _model.checkInvariants(st);
            } catch (const McError &e) {
                throw McError(std::string(e.what()) + "\nin state:\n" +
                              _model.describe(st));
            }
        };

        State init = _model.initial();
        check(init);
        seen(init);
        frontier.push_back(std::move(init));
        res.statesExplored = 1;

        std::vector<State> succ;
        while (!frontier.empty()) {
            if (res.statesExplored > _maxStates)
                return res; // bounded run: completed stays false

            State s = std::move(frontier.front());
            frontier.pop_front();

            succ.clear();
            try {
                _model.transitions(s, succ);
            } catch (const McError &e) {
                throw McError(std::string(e.what()) +
                              "\nwhile expanding state:\n" +
                              _model.describe(s));
            }
            if (succ.empty() && !_model.isQuiescent(s)) {
                std::string msg =
                    "deadlock: no enabled transition in "
                    "non-quiescent state\n" +
                    _model.describe(s);
                // Models may offer focused diagnostics (pending ops,
                // per-channel occupancy) beyond the full state dump.
                if constexpr (requires { _model.blockedSummary(s); })
                    msg += "\n" + _model.blockedSummary(s);
                throw McError(msg);
            }
            for (State &n : succ) {
                ++res.transitionsTaken;
                check(n);
                if (!seen(n)) {
                    ++res.statesExplored;
                    frontier.push_back(std::move(n));
                }
            }
        }
        res.completed = true;
        return res;
    }

  private:
    const Model &_model;
    std::uint64_t _maxStates;
};

/**
 * Breadth-first explorer that retains the full explored state graph
 * for offline analyses (the liveness lint's fairness-constrained SCC
 * pass). Unlike Explorer it *records* hard deadlocks instead of
 * throwing -- callers turn them into findings with witnesses --
 * while invariant violations still throw McError.
 */
template <typename Model>
class GraphExplorer
{
  public:
    using State = typename Model::State;

    struct Graph
    {
        /** Discovered states in BFS order; index 0 is the initial
         *  state and indices double as state ids. */
        std::vector<State> states;
        /** Forward adjacency, deduplicated, discovery order. */
        std::vector<std::vector<std::uint32_t>> succ;
        /** BFS tree parent (parent[0] == 0): a shortest path from the
         *  initial state to any id follows parents backwards. */
        std::vector<std::uint32_t> parent;
        std::vector<bool> quiescent;
        /** Non-quiescent states with no enabled transition. */
        std::vector<std::uint32_t> deadlocks;
        std::uint64_t transitionsTaken = 0;
        bool completed = false; ///< false if the state limit was hit
    };

    explicit GraphExplorer(const Model &model,
                           std::uint64_t max_states = 5'000'000)
        : _model(model), _maxStates(max_states)
    {
    }

    /** Explore and return the graph. @throws McError on an invariant
     *  violation (but not on deadlock -- see Graph::deadlocks). */
    Graph
    run()
    {
        Graph g;
        std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
            visited;

        auto idOf = [&](const State &s, bool &fresh) {
            auto &bucket = visited[_model.hash(s)];
            for (std::uint32_t id : bucket) {
                if (_model.equal(s, g.states[id])) {
                    fresh = false;
                    return id;
                }
            }
            fresh = true;
            const auto id = static_cast<std::uint32_t>(g.states.size());
            bucket.push_back(id);
            g.states.push_back(s);
            g.succ.emplace_back();
            g.parent.push_back(id);
            g.quiescent.push_back(_model.isQuiescent(s));
            return id;
        };

        auto check = [this](const State &st) {
            try {
                _model.checkInvariants(st);
            } catch (const McError &e) {
                throw McError(std::string(e.what()) + "\nin state:\n" +
                              _model.describe(st));
            }
        };

        bool fresh = false;
        State init = _model.initial();
        check(init);
        std::deque<std::uint32_t> frontier{idOf(init, fresh)};

        std::vector<State> succ;
        while (!frontier.empty()) {
            if (g.states.size() > _maxStates)
                return g; // bounded run: completed stays false

            const std::uint32_t id = frontier.front();
            frontier.pop_front();
            // Copy: expanding may grow (reallocate) g.states.
            const State s = g.states[id];

            succ.clear();
            try {
                _model.transitions(s, succ);
            } catch (const McError &e) {
                throw McError(std::string(e.what()) +
                              "\nwhile expanding state:\n" +
                              _model.describe(s));
            }
            if (succ.empty() && !g.quiescent[id])
                g.deadlocks.push_back(id);
            for (State &n : succ) {
                ++g.transitionsTaken;
                check(n);
                const std::uint32_t nid = idOf(n, fresh);
                if (fresh) {
                    g.parent[nid] = id;
                    frontier.push_back(nid);
                }
                auto &out = g.succ[id];
                if (std::find(out.begin(), out.end(), nid) ==
                    out.end())
                    out.push_back(nid);
            }
        }
        g.completed = true;
        return g;
    }

  private:
    const Model &_model;
    std::uint64_t _maxStates;
};

} // namespace pcsim

#endif // PCSIM_MC_EXPLORER_HH
