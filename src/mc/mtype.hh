/**
 * @file
 * The abstract model's message vocabulary, split out of
 * protocol_model.hh so the verify layer can map it onto the spec's
 * PEvent vocabulary (src/verify/spec.hh) without pulling in the whole
 * explorer. MType is a renamed subset of net/message.hh MsgType; the
 * single authoritative MType -> PEvent correspondence lives in
 * spec.hh (`eventOfMc`) and is static_asserted exhaustive there, so a
 * new message type cannot silently diverge between the two tables.
 */

#ifndef PCSIM_MC_MTYPE_HH
#define PCSIM_MC_MTYPE_HH

#include <cstdint>

namespace pcsim
{
namespace mc
{

/** Abstract message types (a subset of net/message.hh). */
enum class MType : std::uint8_t
{
    ReqS,
    ReqX,       ///< covers both ReqExcl and ReqUpgrade
    RespS,
    RespX,      ///< data + ack count
    Inval,
    InvalAck,
    IntervDown,
    IntervXfer,
    SharedResp,
    Shwb,
    XferResp,
    XferAck,
    IntervNack,
    Nack,
    NackNotHome,
    Delegate,
    Undele,
    Update,
    UpdGrant, ///< write-update: permission + data from the home
    UpdateWB, ///< write-update: writer returns the new data
    UpdDrop,  ///< adaptive hybrid: consumer leaves the update stream
    NumMTypes
};

/** Display name of @p t ("ReqS", "UpdGrant", ...). */
const char *mtypeName(MType t);

} // namespace mc
} // namespace pcsim

#endif // PCSIM_MC_MTYPE_HH
