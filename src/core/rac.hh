/**
 * @file
 * Remote Access Cache (Section 2.1).
 *
 * The RAC lives in the node's hub and serves three roles:
 *  1. victim cache for remote data evicted from the processor caches,
 *  2. the landing zone for speculative UPDATE pushes (processors do
 *     not allow pushes into their caches),
 *  3. surrogate "main memory" for lines delegated to this node: the
 *     corresponding entry is pinned while the delegation persists.
 *
 * Entries hold read-only (SHARED) copies; a pinned entry's data may be
 * dirty with respect to the real home's memory and is shipped back on
 * undelegation.
 */

#ifndef PCSIM_CORE_RAC_HH
#define PCSIM_CORE_RAC_HH

#include <cstdint>
#include <functional>

#include "src/cache/cache_array.hh"
#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** RAC geometry. */
struct RacConfig
{
    std::size_t sizeBytes = 32 * 1024; ///< 32 KB small / 1 MB large
    std::size_t ways = 4;
    std::uint32_t lineBytes = 128;
    Tick accessLatency = 8; ///< hub-local lookup cost
};

/** One RAC line. */
struct RacEntry
{
    Version version = 0;
    bool pinned = false;     ///< surrogate memory for a delegated line
    bool dirtyHome = false;  ///< differs from the real home's memory
    bool fromUpdate = false; ///< arrived via a speculative push
};

/** The remote access cache. */
class Rac
{
  public:
    Rac(const RacConfig &cfg, Rng rng)
        : _cfg(cfg),
          _array("rac", cfg.sizeBytes / (cfg.ways * cfg.lineBytes),
                 cfg.ways, cfg.lineBytes, ReplPolicy::LRU, rng)
    {
    }

    Tick accessLatency() const { return _cfg.accessLatency; }

    /** Look up @p line; nullptr on miss. */
    RacEntry *find(Addr line) { return _array.find(line); }
    const RacEntry *find(Addr line) const { return _array.find(line); }

    /**
     * Insert an unpinned SHARED copy (victim-cache fill or pushed
     * update). Pinned entries are never displaced; returns false if
     * the set is wholly pinned (the push is then simply dropped --
     * updates are hints).
     */
    bool
    insert(Addr line, Version version)
    {
        RacEntry *e = _array.allocate(
            line,
            [](Addr, const RacEntry &v) { return !v.pinned; });
        if (!e)
            return false;
        e->version = version;
        e->pinned = false;
        e->dirtyHome = false;
        return true;
    }

    /**
     * Insert and pin the surrogate-memory copy for a freshly delegated
     * line. May displace unpinned entries. If the set is full of
     * pinned entries, @p evict_pinned is invoked with the
     * least-recently-used pinned victim so the caller can undelegate
     * it first (undelegation reason 2); the insert is then retried.
     *
     * @return the entry, or nullptr if no room could be made.
     */
    RacEntry *
    insertPinned(Addr line, Version version,
                 const std::function<void(Addr)> &evict_pinned)
    {
        for (int attempt = 0; attempt < 2; ++attempt) {
            RacEntry *e = _array.allocate(
                line,
                [](Addr, const RacEntry &v) { return !v.pinned; });
            if (e) {
                e->version = version;
                e->pinned = true;
                e->dirtyHome = true;
                return e;
            }
            if (attempt == 0 && evict_pinned) {
                Addr victim = pinnedVictimInSetOf(line);
                if (victim == invalidAddr)
                    return nullptr;
                // The callback must undelegate, which unpins/removes
                // the victim entry.
                evict_pinned(victim);
            }
        }
        return nullptr;
    }

    /** Refresh the data of a pinned (delegated) entry. */
    void
    updatePinned(Addr line, Version version)
    {
        RacEntry *e = _array.find(line);
        if (e && e->pinned)
            e->version = version;
    }

    /** Unpin on undelegation. @p keep_data retains a plain S copy. */
    void
    unpin(Addr line, bool keep_data)
    {
        RacEntry *e = _array.find(line, false);
        if (!e)
            return;
        if (keep_data) {
            e->pinned = false;
            e->dirtyHome = false;
        } else {
            _array.invalidate(line);
        }
    }

    /** Coherence invalidation (never removes pinned entries without
     *  explicit unpin; the protocol unpins before any remote
     *  invalidation can target a delegated line). */
    bool invalidate(Addr line) { return _array.invalidate(line); }

    std::size_t occupancy() const { return _array.occupancy(); }
    std::size_t capacityBytes() const { return _array.capacityBytes(); }

    void
    forEach(const std::function<void(Addr, const RacEntry &)> &fn) const
    {
        _array.forEach(fn);
    }

  private:
    /** LRU pinned entry in the set @p line maps to. */
    Addr
    pinnedVictimInSetOf(Addr line)
    {
        // Walk the whole array (sets are small; this is rare).
        Addr victim = invalidAddr;
        std::uint64_t bestUse = ~0ull;
        const std::size_t set =
            (line / _cfg.lineBytes) % _array.numSets();
        _array.forEach([&](Addr a, RacEntry &e) {
            if (!e.pinned)
                return;
            if ((a / _cfg.lineBytes) % _array.numSets() != set)
                return;
            // Recency is not exposed; approximate with address order
            // determinism. First found is fine: pinned sets are tiny.
            if (bestUse == ~0ull) {
                victim = a;
                bestUse = 0;
            }
        });
        return victim;
    }

    RacConfig _cfg;
    CacheArray<RacEntry> _array;
};

} // namespace pcsim

#endif // PCSIM_CORE_RAC_HH
