/**
 * @file
 * Delegate cache (Section 2.3, Figure 3).
 *
 * Two tables per node:
 *  - the PRODUCER table tracks directory state for lines delegated TO
 *    this node (valid bit, tag, age, DirEntry); its size bounds how
 *    many lines a node can act as home for at once;
 *  - the CONSUMER table remembers the delegated home of lines this
 *    node accesses (valid bit, tag, owner); entries are hints, 4-way
 *    set associative with random replacement.
 */

#ifndef PCSIM_CORE_DELEGATE_CACHE_HH
#define PCSIM_CORE_DELEGATE_CACHE_HH

#include <cstdint>

#include "src/cache/cache_array.hh"
#include "src/mem/directory.hh"
#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Delegate cache geometry (both tables sized alike, per the paper's
 *  "32-entry" / "1K-entry" delegate cache configurations). */
struct DelegateCacheConfig
{
    std::size_t producerEntries = 32;
    std::size_t consumerEntries = 32;
    std::size_t ways = 4;
    std::uint32_t lineBytes = 128;
};

/**
 * A producer-table entry: the directory information normally kept by
 * the home node. While the local processor is in its write epoch the
 * entry is in Excl state but RETAINS the previous sharing vector --
 * that old vector is the speculative-update target set (Section
 * 2.4.2); the added ownerID field is DirEntry::owner.
 */
struct ProducerEntry
{
    DirEntry dir;
    /** A delayed intervention is scheduled for this line. */
    bool intervPending = false;
    /** Reads NACKed while waiting for the intervention this epoch;
     *  a retry that still finds the epoch open downgrades on demand
     *  (the paper's curves imply readers cannot stall for the whole
     *  interval at large delays). */
    std::uint8_t pendingNacks = 0;
    /** Write epochs completed while delegated (stats/age). */
    std::uint32_t epochs = 0;
};

/** A consumer-table entry: where the line's acting home is. */
struct ConsumerEntry
{
    NodeId delegatedHome = invalidNode;
};

/** The two-table delegate cache. */
class DelegateCache
{
  public:
    DelegateCache(const DelegateCacheConfig &cfg, Rng rng)
        : _cfg(cfg),
          _producer("deledc.prod",
                    std::max<std::size_t>(1, cfg.producerEntries / cfg.ways),
                    cfg.ways, cfg.lineBytes, ReplPolicy::LRU, rng.fork()),
          _consumer("deledc.cons",
                    std::max<std::size_t>(1, cfg.consumerEntries / cfg.ways),
                    cfg.ways, cfg.lineBytes, ReplPolicy::Random,
                    rng.fork())
    {
    }

    CacheArray<ProducerEntry> &producer() { return _producer; }
    CacheArray<ConsumerEntry> &consumer() { return _consumer; }

    /** Producer-table lookup (is this line delegated to me?). */
    ProducerEntry *producerFind(Addr line) { return _producer.find(line); }

    /** Consumer-table lookup (do I know the acting home?). */
    NodeId
    consumerLookup(Addr line)
    {
        ConsumerEntry *e = _consumer.find(line);
        return e ? e->delegatedHome : invalidNode;
    }

    /** Record (or refresh) a home hint. Hints may be dropped by the
     *  random replacement without correctness impact. */
    void
    consumerInsert(Addr line, NodeId home)
    {
        ConsumerEntry *e = _consumer.allocate(line);
        if (e)
            e->delegatedHome = home;
    }

    /** Drop a stale hint (after a NackNotHome). */
    void consumerErase(Addr line) { _consumer.invalidate(line); }

    const DelegateCacheConfig &config() const { return _cfg; }

  private:
    DelegateCacheConfig _cfg;
    CacheArray<ProducerEntry> _producer;
    CacheArray<ConsumerEntry> _consumer;
};

} // namespace pcsim

#endif // PCSIM_CORE_DELEGATE_CACHE_HH
