/**
 * @file
 * Producer-consumer sharing pattern detector (Section 2.2).
 *
 * Each directory cache entry is extended by a handful of bits:
 *   - last writer    (ceil(log2(numNodes)) bits): last node to write
 *     the line -- 4 bits for the paper's 16-node machine,
 *   - reader count   (2 bits, saturating): reads from nodes other than
 *     the last writer since its last write,
 *   - write repeat   (2 bits, saturating): incremented each time two
 *     consecutive writes come from the same node with at least one
 *     intervening read.
 *
 * At N=16 that is the paper's 8 bits per entry; the simulator derives
 * the width from the node count (pcDetectorBitsPerEntry) so larger
 * machines account the real hardware cost. The line is marked
 * producer-consumer when the write-repeat counter saturates. The
 * detector matches the regular expression
 *   ... (Wi) (R_{j != i})+ (Wi) (R_{k != i})+ ...
 * and deliberately rejects multi-writer lines (e.g. CG's false
 * sharing), exactly as the paper's conservative detector does.
 *
 * These bits are dropped when the entry leaves the directory cache, so
 * only recently-shared lines are tracked -- no main-memory overhead.
 */

#ifndef PCSIM_CORE_PC_DETECTOR_HH
#define PCSIM_CORE_PC_DETECTOR_HH

#include <cstdint>

#include "src/sim/types.hh"

namespace pcsim
{

/** Detector configuration (thresholds are 2-bit saturation points). */
struct PcDetectorConfig
{
    std::uint8_t writeRepeatSaturation = 3; ///< 2-bit counter maximum
    std::uint8_t readerCountSaturation = 3; ///< 2-bit counter maximum
};

/** Width of the last-writer field for an @p num_nodes machine. */
constexpr unsigned
pcDetectorWriterBits(unsigned num_nodes)
{
    return num_nodes <= 1 ? 1 : log2Ceil(num_nodes);
}

/** Total detector bits per directory-cache entry: last writer plus
 *  the two 2-bit counters (== 8 at the paper's N=16). */
constexpr unsigned
pcDetectorBitsPerEntry(unsigned num_nodes)
{
    return pcDetectorWriterBits(num_nodes) + 4;
}

/** The detector bits attached to one directory cache entry. */
struct PcDetectorState
{
    NodeId lastWriter = invalidNode; ///< log2(numNodes)-bit field in hw
    NodeId lastReader = invalidNode; ///< uniqueness filter (see note)
    std::uint8_t readerCount = 0;    ///< 2-bit saturating
    std::uint8_t writeRepeat = 0;    ///< 2-bit saturating

    /** Record a read request from @p node.
     *
     * The paper counts "read requests from unique nodes"; with only
     * 2 bits no exact unique-set can be kept, so like the hardware we
     * approximate: consecutive duplicate readers count once.
     */
    void
    onRead(NodeId node, const PcDetectorConfig &cfg = {})
    {
        if (node == lastWriter)
            return;
        if (node == lastReader && readerCount > 0)
            return;
        lastReader = node;
        if (readerCount < cfg.readerCountSaturation)
            ++readerCount;
    }

    /**
     * Record a write request from @p node.
     * @return true if the line is now (still) marked producer-consumer
     *         with @p node as the stable producer.
     */
    bool
    onWrite(NodeId node, const PcDetectorConfig &cfg = {})
    {
        if (lastWriter == node) {
            if (readerCount > 0 &&
                writeRepeat < cfg.writeRepeatSaturation) {
                ++writeRepeat;
            }
            // Consecutive writes with no intervening read are one
            // write burst: neither progress nor reset.
        } else {
            // A different writer breaks the single-producer pattern.
            writeRepeat = 0;
            lastWriter = node;
        }
        readerCount = 0;
        lastReader = invalidNode;
        return isProducerConsumer(cfg);
    }

    /** Has the write-repeat counter saturated? */
    bool
    isProducerConsumer(const PcDetectorConfig &cfg = {}) const
    {
        return writeRepeat >= cfg.writeRepeatSaturation;
    }

    /** The predicted producer (only meaningful once detected). */
    NodeId producer() const { return lastWriter; }

    void
    reset()
    {
        *this = PcDetectorState{};
    }
};

} // namespace pcsim

#endif // PCSIM_CORE_PC_DETECTOR_HH
