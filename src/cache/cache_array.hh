/**
 * @file
 * Generic set-associative cache array.
 *
 * Stores user-defined per-line payloads and manages tags, validity and
 * replacement (LRU or random). The number of sets need not be a power
 * of two, which lets us model the "equal silicon area" 1.04 MB L2 of
 * Figure 8 exactly.
 */

#ifndef PCSIM_CACHE_CACHE_ARRAY_HH
#define PCSIM_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/logging.hh"
#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Replacement policy selector. */
enum class ReplPolicy
{
    LRU,
    Random,
};

/**
 * Set-associative array of EntryT payloads indexed by line address.
 *
 * EntryT is any default-constructible struct; the array adds tag,
 * valid bit and recency. Addresses passed in are byte addresses and
 * are aligned internally to the line size.
 */
template <typename EntryT>
class CacheArray
{
  public:
    /** A slot: management bits plus the user payload. */
    struct Slot
    {
        bool valid = false;
        Addr addr = invalidAddr; ///< line-aligned address
        std::uint64_t lastUse = 0;
        EntryT data{};
    };

    CacheArray(std::string name, std::size_t num_sets, std::size_t ways,
               std::uint32_t line_bytes, ReplPolicy policy, Rng rng)
        : _name(std::move(name)),
          _numSets(num_sets),
          _ways(ways),
          _lineBytes(line_bytes),
          _policy(policy),
          _rng(rng),
          _slots(num_sets * ways)
    {
        if (num_sets == 0 || ways == 0 || line_bytes == 0)
            fatal("%s: bad cache geometry", _name.c_str());
    }

    std::uint32_t lineBytes() const { return _lineBytes; }
    std::size_t numSets() const { return _numSets; }
    std::size_t ways() const { return _ways; }
    std::size_t capacityBytes() const
    {
        return _numSets * _ways * _lineBytes;
    }

    /** Align a byte address down to its line. */
    Addr lineAlign(Addr a) const { return a - (a % _lineBytes); }

    /**
     * Look up @p a. Returns the payload or nullptr.
     * @param touch update recency on hit.
     */
    EntryT *
    find(Addr a, bool touch = true)
    {
        Slot *slot = findSlot(a);
        if (!slot)
            return nullptr;
        if (touch)
            slot->lastUse = ++_useClock;
        return &slot->data;
    }

    const EntryT *
    find(Addr a) const
    {
        return const_cast<CacheArray *>(this)->find(a, false);
    }

    /**
     * Allocate a slot for @p a, evicting if necessary.
     *
     * @param a            byte address (aligned internally).
     * @param can_evict    predicate deciding whether a valid slot may
     *                     be displaced (e.g. skip pinned RAC entries);
     *                     pass nullptr to allow any.
     * @param on_evict     called with (addr, payload) of the victim
     *                     before reuse.
     * @return payload pointer, or nullptr if the set is full and no
     *         slot is evictable.
     *
     * If @p a is already present its existing slot is returned.
     */
    EntryT *
    allocate(Addr a,
             const std::function<bool(Addr, const EntryT &)> &can_evict
                 = nullptr,
             const std::function<void(Addr, EntryT &)> &on_evict
                 = nullptr)
    {
        const Addr line = lineAlign(a);
        if (Slot *hit = findSlot(line)) {
            hit->lastUse = ++_useClock;
            return &hit->data;
        }

        Slot *set = setBase(line);
        Slot *victim = nullptr;
        // Prefer an invalid slot.
        for (std::size_t w = 0; w < _ways; ++w) {
            if (!set[w].valid) {
                victim = &set[w];
                break;
            }
        }
        if (!victim) {
            victim = pickVictim(set, can_evict);
            if (!victim)
                return nullptr;
            if (on_evict)
                on_evict(victim->addr, victim->data);
        }
        victim->valid = true;
        victim->addr = line;
        victim->lastUse = ++_useClock;
        victim->data = EntryT{};
        return &victim->data;
    }

    /** Drop @p a if present. Returns true if it was present. */
    bool
    invalidate(Addr a)
    {
        Slot *slot = findSlot(a);
        if (!slot)
            return false;
        slot->valid = false;
        slot->addr = invalidAddr;
        slot->data = EntryT{};
        return true;
    }

    /** Visit every valid line: fn(addr, payload). */
    void
    forEach(const std::function<void(Addr, EntryT &)> &fn)
    {
        for (auto &slot : _slots) {
            if (slot.valid)
                fn(slot.addr, slot.data);
        }
    }

    void
    forEach(const std::function<void(Addr, const EntryT &)> &fn) const
    {
        for (const auto &slot : _slots) {
            if (slot.valid)
                fn(slot.addr, slot.data);
        }
    }

    /** Number of valid lines in the set @p a maps to. */
    std::size_t
    setOccupancy(Addr a) const
    {
        const Addr line = lineAlign(a);
        const Slot *set =
            &_slots[setIndex(line) * _ways];
        std::size_t n = 0;
        for (std::size_t w = 0; w < _ways; ++w)
            n += set[w].valid ? 1 : 0;
        return n;
    }

    /** Number of valid lines. */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const auto &slot : _slots)
            n += slot.valid ? 1 : 0;
        return n;
    }

    /** Drop everything. */
    void
    clear()
    {
        for (auto &slot : _slots) {
            slot.valid = false;
            slot.addr = invalidAddr;
            slot.data = EntryT{};
        }
    }

  private:
    std::size_t
    setIndex(Addr line) const
    {
        return static_cast<std::size_t>((line / _lineBytes) % _numSets);
    }

    Slot *setBase(Addr line) { return &_slots[setIndex(line) * _ways]; }

    Slot *
    findSlot(Addr a)
    {
        const Addr line = lineAlign(a);
        Slot *set = setBase(line);
        for (std::size_t w = 0; w < _ways; ++w) {
            if (set[w].valid && set[w].addr == line)
                return &set[w];
        }
        return nullptr;
    }

    Slot *
    pickVictim(Slot *set,
               const std::function<bool(Addr, const EntryT &)> &can_evict)
    {
        if (_policy == ReplPolicy::Random) {
            // Random: up to `ways` probes starting at a random way.
            const std::size_t start = _rng.below(_ways);
            for (std::size_t i = 0; i < _ways; ++i) {
                Slot *s = &set[(start + i) % _ways];
                if (!can_evict || can_evict(s->addr, s->data))
                    return s;
            }
            return nullptr;
        }
        // LRU.
        Slot *best = nullptr;
        for (std::size_t w = 0; w < _ways; ++w) {
            Slot *s = &set[w];
            if (can_evict && !can_evict(s->addr, s->data))
                continue;
            if (!best || s->lastUse < best->lastUse)
                best = s;
        }
        return best;
    }

    std::string _name;
    std::size_t _numSets;
    std::size_t _ways;
    std::uint32_t _lineBytes;
    ReplPolicy _policy;
    Rng _rng;
    std::vector<Slot> _slots;
    std::uint64_t _useClock = 0;
};

} // namespace pcsim

#endif // PCSIM_CACHE_CACHE_ARRAY_HH
