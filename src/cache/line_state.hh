/**
 * @file
 * Coherence states for processor-side cached lines (MESI).
 */

#ifndef PCSIM_CACHE_LINE_STATE_HH
#define PCSIM_CACHE_LINE_STATE_HH

#include <cstdint>

namespace pcsim
{

/** MESI state of a line in a node's L2 (the coherence agent). */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive, ///< clean exclusive (never written since fill)
    Modified,
};

inline const char *
lineStateName(LineState s)
{
    switch (s) {
      case LineState::Invalid: return "I";
      case LineState::Shared: return "S";
      case LineState::Exclusive: return "E";
      case LineState::Modified: return "M";
    }
    return "?";
}

/** True if the state confers read permission. */
inline bool
canRead(LineState s)
{
    return s != LineState::Invalid;
}

/** True if the state confers write permission. */
inline bool
canWrite(LineState s)
{
    return s == LineState::Exclusive || s == LineState::Modified;
}

} // namespace pcsim

#endif // PCSIM_CACHE_LINE_STATE_HH
