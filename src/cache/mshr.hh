/**
 * @file
 * Miss Status Holding Registers for the node's coherence agent.
 *
 * One MSHR tracks one outstanding line transaction: the request type,
 * where it was sent, how many invalidation acks remain (Origin-style
 * ack collection at the requester), and NACK retry state.
 */

#ifndef PCSIM_CACHE_MSHR_HH
#define PCSIM_CACHE_MSHR_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/net/message.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Outstanding transaction state for one line. */
struct Mshr
{
    Addr addr = invalidAddr;    ///< line address
    Addr reqAddr = invalidAddr; ///< original byte address (L1 fill)
    bool isWrite = false;
    /** The request currently outstanding (ReqShared/ReqExcl/ReqUpgrade). */
    MsgType reqType = MsgType::ReqShared;
    /** Node the request was last sent to (home or delegated home). */
    NodeId sentTo = invalidNode;

    /** Data reply received (version captured below). */
    bool haveData = false;
    Version version = 0;
    /** Reply granted exclusive permission. */
    bool exclusiveGrant = false;

    /** Acks to collect: -1 until the reply announces the count. */
    int acksExpected = -1;
    int acksReceived = 0;

    /** Our SHARED copy was invalidated while this upgrade was
     *  outstanding; a dataless upgrade ack can no longer satisfy it. */
    bool lostCopy = false;

    /** An invalidation overtook the read reply in flight: complete
     *  the load with the (legally stale) data but do not cache it. */
    bool fillInvalidated = false;

    /** Retry bookkeeping for NACKs. */
    std::uint32_t retries = 0;

    /** Current transaction id (re-stamped on every (re)send). */
    std::uint64_t txnId = 0;

    /** Issue time of the original access, for latency stats. */
    Tick issued = 0;
    /** Any network message was needed to resolve this miss. */
    bool usedNetwork = false;
    /** Resolved entirely from the local RAC. */
    bool racHit = false;
    /** Data was supplied by a third party (3-hop transaction). */
    bool thirdParty = false;
    /** Completion callback back into the CPU (receives the final
     *  line version -- the data abstraction). */
    std::function<void(Version)> onComplete;

    /** All ingredients present to finish the transaction? */
    bool
    ready() const
    {
        if (acksExpected >= 0 && acksReceived < acksExpected)
            return false;
        if (isWrite) {
            // A write needs an exclusive grant; upgrades that lost
            // their copy also need fresh data.
            if (acksExpected < 0)
                return false;
            if (lostCopy && !haveData)
                return false;
            return true;
        }
        return haveData;
    }
};

/** Table of MSHRs indexed by line address. */
class MshrTable
{
  public:
    explicit MshrTable(std::size_t capacity) : _capacity(capacity) {}

    bool full() const { return _table.size() >= _capacity; }
    std::size_t size() const { return _table.size(); }

    Mshr *
    find(Addr line)
    {
        auto it = _table.find(line);
        return it == _table.end() ? nullptr : &it->second;
    }

    /** Allocate an MSHR; returns nullptr if full or already present. */
    Mshr *
    allocate(Addr line)
    {
        if (full() || _table.count(line))
            return nullptr;
        Mshr &m = _table[line];
        m.addr = line;
        return &m;
    }

    void free(Addr line) { _table.erase(line); }

    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &[line, mshr] : _table)
            fn(mshr);
    }

  private:
    std::size_t _capacity;
    std::unordered_map<Addr, Mshr> _table;
};

} // namespace pcsim

#endif // PCSIM_CACHE_MSHR_HH
