/**
 * @file
 * L1 data cache model.
 *
 * The L1D (Table 1: 2-way, 32 KB, 32 B lines) is private to the CPU,
 * write-through into the L2 and inclusive in it: when an L2 line
 * leaves the node, the covered L1 lines are back-invalidated. Since it
 * is write-through, the L1 never holds data the L2 lacks, so coherence
 * is handled entirely at the L2 / hub level.
 */

#ifndef PCSIM_CACHE_L1_CACHE_HH
#define PCSIM_CACHE_L1_CACHE_HH

#include <cstdint>

#include "src/cache/cache_array.hh"
#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Geometry and timing of an L1 cache. */
struct L1Config
{
    std::size_t sizeBytes = 32 * 1024;
    std::size_t ways = 2;
    std::uint32_t lineBytes = 32;
    Tick hitLatency = 2;
};

/** Simple presence-tracking L1 (timing filter in front of the L2). */
class L1Cache
{
  public:
    struct Entry
    {
        // Write-through: no dirty bit needed.
    };

    L1Cache(const L1Config &cfg, Rng rng)
        : _cfg(cfg),
          _array("l1d", cfg.sizeBytes / (cfg.ways * cfg.lineBytes),
                 cfg.ways, cfg.lineBytes, ReplPolicy::LRU, rng)
    {
    }

    Tick hitLatency() const { return _cfg.hitLatency; }
    std::uint32_t lineBytes() const { return _cfg.lineBytes; }

    /** True if @p a is present (and touch it). */
    bool lookup(Addr a) { return _array.find(a) != nullptr; }

    /** Fill the L1 line containing @p a (evicting silently). */
    void fill(Addr a) { _array.allocate(a); }

    /**
     * Back-invalidate every L1 line covered by the L2 line
     * [@p l2_line, @p l2_line + @p l2_line_bytes).
     */
    void
    invalidateRange(Addr l2_line, std::uint32_t l2_line_bytes)
    {
        for (Addr a = l2_line; a < l2_line + l2_line_bytes;
             a += _cfg.lineBytes) {
            _array.invalidate(a);
        }
    }

  private:
    L1Config _cfg;
    CacheArray<Entry> _array;
};

} // namespace pcsim

#endif // PCSIM_CACHE_L1_CACHE_HH
