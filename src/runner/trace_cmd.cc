#include "src/runner/trace_cmd.hh"

#include <cstdio>
#include <memory>
#include <utility>

#include "src/runner/results.hh"
#include "src/runner/runner.hh"
#include "src/trace/recorder.hh"
#include "src/trace/replay.hh"
#include "src/trace/text_ingest.hh"

namespace pcsim
{
namespace runner
{

namespace
{

/** RecordingWorkload that owns its inner workload (the runner factory
 *  returns a single self-contained Workload). */
class OwningRecordingWorkload : public trace::RecordingWorkload
{
  public:
    OwningRecordingWorkload(std::unique_ptr<Workload> inner,
                            trace::TraceRecorder &recorder)
        : trace::RecordingWorkload(*inner, recorder),
          _owned(std::move(inner))
    {
    }

  private:
    std::unique_ptr<Workload> _owned;
};

int
ingestToFile(const TraceRecordOptions &opt)
{
    try {
        trace::TraceData data = trace::ingestTextTraces(
            opt.textPaths, "ingest", opt.lineBytes);
        data.meta.scale = opt.scale;
        trace::writeTraceFile(opt.outPath, data.meta, data.perNode);
        if (!opt.quiet)
            std::fprintf(stderr,
                         "ingested %zu text trace(s): %llu ops -> %s\n",
                         opt.textPaths.size(),
                         (unsigned long long)data.meta.opCount,
                         opt.outPath.c_str());
    } catch (const trace::TraceError &e) {
        std::fprintf(stderr, "pcsim trace record: %s\n", e.what());
        return 2;
    }
    return 0;
}

} // namespace

int
runTraceRecord(const TraceRecordOptions &opt)
{
    if (opt.outPath.empty()) {
        std::fprintf(stderr,
                     "pcsim trace record: missing --output <file>\n");
        return 1;
    }
    if (!opt.textPaths.empty())
        return ingestToFile(opt);

    const std::string workload = canonicalWorkload(opt.workload);
    if (workload.empty()) {
        std::fprintf(stderr,
                     "pcsim trace record: unknown workload '%s'\n",
                     opt.workload.c_str());
        return 1;
    }
    Job j;
    std::string configName;
    if (!namedMachineConfig(opt.config, opt.nodes, j.cfg, configName)) {
        std::fprintf(stderr,
                     "pcsim trace record: unknown config '%s'\n",
                     opt.config.c_str());
        return 1;
    }
    j.workload = workload;
    j.configName = configName;
    j.seed = opt.seed;
    j.scale = opt.scale;

    trace::TraceRecorder recorder(opt.nodes);
    const unsigned nodes = opt.nodes;
    const double scale = opt.scale;
    j.factory = [&recorder, workload, nodes, scale]() {
        return std::make_unique<OwningRecordingWorkload>(
            makeRunnerWorkload(workload, nodes, scale), recorder);
    };

    JobSet set;
    set.add(std::move(j));

    RunnerOptions ropts;
    ropts.threads = 1;
    ropts.progress = !opt.quiet;
    const auto results = runJobs(set, ropts);
    if (!results[0].ok) {
        std::fprintf(stderr, "pcsim trace record: run failed: %s\n",
                     results[0].error.c_str());
        return 2;
    }

    trace::TraceMeta meta;
    meta.nodeCount = opt.nodes;
    meta.lineBytes = results[0].job.cfg.proto.lineBytes;
    meta.coarse =
        1u << results[0].job.cfg.proto.sharerGranularityLog2;
    meta.seed = opt.seed;
    meta.scale = opt.scale;
    meta.workload = workload;
    meta.config = configName;
    try {
        recorder.writeFile(opt.outPath, meta);
    } catch (const trace::TraceError &e) {
        std::fprintf(stderr, "pcsim trace record: %s\n", e.what());
        return 1;
    }
    if (!opt.quiet)
        std::fprintf(stderr, "recorded %llu ops -> %s\n",
                     (unsigned long long)recorder.opCount(),
                     opt.outPath.c_str());

    if (!opt.jsonPath.empty() &&
        !writeTextFile(
            opt.jsonPath,
            resultsToJson(results, /*with_timing=*/false).dump(2) +
                "\n"))
        return 1;
    return 0;
}

int
runTraceReplay(const TraceReplayOptions &opt)
{
    if (opt.tracePath.empty()) {
        std::fprintf(stderr,
                     "pcsim trace replay: missing trace file\n");
        return 1;
    }
    std::shared_ptr<trace::TraceData> data;
    try {
        data = std::make_shared<trace::TraceData>(
            trace::readTraceFile(opt.tracePath));
    } catch (const trace::TraceError &e) {
        std::fprintf(stderr, "pcsim trace replay: %s\n", e.what());
        return 1;
    }

    // Rebuild the source run's machine: preset name + node count from
    // the header (overridable), line size from the header.
    std::string preset = !opt.config.empty() ? opt.config
                         : !data->meta.config.empty()
                             ? data->meta.config
                             : "base";
    Job j;
    std::string configName;
    if (!namedMachineConfig(preset, data->meta.nodeCount, j.cfg,
                            configName)) {
        std::fprintf(stderr,
                     "pcsim trace replay: unknown config '%s'\n",
                     preset.c_str());
        return 1;
    }
    j.cfg.proto.lineBytes = data->meta.lineBytes;
    j.workload = data->meta.workload.empty() ? "trace"
                                             : data->meta.workload;
    j.configName = configName;
    j.seed = data->meta.seed;
    j.scale = data->meta.scale;
    j.factory = [data]() {
        // Copy: the workload consumes the streams, and every run must
        // start from the decoded trace.
        return std::make_unique<trace::TraceReplayWorkload>(*data);
    };

    JobSet set;
    set.add(std::move(j));

    RunnerOptions ropts;
    ropts.threads = opt.threads;
    ropts.progress = !opt.quiet;
    const auto results = runJobs(set, ropts);
    if (!results[0].ok) {
        std::fprintf(stderr, "pcsim trace replay: run failed: %s\n",
                     results[0].error.c_str());
        return 2;
    }

    bool io_ok = true;
    if (!opt.jsonPath.empty())
        io_ok &= writeTextFile(
            opt.jsonPath,
            resultsToJson(results, opt.timing).dump(2) + "\n");
    if (!opt.csvPath.empty())
        io_ok &= writeTextFile(opt.csvPath,
                               resultsToCsv(results, opt.timing));
    if (!opt.quiet)
        std::fprintf(
            stderr, "replayed %llu ops (%s/%s): %llu cycles\n",
            (unsigned long long)data->totalOps(),
            results[0].job.workload.c_str(), configName.c_str(),
            (unsigned long long)results[0].result.cycles);
    return io_ok ? 0 : 1;
}

int
runTraceInfo(const std::string &path)
{
    if (path.empty()) {
        std::fprintf(stderr, "pcsim trace info: missing trace file\n");
        return 1;
    }
    try {
        const trace::TraceMeta meta = trace::readTraceMeta(path);
        std::printf("trace:     %s\n", path.c_str());
        std::printf("format:    PCTR v%u\n", trace::traceVersion);
        std::printf("workload:  %s\n", meta.workload.empty()
                                           ? "(unnamed)"
                                           : meta.workload.c_str());
        std::printf("config:    %s\n", meta.config.empty()
                                           ? "(none)"
                                           : meta.config.c_str());
        std::printf("nodes:     %u\n", meta.nodeCount);
        std::printf("lineBytes: %u\n", meta.lineBytes);
        std::printf("coarse:    %u node(s)/sharer bit\n", meta.coarse);
        std::printf("seed:      %llu\n",
                    (unsigned long long)meta.seed);
        std::printf("scale:     %g\n", meta.scale);
        std::printf("ops:       %llu\n",
                    (unsigned long long)meta.opCount);
    } catch (const trace::TraceError &e) {
        std::fprintf(stderr, "pcsim trace info: %s\n", e.what());
        return 1;
    }
    return 0;
}

} // namespace runner
} // namespace pcsim
