#include "src/runner/results.hh"

#include <cstdio>

#include "src/sim/logging.hh"

namespace pcsim
{
namespace runner
{

/** Every NodeStats counter, in declaration order. Serialization and
 *  deserialization both expand this list, so they cannot drift. */
#define PCSIM_NODE_STATS_FIELDS(X)                                        \
    X(reads)                                                              \
    X(writes)                                                             \
    X(l1Hits)                                                             \
    X(l2Hits)                                                             \
    X(localMisses)                                                        \
    X(remoteMisses)                                                       \
    X(racHits)                                                            \
    X(twoHopMisses)                                                       \
    X(threeHopMisses)                                                     \
    X(nacksReceived)                                                      \
    X(retries)                                                            \
    X(homeRequests)                                                       \
    X(nacksSent)                                                          \
    X(interventionsSent)                                                  \
    X(dirCacheHits)                                                       \
    X(dirCacheMisses)                                                     \
    X(delegationsGranted)                                                 \
    X(delegationsReceived)                                                \
    X(undelegationsCapacity)                                              \
    X(undelegationsFlush)                                                 \
    X(undelegationsConflict)                                              \
    X(forwardedRequests)                                                  \
    X(delegatedLocalOps)                                                  \
    X(delayedInterventions)                                               \
    X(updatesSent)                                                        \
    X(updatesReceived)                                                    \
    X(updatesConsumed)                                                    \
    X(updatesDropped)                                                     \
    X(extraWriteMisses)                                                   \
    X(writebacks)

/** RunPerf counters that are pure functions of the simulated content:
 *  byte-identical across hosts, thread counts and kernel shard
 *  counts. Only these go into default (determinism-checked) JSON. */
#define PCSIM_RUN_PERF_DET_FIELDS(X)                                      \
    X(eventsExecuted)                                                     \
    X(eventsScheduled)                                                    \
    X(inlineCallbacks)                                                    \
    X(heapCallbacks)                                                      \
    X(poolAcquires)                                                       \
    X(simTicks)

/** RunPerf counters whose values depend on how the run was sharded
 *  (queue shapes, pool recycling); serialized only with_timing, like
 *  the wall-clock rates (schemaVersion 3 moved them there). */
#define PCSIM_RUN_PERF_SHARDED_FIELDS(X)                                  \
    X(peakQueueDepth)                                                     \
    X(overflowEvents)                                                     \
    X(windowAdvances)                                                     \
    X(poolReuses)

/** All scalar counters in the historic (schemaVersion 2) order; the
 *  CSV keeps this column layout. */
#define PCSIM_RUN_PERF_FIELDS(X)                                          \
    X(eventsExecuted)                                                     \
    X(eventsScheduled)                                                    \
    X(peakQueueDepth)                                                     \
    X(inlineCallbacks)                                                    \
    X(heapCallbacks)                                                      \
    X(overflowEvents)                                                     \
    X(windowAdvances)                                                     \
    X(poolAcquires)                                                       \
    X(poolReuses)                                                         \
    X(simTicks)

JsonValue
toJson(const RunResult &r, bool with_timing)
{
    JsonValue v = JsonValue::object();
    v["workload"] = JsonValue(r.workload);
    v["config"] = JsonValue(r.config);
    v["cycles"] = JsonValue(r.cycles);
    v["netMessages"] = JsonValue(r.netMessages);
    v["netBytes"] = JsonValue(r.netBytes);
    v["nackMessages"] = JsonValue(r.nackMessages);
    v["updateMessages"] = JsonValue(r.updateMessages);

    JsonValue nodes = JsonValue::object();
#define X(field) nodes[#field] = JsonValue(r.nodes.field);
    PCSIM_NODE_STATS_FIELDS(X)
#undef X
    v["nodes"] = std::move(nodes);

    JsonValue hist = JsonValue::object();
    hist["total"] = JsonValue(r.consumerHist.total());
    JsonValue buckets = JsonValue::array();
    for (std::size_t i = 0; i < r.consumerHist.numBuckets(); ++i)
        buckets.push(JsonValue(r.consumerHist.bucket(i)));
    hist["buckets"] = std::move(buckets);
    v["consumerHist"] = std::move(hist);

    JsonValue perf = JsonValue::object();
#define X(field) perf[#field] = JsonValue(r.perf.field);
    PCSIM_RUN_PERF_DET_FIELDS(X)
#undef X
    if (with_timing) {
#define X(field) perf[#field] = JsonValue(r.perf.field);
        PCSIM_RUN_PERF_SHARDED_FIELDS(X)
#undef X
        perf["shards"] = JsonValue(std::uint64_t(r.perf.shards));
        JsonValue se = JsonValue::array();
        for (std::uint64_t e : r.perf.shardEvents)
            se.push(JsonValue(e));
        perf["shardEvents"] = std::move(se);
        perf["kernelWindows"] = JsonValue(r.perf.kernelWindows);
        perf["kernelBarriers"] = JsonValue(r.perf.kernelBarriers);
        perf["crossShardMessages"] =
            JsonValue(r.perf.crossShardMessages);
        perf["wallSeconds"] = JsonValue(r.perf.wallSeconds);
        perf["eventsPerSec"] = JsonValue(r.perf.eventsPerSec());
        perf["ticksPerSec"] = JsonValue(r.perf.ticksPerSec());
    }
    v["perf"] = std::move(perf);

    // Transition coverage exists only when the run had conformance
    // checking on; omitting it otherwise keeps default-config
    // documents byte-identical to pre-conformance ones.
    if (!r.conformance.empty()) {
        JsonValue conf = JsonValue::object();
        JsonValue observed = JsonValue::array();
        for (const auto &t : r.conformance) {
            JsonValue e = JsonValue::object();
            e["ctrl"] = JsonValue(std::uint64_t(t.ctrl));
            e["state"] = JsonValue(std::uint64_t(t.state));
            e["event"] = JsonValue(std::uint64_t(t.event));
            e["next"] = JsonValue(std::uint64_t(t.next));
            e["count"] = JsonValue(t.count);
            observed.push(std::move(e));
        }
        conf["observed"] = std::move(observed);
        v["conformance"] = std::move(conf);
    }

    // Retry-storm telemetry exists only for fault-injected runs;
    // fault-free documents stay byte-identical to the goldens.
    if (r.faultsActive) {
        JsonValue retry = JsonValue::object();
        retry["mshrConflictRetries"] =
            JsonValue(r.nodes.mshrConflictRetries);
        retry["dirRehandleRetries"] =
            JsonValue(r.nodes.dirRehandleRetries);
        retry["maxRetriesPerLine"] = JsonValue(r.nodes.maxRetriesPerLine);
        retry["nackStormPeak"] = JsonValue(r.nodes.nackStormPeak);
        JsonValue bh = JsonValue::object();
        bh["total"] = JsonValue(r.nodes.backoffHist.total());
        JsonValue bb = JsonValue::array();
        for (std::size_t i = 0; i < r.nodes.backoffHist.numBuckets();
             ++i)
            bb.push(JsonValue(r.nodes.backoffHist.bucket(i)));
        bh["buckets"] = std::move(bb);
        retry["backoffHist"] = std::move(bh);
        retry["faultDelayedMessages"] =
            JsonValue(r.faultDelayedMessages);
        retry["faultExtraTicks"] = JsonValue(r.faultExtraTicks);
        v["retry"] = std::move(retry);
    }

    // Update-based-policy counters exist only under write-update /
    // adaptive-hybrid kinds; invalidate-based documents stay
    // byte-identical to the goldens.
    if (r.updateBased) {
        JsonValue pol = JsonValue::object();
        pol["updateEpisodes"] = JsonValue(r.nodes.updateEpisodes);
        pol["updatesApplied"] = JsonValue(r.nodes.updatesApplied);
        pol["adaptiveDrops"] = JsonValue(r.nodes.adaptiveDrops);
        v["policy"] = std::move(pol);
    }

    // Fairness telemetry exists only for fault-injected runs or
    // non-default arbitration modes; every pre-existing golden is
    // fault-free and nack-retry, so they stay byte-identical.
    if (r.faultsActive || r.arbitrationActive) {
        JsonValue fair = JsonValue::object();
        fair["arbitration"] = JsonValue(r.arbitrationActive);
        fair["missLatencyP50"] = JsonValue(r.missLatencyP50);
        fair["missLatencyP95"] = JsonValue(r.missLatencyP95);
        fair["missLatencyP99"] = JsonValue(r.missLatencyP99);
        fair["maxLineWaitTicks"] = JsonValue(r.nodes.maxLineWaitTicks);
        fair["queueDepthPeak"] = JsonValue(r.nodes.queueDepthPeak);
        JsonValue mh = JsonValue::object();
        mh["total"] = JsonValue(r.nodes.missLatencyHist.total());
        JsonValue mb = JsonValue::array();
        for (std::size_t i = 0;
             i < r.nodes.missLatencyHist.numBuckets(); ++i)
            mb.push(JsonValue(r.nodes.missLatencyHist.bucket(i)));
        mh["buckets"] = std::move(mb);
        fair["missLatencyHist"] = std::move(mh);
        v["fairness"] = std::move(fair);
    }
    return v;
}

RunResult
runResultFromJson(const JsonValue &v)
{
    RunResult r;
    r.workload = v.at("workload").asString();
    r.config = v.at("config").asString();
    r.cycles = v.at("cycles").asUInt();
    r.netMessages = v.at("netMessages").asUInt();
    r.netBytes = v.at("netBytes").asUInt();
    r.nackMessages = v.at("nackMessages").asUInt();
    r.updateMessages = v.at("updateMessages").asUInt();

    const JsonValue &nodes = v.at("nodes");
#define X(field) r.nodes.field = nodes.at(#field).asUInt();
    PCSIM_NODE_STATS_FIELDS(X)
#undef X

    const JsonValue &buckets = v.at("consumerHist").at("buckets");
    std::vector<std::uint64_t> counts;
    counts.reserve(buckets.size());
    for (std::size_t i = 0; i < buckets.size(); ++i)
        counts.push_back(buckets.at(i).asUInt());
    r.consumerHist.assign(std::move(counts));

    // Telemetry arrived in schemaVersion 2; tolerate its absence so
    // old documents still load.
    if (const JsonValue *perf = v.find("perf")) {
#define X(field)                                                          \
        if (const JsonValue *f = perf->find(#field))                      \
            r.perf.field = f->asUInt();
        PCSIM_RUN_PERF_FIELDS(X)
#undef X
        if (const JsonValue *w = perf->find("wallSeconds"))
            r.perf.wallSeconds = w->asDouble();
        if (const JsonValue *s = perf->find("shards"))
            r.perf.shards = static_cast<std::uint32_t>(s->asUInt());
        if (const JsonValue *se = perf->find("shardEvents")) {
            for (std::size_t i = 0; i < se->size(); ++i)
                r.perf.shardEvents.push_back(se->at(i).asUInt());
        }
        if (const JsonValue *f = perf->find("kernelWindows"))
            r.perf.kernelWindows = f->asUInt();
        if (const JsonValue *f = perf->find("kernelBarriers"))
            r.perf.kernelBarriers = f->asUInt();
        if (const JsonValue *f = perf->find("crossShardMessages"))
            r.perf.crossShardMessages = f->asUInt();
    }

    // Optional: only runs with conformance checking emit it.
    if (const JsonValue *conf = v.find("conformance")) {
        const JsonValue &observed = conf->at("observed");
        for (std::size_t i = 0; i < observed.size(); ++i) {
            const JsonValue &e = observed.at(i);
            verify::TransitionCount t;
            t.ctrl = static_cast<std::uint8_t>(e.at("ctrl").asUInt());
            t.state = static_cast<std::uint8_t>(e.at("state").asUInt());
            t.event = static_cast<std::uint8_t>(e.at("event").asUInt());
            t.next = static_cast<std::uint8_t>(e.at("next").asUInt());
            t.count = e.at("count").asUInt();
            r.conformance.push_back(t);
        }
    }

    // Optional: only fault-injected runs emit it.
    if (const JsonValue *retry = v.find("retry")) {
        r.faultsActive = true;
        r.nodes.mshrConflictRetries =
            retry->at("mshrConflictRetries").asUInt();
        r.nodes.dirRehandleRetries =
            retry->at("dirRehandleRetries").asUInt();
        r.nodes.maxRetriesPerLine =
            retry->at("maxRetriesPerLine").asUInt();
        r.nodes.nackStormPeak = retry->at("nackStormPeak").asUInt();
        const JsonValue &bb = retry->at("backoffHist").at("buckets");
        std::vector<std::uint64_t> bcounts;
        bcounts.reserve(bb.size());
        for (std::size_t i = 0; i < bb.size(); ++i)
            bcounts.push_back(bb.at(i).asUInt());
        r.nodes.backoffHist.assign(std::move(bcounts));
        r.faultDelayedMessages =
            retry->at("faultDelayedMessages").asUInt();
        r.faultExtraTicks = retry->at("faultExtraTicks").asUInt();
    }

    // Optional: only update-based-policy runs emit it.
    if (const JsonValue *pol = v.find("policy")) {
        r.updateBased = true;
        r.nodes.updateEpisodes = pol->at("updateEpisodes").asUInt();
        r.nodes.updatesApplied = pol->at("updatesApplied").asUInt();
        r.nodes.adaptiveDrops = pol->at("adaptiveDrops").asUInt();
    }

    // Optional: fault-injected or non-default-arbitration runs only.
    if (const JsonValue *fair = v.find("fairness")) {
        r.arbitrationActive = fair->at("arbitration").asBool();
        r.missLatencyP50 = fair->at("missLatencyP50").asUInt();
        r.missLatencyP95 = fair->at("missLatencyP95").asUInt();
        r.missLatencyP99 = fair->at("missLatencyP99").asUInt();
        r.nodes.maxLineWaitTicks =
            fair->at("maxLineWaitTicks").asUInt();
        r.nodes.queueDepthPeak = fair->at("queueDepthPeak").asUInt();
        const JsonValue &mb = fair->at("missLatencyHist").at("buckets");
        std::vector<std::uint64_t> mcounts;
        mcounts.reserve(mb.size());
        for (std::size_t i = 0; i < mb.size(); ++i)
            mcounts.push_back(mb.at(i).asUInt());
        r.nodes.missLatencyHist.assign(std::move(mcounts));
    }
    return r;
}

JsonValue
toJson(const JobResult &jr, bool with_timing)
{
    JsonValue v = toJson(jr.result, with_timing);
    // The job spec is authoritative for identity fields: a failed job
    // has an empty RunResult but still reports what was asked for.
    v["workload"] = JsonValue(jr.job.workload);
    v["config"] = JsonValue(jr.job.configName);
    v["label"] = JsonValue(jr.job.label);
    v["seed"] = JsonValue(jr.job.seed);
    v["scale"] = JsonValue(jr.job.scale);
    v["ok"] = JsonValue(jr.ok);
    v["error"] = JsonValue(jr.error);
    return v;
}

JsonValue
resultsToJson(const std::vector<JobResult> &results, bool with_timing)
{
    JsonValue doc = JsonValue::object();
    doc["schemaVersion"] = JsonValue(std::uint64_t(3));
    doc["generator"] = JsonValue("pcsim");
    JsonValue arr = JsonValue::array();
    for (const auto &r : results)
        arr.push(toJson(r, with_timing));
    doc["results"] = std::move(arr);
    return doc;
}

namespace
{

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
resultsToCsv(const std::vector<JobResult> &results, bool with_timing)
{
    std::string out = "workload,config,label,seed,scale,ok,error,"
                      "cycles,netMessages,netBytes,nackMessages,"
                      "updateMessages";
#define X(field) out += ",nodes." #field;
    PCSIM_NODE_STATS_FIELDS(X)
#undef X
#define X(field) out += ",perf." #field;
    PCSIM_RUN_PERF_FIELDS(X)
#undef X
    if (with_timing)
        out += ",perf.wallSeconds,perf.eventsPerSec";
    out += '\n';

    const auto num = [](std::uint64_t v) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      (unsigned long long)v);
        return std::string(buf);
    };
    for (const auto &jr : results) {
        char scale_str[32];
        std::snprintf(scale_str, sizeof(scale_str), "%g",
                      jr.job.scale);
        out += csvField(jr.job.workload) + ',' +
               csvField(jr.job.configName) + ',' +
               csvField(jr.job.label) + ',' + num(jr.job.seed) + ',' +
               scale_str + ',' + (jr.ok ? "1" : "0") + ',' +
               csvField(jr.error) + ',' + num(jr.result.cycles) + ',' +
               num(jr.result.netMessages) + ',' +
               num(jr.result.netBytes) + ',' +
               num(jr.result.nackMessages) + ',' +
               num(jr.result.updateMessages);
#define X(field) out += ',' + num(jr.result.nodes.field);
        PCSIM_NODE_STATS_FIELDS(X)
#undef X
#define X(field) out += ',' + num(jr.result.perf.field);
        PCSIM_RUN_PERF_FIELDS(X)
#undef X
        if (with_timing) {
            char t[64];
            std::snprintf(t, sizeof(t), ",%.6f,%.0f",
                          jr.result.perf.wallSeconds,
                          jr.result.perf.eventsPerSec());
            out += t;
        }
        out += '\n';
    }
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write '%s'", path.c_str());
        return false;
    }
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                    text.size();
    std::fclose(f);
    if (!ok)
        warn("short write to '%s'", path.c_str());
    return ok;
}

bool
readTextFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

const JsonValue *
findResult(const JsonValue &doc, const std::string &workload,
           const std::string &config)
{
    const JsonValue *arr = doc.find("results");
    if (!arr || !arr->isArray())
        return nullptr;
    for (std::size_t i = 0; i < arr->size(); ++i) {
        const JsonValue &e = arr->at(i);
        const JsonValue *w = e.find("workload");
        const JsonValue *c = e.find("config");
        if (w && c && w->isString() && c->isString() &&
            w->asString() == workload && c->asString() == config)
            return &e;
    }
    return nullptr;
}

} // namespace runner
} // namespace pcsim
