/**
 * @file
 * Structured result serialization: JobResult / RunResult to JSON and
 * CSV, plus lookup helpers for table formatters that consume the JSON
 * document instead of scraping stdout.
 *
 * JSON schema (schemaVersion 1):
 *
 *   {
 *     "schemaVersion": 1,
 *     "generator": "pcsim",
 *     "results": [
 *       {
 *         "workload": "Em3D", "config": "Base", "label": "Em3D/Base",
 *         "seed": 1, "scale": 1.0, "ok": true, "error": "",
 *         "cycles": 123456,
 *         "netMessages": N, "netBytes": N,
 *         "nackMessages": N, "updateMessages": N,
 *         "nodes": { "reads": N, "writes": N, ... },   // NodeStats
 *         "consumerHist": { "total": N, "buckets": [N, ...] }
 *       }, ...
 *     ]
 *   }
 *
 * Wall-clock timing is deliberately excluded so the document is
 * byte-identical across thread counts and hosts (determinism checks
 * diff the serialized form).
 */

#ifndef PCSIM_RUNNER_RESULTS_HH
#define PCSIM_RUNNER_RESULTS_HH

#include <string>
#include <vector>

#include "src/runner/runner.hh"
#include "src/sim/json.hh"
#include "src/system/system.hh"

namespace pcsim
{
namespace runner
{

/** Serialize one run's statistics (without job metadata). */
JsonValue toJson(const RunResult &r);

/** Rebuild a RunResult from toJson() output.
 *  @throws std::out_of_range / std::logic_error on schema mismatch. */
RunResult runResultFromJson(const JsonValue &v);

/** Serialize one job outcome (spec + statistics). */
JsonValue toJson(const JobResult &r);

/** Serialize a whole result set as a schema-versioned document. */
JsonValue resultsToJson(const std::vector<JobResult> &results);

/** Flat CSV: one row per job, fixed column order, RFC-4180 quoting. */
std::string resultsToCsv(const std::vector<JobResult> &results);

/** Write @p text to @p path; "-" writes to stdout.
 *  @return false (with a warning) if the file cannot be written. */
bool writeTextFile(const std::string &path, const std::string &text);

/** Read a whole file into @p out; @return false when unreadable. */
bool readTextFile(const std::string &path, std::string &out);

/** Find the result entry for (workload, config) in a document
 *  produced by resultsToJson(); nullptr when absent. */
const JsonValue *findResult(const JsonValue &doc,
                            const std::string &workload,
                            const std::string &config);

} // namespace runner
} // namespace pcsim

#endif // PCSIM_RUNNER_RESULTS_HH
