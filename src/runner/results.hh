/**
 * @file
 * Structured result serialization: JobResult / RunResult to JSON and
 * CSV, plus lookup helpers for table formatters that consume the JSON
 * document instead of scraping stdout.
 *
 * JSON schema (schemaVersion 3):
 *
 *   {
 *     "schemaVersion": 3,
 *     "generator": "pcsim",
 *     "results": [
 *       {
 *         "workload": "Em3D", "config": "Base", "label": "Em3D/Base",
 *         "seed": 1, "scale": 1.0, "ok": true, "error": "",
 *         "cycles": 123456,
 *         "netMessages": N, "netBytes": N,
 *         "nackMessages": N, "updateMessages": N,
 *         "nodes": { "reads": N, "writes": N, ... },   // NodeStats
 *         "consumerHist": { "total": N, "buckets": [N, ...] },
 *         "perf": {                      // kernel telemetry
 *           "eventsExecuted": N, "eventsScheduled": N,
 *           "inlineCallbacks": N, "heapCallbacks": N,
 *           "poolAcquires": N, "simTicks": N,
 *           // only when serialized with_timing (never in
 *           // determinism-checked documents):
 *           "peakQueueDepth": N, "overflowEvents": N,
 *           "windowAdvances": N, "poolReuses": N,
 *           "shards": N, "shardEvents": [N, ...],
 *           "kernelWindows": N, "kernelBarriers": N,
 *           "crossShardMessages": N,
 *           "wallSeconds": F, "eventsPerSec": F, "ticksPerSec": F
 *         }
 *       }, ...
 *     ]
 *   }
 *
 * The default "perf" counters are pure functions of the simulated
 * machine + workload; wall-clock rates are host noise, and the
 * queue-shape/shard counters depend on the parallel kernel's shard
 * layout (schemaVersion 3 moved them behind the opt-in). The default
 * (with_timing = false) drops all of those so the document is
 * byte-identical across thread counts, shard counts and hosts — the
 * repo-wide guarantee the determinism checks diff. Opting in (pcsim
 * --timing) trades that diffability for throughput visibility.
 */

#ifndef PCSIM_RUNNER_RESULTS_HH
#define PCSIM_RUNNER_RESULTS_HH

#include <string>
#include <vector>

#include "src/runner/runner.hh"
#include "src/sim/json.hh"
#include "src/system/system.hh"

namespace pcsim
{
namespace runner
{

/** Serialize one run's statistics (without job metadata).
 *  @param with_timing include host wall-clock rates (default off:
 *         they break cross-host/thread-count byte identity). */
JsonValue toJson(const RunResult &r, bool with_timing = false);

/** Rebuild a RunResult from toJson() output. Documents without a
 *  "perf" object (schemaVersion 1) parse with zeroed telemetry.
 *  @throws std::out_of_range / std::logic_error on schema mismatch. */
RunResult runResultFromJson(const JsonValue &v);

/** Serialize one job outcome (spec + statistics). */
JsonValue toJson(const JobResult &r, bool with_timing = false);

/** Serialize a whole result set as a schema-versioned document. */
JsonValue resultsToJson(const std::vector<JobResult> &results,
                        bool with_timing = false);

/** Flat CSV: one row per job, fixed column order, RFC-4180 quoting.
 *  Timing columns are emitted only when @p with_timing. */
std::string resultsToCsv(const std::vector<JobResult> &results,
                         bool with_timing = false);

/** Write @p text to @p path; "-" writes to stdout.
 *  @return false (with a warning) if the file cannot be written. */
bool writeTextFile(const std::string &path, const std::string &text);

/** Read a whole file into @p out; @return false when unreadable. */
bool readTextFile(const std::string &path, std::string &out);

/** Find the result entry for (workload, config) in a document
 *  produced by resultsToJson(); nullptr when absent. */
const JsonValue *findResult(const JsonValue &doc,
                            const std::string &workload,
                            const std::string &config);

} // namespace runner
} // namespace pcsim

#endif // PCSIM_RUNNER_RESULTS_HH
