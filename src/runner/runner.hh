/**
 * @file
 * Parallel experiment runner.
 *
 * Executes the independent simulations of a JobSet across a
 * fixed-size pool of worker threads. One simulation stays
 * single-threaded (the event queue is strictly ordered, so a run is
 * bit-reproducible for a given seed); the pool parallelizes across
 * runs. Results come back in job order no matter how the scheduler
 * interleaves workers, so a JobSet produces the same result vector --
 * and the same serialized JSON -- at any thread count.
 *
 * A job that throws is reported as failed in its JobResult; the pool
 * keeps draining the remaining jobs.
 */

#ifndef PCSIM_RUNNER_RUNNER_HH
#define PCSIM_RUNNER_RUNNER_HH

#include <optional>
#include <string>
#include <vector>

#include "src/runner/job.hh"
#include "src/system/system.hh"

namespace pcsim
{
namespace runner
{

/** Pool-wide execution options. */
struct RunnerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 1;
    /** Per-job completion lines on stderr. */
    bool progress = true;
    /** When set, overrides cfg.proto.checkerEnabled for every job. */
    std::optional<bool> checker;
};

/** Outcome of one job. */
struct JobResult
{
    Job job;
    bool ok = false;
    /** Failure description when !ok (exception text). */
    std::string error;
    RunResult result;
    /** Host wall-clock seconds this job took (not serialized). */
    double wallSeconds = 0.0;
};

/** Resolve an option/flag thread count to an actual pool size. */
unsigned resolveThreads(unsigned requested, std::size_t num_jobs);

/**
 * Run every job of @p set and return results in job order.
 *
 * Deterministic: per-job seeds come from the Job spec, each worker
 * builds a private System + Workload, and the result slot is fixed by
 * the job's index -- scheduling cannot reorder or perturb results.
 */
std::vector<JobResult> runJobs(const JobSet &set,
                               const RunnerOptions &opts = {});

} // namespace runner
} // namespace pcsim

#endif // PCSIM_RUNNER_RUNNER_HH
