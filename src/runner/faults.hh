/**
 * @file
 * `pcsim faults`: the fault-injection robustness sweep.
 *
 * Runs scenario x mechanism (base / delegation / delegate-update) with
 * the coherence checker AND the conformance observer enabled, under
 * the standard fault scenarios (src/system/presets.hh
 * faultScenarios()). Every job uses the shared exponential backoff
 * (retryExpCap raised from the paper's flat default) so NACK storms
 * provoked by the faults spread out instead of convoying. The point
 * of the sweep is that it completes at all: any checker or
 * conformance violation under faults fails the run, and the committed
 * BENCH_faults.json documents the retry telemetry of a healthy
 * protocol under stress.
 */

#ifndef PCSIM_RUNNER_FAULTS_HH
#define PCSIM_RUNNER_FAULTS_HH

#include <string>
#include <vector>

#include "src/runner/job.hh"

namespace pcsim
{
namespace runner
{

/** Options for the fault sweep (the `pcsim faults` flags). */
struct FaultsOptions
{
    /** Workload every point runs (PCmicro provokes the most
     *  producer-consumer protocol traffic per tick). */
    std::string workload = "PCmicro";
    double scale = 1.0;
    unsigned nodes = 16;
    /** Scenario names to run ("" / empty = all of
     *  presets::faultScenarios()). */
    std::vector<std::string> scenarios;
    /** Arbitration modes to cross with the scenarios (empty =
     *  {"nack-retry"}, the historic single-mode sweep). The default
     *  mode keeps its historic labels ("scenario/config"); other modes
     *  label as "scenario/arbitration/config". `pcsim qos` sets all
     *  three to produce BENCH_qos.json. */
    std::vector<std::string> arbitrations;
    std::uint64_t seed = 1;
    /** Worker threads; 0 = all cores. */
    unsigned threads = 0;
    /** Write the results document here ("" = don't; "-" = stdout);
     *  the committed reference is BENCH_faults.json. */
    std::string jsonPath;
    std::string csvPath;
    bool quiet = false;
    /** Run every job twice and byte-compare the serialized results;
     *  exit 3 on mismatch. */
    bool deterministicCheck = false;
    /** Print the scenario x mechanism summary table. */
    bool table = true;
    /** Parallel-kernel shards per simulation (1 = sequential oracle;
     *  any value produces byte-identical documents). */
    unsigned parallelShards = 1;
};

/** Build the scenario x mechanism JobSet (exposed for tests).
 *  Returns an empty set when a requested scenario name is unknown. */
JobSet faultJobs(const FaultsOptions &opt);

/**
 * Run the sweep.
 * @return process exit code: 0 ok, 1 usage/I-O error, 2 a job failed
 *         (checker or conformance violation aborts the process
 *         instead), 3 non-deterministic.
 */
int runFaultSweep(const FaultsOptions &opt);

} // namespace runner
} // namespace pcsim

#endif // PCSIM_RUNNER_FAULTS_HH
