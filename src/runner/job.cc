#include "src/runner/job.hh"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "src/workload/micro.hh"
#include "src/workload/serving.hh"
#include "src/workload/suite.hh"

namespace pcsim
{
namespace runner
{

JobSet &
JobSet::add(Job j)
{
    if (j.label.empty()) {
        j.label = j.workload;
        if (!j.configName.empty())
            j.label += "/" + j.configName;
    }
    _jobs.push_back(std::move(j));
    return *this;
}

JobSet &
JobSet::add(const std::string &workload,
            const presets::NamedConfig &config, std::uint64_t seed,
            double scale)
{
    Job j;
    j.workload = workload;
    j.cfg = config.cfg;
    j.configName = config.name;
    j.seed = seed;
    j.scale = scale;
    return add(std::move(j));
}

JobSet &
JobSet::sweep(const std::vector<std::string> &workloads,
              const std::vector<presets::NamedConfig> &configs,
              double scale, const std::vector<std::uint64_t> &seeds)
{
    for (const auto &w : workloads)
        for (const auto &c : configs)
            for (std::uint64_t s : seeds)
                add(w, c, s, scale);
    return *this;
}

// --- workload registry -------------------------------------------

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names = suiteNames();
    names.push_back("PCmicro");
    names.push_back("Migratory");
    names.push_back("Random");
    for (const auto &n : servingNames())
        names.push_back(n);
    return names;
}

namespace
{

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

} // namespace

std::string
canonicalWorkload(const std::string &name)
{
    const std::string key = lowered(name);
    for (const auto &canonical : workloadNames())
        if (lowered(canonical) == key)
            return canonical;
    // Friendly aliases for the micro patterns.
    if (key == "micro" || key == "pc" || key == "producer-consumer")
        return "PCmicro";
    return "";
}

std::unique_ptr<Workload>
makeRunnerWorkload(const std::string &name, unsigned num_cpus,
                   double scale)
{
    const std::string canonical = canonicalWorkload(name);
    if (canonical.empty())
        throw std::invalid_argument("unknown workload '" + name + "'");

    const auto scaled = [scale](unsigned iters) {
        return std::max(1u, static_cast<unsigned>(iters * scale));
    };

    if (canonical == "PCmicro") {
        ProducerConsumerMicro::Params p;
        p.iterations = scaled(p.iterations);
        return std::make_unique<ProducerConsumerMicro>(num_cpus, p);
    }
    if (canonical == "Migratory") {
        MigratoryMicro::Params p;
        p.iterations = scaled(p.iterations);
        return std::make_unique<MigratoryMicro>(num_cpus, p);
    }
    if (canonical == "Random") {
        RandomMicro::Params p;
        p.opsPerCpu = scaled(p.opsPerCpu);
        return std::make_unique<RandomMicro>(num_cpus, p);
    }
    if (canonical == "KVServe") {
        KvServingWorkload::Params p;
        p.requestsPerNode = scaled(p.requestsPerNode);
        return std::make_unique<KvServingWorkload>(num_cpus, p);
    }
    if (canonical == "WorkQueue") {
        WorkQueueWorkload::Params p;
        p.rounds = scaled(p.rounds);
        return std::make_unique<WorkQueueWorkload>(num_cpus, p);
    }
    if (canonical == "RCU") {
        RcuWorkload::Params p;
        p.rounds = scaled(p.rounds);
        return std::make_unique<RcuWorkload>(num_cpus, p);
    }
    if (canonical == "PubSub") {
        PubSubWorkload::Params p;
        p.rounds = scaled(p.rounds);
        return std::make_unique<PubSubWorkload>(num_cpus, p);
    }
    return makeWorkload(canonical, num_cpus, scale);
}

// --- configuration registry --------------------------------------

namespace
{

struct ConfigEntry
{
    const char *name;
    const char *alias; ///< optional second spelling ("" = none)
    MachineConfig (*make)(unsigned num_nodes);
};

MachineConfig
makeRac32k(unsigned n)
{
    return presets::racOnly(32 * 1024, n);
}

MachineConfig
makeRac1m(unsigned n)
{
    return presets::racOnly(1024 * 1024, n);
}

MachineConfig
makeDelegation(unsigned n)
{
    return presets::delegationOnly(32, 32 * 1024, n);
}

MachineConfig
makeWriteUpdate(unsigned n)
{
    return presets::writeUpdate(n);
}

MachineConfig
makeAdaptiveHybrid(unsigned n)
{
    return presets::adaptiveHybrid(n);
}

const ConfigEntry configTable[] = {
    {"base", "", presets::base},
    {"rac32k", "rac", makeRac32k},
    {"rac1m", "", makeRac1m},
    {"small", "pcopt", presets::small},
    {"large", "pcopt-large", presets::large},
    {"delegation", "delegation-only", makeDelegation},
    {"write-update", "update", makeWriteUpdate},
    {"adaptive-hybrid", "adaptive", makeAdaptiveHybrid},
};

} // namespace

std::vector<std::string>
configNames()
{
    std::vector<std::string> names;
    for (const auto &e : configTable)
        names.push_back(e.name);
    return names;
}

bool
namedMachineConfig(const std::string &name, unsigned num_nodes,
                   MachineConfig &out, std::string &canonical)
{
    const std::string key = lowered(name);
    for (const auto &e : configTable) {
        if (key == e.name || (e.alias[0] && key == e.alias)) {
            out = e.make(num_nodes);
            canonical = e.name;
            return true;
        }
    }
    return false;
}

} // namespace runner
} // namespace pcsim
