/**
 * @file
 * Experiment job specifications.
 *
 * A Job names one independent simulation: a workload, a machine
 * configuration, a seed and a display label. A JobSet is an ordered
 * collection of jobs with cartesian-sweep builders; the runner
 * (src/runner/runner.hh) executes a JobSet across a worker pool and
 * returns results in job order regardless of scheduling.
 *
 * Workloads are named, not owned: every worker constructs its own
 * instance from the registry (or the job's custom factory), so jobs
 * never share mutable workload state across threads.
 */

#ifndef PCSIM_RUNNER_JOB_HH
#define PCSIM_RUNNER_JOB_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/system/presets.hh"
#include "src/system/system.hh"
#include "src/workload/workload.hh"

namespace pcsim
{
namespace runner
{

/** Builds a fresh workload instance for one job execution. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/** Specification of one independent simulation. */
struct Job
{
    /** Registry name (see workloadNames()); ignored when a custom
     *  factory is set, but still used for labels and reports. */
    std::string workload;
    MachineConfig cfg;
    std::string configName;
    std::uint64_t seed = 1;
    /** Display label; JobSet::add defaults it to
     *  "workload/configName". */
    std::string label;
    /** Workload scale factor (same meaning as makeWorkload). */
    double scale = 1.0;
    /** Optional override of the registry lookup. */
    WorkloadFactory factory;
};

/** An ordered set of jobs. */
class JobSet
{
  public:
    /** Append one job, defaulting an empty label. */
    JobSet &add(Job j);

    /** Append workload x config with default seed/scale. */
    JobSet &add(const std::string &workload,
                const presets::NamedConfig &config,
                std::uint64_t seed = 1, double scale = 1.0);

    /**
     * Cartesian sweep: every workload under every configuration for
     * every seed, in (workload, config, seed) lexicographic order --
     * the natural order of the hand-rolled bench loops this replaces.
     */
    JobSet &sweep(const std::vector<std::string> &workloads,
                  const std::vector<presets::NamedConfig> &configs,
                  double scale = 1.0,
                  const std::vector<std::uint64_t> &seeds = {1});

    std::size_t size() const { return _jobs.size(); }
    bool empty() const { return _jobs.empty(); }
    const std::vector<Job> &jobs() const { return _jobs; }
    std::vector<Job> &jobs() { return _jobs; }

  private:
    std::vector<Job> _jobs;
};

// --- workload registry -------------------------------------------

/** All runnable workload names: the Table 2 suite, the directed micro
 *  patterns ("PCmicro", "Migratory", "Random"), and the datacenter
 *  serving family ("KVServe", "WorkQueue", "RCU", "PubSub"). */
std::vector<std::string> workloadNames();

/** Case-insensitive canonicalization ("em3d" -> "Em3D", "micro" ->
 *  "PCmicro"); returns "" for unknown names. */
std::string canonicalWorkload(const std::string &name);

/**
 * Instantiate a registry workload.
 * @throws std::invalid_argument for unknown names (the runner turns
 *         this into a failed job instead of exiting).
 */
std::unique_ptr<Workload> makeRunnerWorkload(const std::string &name,
                                             unsigned num_cpus,
                                             double scale = 1.0);

// --- configuration registry --------------------------------------

/** All named machine configurations usable from the CLI. */
std::vector<std::string> configNames();

/**
 * Look up a machine configuration preset by name (case-insensitive;
 * "pcopt" is the paper's small delegate+update system, "pcopt-large"
 * the large one). Returns false for unknown names; on success fills
 * @p out and @p canonical with the preset and its canonical name.
 */
bool namedMachineConfig(const std::string &name, unsigned num_nodes,
                        MachineConfig &out, std::string &canonical);

} // namespace runner
} // namespace pcsim

#endif // PCSIM_RUNNER_JOB_HH
