/**
 * @file
 * `pcsim trace record|replay|info`: the trace record/replay frontend.
 *
 * record -- run a registry workload under a named machine preset with
 * the op stream teed into a TraceRecorder, and serialize the capture
 * as a binary PCTR file (src/trace/format.hh). With --text, skip the
 * simulation and ingest external per-core text traces
 * (src/trace/text_ingest.hh) into the same format instead.
 *
 * replay -- load a PCTR file, rebuild the source run's job identity
 * (workload name, config preset, seed, scale) from its header, and
 * drive the simulator from the per-node cursors. Stats serialized
 * from a replay are byte-identical to the recorded run's at any
 * runner thread count.
 *
 * info -- print the header without decoding the op payload.
 */

#ifndef PCSIM_RUNNER_TRACE_CMD_HH
#define PCSIM_RUNNER_TRACE_CMD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pcsim
{
namespace runner
{

/** Options for `pcsim trace record`. */
struct TraceRecordOptions
{
    std::string workload = "PCmicro";
    std::string config = "base";
    unsigned nodes = 16;
    double scale = 1.0;
    std::uint64_t seed = 1;
    /** Trace output path (required). */
    std::string outPath;
    /** Also serialize the recorded run's stats here ("" = don't;
     *  "-" = stdout) -- the document replay must reproduce. */
    std::string jsonPath;
    bool quiet = false;
    /** Ingest mode: per-core text trace files (`<label> <hexaddr>`
     *  lines; label 0 = load, 1 = store, 2 = compute cycles), one
     *  file per node. No simulation runs; --workload/--config/--seed
     *  do not apply. */
    std::vector<std::string> textPaths;
    /** Coherence granularity for ingested traces. */
    std::uint32_t lineBytes = 128;
};

/** Options for `pcsim trace replay`. */
struct TraceReplayOptions
{
    std::string tracePath;
    /** Override the header's machine preset ("" = use the header's;
     *  ingested traces default to "base"). */
    std::string config;
    /** Worker threads; 0 = all cores. */
    unsigned threads = 1;
    std::string jsonPath;
    std::string csvPath;
    bool quiet = false;
    bool timing = false;
};

/** @return process exit code: 0 ok, 1 usage/I-O error, 2 run or
 *          ingest failed. */
int runTraceRecord(const TraceRecordOptions &opt);
int runTraceReplay(const TraceReplayOptions &opt);
int runTraceInfo(const std::string &path);

} // namespace runner
} // namespace pcsim

#endif // PCSIM_RUNNER_TRACE_CMD_HH
