/**
 * @file
 * `pcsim compare`: the coherence-policy bake-off.
 *
 * Runs every registered coherence policy (src/protocol/policy.hh --
 * mesi-dir, delegation, delegation-updates, write-update,
 * adaptive-hybrid) over a scenario x node-count grid and prints a
 * vs-base table, so the paper's delegation+updates wins are measured
 * against the strongest alternatives instead of only the base
 * MESI-directory strawman. The committed reference is
 * BENCH_compare.json; CI re-runs the sweep and byte-diffs it, so the
 * document is serialized without timing fields (the schemaVersion
 * determinism contract of src/runner/results.hh).
 */

#ifndef PCSIM_RUNNER_COMPARE_HH
#define PCSIM_RUNNER_COMPARE_HH

#include <string>
#include <vector>

#include "src/runner/job.hh"

namespace pcsim
{
namespace runner
{

/** Options for the policy bake-off (the `pcsim compare` flags). */
struct CompareOptions
{
    /** Scenario names to run (empty = the default pair: PCmicro for
     *  the paper's directed pattern, PubSub for a serving-shaped
     *  single-writer/many-reader stream). Any registry workload is
     *  accepted. */
    std::vector<std::string> scenarios;
    /** Machine sizes to sweep; the defaults keep CI cheap while still
     *  crossing the coarse-vector boundary behaviors. */
    std::vector<unsigned> nodes = {16, 64};
    double scale = 1.0;
    std::uint64_t seed = 1;
    /** Worker threads; 0 = all cores. */
    unsigned threads = 0;
    /** Write the results document here ("" = don't; "-" = stdout);
     *  the committed reference is BENCH_compare.json. */
    std::string jsonPath;
    std::string csvPath;
    bool quiet = false;
    /** Include host wall-clock rates in the document (breaks byte
     *  identity with the committed reference). */
    bool timing = false;
    /** Run every job twice and byte-compare the serialized results;
     *  exit 3 on mismatch. */
    bool deterministicCheck = false;
    /** Print the scenario x policy summary table. */
    bool table = true;
    /** Parallel-kernel shards per simulation (1 = sequential oracle;
     *  any value produces byte-identical documents). */
    unsigned parallelShards = 1;
};

/** Build the scenario x node-count x policy JobSet (exposed for
 *  tests). Returns an empty set when a requested scenario name is
 *  unknown or a node count is invalid. */
JobSet compareJobs(const CompareOptions &opt);

/**
 * Run the bake-off.
 * @return process exit code: 0 ok, 1 usage/I-O error, 2 a job
 *         failed, 3 non-deterministic.
 */
int runCompareSweep(const CompareOptions &opt);

} // namespace runner
} // namespace pcsim

#endif // PCSIM_RUNNER_COMPARE_HH
