#include "src/runner/serve.hh"

#include <cstdio>
#include <map>

#include "src/runner/results.hh"
#include "src/runner/runner.hh"
#include "src/system/presets.hh"
#include "src/workload/serving.hh"

namespace pcsim
{
namespace runner
{

JobSet
serveJobs(const ServeOptions &opt)
{
    std::vector<std::string> scenarios;
    const std::vector<std::string> family = servingNames();
    if (opt.scenarios.empty()) {
        scenarios = family;
    } else {
        for (const auto &want : opt.scenarios) {
            const std::string canonical = canonicalWorkload(want);
            bool known = false;
            for (const auto &name : family)
                known |= canonical == name;
            if (!known)
                return {};
            scenarios.push_back(canonical);
        }
    }
    if (opt.nodes.empty())
        return {};

    JobSet set;
    for (const auto &scen : scenarios) {
        for (unsigned n : opt.nodes) {
            if (n == 0)
                return {};
            for (const auto &named : presets::scaleConfigs(n)) {
                Job j;
                j.workload = scen;
                j.cfg = named.cfg;
                j.cfg.shards = opt.parallelShards;
                if (!j.cfg.proto.validateError().empty())
                    return {};
                j.configName = named.name;
                j.seed = opt.seed;
                j.scale = opt.scale;
                j.label = scen + "/n" + std::to_string(n) + "/" +
                          named.name;
                set.add(std::move(j));
            }
        }
    }
    return set;
}

namespace
{

void
printServeTable(const std::vector<JobResult> &results)
{
    // Base cycles per (workload, node count) for the win ratio column.
    std::map<std::string, std::uint64_t> baseCycles;
    for (const auto &r : results) {
        if (r.ok && r.job.configName == "base") {
            baseCycles[r.job.workload + "/" +
                       std::to_string(r.job.cfg.proto.numNodes)] =
                r.result.cycles;
        }
    }

    std::printf("%-28s | %12s | %10s | %9s | %9s | %8s | %8s\n",
                "scenario/nodes/config", "cycles", "messages",
                "updates", "updUsed", "missP99", "vs base");
    for (const auto &r : results) {
        if (!r.ok) {
            std::printf("%-28s | FAILED: %s\n", r.job.label.c_str(),
                        r.error.c_str());
            continue;
        }
        const auto it = baseCycles.find(
            r.job.workload + "/" +
            std::to_string(r.job.cfg.proto.numNodes));
        char win[16] = "-";
        if (it != baseCycles.end() && r.result.cycles)
            std::snprintf(win, sizeof(win), "%.3f",
                          double(it->second) /
                              double(r.result.cycles));
        std::printf(
            "%-28s | %12llu | %10llu | %9llu | %9llu | %8llu | %8s\n",
            r.job.label.c_str(),
            (unsigned long long)r.result.cycles,
            (unsigned long long)r.result.netMessages,
            (unsigned long long)r.result.updateMessages,
            (unsigned long long)r.result.nodes.updatesConsumed,
            (unsigned long long)r.result.missLatencyP99, win);
    }
}

} // namespace

int
runServeSweep(const ServeOptions &opt)
{
    const JobSet set = serveJobs(opt);
    if (set.empty()) {
        std::fprintf(stderr,
                     "pcsim serve: no jobs (unknown --scenario or bad "
                     "--nodes? known scenarios: KVServe, WorkQueue, "
                     "RCU, PubSub)\n");
        return 1;
    }

    RunnerOptions ropts;
    ropts.threads = opt.threads;
    ropts.progress = !opt.quiet;

    if (opt.deterministicCheck) {
        const std::string a =
            resultsToJson(runJobs(set, ropts), /*with_timing=*/false)
                .dump(2);
        const std::string b =
            resultsToJson(runJobs(set, ropts), /*with_timing=*/false)
                .dump(2);
        if (a == b) {
            std::fprintf(stderr,
                         "deterministic-check: OK (%zu serving jobs, "
                         "%zu bytes identical)\n",
                         set.size(), a.size());
            return 0;
        }
        std::size_t off = 0;
        while (off < a.size() && off < b.size() && a[off] == b[off])
            ++off;
        std::fprintf(stderr,
                     "deterministic-check: MISMATCH at byte %zu "
                     "(serving results differ between two identical "
                     "runs)\n",
                     off);
        return 3;
    }

    const auto results = runJobs(set, ropts);

    bool io_ok = true;
    const JsonValue doc = resultsToJson(results, opt.timing);
    if (!opt.jsonPath.empty())
        io_ok &= writeTextFile(opt.jsonPath, doc.dump(2) + "\n");
    if (!opt.csvPath.empty())
        io_ok &= writeTextFile(opt.csvPath,
                               resultsToCsv(results, opt.timing));

    if (opt.table && opt.jsonPath != "-" && opt.csvPath != "-")
        printServeTable(results);

    int failed = 0;
    for (const auto &r : results)
        failed += r.ok ? 0 : 1;
    if (!io_ok)
        return 1;
    return failed ? 2 : 0;
}

} // namespace runner
} // namespace pcsim
