#include "src/runner/figures.hh"

#include <cmath>
#include <utility>
#include <vector>

#include "src/runner/results.hh"
#include "src/workload/suite.hh"

namespace pcsim
{
namespace figures
{

namespace
{

/** The per-figure sweep axes, defined once for jobs and printers. */

const std::vector<std::pair<const char *, Tick>> &
figure9Delays()
{
    static const std::vector<std::pair<const char *, Tick>> delays = {
        {"5", 5},        {"50", 50},       {"500", 500},
        {"5K", 5000},    {"50K", 50000},   {"500K", 500000},
        {"5M", 5000000}, {"Infinite", maxTick},
    };
    return delays;
}

// 2 GHz core: 25/50/100/200 ns = 50/100/200/400 cycles.
const std::vector<std::pair<const char *, Tick>> &
figure10Hops()
{
    static const std::vector<std::pair<const char *, Tick>> hops = {
        {"25ns", 50}, {"50ns", 100}, {"100ns", 200}, {"200ns", 400}};
    return hops;
}

/** Paper speedups read off Figure 7 (approximate bar heights). */
struct PaperRow
{
    const char *app;
    double small; ///< 32-entry deledc & 32K RAC
    double large; ///< 1K-entry deledc & 1M RAC
};

const PaperRow paperSpeedups[] = {
    {"Barnes", 1.17, 1.23}, {"Ocean", 1.08, 1.11},
    {"Em3D", 1.33, 1.40},   {"LU", 1.31, 1.40},
    {"CG", 1.04, 1.06},     {"MG", 1.09, 1.22},
    {"Appbt", 1.08, 1.24},
};

double
geomean(const std::vector<double> &v)
{
    double p = 1.0;
    for (double x : v)
        p *= x;
    return v.empty() ? 0.0 : std::pow(p, 1.0 / v.size());
}

double
mean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return v.empty() ? 0.0 : s / v.size();
}

/** The per-run numbers the figure tables need. */
struct Entry
{
    double cycles = 0;
    double messages = 0;
    double remote = 0;
};

bool
lookup(const JsonValue &doc, const std::string &workload,
       const std::string &config, Entry &out)
{
    const JsonValue *e = runner::findResult(doc, workload, config);
    if (!e)
        return false;
    if (const JsonValue *ok = e->find("ok"))
        if (ok->isBool() && !ok->asBool())
            return false;
    out.cycles = double(e->at("cycles").asUInt());
    out.messages = double(e->at("netMessages").asUInt());
    out.remote =
        double(e->at("nodes").at("remoteMisses").asUInt());
    return true;
}

/** Speedup / traffic / remote triple normalized to a base entry. */
struct Norm
{
    double speedup = 1.0;
    double messages = 1.0;
    double remote = 1.0;
};

Norm
normalize(const Entry &base, const Entry &e)
{
    Norm n;
    n.speedup = base.cycles / e.cycles;
    n.messages = e.messages / base.messages;
    n.remote = e.remote / base.remote;
    return n;
}

/** Jobs run with the checker off: the figure sweeps measure speed,
 *  the invariant checks live in tests/ and examples/. */
void
disableChecker(runner::JobSet &set)
{
    for (auto &j : set.jobs())
        j.cfg.proto.checkerEnabled = false;
}

} // namespace

runner::JobSet
figure7Jobs(double bench_scale, unsigned num_nodes)
{
    runner::JobSet set;
    set.sweep(suiteNames(), presets::figure7Configs(num_nodes),
              bench_scale);
    disableChecker(set);
    return set;
}

runner::JobSet
figure9Jobs(double bench_scale, unsigned num_nodes)
{
    runner::JobSet set;
    for (const auto &app : suiteNames()) {
        for (const auto &[label, delay] : figure9Delays()) {
            runner::Job j;
            j.workload = app;
            j.cfg = presets::large(num_nodes);
            j.cfg.proto.interventionDelay = delay;
            j.configName = label;
            j.scale = bench_scale * 0.5;
            set.add(std::move(j));
        }
    }
    disableChecker(set);
    return set;
}

runner::JobSet
figure10Jobs(double bench_scale, unsigned num_nodes)
{
    runner::JobSet set;
    for (const auto &[label, cycles] : figure10Hops()) {
        for (bool enhanced : {false, true}) {
            runner::Job j;
            j.workload = "Appbt";
            j.cfg = enhanced ? presets::small(num_nodes)
                             : presets::base(num_nodes);
            j.cfg.net.hopLatency = cycles;
            j.configName =
                std::string(enhanced ? "enh-" : "base-") + label;
            j.scale = bench_scale * 0.5;
            set.add(std::move(j));
        }
    }
    disableChecker(set);
    return set;
}

void
printFigure7(const JsonValue &doc, std::FILE *out)
{
    const auto configs = presets::figure7Configs();
    const auto apps = suiteNames();

    std::fprintf(out, "speedup (paper small/large in brackets):\n");
    std::fprintf(out, "%-8s", "App");
    for (const auto &c : configs)
        std::fprintf(out, " | %-13.13s", c.name.c_str());
    std::fprintf(out, "\n");

    std::vector<std::vector<Norm>> all;

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const std::string &app = apps[a];
        Entry base;
        if (!lookup(doc, app, configs[0].name, base)) {
            std::fprintf(out, "%-8s | (missing base result)\n",
                         app.c_str());
            all.emplace_back();
            continue;
        }
        std::vector<Norm> norms;
        norms.push_back({1.0, 1.0, 1.0});
        for (std::size_t c = 1; c < configs.size(); ++c) {
            Entry e;
            norms.push_back(lookup(doc, app, configs[c].name, e)
                                ? normalize(base, e)
                                : Norm{0, 0, 0});
        }
        all.push_back(norms);

        std::fprintf(out, "%-8s", app.c_str());
        for (const Norm &n : norms)
            std::fprintf(out, " | %-13.3f", n.speedup);
        std::fprintf(out, "   [paper: %.2f / %.2f]\n",
                     paperSpeedups[a].small, paperSpeedups[a].large);
    }

    std::fprintf(out, "\nnetwork messages (normalized to Base):\n");
    std::fprintf(out, "%-8s", "App");
    for (const auto &c : configs)
        std::fprintf(out, " | %-13.13s", c.name.c_str());
    std::fprintf(out, "\n");
    for (std::size_t a = 0; a < all.size(); ++a) {
        std::fprintf(out, "%-8s", apps[a].c_str());
        for (const Norm &n : all[a])
            std::fprintf(out, " | %-13.3f", n.messages);
        std::fprintf(out, "\n");
    }

    std::fprintf(out, "\nremote misses (normalized to Base):\n");
    std::fprintf(out, "%-8s", "App");
    for (const auto &c : configs)
        std::fprintf(out, " | %-13.13s", c.name.c_str());
    std::fprintf(out, "\n");
    for (std::size_t a = 0; a < all.size(); ++a) {
        std::fprintf(out, "%-8s", apps[a].c_str());
        for (const Norm &n : all[a])
            std::fprintf(out, " | %-13.3f", n.remote);
        std::fprintf(out, "\n");
    }

    // Headline aggregates (Section 3.2's summary paragraph).
    std::vector<double> sp_small, sp_large, msg_small, msg_large,
        rm_small, rm_large;
    for (const auto &norms : all) {
        if (norms.size() < 4)
            continue;
        sp_small.push_back(norms[2].speedup);
        sp_large.push_back(norms[3].speedup);
        msg_small.push_back(norms[2].messages);
        msg_large.push_back(norms[3].messages);
        rm_small.push_back(norms[2].remote);
        rm_large.push_back(norms[3].remote);
    }
    std::fprintf(out, "\nsummary (paper in brackets):\n");
    std::fprintf(out,
                 "  small config: geomean speedup %.2f [1.13], traffic "
                 "%+.0f%% [-17%%], remote misses %+.0f%% [-29%%]\n",
                 geomean(sp_small), 100 * (mean(msg_small) - 1),
                 100 * (mean(rm_small) - 1));
    std::fprintf(out,
                 "  large config: geomean speedup %.2f [1.21], traffic "
                 "%+.0f%% [-15%%], remote misses %+.0f%% [-40%%]\n",
                 geomean(sp_large), 100 * (mean(msg_large) - 1),
                 100 * (mean(rm_large) - 1));
}

void
printFigure9(const JsonValue &doc, std::FILE *out)
{
    const auto &delays = figure9Delays();

    std::fprintf(out, "%-8s", "App");
    for (const auto &[label, d] : delays)
        std::fprintf(out, " | %-8s", label);
    std::fprintf(out, "\n---------");
    for (std::size_t i = 0; i < delays.size(); ++i)
        std::fprintf(out, "+----------");
    std::fprintf(out, "\n");

    for (const auto &app : suiteNames()) {
        std::vector<double> cycles;
        for (const auto &[label, d] : delays) {
            Entry e;
            cycles.push_back(lookup(doc, app, label, e) ? e.cycles
                                                        : 0.0);
        }
        std::fprintf(out, "%-8s", app.c_str());
        for (double c : cycles)
            std::fprintf(out, " | %-8.3f",
                         cycles[0] > 0 ? c / cycles[0] : 0.0);
        std::fprintf(out, "\n");
    }
    std::fprintf(out,
                 "\n(>1.0 = slower than the 5-cycle delay. The paper "
                 "reports 50 cycles works well for all benchmarks: "
                 "long enough for write bursts, short enough for "
                 "updates to arrive before the consumers' reads.)\n");
}

void
printFigure10(const JsonValue &doc, std::FILE *out)
{
    std::fprintf(out, "%-6s | %-14s | %-14s | %-8s\n", "hop",
                 "base cycles", "enhanced cycles", "speedup");
    std::fprintf(out,
                 "-------+----------------+----------------+---------\n");

    double prev_base = 0;
    for (const auto &[label, cycles] : figure10Hops()) {
        Entry base, enh;
        const bool have =
            lookup(doc, "Appbt", std::string("base-") + label, base) &&
            lookup(doc, "Appbt", std::string("enh-") + label, enh);
        if (!have) {
            std::fprintf(out, "%-6s | (missing result)\n", label);
            continue;
        }
        std::fprintf(out, "%-6s | %-14.0f | %-14.0f | %-8.3f", label,
                     base.cycles, enh.cycles,
                     base.cycles / enh.cycles);
        if (prev_base > 0)
            std::fprintf(out, "   (base grew %.2fx)",
                         base.cycles / prev_base);
        prev_base = base.cycles;
        std::fprintf(out, "\n");
    }
    std::fprintf(out,
                 "\n(The mechanisms' value increases with remote "
                 "latency, as the paper observes.)\n");
}

void
printTable2(double bench_scale, unsigned num_nodes, std::FILE *out)
{
    std::fprintf(out, "%-8s | %-42s | %s\n", "App",
                 "Paper problem size", "Scaled (this repo)");
    std::fprintf(out,
                 "---------+-------------------------------------------"
                 "-+---------------------------\n");
    for (const auto &name : suiteNames()) {
        auto w = runner::makeRunnerWorkload(name, num_nodes,
                                            bench_scale);
        std::fprintf(out, "%-8s | %-42s | %s\n", name.c_str(),
                     w->paperProblemSize().c_str(),
                     w->scaledProblemSize().c_str());
    }
    std::fprintf(out,
                 "\nTrace volumes (parallel phase, all %u CPUs):\n",
                 num_nodes);
    for (const auto &name : suiteNames()) {
        auto w = runner::makeRunnerWorkload(name, num_nodes,
                                            bench_scale);
        auto *t = dynamic_cast<TraceWorkload *>(w.get());
        std::fprintf(out, "  %-8s %10zu operations\n", name.c_str(),
                     t ? t->totalOps() : 0);
    }
}

} // namespace figures
} // namespace pcsim
