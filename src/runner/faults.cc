#include "src/runner/faults.hh"

#include <cstdio>

#include "src/runner/results.hh"
#include "src/runner/runner.hh"
#include "src/system/presets.hh"

namespace pcsim
{
namespace runner
{

JobSet
faultJobs(const FaultsOptions &opt)
{
    std::vector<presets::NamedFaultScenario> scenarios;
    for (const auto &s : presets::faultScenarios()) {
        if (opt.scenarios.empty()) {
            scenarios.push_back(s);
            continue;
        }
        for (const auto &want : opt.scenarios) {
            if (want == s.name) {
                scenarios.push_back(s);
                break;
            }
        }
    }
    if (scenarios.size() !=
        (opt.scenarios.empty() ? presets::faultScenarios().size()
                               : opt.scenarios.size())) {
        // At least one requested name matched nothing.
        return {};
    }

    std::vector<Arbitration> arbs;
    for (const auto &name : opt.arbitrations) {
        Arbitration a;
        if (!arbitrationFromName(name, a))
            return {}; // unknown arbitration mode
        arbs.push_back(a);
    }
    if (arbs.empty())
        arbs.push_back(Arbitration::NackRetry);

    JobSet set;
    for (const auto &scen : scenarios) {
        for (const Arbitration arb : arbs) {
            for (const auto &named :
                 presets::scaleConfigs(opt.nodes)) {
                Job j;
                j.workload = opt.workload;
                j.cfg = named.cfg;
                j.cfg.shards = opt.parallelShards;
                j.cfg.proto.faults = scen.faults;
                // The whole point: the protocol must stay provably
                // coherent and in-spec while being perturbed.
                j.cfg.proto.checkerEnabled = true;
                j.cfg.proto.conformanceEnabled = true;
                // Fault-grade backoff: exponential up to
                // retryBase << 6 so pressure-induced NACK storms
                // spread out.
                j.cfg.proto.retryExpCap = 6;
                j.cfg.proto.arbitration = arb;
                j.configName = named.name;
                j.seed = opt.seed;
                j.scale = opt.scale;
                // Historic labels for the default mode, so
                // BENCH_faults.json rows keep their identity.
                j.label = arb == Arbitration::NackRetry
                              ? scen.name + "/" + named.name
                              : scen.name + "/" +
                                    arbitrationName(arb) + "/" +
                                    named.name;
                set.add(std::move(j));
            }
        }
    }
    return set;
}

namespace
{

void
printFaultsTable(const std::vector<JobResult> &results)
{
    std::printf("%-40s | %12s | %9s | %9s | %8s | %8s | %10s | %8s "
                "| %8s | %6s\n",
                "scenario/config", "cycles", "nacks", "retries",
                "maxRetry", "stormPk", "delayedMsg", "maxWait",
                "p99", "qPeak");
    for (const auto &r : results) {
        if (!r.ok) {
            std::printf("%-40s | FAILED: %s\n", r.job.label.c_str(),
                        r.error.c_str());
            continue;
        }
        std::printf("%-40s | %12llu | %9llu | %9llu | %8llu | %8llu "
                    "| %10llu | %8llu | %8llu | %6llu\n",
                    r.job.label.c_str(),
                    (unsigned long long)r.result.cycles,
                    (unsigned long long)r.result.nodes.nacksReceived,
                    (unsigned long long)r.result.nodes.retries,
                    (unsigned long long)r.result.nodes.maxRetriesPerLine,
                    (unsigned long long)r.result.nodes.nackStormPeak,
                    (unsigned long long)r.result.faultDelayedMessages,
                    (unsigned long long)r.result.nodes.maxLineWaitTicks,
                    (unsigned long long)r.result.missLatencyP99,
                    (unsigned long long)r.result.nodes.queueDepthPeak);
    }
}

} // namespace

int
runFaultSweep(const FaultsOptions &opt)
{
    const JobSet set = faultJobs(opt);
    if (set.empty()) {
        std::fprintf(stderr,
                     "pcsim faults: no jobs (unknown --scenario or "
                     "--arbitration? scenarios: gray-links, ni-stalls, "
                     "hotspot, dir-pressure, storm; arbitrations: "
                     "nack-retry, queue, aged-priority)\n");
        return 1;
    }

    RunnerOptions ropts;
    ropts.threads = opt.threads;
    ropts.progress = !opt.quiet;

    if (opt.deterministicCheck) {
        const std::string a =
            resultsToJson(runJobs(set, ropts), /*with_timing=*/false)
                .dump(2);
        const std::string b =
            resultsToJson(runJobs(set, ropts), /*with_timing=*/false)
                .dump(2);
        if (a == b) {
            std::fprintf(stderr,
                         "deterministic-check: OK (%zu faulted jobs, "
                         "%zu bytes identical)\n",
                         set.size(), a.size());
            return 0;
        }
        std::size_t off = 0;
        while (off < a.size() && off < b.size() && a[off] == b[off])
            ++off;
        std::fprintf(stderr,
                     "deterministic-check: MISMATCH at byte %zu "
                     "(faulted results differ between two identical "
                     "runs)\n",
                     off);
        return 3;
    }

    const auto results = runJobs(set, ropts);

    bool io_ok = true;
    const JsonValue doc =
        resultsToJson(results, /*with_timing=*/false);
    if (!opt.jsonPath.empty())
        io_ok &= writeTextFile(opt.jsonPath, doc.dump(2) + "\n");
    if (!opt.csvPath.empty())
        io_ok &= writeTextFile(
            opt.csvPath, resultsToCsv(results, /*with_timing=*/false));

    if (opt.table && opt.jsonPath != "-" && opt.csvPath != "-")
        printFaultsTable(results);

    int failed = 0;
    for (const auto &r : results)
        failed += r.ok ? 0 : 1;
    if (!io_ok)
        return 1;
    return failed ? 2 : 0;
}

} // namespace runner
} // namespace pcsim
