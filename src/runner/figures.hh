/**
 * @file
 * Paper figure/table sweeps as JobSets, plus the printed comparison
 * tables as thin formatters over the serialized JSON results.
 *
 * The bench/ reproduction binaries and the pcsim CLI share these: a
 * sweep is defined once (jobs + per-figure scale conventions), run
 * through the parallel runner, serialized with resultsToJson(), and
 * the table printers consume that JSON document -- so the printed
 * comparison and any saved results file can never disagree.
 */

#ifndef PCSIM_RUNNER_FIGURES_HH
#define PCSIM_RUNNER_FIGURES_HH

#include <cstdio>

#include "src/runner/job.hh"
#include "src/sim/json.hh"

namespace pcsim
{
namespace figures
{

/** Figure 7: seven applications x six machine configurations.
 *  @param bench_scale overall bench scale (PCSIM_BENCH_SCALE). */
runner::JobSet figure7Jobs(double bench_scale = 1.0,
                           unsigned num_nodes = 16);

/** Figure 9: seven applications x eight intervention-delay settings
 *  on the large configuration (runs at half bench scale, as the
 *  original harness did). */
runner::JobSet figure9Jobs(double bench_scale = 1.0,
                           unsigned num_nodes = 16);

/** Figure 10: Appbt on base + enhanced systems across four network
 *  hop latencies (half bench scale). */
runner::JobSet figure10Jobs(double bench_scale = 1.0,
                            unsigned num_nodes = 16);

/** Print the Figure 7 speedup / traffic / remote-miss tables and the
 *  Section 3.2 summary from a resultsToJson() document. */
void printFigure7(const JsonValue &doc, std::FILE *out = stdout);

/** Print the Figure 9 normalized execution-time table. */
void printFigure9(const JsonValue &doc, std::FILE *out = stdout);

/** Print the Figure 10 hop-latency sensitivity table. */
void printFigure10(const JsonValue &doc, std::FILE *out = stdout);

/** Print Table 2 (problem sizes and trace volumes). Table 2 needs no
 *  simulation -- it instantiates the suite through the runner's
 *  workload registry and reports sizes. */
void printTable2(double bench_scale = 1.0, unsigned num_nodes = 16,
                 std::FILE *out = stdout);

} // namespace figures
} // namespace pcsim

#endif // PCSIM_RUNNER_FIGURES_HH
