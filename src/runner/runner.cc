#include "src/runner/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace pcsim
{
namespace runner
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Execute one job into its preallocated result slot. */
void
executeJob(const Job &job, const RunnerOptions &opts, JobResult &out)
{
    const auto start = Clock::now();
    out.job = job;
    try {
        MachineConfig cfg = job.cfg;
        cfg.seed = job.seed;
        if (opts.checker)
            cfg.proto.checkerEnabled = *opts.checker;

        std::unique_ptr<Workload> wl =
            job.factory ? job.factory()
                        : makeRunnerWorkload(job.workload,
                                             cfg.proto.numNodes,
                                             job.scale);
        if (!wl)
            throw std::runtime_error("workload factory returned null");

        out.result = runWorkload(cfg, *wl, job.configName);
        out.ok = true;
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
    } catch (...) {
        out.ok = false;
        out.error = "unknown exception";
    }
    out.wallSeconds = secondsSince(start);
}

} // namespace

unsigned
resolveThreads(unsigned requested, std::size_t num_jobs)
{
    unsigned t = requested;
    if (t == 0) {
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
    }
    if (num_jobs > 0 && t > num_jobs)
        t = static_cast<unsigned>(num_jobs);
    return t > 0 ? t : 1;
}

std::vector<JobResult>
runJobs(const JobSet &set, const RunnerOptions &opts)
{
    const std::vector<Job> &jobs = set.jobs();
    std::vector<JobResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const unsigned threads = resolveThreads(opts.threads, jobs.size());
    const auto start = Clock::now();

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::mutex io;

    auto worker = [&]() {
        while (true) {
            const std::size_t idx =
                next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= jobs.size())
                return;
            JobResult &slot = results[idx];
            executeJob(jobs[idx], opts, slot);
            const std::size_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opts.progress) {
                std::lock_guard<std::mutex> lock(io);
                if (slot.ok) {
                    std::fprintf(
                        stderr,
                        "[%zu/%zu] %s: %llu cycles (%.2fs, %.1fs "
                        "elapsed)\n",
                        done, jobs.size(), slot.job.label.c_str(),
                        (unsigned long long)slot.result.cycles,
                        slot.wallSeconds, secondsSince(start));
                } else {
                    std::fprintf(stderr, "[%zu/%zu] %s: FAILED: %s\n",
                                 done, jobs.size(),
                                 slot.job.label.c_str(),
                                 slot.error.c_str());
                }
            }
        }
    };

    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    if (opts.progress) {
        std::size_t failed = 0;
        for (const auto &r : results)
            failed += r.ok ? 0 : 1;
        std::fprintf(stderr,
                     "ran %zu jobs on %u thread%s in %.1fs (%zu "
                     "failed)\n",
                     jobs.size(), threads, threads == 1 ? "" : "s",
                     secondsSince(start), failed);
    }
    return results;
}

} // namespace runner
} // namespace pcsim
