/**
 * @file
 * `pcsim serve`: the datacenter serving-workload sweep.
 *
 * Runs the serving family (KVServe, WorkQueue, RCU, PubSub) across
 * {base, delegation, delegate-update} at each requested node count,
 * and reports where the paper's producer-consumer optimization pays
 * off on serving-shaped sharing instead of scientific kernels. The
 * committed reference is BENCH_serve.json; CI re-runs the sweep and
 * byte-diffs it, so the document is serialized without timing fields
 * (the schemaVersion 2 determinism contract of
 * src/runner/results.hh).
 */

#ifndef PCSIM_RUNNER_SERVE_HH
#define PCSIM_RUNNER_SERVE_HH

#include <string>
#include <vector>

#include "src/runner/job.hh"

namespace pcsim
{
namespace runner
{

/** Options for the serving sweep (the `pcsim serve` flags). */
struct ServeOptions
{
    /** Scenario names to run (empty = the whole family in
     *  servingNames() order). */
    std::vector<std::string> scenarios;
    /** Machine sizes to sweep; defaults keep CI cheap while still
     *  crossing the coarse-vector boundary behaviors. Any value up to
     *  ProtocolConfig::maxNodes (4096) is accepted. */
    std::vector<unsigned> nodes = {16, 64};
    double scale = 1.0;
    std::uint64_t seed = 1;
    /** Worker threads; 0 = all cores. */
    unsigned threads = 0;
    /** Write the results document here ("" = don't; "-" = stdout);
     *  the committed reference is BENCH_serve.json. */
    std::string jsonPath;
    std::string csvPath;
    bool quiet = false;
    /** Include host wall-clock rates in the document (breaks byte
     *  identity with the committed reference). */
    bool timing = false;
    /** Run every job twice and byte-compare the serialized results;
     *  exit 3 on mismatch. */
    bool deterministicCheck = false;
    /** Print the scenario x config summary table. */
    bool table = true;
    /** Parallel-kernel shards per simulation (1 = sequential oracle;
     *  any value produces byte-identical documents). */
    unsigned parallelShards = 1;
};

/** Build the scenario x node-count x mechanism JobSet (exposed for
 *  tests). Returns an empty set when a requested scenario name is
 *  unknown or a node count is invalid. */
JobSet serveJobs(const ServeOptions &opt);

/**
 * Run the sweep.
 * @return process exit code: 0 ok, 1 usage/I-O error, 2 a job
 *         failed, 3 non-deterministic.
 */
int runServeSweep(const ServeOptions &opt);

} // namespace runner
} // namespace pcsim

#endif // PCSIM_RUNNER_SERVE_HH
