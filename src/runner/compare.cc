#include "src/runner/compare.hh"

#include <cstdio>
#include <map>

#include "src/runner/results.hh"
#include "src/runner/runner.hh"
#include "src/system/presets.hh"

namespace pcsim
{
namespace runner
{

JobSet
compareJobs(const CompareOptions &opt)
{
    std::vector<std::string> scenarios;
    if (opt.scenarios.empty()) {
        scenarios = {"PCmicro", "PubSub"};
    } else {
        for (const auto &want : opt.scenarios) {
            const std::string canonical = canonicalWorkload(want);
            if (canonical.empty())
                return {};
            scenarios.push_back(canonical);
        }
    }
    if (opt.nodes.empty())
        return {};

    JobSet set;
    for (const auto &scen : scenarios) {
        for (unsigned n : opt.nodes) {
            if (n == 0)
                return {};
            for (const auto &named : presets::compareConfigs(n)) {
                Job j;
                j.workload = scen;
                j.cfg = named.cfg;
                j.cfg.shards = opt.parallelShards;
                if (!j.cfg.proto.validateError().empty())
                    return {};
                j.configName = named.name;
                j.seed = opt.seed;
                j.scale = opt.scale;
                j.label = scen + "/n" + std::to_string(n) + "/" +
                          named.name;
                set.add(std::move(j));
            }
        }
    }
    return set;
}

namespace
{

void
printCompareTable(const std::vector<JobResult> &results)
{
    // Base (mesi-dir) cycles per (workload, node count) for the
    // vs-base ratio column (> 1 means the policy wins).
    std::map<std::string, std::uint64_t> baseCycles;
    for (const auto &r : results) {
        if (r.ok && r.job.configName == "mesi-dir") {
            baseCycles[r.job.workload + "/" +
                       std::to_string(r.job.cfg.proto.numNodes)] =
                r.result.cycles;
        }
    }

    std::printf("%-32s | %12s | %10s | %9s | %9s | %8s\n",
                "scenario/nodes/policy", "cycles", "messages",
                "updates", "applied", "vs base");
    for (const auto &r : results) {
        if (!r.ok) {
            std::printf("%-32s | FAILED: %s\n", r.job.label.c_str(),
                        r.error.c_str());
            continue;
        }
        const auto it = baseCycles.find(
            r.job.workload + "/" +
            std::to_string(r.job.cfg.proto.numNodes));
        char win[16] = "-";
        if (it != baseCycles.end() && r.result.cycles)
            std::snprintf(win, sizeof(win), "%.3f",
                          double(it->second) /
                              double(r.result.cycles));
        // "applied" counts refreshes a consumer absorbed: RAC fills
        // for the invalidate-based policies, in-place SHARED-copy
        // refreshes for the update-based ones.
        const std::uint64_t applied =
            r.result.nodes.updatesApplied +
            r.result.nodes.updatesConsumed;
        std::printf(
            "%-32s | %12llu | %10llu | %9llu | %9llu | %8s\n",
            r.job.label.c_str(),
            (unsigned long long)r.result.cycles,
            (unsigned long long)r.result.netMessages,
            (unsigned long long)r.result.updateMessages,
            (unsigned long long)applied, win);
    }
}

} // namespace

int
runCompareSweep(const CompareOptions &opt)
{
    const JobSet set = compareJobs(opt);
    if (set.empty()) {
        std::fprintf(stderr,
                     "pcsim compare: no jobs (unknown --scenario or "
                     "bad --nodes? any registry workload is a valid "
                     "scenario, see 'pcsim list')\n");
        return 1;
    }

    RunnerOptions ropts;
    ropts.threads = opt.threads;
    ropts.progress = !opt.quiet;

    if (opt.deterministicCheck) {
        const std::string a =
            resultsToJson(runJobs(set, ropts), /*with_timing=*/false)
                .dump(2);
        const std::string b =
            resultsToJson(runJobs(set, ropts), /*with_timing=*/false)
                .dump(2);
        if (a == b) {
            std::fprintf(stderr,
                         "deterministic-check: OK (%zu policy jobs, "
                         "%zu bytes identical)\n",
                         set.size(), a.size());
            return 0;
        }
        std::size_t off = 0;
        while (off < a.size() && off < b.size() && a[off] == b[off])
            ++off;
        std::fprintf(stderr,
                     "deterministic-check: MISMATCH at byte %zu "
                     "(policy results differ between two identical "
                     "runs)\n",
                     off);
        return 3;
    }

    const auto results = runJobs(set, ropts);

    bool io_ok = true;
    const JsonValue doc = resultsToJson(results, opt.timing);
    if (!opt.jsonPath.empty())
        io_ok &= writeTextFile(opt.jsonPath, doc.dump(2) + "\n");
    if (!opt.csvPath.empty())
        io_ok &= writeTextFile(opt.csvPath,
                               resultsToCsv(results, opt.timing));

    if (opt.table && opt.jsonPath != "-" && opt.csvPath != "-")
        printCompareTable(results);

    int failed = 0;
    for (const auto &r : results)
        failed += r.ok ? 0 : 1;
    if (!io_ok)
        return 1;
    return failed ? 2 : 0;
}

} // namespace runner
} // namespace pcsim
