/**
 * @file
 * `pcsim bench`: the standard kernel + protocol microbenchmark suite.
 *
 * Four kernel-only benchmarks exercise the event queue's hot paths in
 * isolation (shallow/deep self-ping, closure payloads, calendar
 * overflow), and two protocol benchmarks run real workloads through a
 * full machine so the pooled message path and directory sizing show up
 * in end-to-end events/sec. Each benchmark reports the best of N
 * repeats; results can be written as a BENCH_kernel.json document and
 * compared against a saved baseline (see EXPERIMENTS.md for the
 * schema).
 */

#ifndef PCSIM_RUNNER_BENCH_HH
#define PCSIM_RUNNER_BENCH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pcsim
{
namespace runner
{

/** Options for the bench suite (the `pcsim bench` flags). */
struct BenchOptions
{
    /** Events per kernel microbenchmark. */
    std::uint64_t kernelEvents = 2000000;
    /** Repeats per benchmark; the best wall time is reported. */
    unsigned repeats = 3;
    /** Write the results document here ("" = don't; "-" = stdout). */
    std::string jsonPath;
    /** Compare against a prior results document ("" = none): each
     *  benchmark found by name in the baseline gains
     *  baselineEventsPerSec + speedup fields. */
    std::string baselinePath;
    /** Suppress the per-benchmark progress lines on stderr. */
    bool quiet = false;
};

/** Run the suite; returns a process exit code (0 ok, 1 I/O error). */
int runBenchSuite(const BenchOptions &opt);

/**
 * The parallel-kernel scaling suite (`pcsim bench --parallel`):
 * PCmicro at 64 nodes and a 256-node KVServe serving scenario, each at
 * 1/2/4/8 shards. The shards=1 point is the sequential oracle and the
 * in-document baseline for the per-point speedup fields; every point's
 * deterministic statistics are byte-compared against that oracle, so
 * the benchmark doubles as an identity check (any divergence fails
 * with exit code 2). The document also records the host's core count:
 * single-core hosts cannot speed up and the numbers say so honestly.
 * The committed reference is BENCH_parallel.json.
 * @return process exit code (0 ok, 1 I/O error, 2 identity mismatch).
 */
int runParallelBench(const BenchOptions &opt);

/** Options for the node-count scaling sweep (`pcsim scale`). */
struct ScaleOptions
{
    /** Machine sizes to sweep ("" = presets::scaleNodeCounts()). */
    std::vector<unsigned> nodeCounts;
    /** Workload driven at every size (problem sizes are per-CPU, so
     *  total work grows with the machine). */
    std::string workload = "Em3D";
    double scale = 0.25;
    /** Repeats per point; the best wall time is reported. */
    unsigned repeats = 1;
    /** Write the results document here ("" = don't; "-" = stdout);
     *  the committed reference is BENCH_scale.json. */
    std::string jsonPath;
    bool quiet = false;
    /** Parallel-kernel shards per simulation (1 = sequential). */
    unsigned parallelShards = 1;
};

/**
 * Sweep base / delegation / delegate-update over the node counts,
 * recording events/sec and the miss-class breakdown per point.
 * @return process exit code (0 ok, 1 usage/I-O error).
 */
int runScaleSweep(const ScaleOptions &opt);

} // namespace runner
} // namespace pcsim

#endif // PCSIM_RUNNER_BENCH_HH
