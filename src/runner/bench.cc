#include "src/runner/bench.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/runner/job.hh"
#include "src/runner/results.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/json.hh"
#include "src/sim/logging.hh"
#include "src/system/presets.hh"
#include "src/system/system.hh"

namespace pcsim
{
namespace runner
{
namespace
{

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// --- kernel microbenchmarks --------------------------------------
//
// A fixed LCG drives self-rescheduling actors, so the schedule/pop
// sequence is identical on every host and every run; only the wall
// time varies.

struct Lcg
{
    std::uint64_t s;
    explicit Lcg(std::uint64_t seed) : s(seed) {}
    std::uint32_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint32_t>(s >> 33);
    }
};

enum class Mode
{
    Shallow, ///< short deltas, tight horizon (the protocol common case)
    Deep,    ///< many actors, deltas up to 1K ticks
    Payload, ///< Shallow + a Message-sized closure capture
    Mixed,   ///< mostly short deltas with occasional far-future jumps
};

struct Payload
{
    unsigned char bytes[64] = {};
};

struct Harness
{
    EventQueue eq;
    Lcg rng{12345};
    std::uint64_t budget = 0;
    Mode mode = Mode::Shallow;

    Tick
    delta()
    {
        switch (mode) {
          case Mode::Shallow:
          case Mode::Payload:
            return 1 + (rng.next() & 63);
          case Mode::Deep:
            return 1 + (rng.next() & 1023);
          case Mode::Mixed:
            return (rng.next() & 7) ? 1 + (rng.next() & 255)
                                    : 8192 + (rng.next() & 65535);
        }
        return 1;
    }

    void
    arm()
    {
        if (budget == 0)
            return;
        --budget;
        if (mode == Mode::Payload) {
            Payload p;
            p.bytes[0] = static_cast<unsigned char>(budget);
            eq.scheduleIn(delta(), [this, p]() {
                (void)p.bytes[0];
                arm();
            });
        } else {
            eq.scheduleIn(delta(), [this]() { arm(); });
        }
    }
};

struct BenchResult
{
    std::string name;
    std::string kind; ///< "kernel" or "protocol"
    std::uint64_t events = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    /** Protocol benches only. */
    std::string workload;
    std::string config;
    double scale = 0.0;
    Tick cycles = 0;
    double ticksPerSec = 0.0;
    double poolHitRate = 0.0;
    double inlineRate = 0.0;
    std::uint64_t peakQueueDepth = 0;
};

BenchResult
kernelBench(const char *name, Mode mode, unsigned actors,
            const BenchOptions &opt)
{
    BenchResult br;
    br.name = name;
    br.kind = "kernel";
    for (unsigned rep = 0; rep < opt.repeats; ++rep) {
        Harness h;
        h.mode = mode;
        h.budget = opt.kernelEvents;
        for (unsigned i = 0; i < actors; ++i)
            h.arm();

        const double start = now();
        const std::uint64_t executed = h.eq.run();
        const double wall = now() - start;
        if (rep == 0 || wall < br.wallSeconds) {
            br.wallSeconds = wall;
            br.events = executed;
        }
    }
    br.eventsPerSec =
        br.wallSeconds > 0 ? double(br.events) / br.wallSeconds : 0.0;
    return br;
}

BenchResult
protocolBench(const char *name, const std::string &workload,
              const std::string &config, double scale,
              const BenchOptions &opt)
{
    BenchResult br;
    br.name = name;
    br.kind = "protocol";
    br.workload = workload;
    br.config = config;
    br.scale = scale;

    MachineConfig cfg;
    std::string cname;
    if (!namedMachineConfig(config, /*num_nodes=*/16, cfg, cname))
        panic("bench: unknown config '%s'", config.c_str());
    cfg.proto.checkerEnabled = false;
    br.config = cname;

    for (unsigned rep = 0; rep < opt.repeats; ++rep) {
        System sys(cfg);
        auto wl =
            makeRunnerWorkload(workload, sys.numNodes(), scale);
        RunResult r = sys.run(*wl);
        if (rep == 0 || r.perf.wallSeconds < br.wallSeconds) {
            br.wallSeconds = r.perf.wallSeconds;
            br.events = r.perf.eventsExecuted;
            br.cycles = r.perf.simTicks;
            br.ticksPerSec = r.perf.ticksPerSec();
            br.poolHitRate = r.perf.poolHitRate();
            br.inlineRate = r.perf.inlineRate();
            br.peakQueueDepth = r.perf.peakQueueDepth;
        }
    }
    br.eventsPerSec =
        br.wallSeconds > 0 ? double(br.events) / br.wallSeconds : 0.0;
    return br;
}

JsonValue
toJson(const BenchResult &br)
{
    JsonValue v = JsonValue::object();
    v["name"] = JsonValue(br.name);
    v["kind"] = JsonValue(br.kind);
    v["events"] = JsonValue(br.events);
    v["wallSeconds"] = JsonValue(br.wallSeconds);
    v["eventsPerSec"] = JsonValue(br.eventsPerSec);
    if (br.kind == "protocol") {
        v["workload"] = JsonValue(br.workload);
        v["config"] = JsonValue(br.config);
        v["scale"] = JsonValue(br.scale);
        v["cycles"] = JsonValue(br.cycles);
        v["ticksPerSec"] = JsonValue(br.ticksPerSec);
        v["poolHitRate"] = JsonValue(br.poolHitRate);
        v["inlineRate"] = JsonValue(br.inlineRate);
        v["peakQueueDepth"] = JsonValue(br.peakQueueDepth);
    }
    return v;
}

/** eventsPerSec of the same-named benchmark in a baseline document;
 *  0 when absent. */
double
baselineEps(const JsonValue *baseline, const std::string &name)
{
    if (!baseline)
        return 0.0;
    const JsonValue *arr = baseline->find("benchmarks");
    if (!arr || !arr->isArray())
        return 0.0;
    for (std::size_t i = 0; i < arr->size(); ++i) {
        const JsonValue &e = arr->at(i);
        const JsonValue *n = e.find("name");
        const JsonValue *eps = e.find("eventsPerSec");
        if (n && eps && n->isString() && n->asString() == name)
            return eps->asDouble();
    }
    return 0.0;
}

} // namespace

int
runBenchSuite(const BenchOptions &opt)
{
    JsonValue baseline;
    bool have_baseline = false;
    if (!opt.baselinePath.empty()) {
        std::string text;
        if (!readTextFile(opt.baselinePath, text)) {
            std::fprintf(stderr, "pcsim bench: cannot read baseline "
                                 "'%s'\n",
                         opt.baselinePath.c_str());
            return 1;
        }
        baseline = JsonValue::parse(text);
        have_baseline = true;
    }

    std::vector<BenchResult> results;
    const auto progress = [&](const BenchResult &br) {
        results.push_back(br);
        if (!opt.quiet)
            std::fprintf(stderr, "bench: %-24s %9.0f kev/s\n",
                         br.name.c_str(), br.eventsPerSec / 1e3);
    };

    progress(kernelBench("kernel-selfping-shallow", Mode::Shallow, 64,
                         opt));
    progress(kernelBench("kernel-selfping-deep", Mode::Deep, 4096,
                         opt));
    progress(kernelBench("kernel-payload", Mode::Payload, 64, opt));
    progress(kernelBench("kernel-mixed-overflow", Mode::Mixed, 256,
                         opt));
    progress(protocolBench("proto-pcmicro", "PCmicro", "large", 20.0,
                           opt));
    progress(protocolBench("proto-em3d", "Em3D", "large", 4.0, opt));

    JsonValue doc = JsonValue::object();
    doc["schemaVersion"] = JsonValue(std::uint64_t(1));
    doc["generator"] = JsonValue("pcsim bench");
    doc["kernelEvents"] = JsonValue(opt.kernelEvents);
    doc["repeats"] = JsonValue(std::uint64_t(opt.repeats));
    JsonValue arr = JsonValue::array();
    for (const auto &br : results) {
        JsonValue v = toJson(br);
        const double base =
            have_baseline ? baselineEps(&baseline, br.name) : 0.0;
        if (base > 0) {
            v["baselineEventsPerSec"] = JsonValue(base);
            v["speedup"] = JsonValue(br.eventsPerSec / base);
        }
        arr.push(std::move(v));
    }
    doc["benchmarks"] = std::move(arr);

    // Summary table on stdout.
    std::printf("%-24s | %10s | %12s | %s\n", "benchmark", "wall(s)",
                "events/sec", have_baseline ? "speedup" : "");
    for (const auto &br : results) {
        const double base =
            have_baseline ? baselineEps(&baseline, br.name) : 0.0;
        if (base > 0)
            std::printf("%-24s | %10.4f | %12.0f | %.2fx\n",
                        br.name.c_str(), br.wallSeconds,
                        br.eventsPerSec, br.eventsPerSec / base);
        else
            std::printf("%-24s | %10.4f | %12.0f |\n", br.name.c_str(),
                        br.wallSeconds, br.eventsPerSec);
    }

    if (!opt.jsonPath.empty() &&
        !writeTextFile(opt.jsonPath, doc.dump(2) + "\n"))
        return 1;
    return 0;
}

// --- node-count scaling sweep ------------------------------------

namespace
{

/** One (nodes, config) point of the scaling sweep. */
struct ScalePoint
{
    unsigned nodes = 0;
    std::string config;
    Tick cycles = 0;
    std::uint64_t events = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    NodeStats stats;
    std::uint64_t netMessages = 0;
    std::uint64_t netBytes = 0;
};

JsonValue
toJson(const ScalePoint &p)
{
    JsonValue v = JsonValue::object();
    v["nodes"] = JsonValue(std::uint64_t(p.nodes));
    v["config"] = JsonValue(p.config);
    v["cycles"] = JsonValue(p.cycles);
    v["events"] = JsonValue(p.events);
    v["wallSeconds"] = JsonValue(p.wallSeconds);
    v["eventsPerSec"] = JsonValue(p.eventsPerSec);
    JsonValue m = JsonValue::object();
    m["l2Hits"] = JsonValue(p.stats.l2Hits);
    m["localMisses"] = JsonValue(p.stats.localMisses);
    m["remoteMisses"] = JsonValue(p.stats.remoteMisses);
    m["racHits"] = JsonValue(p.stats.racHits);
    m["twoHopMisses"] = JsonValue(p.stats.twoHopMisses);
    m["threeHopMisses"] = JsonValue(p.stats.threeHopMisses);
    m["updatesSent"] = JsonValue(p.stats.updatesSent);
    m["updatesConsumed"] = JsonValue(p.stats.updatesConsumed);
    v["missClasses"] = std::move(m);
    v["netMessages"] = JsonValue(p.netMessages);
    v["netBytes"] = JsonValue(p.netBytes);
    v["detectorBitsPerEntry"] =
        JsonValue(std::uint64_t(p.stats.detectorBitsPerEntry));
    return v;
}

} // namespace

int
runScaleSweep(const ScaleOptions &opt)
{
    std::vector<unsigned> counts = opt.nodeCounts;
    if (counts.empty())
        counts = presets::scaleNodeCounts();

    std::vector<ScalePoint> points;
    for (unsigned n : counts) {
        for (const auto &nc : presets::scaleConfigs(n)) {
            MachineConfig cfg = nc.cfg;
            cfg.proto.checkerEnabled = false;
            cfg.shards = opt.parallelShards;
            const std::string err = cfg.proto.validateError();
            if (!err.empty()) {
                std::fprintf(stderr,
                             "pcsim scale: invalid configuration "
                             "'%s' at %u nodes: %s\n",
                             nc.name.c_str(), n, err.c_str());
                return 1;
            }

            ScalePoint p;
            p.nodes = n;
            p.config = nc.name;
            for (unsigned rep = 0; rep < opt.repeats; ++rep) {
                System sys(cfg);
                auto wl = makeRunnerWorkload(opt.workload,
                                             sys.numNodes(), opt.scale);
                RunResult r = sys.run(*wl);
                if (rep == 0 || r.perf.wallSeconds < p.wallSeconds) {
                    p.cycles = r.cycles;
                    p.events = r.perf.eventsExecuted;
                    p.wallSeconds = r.perf.wallSeconds;
                    p.stats = r.nodes;
                    p.netMessages = r.netMessages;
                    p.netBytes = r.netBytes;
                }
            }
            p.eventsPerSec = p.wallSeconds > 0
                                 ? double(p.events) / p.wallSeconds
                                 : 0.0;
            if (!opt.quiet)
                std::fprintf(stderr,
                             "scale: %3u nodes %-16s %12llu cycles "
                             "%9.0f kev/s\n",
                             n, p.config.c_str(),
                             (unsigned long long)p.cycles,
                             p.eventsPerSec / 1e3);
            points.push_back(std::move(p));
        }
    }

    JsonValue doc = JsonValue::object();
    doc["schemaVersion"] = JsonValue(std::uint64_t(1));
    doc["generator"] = JsonValue("pcsim scale");
    doc["workload"] = JsonValue(opt.workload);
    doc["scale"] = JsonValue(opt.scale);
    doc["repeats"] = JsonValue(std::uint64_t(opt.repeats));
    JsonValue arr = JsonValue::array();
    for (const auto &p : points)
        arr.push(toJson(p));
    doc["results"] = std::move(arr);

    std::printf("%5s | %-16s | %12s | %12s | %10s | %10s | %9s\n",
                "nodes", "config", "cycles", "events/sec", "remote",
                "racHits", "updates");
    for (const auto &p : points)
        std::printf("%5u | %-16s | %12llu | %12.0f | %10llu | %10llu "
                    "| %9llu\n",
                    p.nodes, p.config.c_str(),
                    (unsigned long long)p.cycles, p.eventsPerSec,
                    (unsigned long long)p.stats.remoteMisses,
                    (unsigned long long)p.stats.racHits,
                    (unsigned long long)p.stats.updatesSent);

    if (!opt.jsonPath.empty() &&
        !writeTextFile(opt.jsonPath, doc.dump(2) + "\n"))
        return 1;
    return 0;
}

// --- parallel-kernel shard scaling -------------------------------

namespace
{

/** One workload x machine of the shard-scaling suite. */
struct ParallelSpec
{
    const char *name;
    const char *workload;
    const char *config;
    unsigned nodes;
    double scale;
};

} // namespace

int
runParallelBench(const BenchOptions &opt)
{
    // PCmicro is the paper's producer-consumer stressor; the 256-node
    // KVServe point is the serving-scale machine the CI release job
    // byte-diffs against the sequential golden. 64 nodes cap at 8
    // leaf-aligned shards, so the 8-shard point is the topology limit.
    static const ParallelSpec specs[] = {
        {"parallel-pcmicro-64", "PCmicro", "large", 64, 4.0},
        {"parallel-kvserve-256", "KVServe", "base", 256, 1.0},
    };
    static const unsigned shard_counts[] = {1, 2, 4, 8};

    bool identical = true;
    JsonValue benches = JsonValue::array();
    std::printf("%-22s | %6s | %9s | %10s | %12s | %7s\n", "benchmark",
                "shards", "(actual)", "wall(s)", "events/sec",
                "speedup");
    for (const auto &spec : specs) {
        MachineConfig cfg;
        std::string cname;
        if (!namedMachineConfig(spec.config, spec.nodes, cfg, cname))
            panic("bench --parallel: unknown config '%s'",
                  spec.config);
        cfg.proto.checkerEnabled = false;

        std::string oracle; // serialized shards=1 statistics
        double oracle_wall = 0.0;
        JsonValue points = JsonValue::array();
        for (unsigned shards : shard_counts) {
            cfg.shards = shards;
            std::uint64_t events = 0;
            std::uint32_t effective = 1;
            double wall = 0.0;
            std::string serialized;
            for (unsigned rep = 0; rep < opt.repeats; ++rep) {
                System sys(cfg);
                auto wl = makeRunnerWorkload(spec.workload,
                                             sys.numNodes(),
                                             spec.scale);
                RunResult r = sys.run(*wl);
                if (rep == 0 || r.perf.wallSeconds < wall) {
                    wall = r.perf.wallSeconds;
                    events = r.perf.eventsExecuted;
                }
                effective = r.perf.shards;
                // Every repeat must serialize identically -- the
                // deterministic fields carry no trace of S or the
                // host, so one capture per point suffices.
                if (rep == 0)
                    serialized =
                        toJson(r, /*with_timing=*/false).dump(2);
            }
            if (shards == 1) {
                oracle = serialized;
                oracle_wall = wall;
            }
            const bool point_ok = serialized == oracle;
            identical &= point_ok;
            const double eps =
                wall > 0 ? double(events) / wall : 0.0;
            const double speedup = wall > 0 ? oracle_wall / wall : 0.0;

            JsonValue p = JsonValue::object();
            p["shards"] = JsonValue(std::uint64_t(shards));
            p["effectiveShards"] = JsonValue(std::uint64_t(effective));
            p["events"] = JsonValue(events);
            p["wallSeconds"] = JsonValue(wall);
            p["eventsPerSec"] = JsonValue(eps);
            p["speedupVsSequential"] = JsonValue(speedup);
            p["identicalToSequential"] = JsonValue(point_ok);
            points.push(std::move(p));

            std::printf("%-22s | %6u | %9u | %10.4f | %12.0f | "
                        "%6.2fx%s\n",
                        spec.name, shards, effective, wall, eps,
                        speedup, point_ok ? "" : "  IDENTITY FAIL");
            if (!opt.quiet)
                std::fprintf(stderr,
                             "bench: %s x%u done (%s)\n", spec.name,
                             shards, point_ok ? "identical" : "DIFF");
        }

        JsonValue b = JsonValue::object();
        b["name"] = JsonValue(std::string(spec.name));
        b["workload"] = JsonValue(std::string(spec.workload));
        b["config"] = JsonValue(cname);
        b["nodes"] = JsonValue(std::uint64_t(spec.nodes));
        b["scale"] = JsonValue(spec.scale);
        b["points"] = std::move(points);
        benches.push(std::move(b));
    }

    JsonValue doc = JsonValue::object();
    doc["schemaVersion"] = JsonValue(std::uint64_t(1));
    doc["generator"] = JsonValue("pcsim bench --parallel");
    doc["repeats"] = JsonValue(std::uint64_t(opt.repeats));
    // Speedup is bounded by the host: a single-core runner reports
    // ~1x (barrier overhead and all), and the document says so.
    doc["hostCores"] = JsonValue(
        std::uint64_t(std::thread::hardware_concurrency()));
    doc["identicalToSequential"] = JsonValue(identical);
    doc["benchmarks"] = std::move(benches);

    if (!opt.jsonPath.empty() &&
        !writeTextFile(opt.jsonPath, doc.dump(2) + "\n"))
        return 1;
    if (!identical) {
        std::fprintf(stderr, "bench --parallel: parallel kernel "
                             "diverged from the sequential oracle\n");
        return 2;
    }
    return 0;
}

} // namespace runner
} // namespace pcsim
