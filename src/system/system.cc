#include "src/system/system.hh"

#include <chrono>

#include "src/sim/logging.hh"

namespace pcsim
{

System::System(const MachineConfig &cfg)
    : _cfg(cfg),
      _checker(cfg.proto.checkerEnabled),
      _memMap(cfg.proto.numNodes, cfg.pageBytes),
      _net(_eq, cfg.proto.numNodes, cfg.net)
{
    cfg.proto.validate();
    if (cfg.proto.checkerEnabled || cfg.proto.conformanceEnabled)
        _trace = std::make_unique<verify::MessageTrace>();
    if (cfg.proto.conformanceEnabled) {
        _observer = std::make_unique<verify::TransitionObserver>(
            verify::protocolSpec(), _trace.get());
    }
    _checker.setTrace(_trace.get());
    Rng root(cfg.seed);
    std::vector<Hub *> hub_ptrs;
    for (unsigned n = 0; n < cfg.proto.numNodes; ++n) {
        _hubs.push_back(std::make_unique<Hub>(
            _eq, _net, _memMap, _checker, _cfg.proto,
            static_cast<NodeId>(n),
            forkNodeRng(root, static_cast<NodeId>(n))));
        _hubs.back()->setConsumerHist(
            &_consumerHist, cfg.barrierBase,
            (cfg.proto.numNodes + 1) * cfg.proto.lineBytes);
        _hubs.back()->setConformance(_observer.get(), _trace.get());
        hub_ptrs.push_back(_hubs.back().get());
    }
    _barrier = std::make_unique<BarrierDriver>(
        _eq, hub_ptrs, cfg.barrierBase, cfg.proto.lineBytes,
        cfg.barrierSpinDelay);

    // Fault plan LAST, and only when enabled: fault-free runs draw the
    // exact same fork sequence as before, keeping their results
    // byte-identical to the goldens.
    if (cfg.proto.faults.enabled) {
        _faultPlan = std::make_unique<FaultPlan>(
            cfg.proto.faults, cfg.proto.numNodes, root.fork());
        _net.setFaultPlan(_faultPlan.get());
    }
}

System::~System() = default;

void
System::resetStats()
{
    for (auto &hub : _hubs)
        hub->stats().reset();
    _net.resetStats();
    _consumerHist.reset();
    _statsResetTick = _eq.curTick();
}

RunResult
System::run(Workload &workload, Tick max_ticks)
{
    if (workload.numCpus() != numNodes())
        fatal("workload wants %u CPUs, machine has %u",
              workload.numCpus(), numNodes());

    workload.reset();
    _cpus.clear();

    unsigned running = numNodes();
    Tick last_done = 0;
    for (unsigned n = 0; n < numNodes(); ++n) {
        _cpus.push_back(std::make_unique<Cpu>(_eq, *_hubs[n], workload,
                                              *_barrier, n));
        Cpu *c = _cpus.back().get();
        c->setOnDone([this, &running, &last_done, c]() {
            --running;
            if (c->finishedAt() > last_done)
                last_done = c->finishedAt();
        });
        c->start();
    }

    // Parallel-phase convention: barrier generation 1 ends init.
    _barrier->setOnGeneration([this](std::uint64_t gen) {
        if (gen == 1)
            resetStats();
    });

    const auto wall_start = std::chrono::steady_clock::now();
    _eq.run(max_ticks);

    if (running != 0)
        fatal("simulation hit the tick limit with %u CPUs unfinished "
              "(deadlock or limit too small)",
              running);

    // Drain any leftover protocol work (pending delayed interventions
    // push updates after the CPUs finish) before the quiescent check.
    _eq.run(maxTick);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    if (_checker.enabled()) {
        _checker.checkQuiescent(
            [this](Addr line) { return _memMap.homeOf(line); });
    }

    RunResult r;
    r.workload = workload.name();
    r.cycles = last_done > _statsResetTick ? last_done - _statsResetTick
                                           : last_done;
    for (auto &hub : _hubs)
        r.nodes += hub->stats();
    r.netMessages = _net.numMessages();
    r.netBytes = _net.numBytes();
    r.nackMessages = _net.numByType(MsgType::Nack) +
                     _net.numByType(MsgType::NackNotHome);
    r.updateMessages = _net.numByType(MsgType::Update);
    r.consumerHist = _consumerHist;

    const EventQueueStats &eqs = _eq.stats();
    r.perf.eventsExecuted = eqs.executed;
    r.perf.eventsScheduled = eqs.scheduled;
    r.perf.peakQueueDepth = eqs.peakPending;
    r.perf.inlineCallbacks = eqs.inlineCallbacks;
    r.perf.heapCallbacks = eqs.heapCallbacks;
    r.perf.overflowEvents = eqs.overflowEvents;
    r.perf.windowAdvances = eqs.windowAdvances;
    r.perf.poolAcquires = _net.poolStats().acquires;
    r.perf.poolReuses = _net.poolStats().reuses;
    r.perf.simTicks = _eq.curTick();
    r.perf.wallSeconds = wall;
    if (_observer)
        r.conformance = _observer->coverage();
    if (_faultPlan) {
        r.faultsActive = true;
        r.faultDelayedMessages = _net.faultDelayedMessages();
        r.faultExtraTicks = _net.faultExtraTicks();
    }
    return r;
}

RunResult
runWorkload(const MachineConfig &cfg, Workload &workload,
            const std::string &config_name)
{
    System sys(cfg);
    RunResult r = sys.run(workload);
    r.config = config_name;
    return r;
}

} // namespace pcsim
