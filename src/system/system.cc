#include "src/system/system.hh"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "src/protocol/policy.hh"
#include "src/sim/logging.hh"

namespace pcsim
{

System::System(const MachineConfig &cfg)
    : _cfg(cfg),
      _kernel(ShardMap::leafAligned(
                  cfg.proto.numNodes,
                  FatTreeTopology(cfg.proto.numNodes).radix(),
                  cfg.shards),
              // Action grid G: 1 + hop latency lower-bounds every
              // cross-shard (hence >= 2 hop) latency, and depends only
              // on the config, so action boundaries are S-invariant.
              1 + cfg.net.hopLatency,
              1 + FatTreeTopology(cfg.proto.numNodes)
                      .minCrossLeafLatencyTicks(cfg.net.hopLatency)),
      _checker(cfg.proto.checkerEnabled),
      _memMap(cfg.proto.numNodes, cfg.pageBytes),
      _net(_kernel.queue(0), cfg.proto.numNodes, cfg.net)
{
    cfg.proto.validate();
    const bool parallel = _kernel.numShards() > 1;
    if (cfg.proto.checkerEnabled || cfg.proto.conformanceEnabled) {
        _trace = std::make_unique<verify::MessageTrace>();
        _trace->setParallel(parallel);
    }
    if (cfg.proto.conformanceEnabled) {
        // Each policy is held to its own transition spec.
        _observer = std::make_unique<verify::TransitionObserver>(
            policyFor(cfg.proto.kind).spec(), _trace.get());
        _observer->setParallel(parallel);
    }
    _checker.setTrace(_trace.get());
    _checker.setParallel(parallel);
    _checker.setUpdateBased(cfg.proto.updateBased());
    _net.attachKernel(_kernel);
    // Barrier flags share a page; interleave their homes by line so
    // placement is content-determined and no single directory absorbs
    // every CPU's synchronization traffic (flag k homes at node k,
    // the release line at the master).
    _memMap.setInterleavedRegion(
        cfg.barrierBase,
        Addr(cfg.proto.numNodes + 1) * cfg.proto.lineBytes,
        cfg.proto.lineBytes);
    _shardConsumerHists.assign(_kernel.numShards(), Histogram(17));
    Rng root(cfg.seed);
    std::vector<Hub *> hub_ptrs;
    for (unsigned n = 0; n < cfg.proto.numNodes; ++n) {
        _hubs.push_back(std::make_unique<Hub>(
            _kernel.queueForNode(static_cast<NodeId>(n)), _net, _memMap,
            _checker, _cfg.proto, static_cast<NodeId>(n),
            forkNodeRng(root, static_cast<NodeId>(n))));
        _hubs.back()->setConsumerHist(
            &_shardConsumerHists[_kernel.shardOf(
                static_cast<NodeId>(n))],
            cfg.barrierBase,
            (cfg.proto.numNodes + 1) * cfg.proto.lineBytes);
        _hubs.back()->setConformance(_observer.get(), _trace.get());
        hub_ptrs.push_back(_hubs.back().get());
    }
    _barrier = std::make_unique<BarrierDriver>(
        _kernel.queue(0), hub_ptrs, cfg.barrierBase,
        cfg.proto.lineBytes, cfg.barrierSpinDelay);

    // Fault plan LAST, and only when enabled: fault-free runs draw the
    // exact same fork sequence as before, keeping their results
    // byte-identical to the goldens.
    if (cfg.proto.faults.enabled) {
        _faultPlan = std::make_unique<FaultPlan>(
            cfg.proto.faults, cfg.proto.numNodes, root.fork());
        _net.setFaultPlan(_faultPlan.get());
    }
}

System::~System() = default;

void
System::resetStats()
{
    for (auto &hub : _hubs)
        hub->stats().reset();
    _net.resetStats();
    for (auto &h : _shardConsumerHists)
        h.reset();
    _statsResetTick = _kernel.queue(0).curTick();
}

/**
 * Deterministic first-touch page placement, computed from the traces
 * before any event runs. The classic policy assigns a page to the
 * first CPU that touches it *in execution order*; under the parallel
 * kernel that order does not exist, so we use the schedule-independent
 * equivalent: scan all CPU streams round-robin by op index and let the
 * first Read/Write claim each page. (The barrier flag region is not
 * part of any trace; it is line-interleaved by the memory map, see
 * setInterleavedRegion.) The map is then frozen so shard workers only
 * ever read it. Runs with any shard count (including the sequential
 * oracle) use the same placement, which is one of the pillars of byte
 * identity.
 */
void
System::preplacePages(Workload &workload)
{
    const unsigned n_cpus = numNodes();
    std::vector<const std::vector<MemOp> *> ops(n_cpus);
    for (unsigned n = 0; n < n_cpus; ++n) {
        ops[n] = workload.cpuOps(n);
        if (!ops[n]) {
            if (_kernel.numShards() > 1) {
                fatal("parallel kernel needs a trace-backed workload "
                      "for deterministic page pre-placement ('%s' "
                      "exposes no op streams)",
                      workload.name().c_str());
            }
            return; // sequential: classic dynamic first-touch
        }
    }

    std::size_t max_ops = 0;
    for (unsigned n = 0; n < n_cpus; ++n)
        max_ops = std::max(max_ops, ops[n]->size());
    for (std::size_t i = 0; i < max_ops; ++i) {
        for (unsigned n = 0; n < n_cpus; ++n) {
            if (i >= ops[n]->size())
                continue;
            const MemOp &op = (*ops[n])[i];
            if (op.kind == MemOp::Kind::Read ||
                op.kind == MemOp::Kind::Write) {
                _memMap.homeOf(op.addr, static_cast<NodeId>(n));
            }
        }
    }
    _memMap.freeze();
}

RunResult
System::run(Workload &workload, Tick max_ticks)
{
    if (workload.numCpus() != numNodes())
        fatal("workload wants %u CPUs, machine has %u",
              workload.numCpus(), numNodes());

    workload.reset();
    _cpus.clear();
    preplacePages(workload);

    std::atomic<unsigned> running{numNodes()};
    std::atomic<Tick> last_done{0};
    for (unsigned n = 0; n < numNodes(); ++n) {
        _cpus.push_back(std::make_unique<Cpu>(
            _kernel.queueForNode(static_cast<NodeId>(n)), *_hubs[n],
            workload, *_barrier, n));
        Cpu *c = _cpus.back().get();
        c->setOnDone([&running, &last_done, c]() {
            running.fetch_sub(1, std::memory_order_relaxed);
            // Commutative max: the final value is independent of the
            // order in which shard workers report completion.
            Tick t = c->finishedAt();
            Tick cur = last_done.load(std::memory_order_relaxed);
            while (t > cur &&
                   !last_done.compare_exchange_weak(
                       cur, t, std::memory_order_relaxed)) {
            }
        });
        c->start();
    }

    // Parallel-phase convention: barrier generation 1 ends init. The
    // reset must happen at a content-determined global time, so it is
    // requested as a kernel action: it applies at the next action-grid
    // boundary B after the generation's last pass tick, once every
    // event before B (on every shard) has executed.
    _barrier->setOnGeneration([this](std::uint64_t gen, Tick at) {
        if (gen == 1) {
            _kernel.requestGlobalAction(at, [this](Tick boundary) {
                resetStats();
                _statsResetTick = boundary;
            });
        }
    });

    const auto wall_start = std::chrono::steady_clock::now();
    _kernel.run(max_ticks);

    if (running.load() != 0)
        fatal("simulation hit the tick limit with %u CPUs unfinished "
              "(deadlock or limit too small)",
              running.load());

    // Drain any leftover protocol work (pending delayed interventions
    // push updates after the CPUs finish) before the quiescent check.
    _kernel.run(maxTick);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    if (_checker.enabled()) {
        _checker.checkQuiescent(
            [this](Addr line) { return _memMap.homeOf(line); });
    }

    RunResult r;
    r.workload = workload.name();
    const Tick done = last_done.load();
    r.cycles = done > _statsResetTick ? done - _statsResetTick : done;
    for (auto &hub : _hubs) {
        // Worst-node percentiles, taken per node BEFORE the sum
        // (merging the histograms first would average the unlucky
        // node away; see RunResult).
        const NodeStats &ns = hub->stats();
        r.missLatencyP50 = std::max(
            r.missLatencyP50, latencyPercentile(ns.missLatencyHist, 0.50));
        r.missLatencyP95 = std::max(
            r.missLatencyP95, latencyPercentile(ns.missLatencyHist, 0.95));
        r.missLatencyP99 = std::max(
            r.missLatencyP99, latencyPercentile(ns.missLatencyHist, 0.99));
        r.nodes += ns;
    }
    r.netMessages = _net.numMessages();
    r.netBytes = _net.numBytes();
    r.nackMessages = _net.numByType(MsgType::Nack) +
                     _net.numByType(MsgType::NackNotHome);
    r.updateMessages = _net.numByType(MsgType::Update);
    r.consumerHist = _shardConsumerHists[0];
    for (unsigned s = 1; s < _kernel.numShards(); ++s)
        r.consumerHist.merge(_shardConsumerHists[s]);

    const EventQueueStats eqs = _kernel.aggregateStats();
    r.perf.eventsExecuted = eqs.executed;
    r.perf.eventsScheduled = eqs.scheduled;
    r.perf.peakQueueDepth = eqs.peakPending;
    r.perf.inlineCallbacks = eqs.inlineCallbacks;
    r.perf.heapCallbacks = eqs.heapCallbacks;
    r.perf.overflowEvents = eqs.overflowEvents;
    r.perf.windowAdvances = eqs.windowAdvances;
    const Pool<Message>::Stats pool_stats = _net.poolStats();
    r.perf.poolAcquires = pool_stats.acquires;
    r.perf.poolReuses = pool_stats.reuses;
    r.perf.simTicks = _kernel.maxCurTick();
    r.perf.shards = _kernel.numShards();
    r.perf.shardEvents.reserve(_kernel.numShards());
    for (unsigned s = 0; s < _kernel.numShards(); ++s)
        r.perf.shardEvents.push_back(_kernel.queue(s).stats().executed);
    r.perf.kernelWindows = _kernel.stats().windows;
    r.perf.kernelBarriers = _kernel.stats().barriers;
    r.perf.crossShardMessages = _net.crossShardMessages();
    r.perf.wallSeconds = wall;
    if (_observer)
        r.conformance = _observer->coverage();
    if (_faultPlan) {
        r.faultsActive = true;
        r.faultDelayedMessages = _net.faultDelayedMessages();
        r.faultExtraTicks = _net.faultExtraTicks();
    }
    r.updateBased = _cfg.proto.updateBased();
    r.arbitrationActive = _cfg.proto.arbitrationActive();
    return r;
}

RunResult
runWorkload(const MachineConfig &cfg, Workload &workload,
            const std::string &config_name)
{
    System sys(cfg);
    RunResult r = sys.run(workload);
    r.config = config_name;
    return r;
}

} // namespace pcsim
