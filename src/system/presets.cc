#include "src/system/presets.hh"

namespace pcsim
{
namespace presets
{

MachineConfig
base(unsigned num_nodes)
{
    MachineConfig m;
    m.proto.numNodes = num_nodes;
    return m;
}

MachineConfig
racOnly(std::size_t rac_bytes, unsigned num_nodes)
{
    MachineConfig m = base(num_nodes);
    m.proto.racEnabled = true;
    m.proto.rac.sizeBytes = rac_bytes;
    return m;
}

MachineConfig
delegateUpdate(std::size_t delegate_entries, std::size_t rac_bytes,
               unsigned num_nodes)
{
    MachineConfig m = racOnly(rac_bytes, num_nodes);
    m.proto.kind = ProtocolKind::DelegationUpdates;
    m.proto.delegate.producerEntries = delegate_entries;
    m.proto.delegate.consumerEntries = delegate_entries;
    return m;
}

MachineConfig
delegationOnly(std::size_t delegate_entries, std::size_t rac_bytes,
               unsigned num_nodes)
{
    MachineConfig m = delegateUpdate(delegate_entries, rac_bytes,
                                     num_nodes);
    m.proto.kind = ProtocolKind::Delegation;
    return m;
}

MachineConfig
writeUpdate(unsigned num_nodes)
{
    MachineConfig m = base(num_nodes);
    m.proto.kind = ProtocolKind::WriteUpdate;
    return m;
}

MachineConfig
adaptiveHybrid(unsigned num_nodes, std::uint32_t threshold)
{
    MachineConfig m = base(num_nodes);
    m.proto.kind = ProtocolKind::AdaptiveHybrid;
    m.proto.adaptiveThreshold = threshold;
    return m;
}

std::vector<NamedConfig>
figure7Configs(unsigned num_nodes)
{
    return {
        {"Base", base(num_nodes)},
        {"32K RAC", racOnly(32 * 1024, num_nodes)},
        {"32-entry deledc & 32K RAC",
         delegateUpdate(32, 32 * 1024, num_nodes)},
        {"1K-entry deledc & 1M RAC",
         delegateUpdate(1024, 1024 * 1024, num_nodes)},
        {"1K-entry deledc & 32K RAC",
         delegateUpdate(1024, 32 * 1024, num_nodes)},
        {"32-entry deledc & 1M RAC",
         delegateUpdate(32, 1024 * 1024, num_nodes)},
    };
}

std::vector<unsigned>
scaleNodeCounts()
{
    // 512 and 1024 use exact sharer vectors too (SharerSet is a
    // dynamic bitset): correct, but directory state and invalidation
    // fan-out grow linearly with node count. Production machines at
    // this scale run coarse vectors (--coarse / presets::coarse),
    // trading spurious invalidations for directory width.
    return {16, 32, 64, 128, 256, 512, 1024};
}

std::vector<NamedConfig>
scaleConfigs(unsigned num_nodes)
{
    return {
        {"base", base(num_nodes)},
        {"delegation", delegationOnly(32, 32 * 1024, num_nodes)},
        {"delegate-update", delegateUpdate(32, 32 * 1024, num_nodes)},
    };
}

std::vector<NamedConfig>
compareConfigs(unsigned num_nodes)
{
    // One entry per registered policy, named by protocolKindName so
    // the bake-off table reads like the CLI's --protocol values.
    return {
        {"mesi-dir", base(num_nodes)},
        {"delegation", delegationOnly(32, 32 * 1024, num_nodes)},
        {"delegation-updates",
         delegateUpdate(32, 32 * 1024, num_nodes)},
        {"write-update", writeUpdate(num_nodes)},
        {"adaptive-hybrid", adaptiveHybrid(num_nodes)},
    };
}

MachineConfig
coarse(const MachineConfig &m, unsigned nodes_per_bit)
{
    MachineConfig out = m;
    out.proto.sharerGranularityLog2 = log2Ceil(nodes_per_bit);
    return out;
}

std::vector<NamedFaultScenario>
faultScenarios()
{
    FaultConfig gray;
    gray.enabled = true;
    gray.grayLinkFraction = 0.25;
    gray.grayExtraLatency = 400;

    FaultConfig stalls;
    stalls.enabled = true;
    stalls.stallNodeFraction = 0.25;

    FaultConfig hotspot;
    hotspot.enabled = true;
    hotspot.hotspotExtraLatency = 300;

    FaultConfig pressure;
    pressure.enabled = true;
    pressure.dirPressureWays = 1;

    // The acceptance scenario: gray links + NI stalls + directory
    // pressure at once.
    FaultConfig storm;
    storm.enabled = true;
    storm.grayLinkFraction = 0.25;
    storm.grayExtraLatency = 400;
    storm.stallNodeFraction = 0.25;
    storm.dirPressureWays = 1;

    return {
        {"gray-links", gray},   {"ni-stalls", stalls},
        {"hotspot", hotspot},   {"dir-pressure", pressure},
        {"storm", storm},
    };
}

} // namespace presets
} // namespace pcsim
