/**
 * @file
 * Whole-machine assembly: N nodes (CPU + hub), interconnect, memory
 * map, barrier driver and the invariant checker, plus run-level
 * statistics gathering.
 */

#ifndef PCSIM_SYSTEM_SYSTEM_HH
#define PCSIM_SYSTEM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "src/cpu/barrier.hh"
#include "src/cpu/cpu.hh"
#include "src/mem/memory_map.hh"
#include "src/net/network.hh"
#include "src/protocol/checker.hh"
#include "src/protocol/config.hh"
#include "src/protocol/hub.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/kernel.hh"
#include "src/sim/perf.hh"
#include "src/sim/stats.hh"
#include "src/verify/observer.hh"
#include "src/verify/trace.hh"
#include "src/workload/workload.hh"

namespace pcsim
{

/** Complete machine configuration. */
struct MachineConfig
{
    ProtocolConfig proto;
    NetworkConfig net;
    std::uint64_t seed = 1;
    std::uint32_t pageBytes = 16 * 1024;
    /** Base address of the barrier flag region (above workload data). */
    Addr barrierBase = 0xB0000000ull;
    Tick barrierSpinDelay = 30;
    /** Requested parallel-kernel shard count (1 = the sequential
     *  oracle). Clamped to the topology's leaf-router count so shards
     *  stay leaf aligned; results are byte-identical for every value
     *  (see DESIGN.md, "Parallel event kernel"). */
    unsigned shards = 1;
};

/** Aggregated results of one run (parallel phase only). */
struct RunResult
{
    std::string workload;
    std::string config;

    Tick cycles = 0; ///< parallel-phase execution time

    NodeStats nodes; ///< summed over all nodes

    std::uint64_t netMessages = 0;
    std::uint64_t netBytes = 0;
    std::uint64_t nackMessages = 0;
    std::uint64_t updateMessages = 0;

    /** Consumers-per-write for producer-consumer lines (Table 3):
     *  bucket i = writes that invalidated i consumer copies. */
    Histogram consumerHist{17};

    /** Kernel/pool telemetry for the whole run (init + parallel
     *  phases); wallSeconds is host-dependent, the rest deterministic. */
    RunPerf perf;

    /** Observed protocol transitions with counts (the coverage feed
     *  for `pcsim lint --coverage`). Empty unless the run had
     *  conformance checking enabled. */
    std::vector<verify::TransitionCount> conformance;

    /** @name Fault injection (src/net/faults.hh).
     *  Populated only when the run had faults enabled; gates the
     *  optional "retry" block in the results JSON. */
    /// @{
    bool faultsActive = false;
    std::uint64_t faultDelayedMessages = 0;
    std::uint64_t faultExtraTicks = 0;
    /// @}

    /** The run used an update-based policy (write-update / adaptive
     *  hybrid); gates the optional "policy" block in the results
     *  JSON. */
    bool updateBased = false;

    /** @name Fairness telemetry (src/protocol/arbiter.hh).
     *  The percentiles are the WORST single node's miss-latency
     *  percentile (per-node histograms, taken before the sum into
     *  `nodes`): the fairness question is how badly the unluckiest
     *  node fares, which a machine-wide histogram would average away.
     *  `arbitrationActive` (a non-default arbitration mode) gates the
     *  optional "fairness" JSON block together with `faultsActive`. */
    /// @{
    bool arbitrationActive = false;
    std::uint64_t missLatencyP50 = 0;
    std::uint64_t missLatencyP95 = 0;
    std::uint64_t missLatencyP99 = 0;
    /// @}

    std::uint64_t totalMisses() const
    {
        return nodes.localMisses + nodes.remoteMisses;
    }
};

/** A full simulated machine. */
class System
{
  public:
    explicit System(const MachineConfig &cfg);
    ~System();

    /** Shard 0's queue (the only queue when running sequentially). */
    EventQueue &eventQueue() { return _kernel.queue(0); }
    SimKernel &kernel() { return _kernel; }
    Network &network() { return _net; }
    MemoryMap &memMap() { return _memMap; }
    CoherenceChecker &checker() { return _checker; }
    Hub &hub(unsigned i) { return *_hubs.at(i); }
    unsigned numNodes() const
    {
        return static_cast<unsigned>(_hubs.size());
    }
    BarrierDriver &barrier() { return *_barrier; }
    const MachineConfig &config() const { return _cfg; }

    /**
     * Execute @p workload to completion.
     *
     * Statistics are reset when barrier generation 1 completes (end of
     * the initialization phase), so the result covers the parallel
     * phase only. A final quiescent invariant check runs if the
     * checker is enabled.
     */
    RunResult run(Workload &workload, Tick max_ticks = maxTick);

    /** Zero all node and network statistics. */
    void resetStats();

  private:
    /** Trace-scan first-touch pre-placement + map freeze (see .cc). */
    void preplacePages(Workload &workload);

    MachineConfig _cfg;
    SimKernel _kernel;
    /** Per-line recent-message ring, feeding checker and conformance
     *  failure reports (null when both are disabled). */
    std::unique_ptr<verify::MessageTrace> _trace;
    /** Spec cross-checker; null unless conformanceEnabled. */
    std::unique_ptr<verify::TransitionObserver> _observer;
    CoherenceChecker _checker;
    MemoryMap _memMap;
    Network _net;
    /** Deterministic fault schedule; null for fault-free runs. */
    std::unique_ptr<FaultPlan> _faultPlan;
    std::vector<std::unique_ptr<Hub>> _hubs;
    std::unique_ptr<BarrierDriver> _barrier;
    std::vector<std::unique_ptr<Cpu>> _cpus;
    /** One consumers-per-write histogram per shard (each hub samples
     *  into its shard's copy, lock-free); merged in shard order --
     *  commutative bucket sums -- into RunResult::consumerHist. */
    std::vector<Histogram> _shardConsumerHists;
    Tick _statsResetTick = 0;
};

/**
 * Convenience: build a machine, run the workload, return the result.
 * A fresh System is built per call so runs are independent.
 */
RunResult runWorkload(const MachineConfig &cfg, Workload &workload,
                      const std::string &config_name = "");

} // namespace pcsim

#endif // PCSIM_SYSTEM_SYSTEM_HH
