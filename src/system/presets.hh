/**
 * @file
 * Machine configuration presets matching the paper's evaluated
 * systems (Table 1 plus the Figure 7 / Figure 8 variants).
 */

#ifndef PCSIM_SYSTEM_PRESETS_HH
#define PCSIM_SYSTEM_PRESETS_HH

#include <string>
#include <vector>

#include "src/system/system.hh"

namespace pcsim
{
namespace presets
{

/** Table 1 baseline: 16 nodes, 2 MB L2, no RAC / delegation. */
MachineConfig base(unsigned num_nodes = 16);

/** Baseline plus a RAC (victim cache only), Figure 7 "32K RAC". */
MachineConfig racOnly(std::size_t rac_bytes = 32 * 1024,
                      unsigned num_nodes = 16);

/**
 * Full mechanism: delegation + speculative updates.
 * Figure 7 evaluates {32, 1024} delegate entries x {32K, 1M} RAC.
 */
MachineConfig delegateUpdate(std::size_t delegate_entries,
                             std::size_t rac_bytes,
                             unsigned num_nodes = 16);

/** Delegation without speculative updates (Section 3.2: within 1% of
 *  base for most applications). */
MachineConfig delegationOnly(std::size_t delegate_entries = 32,
                             std::size_t rac_bytes = 32 * 1024,
                             unsigned num_nodes = 16);

/** Dragon-style write-update policy on the Table 1 machine. */
MachineConfig writeUpdate(unsigned num_nodes = 16);

/** Per-line adaptive update/invalidate hybrid on the Table 1
 *  machine. */
MachineConfig adaptiveHybrid(unsigned num_nodes = 16,
                             std::uint32_t threshold = 4);

/** The small (32-entry deledc + 32K RAC) configuration. */
inline MachineConfig
small(unsigned num_nodes = 16)
{
    return delegateUpdate(32, 32 * 1024, num_nodes);
}

/** The large (1K-entry deledc + 1M RAC) configuration. */
inline MachineConfig
large(unsigned num_nodes = 16)
{
    return delegateUpdate(1024, 1024 * 1024, num_nodes);
}

/** A named configuration for sweep harnesses. */
struct NamedConfig
{
    std::string name;
    MachineConfig cfg;
};

/** The six systems of Figure 7, in the paper's order. */
std::vector<NamedConfig> figure7Configs(unsigned num_nodes = 16);

/** Node counts of the scale-out sweep (`pcsim scale`): the paper's
 *  16-node Altix up through a 1024-node machine. Every point uses
 *  exact sharer vectors by default; at the top sizes a real machine
 *  would run coarse vectors (see coarse()) -- the sweep keeps them
 *  exact so the protocol-behavior curves stay comparable. */
std::vector<unsigned> scaleNodeCounts();

/**
 * The three protocol stacks the node-count scaling sweep compares at
 * each machine size: base directory, delegation only, and delegation
 * + speculative updates (the paper's "small" sizing).
 */
std::vector<NamedConfig> scaleConfigs(unsigned num_nodes);

/**
 * The `pcsim compare` bake-off roster: one configuration per
 * registered coherence policy (mesi-dir, delegation,
 * delegation-updates, write-update, adaptive-hybrid), all on the
 * Table 1 machine at @p num_nodes.
 */
std::vector<NamedConfig> compareConfigs(unsigned num_nodes);

/**
 * A coarse-sharing-vector variant: @p nodes_per_bit (power of two)
 * consecutive nodes share one directory bit, SGI-Origin style.
 */
MachineConfig coarse(const MachineConfig &m, unsigned nodes_per_bit);

/** A named fault-injection scenario (`pcsim faults --scenario`). */
struct NamedFaultScenario
{
    std::string name;
    FaultConfig faults;
};

/**
 * The standard fault scenarios: each single mechanism in isolation
 * (gray-links, ni-stalls, hotspot, dir-pressure) plus "storm", the
 * acceptance scenario combining gray links, NI stalls and
 * directory-cache pressure.
 */
std::vector<NamedFaultScenario> faultScenarios();

} // namespace presets
} // namespace pcsim

#endif // PCSIM_SYSTEM_PRESETS_HH
