/**
 * @file
 * Global address -> home node mapping with SGI first-touch placement.
 *
 * The first node to touch a page becomes its home (Section 3.2: "Data
 * placement is done by SGI's first-touch policy"). A round-robin mode
 * is available for experiments that want placement-independent homes.
 */

#ifndef PCSIM_MEM_MEMORY_MAP_HH
#define PCSIM_MEM_MEMORY_MAP_HH

#include <cstdint>
#include <unordered_map>

#include "src/sim/logging.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Page placement policy. */
enum class Placement
{
    FirstTouch,
    RoundRobin,
};

/** Maps pages of the simulated physical address space to home nodes. */
class MemoryMap
{
  public:
    MemoryMap(unsigned num_nodes, std::uint32_t page_bytes = 16 * 1024,
              Placement policy = Placement::FirstTouch)
        : _numNodes(num_nodes), _pageBytes(page_bytes), _policy(policy)
    {
        if (num_nodes == 0)
            fatal("memory map needs nodes");
        if (num_nodes >= invalidNode)
            fatal("memory map: %u nodes exceed the NodeId range",
                  num_nodes);
        if (page_bytes == 0)
            fatal("memory map needs a nonzero page size");
    }

    std::uint32_t pageBytes() const { return _pageBytes; }

    /**
     * Declare [base, base + size) line-interleaved: line i of the
     * region is homed at node i % numNodes, independent of touch
     * order. The System uses this for the barrier flag region, whose
     * lines all share one page: per-page first-touch would pile every
     * CPU's flag onto one home (a synchronization hot spot), and the
     * winning toucher would depend on event timing. Interleaving is
     * the content-determined analog of each CPU first-touching its
     * own flag line -- flag k lands on node k.
     */
    void
    setInterleavedRegion(Addr base, Addr size, std::uint32_t line_bytes)
    {
        _ilBase = base;
        _ilSize = size;
        _ilLineBytes = line_bytes;
    }

    /**
     * Home node of @p addr; @p toucher claims unplaced pages under
     * first-touch.
     */
    NodeId
    homeOf(Addr addr, NodeId toucher)
    {
        if (addr - _ilBase < _ilSize) {
            return static_cast<NodeId>((addr - _ilBase) / _ilLineBytes %
                                       _numNodes);
        }
        const Addr page = addr / _pageBytes;
        if (_policy == Placement::RoundRobin)
            return static_cast<NodeId>(page % _numNodes);
        if (_frozen) {
            auto it = _pages.find(page);
            if (it == _pages.end())
                panic("homeOf: page of 0x%llx touched after the map "
                      "was frozen (pre-placement missed it)",
                      (unsigned long long)addr);
            return it->second;
        }
        auto [it, inserted] = _pages.try_emplace(page, toucher);
        (void)inserted;
        return it->second;
    }

    /** Home of an already-placed page (panics if unplaced). */
    NodeId
    homeOf(Addr addr) const
    {
        if (addr - _ilBase < _ilSize) {
            return static_cast<NodeId>((addr - _ilBase) / _ilLineBytes %
                                       _numNodes);
        }
        if (_policy == Placement::RoundRobin)
            return static_cast<NodeId>((addr / _pageBytes) % _numNodes);
        auto it = _pages.find(addr / _pageBytes);
        if (it == _pages.end())
            panic("homeOf: page of 0x%llx not placed",
                  (unsigned long long)addr);
        return it->second;
    }

    /** Pre-place a page explicitly (workload initialization). */
    void
    place(Addr addr, NodeId home)
    {
        _pages[addr / _pageBytes] = home;
    }

    std::size_t numPlacedPages() const { return _pages.size(); }

    /**
     * Forbid further first-touch inserts. The System freezes the map
     * after deterministic trace-based pre-placement so concurrent
     * shard workers only ever *read* it; a touch of an unplaced page
     * afterwards is a pre-placement bug and panics.
     */
    void freeze() { _frozen = true; }
    bool frozen() const { return _frozen; }

  private:
    unsigned _numNodes;
    std::uint32_t _pageBytes;
    Placement _policy;
    /** Line-interleaved region (size 0 = none); the subtraction in
     *  homeOf wraps for addr < base, making the range check one
     *  compare. */
    Addr _ilBase = 0;
    Addr _ilSize = 0;
    std::uint32_t _ilLineBytes = 1;
    bool _frozen = false;
    std::unordered_map<Addr, NodeId> _pages;
};

} // namespace pcsim

#endif // PCSIM_MEM_MEMORY_MAP_HH
