/**
 * @file
 * Per-node DRAM model: fixed access latency plus channel occupancy.
 *
 * Table 1: 200 processor cycles latency, four 16-byte-data DDR
 * channels driven by a 500 MHz hub (4 CPU cycles per hub cycle).
 * A 128 B line transfer occupies one channel for 8 hub cycles
 * (128 B / 16 B) = 32 CPU cycles.
 */

#ifndef PCSIM_MEM_DRAM_HH
#define PCSIM_MEM_DRAM_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sim/types.hh"

namespace pcsim
{

/** DRAM timing parameters. */
struct DramConfig
{
    Tick accessLatency = 200;    ///< row access latency (CPU cycles)
    unsigned channels = 4;
    Tick lineOccupancy = 32;     ///< channel busy time per 128 B line
};

/** A node's local memory: models latency and channel contention. */
class DramModel
{
  public:
    explicit DramModel(DramConfig cfg = {})
        : _cfg(cfg), _channelFree(cfg.channels, 0)
    {
    }

    /**
     * Issue an access at @p now; returns the completion tick.
     * Picks the earliest-available channel.
     */
    Tick
    access(Tick now)
    {
        ++_accesses;
        auto it = std::min_element(_channelFree.begin(),
                                   _channelFree.end());
        Tick start = std::max(now, *it);
        *it = start + _cfg.lineOccupancy;
        return start + _cfg.accessLatency;
    }

    std::uint64_t numAccesses() const { return _accesses; }
    const DramConfig &config() const { return _cfg; }

  private:
    DramConfig _cfg;
    std::vector<Tick> _channelFree;
    std::uint64_t _accesses = 0;
};

} // namespace pcsim

#endif // PCSIM_MEM_DRAM_HH
