/**
 * @file
 * SharerSet: the sharing-vector representation used throughout the
 * protocol stack (directory entries, producer tables, Delegate/Undele
 * message payloads, the checker's holder sets).
 *
 * Machines up to 64 nodes fit in one inline word (no allocation on
 * any hot path); larger machines spill extra words into a heap
 * vector. A coarse mode (SGI-Origin-style) maps 2^granularityLog2
 * consecutive nodes onto one bit: membership becomes conservative
 * (adding one node marks its whole group), which trades directory
 * width for spurious invalidations -- the protocol layers iterate
 * with forEachNode() and must tolerate invalidating non-holders.
 *
 * Iteration is always ascending by node id, independent of insertion
 * order, so the message sequences it drives are deterministic and --
 * at granularity 1 -- identical to the historical
 * `for (n = 0; n < numNodes; ++n) if (isSharer(n))` loops.
 */

#ifndef PCSIM_MEM_SHARER_SET_HH
#define PCSIM_MEM_SHARER_SET_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/logging.hh"
#include "src/sim/types.hh"

namespace pcsim
{

class SharerSet
{
  public:
    SharerSet() = default;

    /** An empty set tracking 2^granularity_log2 nodes per bit. */
    explicit SharerSet(unsigned granularity_log2)
        : _shift(static_cast<std::uint8_t>(granularity_log2))
    {
    }

    /** Nodes per bit (1 = exact vector). */
    unsigned granularity() const { return 1u << _shift; }
    unsigned granularityLog2() const { return _shift; }

    /**
     * Change the granularity of an EMPTY set (re-mapping live members
     * would corrupt the vector). DirectoryStore imprints the
     * configured granularity on entry creation; every other set picks
     * it up by copy assignment.
     */
    void
    setGranularityLog2(unsigned granularity_log2)
    {
        if (!empty() && granularity_log2 != _shift)
            panic("SharerSet: cannot change granularity of a non-empty "
                  "set (%u -> %u)",
                  _shift, granularity_log2);
        _shift = static_cast<std::uint8_t>(granularity_log2);
    }

    /** Mark @p n present (coarse: marks its whole node group). */
    void
    add(NodeId n)
    {
        const unsigned s = slotOf(n);
        if (s < bitsPerWord) {
            _w0 |= std::uint64_t{1} << s;
            return;
        }
        const std::size_t w = s / bitsPerWord - 1;
        if (_ext.size() <= w)
            _ext.resize(w + 1, 0);
        _ext[w] |= std::uint64_t{1} << (s % bitsPerWord);
    }

    /**
     * Clear the bit covering @p n. Coarse granularity: clears the
     * whole group -- callers that need node-accurate removal must run
     * at granularity 1 or re-add surviving group members.
     */
    void
    remove(NodeId n)
    {
        const unsigned s = slotOf(n);
        if (s < bitsPerWord) {
            _w0 &= ~(std::uint64_t{1} << s);
            return;
        }
        const std::size_t w = s / bitsPerWord - 1;
        if (w < _ext.size())
            _ext[w] &= ~(std::uint64_t{1} << (s % bitsPerWord));
    }

    /** Is the bit covering @p n set? Coarse: true for any node whose
     *  group contains a member (conservative superset semantics). */
    bool
    contains(NodeId n) const
    {
        const unsigned s = slotOf(n);
        if (s < bitsPerWord)
            return (_w0 >> s) & 1;
        const std::size_t w = s / bitsPerWord - 1;
        return w < _ext.size() && ((_ext[w] >> (s % bitsPerWord)) & 1);
    }

    /** Drop all members; the granularity is preserved. */
    void
    clear()
    {
        _w0 = 0;
        _ext.clear();
    }

    bool
    empty() const
    {
        if (_w0)
            return false;
        for (std::uint64_t w : _ext)
            if (w)
                return false;
        return true;
    }

    /** Number of set bits (groups in coarse mode). */
    unsigned
    countSlots() const
    {
        unsigned c = __builtin_popcountll(_w0);
        for (std::uint64_t w : _ext)
            c += __builtin_popcountll(w);
        return c;
    }

    /** Number of nodes covered by set bits, capped at @p num_nodes
     *  (== countSlots() at granularity 1). */
    unsigned
    countNodes(unsigned num_nodes) const
    {
        unsigned c = 0;
        forEachNode(num_nodes, [&](NodeId) { ++c; });
        return c;
    }

    /**
     * Visit every covered node id below @p num_nodes in ascending
     * order. Coarse granularity expands each set bit into its node
     * group, so the visit sequence is exactly what the invalidation /
     * update fan-out loops need.
     */
    template <typename Fn>
    void
    forEachNode(unsigned num_nodes, Fn &&fn) const
    {
        forEachSlot([&](unsigned s) {
            const std::uint64_t first = std::uint64_t{s} << _shift;
            std::uint64_t last = first + granularity();
            if (last > num_nodes)
                last = num_nodes;
            for (std::uint64_t n = first; n < last; ++n)
                fn(static_cast<NodeId>(n));
        });
    }

    /** Visit every set bit index in ascending order. */
    template <typename Fn>
    void
    forEachSlot(Fn &&fn) const
    {
        visitWord(_w0, 0, fn);
        for (std::size_t w = 0; w < _ext.size(); ++w)
            visitWord(_ext[w], (w + 1) * bitsPerWord, fn);
    }

    /** Set union; granularities must agree (empty sets adopt). */
    SharerSet &
    operator|=(const SharerSet &o)
    {
        if (o._shift != _shift) {
            if (empty())
                _shift = o._shift;
            else if (!o.empty())
                panic("SharerSet: union of mismatched granularities "
                      "(%u vs %u)",
                      _shift, o._shift);
        }
        _w0 |= o._w0;
        if (_ext.size() < o._ext.size())
            _ext.resize(o._ext.size(), 0);
        for (std::size_t w = 0; w < o._ext.size(); ++w)
            _ext[w] |= o._ext[w];
        return *this;
    }

    bool
    operator==(const SharerSet &o) const
    {
        if (_shift != o._shift && !(empty() && o.empty()))
            return false;
        if (_w0 != o._w0)
            return false;
        const std::size_t n = std::max(_ext.size(), o._ext.size());
        for (std::size_t w = 0; w < n; ++w)
            if (extWord(w) != o.extWord(w))
                return false;
        return true;
    }

    bool operator!=(const SharerSet &o) const { return !(*this == o); }

    /** True once the vector has spilled past the inline word. */
    bool usesHeap() const { return !_ext.empty(); }

    /** Hex bit-vector image, e.g. "0x5" (high words first). */
    std::string
    toString() const
    {
        char buf[32];
        std::size_t top = _ext.size();
        while (top > 0 && _ext[top - 1] == 0)
            --top;
        if (top == 0) {
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          (unsigned long long)_w0);
            return buf;
        }
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      (unsigned long long)_ext[top - 1]);
        std::string out = buf;
        for (std::size_t w = top - 1; w-- > 0;) {
            std::snprintf(buf, sizeof(buf), "%016llx",
                          (unsigned long long)_ext[w]);
            out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%016llx",
                      (unsigned long long)_w0);
        out += buf;
        return out;
    }

  private:
    static constexpr unsigned bitsPerWord = 64;

    unsigned slotOf(NodeId n) const { return unsigned{n} >> _shift; }

    std::uint64_t
    extWord(std::size_t w) const
    {
        return w < _ext.size() ? _ext[w] : 0;
    }

    template <typename Fn>
    static void
    visitWord(std::uint64_t word, unsigned base, Fn &&fn)
    {
        while (word) {
            const unsigned b = __builtin_ctzll(word);
            fn(base + b);
            word &= word - 1;
        }
    }

    std::uint64_t _w0 = 0;           ///< slots 0..63 (inline)
    std::vector<std::uint64_t> _ext; ///< slots 64+ (heap, large N)
    std::uint8_t _shift = 0;         ///< log2(nodes per bit)
};

} // namespace pcsim

#endif // PCSIM_MEM_SHARER_SET_HH
