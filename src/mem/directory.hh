/**
 * @file
 * Home-node directory state: backing store and directory cache.
 *
 * The full directory lives in (simulated) DRAM: DirectoryStore keeps
 * one entry per ever-touched line, including the line's memory data
 * (abstracted to a Version, see DESIGN.md). The DirectoryCache holds
 * the most recently used entries (SGI Altix: 8k entries) and is the
 * only place the producer-consumer detector bits exist: they are
 * dropped on eviction (Section 2.2), so there is no memory overhead.
 */

#ifndef PCSIM_MEM_DIRECTORY_HH
#define PCSIM_MEM_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>

#include "src/cache/cache_array.hh"
#include "src/core/pc_detector.hh"
#include "src/mem/sharer_set.hh"
#include "src/net/message.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Global coherence state of a line at its home. */
enum class DirState : std::uint8_t
{
    Unowned,
    Shared,
    Excl,
    BusyRead, ///< intervention outstanding for a read
    BusyExcl, ///< intervention outstanding for a write
    Dele,     ///< directory duties delegated to a producer node
    BusyUpd,  ///< write-update episode open (UpdGrant issued, the
              ///< writer's UpdateWB closes it; policy.hh)
};

inline const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::Unowned: return "Unowned";
      case DirState::Shared: return "Shared";
      case DirState::Excl: return "Excl";
      case DirState::BusyRead: return "BusyRead";
      case DirState::BusyExcl: return "BusyExcl";
      case DirState::Dele: return "Dele";
      case DirState::BusyUpd: return "BusyUpd";
    }
    return "?";
}

/** Protocol-visible directory entry contents. */
struct DirEntry
{
    DirState state = DirState::Unowned;
    SharerSet sharers;          ///< sharing vector of nodes with S copies
    NodeId owner = invalidNode; ///< owner (Excl) or delegatee (Dele)

    /** Pending-transaction bookkeeping while Busy*. */
    NodeId pendingReq = invalidNode;
    MsgType pendingType = MsgType::ReqShared;
    NodeId pendingOwner = invalidNode; ///< intervention target
    std::uint64_t pendingTxnId = 0;    ///< requester's transaction id
    /** The owner's writeback raced our intervention and already
     *  arrived; the episode completes when the IntervNack returns. */
    bool pendingWb = false;

    /** Memory ("DRAM") copy of the line: write-epoch + staleness. */
    Version memVersion = 0;

    bool busy() const
    {
        return state == DirState::BusyRead ||
               state == DirState::BusyExcl ||
               state == DirState::BusyUpd;
    }

    bool isSharer(NodeId n) const { return sharers.contains(n); }
    void addSharer(NodeId n) { sharers.add(n); }
    void removeSharer(NodeId n) { sharers.remove(n); }
    unsigned numSharers() const { return sharers.countSlots(); }
};

/** Directory cache entry: protocol state + the 8 detector bits. */
struct DirCacheEntry
{
    DirEntry dir;
    PcDetectorState detector;
};

/** Full backing directory (conceptually in local DRAM). */
class DirectoryStore
{
  public:
    /**
     * @param expected_lines sizing hint: lines this home is expected
     *        to own over a run. The bucket array is pre-reserved (a
     *        few bytes per bucket -- entries themselves still allocate
     *        on first touch) and the load factor capped, so the table
     *        never rehashes mid-run and pollutes the kernel telemetry
     *        with reallocation pauses.
     * @param sharer_granularity_log2 coarse-vector granularity
     *        imprinted on every entry created here (0 = exact, one
     *        bit per node); copies of these entries carry it through
     *        the rest of the protocol stack.
     */
    explicit DirectoryStore(std::size_t expected_lines = 0,
                            unsigned sharer_granularity_log2 = 0)
        : _granularityLog2(sharer_granularity_log2)
    {
        _entries.max_load_factor(0.7f);
        if (expected_lines)
            _entries.reserve(expected_lines);
    }

    /** Fetch (creating Unowned on first touch). */
    DirEntry &
    lookup(Addr line)
    {
        auto [it, inserted] = _entries.try_emplace(line);
        if (inserted && _granularityLog2)
            it->second.sharers.setGranularityLog2(_granularityLog2);
        return it->second;
    }

    const DirEntry *
    find(Addr line) const
    {
        auto it = _entries.find(line);
        return it == _entries.end() ? nullptr : &it->second;
    }

    void
    writeback(Addr line, const DirEntry &e)
    {
        _entries[line] = e;
    }

    std::size_t size() const { return _entries.size(); }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[line, e] : _entries)
            fn(line, e);
    }

  private:
    unsigned _granularityLog2;
    std::unordered_map<Addr, DirEntry> _entries;
};

/** Directory cache geometry. */
struct DirectoryCacheConfig
{
    std::size_t entries = 8192; ///< SGI Altix-class directory cache
    std::size_t ways = 4;
};

/**
 * The directory cache: fast access to hot directory entries plus the
 * only storage for producer-consumer detector state.
 */
class DirectoryCache
{
  public:
    DirectoryCache(const DirectoryCacheConfig &cfg, DirectoryStore &store,
                   Rng rng)
        : _store(store),
          _array("dircache", cfg.entries / cfg.ways, cfg.ways,
                 /*line_bytes=*/128, ReplPolicy::LRU, rng)
    {
    }

    /**
     * Access the entry for @p line, filling from the store on a miss.
     * @param[out] was_miss set true when the backing store had to be
     *             consulted (caller charges DRAM latency).
     * @param ways_limit when nonzero, refuse to allocate into a set
     *        already holding this many lines (fault injection:
     *        temporarily shrunk associativity; hits are unaffected, so
     *        resident busy entries stay reachable).
     * @return the cached entry, or nullptr if the set is wedged with
     *         unevictable (busy / delegated) entries or capped by
     *         @p ways_limit.
     */
    DirCacheEntry *
    access(Addr line, bool &was_miss, unsigned ways_limit = 0)
    {
        was_miss = false;
        if (DirCacheEntry *hit = _array.find(line))
            return hit;

        was_miss = true;
        if (ways_limit && _array.setOccupancy(line) >= ways_limit)
            return nullptr;
        DirCacheEntry *e = _array.allocate(
            line,
            [](Addr, const DirCacheEntry &v) {
                // Entries mid-transaction hold pending state that must
                // not be lost; keep them resident.
                return !v.dir.busy();
            },
            [this](Addr victim, DirCacheEntry &v) {
                // Detector bits are dropped; protocol state persists.
                _store.writeback(victim, v.dir);
            });
        if (!e)
            return nullptr;
        e->dir = _store.lookup(line);
        e->detector.reset();
        return e;
    }

    /** Peek without fill (nullptr if not resident). */
    DirCacheEntry *peek(Addr line) { return _array.find(line, false); }

    std::size_t occupancy() const { return _array.occupancy(); }

    /** Flush everything back to the store (end of simulation). */
    void
    flush()
    {
        _array.forEach([this](Addr line, DirCacheEntry &e) {
            _store.writeback(line, e.dir);
        });
        _array.clear();
    }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

  private:
    DirectoryStore &_store;
    CacheArray<DirCacheEntry> _array;
};

} // namespace pcsim

#endif // PCSIM_MEM_DIRECTORY_HH
