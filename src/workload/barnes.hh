/**
 * @file
 * Barnes (SPLASH-2 Barnes-Hut) sharing-pattern workload.
 *
 * Hierarchical N-body simulation. Each iteration rebuilds the octree
 * (cells written by their owning processor) and then computes forces
 * (every processor traverses the tree, reading cells). Cells near the
 * root are read by almost everyone; deeper cells by progressively
 * fewer readers -- Table 3's heavy 4+-consumer distribution (61.7%).
 * The reader set of each cell is fixed across iterations, giving the
 * stable per-phase producer-consumer pattern the paper exploits.
 *
 * Paper problem size: 16384 bodies, seed 123.
 */

#ifndef PCSIM_WORKLOAD_BARNES_HH
#define PCSIM_WORKLOAD_BARNES_HH

#include <vector>

#include "src/sim/random.hh"
#include "src/workload/workload.hh"

namespace pcsim
{

/** Barnes generator parameters. */
struct BarnesParams
{
    unsigned cellLines = 768;  ///< octree cells (one line each)
    unsigned bodyLinesPerCpu = 48;
    unsigned iterations = 10;
    unsigned thinkPerCell = 32;
    unsigned thinkPerBody = 130;
    std::uint64_t seed = 123; ///< the paper's seed
    Addr base = 0x50000000ull;
    std::uint32_t lineBytes = 128;
};

/** Build the Barnes trace. */
class BarnesWorkload : public TraceWorkload
{
  public:
    explicit BarnesWorkload(unsigned num_cpus, BarnesParams p = {});

    std::string paperProblemSize() const override
    {
        return "16384 bodies, 123 seed";
    }
    std::string scaledProblemSize() const override;

  private:
    Addr cellLine(unsigned c) const;
    Addr bodyLine(unsigned cpu, unsigned l) const;

    BarnesParams _p;
};

} // namespace pcsim

#endif // PCSIM_WORKLOAD_BARNES_HH
