#include "src/workload/em3d.hh"

#include <algorithm>
#include <sstream>

namespace pcsim
{

Em3dWorkload::Em3dWorkload(unsigned num_cpus, Em3dParams p)
    : TraceWorkload("Em3D", num_cpus), _p(p)
{
    const unsigned vals_per_line = _p.lineBytes / 8;
    _linesPerCpu = (_p.nodesPerCpu + vals_per_line - 1) / vals_per_line;

    Rng rng(_p.seed);

    // Build the dependency structure at line granularity: for each
    // value line on each side, the set of lines it reads. 15% of
    // dependencies reach a neighbour within +/- span.
    // deps[side][cpu][line] -> vector<(cpu, line)> on the other side.
    auto gen_deps = [&](bool side) {
        std::vector<std::vector<std::vector<std::pair<unsigned,
                                                      unsigned>>>>
            deps(num_cpus);
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            deps[cpu].resize(_linesPerCpu);
            for (unsigned l = 0; l < _linesPerCpu; ++l) {
                auto &dv = deps[cpu][l];
                for (unsigned d = 0; d < _p.degree; ++d) {
                    unsigned target_cpu = cpu;
                    if (rng.chance(_p.remoteFraction) && num_cpus > 1) {
                        // Remote link: a neighbour within the span.
                        const unsigned off =
                            1 + static_cast<unsigned>(
                                    rng.below(_p.span));
                        target_cpu = (cpu + off) % num_cpus;
                    }
                    const unsigned tl = static_cast<unsigned>(
                        rng.below(_linesPerCpu));
                    dv.emplace_back(target_cpu, tl);
                }
                std::sort(dv.begin(), dv.end());
                dv.erase(std::unique(dv.begin(), dv.end()), dv.end());
            }
        }
        (void)side;
        return deps;
    };
    const auto e_deps = gen_deps(false); // E reads H
    const auto h_deps = gen_deps(true);  // H reads E

    // Init: first-touch own E and H lines.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        for (unsigned l = 0; l < _linesPerCpu; ++l) {
            t.push_back(MemOp::write(valueLine(false, cpu, l)));
            t.push_back(MemOp::write(valueLine(true, cpu, l)));
        }
        t.push_back(MemOp::barrier());
    }

    // Iterations: E phase, barrier, H phase, barrier.
    for (unsigned it = 0; it < _p.iterations; ++it) {
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            for (unsigned l = 0; l < _linesPerCpu; ++l) {
                for (const auto &[dc, dl] : e_deps[cpu][l])
                    t.push_back(MemOp::read(valueLine(true, dc, dl)));
                t.push_back(MemOp::think(_p.thinkPerLine));
                t.push_back(MemOp::write(valueLine(false, cpu, l)));
            }
            t.push_back(MemOp::barrier());
        }
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            for (unsigned l = 0; l < _linesPerCpu; ++l) {
                for (const auto &[dc, dl] : h_deps[cpu][l])
                    t.push_back(MemOp::read(valueLine(false, dc, dl)));
                t.push_back(MemOp::think(_p.thinkPerLine));
                t.push_back(MemOp::write(valueLine(true, cpu, l)));
            }
            t.push_back(MemOp::barrier());
        }
    }
}

Addr
Em3dWorkload::valueLine(bool h, unsigned cpu, unsigned l) const
{
    const Addr side = h ? 0x4000000ull : 0;
    const Addr per_cpu =
        static_cast<Addr>(_linesPerCpu) * _p.lineBytes;
    // Pad each CPU's block to a page so first touch places it there.
    const Addr stride = ((per_cpu + 0x3fff) / 0x4000) * 0x4000;
    return _p.base + side + cpu * stride + l * _p.lineBytes;
}

std::string
Em3dWorkload::scaledProblemSize() const
{
    std::ostringstream os;
    os << _p.nodesPerCpu * numCpus() * 2 << " nodes, degree "
       << _p.degree << ", " << _p.remoteFraction * 100 << "% remote, "
       << _p.iterations << " iterations";
    return os.str();
}

} // namespace pcsim
