/**
 * @file
 * The benchmark suite of Table 2: factory for all seven applications.
 */

#ifndef PCSIM_WORKLOAD_SUITE_HH
#define PCSIM_WORKLOAD_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "src/workload/workload.hh"

namespace pcsim
{

/** Names in the paper's order: Barnes, Ocean, Em3D, LU, CG, MG,
 *  Appbt. */
std::vector<std::string> suiteNames();

/**
 * Instantiate a benchmark by name.
 * @param scale shrinks/grows iteration counts (1.0 = repo default);
 *        use smaller values for quick sweeps.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       unsigned num_cpus,
                                       double scale = 1.0);

/** Instantiate the whole suite. */
std::vector<std::unique_ptr<Workload>> makeSuite(unsigned num_cpus,
                                                 double scale = 1.0);

} // namespace pcsim

#endif // PCSIM_WORKLOAD_SUITE_HH
