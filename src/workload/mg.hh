/**
 * @file
 * MG (NAS Parallel Benchmarks) sharing-pattern workload.
 *
 * V-cycle multigrid Poisson solver. At the finest grid the boundary
 * exchange is nearest-neighbour (one consumer per line); at coarser
 * levels dependent data lands on different processors and single
 * lines cover many grid points, so lines are consumed by many CPUs
 * (Table 3: 91.6% of MG's patterns have 4+ consumers). The large
 * number of distinct producer-consumer lines across all levels is
 * what makes MG sensitive to the delegate cache size (Figure 11).
 *
 * Paper problem size: 32*32*32 nodes, 4 steps.
 */

#ifndef PCSIM_WORKLOAD_MG_HH
#define PCSIM_WORKLOAD_MG_HH

#include <vector>

#include "src/sim/random.hh"
#include "src/workload/workload.hh"

namespace pcsim
{

/** MG generator parameters. */
struct MgParams
{
    std::vector<unsigned> levelDims = {80, 40, 20, 10};
    /** Init-loop schedule offset: the CPU that first-touches a block
     *  differs from its producer (a real OpenMP-init artifact), so
     *  producers are not the home nodes of their boundary data --
     *  exactly the 3-hop pattern delegation attacks. */
    unsigned allocatorOffset = 3;
    unsigned vCycles = 4;
    unsigned thinkPerLine = 55;
    std::uint64_t seed = 4242;
    Addr base = 0x30000000ull;
    std::uint32_t lineBytes = 128;
};

/** Build the MG trace. */
class MgWorkload : public TraceWorkload
{
  public:
    explicit MgWorkload(unsigned num_cpus, MgParams p = {});

    std::string paperProblemSize() const override
    {
        return "32*32*32 nodes, 4 steps";
    }
    std::string scaledProblemSize() const override;

  private:
    /** Boundary line @p l of @p cpu at @p level. */
    Addr boundaryLine(unsigned level, unsigned cpu, unsigned l) const;

    /** Distinct boundary lines each CPU owns at @p level. */
    unsigned linesPerCpu(unsigned level) const;
    /** How many neighbour CPUs read each boundary line at @p level
     *  (grows as grids coarsen). */
    unsigned readersPerLine(unsigned level) const;

    void emitLevelVisit(unsigned level, unsigned num_cpus,
                        const std::vector<std::vector<unsigned>> &readers);

    MgParams _p;
};

} // namespace pcsim

#endif // PCSIM_WORKLOAD_MG_HH
