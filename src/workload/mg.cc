#include "src/workload/mg.hh"

#include <sstream>

namespace pcsim
{

MgWorkload::MgWorkload(unsigned num_cpus, MgParams p)
    : TraceWorkload("MG", num_cpus), _p(p)
{
    Rng rng(_p.seed);

    // Fixed reader sets: reader_sets[level][cpu] = CPUs that consume
    // cpu's boundary data at that level. Nearest neighbours at the
    // finest grid, progressively wider as the grid coarsens (at the
    // coarsest level everyone reads the handful of remaining lines).
    std::vector<std::vector<std::vector<unsigned>>> reader_sets(
        _p.levelDims.size());
    for (unsigned lv = 0; lv < _p.levelDims.size(); ++lv) {
        reader_sets[lv].resize(num_cpus);
        const unsigned want = readersPerLine(lv);
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &rs = reader_sets[lv][cpu];
            // Deterministic neighbour choice: ring distance 1..want,
            // which matches a blocked 3D decomposition's face/edge
            // neighbour growth closely enough for sharing purposes.
            for (unsigned k = 1; k <= want && k < num_cpus; ++k) {
                unsigned r = (cpu + k) % num_cpus;
                rs.push_back(r);
            }
            (void)rng;
        }
    }

    // Init: the initialization loop's schedule differs from the
    // compute loop's (allocatorOffset), so blocks are first-touched
    // -- and therefore homed -- away from their eventual producer.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        const unsigned owner =
            (cpu + num_cpus - _p.allocatorOffset % num_cpus) % num_cpus;
        for (unsigned lv = 0; lv < _p.levelDims.size(); ++lv) {
            for (unsigned l = 0; l < linesPerCpu(lv); ++l)
                t.push_back(MemOp::write(boundaryLine(lv, owner, l)));
        }
        t.push_back(MemOp::barrier());
    }

    // V-cycles: restrict down the levels, then prolongate back up.
    for (unsigned vc = 0; vc < _p.vCycles; ++vc) {
        for (unsigned lv = 0; lv < _p.levelDims.size(); ++lv)
            emitLevelVisit(lv, num_cpus, reader_sets[lv]);
        for (unsigned lv = _p.levelDims.size(); lv-- > 1;)
            emitLevelVisit(lv - 1, num_cpus, reader_sets[lv - 1]);
    }
}

void
MgWorkload::emitLevelVisit(
    unsigned level, unsigned num_cpus,
    const std::vector<std::vector<unsigned>> &readers)
{
    const unsigned lines = linesPerCpu(level);
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        // Consume: read the boundary lines of every producer whose
        // reader set includes us.
        for (unsigned prod = 0; prod < num_cpus; ++prod) {
            if (prod == cpu)
                continue;
            bool reads = false;
            for (unsigned r : readers[prod])
                reads |= (r == cpu);
            if (!reads)
                continue;
            for (unsigned l = 0; l < lines; ++l)
                t.push_back(MemOp::read(boundaryLine(level, prod, l)));
        }
        t.push_back(MemOp::think(_p.thinkPerLine * lines));
        t.push_back(MemOp::barrier());
    }
    // Smooth: update own boundary (separated from the gathers so the
    // per-line pattern stays W (R)+ W (R)+).
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        for (unsigned l = 0; l < lines; ++l)
            t.push_back(MemOp::write(boundaryLine(level, cpu, l)));
        t.push_back(MemOp::barrier());
    }
}

unsigned
MgWorkload::linesPerCpu(unsigned level) const
{
    // Boundary surface of a 3D block shrinks with the level dimension:
    // ~ (D/4)*(D/2) points per face * 8 B / line.
    const unsigned d = _p.levelDims.at(level);
    const unsigned face_points = (d / 4) * (d / 2);
    const unsigned bytes = face_points * 8;
    return std::max(1u, bytes / _p.lineBytes);
}

unsigned
MgWorkload::readersPerLine(unsigned level) const
{
    // Even at the finest grid the 27-point stencil pulls face, edge
    // and corner neighbours (Table 3: almost no single-consumer MG
    // lines); coarser levels spread toward everyone.
    const unsigned d = _p.levelDims.at(level);
    if (d >= 80)
        return 4;
    if (d >= 40)
        return 8;
    if (d >= 20)
        return 12;
    return 15;
}

Addr
MgWorkload::boundaryLine(unsigned level, unsigned cpu, unsigned l) const
{
    const Addr per_level = 0x1000000ull;
    const Addr per_cpu = 0x10000ull; // 64 KB, page aligned
    return _p.base + level * per_level + cpu * per_cpu +
           static_cast<Addr>(l) * _p.lineBytes;
}

std::string
MgWorkload::scaledProblemSize() const
{
    std::ostringstream os;
    os << _p.levelDims.front() << "^3 finest grid, "
       << _p.levelDims.size() << " levels, " << _p.vCycles
       << " V-cycles";
    return os.str();
}

} // namespace pcsim
