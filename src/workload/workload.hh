/**
 * @file
 * Workload abstraction: per-CPU streams of memory operations.
 *
 * Workloads model the sharing pattern of the paper's benchmarks
 * (Table 2): they emit reads/writes over a simulated shared address
 * space, think time for the compute between references, and barrier
 * synchronizations that are executed as real coherence traffic by the
 * BarrierDriver.
 *
 * Convention: every workload begins with an initialization phase (each
 * CPU first-touches its own data) terminated by the first barrier; the
 * System resets statistics when that barrier releases, so reported
 * numbers cover the parallel phase only (Section 3.2).
 */

#ifndef PCSIM_WORKLOAD_WORKLOAD_HH
#define PCSIM_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/**
 * Fork the per-node RNG stream for @p node from a generator's (or the
 * machine's) root stream.
 *
 * Callers MUST fork in ascending node order starting at node 0: the
 * helper consumes exactly one fork() from @p root per call, which is
 * the sequence every pre-helper component used -- deriving streams any
 * other way would shift every downstream draw and break golden
 * byte-identity. The @p node argument documents intent at the call
 * site (and keeps callers honest about iteration order); it does not
 * enter the stream derivation.
 */
inline Rng
forkNodeRng(Rng &root, NodeId node)
{
    (void)node;
    return root.fork();
}

/** One operation in a CPU's stream. */
struct MemOp
{
    enum class Kind : std::uint8_t
    {
        Read,
        Write,
        Think,
        Barrier,
    };

    Kind kind = Kind::Think;
    Addr addr = 0;
    std::uint32_t cycles = 0; ///< think duration

    static MemOp read(Addr a) { return {Kind::Read, a, 0}; }
    static MemOp write(Addr a) { return {Kind::Write, a, 0}; }
    static MemOp think(std::uint32_t c) { return {Kind::Think, 0, c}; }
    static MemOp barrier() { return {Kind::Barrier, 0, 0}; }
};

/** Abstract per-CPU operation source. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const std::string &name() const = 0;
    virtual unsigned numCpus() const = 0;

    /** Pull the next op for @p cpu; false when the stream is done. */
    virtual bool next(unsigned cpu, MemOp &op) = 0;

    /** Rewind all streams (for running multiple configurations). */
    virtual void reset() = 0;

    /** The paper's problem size (Table 2), for reporting. */
    virtual std::string paperProblemSize() const { return ""; }
    /** Our scaled problem size, for reporting. */
    virtual std::string scaledProblemSize() const { return ""; }

    /**
     * Full operation stream of @p cpu when the workload is
     * trace-backed, else null. The System scans these streams before
     * a run to pre-compute first-touch page placement (round-robin
     * across CPUs by op index, the schedule-independent equivalent of
     * touch order), so shard workers never race on the memory map.
     */
    virtual const std::vector<MemOp> *
    cpuOps(unsigned cpu) const
    {
        (void)cpu;
        return nullptr;
    }
};

/** Workload backed by pre-generated per-CPU traces. */
class TraceWorkload : public Workload
{
  public:
    TraceWorkload(std::string name, unsigned num_cpus)
        : _name(std::move(name)), _trace(num_cpus), _pos(num_cpus, 0)
    {
    }

    const std::string &name() const override { return _name; }
    unsigned numCpus() const override
    {
        return static_cast<unsigned>(_trace.size());
    }

    bool
    next(unsigned cpu, MemOp &op) override
    {
        auto &t = _trace.at(cpu);
        if (_pos[cpu] >= t.size())
            return false;
        op = t[_pos[cpu]++];
        return true;
    }

    void
    reset() override
    {
        for (auto &p : _pos)
            p = 0;
    }

    const std::vector<MemOp> *
    cpuOps(unsigned cpu) const override
    {
        return &_trace.at(cpu);
    }

    /** Total operations across all CPUs (reporting). */
    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &t : _trace)
            n += t.size();
        return n;
    }

  protected:
    std::vector<MemOp> &cpuTrace(unsigned cpu) { return _trace.at(cpu); }

    std::string _name;
    std::vector<std::vector<MemOp>> _trace;
    std::vector<std::size_t> _pos;
};

} // namespace pcsim

#endif // PCSIM_WORKLOAD_WORKLOAD_HH
