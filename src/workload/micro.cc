#include "src/workload/micro.hh"

namespace pcsim
{

ProducerConsumerMicro::ProducerConsumerMicro(unsigned num_cpus, Params p)
    : TraceWorkload("PCmicro", num_cpus), _p(p)
{
    // Init: the designated home CPU first-touches the data.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        if (cpu == _p.homeCpu) {
            for (unsigned l = 0; l < _p.lines; ++l)
                t.push_back(MemOp::write(line(l)));
        }
        t.push_back(MemOp::barrier());
    }

    for (unsigned it = 0; it < _p.iterations; ++it) {
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            if (cpu == _p.producer) {
                for (unsigned l = 0; l < _p.lines; ++l) {
                    t.push_back(MemOp::think(_p.thinkCycles));
                    t.push_back(MemOp::write(line(l)));
                }
            }
            t.push_back(MemOp::barrier());
            // Consumers are the CPUs right after the producer.
            const unsigned dist =
                (cpu + num_cpus - _p.producer) % num_cpus;
            if (dist >= 1 && dist <= _p.numConsumers) {
                for (unsigned l = 0; l < _p.lines; ++l) {
                    t.push_back(MemOp::read(line(l)));
                    t.push_back(MemOp::think(_p.thinkCycles));
                }
            }
            t.push_back(MemOp::barrier());
        }
    }
}

MigratoryMicro::MigratoryMicro(unsigned num_cpus, Params p)
    : TraceWorkload("Migratory", num_cpus), _p(p)
{
    auto line = [&](unsigned l) {
        return _p.base + static_cast<Addr>(l) * _p.lineBytes;
    };

    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        if (cpu == 0) {
            for (unsigned l = 0; l < _p.lines; ++l)
                t.push_back(MemOp::write(line(l)));
        }
        t.push_back(MemOp::barrier());
    }

    // Token-passing: in iteration i, CPU (i % P) read-modify-writes
    // every line; barriers serialize the hand-off.
    for (unsigned it = 0; it < _p.iterations; ++it) {
        const unsigned turn = it % num_cpus;
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            if (cpu == turn) {
                for (unsigned l = 0; l < _p.lines; ++l) {
                    t.push_back(MemOp::read(line(l)));
                    t.push_back(MemOp::think(_p.thinkCycles));
                    t.push_back(MemOp::write(line(l)));
                }
            }
            t.push_back(MemOp::barrier());
        }
    }
}

RandomMicro::RandomMicro(unsigned num_cpus, Params p)
    : TraceWorkload("Random", num_cpus), _p(p)
{
    auto line = [&](unsigned l) {
        return _p.base + static_cast<Addr>(l) * _p.lineBytes;
    };

    Rng rng(_p.seed);

    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        if (cpu == 0) {
            for (unsigned l = 0; l < _p.lines; ++l)
                t.push_back(MemOp::write(line(l)));
        }
        t.push_back(MemOp::barrier());
    }

    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        Rng crng = forkNodeRng(rng, static_cast<NodeId>(cpu));
        for (unsigned i = 0; i < _p.opsPerCpu; ++i) {
            const unsigned l =
                static_cast<unsigned>(crng.below(_p.lines));
            if (crng.chance(_p.writeFraction))
                t.push_back(MemOp::write(line(l)));
            else
                t.push_back(MemOp::read(line(l)));
            if (_p.maxThink)
                t.push_back(MemOp::think(static_cast<std::uint32_t>(
                    crng.below(_p.maxThink) + 1)));
            if (_p.barrierEvery && (i + 1) % _p.barrierEvery == 0)
                t.push_back(MemOp::barrier());
        }
        t.push_back(MemOp::barrier());
    }
}

} // namespace pcsim
