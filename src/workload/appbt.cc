#include "src/workload/appbt.hh"

#include <sstream>

#include "src/sim/logging.hh"

namespace pcsim
{

AppbtWorkload::AppbtWorkload(unsigned num_cpus, AppbtParams p)
    : TraceWorkload("Appbt", num_cpus), _p(p)
{
    if (_p.procs[0] * _p.procs[1] * _p.procs[2] != num_cpus)
        fatal("Appbt processor grid does not match CPU count");

    // Init: first-touch own faces for all three dimensions.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        for (unsigned d = 0; d < 3; ++d) {
            for (unsigned l = 0; l < faceLines(d); ++l)
                t.push_back(MemOp::write(faceLine(cpu, d, l)));
        }
        t.push_back(MemOp::barrier());
    }

    // Timesteps: one sweep per dimension. The consume phase reads the
    // upstream neighbour's face (produced last sweep); after a
    // barrier the produce phase writes this subcube's face. The
    // split mirrors BT's forward-elimination data dependence.
    for (unsigned it = 0; it < _p.iterations; ++it) {
        for (unsigned d = 0; d < 3; ++d) {
            for (unsigned x = 0; x < _p.procs[0]; ++x) {
                for (unsigned y = 0; y < _p.procs[1]; ++y) {
                    for (unsigned z = 0; z < _p.procs[2]; ++z) {
                        const unsigned cpu = cpuAt(x, y, z);
                        auto &t = cpuTrace(cpu);
                        // Upstream neighbour along dimension d.
                        unsigned c[3] = {x, y, z};
                        bool has_up = c[d] > 0;
                        unsigned up = 0;
                        if (has_up) {
                            unsigned u[3] = {x, y, z};
                            --u[d];
                            up = cpuAt(u[0], u[1], u[2]);
                        }
                        const unsigned lines = faceLines(d);
                        for (unsigned l = 0; l < lines; ++l) {
                            if (has_up)
                                t.push_back(
                                    MemOp::read(faceLine(up, d, l)));
                            t.push_back(
                                MemOp::think(_p.thinkPerLine));
                        }
                        t.push_back(MemOp::barrier());
                        for (unsigned l = 0; l < lines; ++l)
                            t.push_back(
                                MemOp::write(faceLine(cpu, d, l)));
                        t.push_back(MemOp::barrier());
                    }
                }
            }
        }
    }
}

unsigned
AppbtWorkload::faceLines(unsigned dim) const
{
    // Face area orthogonal to `dim`, with `vars` 8-byte variables per
    // point.
    const unsigned bx = _p.cubeDim / _p.procs[0];
    const unsigned by = _p.cubeDim / _p.procs[1];
    const unsigned bz = _p.cubeDim / _p.procs[2];
    unsigned area;
    if (dim == 0)
        area = by * bz;
    else if (dim == 1)
        area = bx * bz;
    else
        area = bx * by;
    return std::max(1u, area * _p.vars * 8 / _p.lineBytes);
}

Addr
AppbtWorkload::faceLine(unsigned cpu, unsigned dim, unsigned l) const
{
    const Addr per_dim = 0x4000000ull;
    const Addr per_cpu = 0x80000ull; // 512 KB, page aligned
    return _p.base + dim * per_dim + cpu * per_cpu +
           static_cast<Addr>(l) * _p.lineBytes;
}

unsigned
AppbtWorkload::cpuAt(unsigned x, unsigned y, unsigned z) const
{
    return (x * _p.procs[1] + y) * _p.procs[2] + z;
}

std::string
AppbtWorkload::scaledProblemSize() const
{
    std::ostringstream os;
    os << _p.cubeDim << "^3 cube, " << _p.vars << " vars, "
       << _p.iterations << " timesteps";
    return os.str();
}

} // namespace pcsim
