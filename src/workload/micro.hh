/**
 * @file
 * Micro workloads: directed sharing patterns for tests, examples and
 * ablation benchmarks.
 */

#ifndef PCSIM_WORKLOAD_MICRO_HH
#define PCSIM_WORKLOAD_MICRO_HH

#include "src/sim/random.hh"
#include "src/workload/workload.hh"

namespace pcsim
{

/**
 * The canonical producer-consumer pattern of Figure 1: one producer
 * writes a set of lines each iteration; a fixed group of consumers
 * reads every line after each write.
 */
class ProducerConsumerMicro : public TraceWorkload
{
  public:
    struct Params
    {
        unsigned producer = 1;    ///< producer CPU (!= home by default)
        unsigned numConsumers = 2;
        unsigned lines = 8;
        unsigned iterations = 50;
        unsigned thinkCycles = 20;
        Addr base = 0x60000000ull;
        std::uint32_t lineBytes = 128;
        /** CPU whose first touch homes the data (0 => home != producer,
         *  exercising the 3-hop base case). */
        unsigned homeCpu = 0;
    };

    explicit ProducerConsumerMicro(unsigned num_cpus)
        : ProducerConsumerMicro(num_cpus, Params{})
    {
    }
    ProducerConsumerMicro(unsigned num_cpus, Params p);

    Addr line(unsigned i) const
    {
        return _p.base + static_cast<Addr>(i) * _p.lineBytes;
    }

  private:
    Params _p;
};

/**
 * Migratory sharing: CPUs take turns read-modify-writing the same
 * lines. The PC detector must NOT classify this as producer-consumer
 * (different writers), so delegation stays off.
 */
class MigratoryMicro : public TraceWorkload
{
  public:
    struct Params
    {
        unsigned lines = 4;
        unsigned iterations = 40;
        unsigned thinkCycles = 20;
        Addr base = 0x64000000ull;
        std::uint32_t lineBytes = 128;
    };

    explicit MigratoryMicro(unsigned num_cpus)
        : MigratoryMicro(num_cpus, Params{})
    {
    }
    MigratoryMicro(unsigned num_cpus, Params p);

  private:
    Params _p;
};

/**
 * Random coherence traffic: every CPU performs random reads/writes
 * over a small shared line pool. The pcsim equivalent of the Ruby
 * random tester -- run with the checker enabled it is a protocol
 * fuzzer (races, NACK paths, delegation churn).
 */
class RandomMicro : public TraceWorkload
{
  public:
    struct Params
    {
        unsigned lines = 24;
        unsigned opsPerCpu = 400;
        double writeFraction = 0.4;
        unsigned maxThink = 30;
        std::uint64_t seed = 99;
        Addr base = 0x68000000ull;
        std::uint32_t lineBytes = 128;
        unsigned barrierEvery = 64; ///< 0 = no mid-run barriers
    };

    explicit RandomMicro(unsigned num_cpus)
        : RandomMicro(num_cpus, Params{})
    {
    }
    RandomMicro(unsigned num_cpus, Params p);

  private:
    Params _p;
};

} // namespace pcsim

#endif // PCSIM_WORKLOAD_MICRO_HH
