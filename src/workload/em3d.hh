/**
 * @file
 * Em3D (Split-C) sharing-pattern workload.
 *
 * Electromagnetic wave propagation on a bipartite graph of E and H
 * nodes. Two knobs govern producer-consumer sharing (Section 3.2):
 * "distribution span indicates how many consumers each producer will
 * have while remote links controls the probability that the producer
 * and consumer are on different nodes". The paper uses span 5 and 15%
 * remote links. Every iteration updates all E nodes from their H
 * dependencies, barriers, then all H nodes from E dependencies,
 * barriers -- the two barriers per iteration are what produce the
 * "reload flurry" this application is known for.
 *
 * Paper problem size: 38400 nodes, degree 5, 15% remote.
 */

#ifndef PCSIM_WORKLOAD_EM3D_HH
#define PCSIM_WORKLOAD_EM3D_HH

#include <vector>

#include "src/sim/random.hh"
#include "src/workload/workload.hh"

namespace pcsim
{

/** Em3D generator parameters. */
struct Em3dParams
{
    unsigned nodesPerCpu = 512; ///< E nodes (and H nodes) per CPU
    unsigned degree = 5;
    unsigned span = 5;          ///< remote deps fall on cpu +/- span
    double remoteFraction = 0.15;
    unsigned iterations = 20;
    unsigned thinkPerLine = 90;
    std::uint64_t seed = 12345;
    Addr base = 0x20000000ull;
    std::uint32_t lineBytes = 128;
};

/** Build the Em3D trace. */
class Em3dWorkload : public TraceWorkload
{
  public:
    explicit Em3dWorkload(unsigned num_cpus, Em3dParams p = {});

    std::string paperProblemSize() const override
    {
        return "38400 nodes, degree 5, 15% remote";
    }
    std::string scaledProblemSize() const override;

  private:
    /** Line of value-line @p l of @p cpu on side @p h (0 = E, 1 = H). */
    Addr valueLine(bool h, unsigned cpu, unsigned l) const;

    Em3dParams _p;
    unsigned _linesPerCpu;
};

} // namespace pcsim

#endif // PCSIM_WORKLOAD_EM3D_HH
