/**
 * @file
 * Ocean (SPLASH-2, contiguous partitions) sharing-pattern workload.
 *
 * Large-scale ocean movement simulation: a 2D grid relaxed
 * iteratively, row-block partitioned. Processors communicate only
 * with their immediate neighbours, so lines in boundary rows exhibit
 * single-producer / single-consumer sharing (Table 3: 97.7% of
 * Ocean's producer-consumer patterns have exactly one consumer).
 *
 * Paper problem size: 258x258 array, 1e-7 error tolerance. Scaled
 * default here: 130x130, fixed iteration count (see DESIGN.md on
 * scaling).
 */

#ifndef PCSIM_WORKLOAD_OCEAN_HH
#define PCSIM_WORKLOAD_OCEAN_HH

#include "src/workload/workload.hh"

namespace pcsim
{

/** Ocean generator parameters. */
struct OceanParams
{
    unsigned gridDim = 130;     ///< N x N grid of 8-byte elements
    unsigned iterations = 20;
    unsigned thinkPerLine = 500; ///< compute cycles per owned line
    Addr base = 0x10000000ull;
    std::uint32_t lineBytes = 128;
};

/** Build the Ocean trace for @p num_cpus CPUs. */
class OceanWorkload : public TraceWorkload
{
  public:
    explicit OceanWorkload(unsigned num_cpus, OceanParams p = {});

    std::string paperProblemSize() const override
    {
        return "258*258 array, 1e-7 error tolerance";
    }
    std::string scaledProblemSize() const override;

  private:
    Addr rowLine(unsigned row, unsigned col_line) const;

    OceanParams _p;
    unsigned _linesPerRow;
};

} // namespace pcsim

#endif // PCSIM_WORKLOAD_OCEAN_HH
