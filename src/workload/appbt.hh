/**
 * @file
 * Appbt (NAS Parallel Benchmarks BT) sharing-pattern workload.
 *
 * Block-tridiagonal 3D stencil: the cube is divided into subcubes,
 * one per processor, and Gaussian elimination sweeps run along each
 * of the three dimensions, exchanging whole faces of 5-variable cell
 * state with the facing neighbour. Faces are large: the per-consumer
 * pushed working set exceeds a 32 KB RAC, which is why Appbt is the
 * RAC-size-limited application (Figure 12).
 *
 * Paper problem size: 16*16*16 nodes, 60 timesteps.
 */

#ifndef PCSIM_WORKLOAD_APPBT_HH
#define PCSIM_WORKLOAD_APPBT_HH

#include <array>

#include "src/workload/workload.hh"

namespace pcsim
{

/** Appbt generator parameters. */
struct AppbtParams
{
    unsigned cubeDim = 48;   ///< grid points per edge
    unsigned vars = 5;       ///< variables per point
    unsigned iterations = 14;
    unsigned thinkPerLine = 38;
    Addr base = 0x40000000ull;
    std::uint32_t lineBytes = 128;
    /** Processor grid (must multiply to the CPU count). */
    std::array<unsigned, 3> procs = {4, 2, 2};
};

/** Build the Appbt trace. */
class AppbtWorkload : public TraceWorkload
{
  public:
    explicit AppbtWorkload(unsigned num_cpus, AppbtParams p = {});

    std::string paperProblemSize() const override
    {
        return "16*16*16 nodes, 60 timesteps";
    }
    std::string scaledProblemSize() const override;

  private:
    /** Lines of the face of @p cpu that points along dimension @p dim
     *  (both directions use the same storage: one produced face per
     *  dimension per subcube). */
    unsigned faceLines(unsigned dim) const;
    Addr faceLine(unsigned cpu, unsigned dim, unsigned l) const;

    /** CPU at processor-grid coordinates. */
    unsigned cpuAt(unsigned x, unsigned y, unsigned z) const;

    AppbtParams _p;
};

} // namespace pcsim

#endif // PCSIM_WORKLOAD_APPBT_HH
