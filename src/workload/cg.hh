/**
 * @file
 * CG (NAS Parallel Benchmarks) sharing-pattern workload.
 *
 * Conjugate-gradient eigenvalue estimation. Three properties limit
 * the mechanisms' benefit here (Section 3.2) and are all modelled:
 *  1. producer-consumer sharing only in some phases (the shared p
 *     vector during the sparse matvec),
 *  2. heavy false sharing in the sparse representation: segment
 *     boundary lines are written by two CPUs, which the conservative
 *     line-grained detector correctly rejects,
 *  3. compute dominates (large think time), so removing remote misses
 *     buys little.
 * Each p-vector line is read by many row owners, so detected patterns
 * are overwhelmingly 4+ consumers (Table 3: 99.7%).
 *
 * Paper problem size: 1400 nodes, 15 iterations.
 */

#ifndef PCSIM_WORKLOAD_CG_HH
#define PCSIM_WORKLOAD_CG_HH

#include <vector>

#include "src/sim/random.hh"
#include "src/workload/workload.hh"

namespace pcsim
{

/** CG generator parameters. */
struct CgParams
{
    unsigned vectorLines = 64;   ///< lines of the shared p vector
    unsigned readsPerCpu = 40;   ///< matvec gathers per CPU per iter
    unsigned iterations = 15;
    unsigned thinkPerGather = 120;
    /** Local compute per iteration (dot products, local matvec rows):
     *  CG is compute-bound, so remote misses are a minor cost
     *  (Section 3.2: "remote misses are not a major performance
     *  bottleneck"). */
    unsigned localComputeCycles = 170000;
    std::uint64_t seed = 777;
    Addr base = 0x28000000ull;
    std::uint32_t lineBytes = 128;
};

/** Build the CG trace. */
class CgWorkload : public TraceWorkload
{
  public:
    explicit CgWorkload(unsigned num_cpus, CgParams p = {});

    std::string paperProblemSize() const override
    {
        return "1400 nodes, 15 iterations";
    }
    std::string scaledProblemSize() const override;

  private:
    Addr pLine(unsigned l) const;
    Addr qLine(unsigned cpu, unsigned l) const;
    Addr reductionLine() const;

    CgParams _p;
};

} // namespace pcsim

#endif // PCSIM_WORKLOAD_CG_HH
