#include "src/workload/serving.hh"

#include <algorithm>
#include <cmath>

namespace pcsim
{

namespace
{

/**
 * Precomputed Zipf CDF over @p n ranks with skew @p s: draw a uniform
 * double and binary-search the table. Rank r (0-based) has
 * probability ~ 1/(r+1)^s.
 */
class ZipfTable
{
  public:
    ZipfTable(unsigned n, double s) : _cdf(n)
    {
        double sum = 0.0;
        for (unsigned r = 0; r < n; ++r) {
            sum += 1.0 / std::pow(double(r + 1), s);
            _cdf[r] = sum;
        }
        for (auto &c : _cdf)
            c /= sum;
    }

    unsigned
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        const auto it =
            std::lower_bound(_cdf.begin(), _cdf.end(), u);
        return static_cast<unsigned>(it == _cdf.end()
                                         ? _cdf.size() - 1
                                         : it - _cdf.begin());
    }

  private:
    std::vector<double> _cdf;
};

} // namespace

KvServingWorkload::KvServingWorkload(unsigned num_cpus, Params p)
    : TraceWorkload("KVServe", num_cpus), _p(p)
{
    const ZipfTable zipf(_p.keyLines, _p.zipfSkew);

    // Init: keys striped across nodes; node n first-touches key lines
    // with k % numCpus == n, so homes are spread like a real store's
    // shards.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        for (unsigned k = cpu; k < _p.keyLines; k += num_cpus)
            t.push_back(MemOp::write(keyLine(k)));
        t.push_back(MemOp::barrier());
    }

    // Serving phase: every node runs an independent request stream.
    // Forks MUST happen in ascending node order (see forkNodeRng).
    Rng root(_p.seed);
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        Rng rng = forkNodeRng(root, static_cast<NodeId>(cpu));
        for (unsigned i = 0; i < _p.requestsPerNode; ++i) {
            const unsigned k = zipf.sample(rng);
            if (rng.chance(_p.writeFraction))
                t.push_back(MemOp::write(keyLine(k)));
            else
                t.push_back(MemOp::read(keyLine(k)));
            if (_p.thinkCycles)
                t.push_back(MemOp::think(_p.thinkCycles));
        }
        t.push_back(MemOp::barrier());
    }
}

WorkQueueWorkload::WorkQueueWorkload(unsigned num_cpus, Params p)
    : TraceWorkload("WorkQueue", num_cpus), _p(p)
{
    _producers = _p.producers ? _p.producers
                              : std::max(1u, num_cpus / 4);
    if (_producers >= num_cpus)
        _producers = num_cpus > 1 ? num_cpus - 1 : 1;
    const unsigned consumers =
        num_cpus > _producers ? num_cpus - _producers : 1;

    auto slotLine = [&](unsigned s) {
        return _p.base + static_cast<Addr>(s) * _p.lineBytes;
    };
    // Per-producer queue-head lines live after the slot ring; each is
    // written by one producer and read by every consumer -- exactly the
    // one-producer/many-consumer line the adaptive protocol targets.
    auto headLine = [&](unsigned prod) {
        return _p.base +
               static_cast<Addr>(_p.queueLines + prod) * _p.lineBytes;
    };
    // Per-consumer private ack lines after the heads.
    auto ackLine = [&](unsigned c) {
        return _p.base + static_cast<Addr>(_p.queueLines + _producers +
                                           c) *
                             _p.lineBytes;
    };

    // Init: producers first-touch their slots and head; consumers their
    // ack line.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        if (cpu < _producers) {
            for (unsigned s = cpu; s < _p.queueLines; s += _producers)
                t.push_back(MemOp::write(slotLine(s)));
            t.push_back(MemOp::write(headLine(cpu)));
        } else {
            t.push_back(MemOp::write(ackLine(cpu - _producers)));
        }
        t.push_back(MemOp::barrier());
    }

    for (unsigned round = 0; round < _p.rounds; ++round) {
        // Produce: each producer refills its slots and publishes its
        // head.
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            if (cpu < _producers) {
                for (unsigned s = cpu; s < _p.queueLines;
                     s += _producers) {
                    t.push_back(MemOp::think(_p.thinkCycles));
                    t.push_back(MemOp::write(slotLine(s)));
                }
                t.push_back(MemOp::write(headLine(cpu)));
            }
            t.push_back(MemOp::barrier());
        }
        // Consume: each consumer polls every head, drains its share of
        // the ring, and acks privately.
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            if (cpu >= _producers) {
                const unsigned c = cpu - _producers;
                for (unsigned prod = 0; prod < _producers; ++prod)
                    t.push_back(MemOp::read(headLine(prod)));
                for (unsigned s = c; s < _p.queueLines; s += consumers) {
                    t.push_back(MemOp::read(slotLine(s)));
                    t.push_back(MemOp::think(_p.thinkCycles));
                }
                t.push_back(MemOp::write(ackLine(c)));
            }
            t.push_back(MemOp::barrier());
        }
    }
}

RcuWorkload::RcuWorkload(unsigned num_cpus, Params p)
    : TraceWorkload("RCU", num_cpus), _p(p)
{
    auto line = [&](unsigned l) {
        return _p.base + static_cast<Addr>(l) * _p.lineBytes;
    };

    // Init: the writer (node 0) first-touches the shared structure.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        if (cpu == 0) {
            for (unsigned l = 0; l < _p.sharedLines; ++l)
                t.push_back(MemOp::write(line(l)));
        }
        t.push_back(MemOp::barrier());
    }

    // Forks MUST happen in ascending node order (see forkNodeRng).
    Rng root(_p.seed);
    std::vector<Rng> rngs;
    rngs.reserve(num_cpus);
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu)
        rngs.push_back(forkNodeRng(root, static_cast<NodeId>(cpu)));

    unsigned window = 0;
    for (unsigned round = 0; round < _p.rounds; ++round) {
        const bool writeRound =
            _p.writeEvery && round % _p.writeEvery == 0;
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            if (cpu == 0 && writeRound) {
                // Grace period: update a rotating window of lines.
                for (unsigned i = 0; i < _p.linesPerWrite; ++i)
                    t.push_back(MemOp::write(
                        line((window + i) % _p.sharedLines)));
            }
            t.push_back(MemOp::barrier());
            // Read side: every node walks a random subset.
            for (unsigned i = 0; i < _p.readsPerNode; ++i) {
                t.push_back(MemOp::read(line(static_cast<unsigned>(
                    rngs[cpu].below(_p.sharedLines)))));
                if (_p.thinkCycles)
                    t.push_back(MemOp::think(_p.thinkCycles));
            }
            t.push_back(MemOp::barrier());
        }
        if (writeRound)
            window = (window + _p.linesPerWrite) % _p.sharedLines;
    }
}

PubSubWorkload::PubSubWorkload(unsigned num_cpus, Params p)
    : TraceWorkload("PubSub", num_cpus), _p(p)
{
    if (_p.groups == 0)
        _p.groups = 1;

    // Init: the publisher (node 0) first-touches every topic line.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        if (cpu == 0) {
            for (unsigned g = 0; g < _p.groups; ++g)
                for (unsigned l = 0; l < _p.linesPerTopic; ++l)
                    t.push_back(MemOp::write(topicLine(g, l)));
        }
        t.push_back(MemOp::barrier());
    }

    // Each round: publish every topic, then every subscriber reads its
    // group's topic -- PCmicro's pattern generalized to K groups.
    for (unsigned round = 0; round < _p.rounds; ++round) {
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            if (cpu == 0) {
                for (unsigned g = 0; g < _p.groups; ++g)
                    for (unsigned l = 0; l < _p.linesPerTopic; ++l) {
                        t.push_back(MemOp::think(_p.thinkCycles));
                        t.push_back(MemOp::write(topicLine(g, l)));
                    }
            }
            t.push_back(MemOp::barrier());
            if (cpu != 0) {
                const unsigned g = (cpu - 1) % _p.groups;
                for (unsigned l = 0; l < _p.linesPerTopic; ++l) {
                    t.push_back(MemOp::read(topicLine(g, l)));
                    t.push_back(MemOp::think(_p.thinkCycles));
                }
            }
            t.push_back(MemOp::barrier());
        }
    }
}

std::vector<std::string>
servingNames()
{
    return {"KVServe", "WorkQueue", "RCU", "PubSub"};
}

} // namespace pcsim
