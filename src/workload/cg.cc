#include "src/workload/cg.hh"

#include <sstream>

namespace pcsim
{

CgWorkload::CgWorkload(unsigned num_cpus, CgParams p)
    : TraceWorkload("CG", num_cpus), _p(p)
{
    Rng rng(_p.seed);

    const unsigned lines_per_cpu = _p.vectorLines / num_cpus;

    // Fixed sparse structure: the p lines each CPU gathers during the
    // matvec (uniform over the whole vector -> many consumers/line).
    std::vector<std::vector<unsigned>> gathers(num_cpus);
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        for (unsigned i = 0; i < _p.readsPerCpu; ++i) {
            gathers[cpu].push_back(
                static_cast<unsigned>(rng.below(_p.vectorLines)));
        }
    }

    // Init: CPU i first-touches its p segment and q block.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        for (unsigned l = 0; l < lines_per_cpu; ++l) {
            t.push_back(MemOp::write(pLine(cpu * lines_per_cpu + l)));
            t.push_back(MemOp::write(qLine(cpu, l)));
        }
        if (cpu == 0)
            t.push_back(MemOp::write(reductionLine()));
        t.push_back(MemOp::barrier());
    }

    for (unsigned it = 0; it < _p.iterations; ++it) {
        // Phase 1: update p. Segment interiors are single-writer;
        // the line straddling each segment boundary is written by
        // BOTH neighbours -> false sharing the detector must reject.
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            for (unsigned l = 0; l < lines_per_cpu; ++l) {
                const unsigned line = cpu * lines_per_cpu + l;
                t.push_back(MemOp::write(pLine(line)));
            }
            // False sharing: also touch the first line of the next
            // segment (models elements spilling across the boundary).
            if (cpu + 1 < num_cpus)
                t.push_back(
                    MemOp::write(pLine((cpu + 1) * lines_per_cpu)));
            t.push_back(MemOp::barrier());
        }

        // Phase 2: sparse matvec q = A p. Gather remote p lines with
        // heavy per-gather compute; scatter into the local q block.
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            unsigned qi = 0;
            for (unsigned line : gathers[cpu]) {
                t.push_back(MemOp::read(pLine(line)));
                t.push_back(MemOp::think(_p.thinkPerGather));
                t.push_back(
                    MemOp::write(qLine(cpu, qi++ % lines_per_cpu)));
            }
            // The bulk of the iteration is local computation.
            t.push_back(MemOp::think(_p.localComputeCycles));
            t.push_back(MemOp::barrier());
        }

        // Phase 3: dot-product reduction on a single migratory line.
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            t.push_back(MemOp::read(reductionLine()));
            t.push_back(MemOp::write(reductionLine()));
            t.push_back(MemOp::barrier());
        }
    }
}

Addr
CgWorkload::pLine(unsigned l) const
{
    return _p.base + static_cast<Addr>(l) * _p.lineBytes;
}

Addr
CgWorkload::qLine(unsigned cpu, unsigned l) const
{
    const Addr region = _p.base + 0x2000000ull;
    return region + (static_cast<Addr>(cpu) * 4096 + l) * _p.lineBytes;
}

Addr
CgWorkload::reductionLine() const
{
    return _p.base + 0x3000000ull;
}

std::string
CgWorkload::scaledProblemSize() const
{
    std::ostringstream os;
    os << _p.vectorLines * (_p.lineBytes / 8) << " nodes, "
       << _p.iterations << " iterations";
    return os.str();
}

} // namespace pcsim
