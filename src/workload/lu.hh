/**
 * @file
 * LU (NAS Parallel Benchmarks) sharing-pattern workload.
 *
 * SSOR solver for the 3D Navier-Stokes equations. The 2D partition
 * assigns vertical column blocks to processors; during each sweep a
 * processor consumes the boundary column produced by its left
 * neighbour row by row (pipelined wavefront), giving stable
 * single-producer / single-consumer sharing on boundary data
 * (Table 3: 99.4% one consumer).
 *
 * Paper problem size: 16x16x16 nodes, 50 timesteps. Scaled default:
 * a 64-row wavefront over 16 column blocks.
 */

#ifndef PCSIM_WORKLOAD_LU_HH
#define PCSIM_WORKLOAD_LU_HH

#include "src/workload/workload.hh"

namespace pcsim
{

/** LU generator parameters. */
struct LuParams
{
    unsigned rows = 28;          ///< wavefront depth per sweep
    unsigned iterations = 24;    ///< SSOR sweeps
    unsigned interiorLines = 6;  ///< local lines updated per row
    unsigned thinkPerRow = 1300;
    Addr base = 0x18000000ull;
    std::uint32_t lineBytes = 128;
};

/** Build the LU trace. */
class LuWorkload : public TraceWorkload
{
  public:
    explicit LuWorkload(unsigned num_cpus, LuParams p = {});

    std::string paperProblemSize() const override
    {
        return "16*16*16 nodes, 50 timesteps";
    }
    std::string scaledProblemSize() const override;

  private:
    /** Boundary element (cpu, row): one line each (column stride
     *  exceeds the line size in the real layout). */
    Addr boundaryLine(unsigned cpu, unsigned row) const;
    Addr interiorLine(unsigned cpu, unsigned row, unsigned l) const;

    LuParams _p;
    unsigned _numCpus;
};

} // namespace pcsim

#endif // PCSIM_WORKLOAD_LU_HH
