#include "src/workload/suite.hh"

#include <algorithm>

#include "src/sim/logging.hh"
#include "src/workload/appbt.hh"
#include "src/workload/barnes.hh"
#include "src/workload/cg.hh"
#include "src/workload/em3d.hh"
#include "src/workload/lu.hh"
#include "src/workload/mg.hh"
#include "src/workload/ocean.hh"

namespace pcsim
{

std::vector<std::string>
suiteNames()
{
    return {"Barnes", "Ocean", "Em3D", "LU", "CG", "MG", "Appbt"};
}

namespace
{

unsigned
scaled(unsigned iters, double scale)
{
    return std::max(4u, static_cast<unsigned>(iters * scale));
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, unsigned num_cpus, double scale)
{
    if (name == "Barnes") {
        BarnesParams p;
        p.iterations = scaled(p.iterations, scale);
        return std::make_unique<BarnesWorkload>(num_cpus, p);
    }
    if (name == "Ocean") {
        OceanParams p;
        p.iterations = scaled(p.iterations, scale);
        return std::make_unique<OceanWorkload>(num_cpus, p);
    }
    if (name == "Em3D") {
        Em3dParams p;
        p.iterations = scaled(p.iterations, scale);
        return std::make_unique<Em3dWorkload>(num_cpus, p);
    }
    if (name == "LU") {
        LuParams p;
        p.iterations = scaled(p.iterations, scale);
        return std::make_unique<LuWorkload>(num_cpus, p);
    }
    if (name == "CG") {
        CgParams p;
        p.iterations = scaled(p.iterations, scale);
        return std::make_unique<CgWorkload>(num_cpus, p);
    }
    if (name == "MG") {
        MgParams p;
        p.vCycles = scaled(p.vCycles, scale);
        return std::make_unique<MgWorkload>(num_cpus, p);
    }
    if (name == "Appbt") {
        AppbtParams p;
        p.iterations = scaled(p.iterations, scale);
        return std::make_unique<AppbtWorkload>(num_cpus, p);
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::unique_ptr<Workload>>
makeSuite(unsigned num_cpus, double scale)
{
    std::vector<std::unique_ptr<Workload>> suite;
    for (const auto &name : suiteNames())
        suite.push_back(makeWorkload(name, num_cpus, scale));
    return suite;
}

} // namespace pcsim
