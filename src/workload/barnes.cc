#include "src/workload/barnes.hh"

#include <sstream>

namespace pcsim
{

BarnesWorkload::BarnesWorkload(unsigned num_cpus, BarnesParams p)
    : TraceWorkload("Barnes", num_cpus), _p(p)
{
    Rng rng(_p.seed);

    // Assign each cell an owner and a fixed reader set whose size
    // follows the octree's fan-out: cells near the root are read by
    // everyone, deep cells by few (Table 3 Barnes distribution).
    std::vector<unsigned> owner(_p.cellLines);
    std::vector<std::vector<unsigned>> readers(_p.cellLines);
    for (unsigned c = 0; c < _p.cellLines; ++c) {
        owner[c] = static_cast<unsigned>(rng.below(num_cpus));
        unsigned nreaders;
        const double u = rng.uniform();
        // Approximate octree depth distribution -> consumer counts:
        // ~62% wide sharing, remainder tapering to single readers.
        if (u < 0.62)
            nreaders = 5 + static_cast<unsigned>(
                               rng.below(num_cpus > 5 ? num_cpus - 5
                                                      : 1));
        else if (u < 0.70)
            nreaders = 4;
        else if (u < 0.79)
            nreaders = 3;
        else if (u < 0.86)
            nreaders = 2;
        else
            nreaders = 1;
        // Pick distinct readers != owner.
        std::vector<bool> used(num_cpus, false);
        used[owner[c]] = true;
        while (readers[c].size() < nreaders &&
               readers[c].size() + 1 < num_cpus) {
            const unsigned r =
                static_cast<unsigned>(rng.below(num_cpus));
            if (!used[r]) {
                used[r] = true;
                readers[c].push_back(r);
            }
        }
    }

    // Init: owners first-touch their cells; every CPU its bodies.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        for (unsigned c = 0; c < _p.cellLines; ++c) {
            if (owner[c] == cpu)
                t.push_back(MemOp::write(cellLine(c)));
        }
        for (unsigned l = 0; l < _p.bodyLinesPerCpu; ++l)
            t.push_back(MemOp::write(bodyLine(cpu, l)));
        t.push_back(MemOp::barrier());
    }

    for (unsigned it = 0; it < _p.iterations; ++it) {
        // Tree build: owners update their cells.
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            for (unsigned c = 0; c < _p.cellLines; ++c) {
                if (owner[c] != cpu)
                    continue;
                t.push_back(MemOp::think(_p.thinkPerCell));
                t.push_back(MemOp::write(cellLine(c)));
            }
            t.push_back(MemOp::barrier());
        }
        // Force computation: traverse (read) the fixed cell subsets,
        // update local bodies.
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            for (unsigned c = 0; c < _p.cellLines; ++c) {
                bool reads = false;
                for (unsigned r : readers[c])
                    reads |= (r == cpu);
                if (!reads)
                    continue;
                t.push_back(MemOp::read(cellLine(c)));
                t.push_back(MemOp::think(_p.thinkPerCell));
            }
            for (unsigned l = 0; l < _p.bodyLinesPerCpu; ++l) {
                t.push_back(MemOp::read(bodyLine(cpu, l)));
                t.push_back(MemOp::think(_p.thinkPerBody));
                t.push_back(MemOp::write(bodyLine(cpu, l)));
            }
            t.push_back(MemOp::barrier());
        }
    }
}

Addr
BarnesWorkload::cellLine(unsigned c) const
{
    return _p.base + static_cast<Addr>(c) * _p.lineBytes;
}

Addr
BarnesWorkload::bodyLine(unsigned cpu, unsigned l) const
{
    const Addr region = _p.base + 0x2000000ull;
    const Addr per_cpu = 0x10000ull; // page aligned
    return region + cpu * per_cpu + static_cast<Addr>(l) * _p.lineBytes;
}

std::string
BarnesWorkload::scaledProblemSize() const
{
    std::ostringstream os;
    os << _p.cellLines << " cells, "
       << _p.bodyLinesPerCpu * numCpus() * (_p.lineBytes / 8)
       << " bodies, " << _p.iterations << " iterations";
    return os.str();
}

} // namespace pcsim
