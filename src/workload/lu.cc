#include "src/workload/lu.hh"

#include <sstream>

namespace pcsim
{

LuWorkload::LuWorkload(unsigned num_cpus, LuParams p)
    : TraceWorkload("LU", num_cpus), _p(p), _numCpus(num_cpus)
{
    // Init: first-touch own boundary and interior data.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        for (unsigned r = 0; r < _p.rows; ++r) {
            t.push_back(MemOp::write(boundaryLine(cpu, r)));
            for (unsigned l = 0; l < _p.interiorLines; ++l)
                t.push_back(MemOp::write(interiorLine(cpu, r, l)));
        }
        t.push_back(MemOp::barrier());
    }

    // SSOR sweeps. The consume phase reads the left neighbour's
    // boundary column (produced last sweep) and relaxes the interior;
    // after a barrier the produce phase writes this sweep's boundary
    // column. The phase split models the sweep's data dependence and
    // keeps boundary lines on a W (R)+ W (R)+ pattern.
    for (unsigned it = 0; it < _p.iterations; ++it) {
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            for (unsigned r = 0; r < _p.rows; ++r) {
                if (cpu > 0)
                    t.push_back(MemOp::read(boundaryLine(cpu - 1, r)));
                // Interior relaxation (all local).
                const unsigned l = r % _p.interiorLines;
                t.push_back(MemOp::read(interiorLine(cpu, r, l)));
                t.push_back(MemOp::think(_p.thinkPerRow));
                t.push_back(MemOp::write(interiorLine(cpu, r, l)));
            }
            t.push_back(MemOp::barrier());
            for (unsigned r = 0; r < _p.rows; ++r)
                t.push_back(MemOp::write(boundaryLine(cpu, r)));
            t.push_back(MemOp::barrier());
        }
    }
}

Addr
LuWorkload::boundaryLine(unsigned cpu, unsigned row) const
{
    return _p.base + (static_cast<Addr>(cpu) * _p.rows + row) *
                         _p.lineBytes;
}

Addr
LuWorkload::interiorLine(unsigned cpu, unsigned row, unsigned l) const
{
    const Addr region = _p.base + 0x1000000ull;
    const Addr per_cpu =
        static_cast<Addr>(_p.rows) * _p.interiorLines * _p.lineBytes;
    (void)row;
    return region + cpu * per_cpu + l * _p.lineBytes;
}

std::string
LuWorkload::scaledProblemSize() const
{
    std::ostringstream os;
    os << _p.rows << "-row wavefront, " << _p.iterations << " sweeps";
    return os.str();
}

} // namespace pcsim
