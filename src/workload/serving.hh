/**
 * @file
 * The "serving" workload family: datacenter-shaped traffic.
 *
 * Where the Table 2 suite reproduces the paper's scientific kernels,
 * these generators model the sharing patterns of a machine serving
 * millions of independent request streams over shared state -- the
 * regimes the ROADMAP's "heavy traffic" north star cares about and
 * the paper never measured:
 *
 *  - KVServe:   key-value store with Zipf hot-key skew. Keys are
 *               striped across home nodes; every node runs an
 *               independent request stream (deterministic per-node
 *               RNG fork) that mostly reads, rarely writes.
 *  - WorkQueue: M producers feed N consumers through shared queue
 *               lines; per-producer head lines fan out to every
 *               consumer while each work item is consumed once.
 *  - RCU:       read-mostly shared structure; one stable rare writer,
 *               massive reader fan-out between grace periods.
 *  - PubSub:    one publisher, K subscriber groups on disjoint topic
 *               lines -- the paper's producer-consumer pattern
 *               generalized to group fan-out.
 *
 * All four are deterministic (seeded, per-node streams via
 * forkNodeRng) and keep barrier arrivals balanced across nodes at any
 * machine size, so they run unchanged from 16 to 1024+ nodes.
 */

#ifndef PCSIM_WORKLOAD_SERVING_HH
#define PCSIM_WORKLOAD_SERVING_HH

#include <string>
#include <vector>

#include "src/workload/workload.hh"

namespace pcsim
{

/** Key-value serving with Zipf-distributed line popularity. */
class KvServingWorkload : public TraceWorkload
{
  public:
    struct Params
    {
        unsigned keyLines = 512;   ///< distinct key lines
        /** Zipf skew s: P(rank r) ~ 1/r^s. 0 = uniform; ~0.99 is the
         *  classic hot-key distribution. */
        double zipfSkew = 0.99;
        unsigned requestsPerNode = 400;
        double writeFraction = 0.05; ///< updates among requests
        unsigned thinkCycles = 12;   ///< request processing time
        std::uint64_t seed = 1234;
        Addr base = 0x70000000ull;
        std::uint32_t lineBytes = 128;
    };

    explicit KvServingWorkload(unsigned num_cpus)
        : KvServingWorkload(num_cpus, Params{})
    {
    }
    KvServingWorkload(unsigned num_cpus, Params p);

    Addr keyLine(unsigned k) const
    {
        return _p.base + static_cast<Addr>(k) * _p.lineBytes;
    }

  private:
    Params _p;
};

/** M producers feeding N consumers through shared queue lines. */
class WorkQueueWorkload : public TraceWorkload
{
  public:
    struct Params
    {
        /** Producer nodes (the first @p producers ids); 0 = numCpus/4,
         *  at least 1. Consumers are the remaining nodes. */
        unsigned producers = 0;
        unsigned queueLines = 64; ///< ring of work-item lines
        unsigned rounds = 24;
        unsigned thinkCycles = 16;
        Addr base = 0x74000000ull;
        std::uint32_t lineBytes = 128;
    };

    explicit WorkQueueWorkload(unsigned num_cpus)
        : WorkQueueWorkload(num_cpus, Params{})
    {
    }
    WorkQueueWorkload(unsigned num_cpus, Params p);

    unsigned numProducers() const { return _producers; }

  private:
    Params _p;
    unsigned _producers = 0;
};

/** RCU-style read-mostly structure: rare writer, reader fan-out. */
class RcuWorkload : public TraceWorkload
{
  public:
    struct Params
    {
        unsigned sharedLines = 48; ///< the read-mostly structure
        unsigned rounds = 24;
        unsigned writeEvery = 8;   ///< writer round period
        unsigned linesPerWrite = 4;
        unsigned readsPerNode = 12; ///< reads per node per round
        unsigned thinkCycles = 10;
        std::uint64_t seed = 4321;
        Addr base = 0x78000000ull;
        std::uint32_t lineBytes = 128;
    };

    explicit RcuWorkload(unsigned num_cpus)
        : RcuWorkload(num_cpus, Params{})
    {
    }
    RcuWorkload(unsigned num_cpus, Params p);

  private:
    Params _p;
};

/** One publisher, K subscriber groups on disjoint topic lines. */
class PubSubWorkload : public TraceWorkload
{
  public:
    struct Params
    {
        unsigned groups = 4;
        unsigned linesPerTopic = 8;
        unsigned rounds = 24;
        unsigned thinkCycles = 12;
        Addr base = 0x7C000000ull;
        std::uint32_t lineBytes = 128;
    };

    explicit PubSubWorkload(unsigned num_cpus)
        : PubSubWorkload(num_cpus, Params{})
    {
    }
    PubSubWorkload(unsigned num_cpus, Params p);

    Addr topicLine(unsigned group, unsigned l) const
    {
        return _p.base +
               (static_cast<Addr>(group) * _p.linesPerTopic + l) *
                   _p.lineBytes;
    }

  private:
    Params _p;
};

/** The family's registry names, in sweep order. */
std::vector<std::string> servingNames();

} // namespace pcsim

#endif // PCSIM_WORKLOAD_SERVING_HH
