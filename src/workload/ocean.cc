#include "src/workload/ocean.hh"

#include <sstream>

namespace pcsim
{

OceanWorkload::OceanWorkload(unsigned num_cpus, OceanParams p)
    : TraceWorkload("Ocean", num_cpus), _p(p)
{
    const unsigned elems_per_line = _p.lineBytes / 8;
    _linesPerRow = (_p.gridDim + elems_per_line - 1) / elems_per_line;
    const unsigned rows_per_cpu = _p.gridDim / num_cpus;

    // Initialization: every CPU first-touches its own rows.
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        auto &t = cpuTrace(cpu);
        const unsigned r0 = cpu * rows_per_cpu;
        const unsigned r1 = (cpu + 1 == num_cpus) ? _p.gridDim
                                                  : r0 + rows_per_cpu;
        for (unsigned r = r0; r < r1; ++r) {
            for (unsigned l = 0; l < _linesPerRow; ++l)
                t.push_back(MemOp::write(rowLine(r, l)));
        }
        t.push_back(MemOp::barrier()); // generation 1: init done
    }

    // Relaxation iterations, Jacobi style: a gather/compute phase
    // reads the previous values (including the neighbours' edge
    // rows), a barrier separates it from the update phase that writes
    // the new values. The separation keeps each boundary line's
    // global access pattern a crisp W (R)+ W (R)+ sequence.
    for (unsigned it = 0; it < _p.iterations; ++it) {
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto &t = cpuTrace(cpu);
            const unsigned r0 = cpu * rows_per_cpu;
            const unsigned r1 = (cpu + 1 == num_cpus)
                                    ? _p.gridDim
                                    : r0 + rows_per_cpu;
            // Gather + compute.
            for (unsigned r = r0; r < r1; ++r) {
                for (unsigned l = 0; l < _linesPerRow; ++l) {
                    if (r > 0)
                        t.push_back(MemOp::read(rowLine(r - 1, l)));
                    t.push_back(MemOp::read(rowLine(r, l)));
                    if (r + 1 < _p.gridDim)
                        t.push_back(MemOp::read(rowLine(r + 1, l)));
                    t.push_back(MemOp::think(_p.thinkPerLine));
                }
            }
            t.push_back(MemOp::barrier());
            // Update.
            for (unsigned r = r0; r < r1; ++r) {
                for (unsigned l = 0; l < _linesPerRow; ++l)
                    t.push_back(MemOp::write(rowLine(r, l)));
            }
            t.push_back(MemOp::barrier());
        }
    }
}

Addr
OceanWorkload::rowLine(unsigned row, unsigned col_line) const
{
    // Row-major layout, one row padded to whole lines so boundary
    // lines are shared only with the vertical neighbour.
    return _p.base +
           (static_cast<Addr>(row) * _linesPerRow + col_line) *
               _p.lineBytes;
}

std::string
OceanWorkload::scaledProblemSize() const
{
    std::ostringstream os;
    os << _p.gridDim << "*" << _p.gridDim << " array, "
       << _p.iterations << " iterations";
    return os.str();
}

} // namespace pcsim
